# Build offloadd — the offload control-plane daemon — into a minimal
# distroless image. The daemon is pure Go (no cgo), so the final stage
# carries nothing but the static binary and a CA bundle.
#
#   docker build -t offloadd .
#   docker run --rm -p 8080:8080 offloadd -listen :8080
#
# `make docker` wraps the build; CI smoke-builds the image on every push.

FROM golang:1.22 AS build
WORKDIR /src

# Warm the module cache first so source edits don't re-download deps.
COPY go.mod ./
RUN go mod download

COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /offloadd ./cmd/offloadd

# Distroless static: no shell, no package manager, nonroot by default.
FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /offloadd /offloadd
EXPOSE 8080
ENTRYPOINT ["/offloadd"]
