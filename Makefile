GO ?= go

.PHONY: all build test vet fmt race fuzz chaos ci determinism shards metrics-golden spans-golden golden offbench-bin bench bench-micro bench-json bench-gate bench-full results examples serve loadtest serve-smoke docker clean

# The offbench binary shared by the determinism and golden targets; built
# once per make invocation instead of once per target.
OFFBENCH_BIN = /tmp/offbench-ci

# The micro-benchmark packages whose hot paths carry allocation and
# latency contracts, and the committed baseline they gate against.
BENCH_PKGS = ./internal/sim/ ./internal/metrics/ ./internal/trace/
BENCH_BASELINE = BENCH_2026-08-08.json

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fail if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race ./...

# Short fuzzing smoke runs over the fault-injector invariants, the span
# JSONL codec, the Page–Hinkley drift detector, the shard-barrier
# determinism property, the Prometheus name sanitizer and the DAG
# validator/topological-sort invariants. Longer local sessions:
#   go test -fuzz=FuzzFaultInjector -fuzztime=5m ./internal/fault/
#   go test -fuzz=FuzzReadSpansJSONL -fuzztime=5m ./internal/trace/
#   go test -fuzz=FuzzDriftDetector -fuzztime=5m ./internal/adapt/
#   go test -fuzz=FuzzShardBarrier -fuzztime=5m ./internal/sim/
#   go test -fuzz=FuzzSanitizeName -fuzztime=5m ./internal/metrics/
#   go test -fuzz=FuzzDAGValidate -fuzztime=5m ./internal/dag/
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzFaultInjector -fuzztime=10s ./internal/fault/
	$(GO) test -run='^$$' -fuzz=FuzzReadSpansJSONL -fuzztime=10s ./internal/trace/
	$(GO) test -run='^$$' -fuzz=FuzzDriftDetector -fuzztime=10s ./internal/adapt/
	$(GO) test -run='^$$' -fuzz=FuzzShardBarrier -fuzztime=10s ./internal/sim/
	$(GO) test -run='^$$' -fuzz=FuzzSanitizeName -fuzztime=10s ./internal/metrics/
	$(GO) test -run='^$$' -fuzz=FuzzDAGValidate -fuzztime=10s ./internal/dag/

# Everything CI runs, in order: the gates plus the determinism diffs.
ci: build vet fmt test race fuzz determinism metrics-golden spans-golden serve-smoke

# Build the offbench binary the golden targets share.
offbench-bin:
	$(GO) build -o $(OFFBENCH_BIN) ./cmd/offbench

# Prove offbench's stdout is byte-identical serial vs parallel and still
# matches the committed quick-scale goldens.
determinism: offbench-bin
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -parallel 1 -quiet > /tmp/offbench-serial.txt
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -parallel 4 -quiet > /tmp/offbench-parallel.txt
	cmp /tmp/offbench-serial.txt /tmp/offbench-parallel.txt
	rm -rf /tmp/offbench-golden
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -parallel 4 -quiet -out /tmp/offbench-golden > /dev/null
	diff -ru results/golden /tmp/offbench-golden
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E20 -parallel 1 -quiet > /tmp/offbench-e20-serial.txt
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E20 -parallel 4 -quiet > /tmp/offbench-e20-parallel.txt
	cmp /tmp/offbench-e20-serial.txt /tmp/offbench-e20-parallel.txt
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E21 -shards 1 -quiet > /tmp/offbench-e21-serial.txt
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E21 -shards 7 -quiet > /tmp/offbench-e21-sharded.txt
	cmp /tmp/offbench-e21-serial.txt /tmp/offbench-e21-sharded.txt
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E22 -parallel 1 -quiet > /tmp/offbench-e22-serial.txt
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E22 -parallel 4 -quiet > /tmp/offbench-e22-parallel.txt
	cmp /tmp/offbench-e22-serial.txt /tmp/offbench-e22-parallel.txt

# The sharded-engine drill: the cross-shard determinism property and
# fleet tests under the race detector, then the E21 quick run diffed
# serial (one shard) against sharded (seven) byte for byte.
shards: offbench-bin
	$(GO) test -race -run 'TestSharded|TestShardedFleet' ./internal/sim/ ./internal/core/
	$(GO) test -race -run 'TestE21' ./internal/exp/
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E21 -shards 1 -quiet > /tmp/offbench-e21-serial.txt
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E21 -shards 7 -quiet > /tmp/offbench-e21-sharded.txt
	cmp /tmp/offbench-e21-serial.txt /tmp/offbench-e21-sharded.txt

# The chaos drill: both failure-centric experiments (E17 correlated
# outages, E20 regional disasters) at quick scale under the race
# detector, plus the fault and failover unit tests.
chaos:
	$(GO) test -race ./internal/fault/ ./internal/sched/
	$(GO) test -race -run 'TestE17Shape|TestE20Shape' ./internal/exp/

# Prove the -metrics export merges deterministically: serial and parallel
# runs must produce byte-identical files, and the committed samples (one
# time series, one merged registry) must still match.
metrics-golden: offbench-bin
	rm -rf /tmp/offbench-metrics-serial /tmp/offbench-metrics-parallel
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E1 -parallel 1 -quiet -metrics /tmp/offbench-metrics-serial > /dev/null
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E1 -parallel 4 -quiet -metrics /tmp/offbench-metrics-parallel > /dev/null
	diff -r /tmp/offbench-metrics-serial /tmp/offbench-metrics-parallel
	cmp results/metrics-golden/e1_cell001.csv /tmp/offbench-metrics-serial/e1_cell001.csv
	cmp results/metrics-golden/e1_registry.csv /tmp/offbench-metrics-serial/e1_registry.csv

# Prove the -spans export is deterministic: serial and parallel runs must
# produce byte-identical span JSONL and Chrome trace files, and the
# committed E18 samples must still match.
spans-golden: offbench-bin
	rm -rf /tmp/offbench-spans-serial /tmp/offbench-spans-parallel
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E18 -parallel 1 -quiet -spans /tmp/offbench-spans-serial > /dev/null
	$(OFFBENCH_BIN) -scale quick -csv -seed 1 -exp E18 -parallel 4 -quiet -spans /tmp/offbench-spans-parallel > /dev/null
	diff -r /tmp/offbench-spans-serial /tmp/offbench-spans-parallel
	diff -r results/spans-golden /tmp/offbench-spans-serial

# Regenerate the committed quick-scale golden CSVs after an intentional
# change to experiment output.
golden:
	rm -rf results/golden results/metrics-golden results/spans-golden
	$(GO) run ./cmd/offbench -scale quick -csv -seed 1 -quiet -out results/golden > /dev/null
	$(GO) run ./cmd/offbench -scale quick -csv -seed 1 -exp E1 -quiet -metrics /tmp/offbench-metrics-regen > /dev/null
	mkdir -p results/metrics-golden
	cp /tmp/offbench-metrics-regen/e1_cell001.csv /tmp/offbench-metrics-regen/e1_registry.csv results/metrics-golden/
	rm -rf /tmp/offbench-metrics-regen
	$(GO) run ./cmd/offbench -scale quick -csv -seed 1 -exp E18 -quiet -spans results/spans-golden > /dev/null

# The E-suite benchmarks (root package). -run='^$$' keeps unit tests from
# rerunning; output lands in results/bench_latest.txt (gitignored) so a
# bench run never dirties the committed goldens.
bench:
	mkdir -p results
	$(GO) test -run='^$$' -bench=. -benchmem . | tee results/bench_latest.txt

# The hot-path micro-benchmarks: event kernel, metric touches, span
# recording. -count=6 gives benchstat/benchgate enough samples to tell a
# regression from noise.
bench-micro:
	mkdir -p results
	$(GO) test -run='^$$' -bench=. -benchmem -count=6 $(BENCH_PKGS) | tee results/bench_micro.txt

# Regenerate the committed micro-benchmark baseline after an intentional
# performance change.
bench-json: bench-micro
	$(GO) run ./cmd/benchgate -emit results/bench_micro.txt > $(BENCH_BASELINE)

# Gate the current tree's micro-benchmarks against the committed
# baseline: any allocs/op increase on a zero-alloc path fails. ns/op is
# not gated here because the baseline was recorded on other hardware; CI
# gates ns/op against a same-runner merge-base build instead.
bench-gate: bench-micro
	$(GO) run ./cmd/benchgate -emit results/bench_micro.txt > results/bench_head.json
	$(GO) run ./cmd/benchgate -old $(BENCH_BASELINE) -new results/bench_head.json

# Regenerate every experiment table at full scale into results/.
results:
	mkdir -p results
	$(GO) run ./cmd/offbench -scale full | tee results/offbench_full.txt

# Build the offloadd container image: static Go binary on distroless.
docker:
	docker build -t offloadd .

# Run the serve-mode daemon in the foreground on :9090 (wall clock,
# default policy). Ctrl-C drains gracefully.
serve:
	$(GO) run ./cmd/offloadd -addr :9090

# Stand up a daemon and drive it with the load harness: 15s at the
# acceptance-floor rate with a concurrent 1 Hz /metrics scraper, report
# written to results/loadtest_latest.txt (gitignored). Fails unless the
# daemon sustains 10k req/s.
loadtest:
	mkdir -p results
	$(GO) build -o /tmp/offloadd-load ./cmd/offloadd
	$(GO) build -o /tmp/offctl-load ./cmd/offctl
	/tmp/offloadd-load -addr 127.0.0.1:19091 -simclock -max-inflight 200000 & \
	pid=$$!; trap "kill $$pid 2>/dev/null" EXIT; sleep 1; \
	/tmp/offctl-load load -url http://127.0.0.1:19091 -rate 15000 \
		-duration 15s -workers 128 -min-rate 10000 \
		-out results/loadtest_latest.txt && \
	kill -TERM $$pid && wait $$pid

# The serve-mode smoke drill CI runs: build the daemon, start it on the
# deterministic sim clock, push a short burst of submissions through the
# HTTP surface, then assert /healthz answers and /metrics exposes a
# nonzero accepted counter before draining with SIGTERM.
serve-smoke:
	$(GO) build -o /tmp/offloadd-smoke ./cmd/offloadd
	$(GO) build -o /tmp/offctl-smoke ./cmd/offctl
	/tmp/offloadd-smoke -addr 127.0.0.1:19092 -simclock & \
	pid=$$!; trap "kill $$pid 2>/dev/null" EXIT; sleep 1; \
	/tmp/offctl-smoke load -url http://127.0.0.1:19092 -rate 500 \
		-duration 2s -workers 8 -min-rate 100 && \
	curl -fsS http://127.0.0.1:19092/healthz && \
	curl -fsS http://127.0.0.1:19092/metrics | grep '^serve_accepted' | \
		grep -qv '^serve_accepted 0$$' && \
	/tmp/offctl-smoke scrape -n 5 127.0.0.1:19092 && \
	kill -TERM $$pid && wait $$pid

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/videopipeline
	$(GO) run ./examples/mlbatch
	$(GO) run ./examples/cicd

clean:
	$(GO) clean ./...
