GO ?= go

.PHONY: all build test vet bench bench-full results examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

# Regenerate every experiment table at full scale into results/.
results:
	mkdir -p results
	$(GO) run ./cmd/offbench -scale full | tee results/offbench_full.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/videopipeline
	$(GO) run ./examples/mlbatch
	$(GO) run ./examples/cicd

clean:
	$(GO) clean ./...
