package offload_test

// The benchmark harness: one benchmark per experiment in the evaluation
// suite (E1–E19, see DESIGN.md and EXPERIMENTS.md), each regenerating its
// table(s) at the quick scale per iteration, plus micro-benchmarks for the
// core algorithms. `go test -bench=. -benchmem` reproduces everything;
// `go run ./cmd/offbench` prints the full-scale tables.

import (
	"context"
	"testing"

	"offload"
	"offload/internal/adapt"
	"offload/internal/alloc"
	"offload/internal/callgraph"
	"offload/internal/cloudvm"
	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/exp"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/partition"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	scale := exp.Quick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(scale)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || tables[0].Len() == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkSuiteSerial and BenchmarkSuiteParallel regenerate the whole
// quick-scale suite through the Runner — the same substrate offbench and
// CI use — at one worker and at NumCPU workers. Their ratio is the
// wall-clock win the worker pool buys on this machine.
func BenchmarkSuiteSerial(b *testing.B)   { benchSuite(b, 1) }
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }

func benchSuite(b *testing.B, workers int) {
	b.Helper()
	r := &exp.Runner{Scale: exp.Quick(), Parallel: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := r.Run(context.Background(), exp.Registry())
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(exp.Registry()) {
			b.Fatalf("suite returned %d results", len(results))
		}
	}
}

// BenchmarkE1Placement regenerates Figure 1: policies × app templates.
func BenchmarkE1Placement(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2MemorySweep regenerates Figure 2: cost/time vs memory.
func BenchmarkE2MemorySweep(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Partition regenerates Table 1: partitioner comparison.
func BenchmarkE3Partition(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4ColdStart regenerates Figure 3: cold starts and batching.
func BenchmarkE4ColdStart(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Energy regenerates Figure 4: device energy and battery life.
func BenchmarkE5Energy(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6DeadlineSlack regenerates Figure 5: miss rate vs slack.
func BenchmarkE6DeadlineSlack(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7CostCrossover regenerates Table 2: monthly cost crossover.
func BenchmarkE7CostCrossover(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8Pipeline regenerates Table 3: CI/CD stage timings + rollback.
func BenchmarkE8Pipeline(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Scalability regenerates Figure 6: fleet scaling.
func BenchmarkE9Scalability(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10PredictionError regenerates Table 4: demand-error ablation.
func BenchmarkE10PredictionError(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11OffPeak regenerates Table 5: delay-for-price shifting.
func BenchmarkE11OffPeak(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Failures regenerates Table 6: failures and retries.
func BenchmarkE12Failures(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13DVFS regenerates Table 7: race-to-idle vs DVFS vs offload.
func BenchmarkE13DVFS(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Bursts regenerates Table 8: burst absorption.
func BenchmarkE14Bursts(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15Granularity regenerates Table 9: deployment granularity.
func BenchmarkE15Granularity(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16Providers regenerates Table 10: provider-aware allocation.
func BenchmarkE16Providers(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17Resilience regenerates Table 11: resilience strategies
// under correlated cloud outages.
func BenchmarkE17Resilience(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18Attribution regenerates Table 12: span-level critical-path
// and cost attribution.
func BenchmarkE18Attribution(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19Adaptive regenerates Table 13: bandit placement vs the
// static policies across drifting regimes.
func BenchmarkE19Adaptive(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20Failover regenerates Table 14: regional disaster drills.
func BenchmarkE20Failover(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkE21FlashCrowd regenerates Table 15: the sharded-engine flash
// crowd (quick scale: 2500 UEs; the 1M-UE run is -scale full only).
func BenchmarkE21FlashCrowd(b *testing.B) { benchExperiment(b, "E21") }

// BenchmarkE22DAGPlacement regenerates Table 16: precedence-oblivious
// release vs upward-rank placement on DAG jobs.
func BenchmarkE22DAGPlacement(b *testing.B) { benchExperiment(b, "E22") }

// --- micro-benchmarks for the core algorithms ---

// BenchmarkSimEngine measures raw event throughput of the kernel.
func BenchmarkSimEngine(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(1, func() {})
		eng.Step()
	}
}

// BenchmarkMinCutTemplate partitions the ml-batch template.
func BenchmarkMinCutTemplate(b *testing.B) {
	g := callgraph.MLBatch()
	m := core.CostModelFor(device.Smartphone(), serverless.LambdaLike(),
		serverless.LambdaLike().FullShareBytes, network.WiFiCloud(), core.DefaultWeights())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.MinCut(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinCut100 partitions a 100-component random graph.
func BenchmarkMinCut100(b *testing.B) {
	g := callgraph.Random(rng.New(1), 100)
	m := core.CostModelFor(device.Smartphone(), serverless.LambdaLike(),
		serverless.LambdaLike().FullShareBytes, network.WiFiCloud(), core.DefaultWeights())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.MinCut(g, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocChoose sizes a function over the 159-step Lambda ladder.
func BenchmarkAllocChoose(b *testing.B) {
	a := alloc.New(serverless.LambdaLike())
	req := alloc.Request{Cycles: 3e10, ParallelFraction: 0.8,
		MemoryFloorBytes: 1 << 30, ColdStartProb: 0.3, TimeBudget: 300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Choose(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineDP splits a budget across a five-stage function chain.
func BenchmarkPipelineDP(b *testing.B) {
	a := alloc.New(serverless.LambdaLike())
	reqs := []alloc.Request{
		{Cycles: 2e9}, {Cycles: 8e9}, {Cycles: 3e10, ParallelFraction: 0.8},
		{Cycles: 5e9}, {Cycles: 1e9},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ChoosePipeline(reqs, 120, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerThroughput measures end-to-end tasks/second through
// the deadline-aware scheduler with all substrates live.
func BenchmarkSchedulerThroughput(b *testing.B) {
	cfg := offload.DefaultConfig()
	sys, err := offload.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := offload.StandardMix(sys.Src.Split())
	if err != nil {
		b.Fatal(err)
	}
	arr := workload.NewPoisson(sys.Src.Split(), 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.SubmitStream(arr, gen, 1)
		sys.Run()
	}
	if sys.Stats().Total() != uint64(b.N) {
		b.Fatalf("completed %d of %d", sys.Stats().Total(), b.N)
	}
}

// BenchmarkProfileCatalog profiles a five-component application.
func BenchmarkProfileCatalog(b *testing.B) {
	g := callgraph.ReportGen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PlanApp(g, core.PlanOptions{
			Device:     device.Smartphone(),
			Serverless: serverless.LambdaLike(),
			CloudPath:  network.WiFiCloud(),
			Seed:       uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDecideEnv builds a full four-placement environment (device, edge,
// serverless, VM) for policy hot-path benchmarks, mirroring the substrates
// the scheduler sees in the experiments.
func benchDecideEnv(b *testing.B) *sched.Env {
	b.Helper()
	eng := sim.NewEngine()
	src := rng.New(42)
	pool := sched.NewFunctionPool(serverless.NewPlatform(eng, src.Split(), serverless.LambdaLike()))
	return &sched.Env{
		Eng:       eng,
		Device:    device.New(eng, device.Smartphone()),
		Edge:      edge.New(eng, edge.SmallSite()),
		EdgePath:  network.New(eng, src.Split(), network.LANEdge()),
		Functions: pool,
		CloudPath: network.New(eng, src.Split(), network.WiFiCloud()),
		VM:        cloudvm.New(eng, cloudvm.C5Large()),
	}
}

func benchDecideTask(i int) *model.Task {
	return &model.Task{
		ID: model.TaskID(i), App: "report-gen",
		InputBytes: model.MB, OutputBytes: 256 * model.KB,
		Cycles: 20e9, MemoryBytes: 512 * model.MB,
		ParallelFraction: 0.5, Deadline: 600,
	}
}

// BenchmarkDecideDeadlineAware measures the cost-model policy's Decide
// hot path: four placement estimates per call.
func BenchmarkDecideDeadlineAware(b *testing.B) {
	env := benchDecideEnv(b)
	p := sched.NewDeadlineAware()
	pred := sched.NewPerApp(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.Decide(benchDecideTask(i), env, pred); got == model.PlaceUnknown {
			b.Fatal("no placement")
		}
	}
}

// BenchmarkDecideBanditUCB measures the contextual bandit's Decide hot
// path, with the observe half of the loop included so arm statistics keep
// evolving as they do in a live run.
func BenchmarkDecideBanditUCB(b *testing.B) {
	env := benchDecideEnv(b)
	c, err := adapt.NewBandit(adapt.BanditUCB, adapt.DefaultConfig(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	pred := sched.NewPerApp(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := benchDecideTask(i)
		placement := c.Decide(task, env, pred)
		c.ObserveOutcome(model.Outcome{
			Task: task, Placement: placement,
			Started: 0, Finished: 2, CostUSD: 1e-4,
		}, env)
	}
}

// BenchmarkPerAppPredict measures the per-app EWMA demand predictor after
// it has converged on one application.
func BenchmarkPerAppPredict(b *testing.B) {
	pred := sched.NewPerApp(0.3)
	warm := benchDecideTask(0)
	for i := 0; i < 32; i++ {
		pred.Observe(warm, warm.Cycles)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := pred.PredictCycles(warm); got <= 0 {
			b.Fatal("non-positive prediction")
		}
	}
}

// BenchmarkServerlessInvoke measures simulated invocation overhead.
func BenchmarkServerlessInvoke(b *testing.B) {
	eng := sim.NewEngine()
	p := serverless.NewPlatform(eng, rng.New(1), serverless.LambdaLike())
	fn, err := p.Deploy(serverless.FunctionConfig{Name: "bench", MemoryBytes: 1792 * model.MB})
	if err != nil {
		b.Fatal(err)
	}
	task := &model.Task{Cycles: 1e9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn.Execute(task, func(model.ExecReport) {})
		eng.Run()
	}
}
