// Command benchgate parses `go test -bench` output and gates performance
// regressions against a committed baseline. It exists because the repo's
// hot paths (the event kernel, metric touches, span recording) carry
// allocation and latency contracts that a human reviewer cannot check by
// eye across every PR.
//
// Three modes:
//
//	benchgate -emit out.txt > bench.json
//	    Parse one or more bench-output files (or stdin) into a JSON
//	    sample set, keyed by benchmark name with per-run samples.
//
//	benchgate -old base.json -new head.json [-ns] [-threshold 15]
//	    Gate: fail (exit 1) if a benchmark whose baseline allocs/op is
//	    zero now allocates — that contract is machine-independent. With
//	    -ns, additionally fail on a median ns/op regression beyond the
//	    threshold where the sample ranges do not overlap; only valid
//	    when both sides ran on the same machine.
//
//	benchgate -print-bench bench.json
//	    Render the JSON back into benchstat-compatible bench lines.
//
// The tool is dependency-free on purpose: it runs in CI before anything
// is installed, and `go install benchstat` remains optional garnish for
// the human-readable comparison.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Samples holds every parsed run of one benchmark.
type Samples struct {
	NsPerOp     []float64 `json:"ns_per_op"`
	BytesPerOp  []float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp []float64 `json:"allocs_per_op,omitempty"`
}

// Set is the JSON document: benchmark name → samples. Names are stored
// without the -<GOMAXPROCS> suffix so baselines compare across machines.
type Set struct {
	Benchmarks map[string]*Samples `json:"benchmarks"`
}

// parseLine parses one bench output line; ok is false for non-bench lines.
// A line looks like:
//
//	BenchmarkEventScheduleFire-8   79945828   14.97 ns/op   0 B/op   0 allocs/op
func parseLine(line string) (name string, ns, bytes, allocs float64, haveMem bool, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return
	}
	name = trimCPUSuffix(f[0])
	// f[1] is the iteration count; values follow as "<num> <unit>" pairs.
	if _, err := strconv.Atoi(f[1]); err != nil {
		return
	}
	vals := map[string]float64{}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return
		}
		vals[f[i+1]] = v
	}
	ns, ok = vals["ns/op"]
	if !ok {
		return
	}
	bytes, haveMem = vals["B/op"]
	allocs = vals["allocs/op"]
	return name, ns, bytes, allocs, haveMem, true
}

// trimCPUSuffix strips the trailing -<n> GOMAXPROCS marker from a
// benchmark name.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse reads bench output and accumulates samples per benchmark.
func parse(r io.Reader, set *Set) error {
	buf, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(buf), "\n") {
		name, ns, bytes, allocs, haveMem, ok := parseLine(line)
		if !ok {
			continue
		}
		s := set.Benchmarks[name]
		if s == nil {
			s = &Samples{}
			set.Benchmarks[name] = s
		}
		s.NsPerOp = append(s.NsPerOp, ns)
		if haveMem {
			s.BytesPerOp = append(s.BytesPerOp, bytes)
			s.AllocsPerOp = append(s.AllocsPerOp, allocs)
		}
	}
	return nil
}

// median returns the middle sample (mean of the middle two for even n),
// or NaN for no samples.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return
}

// Finding is one gate violation.
type Finding struct {
	Bench  string
	Reason string
}

// gate compares head samples against a baseline. Alloc contracts always
// apply: a benchmark whose baseline allocs/op median is zero must stay at
// zero. With gateNs, a median ns/op regression beyond thresholdPct where
// the sample ranges do not overlap also fails; overlapping ranges are
// treated as noise, which keeps small sample counts from flapping.
func gate(old, new_ *Set, gateNs bool, thresholdPct float64) []Finding {
	var findings []Finding
	names := make([]string, 0, len(new_.Benchmarks))
	for name := range new_.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns := new_.Benchmarks[name]
		os_, ok := old.Benchmarks[name]
		if !ok {
			continue // new benchmark: nothing to regress against
		}
		if len(os_.AllocsPerOp) > 0 && len(ns.AllocsPerOp) > 0 {
			oa, na := median(os_.AllocsPerOp), median(ns.AllocsPerOp)
			if oa == 0 && na > 0 {
				findings = append(findings, Finding{name, fmt.Sprintf(
					"allocs/op regressed from 0 to %g: the zero-allocation contract is broken", na)})
			}
		}
		if gateNs && len(os_.NsPerOp) > 0 && len(ns.NsPerOp) > 0 {
			om, nm := median(os_.NsPerOp), median(ns.NsPerOp)
			if nm > om*(1+thresholdPct/100) {
				_, oldHi := minMax(os_.NsPerOp)
				newLo, _ := minMax(ns.NsPerOp)
				if newLo > oldHi {
					findings = append(findings, Finding{name, fmt.Sprintf(
						"median ns/op regressed %.1f%% (%.4g -> %.4g) with non-overlapping ranges",
						(nm/om-1)*100, om, nm)})
				}
			}
		}
	}
	return findings
}

// printBench renders a Set as benchstat-compatible lines, sorted by name.
// The iteration count is synthesised (benchstat ignores it).
func printBench(w io.Writer, set *Set) {
	names := make([]string, 0, len(set.Benchmarks))
	for name := range set.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := set.Benchmarks[name]
		for i, ns := range s.NsPerOp {
			fmt.Fprintf(w, "%s 1 %g ns/op", name, ns)
			if i < len(s.BytesPerOp) && i < len(s.AllocsPerOp) {
				fmt.Fprintf(w, " %g B/op %g allocs/op", s.BytesPerOp[i], s.AllocsPerOp[i])
			}
			fmt.Fprintln(w)
		}
	}
}

func readSet(path string) (*Set, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := &Set{Benchmarks: map[string]*Samples{}}
	if err := json.Unmarshal(buf, set); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return set, nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var (
		emit       bool
		printB     string
		oldPath    string
		newPath    string
		gateNs     bool
		threshold  = 15.0
		files      []string
		parseFloat = func(s string) (float64, bool) {
			v, err := strconv.ParseFloat(s, 64)
			return v, err == nil
		}
	)
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-emit":
			emit = true
		case "-ns":
			gateNs = true
		case "-print-bench", "-old", "-new", "-threshold":
			if i+1 >= len(args) {
				fmt.Fprintf(stderr, "benchgate: %s needs a value\n", a)
				return 2
			}
			i++
			switch a {
			case "-print-bench":
				printB = args[i]
			case "-old":
				oldPath = args[i]
			case "-new":
				newPath = args[i]
			case "-threshold":
				v, ok := parseFloat(args[i])
				if !ok {
					fmt.Fprintf(stderr, "benchgate: bad -threshold %q\n", args[i])
					return 2
				}
				threshold = v
			}
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(stderr, "benchgate: unknown flag %q\n", a)
				return 2
			}
			files = append(files, a)
		}
	}

	switch {
	case emit:
		set := &Set{Benchmarks: map[string]*Samples{}}
		if len(files) == 0 {
			if err := parse(stdin, set); err != nil {
				fmt.Fprintf(stderr, "benchgate: %v\n", err)
				return 1
			}
		}
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(stderr, "benchgate: %v\n", err)
				return 1
			}
			err = parse(f, set)
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "benchgate: %v\n", err)
				return 1
			}
		}
		if len(set.Benchmarks) == 0 {
			fmt.Fprintln(stderr, "benchgate: no benchmark lines found")
			return 1
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(set)
		return 0

	case printB != "":
		set, err := readSet(printB)
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 1
		}
		printBench(stdout, set)
		return 0

	case oldPath != "" && newPath != "":
		oldSet, err := readSet(oldPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 1
		}
		newSet, err := readSet(newPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 1
		}
		findings := gate(oldSet, newSet, gateNs, threshold)
		for _, f := range findings {
			fmt.Fprintf(stdout, "FAIL %s: %s\n", f.Bench, f.Reason)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "benchgate: %d regression(s)\n", len(findings))
			return 1
		}
		fmt.Fprintln(stdout, "benchgate: ok")
		return 0
	}

	fmt.Fprintln(stderr, "usage: benchgate -emit [file...] | -old base.json -new head.json [-ns] [-threshold pct] | -print-bench set.json")
	return 2
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
