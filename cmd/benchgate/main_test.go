package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: offload/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEventScheduleFire-8   	79945828	        14.97 ns/op	       0 B/op	       0 allocs/op
BenchmarkEventScheduleFire-8   	81236142	        14.61 ns/op	       0 B/op	       0 allocs/op
BenchmarkEventChurn1k-8        	11818395	       101.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkE1_LatencyCliff       	     100	  10250000 ns/op
PASS
ok  	offload/internal/sim	4.521s
`

func TestParseLine(t *testing.T) {
	name, ns, bytes_, allocs, haveMem, ok := parseLine(
		"BenchmarkEventScheduleFire-8   \t79945828\t        14.97 ns/op\t       48 B/op\t       1 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected a valid bench line")
	}
	if name != "BenchmarkEventScheduleFire" {
		t.Fatalf("name = %q, want cpu suffix stripped", name)
	}
	if ns != 14.97 || bytes_ != 48 || allocs != 1 || !haveMem {
		t.Fatalf("parsed ns=%v B=%v allocs=%v haveMem=%v", ns, bytes_, allocs, haveMem)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \toffload/internal/sim\t4.5s",
		"",
		"Benchmark", // no fields
		"BenchmarkX not-a-count 14 ns/op",
	} {
		if _, _, _, _, _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
}

func TestParseAccumulates(t *testing.T) {
	set := &Set{Benchmarks: map[string]*Samples{}}
	if err := parse(strings.NewReader(sampleOutput), set); err != nil {
		t.Fatal(err)
	}
	s := set.Benchmarks["BenchmarkEventScheduleFire"]
	if s == nil || len(s.NsPerOp) != 2 {
		t.Fatalf("ScheduleFire samples = %+v, want 2 runs", s)
	}
	// A bench without -benchmem columns parses with ns only.
	e1 := set.Benchmarks["BenchmarkE1_LatencyCliff"]
	if e1 == nil || len(e1.NsPerOp) != 1 || len(e1.AllocsPerOp) != 0 {
		t.Fatalf("E1 samples = %+v, want 1 ns sample and no mem columns", e1)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median odd = %v", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("median even = %v", got)
	}
	if got := median(nil); !math.IsNaN(got) {
		t.Fatalf("median empty = %v, want NaN", got)
	}
}

func samplesOf(ns []float64, allocs float64) *Samples {
	a := make([]float64, len(ns))
	b := make([]float64, len(ns))
	for i := range a {
		a[i] = allocs
	}
	return &Samples{NsPerOp: ns, BytesPerOp: b, AllocsPerOp: a}
}

func TestGateFailsOnAllocIncrease(t *testing.T) {
	old := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{10, 11}, 0)}}
	head := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{10, 11}, 1)}}
	findings := gate(old, head, false, 15)
	if len(findings) != 1 || !strings.Contains(findings[0].Reason, "zero-allocation") {
		t.Fatalf("findings = %+v, want one alloc-contract failure", findings)
	}
}

func TestGateIgnoresAllocChurnAboveZero(t *testing.T) {
	// 3 → 4 allocs is not a zero-alloc contract break.
	old := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{10}, 3)}}
	head := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{10}, 4)}}
	if findings := gate(old, head, false, 15); len(findings) != 0 {
		t.Fatalf("findings = %+v, want none", findings)
	}
}

func TestGateNsRegressionNonOverlapping(t *testing.T) {
	old := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{100, 101, 102}, 0)}}
	head := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{130, 131, 132}, 0)}}
	findings := gate(old, head, true, 15)
	if len(findings) != 1 || !strings.Contains(findings[0].Reason, "ns/op regressed") {
		t.Fatalf("findings = %+v, want one ns regression", findings)
	}
	// Without -ns the same data passes: ns gating is same-machine only.
	if findings := gate(old, head, false, 15); len(findings) != 0 {
		t.Fatalf("alloc-only gate flagged an ns change: %+v", findings)
	}
}

func TestGateNsOverlappingRangesAreNoise(t *testing.T) {
	// Median regression is >15% but the sample ranges overlap, so it's
	// indistinguishable from machine noise and must pass.
	old := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{100, 100, 140}, 0)}}
	head := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{130, 131, 132}, 0)}}
	if findings := gate(old, head, true, 15); len(findings) != 0 {
		t.Fatalf("findings = %+v, want none for overlapping ranges", findings)
	}
}

func TestGateImprovementPasses(t *testing.T) {
	old := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{100}, 1)}}
	head := &Set{Benchmarks: map[string]*Samples{"BenchmarkX": samplesOf([]float64{50}, 0)}}
	if findings := gate(old, head, true, 15); len(findings) != 0 {
		t.Fatalf("findings = %+v, want none for an improvement", findings)
	}
}

func TestGateSkipsUnmatchedBenchmarks(t *testing.T) {
	old := &Set{Benchmarks: map[string]*Samples{}}
	head := &Set{Benchmarks: map[string]*Samples{"BenchmarkNew": samplesOf([]float64{10}, 5)}}
	if findings := gate(old, head, true, 15); len(findings) != 0 {
		t.Fatalf("findings = %+v, want none for a brand-new benchmark", findings)
	}
}

// TestEmitGateRoundTrip drives the CLI end to end: emit a baseline and a
// regressed head from raw bench output, then gate them.
func TestEmitGateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(raw, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}

	var base bytes.Buffer
	if code := run([]string{"-emit", raw}, nil, &base, os.Stderr); code != 0 {
		t.Fatalf("emit exited %d", code)
	}
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(basePath, base.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Same data gated against itself: clean pass.
	var out bytes.Buffer
	if code := run([]string{"-old", basePath, "-new", basePath, "-ns"}, nil, &out, os.Stderr); code != 0 {
		t.Fatalf("self-gate exited %d: %s", code, out.String())
	}

	// A head where the zero-alloc bench now allocates: gate fails.
	regressed := strings.ReplaceAll(sampleOutput,
		"101.3 ns/op\t       0 B/op\t       0 allocs/op",
		"101.3 ns/op\t      48 B/op\t       1 allocs/op")
	rawBad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(rawBad, []byte(regressed), 0o644); err != nil {
		t.Fatal(err)
	}
	var head bytes.Buffer
	if code := run([]string{"-emit", rawBad}, nil, &head, os.Stderr); code != 0 {
		t.Fatalf("emit exited %d", code)
	}
	headPath := filepath.Join(dir, "head.json")
	if err := os.WriteFile(headPath, head.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-old", basePath, "-new", headPath}, nil, &out, os.Stderr); code != 1 {
		t.Fatalf("gate exited %d, want 1; output: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkEventChurn1k") {
		t.Fatalf("gate output missing the regressed bench: %s", out.String())
	}
}

func TestPrintBench(t *testing.T) {
	set := &Set{Benchmarks: map[string]*Samples{
		"BenchmarkX": samplesOf([]float64{10.5, 11}, 0),
	}}
	var buf bytes.Buffer
	printBench(&buf, set)
	want := "BenchmarkX 1 10.5 ns/op 0 B/op 0 allocs/op\nBenchmarkX 1 11 ns/op 0 B/op 0 allocs/op\n"
	if buf.String() != want {
		t.Fatalf("printBench:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX-16":       "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkE1_Cliff-4": "BenchmarkE1_Cliff",
		"BenchmarkX-abc":      "BenchmarkX-abc",
	} {
		if got := trimCPUSuffix(in); got != want {
			t.Fatalf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
