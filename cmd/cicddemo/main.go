// Command cicddemo walks through the CI/CD integration end to end: a
// vanilla deployment pipeline, the offload-integrated pipeline (profile →
// partition → allocate → deploy → canary), and a third run with an
// injected performance regression that the canary catches and rolls back.
//
// Usage:
//
//	cicddemo            # uses the report-gen template
//	cicddemo -app sci-batch -regression 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"offload/internal/callgraph"
	"offload/internal/cicd"
	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/profile"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

func main() {
	var (
		appFlag  = flag.String("app", "report-gen", "application template")
		regFlag  = flag.Float64("regression", 5, "injected slowdown factor for the third run")
		seedFlag = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	g, ok := callgraph.Templates()[*appFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "cicddemo: unknown app %q (have %v)\n", *appFlag, callgraph.TemplateNames())
		os.Exit(2)
	}

	eng := sim.NewEngine()
	platform := serverless.NewPlatform(eng, rng.New(*seedFlag), serverless.LambdaLike())
	cost := core.CostModelFor(device.Smartphone(), serverless.LambdaLike(),
		serverless.LambdaLike().FullShareBytes, network.WiFiCloud(), core.DefaultWeights())

	fmt.Println("== round 1: vanilla pipeline (no offloading stages) ==")
	vanilla := &cicd.Build{App: g}
	vanRep := run(eng, vanilla)
	printReport(vanRep)

	fmt.Println("== round 2: offload-integrated pipeline ==")
	healthy := &cicd.Build{
		App: g, Platform: platform, Cost: cost,
		Meter:       profile.NewMeter(rng.New(*seedFlag+1), 0.05),
		ProfileRuns: 30,
		Canary:      cicd.CanarySpec{Invocations: 5, SLOFactor: 2},
		WithOffload: true,
	}
	healthyCtx := cicd.NewContext()
	healthyRep := runCtx(eng, healthy, healthyCtx)
	printReport(healthyRep)
	var manifest *cicd.Manifest
	if mv, ok := healthyCtx.Get(cicd.KeyManifest); ok {
		manifest = mv.(*cicd.Manifest)
		fmt.Printf("deployed functions:\n")
		for _, fn := range manifest.Functions {
			fmt.Printf("  %-32s %5d MB\n", fn.Name, fn.MemoryBytes/model.MB)
		}
		fmt.Println()
	}

	fmt.Printf("== round 3: a build with a %gx performance regression ==\n", *regFlag)
	regressed := &cicd.Build{
		App: g, Platform: platform, Cost: cost,
		Meter:            profile.NewMeter(rng.New(*seedFlag+2), 0.05),
		ProfileRuns:      30,
		Canary:           cicd.CanarySpec{Invocations: 5, SLOFactor: 2},
		Previous:         manifest,
		InjectRegression: *regFlag,
		WithOffload:      true,
	}
	regCtx := cicd.NewContext()
	regRep := runCtx(eng, regressed, regCtx)
	printReport(regRep)
	if cv, ok := regCtx.Get(cicd.KeyCanary); ok {
		c := cv.(cicd.CanaryResult)
		fmt.Printf("canary: mean exec %.3gs vs expectation %.3gs (SLO %.3gs) → passed=%v\n",
			c.MeanExecS, c.ExpectedS, 2*c.ExpectedS, c.Passed)
	}
	if rb, ok := regRep.Stage("rollback"); ok && errors.Is(rb.Err, cicd.ErrRolledBack) {
		fmt.Println("rollback: previous manifest restored, release skipped ✓")
	}
}

func run(eng *sim.Engine, b *cicd.Build) cicd.Report {
	return runCtx(eng, b, cicd.NewContext())
}

func runCtx(eng *sim.Engine, b *cicd.Build, ctx *cicd.Context) cicd.Report {
	p, err := b.Pipeline()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cicddemo: %v\n", err)
		os.Exit(1)
	}
	var rep cicd.Report
	p.Run(eng, ctx, func(r cicd.Report) { rep = r })
	eng.Run()
	return rep
}

func printReport(rep cicd.Report) {
	tbl := metrics.NewTable("", "stage", "start_s", "dur_s", "status")
	for _, res := range rep.Results {
		status := "ok"
		switch {
		case res.Skipped:
			status = "skipped"
		case res.Err != nil:
			status = "FAILED: " + res.Err.Error()
		}
		tbl.AddRow(res.Name,
			fmt.Sprintf("%.0f", float64(res.Start)),
			fmt.Sprintf("%.1f", float64(res.Duration())),
			status)
	}
	fmt.Println(tbl.String())
	fmt.Printf("pipeline %s: total %.0fs, succeeded=%v\n\n",
		rep.Pipeline, float64(rep.Duration()), rep.Succeeded())
}
