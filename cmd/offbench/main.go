// Command offbench regenerates the evaluation suite E1–E17 from DESIGN.md
// and prints each table (aligned text by default, CSV with -csv).
//
// Experiments run on a bounded worker pool (-parallel, default NumCPU)
// with per-experiment seeds derived from -seed, so the data written to
// stdout is byte-identical for every worker count — CI diffs serial
// against parallel runs to enforce this. Progress and per-experiment
// wall-clock/allocation stats go to stderr, keeping stdout pure data.
//
// Usage:
//
//	offbench                 # run everything at full scale
//	offbench -exp E2,E4      # selected experiments
//	offbench -scale quick    # the CI-sized scale
//	offbench -csv            # machine-readable output
//	offbench -parallel 4     # bound the worker pool
//	offbench -list           # print the experiment index
//
// offbench exits 0 only when every selected experiment succeeded; any
// experiment error (or panic) makes it exit 1 after reporting the tables
// that did complete.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"offload/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], exp.Registry(), os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: the experiment registry and
// both output streams, so tests can drive it end to end, including the
// failure paths.
func run(args []string, registry []exp.Experiment, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("offbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag      = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		scaleFlag    = fs.String("scale", "full", "scale: quick or full")
		csvFlag      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		outFlag      = fs.String("out", "", "also write each table as a CSV file into this directory")
		listFlag     = fs.Bool("list", false, "list experiments and exit")
		seedFlag     = fs.Uint64("seed", 1, "base RNG seed")
		parallelFlag = fs.Int("parallel", 0, "worker-pool size (0 = NumCPU); output is identical for any value")
		quietFlag    = fs.Bool("quiet", false, "suppress per-experiment progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, e := range registry {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Claim)
		}
		return 0
	}

	var scale exp.Scale
	switch *scaleFlag {
	case "quick":
		scale = exp.Quick()
	case "full":
		scale = exp.Full()
	default:
		fmt.Fprintf(stderr, "offbench: unknown scale %q (quick|full)\n", *scaleFlag)
		return 2
	}
	scale.Seed = *seedFlag

	selected, err := selectExperiments(registry, *expFlag)
	if err != nil {
		fmt.Fprintf(stderr, "offbench: %v\n", err)
		return 2
	}

	if *outFlag != "" {
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			fmt.Fprintf(stderr, "offbench: %v\n", err)
			return 1
		}
	}

	runner := &exp.Runner{Scale: scale, Parallel: *parallelFlag}
	if !*quietFlag {
		runner.OnResult = func(res exp.Result) {
			switch {
			case res.Skipped:
				fmt.Fprintf(stderr, "offbench: %-4s skipped\n", res.ID)
			case res.Err != nil:
				fmt.Fprintf(stderr, "offbench: %-4s FAILED after %v\n", res.ID, res.Elapsed.Round(time.Millisecond))
			default:
				fmt.Fprintf(stderr, "offbench: %-4s done in %7v, %6.1f MB allocated\n",
					res.ID, res.Elapsed.Round(time.Millisecond),
					float64(res.AllocBytes)/(1<<20))
			}
		}
	}
	results, runErr := runner.Run(context.Background(), selected)

	// Tables print in suite order whatever order workers finished in, so
	// the report reads identically at every -parallel value.
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		fmt.Fprintf(stdout, "### %s — %s\n\n", res.ID, res.Claim)
		for i, t := range res.Tables {
			if *csvFlag {
				fmt.Fprintf(stdout, "# %s\n%s\n", t.Title(), t.CSV())
			} else {
				fmt.Fprintln(stdout, t.String())
			}
			if *outFlag != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(res.ID), i+1)
				path := filepath.Join(*outFlag, name)
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(stderr, "offbench: writing %s: %v\n", path, err)
					return 1
				}
			}
		}
	}

	if runErr != nil {
		for _, res := range results {
			if res.Err != nil && !res.Skipped {
				fmt.Fprintf(stderr, "offbench: %v\n", res.Err)
			}
		}
		return 1
	}
	return 0
}

// selectExperiments resolves a comma-separated ID list against the given
// registry, preserving suite order for the empty (run everything) case.
func selectExperiments(registry []exp.Experiment, ids string) ([]exp.Experiment, error) {
	if ids == "" {
		return registry, nil
	}
	byID := make(map[string]exp.Experiment, len(registry))
	var known []string
	for _, e := range registry {
		byID[e.ID] = e
		known = append(known, e.ID)
	}
	var selected []exp.Experiment
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		e, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (have %v)", id, known)
		}
		selected = append(selected, e)
	}
	return selected, nil
}
