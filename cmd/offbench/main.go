// Command offbench regenerates the evaluation suite E1–E22 from DESIGN.md
// and prints each table (aligned text by default, CSV with -csv).
//
// Experiments run on a bounded worker pool (-parallel, default NumCPU)
// with per-experiment seeds derived from -seed, so the data written to
// stdout is byte-identical for every worker count — CI diffs serial
// against parallel runs to enforce this. Progress and per-experiment
// wall-clock/allocation stats go to stderr, keeping stdout pure data.
//
// Usage:
//
//	offbench                 # run everything at full scale
//	offbench -exp E2,E4      # selected experiments
//	offbench -scale quick    # the CI-sized scale
//	offbench -csv            # machine-readable output
//	offbench -parallel 4     # bound the worker pool
//	offbench -shards 7       # shard the E21 fleet; output identical for any value
//	offbench -spans DIR      # export per-cell causal spans (JSONL + Chrome trace)
//	offbench -list           # print the experiment index
//
// offbench exits 0 only when every selected experiment succeeded; any
// experiment error (or panic) makes it exit 1 after reporting the tables
// that did complete.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"offload/internal/exp"
	"offload/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:], exp.Registry(), os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: the experiment registry and
// both output streams, so tests can drive it end to end, including the
// failure paths.
func run(args []string, registry []exp.Experiment, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("offbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag      = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		scaleFlag    = fs.String("scale", "full", "scale: quick or full")
		csvFlag      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		outFlag      = fs.String("out", "", "also write each table as a CSV file into this directory")
		metricsFlag  = fs.String("metrics", "", "export sim-time series and merged metrics registries (CSV + JSONL) into this directory")
		spansFlag    = fs.String("spans", "", "export per-cell causal spans (versioned JSONL + Chrome trace JSON) into this directory")
		listFlag     = fs.Bool("list", false, "list experiments and exit")
		seedFlag     = fs.Uint64("seed", 1, "base RNG seed")
		parallelFlag = fs.Int("parallel", 0, "worker-pool size (0 = NumCPU); output is identical for any value")
		shardsFlag   = fs.Int("shards", 0, "worker shards for the sharded-engine experiments (E21); output is identical for any value")
		quietFlag    = fs.Bool("quiet", false, "suppress per-experiment progress on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, e := range registry {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Claim)
		}
		return 0
	}

	var scale exp.Scale
	switch *scaleFlag {
	case "quick":
		scale = exp.Quick()
	case "full":
		scale = exp.Full()
	default:
		fmt.Fprintf(stderr, "offbench: unknown scale %q (quick|full)\n", *scaleFlag)
		return 2
	}
	scale.Seed = *seedFlag
	if *shardsFlag < 0 {
		fmt.Fprintf(stderr, "offbench: -shards %d negative\n", *shardsFlag)
		return 2
	}
	scale.Shards = *shardsFlag

	selected, err := selectExperiments(registry, *expFlag)
	if err != nil {
		fmt.Fprintf(stderr, "offbench: %v\n", err)
		return 2
	}

	for _, dir := range []string{*outFlag, *metricsFlag, *spansFlag} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(stderr, "offbench: %v\n", err)
			return 1
		}
	}

	runner := &exp.Runner{Scale: scale, Parallel: *parallelFlag}
	if *metricsFlag != "" {
		runner.ObserveEvery = metricsInterval
	}
	if *spansFlag != "" {
		runner.RecordSpans = true
	}
	if !*quietFlag {
		runner.OnResult = func(res exp.Result) {
			switch {
			case res.Skipped:
				fmt.Fprintf(stderr, "offbench: %-4s skipped\n", res.ID)
			case res.Err != nil:
				fmt.Fprintf(stderr, "offbench: %-4s FAILED after %v\n", res.ID, res.Elapsed.Round(time.Millisecond))
			default:
				fmt.Fprintf(stderr, "offbench: %-4s done in %7v, %6.1f MB allocated\n",
					res.ID, res.Elapsed.Round(time.Millisecond),
					float64(res.AllocBytes)/(1<<20))
			}
		}
	}
	results, runErr := runner.Run(context.Background(), selected)

	// Tables print in suite order whatever order workers finished in, so
	// the report reads identically at every -parallel value.
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		fmt.Fprintf(stdout, "### %s — %s\n\n", res.ID, res.Claim)
		for i, t := range res.Tables {
			if *csvFlag {
				fmt.Fprintf(stdout, "# %s\n", t.Title())
				t.WriteCSV(stdout)
				fmt.Fprintln(stdout)
			} else {
				fmt.Fprintln(stdout, t.String())
			}
			if *outFlag != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(res.ID), i+1)
				path := filepath.Join(*outFlag, name)
				if err := writeTableCSV(path, t); err != nil {
					fmt.Fprintf(stderr, "offbench: writing %s: %v\n", path, err)
					return 1
				}
			}
		}
		if *metricsFlag != "" {
			if err := writeMetrics(*metricsFlag, res); err != nil {
				fmt.Fprintf(stderr, "offbench: %v\n", err)
				return 1
			}
		}
		if *spansFlag != "" {
			if err := writeSpans(*spansFlag, res); err != nil {
				fmt.Fprintf(stderr, "offbench: %v\n", err)
				return 1
			}
		}
	}

	if runErr != nil {
		for _, res := range results {
			if res.Err != nil && !res.Skipped {
				fmt.Fprintf(stderr, "offbench: %v\n", res.Err)
			}
		}
		return 1
	}
	return 0
}

// metricsInterval is the sampling period for -metrics: 5 simulated
// seconds, fine enough to show queue build-up at the suite's arrival
// rates without bloating the export.
const metricsInterval = 5

// writeMetrics exports one experiment's observability data: each cell's
// time series and the experiment's merged registry, as both CSV and JSONL.
// Filenames derive only from series/registry names, and the data is a pure
// function of the experiment's derived seed, so the directory contents are
// byte-identical at any -parallel value.
func writeMetrics(dir string, res exp.Result) error {
	for _, ts := range res.Series {
		if err := writeBoth(dir, ts.Name(), ts.WriteCSV, ts.WriteJSONL); err != nil {
			return err
		}
	}
	if res.Registry != nil {
		name := res.Registry.Name() + "_registry"
		if err := writeBoth(dir, name, res.Registry.WriteCSV, res.Registry.WriteJSONL); err != nil {
			return err
		}
	}
	return nil
}

// writeSpans exports one experiment's causal spans: per simulated cell,
// the versioned span JSONL and its Chrome trace-event rendering.
// Filenames derive only from cell names and the data is a pure function
// of the experiment's derived seed, so the directory contents are
// byte-identical at any -parallel value.
func writeSpans(dir string, res exp.Result) error {
	for _, set := range res.Spans {
		for suffix, write := range map[string]func(io.Writer) error{
			"_spans.jsonl": set.WriteJSONL,
			"_trace.json":  set.WriteChromeTrace,
		} {
			path := filepath.Join(dir, set.Run+suffix)
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
			if err := write(f); err != nil {
				f.Close()
				return fmt.Errorf("writing %s: %w", path, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
	}
	return nil
}

// writeTableCSV streams one result table to a CSV file.
func writeTableCSV(path string, t *metrics.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeBoth writes <dir>/<name>.csv and <dir>/<name>.jsonl from the given
// writer methods.
func writeBoth(dir, name string, csv, jsonl func(io.Writer) error) error {
	for ext, write := range map[string]func(io.Writer) error{".csv": csv, ".jsonl": jsonl} {
		path := filepath.Join(dir, name+ext)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	return nil
}

// selectExperiments resolves a comma-separated ID list against the given
// registry, preserving suite order for the empty (run everything) case.
func selectExperiments(registry []exp.Experiment, ids string) ([]exp.Experiment, error) {
	if ids == "" {
		return registry, nil
	}
	byID := make(map[string]exp.Experiment, len(registry))
	var known []string
	for _, e := range registry {
		byID[e.ID] = e
		known = append(known, e.ID)
	}
	var selected []exp.Experiment
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		e, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (have %v)", id, known)
		}
		selected = append(selected, e)
	}
	return selected, nil
}
