// Command offbench regenerates the evaluation suite E1–E15 from DESIGN.md
// and prints each table (aligned text by default, CSV with -csv).
//
// Usage:
//
//	offbench                 # run everything at full scale
//	offbench -exp E2,E4      # selected experiments
//	offbench -scale quick    # the CI-sized scale
//	offbench -csv            # machine-readable output
//	offbench -list           # print the experiment index
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"offload/internal/exp"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		scaleFlag = flag.String("scale", "full", "scale: quick or full")
		csvFlag   = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outFlag   = flag.String("out", "", "also write each table as a CSV file into this directory")
		listFlag  = flag.Bool("list", false, "list experiments and exit")
		seedFlag  = flag.Uint64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range exp.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	var scale exp.Scale
	switch *scaleFlag {
	case "quick":
		scale = exp.Quick()
	case "full":
		scale = exp.Full()
	default:
		fmt.Fprintf(os.Stderr, "offbench: unknown scale %q (quick|full)\n", *scaleFlag)
		os.Exit(2)
	}
	scale.Seed = *seedFlag

	var selected []exp.Experiment
	if *expFlag == "" {
		selected = exp.Registry()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "offbench: %v\n", err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *outFlag != "" {
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "offbench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables := e.Run(scale)
		fmt.Printf("### %s — %s (ran in %v)\n\n", e.ID, e.Claim, time.Since(start).Round(time.Millisecond))
		for i, t := range tables {
			if *csvFlag {
				fmt.Printf("# %s\n%s\n", t.Title(), t.CSV())
			} else {
				fmt.Println(t.String())
			}
			if *outFlag != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i+1)
				path := filepath.Join(*outFlag, name)
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "offbench: writing %s: %v\n", path, err)
					os.Exit(1)
				}
			}
		}
	}
}
