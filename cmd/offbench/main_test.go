package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"offload/internal/exp"
	"offload/internal/metrics"
)

// fakeRegistry is a tiny stand-in suite: two healthy experiments and an
// optional failing or panicking one, fast enough to run many times.
func fakeRegistry(fail, panics bool) []exp.Experiment {
	ok := func(id string, seq int) exp.Experiment {
		return exp.Experiment{ID: id, Seq: seq, Claim: id + " claim",
			Run: func(s exp.Scale) ([]*metrics.Table, error) {
				tbl := metrics.NewTable(id+" table", "seed", "tasks")
				tbl.AddRowf(s.Seed, s.Tasks)
				return []*metrics.Table{tbl}, nil
			}}
	}
	reg := []exp.Experiment{ok("F1", 0), ok("F2", 1)}
	if fail {
		reg = append(reg, exp.Experiment{ID: "F3", Seq: 2, Claim: "always fails",
			Run: func(s exp.Scale) ([]*metrics.Table, error) {
				return nil, errors.New("injected failure")
			}})
	}
	if panics {
		reg = append(reg, exp.Experiment{ID: "F4", Seq: 3, Claim: "always panics",
			Run: func(s exp.Scale) ([]*metrics.Table, error) {
				panic("injected panic")
			}})
	}
	return reg
}

func TestRunSucceeds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scale", "quick", "-csv"}, fakeRegistry(false, false), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	for _, want := range []string{"### F1 — F1 claim", "### F2 — F2 claim", "# F1 table"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	if !strings.Contains(stderr.String(), "F1") {
		t.Errorf("stderr carries no progress lines:\n%s", stderr.String())
	}
}

func TestRunExitsNonZeroOnExperimentError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scale", "quick", "-parallel", "1"}, fakeRegistry(true, false), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "injected failure") {
		t.Errorf("stderr does not name the failure:\n%s", stderr.String())
	}
	// The healthy experiments' tables still print before the non-zero exit.
	if !strings.Contains(stdout.String(), "### F1") {
		t.Errorf("partial results were discarded:\n%s", stdout.String())
	}
}

func TestRunExitsNonZeroOnPanic(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scale", "quick", "-parallel", "1"}, fakeRegistry(false, true), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "injected panic") {
		t.Errorf("stderr does not surface the panic:\n%s", stderr.String())
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	// Same seed, different worker counts: stdout must be byte-identical.
	// Uses the real registry restricted to fast experiments; CI runs the
	// same check over the full suite.
	var want string
	for _, parallel := range []string{"1", "4", "16"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-scale", "quick", "-csv", "-seed", "7",
			"-exp", "E2,E3,E16", "-parallel", parallel, "-quiet"},
			exp.Registry(), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("parallel=%s: exit %d, stderr: %s", parallel, code, stderr.String())
		}
		if want == "" {
			want = stdout.String()
			continue
		}
		if stdout.String() != want {
			t.Fatalf("parallel=%s stdout differs from parallel=1", parallel)
		}
	}
}

func TestRunSelectsAndOrders(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scale", "quick", "-exp", "F2,F1"}, fakeRegistry(false, false), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	out := stdout.String()
	if !strings.Contains(out, "F2") || strings.Index(out, "### F2") > strings.Index(out, "### F1") {
		t.Errorf("selection order not preserved:\n%s", out)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "F9"}, fakeRegistry(false, false), &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunRejectsUnknownScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scale", "huge"}, fakeRegistry(false, false), &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// TestRunMetricsExport: -metrics writes per-cell time series and a merged
// registry per experiment, byte-identical across -parallel values, without
// changing stdout.
func TestRunMetricsExport(t *testing.T) {
	readAll := func(dir string) map[string]string {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string]string, len(entries))
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = string(data)
		}
		return files
	}
	var plain bytes.Buffer
	if code := run([]string{"-scale", "quick", "-csv", "-seed", "3", "-exp", "E1,E12", "-quiet"},
		exp.Registry(), &plain, &bytes.Buffer{}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var got map[string]string
	for _, parallel := range []string{"1", "4"} {
		dir := t.TempDir()
		var stdout, stderr bytes.Buffer
		code := run([]string{"-scale", "quick", "-csv", "-seed", "3", "-exp", "E1,E12",
			"-parallel", parallel, "-quiet", "-metrics", dir},
			exp.Registry(), &stdout, &stderr)
		if code != 0 {
			t.Fatalf("parallel=%s: exit %d, stderr: %s", parallel, code, stderr.String())
		}
		if stdout.String() != plain.String() {
			t.Fatal("-metrics changed stdout")
		}
		files := readAll(dir)
		if got == nil {
			got = files
			continue
		}
		if len(files) != len(got) {
			t.Fatalf("parallel=%s wrote %d files, parallel=1 wrote %d", parallel, len(files), len(got))
		}
		for name, content := range files {
			if got[name] != content {
				t.Fatalf("parallel=%s: %s differs from serial run", parallel, name)
			}
		}
	}
	for _, want := range []string{"e1_cell001.csv", "e1_cell001.jsonl", "e1_registry.csv", "e12_registry.jsonl"} {
		if _, ok := got[want]; !ok {
			t.Fatalf("missing export %s (have %d files)", want, len(got))
		}
	}
	if !strings.HasPrefix(got["e1_cell001.csv"], "time_s,tasks_completed,") {
		t.Fatalf("series header = %q", strings.SplitN(got["e1_cell001.csv"], "\n", 2)[0])
	}
	if !strings.Contains(got["e12_registry.csv"], "cost_usd{state=failed}") {
		t.Fatal("registry export missing failed-cost counter")
	}
}

// tornLineWriter is a hostile stderr: it dribbles every Write out
// byte-by-byte with scheduler yields in between, so any two concurrent
// writers WILL interleave mid-line, and it detects overlapping Write
// calls directly. The runner must funnel all progress output through one
// goroutine for this writer to come out clean.
type tornLineWriter struct {
	t       *testing.T
	buf     bytes.Buffer
	inWrite atomic.Bool
}

func (w *tornLineWriter) Write(p []byte) (int, error) {
	if !w.inWrite.CompareAndSwap(false, true) {
		w.t.Error("concurrent Write on stderr")
	}
	for _, b := range p {
		w.buf.WriteByte(b)
		runtime.Gosched()
	}
	w.inWrite.Store(false)
	return len(p), nil
}

// TestRunParallelStderrNotTorn scrapes the progress stream produced under
// -parallel for torn lines: every stderr line must be one complete,
// well-formed progress record.
func TestRunParallelStderrNotTorn(t *testing.T) {
	reg := make([]exp.Experiment, 16)
	for i := range reg {
		id := fmt.Sprintf("T%d", i)
		reg[i] = exp.Experiment{ID: id, Seq: i, Claim: id + " claim",
			Run: func(s exp.Scale) ([]*metrics.Table, error) {
				time.Sleep(time.Duration(s.Seed%5) * time.Millisecond)
				tbl := metrics.NewTable(id+" table", "seed")
				tbl.AddRowf(s.Seed)
				return []*metrics.Table{tbl}, nil
			}}
	}
	var stdout bytes.Buffer
	stderr := &tornLineWriter{t: t}
	if code := run([]string{"-scale", "quick", "-parallel", "8"}, reg, &stdout, stderr); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.buf.String())
	}
	lines := strings.Split(strings.TrimRight(stderr.buf.String(), "\n"), "\n")
	if len(lines) != len(reg) {
		t.Fatalf("stderr has %d lines, want %d:\n%s", len(lines), len(reg), stderr.buf.String())
	}
	done := regexp.MustCompile(`^offbench: T\d+ +done in +[0-9a-z.µ]+, +[0-9.]+ MB allocated$`)
	for _, line := range lines {
		if !done.MatchString(line) {
			t.Errorf("torn or malformed progress line: %q", line)
		}
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, fakeRegistry(false, false), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(stdout.String(), "F1 claim") {
		t.Errorf("list output missing claims:\n%s", stdout.String())
	}
}
