package main

import (
	"flag"
	"fmt"
	"io"

	"offload/internal/callgraph"
	"offload/internal/dag"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sim"
	"offload/internal/workload"
)

// runDAG implements `offctl dag`: build a DAG job — either by converting
// an application call graph (-app/-spec) or by drawing one from the
// random generator family (-shape) — and print its structure as a table
// or Graphviz DOT.
func runDAG(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dag", flag.ExitOnError)
	appFlag := fs.String("app", "", "convert a built-in application template")
	specFlag := fs.String("spec", "", "convert a JSON application spec")
	shapeFlag := fs.String("shape", "", "generate: pipeline, fork-join or layered")
	nodesFlag := fs.Int("nodes", 8, "generate: nodes per job")
	widthFlag := fs.Int("width", 3, "generate: max nodes per layer (layered)")
	seedFlag := fs.Uint64("seed", 1, "generate: RNG seed")
	dotFlag := fs.Bool("dot", false, "emit Graphviz DOT instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var job *dag.Job
	switch {
	case *shapeFlag != "":
		tmpl := workload.JobTemplate{
			App:         "dag-" + *shapeFlag,
			Shape:       workload.JobShape(*shapeFlag),
			Nodes:       *nodesFlag,
			Width:       *widthFlag,
			MeanCycles:  2e9,
			CyclesSigma: 0.25,
			EdgeBytes:   2 * model.MB,
			InputBytes:  4 * model.MB,
			OutputBytes: 1 * model.MB,
			Deadline:    3600,
		}
		gen, err := workload.NewJobGenerator(rng.New(*seedFlag), tmpl)
		if err != nil {
			return err
		}
		job = gen.Next()
		if err := job.Validate(); err != nil {
			return err
		}
	case *appFlag != "" || *specFlag != "":
		g, err := loadGraph(*appFlag, *specFlag)
		if err != nil {
			return err
		}
		job, err = workload.JobFromGraph(g)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("dag: need -app, -spec or -shape (templates: %v)",
			callgraph.TemplateNames())
	}

	if *dotFlag {
		fmt.Fprint(w, job.DOT())
		return nil
	}

	fmt.Fprintf(w, "job: %s\nnodes: %d, edges: %d, total demand: %.3g Gcyc, deadline: %s\n",
		job.App(), job.Len(), len(job.Edges()), job.TotalCycles()/1e9, fmtDeadline(job.Deadline()))
	tbl := metrics.NewTable("nodes in topological order",
		"node", "gcycles", "in_bytes", "out_bytes", "preds", "succs")
	for _, id := range job.TopoOrder() {
		n := job.Node(id)
		in, out := job.TaskSizes(id)
		tbl.AddRow(n.Name,
			fmt.Sprintf("%.3g", n.Cycles/1e9),
			fmt.Sprintf("%d", in),
			fmt.Sprintf("%d", out),
			fmt.Sprintf("%d", len(job.Preds(id))),
			fmt.Sprintf("%d", len(job.Succs(id))),
		)
	}
	fmt.Fprintln(w, tbl.String())
	return nil
}

func fmtDeadline(d sim.Duration) string {
	if d <= 0 {
		return "none"
	}
	return fmt.Sprintf("%gs", float64(d))
}
