package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"offload/internal/core"
	"offload/internal/fault"
)

// faultsSpec is the JSON shape "offctl faults" reads: the fault-related
// subset of core.Config, so a config can be reviewed before a run.
type faultsSpec struct {
	Fault     *fault.Config
	EdgeFault *fault.Config
	VMFault   *fault.Config
	Regions   *core.RegionsConfig
}

// runFaults implements "offctl faults -config file.json": it validates
// the fault and region configuration and prints the composed injector
// stack each backend faces, in Decide's draw order — the regional
// schedule first (it is chained in front), then the backend's own fault
// model.
func runFaults(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	cfgPath := fs.String("config", "", "path to a JSON fault configuration")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cfgPath == "" {
		return fmt.Errorf("faults: -config is required")
	}
	data, err := os.ReadFile(*cfgPath)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec faultsSpec
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("faults: %v", err)
	}
	return describeFaults(w, spec)
}

func describeFaults(w io.Writer, spec faultsSpec) error {
	schedules := map[string]fault.RegionSchedule{}
	if spec.Regions != nil {
		for _, sch := range spec.Regions.Schedules {
			if err := sch.Validate(); err != nil {
				return err
			}
			if _, dup := schedules[sch.Region]; dup {
				return fmt.Errorf("faults: duplicate region schedule for %q", sch.Region)
			}
			schedules[sch.Region] = sch
		}
	}
	region := func(pick func(*core.RegionsConfig) string) string {
		if spec.Regions == nil {
			return ""
		}
		return pick(spec.Regions)
	}
	backends := []struct {
		name   string
		region string
		own    *fault.Config
	}{
		{"serverless", region(func(rc *core.RegionsConfig) string { return rc.Serverless }), spec.Fault},
		{"edge", region(func(rc *core.RegionsConfig) string { return rc.Edge }), spec.EdgeFault},
		{"vm", region(func(rc *core.RegionsConfig) string { return rc.VM }), spec.VMFault},
	}
	used := map[string]bool{}
	for _, b := range backends {
		if b.region != "" {
			fmt.Fprintf(w, "%s  region=%s\n", b.name, b.region)
		} else {
			fmt.Fprintf(w, "%s\n", b.name)
		}
		var lines []string
		if sch, ok := schedules[b.region]; ok && b.region != "" {
			used[b.region] = true
			for _, l := range sch.Config().Describe() {
				lines = append(lines, "regional  "+l)
			}
		}
		if b.own != nil {
			if err := b.own.Validate(); err != nil {
				return err
			}
			for _, l := range b.own.Describe() {
				lines = append(lines, "own       "+l)
			}
		}
		if len(lines) == 0 {
			lines = []string{"(none)"}
		}
		for _, l := range lines {
			fmt.Fprintf(w, "  %s\n", l)
		}
	}
	for name := range schedules {
		if !used[name] {
			return fmt.Errorf("faults: region schedule for %q matches no backend", name)
		}
	}
	if spec.Regions != nil && spec.Regions.Failover != nil {
		fo := spec.Regions.Failover
		fmt.Fprintf(w, "failover  threshold=%d probe_every=%gs\n",
			fo.FailureThreshold, float64(fo.ProbeEvery))
		if l := fo.Ladder; l != nil {
			fmt.Fprintf(w, "  ladder  shed-low@%gs localize-critical@%gs queue-and-wait@%gs\n",
				float64(l.ShedLowAfter), float64(l.LocalizeAfter), float64(l.QueueAfter))
		}
	}
	return nil
}
