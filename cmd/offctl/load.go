package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"offload/internal/metrics"
)

// loadResult aggregates one load run. Counts are totals over the run;
// the histogram holds per-request wall latency in seconds.
type loadResult struct {
	elapsed  time.Duration
	requests uint64
	accepted uint64
	shed     uint64 // HTTP 429: the admission path working as designed
	errors   uint64 // transport errors and 5xx
	other    uint64 // anything else (4xx)
	lat      *metrics.Histogram

	scrapeOK   uint64
	scrapeFail uint64
}

func (r *loadResult) achieved() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.requests) / r.elapsed.Seconds()
}

func (r *loadResult) write(out io.Writer, target float64) {
	pct := func(n uint64) float64 {
		if r.requests == 0 {
			return 0
		}
		return 100 * float64(n) / float64(r.requests)
	}
	ms := func(q float64) float64 { return r.lat.Quantile(q) * 1000 }
	fmt.Fprintf(out, "offctl load: %d requests in %.1fs = %.1f req/s (target %.0f)\n",
		r.requests, r.elapsed.Seconds(), r.achieved(), target)
	fmt.Fprintf(out, "  accepted %d (%.1f%%)  shed(429) %d (%.1f%%)  errors %d  other %d\n",
		r.accepted, pct(r.accepted), r.shed, pct(r.shed), r.errors, r.other)
	fmt.Fprintf(out, "  latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  mean %.3f\n",
		ms(0.50), ms(0.95), ms(0.99), r.lat.Max()*1000, r.lat.Mean()*1000)
	fmt.Fprintf(out, "  metrics scrapes: %d ok, %d failed\n", r.scrapeOK, r.scrapeFail)
}

// runLoad implements `offctl load`: an open-loop HTTP load driver that
// sustains a target submission rate against an offloadd daemon, with a
// concurrent 1 Hz /metrics scraper, and reports achieved throughput,
// latency quantiles and admission-shed rates.
func runLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	var (
		url      = fs.String("url", "http://127.0.0.1:9090", "offloadd base URL")
		rate     = fs.Float64("rate", 10000, "target submission rate, req/s")
		duration = fs.Duration("duration", 10*time.Second, "run length")
		workers  = fs.Int("workers", 64, "concurrent submission workers")
		app      = fs.String("app", "loadtest", "app label on submitted tasks")
		cycles   = fs.Float64("cycles", 2e7, "cycles per task")
		input    = fs.Int64("input", 4096, "input bytes per task")
		output   = fs.Int64("output", 1024, "output bytes per task")
		mem      = fs.Int64("mem", 128<<20, "memory bytes per task")
		scrape   = fs.Duration("scrape", time.Second, "concurrent /metrics scrape interval; 0 disables")
		minRate  = fs.Float64("min-rate", 0, "fail unless the achieved rate reaches this")
		outFile  = fs.String("out", "", "also write the report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 || *workers <= 0 || *duration <= 0 {
		return fmt.Errorf("offctl load: rate, workers and duration must be positive")
	}

	body, err := json.Marshal(map[string]any{
		"app": *app, "cycles": *cycles, "input_bytes": *input,
		"output_bytes": *output, "memory_bytes": *mem,
	})
	if err != nil {
		return err
	}

	res, err := driveLoad(*url, body, *rate, *duration, *workers, *scrape)
	if err != nil {
		return err
	}
	res.write(out, *rate)
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		res.write(f, *rate)
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *minRate > 0 && res.achieved() < *minRate {
		return fmt.Errorf("offctl load: achieved %.1f req/s < required %.1f", res.achieved(), *minRate)
	}
	return nil
}

// driveLoad runs the workers and the scraper and merges their results.
// Each worker paces itself at rate/workers with an absolute schedule, so
// a slow response makes the worker catch up instead of silently lowering
// the offered rate (open loop, within the worker's one-request budget).
func driveLoad(base string, body []byte, rate float64, duration time.Duration, workers int, scrapeEvery time.Duration) (*loadResult, error) {
	taskURL := strings.TrimRight(base, "/") + "/v1/tasks"
	metricsURL := strings.TrimRight(base, "/") + "/metrics"
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        workers * 2,
			MaxIdleConnsPerHost: workers * 2,
		},
	}

	type workerStats struct {
		requests, accepted, shed, errors, other uint64
		lat                                     *metrics.Histogram
	}
	perWorker := make([]workerStats, workers)
	interval := time.Duration(float64(workers) / rate * float64(time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ws *workerStats, offset time.Duration) {
			defer wg.Done()
			ws.lat = metrics.NewLatencyHistogram()
			next := start.Add(offset)
			for {
				if d := time.Until(next); d > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(d):
					}
				} else if ctx.Err() != nil {
					return
				}
				next = next.Add(interval)

				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, taskURL, bytes.NewReader(body))
				if err != nil {
					ws.errors++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					ws.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ws.requests++
				ws.lat.Observe(time.Since(t0).Seconds())
				switch {
				case resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK:
					ws.accepted++
				case resp.StatusCode == http.StatusTooManyRequests:
					ws.shed++
				case resp.StatusCode >= 500:
					ws.errors++
				default:
					ws.other++
				}
			}
		}(&perWorker[w], time.Duration(float64(w)/float64(workers)*float64(interval)))
	}

	// The concurrent scraper: a Prometheus server polling /metrics while
	// the daemon is under full submission load.
	var scrapeOK, scrapeFail atomic.Uint64
	if scrapeEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(scrapeEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				resp, err := client.Get(metricsURL)
				if err != nil {
					scrapeFail.Add(1)
					continue
				}
				_, perr := metrics.ParseExposition(resp.Body)
				resp.Body.Close()
				if perr != nil || resp.StatusCode != http.StatusOK {
					scrapeFail.Add(1)
				} else {
					scrapeOK.Add(1)
				}
			}
		}()
	}

	wg.Wait()
	res := &loadResult{
		elapsed:    time.Since(start),
		lat:        metrics.NewLatencyHistogram(),
		scrapeOK:   scrapeOK.Load(),
		scrapeFail: scrapeFail.Load(),
	}
	for i := range perWorker {
		ws := &perWorker[i]
		if ws.lat == nil {
			continue
		}
		res.requests += ws.requests
		res.accepted += ws.accepted
		res.shed += ws.shed
		res.errors += ws.errors
		res.other += ws.other
		if err := res.lat.Merge(ws.lat); err != nil {
			return nil, err
		}
	}
	return res, nil
}
