package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeDaemon mimics offloadd's submission and metrics surface: accepts
// tasks until a cap, sheds with 429 beyond it, and serves a small
// exposition body.
type fakeDaemon struct {
	submits atomic.Uint64
	scrapes atomic.Uint64
	shedCap uint64 // submissions beyond this get 429; 0 = accept all
}

func (f *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		var spec map[string]any
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := f.submits.Add(1)
		if f.shedCap > 0 && n > f.shedCap {
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]uint64{"id": n})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		f.scrapes.Add(1)
		body, err := os.ReadFile(filepath.Join("testdata", "scrape_exposition.txt"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(body)
	})
	return mux
}

func TestLoadDriverAgainstFakeDaemon(t *testing.T) {
	fd := &fakeDaemon{}
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()

	res, err := driveLoad(ts.URL, []byte(`{"app":"t"}`), 2000, 500*time.Millisecond, 8, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("driveLoad: %v", err)
	}
	if res.requests == 0 || res.accepted != res.requests {
		t.Fatalf("requests=%d accepted=%d, want all accepted", res.requests, res.accepted)
	}
	if res.shed != 0 || res.errors != 0 {
		t.Errorf("shed=%d errors=%d, want 0", res.shed, res.errors)
	}
	if uint64(res.lat.Count()) != res.requests {
		t.Errorf("latency observations %d != requests %d", res.lat.Count(), res.requests)
	}
	if res.scrapeOK == 0 {
		t.Error("concurrent scraper never succeeded")
	}
	if fd.scrapes.Load() == 0 {
		t.Error("fake daemon never saw a /metrics scrape")
	}
	if res.lat.Quantile(0.99) <= 0 {
		t.Error("p99 latency is zero despite completed requests")
	}
}

func TestLoadDriverCountsShed(t *testing.T) {
	fd := &fakeDaemon{shedCap: 50}
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()

	res, err := driveLoad(ts.URL, []byte(`{"app":"t"}`), 2000, 400*time.Millisecond, 8, 0)
	if err != nil {
		t.Fatalf("driveLoad: %v", err)
	}
	if res.accepted != 50 {
		t.Errorf("accepted = %d, want 50", res.accepted)
	}
	if res.shed == 0 {
		t.Error("no submissions shed despite the cap")
	}
	if res.accepted+res.shed != res.requests {
		t.Errorf("accepted %d + shed %d != requests %d", res.accepted, res.shed, res.requests)
	}
}

func TestRunLoadReportAndMinRate(t *testing.T) {
	fd := &fakeDaemon{}
	ts := httptest.NewServer(fd.handler())
	defer ts.Close()

	outPath := filepath.Join(t.TempDir(), "report.txt")
	var out bytes.Buffer
	err := runLoad([]string{
		"-url", ts.URL, "-rate", "500", "-duration", "300ms",
		"-workers", "4", "-scrape", "0", "-out", outPath,
	}, &out)
	if err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	for _, want := range []string{"req/s", "accepted", "latency ms", "p99"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
	onDisk, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("-out file: %v", err)
	}
	if string(onDisk) != out.String() {
		t.Error("-out file differs from stdout report")
	}

	// An unreachable min-rate must fail the run.
	err = runLoad([]string{
		"-url", ts.URL, "-rate", "100", "-duration", "200ms",
		"-workers", "2", "-scrape", "0", "-min-rate", "1000000",
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "min-rate") && !strings.Contains(err.Error(), "required") {
		t.Errorf("min-rate gate did not trip: %v", err)
	}
}

func TestRunLoadRejectsBadFlags(t *testing.T) {
	if err := runLoad([]string{"-rate", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("rate 0 accepted")
	}
	if err := runLoad([]string{"-duration", "0s"}, &bytes.Buffer{}); err == nil {
		t.Error("duration 0 accepted")
	}
}
