// Command offctl is the developer-facing planning tool: it profiles an
// application graph, partitions it, allocates serverless resources and
// emits the deployment manifest — the offline half of the framework.
//
// Usage:
//
//	offctl plan -app sci-batch                 # plan a built-in template
//	offctl plan -spec app.json -out manifest.json
//	offctl profile -app ml-batch               # demand catalog only
//	offctl partition -app video-transcode      # partition only
//	offctl templates                           # list built-in templates
//	offctl policies                            # list placement policy names
//	offctl faults -config faults.json          # print composed fault stacks
//	offctl export -app report-gen              # dump a template's JSON spec
//	offctl trace analyze spans.jsonl           # critical-path attribution + waste
//	offctl trace chrome spans.jsonl out.json   # convert to Chrome trace format
//	offctl load -url http://host:9090 -rate 10000 -duration 10s   # drive offloadd
//	offctl scrape host:9090                    # pretty-print a /metrics endpoint
//	offctl dag -app video-transcode            # call graph → DAG job summary
//	offctl dag -shape fork-join -nodes 10 -dot # generated job as Graphviz DOT
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"offload/internal/callgraph"
	"offload/internal/chain"
	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/partition"
	"offload/internal/profile"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	appFlag := fs.String("app", "", "built-in application template name")
	specFlag := fs.String("spec", "", "path to a JSON application spec")
	outFlag := fs.String("out", "", "write the manifest JSON to this file")
	seedFlag := fs.Uint64("seed", 1, "RNG seed")
	noiseFlag := fs.Float64("noise", 0.05, "relative profiling measurement noise")
	runsFlag := fs.Int("runs", 30, "profiling runs per component")
	dotFlag := fs.Bool("dot", false, "emit Graphviz DOT (partition/export)")

	switch cmd {
	case "trace":
		if err := runTrace(os.Args[2:], os.Stdout); err != nil {
			fail(err)
		}
		return
	case "faults":
		if err := runFaults(os.Args[2:], os.Stdout); err != nil {
			fail(err)
		}
		return
	case "load":
		if err := runLoad(os.Args[2:], os.Stdout); err != nil {
			fail(err)
		}
		return
	case "scrape":
		if err := runScrape(os.Args[2:], os.Stdout); err != nil {
			fail(err)
		}
		return
	case "dag":
		if err := runDAG(os.Args[2:], os.Stdout); err != nil {
			fail(err)
		}
		return
	case "templates":
		for _, name := range callgraph.TemplateNames() {
			g := callgraph.Templates()[name]
			fmt.Printf("%-16s %2d components, %.3g Gcycles/run\n",
				name, g.Len(), g.TotalCycles()/1e9)
		}
		return
	case "policies":
		for _, p := range core.AllPolicies() {
			fmt.Println(p)
		}
		return
	case "plan", "profile", "partition", "export", "simulate":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
	default:
		usage()
	}

	g, err := loadGraph(*appFlag, *specFlag)
	if err != nil {
		fail(err)
	}

	switch cmd {
	case "export":
		if *dotFlag {
			fmt.Print(g.DOT(nil))
			return
		}
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
		return

	case "profile":
		meter := profile.NewMeter(rng.New(*seedFlag), *noiseFlag)
		cat, err := profile.BuildCatalog(g, meter, *runsFlag)
		if err != nil {
			fail(err)
		}
		tbl := metrics.NewTable("demand catalog for "+g.Name(),
			"component", "mean_gcycles", "p95_gcycles", "memory_mb", "runs")
		for _, p := range cat.Profiles() {
			tbl.AddRowf(p.Name, p.MeanCycles/1e9, p.P95Cycles/1e9,
				fmt.Sprintf("%d", p.MemoryBytes/model.MB), fmt.Sprintf("%d", p.Runs))
		}
		fmt.Println(tbl.String())
		return

	case "partition":
		cm := core.CostModelFor(device.Smartphone(), serverless.LambdaLike(),
			serverless.LambdaLike().FullShareBytes, network.WiFiCloud(), core.DefaultWeights())
		res, err := partition.MinCut(g, cm)
		if err != nil {
			fail(err)
		}
		if *dotFlag {
			remote := make(map[string]bool)
			for _, name := range res.Remote(g) {
				remote[name] = true
			}
			fmt.Print(g.DOT(remote))
			return
		}
		fmt.Printf("app: %s\nobjective: %.6g\noffloaded: %v\n",
			g.Name(), res.Objective, res.Remote(g))
		fmt.Printf("all-local objective: %.6g, all-remote: %.6g\n",
			partition.Objective(g, cm, partition.AllLocal(g)),
			partition.Objective(g, cm, partition.AllRemote(g)))
		return

	case "plan":
		plan, err := core.PlanApp(g, core.PlanOptions{
			Device:       device.Smartphone(),
			Serverless:   serverless.LambdaLike(),
			CloudPath:    network.WiFiCloud(),
			Seed:         *seedFlag,
			ProfileRuns:  *runsFlag,
			ProfileNoise: *noiseFlag,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("app: %s\noffloaded components: %v\n", plan.App, plan.Remote)
		fmt.Printf("estimated serverless cost per run: $%.6g\n", plan.EstimatedCostPerRunUSD)
		tbl := metrics.NewTable("deployment manifest", "function", "component", "memory_mb")
		for _, fn := range plan.Manifest.Functions {
			tbl.AddRow(fn.Name, fn.Component, fmt.Sprintf("%d", fn.MemoryBytes/model.MB))
		}
		fmt.Println(tbl.String())
		if *outFlag != "" {
			data, err := plan.Manifest.Encode()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(*outFlag, data, 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote manifest to %s\n", *outFlag)
		}
		return

	case "simulate":
		if err := simulatePlan(g, *seedFlag, *runsFlag, *noiseFlag); err != nil {
			fail(err)
		}
		return
	}
}

// simulatePlan plans the app, deploys the manifest onto a fresh simulated
// platform, and executes one run through the chain runner — the full
// offline-to-runtime journey in one command.
func simulatePlan(g *callgraph.Graph, seed uint64, runs int, noise float64) error {
	plan, err := core.PlanApp(g, core.PlanOptions{
		Device:       device.Smartphone(),
		Serverless:   serverless.LambdaLike(),
		CloudPath:    network.WiFiCloud(),
		Seed:         seed,
		ProfileRuns:  runs,
		ProfileNoise: noise,
	})
	if err != nil {
		return err
	}
	eng := sim.NewEngine()
	dev := device.New(eng, device.Smartphone())
	path := network.New(eng, rng.New(seed+5), network.WiFiCloud())
	platform := serverless.NewPlatform(eng, rng.New(seed+6), serverless.LambdaLike())

	assignment := plan.Partition.Assignment
	fns := make(map[string]*serverless.Function)
	for _, spec := range plan.Manifest.Functions {
		fn, err := platform.Deploy(serverless.FunctionConfig{
			Name: spec.Name, MemoryBytes: spec.MemoryBytes,
		})
		if err != nil {
			return err
		}
		fns[spec.Component] = fn
	}
	runner, err := chain.New(eng, chain.Config{
		Graph: g, Assignment: assignment, Device: dev, Path: path, Functions: fns,
	})
	if err != nil {
		return err
	}
	var res chain.Result
	runner.Run(func(out chain.Result) { res = out })
	eng.Run()

	fmt.Printf("app: %s (offloaded: %v)\n\n", plan.App, plan.Remote)
	tbl := metrics.NewTable("one simulated run", "component", "side", "start_s", "dur_s", "transfer_s", "usd")
	for _, cr := range res.Components {
		side := "device"
		if cr.Remote {
			side = "cloud"
		}
		tbl.AddRow(cr.Name, side,
			fmt.Sprintf("%.3f", float64(cr.Start)),
			fmt.Sprintf("%.3f", float64(cr.End.Sub(cr.Start))),
			fmt.Sprintf("%.3f", cr.TransferS),
			fmt.Sprintf("%.3g", cr.Exec.CostUSD))
	}
	fmt.Println(tbl.String())
	fmt.Printf("run: %.2f s end to end, $%.6g billed, %.0f mJ device energy, %d cut transfers (%d bytes)\n",
		float64(res.Duration()), res.CostUSD, res.EnergyMilliJ, res.CutEdges, res.BytesMoved)
	if res.Failed {
		return fmt.Errorf("run failed")
	}
	return nil
}

// runTrace dispatches the span-analysis subcommands, which read span
// archives rather than application specs.
func runTrace(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: offctl trace <analyze|chrome> <spans.jsonl> [out.json]")
	}
	switch args[0] {
	case "analyze":
		if len(args) != 2 {
			return fmt.Errorf("usage: offctl trace analyze <spans.jsonl>")
		}
		set, err := readSpans(args[1])
		if err != nil {
			return err
		}
		return traceAnalyze(set, w)
	case "chrome":
		if len(args) != 3 {
			return fmt.Errorf("usage: offctl trace chrome <spans.jsonl> <out.json>")
		}
		set, err := readSpans(args[1])
		if err != nil {
			return err
		}
		f, err := os.Create(args[2])
		if err != nil {
			return err
		}
		if err := set.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d spans to %s (open in chrome://tracing or ui.perfetto.dev)\n",
			len(set.Spans), args[2])
		return nil
	default:
		return fmt.Errorf("unknown trace subcommand %q (analyze|chrome)", args[0])
	}
}

func readSpans(path string) (*trace.SpanSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadSpansJSONL(f)
}

// traceAnalyze prints the run-level attribution: where completion time
// went per phase and placement, and what retries/hedges wasted.
func traceAnalyze(set *trace.SpanSet, w io.Writer) error {
	att := trace.Attribute(set)
	tasks := 0
	for _, g := range att.Groups {
		if g.Name == "all" {
			tasks = g.Tasks
		}
	}
	fmt.Fprintf(w, "run: %s  policy: %s  tasks: %d (%d failed)\n\n",
		orDash(set.Run), orDash(set.Policy), tasks+att.Failed, att.Failed)
	fmt.Fprintln(w, att.Table().String())
	fmt.Fprintln(w, trace.ComputeWaste(set).Table().String())
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func loadGraph(app, spec string) (*callgraph.Graph, error) {
	switch {
	case app != "" && spec != "":
		return nil, fmt.Errorf("use either -app or -spec, not both")
	case app != "":
		g, ok := callgraph.Templates()[app]
		if !ok {
			return nil, fmt.Errorf("unknown template %q (have %v)", app, callgraph.TemplateNames())
		}
		return g, nil
	case spec != "":
		data, err := os.ReadFile(spec)
		if err != nil {
			return nil, err
		}
		return callgraph.Parse(data)
	default:
		return nil, fmt.Errorf("one of -app or -spec is required")
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: offctl <command> [flags]

commands:
  plan        profile + partition + allocate, emit the deployment manifest
  profile     build the demand catalog for an application
  partition   compute the min-cut device/cloud split
  export      print a built-in template as a JSON spec
  simulate    plan, deploy and execute one run end to end
  templates   list built-in application templates
  policies    list placement policy names (static + adaptive)
  faults      print the composed fault-injector stack per backend
  trace       analyze a span archive (critical-path attribution, waste)
              or convert it to Chrome trace format
  load        drive an offloadd daemon at a target rate and report
              throughput, latency quantiles and shed rates
  scrape      fetch a Prometheus /metrics endpoint and show the top series
  dag         build a DAG job (from a call graph or the generator family)
              and print its structure as a table or Graphviz DOT`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "offctl: %v\n", err)
	os.Exit(1)
}
