package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraphTemplate(t *testing.T) {
	g, err := loadGraph("sci-batch", "")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "sci-batch" {
		t.Fatalf("Name = %s", g.Name())
	}
}

func TestLoadGraphSpecFile(t *testing.T) {
	spec := `{
	  "name": "custom",
	  "components": [
	    {"name": "ui", "cycles": 1e7, "pinned": true},
	    {"name": "work", "cycles": 1e10}
	  ],
	  "edges": [{"from": "ui", "to": "work", "bytes": 1024}]
	}`
	path := filepath.Join(t.TempDir(), "app.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph("", path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "custom" || g.Len() != 2 {
		t.Fatalf("parsed %s with %d components", g.Name(), g.Len())
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := loadGraph("", ""); err == nil {
		t.Error("neither -app nor -spec accepted")
	}
	if _, err := loadGraph("a", "b"); err == nil {
		t.Error("both -app and -spec accepted")
	}
	if _, err := loadGraph("no-such-template", ""); err == nil {
		t.Error("unknown template accepted")
	}
	if _, err := loadGraph("", "/does/not/exist.json"); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestFaultsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := runFaults([]string{"-config", "testdata/faults.json"}, &buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/faults.golden")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("faults output drifted from golden:\n%s", buf.String())
	}
}

func TestFaultsErrors(t *testing.T) {
	write := func(body string) string {
		path := filepath.Join(t.TempDir(), "faults.json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name string
		body string
	}{
		{"unknown field", `{"Typo": 1}`},
		{"invalid fault config", `{"Fault": {"FailureRate": 2}}`},
		{"unnamed schedule", `{"Regions": {"VM": "west", "Schedules": [{"Outages": [{"Start": 1, "Duration": 1}]}]}}`},
		{"orphan schedule", `{"Regions": {"VM": "west", "Schedules": [{"Region": "east", "Outages": [{"Start": 1, "Duration": 1}]}]}}`},
		{"duplicate schedule", `{"Regions": {"VM": "west", "Schedules": [
			{"Region": "west", "Outages": [{"Start": 1, "Duration": 1}]},
			{"Region": "west", "Outages": [{"Start": 5, "Duration": 1}]}]}}`},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := runFaults([]string{"-config", write(c.body)}, &buf); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := runFaults([]string{}, io.Discard); err == nil {
		t.Error("missing -config accepted")
	}
}
