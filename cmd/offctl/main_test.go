package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraphTemplate(t *testing.T) {
	g, err := loadGraph("sci-batch", "")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "sci-batch" {
		t.Fatalf("Name = %s", g.Name())
	}
}

func TestLoadGraphSpecFile(t *testing.T) {
	spec := `{
	  "name": "custom",
	  "components": [
	    {"name": "ui", "cycles": 1e7, "pinned": true},
	    {"name": "work", "cycles": 1e10}
	  ],
	  "edges": [{"from": "ui", "to": "work", "bytes": 1024}]
	}`
	path := filepath.Join(t.TempDir(), "app.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph("", path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "custom" || g.Len() != 2 {
		t.Fatalf("parsed %s with %d components", g.Name(), g.Len())
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := loadGraph("", ""); err == nil {
		t.Error("neither -app nor -spec accepted")
	}
	if _, err := loadGraph("a", "b"); err == nil {
		t.Error("both -app and -spec accepted")
	}
	if _, err := loadGraph("no-such-template", ""); err == nil {
		t.Error("unknown template accepted")
	}
	if _, err := loadGraph("", "/does/not/exist.json"); err == nil {
		t.Error("missing spec file accepted")
	}
}
