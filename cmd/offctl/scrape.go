package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"offload/internal/metrics"
)

// runScrape implements `offctl scrape <url>`: fetch a Prometheus
// /metrics endpoint and pretty-print the largest series, a quick look at
// a live daemon without standing up a Prometheus server.
func runScrape(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scrape", flag.ContinueOnError)
	topN := fs.Int("n", 20, "show the top N series by value")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: offctl scrape [-n N] <url>")
	}
	url := fs.Arg(0)
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/metrics") {
		url = strings.TrimRight(url, "/") + "/metrics"
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	return scrapeBody(resp.Body, *topN, out)
}

// scrapeBody parses one exposition body and renders the top-N table.
// Split from runScrape so the golden test can feed a recorded body.
func scrapeBody(r io.Reader, topN int, out io.Writer) error {
	fams, err := metrics.ParseExposition(r)
	if err != nil {
		return err
	}
	type row struct {
		kind   string
		series string
		value  float64
	}
	var rows []row
	series := 0
	for _, f := range fams {
		for _, s := range f.Samples {
			series++
			// Histogram bucket samples would drown the table; the
			// _count/_sum rollups already summarize those series.
			if f.Kind == "histogram" && strings.HasSuffix(s.Name, "_bucket") {
				continue
			}
			name := s.Name
			if len(s.Labels) > 0 {
				parts := make([]string, len(s.Labels))
				for i, l := range s.Labels {
					parts[i] = l.Name + "=" + l.Value
				}
				name += "{" + strings.Join(parts, ",") + "}"
			}
			rows = append(rows, row{kind: f.Kind, series: name, value: s.Value})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].value != rows[j].value {
			return rows[i].value > rows[j].value
		}
		return rows[i].series < rows[j].series
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	fmt.Fprintf(out, "%d families, %d series; top %d by value:\n", len(fams), series, len(rows))
	w := 0
	for _, r := range rows {
		if len(r.series) > w {
			w = len(r.series)
		}
	}
	for _, r := range rows {
		fmt.Fprintf(out, "  %-*s  %-9s %s\n", w, r.series, r.kind, metrics.FormatFloat(r.value))
	}
	return nil
}
