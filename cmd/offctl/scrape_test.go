package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The scrape renderer must stay byte-stable against a recorded
// exposition body: the output is what operators read and diff.
func TestScrapeGolden(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "scrape_exposition.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	var got bytes.Buffer
	if err := scrapeBody(in, 10, &got); err != nil {
		t.Fatalf("scrapeBody: %v", err)
	}

	goldenPath := filepath.Join("testdata", "scrape_golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("scrape output drifted from golden:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

func TestScrapeSkipsBucketSamples(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "scrape_exposition.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var got bytes.Buffer
	if err := scrapeBody(in, 0, &got); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got.String(), "_bucket") {
		t.Errorf("bucket samples leaked into the table:\n%s", got.String())
	}
	// The rollups that summarize the histogram must still appear.
	for _, want := range []string{"completion_seconds_sum", "completion_seconds_count"} {
		if !strings.Contains(got.String(), want) {
			t.Errorf("output missing %s:\n%s", want, got.String())
		}
	}
}

func TestScrapeRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	if err := scrapeBody(strings.NewReader("not prometheus at all{{{"), 5, &out); err == nil {
		t.Error("scrapeBody accepted a malformed exposition body")
	}
}
