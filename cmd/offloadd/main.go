// Command offloadd is the live offload control plane: a long-running
// HTTP daemon that accepts task submissions, drives the scheduler /
// adaptive / failover stack in wall-clock time (the batch event core
// behind a real-time clock adapter), and exposes the run's metrics
// registry as a Prometheus endpoint.
//
// Endpoints:
//
//	POST /v1/tasks   submit a task (JSON body; "wait":true blocks for the outcome)
//	GET  /v1/report  run summary as JSON (core.Report)
//	GET  /metrics    Prometheus text exposition format 0.0.4
//	GET  /healthz    liveness: 200 while the process serves
//	GET  /readyz     readiness: 200 once warm, 503 while starting or draining
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, accepted
// tasks run to completion (bounded by -drain-timeout), then the daemon
// exits 0.
//
// Quickstart:
//
//	offloadd -addr :9090 &
//	curl -s -XPOST localhost:9090/v1/tasks -d '{"app":"demo","wait":true}'
//	curl -s localhost:9090/metrics | grep ^tasks
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"offload/internal/adapt"
	"offload/internal/core"
	"offload/internal/model"
	"offload/internal/sim"
)

func main() {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stderr, sig, nil); err != nil {
		fmt.Fprintln(os.Stderr, "offloadd:", err)
		os.Exit(1)
	}
}

// taskSpec is the POST /v1/tasks body. Omitted size fields take demo
// defaults so a bare '{"app":"x"}' submission works out of the box.
type taskSpec struct {
	App              string  `json:"app"`
	InputBytes       int64   `json:"input_bytes"`
	OutputBytes      int64   `json:"output_bytes"`
	Cycles           float64 `json:"cycles"`
	MemoryBytes      int64   `json:"memory_bytes"`
	ParallelFraction float64 `json:"parallel_fraction"`
	DeadlineS        float64 `json:"deadline_s"`
	Priority         int     `json:"priority"`
	Wait             bool    `json:"wait"`
}

func (ts *taskSpec) task() *model.Task {
	t := &model.Task{
		App:              ts.App,
		InputBytes:       ts.InputBytes,
		OutputBytes:      ts.OutputBytes,
		Cycles:           ts.Cycles,
		MemoryBytes:      ts.MemoryBytes,
		ParallelFraction: ts.ParallelFraction,
		Deadline:         sim.Duration(ts.DeadlineS),
		Priority:         ts.Priority,
	}
	if t.App == "" {
		t.App = "default"
	}
	if t.Cycles == 0 {
		t.Cycles = 2e8 // ~a tenth of a second of mid-range-phone work
	}
	if t.MemoryBytes == 0 {
		t.MemoryBytes = 256 << 20
	}
	if t.InputBytes == 0 {
		t.InputBytes = 64 << 10
	}
	if t.OutputBytes == 0 {
		t.OutputBytes = 16 << 10
	}
	return t
}

// outcomeBody is the response for settled tasks ("wait":true).
type outcomeBody struct {
	ID          uint64  `json:"id"`
	Placement   string  `json:"placement"`
	CompletionS float64 `json:"completion_s"`
	CostUSD     float64 `json:"cost_usd"`
	Attempts    int     `json:"attempts"`
	Failed      bool    `json:"failed"`
}

// run is main minus process concerns, so tests can drive the daemon
// end to end: it serves until sig receives or the listener fails, then
// drains. onReady, when non-nil, receives the bound address once the
// daemon is accepting requests.
func run(args []string, stderr io.Writer, sig <-chan os.Signal, onReady func(addr string)) error {
	fs := flag.NewFlagSet("offloadd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":9090", "HTTP listen address")
		policy       = fs.String("policy", string(core.PolicyDeadlineAware), "placement policy (see 'offctl policies')")
		seed         = fs.Uint64("seed", 1, "RNG seed for the assembled system")
		simclock     = fs.Bool("simclock", false, "run the deterministic sim clock instead of wall time (testing/CI)")
		timescale    = fs.Float64("timescale", 1, "wall-clock time dilation: virtual seconds per wall second")
		maxInFlight  = fs.Int("max-inflight", 100000, "admission cap on in-flight tasks; 0 = uncapped")
		adaptOn      = fs.Bool("adapt", false, "enable the online adaptive layer (tuner, drift detection, admission)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Policy = core.PolicyName(*policy)
	if *adaptOn {
		ac := adapt.DefaultConfig()
		cfg.Adapt = &ac
	}
	var clock sim.Clock = sim.NewWallClock(*timescale)
	if *simclock {
		clock = sim.SimClock{}
	}
	srv, err := core.NewServer(cfg, clock, *maxInFlight)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tasks", func(w http.ResponseWriter, r *http.Request) {
		var spec taskSpec
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		task := spec.task()
		if spec.Wait {
			o, err := srv.SubmitWait(r.Context(), task)
			if err != nil {
				submitError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, outcomeBody{
				ID:          uint64(o.Task.ID),
				Placement:   o.Placement.String(),
				CompletionS: o.CompletionTime().Seconds(),
				CostUSD:     o.CostUSD,
				Attempts:    o.Attempts,
				Failed:      o.Failed,
			})
			return
		}
		id, err := srv.Submit(task, nil)
		if err != nil {
			submitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]uint64{"id": uint64(id)})
	})
	mux.HandleFunc("GET /v1/report", func(w http.ResponseWriter, r *http.Request) {
		rep, ok := srv.Report()
		if !ok {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := srv.WriteMetrics(w); err != nil {
			httpError(w, http.StatusServiceUnavailable, err.Error())
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !srv.Ready() {
			httpError(w, http.StatusServiceUnavailable, "not ready")
			return
		}
		io.WriteString(w, "ready\n")
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stderr, "offloadd: serving on %s (policy=%s clock=%s)\n",
		ln.Addr(), cfg.Policy, clockName(*simclock, *timescale))
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "offloadd: %v, draining\n", s)
	case err := <-serveErr:
		srv.Close()
		return fmt.Errorf("http serve: %w", err)
	}

	// Graceful shutdown: drain the scheduler first so /readyz flips and
	// new submissions 503 while accepted work completes, then close the
	// HTTP server.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	left, drainErr := srv.Drain(drainCtx)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil {
		fmt.Fprintf(stderr, "offloadd: http shutdown: %v\n", err)
	}
	fmt.Fprintf(stderr, "offloadd: drained, %d tasks in flight at exit (accepted=%d shed=%d)\n",
		left, srv.Accepted(), srv.Shed())
	return drainErr
}

func clockName(simclock bool, timescale float64) string {
	if simclock {
		return "sim"
	}
	return fmt.Sprintf("wall x%g", timescale)
}

func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrOverloaded):
		httpError(w, http.StatusTooManyRequests, "overloaded")
	case errors.Is(err, core.ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "draining")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusRequestTimeout, err.Error())
	default:
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
