package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs the daemon on a loopback port with the deterministic
// sim clock and returns its base URL, the signal channel that stops it,
// the stderr buffer, and a channel delivering run's error.
func startDaemon(t *testing.T, extraArgs ...string) (string, chan os.Signal, *syncBuffer, chan error) {
	t.Helper()
	sig := make(chan os.Signal, 1)
	stderr := &syncBuffer{}
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-simclock"}, extraArgs...)
	go func() {
		errCh <- run(args, stderr, sig, func(addr string) { ready <- addr })
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, sig, stderr, errCh
	case err := <-errCh:
		t.Fatalf("daemon exited before ready: %v\nstderr:\n%s", err, stderr.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

// syncBuffer is a goroutine-safe bytes.Buffer: run writes concurrently
// with test assertions.
type syncBuffer struct {
	mu  chMutex
	buf bytes.Buffer
}

type chMutex chan struct{}

func (m *chMutex) lock() {
	if *m == nil {
		*m = make(chMutex, 1)
	}
	*m <- struct{}{}
}
func (m *chMutex) unlock() { <-*m }

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.lock()
	defer b.mu.unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.lock()
	defer b.mu.unlock()
	return b.buf.String()
}

func postTask(t *testing.T, base, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/tasks: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, string(raw)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

func TestDaemonEndToEnd(t *testing.T) {
	base, sig, stderr, errCh := startDaemon(t)

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	// A waited submission returns the settled outcome.
	resp, body := postTask(t, base, `{"app":"e2e","wait":true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("wait submit = %d %s", resp.StatusCode, body)
	}
	var o outcomeBody
	if err := json.Unmarshal([]byte(body), &o); err != nil {
		t.Fatalf("outcome body %q: %v", body, err)
	}
	if o.Failed || o.ID == 0 || o.Placement == "" {
		t.Fatalf("outcome = %+v", o)
	}

	// A batch of async submissions all get IDs.
	for i := 0; i < 50; i++ {
		resp, body := postTask(t, base, `{"app":"e2e"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d %s", i, resp.StatusCode, body)
		}
	}

	// The report shows completions once the sim-clock loop drains; poll
	// briefly since async submissions settle on the loop goroutine.
	deadline := time.Now().Add(20 * time.Second)
	var completed float64
	for time.Now().Before(deadline) {
		_, body := get(t, base+"/v1/report")
		var rep map[string]any
		if err := json.Unmarshal([]byte(body), &rep); err != nil {
			t.Fatalf("report body %q: %v", body, err)
		}
		completed, _ = rep["Completed"].(float64)
		if completed >= 51 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if completed < 51 {
		t.Fatalf("report.Completed = %g, want >= 51", completed)
	}

	// The Prometheus endpoint serves exposition text with known counters.
	code, metricsBody := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE tasks counter",
		`tasks{state="completed"}`,
		"# TYPE serve_accepted counter",
		"# TYPE serve_inflight gauge",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics body missing %q", want)
		}
	}

	// An invalid body is a 400, not a crash.
	if resp, _ := postTask(t, base, `{"cycles":-5}`); resp.StatusCode != 400 {
		t.Errorf("invalid task = %d, want 400", resp.StatusCode)
	}

	// SIGTERM drains and exits cleanly.
	sig <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	if !strings.Contains(stderr.String(), "drained, 0 tasks in flight") {
		t.Errorf("stderr missing clean-drain line:\n%s", stderr.String())
	}
}

// SIGTERM with work still in flight must settle every accepted task
// before exiting: the drain guarantee, exercised under a dilated wall
// clock so tasks are genuinely outstanding when the signal lands.
func TestDaemonSigtermDrainsInFlight(t *testing.T) {
	sig := make(chan os.Signal, 1)
	stderr := &syncBuffer{}
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-timescale", "1000"},
			stderr, sig, func(addr string) { ready <- addr })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	const n = 40
	for i := 0; i < n; i++ {
		resp, body := postTask(t, base, `{"app":"drain"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d %s", i, resp.StatusCode, body)
		}
	}
	sig <- syscall.SIGTERM
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	out := stderr.String()
	if !strings.Contains(out, "drained, 0 tasks in flight") {
		t.Fatalf("drain left tasks behind:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("accepted=%d", n)) {
		t.Errorf("stderr missing accepted=%d:\n%s", n, out)
	}
}

func TestDaemonSubmissionsAfterDrainAreRefused(t *testing.T) {
	base, sig, _, errCh := startDaemon(t)
	sig <- syscall.SIGTERM
	select {
	case <-errCh:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit")
	}
	// The listener is closed now; the submission must fail at the
	// transport level rather than hang.
	client := &http.Client{Timeout: 2 * time.Second}
	if _, err := client.Post(base+"/v1/tasks", "application/json",
		strings.NewReader(`{}`)); err == nil {
		t.Error("submission after shutdown succeeded")
	}
}

func TestDaemonBadPolicy(t *testing.T) {
	err := run([]string{"-policy", "nonsense"}, &syncBuffer{}, make(chan os.Signal), nil)
	if err == nil {
		t.Fatal("run accepted an unknown policy")
	}
}
