// Command offsim runs one offloading scenario: a task stream from the
// application templates scheduled by a chosen policy over the simulated
// substrates, reporting completion times, money, energy and placements.
//
// Usage:
//
//	offsim -policy deadline-aware -tasks 1000 -rate 0.02
//	offsim -app sci-batch -policy cloud-all -trace run.jsonl
//	offsim -no-edge -no-vm            # the framework's serverless-only deployment
package main

import (
	"flag"
	"fmt"
	"os"

	"offload/internal/callgraph"
	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/trace"
	"offload/internal/workload"
)

func main() {
	var (
		policyFlag = flag.String("policy", "deadline-aware", "placement policy (local-only|edge-all|cloud-all|vm-all|random|deadline-aware)")
		appFlag    = flag.String("app", "", "single application template (default: five-template mix)")
		tasksFlag  = flag.Int("tasks", 500, "number of tasks")
		rateFlag   = flag.Float64("rate", 0.02, "Poisson arrival rate per second")
		seedFlag   = flag.Uint64("seed", 1, "RNG seed")
		noEdge     = flag.Bool("no-edge", false, "remove the edge site")
		noVM       = flag.Bool("no-vm", false, "remove the VM fleet")
		batchFlag  = flag.Int("batch", 0, "batch size for serverless tasks (0 = off)")
		traceFlag  = flag.String("trace", "", "write a JSONL task trace to this file")
		replayFlag = flag.String("replay", "", "replay a JSONL task trace instead of generating a workload")
		budgetFlag = flag.Float64("budget", 0, "daily serverless budget in USD (0 = unlimited)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seedFlag
	cfg.Policy = core.PolicyName(*policyFlag)
	cfg.ArrivalRateHint = *rateFlag
	if *noEdge {
		cfg.Edge, cfg.EdgePath = nil, nil
	}
	if *noVM {
		cfg.VM = nil
	}
	if *batchFlag > 0 {
		cfg.Batch = &core.BatchConfig{Size: *batchFlag, MaxWait: 3600}
	}
	cfg.DailyBudgetUSD = *budgetFlag

	sys, err := core.NewSystem(cfg)
	if err != nil {
		fail(err)
	}

	if *replayFlag != "" {
		f, err := os.Open(*replayFlag)
		if err != nil {
			fail(err)
		}
		records, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if err := trace.Replay(sys.Eng, records, sys.Submit); err != nil {
			fail(err)
		}
		*tasksFlag = len(records)
		sys.Run()
		printSummary(sys, "replay:"+*replayFlag, *tasksFlag, 0)
		writeTrace(sys, *traceFlag)
		return
	}

	var mix []workload.WeightedTemplate
	if *appFlag != "" {
		g, ok := callgraph.Templates()[*appFlag]
		if !ok {
			fail(fmt.Errorf("unknown app %q (have %v)", *appFlag, callgraph.TemplateNames()))
		}
		t, err := workload.FromGraph(g)
		if err != nil {
			fail(err)
		}
		mix = []workload.WeightedTemplate{{Template: t, Weight: 1}}
	} else {
		for _, name := range callgraph.TemplateNames() {
			t, err := workload.FromGraph(callgraph.Templates()[name])
			if err != nil {
				fail(err)
			}
			mix = append(mix, workload.WeightedTemplate{Template: t, Weight: 1})
		}
	}
	gen, err := workload.NewGenerator(sys.Src.Split(), mix)
	if err != nil {
		fail(err)
	}

	sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), *rateFlag), gen, *tasksFlag)
	sys.Run()
	printSummary(sys, *policyFlag, *tasksFlag, *rateFlag)
	writeTrace(sys, *traceFlag)
}

func printSummary(sys *core.System, label string, tasks int, rate float64) {
	st := sys.Stats()
	summary := metrics.NewTable(fmt.Sprintf("offsim: %s, %d tasks at %g/s", label, tasks, rate),
		"metric", "value")
	summary.AddRowf("completed", fmt.Sprintf("%d", st.Completed))
	summary.AddRowf("failed", fmt.Sprintf("%d", st.Failed))
	summary.AddRowf("mean completion (s)", st.MeanCompletion())
	summary.AddRowf("p95 completion (s)", st.P95Completion())
	summary.AddRowf("deadline misses", fmt.Sprintf("%d (%.1f%%)", st.Missed, 100*st.MissRate()))
	summary.AddRowf("marginal cost ($/task)", st.CostPerTask())
	summary.AddRowf("infrastructure cost ($)", sys.InfrastructureCostUSD())
	summary.AddRowf("device energy (mJ/task)", st.EnergyPerTaskMilliJ())
	summary.AddRowf("virtual time (s)", float64(sys.Eng.Now()))
	summary.AddRowf("events fired", fmt.Sprintf("%d", sys.Eng.Fired()))
	fmt.Println(summary.String())

	placements := metrics.NewTable("placements", "placement", "tasks")
	for _, p := range model.AllPlacements() {
		if n := st.ByPlacement[p]; n > 0 {
			placements.AddRow(p.String(), fmt.Sprintf("%d", n))
		}
	}
	fmt.Println(placements.String())

	if p := sys.Platform(); p != nil && p.Stats().Invocations > 0 {
		ps := p.Stats()
		faas := metrics.NewTable("serverless platform", "metric", "value")
		faas.AddRowf("invocations", fmt.Sprintf("%d", ps.Invocations))
		faas.AddRowf("cold starts", fmt.Sprintf("%d (%.1f%%)", ps.ColdStarts,
			100*float64(ps.ColdStarts)/float64(ps.Invocations)))
		faas.AddRowf("billed ($)", ps.BilledUSD)
		fmt.Println(faas.String())
	}
}

func writeTrace(sys *core.System, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := sys.Recorder.WriteJSONL(f); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d trace records to %s\n", sys.Recorder.Len(), path)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "offsim: %v\n", err)
	os.Exit(1)
}
