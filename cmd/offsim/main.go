// Command offsim runs one offloading scenario: a task stream from the
// application templates scheduled by a chosen policy over the simulated
// substrates, reporting completion times, money, energy and placements.
//
// With -reps N it runs N replications of the scenario concurrently
// (bounded by -parallel), each on its own seed derived with
// rng.Derive(-seed, rep) — so the replication table is identical for any
// worker count, like offbench's suite.
//
// Usage:
//
//	offsim -policy deadline-aware -tasks 1000 -rate 0.02
//	offsim -app sci-batch -policy cloud-all -trace run.jsonl
//	offsim -no-edge -no-vm            # the framework's serverless-only deployment
//	offsim -reps 10 -parallel 4       # seed-replicated confidence runs
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"offload/internal/callgraph"
	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/trace"
	"offload/internal/workload"
)

func main() {
	var (
		policyFlag = flag.String("policy", "deadline-aware", "placement policy (see `offctl policies`: local-only|edge-all|cloud-all|vm-all|random|threshold|deadline-aware|bandit-ucb|bandit-greedy)")
		appFlag    = flag.String("app", "", "single application template (default: five-template mix)")
		tasksFlag  = flag.Int("tasks", 500, "number of tasks")
		rateFlag   = flag.Float64("rate", 0.02, "Poisson arrival rate per second")
		seedFlag   = flag.Uint64("seed", 1, "RNG seed")
		noEdge     = flag.Bool("no-edge", false, "remove the edge site")
		noVM       = flag.Bool("no-vm", false, "remove the VM fleet")
		batchFlag  = flag.Int("batch", 0, "batch size for serverless tasks (0 = off)")
		traceFlag  = flag.String("trace", "", "write a JSONL task trace to this file")
		replayFlag = flag.String("replay", "", "replay a JSONL task trace instead of generating a workload")
		budgetFlag = flag.Float64("budget", 0, "daily serverless budget in USD (0 = unlimited)")
		repsFlag   = flag.Int("reps", 1, "seed replications of the scenario (deterministic per -seed)")
		parFlag    = flag.Int("parallel", 0, "worker pool for -reps (0 = NumCPU); output identical for any value")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Seed = *seedFlag
	cfg.Policy = core.PolicyName(*policyFlag)
	cfg.ArrivalRateHint = *rateFlag
	if *noEdge {
		cfg.Edge, cfg.EdgePath = nil, nil
	}
	if *noVM {
		cfg.VM = nil
	}
	if *batchFlag > 0 {
		cfg.Batch = &core.BatchConfig{Size: *batchFlag, MaxWait: 3600}
	}
	cfg.DailyBudgetUSD = *budgetFlag

	if *repsFlag > 1 && (*traceFlag != "" || *replayFlag != "") {
		fail(fmt.Errorf("-reps is incompatible with -trace/-replay"))
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		fail(err)
	}

	if *replayFlag != "" {
		f, err := os.Open(*replayFlag)
		if err != nil {
			fail(err)
		}
		records, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if err := trace.Replay(sys.Eng, records, sys.Submit); err != nil {
			fail(err)
		}
		*tasksFlag = len(records)
		sys.Run()
		printSummary(sys, "replay:"+*replayFlag, *tasksFlag, 0)
		writeTrace(sys, *traceFlag)
		return
	}

	var mix []workload.WeightedTemplate
	if *appFlag != "" {
		g, ok := callgraph.Templates()[*appFlag]
		if !ok {
			fail(fmt.Errorf("unknown app %q (have %v)", *appFlag, callgraph.TemplateNames()))
		}
		t, err := workload.FromGraph(g)
		if err != nil {
			fail(err)
		}
		mix = []workload.WeightedTemplate{{Template: t, Weight: 1}}
	} else {
		for _, name := range callgraph.TemplateNames() {
			t, err := workload.FromGraph(callgraph.Templates()[name])
			if err != nil {
				fail(err)
			}
			mix = append(mix, workload.WeightedTemplate{Template: t, Weight: 1})
		}
	}
	if *repsFlag > 1 {
		runReps(cfg, mix, *policyFlag, *tasksFlag, *rateFlag, *repsFlag, *parFlag)
		return
	}

	gen, err := workload.NewGenerator(sys.Src.Split(), mix)
	if err != nil {
		fail(err)
	}

	sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), *rateFlag), gen, *tasksFlag)
	sys.Run()
	printSummary(sys, *policyFlag, *tasksFlag, *rateFlag)
	writeTrace(sys, *traceFlag)
}

// repStats is the deterministic slice of one replication's outcome.
type repStats struct {
	seed               uint64
	completed, failed  uint64
	meanS, p95S        float64
	missRate           float64
	usdPerTask, energy float64
}

// runReps executes reps independent replications of the scenario on a
// bounded worker pool. Replication r runs with seed rng.Derive(base, r) —
// a pure function of the base seed and the replication index — so the
// table below is byte-identical for every -parallel value, and the
// mean/stddev rows quantify seed sensitivity rather than scheduling luck.
func runReps(cfg core.Config, mix []workload.WeightedTemplate, policy string, tasks int, rate float64, reps, workers int) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > reps {
		workers = reps
	}
	stats := make([]repStats, reps)
	jobs := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range jobs {
				st, err := runOneRep(cfg, mix, rate, tasks, rng.Derive(cfg.Seed, uint64(r)))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				stats[r] = st
			}
		}()
	}
	for r := 0; r < reps; r++ {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		fail(firstErr)
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("offsim: %s, %d tasks at %g/s, %d seed replications", policy, tasks, rate, reps),
		"rep", "seed", "completed", "failed", "mean_s", "p95_s", "miss", "usd_per_task", "mJ_per_task")
	var acc metricAccum
	for r, st := range stats {
		tbl.AddRow(
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%d", st.seed),
			fmt.Sprintf("%d", st.completed),
			fmt.Sprintf("%d", st.failed),
			fmt.Sprintf("%.4g", st.meanS),
			fmt.Sprintf("%.4g", st.p95S),
			fmt.Sprintf("%.1f%%", 100*st.missRate),
			fmt.Sprintf("%.4g", st.usdPerTask),
			fmt.Sprintf("%.4g", st.energy),
		)
		acc.observe(st)
	}
	acc.finishStddev(stats)
	n := float64(reps)
	tbl.AddRow("mean", "-", "-", "-",
		fmt.Sprintf("%.4g", acc.meanS/n),
		fmt.Sprintf("%.4g", acc.p95S/n),
		fmt.Sprintf("%.1f%%", 100*acc.miss/n),
		fmt.Sprintf("%.4g", acc.usd/n),
		fmt.Sprintf("%.4g", acc.energy/n),
	)
	tbl.AddRow("stddev", "-", "-", "-",
		fmt.Sprintf("%.3g", acc.sdMeanS),
		fmt.Sprintf("%.3g", acc.sdP95S),
		fmt.Sprintf("%.3g", acc.sdMiss),
		fmt.Sprintf("%.3g", acc.sdUSD),
		fmt.Sprintf("%.3g", acc.sdEnergy),
	)
	fmt.Println(tbl.String())
}

// metricAccum accumulates sums (and later stddevs) over replications.
type metricAccum struct {
	meanS, p95S, miss, usd, energy           float64
	sdMeanS, sdP95S, sdMiss, sdUSD, sdEnergy float64
}

func (a *metricAccum) observe(st repStats) {
	a.meanS += st.meanS
	a.p95S += st.p95S
	a.miss += st.missRate
	a.usd += st.usdPerTask
	a.energy += st.energy
}

func (a *metricAccum) finishStddev(stats []repStats) {
	n := float64(len(stats))
	if n < 2 {
		return
	}
	var vMean, vP95, vMiss, vUSD, vEnergy float64
	for _, st := range stats {
		vMean += sq(st.meanS - a.meanS/n)
		vP95 += sq(st.p95S - a.p95S/n)
		vMiss += sq(st.missRate - a.miss/n)
		vUSD += sq(st.usdPerTask - a.usd/n)
		vEnergy += sq(st.energy - a.energy/n)
	}
	a.sdMeanS = math.Sqrt(vMean / (n - 1))
	a.sdP95S = math.Sqrt(vP95 / (n - 1))
	a.sdMiss = math.Sqrt(vMiss / (n - 1))
	a.sdUSD = math.Sqrt(vUSD / (n - 1))
	a.sdEnergy = math.Sqrt(vEnergy / (n - 1))
}

func sq(x float64) float64 { return x * x }

// runOneRep builds a fresh system on the derived seed and runs the
// scenario to completion.
func runOneRep(cfg core.Config, mix []workload.WeightedTemplate, rate float64, tasks int, seed uint64) (repStats, error) {
	cfg.Seed = seed
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return repStats{}, err
	}
	gen, err := workload.NewGenerator(sys.Src.Split(), mix)
	if err != nil {
		return repStats{}, err
	}
	sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), rate), gen, tasks)
	sys.Run()
	st := sys.Stats()
	return repStats{
		seed:       seed,
		completed:  st.Completed,
		failed:     st.Failed,
		meanS:      st.MeanCompletion(),
		p95S:       st.P95Completion(),
		missRate:   st.MissRate(),
		usdPerTask: st.CostPerTask(),
		energy:     st.EnergyPerTaskMilliJ(),
	}, nil
}

func printSummary(sys *core.System, label string, tasks int, rate float64) {
	st := sys.Stats()
	summary := metrics.NewTable(fmt.Sprintf("offsim: %s, %d tasks at %g/s", label, tasks, rate),
		"metric", "value")
	summary.AddRowf("completed", fmt.Sprintf("%d", st.Completed))
	summary.AddRowf("failed", fmt.Sprintf("%d", st.Failed))
	summary.AddRowf("mean completion (s)", st.MeanCompletion())
	summary.AddRowf("p95 completion (s)", st.P95Completion())
	summary.AddRowf("deadline misses", fmt.Sprintf("%d (%.1f%%)", st.Missed, 100*st.MissRate()))
	summary.AddRowf("marginal cost ($/task)", st.CostPerTask())
	summary.AddRowf("infrastructure cost ($)", sys.InfrastructureCostUSD())
	summary.AddRowf("device energy (mJ/task)", st.EnergyPerTaskMilliJ())
	summary.AddRowf("virtual time (s)", float64(sys.Eng.Now()))
	summary.AddRowf("events fired", fmt.Sprintf("%d", sys.Eng.Fired()))
	fmt.Println(summary.String())

	placements := metrics.NewTable("placements", "placement", "tasks")
	for _, p := range model.AllPlacements() {
		if n := st.ByPlacement[p]; n > 0 {
			placements.AddRow(p.String(), fmt.Sprintf("%d", n))
		}
	}
	fmt.Println(placements.String())

	if p := sys.Platform(); p != nil && p.Stats().Invocations > 0 {
		ps := p.Stats()
		faas := metrics.NewTable("serverless platform", "metric", "value")
		faas.AddRowf("invocations", fmt.Sprintf("%d", ps.Invocations))
		faas.AddRowf("cold starts", fmt.Sprintf("%d (%.1f%%)", ps.ColdStarts,
			100*float64(ps.ColdStarts)/float64(ps.Invocations)))
		faas.AddRowf("billed ($)", ps.BilledUSD)
		fmt.Println(faas.String())
	}
}

func writeTrace(sys *core.System, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := sys.Recorder.WriteJSONL(f); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d trace records to %s\n", sys.Recorder.Len(), path)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "offsim: %v\n", err)
	os.Exit(1)
}
