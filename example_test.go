package offload_test

import (
	"fmt"

	"offload"
)

// ExamplePlanApp shows the offline journey: profile an application,
// partition it with the min-cut, and size one serverless function per
// offloaded component.
func ExamplePlanApp() {
	plan, err := offload.PlanApp(offload.SciBatch(), offload.PlanOptions{
		Device:       offload.Smartphone(),
		Serverless:   offload.LambdaLike(),
		CloudPath:    offload.WiFiCloud(),
		Seed:         7,
		ProfileNoise: 0.01,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("offloaded:", plan.Remote)
	// Output:
	// offloaded: [simulate analyze visualize]
}

// ExampleNewSystem runs a small end-to-end simulation under the
// deadline-aware policy.
func ExampleNewSystem() {
	cfg := offload.DefaultConfig()
	cfg.Seed = 1
	sys, err := offload.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	gen, err := offload.StandardMix(sys.Src.Split())
	if err != nil {
		panic(err)
	}
	sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 0.02), gen, 20)
	sys.Run()
	st := sys.Stats()
	fmt.Printf("completed %d tasks, %d deadline misses\n", st.Completed, st.Missed)
	// Output:
	// completed 20 tasks, 0 deadline misses
}

// ExampleSimulatePlan plans, deploys and executes an application through
// the partitioned chain runner.
func ExampleSimulatePlan() {
	plan, results, err := offload.SimulatePlan(offload.MLBatch(), offload.PlanOptions{
		Seed:         7,
		ProfileNoise: 0.01,
	}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("offloaded:", plan.Remote)
	fmt.Println("runs executed:", len(results))
	fmt.Println("second run failed:", results[1].Failed)
	// Output:
	// offloaded: [inference postprocess]
	// runs executed: 2
	// second run failed: false
}

// ExampleRunDeployPipeline runs the offload-integrated CI/CD pipeline.
func ExampleRunDeployPipeline() {
	result, err := offload.RunDeployPipeline(offload.ReportGen(), offload.DeployOptions{
		Seed:              1,
		CanaryInvocations: 3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("succeeded:", result.Report.Succeeded())
	fmt.Println("functions deployed:", len(result.Manifest.Functions))
	// Output:
	// succeeded: true
	// functions deployed: 2
}
