// Cicd: computational offloading as part of the deployment process. A
// healthy release runs the offload-integrated pipeline (profile →
// partition → allocate → deploy → canary); then a build with a performance
// regression goes through the same pipeline, fails its canary and rolls
// back to the previous manifest automatically.
//
//	go run ./examples/cicd
package main

import (
	"fmt"

	"offload"
)

func main() {
	app := offload.ReportGen()

	// Baseline: the pipeline without offloading stages.
	vanilla, err := offload.RunDeployPipeline(app, offload.DeployOptions{
		Seed:           1,
		WithoutOffload: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("vanilla pipeline:            %3.0f s\n", float64(vanilla.Report.Duration()))

	// Healthy offload-integrated release.
	healthy, err := offload.RunDeployPipeline(app, offload.DeployOptions{
		Seed:              1,
		ProfileRuns:       30,
		CanaryInvocations: 5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("offload-integrated pipeline: %3.0f s (overhead %.0f%%)\n",
		float64(healthy.Report.Duration()),
		100*(float64(healthy.Report.Duration())/float64(vanilla.Report.Duration())-1))
	fmt.Println("\nstages:")
	for _, res := range healthy.Report.Results {
		fmt.Printf("  %-10s start %4.0fs  dur %5.1fs\n",
			res.Name, float64(res.Start), float64(res.Duration()))
	}
	fmt.Println("\ndeployed manifest:")
	for _, fn := range healthy.Manifest.Functions {
		fmt.Printf("  %-28s %5d MB\n", fn.Name, fn.MemoryBytes/(1<<20))
	}
	if healthy.Canary != nil {
		fmt.Printf("canary: mean %.2fs vs expected %.2fs → passed=%v\n",
			healthy.Canary.MeanExecS, healthy.Canary.ExpectedS, healthy.Canary.Passed)
	}

	// A regressed build: canary catches it, rollback restores the previous
	// manifest, release is skipped.
	fmt.Println("\n--- shipping a build that is 6x slower ---")
	regressed, err := offload.RunDeployPipeline(app, offload.DeployOptions{
		Seed:              2,
		ProfileRuns:       30,
		CanaryInvocations: 5,
		Previous:          healthy.Manifest,
		InjectRegression:  6,
	})
	if err != nil {
		panic(err)
	}
	if regressed.Canary != nil {
		fmt.Printf("canary: mean %.2fs vs expected %.2fs → passed=%v\n",
			regressed.Canary.MeanExecS, regressed.Canary.ExpectedS, regressed.Canary.Passed)
	}
	fmt.Printf("rolled back: %v\n", regressed.RolledBack)
	if release, ok := regressed.Report.Stage("release"); ok {
		fmt.Printf("release skipped: %v\n", release.Skipped)
	}
	fmt.Printf("pipeline succeeded: %v (by design — the bad build never shipped)\n",
		regressed.Report.Succeeded())
}
