// Fleet: many devices, one cloud account. A single device can never see
// shared-resource contention; a fleet sharing one serverless region (one
// account concurrency limit, one function pool) can. This example runs
// the same burst of work through fleets against a roomy and a throttled
// account, and shows where the account limit starts queueing everyone.
//
//	go run ./examples/fleet
package main

import (
	"fmt"

	"offload"
)

func main() {
	run := func(devices, concurrencyLimit int) (offload.FleetStats, uint64) {
		cfg := offload.DefaultConfig()
		cfg.Policy = offload.PolicyCloudAll
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
		sl := offload.LambdaLike()
		sl.ConcurrencyLimit = concurrencyLimit
		cfg.Serverless = &sl
		cfg.ArrivalRateHint = 0.5 // bursty: everyone submits at once

		fleet, err := offload.NewFleet(cfg, devices)
		if err != nil {
			panic(err)
		}
		// Every device submits three tasks in a tight burst.
		if err := fleet.SubmitStreams(0.5, 3); err != nil {
			panic(err)
		}
		fleet.Run()
		return fleet.Stats(), fleet.Platform().Stats().Invocations
	}

	fmt.Println("40 devices × 3 tasks, bursty submission, one shared account:")
	fmt.Printf("  %-22s %-14s %-12s %s\n", "account limit", "mean (s)", "miss", "invocations")
	for _, limit := range []int{1000, 20, 4} {
		st, inv := run(40, limit)
		fmt.Printf("  %-22d %-14.1f %-12s %d\n",
			limit, st.MeanCompletion, fmt.Sprintf("%.1f%%", 100*st.MissRate()), inv)
	}
	fmt.Println()
	fmt.Println("the roomy account absorbs the burst; the throttled accounts queue it.")
	fmt.Println("deadlines in the minutes-to-hours range absorb even heavy throttling —")
	fmt.Println("one more place the non-time-critical assumption relaxes capacity planning.")
}
