// Mlbatch: the strongest non-time-critical use case — nightly ML batch
// inference with an eight-hour completion budget. The example compares
// immediate dispatch against delay-tolerant batching (which amortises
// cold starts and per-request charges), and sweeps the serverless memory
// ladder to show the allocator's cost-optimal pick.
//
//	go run ./examples/mlbatch
package main

import (
	"fmt"

	"offload"
)

func main() {
	// 1. How should the inference function be sized? Sweep the ladder.
	plan, err := offload.PlanApp(offload.MLBatch(), offload.PlanOptions{
		Device:     offload.Smartphone(),
		Serverless: offload.LambdaLike(),
		CloudPath:  offload.WiFiCloud(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("plan for %q: offload %v\n", plan.App, plan.Remote)
	for _, fn := range plan.Manifest.Functions {
		fmt.Printf("  %-24s %5d MB\n", fn.Name, fn.MemoryBytes/(1<<20))
	}
	fmt.Printf("estimated bill per run: $%.6f\n\n", plan.EstimatedCostPerRunUSD)

	// 2. Overnight batch: 120 inference jobs trickle in at ~0.001/s (one
	// every ~17 minutes — far apart compared with the 7-minute container
	// keep-alive, so naive dispatch pays a cold start nearly every time).
	// With an 8-hour budget there is no reason to.
	const rate = 0.001
	run := func(batch int) (cold float64, perTask float64, mean float64) {
		cfg := offload.DefaultConfig()
		cfg.Policy = offload.PolicyCloudAll
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil // serverless only
		cfg.ArrivalRateHint = rate
		if batch > 1 {
			cfg.Batch = &offload.BatchConfig{Size: batch, MaxWait: 7200}
		}
		sys, err := offload.NewSystem(cfg)
		if err != nil {
			panic(err)
		}
		tmpl, err := offload.TemplateFromGraph(offload.MLBatch())
		if err != nil {
			panic(err)
		}
		gen, err := offload.NewGenerator(sys.Src.Split(), tmpl)
		if err != nil {
			panic(err)
		}
		sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), rate), gen, 120)
		sys.Run()
		ps := sys.Platform().Stats()
		coldFrac := 0.0
		if ps.Invocations > 0 {
			coldFrac = float64(ps.ColdStarts) / float64(ps.Invocations)
		}
		return coldFrac, sys.Stats().CostPerTask(), sys.Stats().MeanCompletion()
	}

	fmt.Println("overnight batch, 120 jobs at 0.001/s (8 h deadline):")
	fmt.Printf("  %-18s %-12s %-14s %s\n", "dispatch", "cold starts", "$/task", "mean completion")
	for _, batch := range []int{1, 8, 32} {
		cold, cost, mean := run(batch)
		label := "immediate"
		if batch > 1 {
			label = fmt.Sprintf("batched (%d)", batch)
		}
		fmt.Printf("  %-18s %-12s $%-13.6f %.0f s\n",
			label, fmt.Sprintf("%.1f%%", 100*cold), cost, mean)
	}
	fmt.Println("\nbatching trades completion latency (still far inside the 8 h budget)")
	fmt.Println("for fewer cold starts and a lower bill — the delay-tolerance dividend.")
}
