// Quickstart: assemble the default offloading environment, stream a mixed
// non-time-critical workload through the deadline-aware policy, and print
// what it cost in time, money and battery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"offload"
)

func main() {
	// A smartphone with an edge site, a Lambda-like serverless region and
	// a small VM — everything the policy may choose between.
	cfg := offload.DefaultConfig()
	cfg.Policy = offload.PolicyDeadlineAware
	cfg.ArrivalRateHint = 0.02 // ~72 tasks/hour

	sys, err := offload.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	// An even mix of the five built-in applications: video transcoding,
	// ML batch inference, photo pipelines, report generation, scientific
	// batch jobs. All are delay tolerant (deadlines in minutes to hours).
	gen, err := offload.StandardMix(sys.Src.Split())
	if err != nil {
		panic(err)
	}
	sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 0.02), gen, 200)
	sys.Run()

	// Report is the same summary the bench tables and the CI/CD SLO gate
	// read — one source of truth for every consumer.
	rep := sys.Report()
	fmt.Printf("tasks completed:   %d (failed %d)\n", rep.Completed, rep.Failed)
	fmt.Printf("mean completion:   %.1f s (p95 %.1f s)\n", rep.MeanCompletionS, rep.P95CompletionS)
	fmt.Printf("deadline misses:   %.1f%%\n", 100*rep.MissRate)
	fmt.Printf("marginal cost:     $%.6f per task\n", rep.CostPerTaskUSD)
	fmt.Printf("infrastructure:    $%.4f accrued\n", rep.InfraCostUSD)
	fmt.Printf("device energy:     %.0f mJ per task\n", rep.EnergyPerTaskMilliJ)
	fmt.Println("\nwhere the work ran:")
	for placement, n := range sys.Stats().ByPlacement {
		fmt.Printf("  %-10s %d\n", placement, n)
	}
}
