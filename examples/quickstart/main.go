// Quickstart: assemble the default offloading environment, stream a mixed
// non-time-critical workload through the deadline-aware policy, and print
// what it cost in time, money and battery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"offload"
)

func main() {
	// A smartphone with an edge site, a Lambda-like serverless region and
	// a small VM — everything the policy may choose between.
	cfg := offload.DefaultConfig()
	cfg.Policy = offload.PolicyDeadlineAware
	cfg.ArrivalRateHint = 0.02 // ~72 tasks/hour

	sys, err := offload.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	// An even mix of the five built-in applications: video transcoding,
	// ML batch inference, photo pipelines, report generation, scientific
	// batch jobs. All are delay tolerant (deadlines in minutes to hours).
	gen, err := offload.StandardMix(sys.Src.Split())
	if err != nil {
		panic(err)
	}
	sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 0.02), gen, 200)
	sys.Run()

	st := sys.Stats()
	fmt.Printf("tasks completed:   %d (failed %d)\n", st.Completed, st.Failed)
	fmt.Printf("mean completion:   %.1f s (p95 %.1f s)\n", st.MeanCompletion(), st.P95Completion())
	fmt.Printf("deadline misses:   %.1f%%\n", 100*st.MissRate())
	fmt.Printf("marginal cost:     $%.6f per task\n", st.CostPerTask())
	fmt.Printf("infrastructure:    $%.4f accrued\n", sys.InfrastructureCostUSD())
	fmt.Printf("device energy:     %.0f mJ per task\n", st.EnergyPerTaskMilliJ())
	fmt.Println("\nwhere the work ran:")
	for placement, n := range st.ByPlacement {
		fmt.Printf("  %-10s %d\n", placement, n)
	}
}
