// Videopipeline: plan and run the video-transcoding application — the
// interesting borderline case. Its 64 MB payloads make naive offloading
// expensive in radio time and energy, so the partitioner has to decide
// per component, and the outcome depends on the network you give it.
//
// The example plans the app twice (over WiFi and over LTE), shows what
// each plan offloads, and then simulates an evening of transcode jobs
// under three policies.
//
//	go run ./examples/videopipeline
package main

import (
	"fmt"

	"offload"
)

func main() {
	app := offload.VideoTranscode()
	fmt.Printf("application %q: %d components, %.0f Gcycles per run\n\n",
		app.Name(), app.Len(), app.TotalCycles()/1e9)

	// Plan over two networks with battery-first weights: the user is on
	// battery and the job is overnight, so seconds barely matter, joules
	// do (a charge valued at $2), and dollars count at face value. Better
	// uplinks make moving the 64 MB chunks cheaper, so the WiFi plan
	// should offload more than the LTE plan.
	batteryFirst := offload.Weights{Latency: 1e-4, Energy: 4.6e-5, Money: 1}
	for _, net := range []struct {
		name string
		cfg  func() offload.PlanOptions
	}{
		{"WiFi (50 Mbps up)", func() offload.PlanOptions {
			return offload.PlanOptions{
				Device: offload.Smartphone(), Serverless: offload.LambdaLike(),
				CloudPath: offload.WiFiCloud(), Weights: batteryFirst,
			}
		}},
		{"LTE (10 Mbps up)", func() offload.PlanOptions {
			return offload.PlanOptions{
				Device: offload.Smartphone(), Serverless: offload.LambdaLike(),
				CloudPath: offload.LTECloud(), Weights: batteryFirst,
			}
		}},
	} {
		plan, err := offload.PlanApp(offload.VideoTranscode(), net.cfg())
		if err != nil {
			panic(err)
		}
		fmt.Printf("plan over %s:\n", net.name)
		if len(plan.Remote) == 0 {
			fmt.Println("  keep everything on the device (transfers cost more than they save)")
		}
		for _, fn := range plan.Manifest.Functions {
			fmt.Printf("  offload %-12s → %s (%d MB)\n",
				fn.Component, fn.Name, fn.MemoryBytes/(1<<20))
		}
		fmt.Printf("  estimated serverless bill per run: $%.6f\n\n", plan.EstimatedCostPerRunUSD)
	}

	// An evening of transcode jobs: 60 uploads over ~3 hours.
	fmt.Println("simulating 60 transcode jobs (rate 0.005/s) per policy:")
	for _, policy := range []offload.PolicyName{
		offload.PolicyLocalOnly, offload.PolicyCloudAll, offload.PolicyDeadlineAware,
	} {
		cfg := offload.DefaultConfig()
		cfg.Policy = policy
		cfg.ArrivalRateHint = 0.005
		sys, err := offload.NewSystem(cfg)
		if err != nil {
			panic(err)
		}
		single, err := singleAppGenerator(sys, "video-transcode")
		if err != nil {
			panic(err)
		}
		sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 0.005), single, 60)
		sys.Run()
		st := sys.Stats()
		fmt.Printf("  %-15s mean %6.1fs  miss %4.1f%%  $%.5f/task  %7.0f mJ/task\n",
			policy, st.MeanCompletion(), 100*st.MissRate(),
			st.CostPerTask(), st.EnergyPerTaskMilliJ())
	}
}

// singleAppGenerator builds a generator over one template.
func singleAppGenerator(sys *offload.System, app string) (*offload.Generator, error) {
	tmpl, err := offload.TemplateFromGraph(offload.Templates()[app])
	if err != nil {
		return nil, err
	}
	return offload.NewGenerator(sys.Src.Split(), tmpl)
}
