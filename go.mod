module offload

go 1.22
