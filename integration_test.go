package offload_test

// Cross-package integration tests: each exercises a journey that spans
// several subsystems end to end, through the public façade plus the
// internal packages the façade composes.

import (
	"bytes"
	"math"
	"os"
	"testing"

	"offload"
	"offload/internal/callgraph"
	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/trace"
	"offload/internal/workload"
)

// TestPlanMatchesDeployedReality deploys a plan's manifest onto a real
// (simulated) platform and checks that the measured per-run bill lands
// near the allocator's estimate — the offline and online halves of the
// framework must agree.
func TestPlanMatchesDeployedReality(t *testing.T) {
	g := callgraph.SciBatch()
	plan, err := core.PlanApp(g, core.PlanOptions{
		Device:       device.Smartphone(),
		Serverless:   serverless.LambdaLike(),
		CloudPath:    network.WiFiCloud(),
		Seed:         11,
		ProfileNoise: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine()
	cfg := serverless.LambdaLike()
	cfg.ColdStart = serverless.ColdStartModel{} // estimate assumes cold prob 1; drop the term on both sides
	platform := serverless.NewPlatform(eng, rng.New(12), cfg)
	for _, fn := range plan.Manifest.Functions {
		if _, err := platform.Deploy(serverless.FunctionConfig{
			Name: fn.Name, MemoryBytes: fn.MemoryBytes,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One application run: invoke each offloaded component once with its
	// true demand.
	total := 0.0
	for _, spec := range plan.Manifest.Functions {
		id, ok := g.Lookup(spec.Component)
		if !ok {
			t.Fatalf("component %s missing from graph", spec.Component)
		}
		comp := g.Component(id)
		fn := platform.Function(spec.Name)
		fn.Execute(&model.Task{
			Cycles:           comp.Cycles,
			MemoryBytes:      comp.MemoryBytes,
			ParallelFraction: comp.ParallelFraction,
		}, func(rep model.ExecReport) {
			if rep.Err != nil {
				t.Errorf("%s failed: %v", spec.Name, rep.Err)
			}
			total += rep.CostUSD
		})
		eng.Run()
	}
	// The plan's estimate includes an expected cold start; the measured run
	// had none, so allow a modest band rather than exact equality.
	if total > plan.EstimatedCostPerRunUSD*1.2 || total < plan.EstimatedCostPerRunUSD*0.5 {
		t.Fatalf("measured per-run bill $%g far from plan estimate $%g",
			total, plan.EstimatedCostPerRunUSD)
	}
}

// TestTraceRoundTripMatchesStats records a run, serialises it, reads it
// back and checks the summary agrees with the scheduler's own statistics.
func TestTraceRoundTripMatchesStats(t *testing.T) {
	sys, err := offload.NewSystem(offload.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := offload.StandardMix(sys.Src.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys.SubmitStream(offload.NewPoisson(sys.Src.Split(), 0.05), gen, 40)
	sys.Run()

	var buf bytes.Buffer
	if err := sys.Recorder.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	summary := trace.Summarize(records)
	st := sys.Stats()
	if uint64(summary.Tasks) != st.Total() {
		t.Fatalf("trace has %d tasks, stats %d", summary.Tasks, st.Total())
	}
	if uint64(summary.Missed) != st.Missed {
		t.Fatalf("trace misses %d, stats %d", summary.Missed, st.Missed)
	}
	if math.Abs(summary.TotalCostUSD-st.CostUSD) > 1e-12 {
		t.Fatalf("trace cost $%g, stats $%g", summary.TotalCostUSD, st.CostUSD)
	}
	if math.Abs(summary.MeanCompletion-st.MeanCompletion()) > 1e-9 {
		t.Fatalf("trace mean %g, stats %g", summary.MeanCompletion, st.MeanCompletion())
	}
}

// TestTraceReplayReproducesWorkload replays a recorded run into a fresh
// identical system and expects identical aggregate results — the
// determinism guarantee, end to end.
func TestTraceReplayReproducesWorkload(t *testing.T) {
	build := func() *core.System {
		cfg := offload.DefaultConfig()
		cfg.Policy = offload.PolicyCloudAll
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
		sys, err := core.NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	first := build()
	gen, err := workload.StandardMix(first.Src.Split())
	if err != nil {
		t.Fatal(err)
	}
	first.SubmitStream(workload.NewPoisson(first.Src.Split(), 0.05), gen, 30)
	first.Run()

	second := build()
	if err := trace.Replay(second.Eng, first.Recorder.Records(), second.Submit); err != nil {
		t.Fatal(err)
	}
	second.Run()

	a, b := first.Stats(), second.Stats()
	if a.Total() != b.Total() {
		t.Fatalf("replay completed %d tasks, original %d", b.Total(), a.Total())
	}
	if math.Abs(a.MeanCompletion()-b.MeanCompletion()) > 1e-9 {
		t.Fatalf("replay mean %g, original %g", b.MeanCompletion(), a.MeanCompletion())
	}
	if math.Abs(a.CostUSD-b.CostUSD) > 1e-12 {
		t.Fatalf("replay cost %g, original %g", b.CostUSD, a.CostUSD)
	}
}

// TestShippedSpecParsesAndPlans keeps the example spec in specs/ honest:
// it must parse and yield a non-trivial plan.
func TestShippedSpecParsesAndPlans(t *testing.T) {
	data, err := os.ReadFile("specs/photo-backup.json")
	if err != nil {
		t.Fatal(err)
	}
	g, err := offload.ParseGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "photo-backup" || g.Len() != 5 {
		t.Fatalf("spec shape: %s with %d components", g.Name(), g.Len())
	}
	plan, err := offload.PlanApp(g, offload.PlanOptions{
		Device:     offload.Smartphone(),
		Serverless: offload.LambdaLike(),
		CloudPath:  offload.WiFiCloud(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Remote) == 0 {
		t.Fatal("shipped spec plans to offload nothing")
	}
}

// TestPipelineThenServeTraffic runs the CI/CD pipeline and then serves
// live traffic against the functions it deployed, on the same platform —
// the full deployment-process integration the abstract promises.
func TestPipelineThenServeTraffic(t *testing.T) {
	result, err := offload.RunDeployPipeline(offload.ReportGen(), offload.DeployOptions{
		Seed:              3,
		CanaryInvocations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !result.Report.Succeeded() || result.Manifest == nil {
		t.Fatalf("pipeline failed: %+v", result.Report.Results)
	}
	if len(result.Manifest.Functions) == 0 {
		t.Fatal("nothing deployed")
	}
	// The manifest is the contract: a fresh platform provisioned from it
	// must serve the offloaded components.
	eng := sim.NewEngine()
	platform := serverless.NewPlatform(eng, rng.New(4), serverless.LambdaLike())
	g := offload.ReportGen()
	for _, spec := range result.Manifest.Functions {
		fn, err := platform.Deploy(serverless.FunctionConfig{
			Name: spec.Name, MemoryBytes: spec.MemoryBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		id, _ := g.Lookup(spec.Component)
		comp := g.Component(id)
		fn.Execute(&model.Task{
			Cycles: comp.Cycles, MemoryBytes: comp.MemoryBytes,
			ParallelFraction: comp.ParallelFraction,
		}, func(rep model.ExecReport) {
			if rep.Err != nil {
				t.Errorf("deployed function %s cannot serve its component: %v", spec.Name, rep.Err)
			}
		})
	}
	eng.Run()
	if platform.Stats().Errors != 0 {
		t.Fatalf("serving errors: %d", platform.Stats().Errors)
	}
}
