// Package adapt closes the control loop the offline planner leaves open:
// everything in internal/alloc and internal/sched decides from a static
// demand model, but real regimes drift — backends degrade, cold-start
// distributions shift, workloads surge. This package learns online from
// settled task outcomes:
//
//   - a contextual bandit (UCB1 or epsilon-greedy) places tasks over the
//     available substrates, context-bucketed by app and input-size decile,
//     rewarded by a normalized cost/latency blend;
//   - an online memory tuner re-runs the resource allocator against
//     observed exec and cold-start statistics and re-deploys the
//     serverless function when the optimum moves past a hysteresis band;
//   - a Page–Hinkley drift detector per backend resets the bandit's arm
//     and forces a re-tune when a regime change is detected;
//   - an admission controller bounds in-flight offloads and localizes
//     traffic under backpressure or failure streaks.
//
// The Controller implements sched.Policy plus the scheduler's outcome
// feedback hook; it can also wrap a static policy to add only the
// tuning/drift/admission layers. All randomness comes from one rng.Source
// split handed in at construction, so runs stay byte-identical at any
// parallelism.
package adapt

import (
	"fmt"

	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/sim"
)

// Config is the Adapt block of core.Config: reward shaping for the bandit
// plus the optional tuner, drift and admission sub-systems.
type Config struct {
	// Epsilon is the epsilon-greedy exploration rate. Default 0.1.
	Epsilon float64
	// UCBC scales the UCB1 confidence radius. Default 1.
	UCBC float64

	// Reward shaping: a settled task scores
	//   completion/LatencyScaleS + spendUSD/CostScaleUSD
	// (spend = money + energy priced at EnergyUSDPerJ) and earns reward
	// 1/(1+score); failures earn 0. Defaults: 30 s, $0.001, 2.3e-5 $/J.
	LatencyScaleS float64
	CostScaleUSD  float64
	EnergyUSDPerJ float64

	// MemoryTune enables the online serverless memory tuner.
	MemoryTune bool
	// TuneAlpha smooths the per-app observation EWMAs. Default 0.3.
	TuneAlpha float64
	// TuneHysteresis is the relative memory move that justifies a
	// re-deploy. Default 0.25.
	TuneHysteresis float64
	// TuneMinObservations delays the first re-tune. Default 5.
	TuneMinObservations int
	// TuneEvery spaces re-tune attempts (in per-app outcomes). Default 5.
	TuneEvery int

	// Drift, when non-nil, runs a Page–Hinkley detector per backend.
	Drift *DriftConfig
	// Admission, when non-nil, enables the admission controller.
	Admission *AdmissionConfig
}

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.UCBC <= 0 {
		c.UCBC = 1
	}
	if c.LatencyScaleS <= 0 {
		c.LatencyScaleS = 30
	}
	if c.CostScaleUSD <= 0 {
		c.CostScaleUSD = 0.001
	}
	if c.EnergyUSDPerJ <= 0 {
		c.EnergyUSDPerJ = 2.3e-5
	}
	if c.TuneAlpha <= 0 {
		c.TuneAlpha = 0.3
	}
	if c.TuneHysteresis <= 0 {
		c.TuneHysteresis = 0.25
	}
	if c.TuneMinObservations <= 0 {
		c.TuneMinObservations = 5
	}
	if c.TuneEvery <= 0 {
		c.TuneEvery = 5
	}
	return c
}

// DefaultConfig returns the fully-enabled adaptive layer: bandit reward
// defaults, memory tuning, drift detection and admission control with the
// parameters E19 uses.
func DefaultConfig() Config {
	return Config{
		MemoryTune: true,
		Drift:      &DriftConfig{},
		Admission:  &AdmissionConfig{MaxInFlight: 64, MaxQueueDepth: 32, FailureStreak: 3, Cooldown: 30},
	}.withDefaults()
}

// Tracer receives the controller's control-plane events. It is
// implemented by *trace.SpanRecorder; implementations must be passive
// (record only — the controller behaves identically with or without one).
type Tracer interface {
	AdaptEvent(kind, subject string, at sim.Time)
}

// Control-plane event kinds emitted through the Tracer.
const (
	EventDriftReset = "drift_reset" // detector fired; subject = backend
	EventResize     = "resize"      // tuner re-deployed; subject = app
	EventLocalize   = "localize"    // admission breaker tripped; subject = reason
	EventRegion     = "region"      // failover region transition; subject = region:down|up
)

// Controller is the adaptive layer as a placement policy. With a bandit
// it decides placements itself; wrapping a static policy (see Wrap) it
// delegates decisions and adds tuning, drift response and admission
// control around them.
type Controller struct {
	cfg    Config
	name   string
	inner  sched.Policy // nil when a bandit decides
	bandit *bandit      // nil when wrapping a static policy
	tuner  *tuner       // nil unless MemoryTune
	adm    *admission   // nil unless Admission
	drift  map[model.Placement]*PageHinkley

	tr Tracer

	decisions    map[model.Placement]uint64
	last         model.Placement
	haveLast     bool
	switches     uint64
	driftResets  uint64
	armsCleared  uint64
	regionResets uint64
}

var _ sched.Policy = (*Controller)(nil)
var _ sched.FeedbackPolicy = (*Controller)(nil)
var _ sched.RegionAwarePolicy = (*Controller)(nil)

// NewBandit returns a bandit-driven controller. src feeds every random
// draw the controller will ever make; both kinds consume the source
// identically at construction, so switching kinds leaves sibling streams
// untouched.
func NewBandit(kind BanditKind, cfg Config, src *rng.Source) (*Controller, error) {
	if src == nil {
		return nil, fmt.Errorf("adapt: bandit without an rng source")
	}
	cfg = cfg.withDefaults()
	name := "bandit-ucb"
	if kind == BanditGreedy {
		name = "bandit-greedy"
	}
	c := newController(cfg, name)
	c.bandit = newBandit(kind, cfg.Epsilon, cfg.UCBC, src)
	return c, nil
}

// Wrap returns a controller that delegates placement to inner and layers
// the configured tuning, drift detection and admission control on top.
func Wrap(inner sched.Policy, cfg Config) (*Controller, error) {
	if inner == nil {
		return nil, fmt.Errorf("adapt: wrapping a nil policy")
	}
	c := newController(cfg.withDefaults(), inner.Name()+"+adapt")
	c.inner = inner
	return c, nil
}

func newController(cfg Config, name string) *Controller {
	if cfg.Drift != nil {
		d := cfg.Drift.withDefaults()
		cfg.Drift = &d
	}
	c := &Controller{
		cfg:       cfg,
		name:      name,
		decisions: make(map[model.Placement]uint64),
		drift:     make(map[model.Placement]*PageHinkley),
	}
	if cfg.MemoryTune {
		c.tuner = newTuner(cfg)
	}
	if cfg.Admission != nil {
		c.adm = newAdmission(*cfg.Admission)
	}
	return c
}

// SetTracer attaches (or detaches, with nil) the control-plane event sink.
func (c *Controller) SetTracer(t Tracer) { c.tr = t }

// Name implements sched.Policy.
func (c *Controller) Name() string { return c.name }

// Decide implements sched.Policy: bandit (or inner) placement, then the
// admission override.
func (c *Controller) Decide(task *model.Task, env *sched.Env, pred sched.Predictor) model.Placement {
	var p model.Placement
	if c.bandit != nil {
		p = c.bandit.decide(contextKey(task), env.Available())
	} else {
		p = c.inner.Decide(task, env, pred)
	}
	if c.adm != nil && p != model.PlaceLocal {
		if shed, _ := c.adm.shouldShed(env, env.Eng.Now()); shed {
			p = model.PlaceLocal
			c.adm.sheds++
		}
	}
	c.decisions[p]++
	if c.haveLast && p != c.last {
		c.switches++
	}
	c.last, c.haveLast = p, true
	if c.adm != nil {
		c.adm.noteDispatch(task.ID, p)
	}
	return p
}

// ObserveOutcome implements sched.FeedbackPolicy: every settled outcome
// feeds the admission ledger, the per-backend drift detector, the bandit
// reward and the memory tuner.
func (c *Controller) ObserveOutcome(o model.Outcome, env *sched.Env) {
	now := env.Eng.Now()
	if c.adm != nil && c.adm.noteOutcome(o, now) {
		c.event(EventLocalize, o.Placement.String(), now)
	}
	if c.cfg.Drift != nil && o.Task != nil && o.Placement != model.PlaceUnknown {
		c.feedDrift(o, now)
	}
	if c.bandit != nil && o.Task != nil {
		c.bandit.observe(contextKey(o.Task), o.Placement, c.reward(o))
	}
	if c.tuner != nil {
		if mem := c.tuner.observe(o, env); mem != 0 {
			c.event(EventResize, fmt.Sprintf("%s:%dMB", o.Task.App, mem>>20), now)
		}
	}
}

// feedDrift runs the backend's Page–Hinkley detector on the outcome's
// completion time (failures observe the configured penalty) and, on
// detection, resets the detector, forgets the backend's bandit arm and
// forces a re-tune.
func (c *Controller) feedDrift(o model.Outcome, now sim.Time) {
	d, ok := c.drift[o.Placement]
	if !ok {
		d = NewPageHinkley(*c.cfg.Drift)
		c.drift[o.Placement] = d
	}
	v := float64(o.Finished.Sub(o.Started))
	if o.Failed {
		v = c.cfg.Drift.FailurePenaltyS
	}
	if !d.Observe(v) {
		return
	}
	d.Reset()
	c.driftResets++
	if c.bandit != nil {
		c.armsCleared += uint64(c.bandit.resetArm(o.Placement))
	}
	if c.tuner != nil {
		c.tuner.forceRetune = true
	}
	c.event(EventDriftReset, o.Placement.String(), now)
}

// ObserveRegion implements sched.RegionAwarePolicy: a region dying is a
// regime change far sharper than per-outcome drift statistics can see, so
// the controller resets every dead placement's bandit arm and drift
// detector immediately — the bandit re-learns from the survivors and
// rediscovers the region after recovery instead of trusting stale means.
// Recovery resets the arms again: post-incident latencies are a new
// regime too.
func (c *Controller) ObserveRegion(region string, placements []model.Placement, down bool, now sim.Time) {
	c.regionResets++
	for _, p := range placements {
		if c.bandit != nil {
			c.armsCleared += uint64(c.bandit.resetArm(p))
		}
		if d, ok := c.drift[p]; ok {
			d.Reset()
		}
	}
	if c.tuner != nil {
		c.tuner.forceRetune = true
	}
	status := ":up"
	if down {
		status = ":down"
	}
	c.event(EventRegion, region+status, now)
}

// RegionResets returns how many region transitions the controller
// received from the failover layer.
func (c *Controller) RegionResets() uint64 { return c.regionResets }

// reward maps a settled outcome into [0, 1]: failures earn nothing;
// otherwise the normalized latency+spend score is squashed by 1/(1+score).
func (c *Controller) reward(o model.Outcome) float64 {
	if o.Failed {
		return 0
	}
	spend := o.CostUSD + o.EnergyMilliJ/1000*c.cfg.EnergyUSDPerJ
	score := float64(o.Finished.Sub(o.Started))/c.cfg.LatencyScaleS + spend/c.cfg.CostScaleUSD
	return 1 / (1 + score)
}

func (c *Controller) event(kind, subject string, at sim.Time) {
	if c.tr != nil {
		c.tr.AdaptEvent(kind, subject, at)
	}
}

// Switches returns how many consecutive decisions changed placement.
func (c *Controller) Switches() uint64 { return c.switches }

// DriftResets returns how many times a drift detector fired.
func (c *Controller) DriftResets() uint64 { return c.driftResets }

// ArmsCleared returns how many non-empty bandit cells drift resets wiped.
func (c *Controller) ArmsCleared() uint64 { return c.armsCleared }

// Sheds returns how many remote decisions admission control localized.
func (c *Controller) Sheds() uint64 {
	if c.adm == nil {
		return 0
	}
	return c.adm.Sheds()
}

// AdmissionTrips returns how many times the failure-streak breaker opened.
func (c *Controller) AdmissionTrips() uint64 {
	if c.adm == nil {
		return 0
	}
	return c.adm.Trips()
}

// Resizes returns how many re-deployments the memory tuner triggered.
func (c *Controller) Resizes() uint64 {
	if c.tuner == nil {
		return 0
	}
	return c.tuner.Resizes()
}

// Arms returns the bandit's learned per-arm state (nil when wrapping a
// static policy).
func (c *Controller) Arms() []ArmSnapshot {
	if c.bandit == nil {
		return nil
	}
	return c.bandit.snapshot()
}

// FillRegistry exports the controller's decision and learning state as
// adapt_* metrics.
func (c *Controller) FillRegistry(reg *metrics.Registry) {
	for _, p := range []model.Placement{model.PlaceLocal, model.PlaceEdge, model.PlaceFunction, model.PlaceVM} {
		if n, ok := c.decisions[p]; ok {
			reg.Counter("adapt_decisions", metrics.L("arm", p.String())).Add(float64(n))
		}
	}
	reg.Counter("adapt_switches").Add(float64(c.switches))
	reg.Counter("adapt_drift_resets").Add(float64(c.driftResets))
	reg.Counter("adapt_arms_cleared").Add(float64(c.armsCleared))
	if c.regionResets > 0 {
		reg.Counter("adapt_region_resets").Add(float64(c.regionResets))
	}
	reg.Counter("adapt_sheds").Add(float64(c.Sheds()))
	reg.Counter("adapt_admission_trips").Add(float64(c.AdmissionTrips()))
	reg.Counter("adapt_resizes").Add(float64(c.Resizes()))
	for _, a := range c.Arms() {
		reg.Counter("adapt_arm_pulls", metrics.L("arm", a.Placement.String())).Add(float64(a.Pulls))
		reg.Gauge("adapt_arm_mean_reward", metrics.L("arm", a.Placement.String())).Set(a.MeanReward)
	}
}
