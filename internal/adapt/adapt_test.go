package adapt

import (
	"math"
	"testing"

	"offload/internal/cloudvm"
	"offload/internal/edge"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// --- Page–Hinkley -----------------------------------------------------

func TestDriftSteadyStreamNeverFires(t *testing.T) {
	d := NewPageHinkley(DriftConfig{})
	for i := 0; i < 1000; i++ {
		if d.Observe(2.0) {
			t.Fatalf("fired on a constant stream at observation %d", i)
		}
	}
	if d.N() != 1000 {
		t.Fatalf("N() = %d, want 1000", d.N())
	}
}

func TestDriftFiresOnShift(t *testing.T) {
	d := NewPageHinkley(DriftConfig{Lambda: 30})
	for i := 0; i < 50; i++ {
		if d.Observe(2.0) {
			t.Fatal("fired before the shift")
		}
	}
	fired := false
	for i := 0; i < 50; i++ {
		if d.Observe(20.0) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("never fired on a 10x mean shift")
	}
}

func TestDriftIgnoresNonFinite(t *testing.T) {
	d := NewPageHinkley(DriftConfig{})
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if d.Observe(v) {
			t.Fatalf("fired on %v", v)
		}
	}
	if d.N() != 0 {
		t.Fatalf("non-finite values were counted: N() = %d", d.N())
	}
}

// TestDriftResetIsFresh: after Reset, the detector must behave exactly
// like a newly constructed one on any subsequent stream.
func TestDriftResetIsFresh(t *testing.T) {
	cfg := DriftConfig{Lambda: 10, MinSamples: 3}
	used := NewPageHinkley(cfg)
	for i := 0; i < 20; i++ {
		used.Observe(float64(i) * 3)
	}
	used.Reset()
	if used.N() != 0 {
		t.Fatalf("N() = %d after Reset, want 0", used.N())
	}
	fresh := NewPageHinkley(cfg)
	stream := []float64{1, 1, 2, 50, 1, 80, 80, 80}
	for i, v := range stream {
		if got, want := used.Observe(v), fresh.Observe(v); got != want {
			t.Fatalf("observation %d: reset detector fired=%v, fresh fired=%v", i, got, want)
		}
	}
}

// --- bandit -----------------------------------------------------------

var allArms = []model.Placement{model.PlaceLocal, model.PlaceEdge, model.PlaceFunction, model.PlaceVM}

func TestBanditUntriedArmsFirstInAvailOrder(t *testing.T) {
	b := newBandit(BanditUCB, 0, 1, rng.New(1))
	for i, want := range allArms {
		got := b.decide("k", allArms)
		if got != want {
			t.Fatalf("pull %d: got %v, want %v (availability order)", i, got, want)
		}
		b.observe("k", got, 0.5)
	}
}

func TestBanditConvergesToBestArm(t *testing.T) {
	for _, kind := range []BanditKind{BanditUCB, BanditGreedy} {
		b := newBandit(kind, 0.05, 0.2, rng.New(7))
		reward := map[model.Placement]float64{
			model.PlaceLocal:    0.2,
			model.PlaceEdge:     0.9,
			model.PlaceFunction: 0.3,
			model.PlaceVM:       0.4,
		}
		edgePulls := 0
		for i := 0; i < 200; i++ {
			p := b.decide("k", allArms)
			if i >= 100 && p == model.PlaceEdge {
				edgePulls++
			}
			b.observe("k", p, reward[p])
		}
		if edgePulls < 80 {
			t.Errorf("kind %v: best arm pulled %d/100 late rounds, want >= 80", kind, edgePulls)
		}
	}
}

func TestBanditDeterminism(t *testing.T) {
	run := func() []model.Placement {
		b := newBandit(BanditGreedy, 0.2, 1, rng.New(99))
		var out []model.Placement
		for i := 0; i < 100; i++ {
			p := b.decide("k", allArms)
			out = append(out, p)
			b.observe("k", p, float64(i%3)/3)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBanditResetArm(t *testing.T) {
	b := newBandit(BanditUCB, 0, 1, rng.New(1))
	for i := 0; i < 12; i++ {
		p := b.decide("k", allArms)
		b.observe("k", p, 0.5)
	}
	if cleared := b.resetArm(model.PlaceEdge); cleared != 1 {
		t.Fatalf("resetArm cleared %d cells, want 1", cleared)
	}
	// The cleared arm counts as untried again: with local tried, the next
	// non-exploring decision must re-pull edge (first untried in order).
	if p := b.decide("k", allArms); p != model.PlaceEdge {
		t.Fatalf("after reset, decide = %v, want PlaceEdge (untried-first)", p)
	}
	if cleared := b.resetArm(model.PlaceEdge); cleared != 0 {
		t.Fatalf("resetArm on empty arm cleared %d, want 0", cleared)
	}
}

func TestBanditSnapshotAggregatesContexts(t *testing.T) {
	b := newBandit(BanditUCB, 0, 1, rng.New(1))
	b.observe("a#0", model.PlaceEdge, 1.0)
	b.observe("b#1", model.PlaceEdge, 0.0)
	b.observe("a#0", model.PlaceLocal, 0.4)
	snap := b.snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d arms, want 2", len(snap))
	}
	if snap[0].Placement != model.PlaceLocal || snap[1].Placement != model.PlaceEdge {
		t.Fatalf("snapshot order %v, want canonical [local edge]", snap)
	}
	if snap[1].Pulls != 2 || math.Abs(snap[1].MeanReward-0.5) > 1e-12 {
		t.Fatalf("edge arm = %+v, want 2 pulls mean 0.5", snap[1])
	}
}

func TestSizeDecile(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int
	}{
		{0, 0}, {1024, 0}, {64 << 10, 3}, {1 << 20, 5}, {1 << 30, 9}, {1 << 40, 9},
	}
	for _, c := range cases {
		if got := sizeDecile(c.bytes); got != c.want {
			t.Errorf("sizeDecile(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
	task := &model.Task{App: "report-gen", InputBytes: 64 << 10}
	if got := contextKey(task); got != "report-gen#3" {
		t.Errorf("contextKey = %q, want report-gen#3", got)
	}
}

// --- admission --------------------------------------------------------

func TestAdmissionInFlightCap(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlight: 2})
	env := &sched.Env{}
	a.noteDispatch(1, model.PlaceEdge)
	a.noteDispatch(2, model.PlaceVM)
	if shed, reason := a.shouldShed(env, 0); !shed || reason != "in-flight" {
		t.Fatalf("at cap: shed=%v reason=%q, want in-flight shed", shed, reason)
	}
	a.noteOutcome(model.Outcome{Task: &model.Task{ID: 1}, Placement: model.PlaceEdge}, 0)
	if shed, _ := a.shouldShed(env, 0); shed {
		t.Fatal("still shedding after an outcome settled")
	}
	// Local dispatches never enter the ledger.
	a.noteDispatch(3, model.PlaceLocal)
	if a.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1 (local not counted)", a.InFlight())
	}
}

func TestAdmissionLedgerNoLeak(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxInFlight: 8})
	// Decided remote, but the outcome settles under a different placement
	// (fallback rerouted it): the ledger is keyed by task ID, so it still
	// drains.
	a.noteDispatch(7, model.PlaceFunction)
	a.noteOutcome(model.Outcome{Task: &model.Task{ID: 7}, Placement: model.PlaceLocal}, 0)
	if a.InFlight() != 0 {
		t.Fatalf("in-flight = %d after reroute settled, want 0", a.InFlight())
	}
}

func TestAdmissionBreaker(t *testing.T) {
	a := newAdmission(AdmissionConfig{FailureStreak: 2, Cooldown: 30})
	env := &sched.Env{}
	fail := func(id model.TaskID, at sim.Time) bool {
		a.noteDispatch(id, model.PlaceFunction)
		return a.noteOutcome(model.Outcome{
			Task: &model.Task{ID: id}, Placement: model.PlaceFunction, Failed: true,
		}, at)
	}
	if fail(1, 10) {
		t.Fatal("breaker tripped after one failure, streak is 2")
	}
	if !fail(2, 11) {
		t.Fatal("breaker did not trip at the streak")
	}
	if a.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", a.Trips())
	}
	if shed, reason := a.shouldShed(env, 12); !shed || reason != "breaker" {
		t.Fatalf("inside cooldown: shed=%v reason=%q", shed, reason)
	}
	if shed, _ := a.shouldShed(env, 41); shed {
		t.Fatal("still shedding after the cooldown expired")
	}
	// A success between failures resets the streak.
	fail(3, 50)
	a.noteDispatch(4, model.PlaceEdge)
	a.noteOutcome(model.Outcome{Task: &model.Task{ID: 4}, Placement: model.PlaceEdge}, 51)
	if fail(5, 52) {
		t.Fatal("tripped although a success reset the streak")
	}
}

// --- tuner ------------------------------------------------------------

func TestTunerResizesOnObservedShift(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(1)
	platform := serverless.NewPlatform(eng, src.Split(), serverless.LambdaLike())
	pool := sched.NewFunctionPool(platform)
	env := &sched.Env{Eng: eng, Functions: pool}

	small := &model.Task{
		ID: 1, App: "app", InputBytes: 64 << 10, Cycles: 2e9,
		MemoryBytes: 256 << 20, ParallelFraction: 0.5, Deadline: 60,
	}
	pred := sched.NewPerApp(0.3)
	pred.Observe(small, 2e9)
	if _, err := pool.For(small, pred); err != nil {
		t.Fatal(err)
	}
	sizedBefore := pool.Sized("app")
	if sizedBefore == 0 {
		t.Fatal("function not deployed")
	}

	tn := newTuner(Config{TuneAlpha: 0.5, TuneHysteresis: 0.25, TuneMinObservations: 2, TuneEvery: 1}.withDefaults())
	// The app turns out 20x heavier than the deployment assumed: the
	// re-run allocator must move memory past the hysteresis band.
	resized := int64(0)
	for i := 0; i < 10; i++ {
		big := *small
		big.ID = model.TaskID(10 + i)
		big.Cycles = 4e10
		if mem := tn.observe(model.Outcome{
			Task: &big, Placement: model.PlaceFunction,
			Started: 0, Finished: sim.Time(5),
		}, env); mem != 0 {
			resized = mem
			break
		}
	}
	if resized == 0 {
		t.Fatal("tuner never resized despite a 20x demand shift")
	}
	if resized == sizedBefore {
		t.Fatalf("resize kept the old size %d", resized)
	}
	if pool.Sized("app") != resized {
		t.Fatalf("pool sized %d, tuner reported %d", pool.Sized("app"), resized)
	}
	if tn.Resizes() != 1 {
		t.Fatalf("resizes = %d, want 1", tn.Resizes())
	}
}

func TestTunerIgnoresNonServerlessAndFailures(t *testing.T) {
	tn := newTuner(Config{TuneMinObservations: 1, TuneEvery: 1}.withDefaults())
	env := &sched.Env{}
	task := &model.Task{ID: 1, App: "a", Cycles: 1e9}
	for _, o := range []model.Outcome{
		{Task: task, Placement: model.PlaceEdge},
		{Task: task, Placement: model.PlaceFunction, Failed: true},
		{Task: nil, Placement: model.PlaceFunction},
	} {
		if mem := tn.observe(o, env); mem != 0 {
			t.Fatalf("tuner acted on %+v", o)
		}
	}
	if len(tn.byApp) != 0 {
		t.Fatal("unusable outcomes accumulated state")
	}
}

// --- controller -------------------------------------------------------

type fakeTracer struct {
	events []string
}

func (f *fakeTracer) AdaptEvent(kind, subject string, _ sim.Time) {
	f.events = append(f.events, kind+":"+subject)
}

func testEnv(t *testing.T) *sched.Env {
	t.Helper()
	eng := sim.NewEngine()
	return &sched.Env{
		Eng:  eng,
		Edge: edge.New(eng, edge.SmallSite()),
		VM:   cloudvm.New(eng, cloudvm.C5Large()),
	}
}

func TestNewBanditRequiresSource(t *testing.T) {
	if _, err := NewBandit(BanditUCB, DefaultConfig(), nil); err == nil {
		t.Fatal("nil rng source accepted")
	}
}

func TestControllerBanditNames(t *testing.T) {
	for kind, want := range map[BanditKind]string{BanditUCB: "bandit-ucb", BanditGreedy: "bandit-greedy"} {
		c, err := NewBandit(kind, Config{}, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != want {
			t.Errorf("Name() = %q, want %q", c.Name(), want)
		}
	}
}

func TestWrapDelegatesAndRenames(t *testing.T) {
	c, err := Wrap(sched.LocalOnly{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "local-only+adapt" {
		t.Fatalf("Name() = %q", c.Name())
	}
	env := testEnv(t)
	task := &model.Task{ID: 1, App: "a"}
	if p := c.Decide(task, env, nil); p != model.PlaceLocal {
		t.Fatalf("wrapped local-only decided %v", p)
	}
	c.ObserveOutcome(model.Outcome{Task: task, Placement: model.PlaceLocal, Finished: 2}, env)
	if c.Arms() != nil {
		t.Fatal("wrapping controller reports bandit arms")
	}
	if _, err := Wrap(nil, Config{}); err == nil {
		t.Fatal("nil inner policy accepted")
	}
}

func TestControllerDriftResetClearsArmAndTraces(t *testing.T) {
	cfg := Config{Drift: &DriftConfig{Lambda: 5, MinSamples: 2, FailurePenaltyS: 100}}
	c, err := NewBandit(BanditUCB, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := &fakeTracer{}
	c.SetTracer(tr)
	env := testEnv(t)

	outcome := func(id model.TaskID, completion sim.Time, failed bool) model.Outcome {
		return model.Outcome{
			Task:      &model.Task{ID: id, App: "a", InputBytes: 1 << 10},
			Placement: model.PlaceEdge,
			Finished:  completion,
			Failed:    failed,
		}
	}
	c.ObserveOutcome(outcome(1, 2, false), env)
	c.ObserveOutcome(outcome(2, 2, false), env)
	if c.DriftResets() != 0 {
		t.Fatal("drift fired on a steady stream")
	}
	c.ObserveOutcome(outcome(3, 0, true), env)
	if c.DriftResets() != 1 {
		t.Fatalf("drift resets = %d after failure spike, want 1", c.DriftResets())
	}
	if c.ArmsCleared() != 1 {
		t.Fatalf("arms cleared = %d, want 1", c.ArmsCleared())
	}
	want := EventDriftReset + ":edge"
	found := false
	for _, e := range tr.events {
		if e == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("tracer events %v missing %q", tr.events, want)
	}
	// The reset wiped the arm's history; the failure that confirmed the
	// drift is evidence from the new regime, so it alone restocks the arm
	// (one pull, zero reward).
	for _, a := range c.Arms() {
		if a.Placement == model.PlaceEdge && (a.Pulls != 1 || a.MeanReward != 0) {
			t.Fatalf("edge arm after reset = %+v, want 1 pull at zero reward", a)
		}
	}
}

func TestControllerAdmissionShedsAndCounts(t *testing.T) {
	cfg := Config{Admission: &AdmissionConfig{MaxInFlight: 1}}
	c, err := NewBandit(BanditUCB, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t)
	// Untried-first walks OBSERVED arms in availability order: local is
	// settled, edge is dispatched but never settles, so it holds the
	// in-flight cap and the third decision (which would explore VM) is
	// localized instead.
	t1 := &model.Task{ID: 1, App: "a"}
	p1 := c.Decide(t1, env, nil)
	c.ObserveOutcome(model.Outcome{Task: t1, Placement: p1, Finished: 2}, env)
	p2 := c.Decide(&model.Task{ID: 2, App: "a"}, env, nil)
	p3 := c.Decide(&model.Task{ID: 3, App: "a"}, env, nil)
	if p1 != model.PlaceLocal || p2 != model.PlaceEdge {
		t.Fatalf("first decisions %v, %v; want local, edge", p1, p2)
	}
	if p3 != model.PlaceLocal {
		t.Fatalf("over-cap decision %v, want localized", p3)
	}
	if c.Sheds() != 1 {
		t.Fatalf("sheds = %d, want 1", c.Sheds())
	}
	if c.Switches() != 2 {
		t.Fatalf("switches = %d, want 2 (local->edge->local)", c.Switches())
	}
}

func TestControllerRewardShape(t *testing.T) {
	c, err := NewBandit(BanditUCB, Config{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if r := c.reward(model.Outcome{Failed: true}); r != 0 {
		t.Fatalf("failed outcome rewarded %v", r)
	}
	fast := c.reward(model.Outcome{Finished: 1})
	slow := c.reward(model.Outcome{Finished: 100})
	costly := c.reward(model.Outcome{Finished: 1, CostUSD: 0.01})
	if !(fast > slow && fast > costly) {
		t.Fatalf("reward ordering broken: fast=%v slow=%v costly=%v", fast, slow, costly)
	}
	if fast <= 0 || fast > 1 {
		t.Fatalf("reward %v outside (0, 1]", fast)
	}
}

func TestControllerFillRegistry(t *testing.T) {
	c, err := NewBandit(BanditUCB, DefaultConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t)
	for i := 0; i < 6; i++ {
		task := &model.Task{ID: model.TaskID(i), App: "a", InputBytes: 1 << 10}
		p := c.Decide(task, env, nil)
		c.ObserveOutcome(model.Outcome{Task: task, Placement: p, Finished: sim.Time(i + 1)}, env)
	}
	reg := metrics.NewRegistry("t")
	c.FillRegistry(reg)
	var pulls float64
	for _, p := range []model.Placement{model.PlaceLocal, model.PlaceEdge, model.PlaceVM} {
		pulls += reg.Counter("adapt_arm_pulls", metrics.L("arm", p.String())).Value()
	}
	if pulls != 6 {
		t.Fatalf("exported arm pulls = %v, want 6", pulls)
	}
	if got := reg.Counter("adapt_switches").Value(); got != float64(c.Switches()) {
		t.Fatalf("exported switches %v != %d", got, c.Switches())
	}
}

// --- fuzz -------------------------------------------------------------

// FuzzDriftDetector checks two invariants on arbitrary streams and
// configurations: Observe never panics (non-finite input included), and
// Reset returns the detector to a state indistinguishable from a fresh
// one on any subsequent stream.
func FuzzDriftDetector(f *testing.F) {
	f.Add(30.0, 0.05, 8, 1.0, 2.0, 3.0, 100.0, 100.0, 100.0)
	f.Add(0.0, 0.0, 0, math.NaN(), math.Inf(1), math.Inf(-1), 0.0, -5.0, 1e300)
	f.Add(-1.0, -1.0, -1, 1e-300, -1e300, 0.0, 0.0, 0.0, 0.0)
	f.Fuzz(func(t *testing.T, lambda, delta float64, minSamples int,
		a, b, c, x, y, z float64) {
		cfg := DriftConfig{Lambda: lambda, Delta: delta, MinSamples: minSamples}
		d := NewPageHinkley(cfg)
		before := 0
		for _, v := range []float64{a, b, c} {
			d.Observe(v)
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				before++
			}
		}
		if d.N() != before {
			t.Fatalf("N() = %d after %d finite observations", d.N(), before)
		}
		d.Reset()
		if d.N() != 0 {
			t.Fatalf("N() = %d after Reset", d.N())
		}
		fresh := NewPageHinkley(cfg)
		for i, v := range []float64{x, y, z} {
			if got, want := d.Observe(v), fresh.Observe(v); got != want {
				t.Fatalf("observation %d: reset=%v fresh=%v", i, got, want)
			}
		}
	})
}
