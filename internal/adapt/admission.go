package adapt

import (
	"offload/internal/model"
	"offload/internal/sched"
	"offload/internal/sim"
)

// AdmissionConfig bounds how much offloaded work may be in flight and
// when remote dispatch is suspended entirely. Zero-valued fields disable
// the corresponding signal.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently offloaded (non-local) tasks; excess
	// decisions are localized.
	MaxInFlight int
	// MaxQueueDepth localizes while the serverless platform's invocation
	// queue is at least this deep — the backpressure signal.
	MaxQueueDepth int
	// FailureStreak trips the localize breaker after this many consecutive
	// remote failures.
	FailureStreak int
	// Cooldown is how long the breaker keeps localizing after it trips.
	Cooldown sim.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.FailureStreak > 0 && c.Cooldown <= 0 {
		c.Cooldown = 30
	}
	return c
}

// admission is the concurrency governor: it tracks in-flight offloads by
// task ID (so reroutes and fallbacks cannot leak the counter), watches the
// platform queue, and runs a consecutive-failure breaker whose trip
// localizes all remote traffic for a cooldown.
type admission struct {
	cfg AdmissionConfig

	remote        map[model.TaskID]struct{}
	streak        int
	cooldownUntil sim.Time

	sheds uint64
	trips uint64
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{cfg: cfg.withDefaults(), remote: make(map[model.TaskID]struct{})}
}

// Sheds returns how many remote decisions were localized.
func (a *admission) Sheds() uint64 { return a.sheds }

// Trips returns how many times the failure-streak breaker opened.
func (a *admission) Trips() uint64 { return a.trips }

// InFlight returns the offloads currently outstanding.
func (a *admission) InFlight() int { return len(a.remote) }

// shouldShed reports whether a remote decision must be localized right
// now, and which signal said so.
func (a *admission) shouldShed(env *sched.Env, now sim.Time) (bool, string) {
	if a.cfg.MaxInFlight > 0 && len(a.remote) >= a.cfg.MaxInFlight {
		return true, "in-flight"
	}
	if now < a.cooldownUntil {
		return true, "breaker"
	}
	if a.cfg.MaxQueueDepth > 0 && env.Functions != nil &&
		env.Functions.Platform().QueuedInvocations() >= a.cfg.MaxQueueDepth {
		return true, "queue"
	}
	return false, ""
}

// noteDispatch records where the task was actually sent.
func (a *admission) noteDispatch(id model.TaskID, p model.Placement) {
	if p != model.PlaceLocal && p != model.PlaceUnknown {
		a.remote[id] = struct{}{}
	}
}

// noteOutcome settles the in-flight ledger and feeds the failure-streak
// breaker. Returns true when this outcome tripped the breaker.
func (a *admission) noteOutcome(o model.Outcome, now sim.Time) bool {
	if o.Task == nil {
		return false
	}
	wasRemote := false
	if _, ok := a.remote[o.Task.ID]; ok {
		wasRemote = true
		delete(a.remote, o.Task.ID)
	}
	if !wasRemote {
		return false
	}
	if !o.Failed {
		a.streak = 0
		return false
	}
	a.streak++
	if a.cfg.FailureStreak > 0 && a.streak >= a.cfg.FailureStreak {
		a.streak = 0
		a.trips++
		a.cooldownUntil = now.Add(a.cfg.Cooldown)
		return true
	}
	return false
}
