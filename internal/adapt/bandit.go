package adapt

import (
	"fmt"
	"math"

	"offload/internal/model"
	"offload/internal/rng"
)

// BanditKind selects the exploration strategy.
type BanditKind int

// The implemented strategies.
const (
	// BanditUCB is UCB1: mean reward plus a confidence radius that shrinks
	// as an arm accumulates pulls.
	BanditUCB BanditKind = iota
	// BanditGreedy is epsilon-greedy: exploit the best mean, explore
	// uniformly with probability Epsilon.
	BanditGreedy
)

// armStat is one (context, placement) cell of the bandit table.
type armStat struct {
	pulls int
	mean  float64 // incremental mean reward in [0, 1]
}

func (a *armStat) observe(reward float64) {
	a.pulls++
	a.mean += (reward - a.mean) / float64(a.pulls)
}

// ctxArms is the per-context arm table. Arms are stored per placement;
// iteration always follows the caller's (deterministic) availability
// order, never Go map order.
type ctxArms struct {
	arms  map[model.Placement]*armStat
	total int // pulls across all arms in this context
}

// bandit is the contextual placement learner. Context is the task's app
// crossed with its input-size decile; arms are the placements the
// environment offers. All randomness comes from the single source handed
// in at construction, so decisions are a pure function of the run's seed.
type bandit struct {
	kind    BanditKind
	epsilon float64
	ucbC    float64
	src     *rng.Source

	byCtx map[string]*ctxArms
}

func newBandit(kind BanditKind, epsilon, ucbC float64, src *rng.Source) *bandit {
	return &bandit{
		kind:    kind,
		epsilon: epsilon,
		ucbC:    ucbC,
		src:     src,
		byCtx:   make(map[string]*ctxArms),
	}
}

func (b *bandit) context(key string) *ctxArms {
	c, ok := b.byCtx[key]
	if !ok {
		c = &ctxArms{arms: make(map[model.Placement]*armStat)}
		b.byCtx[key] = c
	}
	return c
}

// decide picks an arm among avail for the context. Untried arms are pulled
// first, in the availability order, so every arm gets at least one
// observation before scores are compared.
func (b *bandit) decide(key string, avail []model.Placement) model.Placement {
	if len(avail) == 0 {
		return model.PlaceLocal
	}
	c := b.context(key)

	// Epsilon-greedy draws its exploration coin on every decision — pulled
	// or not, the stream advances identically, which keeps decisions
	// aligned when availability varies between calls.
	explore := false
	if b.kind == BanditGreedy {
		explore = b.src.Float64() < b.epsilon
	}
	if explore {
		return avail[b.src.Intn(len(avail))]
	}

	for _, p := range avail {
		if st, ok := c.arms[p]; !ok || st.pulls == 0 {
			return p
		}
	}

	best, bestScore := avail[0], math.Inf(-1)
	for _, p := range avail {
		st := c.arms[p]
		score := st.mean
		if b.kind == BanditUCB {
			score += b.ucbC * math.Sqrt(2*math.Log(float64(c.total))/float64(st.pulls))
		}
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	return best
}

// observe credits the reward to the arm that actually served the task.
// Crediting the executed placement (rather than the one decided) keeps
// the table honest when admission control or fallback rerouted the task.
func (b *bandit) observe(key string, arm model.Placement, reward float64) {
	c := b.context(key)
	st, ok := c.arms[arm]
	if !ok {
		st = &armStat{}
		c.arms[arm] = st
	}
	st.observe(reward)
	c.total++
}

// resetArm forgets everything learned about one placement across every
// context — the drift detector's response to a regime change on that
// backend. Returns how many non-empty cells were cleared.
func (b *bandit) resetArm(p model.Placement) int {
	cleared := 0
	for _, c := range b.byCtx {
		st, ok := c.arms[p]
		if !ok || st.pulls == 0 {
			continue
		}
		c.total -= st.pulls
		*st = armStat{}
		cleared++
	}
	return cleared
}

// ArmSnapshot is the learned state of one placement, aggregated over all
// contexts — what the metrics export shows.
type ArmSnapshot struct {
	Placement model.Placement
	Pulls     int
	// MeanReward is the pull-weighted mean reward across contexts.
	MeanReward float64
}

// snapshot aggregates the table per arm, in canonical placement order.
func (b *bandit) snapshot() []ArmSnapshot {
	byArm := make(map[model.Placement]*ArmSnapshot)
	for _, c := range b.byCtx {
		for p, st := range c.arms {
			if st.pulls == 0 {
				continue
			}
			s, ok := byArm[p]
			if !ok {
				s = &ArmSnapshot{Placement: p}
				byArm[p] = s
			}
			s.MeanReward = (s.MeanReward*float64(s.Pulls) + st.mean*float64(st.pulls)) /
				float64(s.Pulls+st.pulls)
			s.Pulls += st.pulls
		}
	}
	var out []ArmSnapshot
	for _, p := range []model.Placement{model.PlaceLocal, model.PlaceEdge, model.PlaceFunction, model.PlaceVM} {
		if s, ok := byArm[p]; ok {
			out = append(out, *s)
		}
	}
	return out
}

// contextKey buckets a task into its bandit context: application crossed
// with the input-size decile.
func contextKey(task *model.Task) string {
	return fmt.Sprintf("%s#%d", task.App, sizeDecile(task.InputBytes))
}

// sizeDecile maps input size onto ten log-scale buckets spanning
// 1 KB – 1 GB, clamped at both ends. Log-scale because input sizes are
// lognormal-ish in the workload model: linear deciles would put almost
// every task in bucket 0.
func sizeDecile(bytes int64) int {
	if bytes <= 1024 {
		return 0
	}
	// log2(1 GB / 1 KB) = 20 doublings across 10 buckets.
	d := int(math.Log2(float64(bytes)/1024) / 2)
	if d > 9 {
		d = 9
	}
	return d
}
