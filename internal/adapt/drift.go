package adapt

import "math"

// DriftConfig parameterises the Page–Hinkley change detector the
// controller runs per backend on settled completion times.
type DriftConfig struct {
	// Lambda is the detection threshold: cumulative positive deviation (in
	// seconds) beyond which the mean is declared shifted. Default 30.
	Lambda float64
	// Delta is the insensitivity band subtracted from every deviation, so
	// ordinary noise does not accumulate. Default 0.05.
	Delta float64
	// MinSamples suppresses detection until this many observations have
	// been seen since the last reset. Default 8.
	MinSamples int
	// FailurePenaltyS is the completion-time surrogate fed to the detector
	// for a failed task — failures must register as drift even when they
	// fail fast. Default 120.
	FailurePenaltyS float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Lambda <= 0 {
		c.Lambda = 30
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailurePenaltyS <= 0 {
		c.FailurePenaltyS = 120
	}
	return c
}

// PageHinkley detects an upward shift in the mean of a stream: it
// accumulates deviations from the running mean (minus the insensitivity
// band Delta) and fires when the accumulator climbs more than Lambda above
// its historical minimum. Purely arithmetic — no randomness — so a
// deterministic input stream always fires at the same observation.
type PageHinkley struct {
	cfg DriftConfig

	n      int
	mean   float64
	cum    float64
	minCum float64
}

// NewPageHinkley returns a detector; zero config fields take defaults.
func NewPageHinkley(cfg DriftConfig) *PageHinkley {
	return &PageHinkley{cfg: cfg.withDefaults()}
}

// Observe feeds one value and reports whether it crossed the detection
// threshold. Non-finite values are ignored (never observed, never fire).
// The caller decides what to do on detection — typically Reset plus
// whatever downstream invalidation the regime change implies.
func (d *PageHinkley) Observe(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	d.n++
	d.mean += (x - d.mean) / float64(d.n)
	d.cum += x - d.mean - d.cfg.Delta
	if d.cum < d.minCum {
		d.minCum = d.cum
	}
	return d.n >= d.cfg.MinSamples && d.cum-d.minCum > d.cfg.Lambda
}

// Reset clears all accumulated state, returning the detector to its
// freshly-constructed condition.
func (d *PageHinkley) Reset() {
	d.n, d.mean, d.cum, d.minCum = 0, 0, 0, 0
}

// N returns observations since the last reset.
func (d *PageHinkley) N() int { return d.n }
