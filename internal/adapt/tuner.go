package adapt

import (
	"offload/internal/alloc"
	"offload/internal/model"
	"offload/internal/profile"
	"offload/internal/sched"
	"offload/internal/sim"
)

// appObs accumulates what the tuner has actually seen of one application's
// serverless executions — the observed statistics that replace the static
// demand model when re-running the allocator.
type appObs struct {
	cycles   *profile.EWMA
	coldFrac float64 // EWMA of the cold-start indicator
	haveCold bool

	// Last-seen task shape, the non-statistical parts of the request.
	memFloor int64
	parFrac  float64
	deadline sim.Duration

	outcomes    int
	sinceRetune int
}

// tuner re-sizes deployed serverless functions online: it feeds per-app
// EWMAs from settled outcomes (observed cycles and cold-start fraction),
// periodically re-runs alloc.Choose against those observations, and
// re-deploys when the predicted optimum moved past a hysteresis band.
type tuner struct {
	alpha       float64 // EWMA smoothing
	hysteresis  float64 // relative memory move that justifies a re-deploy
	minObs      int     // observations before the first re-tune
	every       int     // outcomes between re-tune attempts
	forceRetune bool    // set by drift detection: re-tune at next outcome

	byApp   map[string]*appObs
	resizes uint64
}

func newTuner(cfg Config) *tuner {
	return &tuner{
		alpha:      cfg.TuneAlpha,
		hysteresis: cfg.TuneHysteresis,
		minObs:     cfg.TuneMinObservations,
		every:      cfg.TuneEvery,
		byApp:      make(map[string]*appObs),
	}
}

// Resizes returns how many re-deployments the tuner triggered.
func (t *tuner) Resizes() uint64 { return t.resizes }

// observe folds one settled outcome into the per-app statistics and
// re-tunes when due. It returns the new memory size when a resize
// happened, else 0. Only successful serverless executions carry usable
// exec/cold-start observations.
func (t *tuner) observe(o model.Outcome, env *sched.Env) int64 {
	if o.Task == nil || o.Failed || o.Placement != model.PlaceFunction || env.Functions == nil {
		return 0
	}
	obs, ok := t.byApp[o.Task.App]
	if !ok {
		obs = &appObs{cycles: profile.NewEWMA(t.alpha)}
		t.byApp[o.Task.App] = obs
	}
	obs.cycles.Observe(o.Task.InputBytes, o.Task.Cycles)
	cold := 0.0
	if o.Exec.ColdStart > 0 {
		cold = 1
	}
	if !obs.haveCold {
		obs.coldFrac, obs.haveCold = cold, true
	} else {
		obs.coldFrac += t.alpha * (cold - obs.coldFrac)
	}
	obs.memFloor = o.Task.MemoryBytes
	obs.parFrac = o.Task.ParallelFraction
	obs.deadline = o.Task.Deadline
	obs.outcomes++
	obs.sinceRetune++

	if obs.outcomes < t.minObs {
		return 0
	}
	if !t.forceRetune && obs.sinceRetune < t.every {
		return 0
	}
	t.forceRetune = false
	obs.sinceRetune = 0
	return t.retune(o.Task.App, obs, env.Functions)
}

// retune re-runs the allocator with observed statistics and re-deploys the
// function when the optimum moved past the hysteresis band.
func (t *tuner) retune(app string, obs *appObs, pool *sched.FunctionPool) int64 {
	cur := pool.Sized(app)
	if cur == 0 {
		return 0 // never deployed; the pool will size it on first use
	}
	req := alloc.Request{
		Cycles:           obs.cycles.Predict(0),
		ParallelFraction: obs.parFrac,
		MemoryFloorBytes: obs.memFloor,
		ColdStartProb:    obs.coldFrac,
	}
	if obs.deadline > 0 && pool.TimeBudgetFactor > 0 {
		req.TimeBudget = sim.Duration(float64(obs.deadline) * pool.TimeBudgetFactor)
	}
	d, err := pool.Allocator().Choose(req)
	if err != nil {
		return 0
	}
	if relDiff(float64(d.MemoryBytes), float64(cur)) <= t.hysteresis {
		return 0
	}
	if pool.Resize(app, d.MemoryBytes) != nil {
		return 0
	}
	t.resizes++
	return d.MemoryBytes
}

func relDiff(now, then float64) float64 {
	if then == 0 {
		return 0
	}
	d := now/then - 1
	if d < 0 {
		d = -d
	}
	return d
}
