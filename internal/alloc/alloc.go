// Package alloc implements serverless resource allocation for
// non-time-critical work — the paper's central originality claim. Given a
// component's predicted demand (from internal/profile) and a completion
// budget, it chooses the function memory size that minimises expected
// dollar cost on a serverless platform, exploiting the structure of FaaS
// pricing:
//
//   - CPU grows with memory, so bigger functions finish sooner;
//   - price is memory × billed seconds, and memory pressure inflates
//     execution time when the working set barely fits, so the cost curve
//     over the memory ladder is U-shaped (pressure-inflated billed time on
//     the left, wasted memory on the right);
//   - delay-tolerant tasks can trade time for money by batching
//     invocations into one warm container, amortising cold starts.
//
// The pipeline allocator splits a single completion budget across a chain
// of functions by dynamic programming over discretised time.
package alloc

import (
	"fmt"
	"math"

	"offload/internal/model"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// Request is one allocation problem.
type Request struct {
	// Cycles is the predicted computational demand per invocation.
	Cycles float64
	// ParallelFraction is the Amdahl-parallelisable share of the work.
	ParallelFraction float64
	// MemoryFloorBytes is the working-set size; candidate memory sizes
	// below it are infeasible.
	MemoryFloorBytes int64
	// TimeBudget bounds the expected per-invocation time (cold start
	// included pro rata). Zero means unbounded — fully delay tolerant.
	TimeBudget sim.Duration
	// ColdStartProb is the expected fraction of invocations that pay a
	// cold start (see ColdStartProbability).
	ColdStartProb float64
}

// Validate reports whether the request is well formed.
func (r Request) Validate() error {
	switch {
	case r.Cycles < 0:
		return fmt.Errorf("alloc: negative demand")
	case r.ParallelFraction < 0 || r.ParallelFraction > 1:
		return fmt.Errorf("alloc: parallel fraction %g outside [0,1]", r.ParallelFraction)
	case r.MemoryFloorBytes < 0:
		return fmt.Errorf("alloc: negative memory floor")
	case r.TimeBudget < 0:
		return fmt.Errorf("alloc: negative time budget")
	case r.ColdStartProb < 0 || r.ColdStartProb > 1:
		return fmt.Errorf("alloc: cold-start probability %g outside [0,1]", r.ColdStartProb)
	}
	return nil
}

// Decision is one evaluated configuration.
type Decision struct {
	MemoryBytes     int64
	ExpectedTime    sim.Duration // expected wall time per invocation
	ExpectedCostUSD float64      // expected bill per invocation
	Feasible        bool         // meets the request's TimeBudget
}

// Allocator chooses function configurations for one platform.
type Allocator struct {
	cfg serverless.Config
}

// New returns an allocator for the given platform configuration. It panics
// if the configuration is invalid.
func New(cfg serverless.Config) *Allocator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Allocator{cfg: cfg}
}

// expectedCold returns the mean cold-start duration for a memory size.
func (a *Allocator) expectedCold(memBytes int64) sim.Duration {
	cs := a.cfg.ColdStart
	if cs.MedianSec == 0 {
		return 0
	}
	// Mean of a lognormal with median m and dispersion sigma.
	mean := cs.MedianSec * math.Exp(cs.Sigma*cs.Sigma/2)
	return sim.Duration(mean + cs.PerGBExtra*float64(memBytes)/float64(model.GB))
}

// Evaluate computes the expected time and cost of serving the request with
// the given memory size.
func (a *Allocator) Evaluate(req Request, memBytes int64) Decision {
	task := &model.Task{
		Cycles:           req.Cycles,
		ParallelFraction: req.ParallelFraction,
		MemoryBytes:      req.MemoryFloorBytes,
	}
	exec := a.cfg.ExecTime(task, memBytes)
	cold := a.expectedCold(memBytes)
	expTime := exec + sim.Duration(req.ColdStartProb*float64(cold))
	// Expected bill: cold invocations are billed for init + run.
	cost := req.ColdStartProb*a.cfg.Price.Bill(memBytes, cold+exec) +
		(1-req.ColdStartProb)*a.cfg.Price.Bill(memBytes, exec)
	d := Decision{
		MemoryBytes:     memBytes,
		ExpectedTime:    expTime,
		ExpectedCostUSD: cost,
		Feasible:        memBytes >= req.MemoryFloorBytes,
	}
	if req.TimeBudget > 0 && expTime > req.TimeBudget {
		d.Feasible = false
	}
	return d
}

// Sweep evaluates the request at every ladder size, in ascending memory
// order — the raw data behind the E2 cost curve.
func (a *Allocator) Sweep(req Request) ([]Decision, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	ladder := a.cfg.MemoryLadder()
	out := make([]Decision, 0, len(ladder))
	for _, m := range ladder {
		out = append(out, a.Evaluate(req, m))
	}
	return out, nil
}

// Choose returns the cheapest feasible configuration; ties break toward
// smaller memory. If no configuration meets the time budget, it returns
// the fastest feasible-by-memory configuration with Feasible=false, so
// callers can degrade gracefully.
func (a *Allocator) Choose(req Request) (Decision, error) {
	decisions, err := a.Sweep(req)
	if err != nil {
		return Decision{}, err
	}
	var best Decision
	haveBest := false
	var fastest Decision
	haveFastest := false
	for _, d := range decisions {
		if d.MemoryBytes < req.MemoryFloorBytes {
			continue
		}
		if !haveFastest || d.ExpectedTime < fastest.ExpectedTime {
			fastest, haveFastest = d, true
		}
		if !d.Feasible {
			continue
		}
		if !haveBest || d.ExpectedCostUSD < best.ExpectedCostUSD-1e-15 {
			best, haveBest = d, true
		}
	}
	if haveBest {
		return best, nil
	}
	if haveFastest {
		return fastest, nil
	}
	return Decision{}, fmt.Errorf("alloc: working set %d bytes exceeds the platform maximum %d",
		req.MemoryFloorBytes, a.cfg.MaxMemory)
}

// ColdStartProbability returns the probability a Poisson arrival finds no
// warm container, i.e. the previous arrival was more than keepAlive ago:
// exp(-rate·keepAlive). A zero keep-alive makes every invocation cold.
func ColdStartProbability(ratePerSec float64, keepAlive sim.Duration) float64 {
	if ratePerSec <= 0 {
		return 1
	}
	if keepAlive <= 0 {
		return 1
	}
	return math.Exp(-ratePerSec * float64(keepAlive))
}

// BatchPlan describes serving batchSize delay-tolerant invocations
// sequentially in one container: one request charge, one possible cold
// start, batchSize executions.
type BatchPlan struct {
	BatchSize          int
	MemoryBytes        int64
	PerTaskCostUSD     float64
	PerTaskTime        sim.Duration // mean completion time within the batch
	TotalTime          sim.Duration
	SavingsVsUnbatched float64 // fractional cost saving
}

// PlanBatch evaluates batched execution of req at the given memory size.
// batchSize must be positive.
func (a *Allocator) PlanBatch(req Request, memBytes int64, batchSize int) (BatchPlan, error) {
	if err := req.Validate(); err != nil {
		return BatchPlan{}, err
	}
	if batchSize <= 0 {
		return BatchPlan{}, fmt.Errorf("alloc: batch size %d not positive", batchSize)
	}
	task := &model.Task{
		Cycles:           req.Cycles,
		ParallelFraction: req.ParallelFraction,
		MemoryBytes:      req.MemoryFloorBytes,
	}
	exec := a.cfg.ExecTime(task, memBytes)
	cold := sim.Duration(req.ColdStartProb * float64(a.expectedCold(memBytes)))
	total := cold + sim.Duration(float64(exec)*float64(batchSize))
	batchedCost := a.cfg.Price.Bill(memBytes, total)
	single := a.Evaluate(req, memBytes)
	unbatched := single.ExpectedCostUSD * float64(batchSize)
	savings := 0.0
	if unbatched > 0 {
		savings = 1 - batchedCost/unbatched
	}
	// Mean completion: task i finishes at cold + (i+1)·exec.
	mean := float64(cold) + float64(exec)*(float64(batchSize)+1)/2
	return BatchPlan{
		BatchSize:          batchSize,
		MemoryBytes:        memBytes,
		PerTaskCostUSD:     batchedCost / float64(batchSize),
		PerTaskTime:        sim.Duration(mean),
		TotalTime:          total,
		SavingsVsUnbatched: savings,
	}, nil
}
