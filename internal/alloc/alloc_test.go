package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"offload/internal/model"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// platformConfig returns a platform with easy numbers: ladder 128 MB–4 GB
// in 128 MB steps, 1 GHz per vCPU at 1 GB, deterministic 0.5 s cold start.
func platformConfig() serverless.Config {
	return serverless.Config{
		Name:              "alloc-test",
		MinMemory:         128 * model.MB,
		MaxMemory:         4096 * model.MB,
		MemoryStep:        128 * model.MB,
		BaselineHz:        1e9,
		FullShareBytes:    1024 * model.MB,
		MaxShare:          4,
		ColdStart:         serverless.ColdStartModel{MedianSec: 0.5, Sigma: 0},
		KeepAlive:         420,
		ConcurrencyLimit:  100,
		PressureKneeRatio: 2.0,
		PressurePenalty:   1.5,
		Price: serverless.PriceTable{
			PerRequestUSD:  2e-7,
			PerGBSecondUSD: 1.6667e-5,
			Granularity:    0.001,
			MinBilled:      0.001,
		},
	}
}

func TestRequestValidate(t *testing.T) {
	bad := []Request{
		{Cycles: -1},
		{ParallelFraction: -0.1},
		{ParallelFraction: 1.1},
		{MemoryFloorBytes: -1},
		{TimeBudget: -1},
		{ColdStartProb: -0.1},
		{ColdStartProb: 1.1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad request %d validated", i)
		}
	}
	if err := (Request{Cycles: 1e9}).Validate(); err != nil {
		t.Errorf("good request rejected: %v", err)
	}
}

func TestCostCurveIsUShapedAndChooseFindsMinimum(t *testing.T) {
	a := New(platformConfig())
	// A 512 MB working set: memory pressure inflates billed time at the
	// low end, wasted GB-seconds dominate at the high end.
	req := Request{Cycles: 10e9, MemoryFloorBytes: 512 * model.MB}
	sweep, err := a.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	var feasible []Decision
	for _, d := range sweep {
		if d.MemoryBytes >= req.MemoryFloorBytes {
			feasible = append(feasible, d)
		}
	}
	first, last := feasible[0], feasible[len(feasible)-1]
	best := feasible[0]
	for _, d := range feasible {
		if d.ExpectedCostUSD < best.ExpectedCostUSD {
			best = d
		}
	}
	if !(best.ExpectedCostUSD < first.ExpectedCostUSD) {
		t.Fatalf("interior optimum (%g at %d MB) not below smallest memory (%g)",
			best.ExpectedCostUSD, best.MemoryBytes/model.MB, first.ExpectedCostUSD)
	}
	if !(best.ExpectedCostUSD < last.ExpectedCostUSD) {
		t.Fatalf("interior optimum (%g) not below largest memory (%g)",
			best.ExpectedCostUSD, last.ExpectedCostUSD)
	}
	choice, err := a.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if choice.MemoryBytes != best.MemoryBytes {
		t.Fatalf("Choose picked %d MB, sweep optimum is %d MB",
			choice.MemoryBytes/model.MB, best.MemoryBytes/model.MB)
	}
}

func TestChooseRespectsMemoryFloor(t *testing.T) {
	a := New(platformConfig())
	req := Request{Cycles: 1e9, MemoryFloorBytes: 2048 * model.MB}
	d, err := a.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemoryBytes < 2048*model.MB {
		t.Fatalf("Choose ignored memory floor: %d MB", d.MemoryBytes/model.MB)
	}
}

func TestChooseRespectsTimeBudget(t *testing.T) {
	a := New(platformConfig())
	// 10 s serial at 1 vCPU: at 128 MB it takes 80 s. Budget of 15 s
	// requires at least 683 MB.
	req := Request{Cycles: 10e9, TimeBudget: 15}
	d, err := a.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Feasible {
		t.Fatal("feasible budget reported infeasible")
	}
	if d.ExpectedTime > 15 {
		t.Fatalf("ExpectedTime %v exceeds budget", d.ExpectedTime)
	}
}

func TestChooseInfeasibleBudgetReturnsFastest(t *testing.T) {
	a := New(platformConfig())
	// Serial 100 s task can't beat 5 s at any memory.
	req := Request{Cycles: 100e9, TimeBudget: 5}
	d, err := a.Choose(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible {
		t.Fatal("impossible budget reported feasible")
	}
	// Fastest serial config is anything >= full share; expect full-share time.
	if math.Abs(float64(d.ExpectedTime)-100.5) > 1e-6 { // 100 s + 0.5 s expected cold? prob 0 default
		// ColdStartProb defaults to 0, so expected time is exec only.
		if math.Abs(float64(d.ExpectedTime)-100) > 1e-6 {
			t.Fatalf("fastest fallback time = %v", d.ExpectedTime)
		}
	}
}

func TestChooseErrorsWhenFloorExceedsPlatform(t *testing.T) {
	a := New(platformConfig())
	if _, err := a.Choose(Request{Cycles: 1, MemoryFloorBytes: 64 * model.GB}); err == nil {
		t.Fatal("oversized working set accepted")
	}
}

func TestColdStartProbRaisesTimeAndCost(t *testing.T) {
	a := New(platformConfig())
	base := a.Evaluate(Request{Cycles: 1e9}, 1024*model.MB)
	cold := a.Evaluate(Request{Cycles: 1e9, ColdStartProb: 1}, 1024*model.MB)
	if cold.ExpectedTime <= base.ExpectedTime {
		t.Fatal("cold-start probability did not raise expected time")
	}
	if cold.ExpectedCostUSD <= base.ExpectedCostUSD {
		t.Fatal("cold-start probability did not raise expected cost")
	}
	if math.Abs(float64(cold.ExpectedTime-base.ExpectedTime)-0.5) > 1e-9 {
		t.Fatalf("cold penalty = %v, want 0.5", cold.ExpectedTime-base.ExpectedTime)
	}
}

func TestParallelTaskMeetsDeadlineWithLargeMemory(t *testing.T) {
	a := New(platformConfig())
	// 40 s of serial work can never beat a 15 s budget; a 95%-parallel task
	// can, but only by buying >1 vCPU — i.e. more than full-share memory.
	serial := Request{Cycles: 40e9, TimeBudget: 15}
	parallel := Request{Cycles: 40e9, ParallelFraction: 0.95, TimeBudget: 15}
	ds, err := a.Choose(serial)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Feasible {
		t.Fatal("serial 40 s task reported feasible under a 15 s budget")
	}
	dp, err := a.Choose(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !dp.Feasible {
		t.Fatal("parallel task infeasible under a 15 s budget")
	}
	if dp.MemoryBytes <= 1024*model.MB {
		t.Fatalf("parallel task met the budget with %d MB, expected >1 vCPU worth",
			dp.MemoryBytes/model.MB)
	}
	if dp.ExpectedTime > 15 {
		t.Fatalf("chosen config misses budget: %v", dp.ExpectedTime)
	}
}

func TestEvaluateTimeMonotoneNonIncreasingInMemory(t *testing.T) {
	a := New(platformConfig())
	f := func(gcycles uint8, pf uint8) bool {
		req := Request{
			Cycles:           float64(gcycles%100+1) * 1e8,
			ParallelFraction: float64(pf%101) / 100,
		}
		prev := sim.Duration(math.Inf(1))
		for _, m := range platformConfig().MemoryLadder() {
			d := a.Evaluate(req, m)
			if d.ExpectedTime > prev+1e-12 {
				return false
			}
			prev = d.ExpectedTime
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestChooseAlwaysMatchesSweepArgmin(t *testing.T) {
	a := New(platformConfig())
	f := func(gcycles uint8, pf, floor uint8) bool {
		req := Request{
			Cycles:           float64(gcycles%200+1) * 2e8,
			ParallelFraction: float64(pf%101) / 100,
			MemoryFloorBytes: int64(floor%16) * 256 * model.MB,
		}
		choice, err := a.Choose(req)
		if err != nil {
			// Only legal when the floor exceeds the platform max (it never
			// does here: 15 × 256 MB < 4 GB max).
			return false
		}
		sweep, err := a.Sweep(req)
		if err != nil {
			return false
		}
		best := math.Inf(1)
		for _, d := range sweep {
			if d.MemoryBytes >= req.MemoryFloorBytes && d.ExpectedCostUSD < best {
				best = d.ExpectedCostUSD
			}
		}
		return math.Abs(choice.ExpectedCostUSD-best) < 1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestColdStartProbability(t *testing.T) {
	if got := ColdStartProbability(0, 100); got != 1 {
		t.Fatalf("zero rate probability = %g, want 1", got)
	}
	if got := ColdStartProbability(1, 0); got != 1 {
		t.Fatalf("zero keep-alive probability = %g, want 1", got)
	}
	got := ColdStartProbability(0.01, 420)
	want := math.Exp(-4.2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("probability = %g, want %g", got, want)
	}
	// Monotone: higher rate → fewer cold starts.
	if ColdStartProbability(1, 60) >= ColdStartProbability(0.001, 60) {
		t.Fatal("cold-start probability not decreasing in rate")
	}
}

func TestPlanBatchAmortisesColdStartAndRequests(t *testing.T) {
	a := New(platformConfig())
	req := Request{Cycles: 1e9, ColdStartProb: 1}
	plan, err := a.PlanBatch(req, 1024*model.MB, 10)
	if err != nil {
		t.Fatal(err)
	}
	single := a.Evaluate(req, 1024*model.MB)
	if plan.PerTaskCostUSD >= single.ExpectedCostUSD {
		t.Fatalf("batching did not save: %g >= %g", plan.PerTaskCostUSD, single.ExpectedCostUSD)
	}
	if plan.SavingsVsUnbatched <= 0 {
		t.Fatalf("SavingsVsUnbatched = %g", plan.SavingsVsUnbatched)
	}
	// Batch trades latency for money: per-task time grows.
	if plan.PerTaskTime <= single.ExpectedTime {
		t.Fatalf("batched per-task time %v not above single %v", plan.PerTaskTime, single.ExpectedTime)
	}
}

func TestPlanBatchValidation(t *testing.T) {
	a := New(platformConfig())
	if _, err := a.PlanBatch(Request{Cycles: 1}, 1024*model.MB, 0); err == nil {
		t.Fatal("batch size 0 accepted")
	}
	if _, err := a.PlanBatch(Request{Cycles: -1}, 1024*model.MB, 1); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestChoosePipelineUnbounded(t *testing.T) {
	a := New(platformConfig())
	reqs := []Request{{Cycles: 5e9}, {Cycles: 10e9}, {Cycles: 2e9}}
	pd, err := a.ChoosePipeline(reqs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pd.Feasible || len(pd.Stages) != 3 {
		t.Fatalf("unbounded pipeline: %+v", pd)
	}
	// Must equal the sum of independent choices.
	sum := 0.0
	for _, r := range reqs {
		d, err := a.Choose(r)
		if err != nil {
			t.Fatal(err)
		}
		sum += d.ExpectedCostUSD
	}
	if math.Abs(pd.TotalCostUSD-sum) > 1e-12 {
		t.Fatalf("unbounded pipeline cost %g != sum of choices %g", pd.TotalCostUSD, sum)
	}
}

func TestChoosePipelineBudgetForcesFasterStages(t *testing.T) {
	a := New(platformConfig())
	reqs := []Request{{Cycles: 10e9}, {Cycles: 10e9}}
	loose, err := a.ChoosePipeline(reqs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := a.ChoosePipeline(reqs, 25, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !tight.Feasible {
		t.Fatalf("25 s budget infeasible: total %v", tight.TotalTime)
	}
	if tight.TotalTime > 25 {
		t.Fatalf("pipeline exceeded budget: %v", tight.TotalTime)
	}
	if tight.TotalCostUSD < loose.TotalCostUSD-1e-12 {
		t.Fatal("tight budget cheaper than unbounded optimum")
	}
}

func TestChoosePipelineInfeasibleBudget(t *testing.T) {
	a := New(platformConfig())
	reqs := []Request{{Cycles: 100e9}, {Cycles: 100e9}} // 100 s each at best
	pd, err := a.ChoosePipeline(reqs, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Feasible {
		t.Fatal("impossible pipeline budget reported feasible")
	}
	if len(pd.Stages) != 2 {
		t.Fatalf("fallback did not allocate all stages: %d", len(pd.Stages))
	}
}

func TestChoosePipelineRejectsStageBudgets(t *testing.T) {
	a := New(platformConfig())
	if _, err := a.ChoosePipeline([]Request{{Cycles: 1, TimeBudget: 5}}, 10, 100); err == nil {
		t.Fatal("stage-level budget accepted in pipeline mode")
	}
	if _, err := a.ChoosePipeline(nil, 0, 0); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	if _, err := a.ChoosePipeline([]Request{{Cycles: 1}}, 10, 0); err == nil {
		t.Fatal("zero slots with budget accepted")
	}
}

func TestChoosePipelineMatchesBruteForceSmall(t *testing.T) {
	// Brute-force over a coarsened ladder to validate the DP.
	cfg := platformConfig()
	cfg.MemoryStep = 1024 * model.MB // ladder: 1152? No — min 128: 128, 1152, 2176, 3200, 4224>max → 4 sizes
	a := New(cfg)
	reqs := []Request{{Cycles: 8e9}, {Cycles: 4e9}}
	budget := sim.Duration(30)
	pd, err := a.ChoosePipeline(reqs, budget, 400)
	if err != nil {
		t.Fatal(err)
	}
	ladder := cfg.MemoryLadder()
	bestCost := math.Inf(1)
	for _, m1 := range ladder {
		for _, m2 := range ladder {
			d1 := a.Evaluate(reqs[0], m1)
			d2 := a.Evaluate(reqs[1], m2)
			if d1.ExpectedTime+d2.ExpectedTime <= budget {
				if c := d1.ExpectedCostUSD + d2.ExpectedCostUSD; c < bestCost {
					bestCost = c
				}
			}
		}
	}
	if !pd.Feasible {
		t.Fatal("DP found no feasible plan but brute force should")
	}
	// DP rounds times up to slots, so it may be slightly conservative, but
	// never better than brute force and within a small factor of it.
	if pd.TotalCostUSD < bestCost-1e-12 {
		t.Fatalf("DP cost %g beats brute force %g", pd.TotalCostUSD, bestCost)
	}
	if pd.TotalCostUSD > bestCost*1.25 {
		t.Fatalf("DP cost %g far above brute force %g", pd.TotalCostUSD, bestCost)
	}
}
