package alloc

import (
	"fmt"

	"offload/internal/sim"
)

// PipelineDecision allocates one memory size per stage of a function chain.
type PipelineDecision struct {
	Stages       []Decision
	TotalTime    sim.Duration
	TotalCostUSD float64
	Feasible     bool
}

// ChoosePipeline splits a single completion budget across a chain of
// functions, minimising total expected cost subject to the sum of stage
// times staying within budget. It runs a dynamic program over the budget
// discretised into slots (finer slots cost more time; 200 is a good
// default). A zero budget allocates every stage independently at its
// cheapest point.
func (a *Allocator) ChoosePipeline(reqs []Request, budget sim.Duration, slots int) (PipelineDecision, error) {
	if len(reqs) == 0 {
		return PipelineDecision{}, fmt.Errorf("alloc: empty pipeline")
	}
	for i, r := range reqs {
		if err := r.Validate(); err != nil {
			return PipelineDecision{}, fmt.Errorf("stage %d: %w", i, err)
		}
		if r.TimeBudget != 0 {
			return PipelineDecision{}, fmt.Errorf("alloc: stage %d carries its own budget; use the pipeline budget", i)
		}
	}
	if budget < 0 {
		return PipelineDecision{}, fmt.Errorf("alloc: negative pipeline budget")
	}

	if budget == 0 {
		// Unbounded: cheapest point per stage.
		out := PipelineDecision{Feasible: true}
		for _, r := range reqs {
			d, err := a.Choose(r)
			if err != nil {
				return PipelineDecision{}, err
			}
			out.Stages = append(out.Stages, d)
			out.TotalTime += d.ExpectedTime
			out.TotalCostUSD += d.ExpectedCostUSD
		}
		return out, nil
	}
	if slots <= 0 {
		return PipelineDecision{}, fmt.Errorf("alloc: slots must be positive with a budget")
	}

	// Candidate decisions per stage, memory floor enforced.
	cands := make([][]Decision, len(reqs))
	for i, r := range reqs {
		all, err := a.Sweep(r)
		if err != nil {
			return PipelineDecision{}, err
		}
		for _, d := range all {
			if d.MemoryBytes >= r.MemoryFloorBytes {
				cands[i] = append(cands[i], d)
			}
		}
		if len(cands[i]) == 0 {
			return PipelineDecision{}, fmt.Errorf("alloc: stage %d working set exceeds platform maximum", i)
		}
	}

	// DP over time slots: cost[i][s] = min cost of stages 0..i using at
	// most s slots of the budget. Stage times are rounded UP to slots, so
	// a feasible DP answer is feasible in continuous time too.
	slotDur := float64(budget) / float64(slots)
	const inf = 1e300
	prev := make([]float64, slots+1)
	prevPick := make([][]int, 0, len(reqs)) // pick[i][s] = candidate index
	for s := range prev {
		prev[s] = 0 // zero stages cost nothing
	}
	for i := range reqs {
		cur := make([]float64, slots+1)
		pick := make([]int, slots+1)
		for s := range cur {
			cur[s] = inf
			pick[s] = -1
		}
		for ci, d := range cands[i] {
			need := int(float64(d.ExpectedTime)/slotDur) + 1
			if float64(d.ExpectedTime) <= 0 {
				need = 0
			}
			for s := need; s <= slots; s++ {
				if prev[s-need] >= inf {
					continue
				}
				if c := prev[s-need] + d.ExpectedCostUSD; c < cur[s] {
					cur[s] = c
					pick[s] = ci
				}
			}
		}
		prev = cur
		prevPick = append(prevPick, pick)
	}

	if prev[slots] >= inf {
		// Budget infeasible: fall back to the fastest configuration per
		// stage and report infeasibility.
		out := PipelineDecision{Feasible: false}
		for i := range reqs {
			fastest := cands[i][0]
			for _, d := range cands[i] {
				if d.ExpectedTime < fastest.ExpectedTime {
					fastest = d
				}
			}
			out.Stages = append(out.Stages, fastest)
			out.TotalTime += fastest.ExpectedTime
			out.TotalCostUSD += fastest.ExpectedCostUSD
		}
		return out, nil
	}

	// Backtrack: pick[i][s] is the argmin candidate for "stages 0..i within
	// s slots", so following it reconstructs the optimal chain.
	out := PipelineDecision{Feasible: true, Stages: make([]Decision, len(reqs))}
	s := slots
	for i := len(reqs) - 1; i >= 0; i-- {
		ci := prevPick[i][s]
		if ci < 0 {
			return PipelineDecision{}, fmt.Errorf("alloc: internal backtrack failure at stage %d", i)
		}
		d := cands[i][ci]
		out.Stages[i] = d
		out.TotalTime += d.ExpectedTime
		out.TotalCostUSD += d.ExpectedCostUSD
		need := int(float64(d.ExpectedTime)/slotDur) + 1
		if float64(d.ExpectedTime) <= 0 {
			need = 0
		}
		s -= need
	}
	return out, nil
}
