package callgraph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz format. Pinned components are drawn
// as boxes, offloadable ones as ellipses; node labels carry per-run
// demand, edge labels the per-run payload. If remote is non-nil, offloaded
// components are filled — `offctl partition | dot -Tsvg` visualises a
// partition.
func (g *Graph) DOT(remote map[string]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", g.name)
	for _, c := range g.components {
		shape := "ellipse"
		if c.Pinned {
			shape = "box"
		}
		attrs := fmt.Sprintf("shape=%s, label=\"%s\\n%.3g Gcyc\"", shape, c.Name, c.Cycles*c.CallsPerRun/1e9)
		if remote != nil && remote[c.Name] {
			attrs += ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", c.Name, attrs)
	}
	for _, e := range g.edges {
		from := g.components[e.From].Name
		to := g.components[e.To].Name
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s\"];\n", from, to, byteLabel(int64(float64(e.Bytes)*e.CallsPerRun)))
	}
	b.WriteString("}\n")
	return b.String()
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
