package callgraph

import (
	"fmt"
	"math"
	"strings"
)

// DOT renders the graph in Graphviz format. Pinned components are drawn
// as boxes, offloadable ones as ellipses; node labels carry per-run
// demand, edge labels the per-run payload. Edges are drawn with a
// penwidth and layout weight scaled by their data payload, so the
// heaviest transfer — the one a partition should avoid cutting — is the
// thickest line on the page. If remote is non-nil, offloaded components
// are filled — `offctl partition | dot -Tsvg` visualises a partition.
func (g *Graph) DOT(remote map[string]bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", g.name)
	for _, c := range g.components {
		shape := "ellipse"
		if c.Pinned {
			shape = "box"
		}
		attrs := fmt.Sprintf("shape=%s, label=\"%s\\n%.3g Gcyc\"", shape, c.Name, c.Cycles*c.CallsPerRun/1e9)
		if remote != nil && remote[c.Name] {
			attrs += ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", c.Name, attrs)
	}
	var maxBytes int64
	for _, e := range g.edges {
		if w := edgeBytes(e); w > maxBytes {
			maxBytes = w
		}
	}
	for _, e := range g.edges {
		from := g.components[e.From].Name
		to := g.components[e.To].Name
		w := edgeBytes(e)
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s\", penwidth=%.1f, weight=%d];\n",
			from, to, byteLabel(w), penwidth(w, maxBytes), layoutWeight(w, maxBytes))
	}
	b.WriteString("}\n")
	return b.String()
}

// edgeBytes is the per-run payload the edge carries.
func edgeBytes(e Edge) int64 {
	return int64(float64(e.Bytes) * e.CallsPerRun)
}

// penwidth maps a payload to a line width in [1, 5], log-scaled against
// the heaviest edge so byte ratios spanning orders of magnitude stay
// readable.
func penwidth(bytes, maxBytes int64) float64 {
	if maxBytes <= 0 || bytes <= 0 {
		return 1
	}
	frac := math.Log1p(float64(bytes)) / math.Log1p(float64(maxBytes))
	return 1 + 4*frac
}

// layoutWeight maps a payload to an integer Graphviz rank weight in
// [1, 10]: heavy data paths are kept short and straight.
func layoutWeight(bytes, maxBytes int64) int {
	if maxBytes <= 0 || bytes <= 0 {
		return 1
	}
	w := int(math.Round(10 * float64(bytes) / float64(maxBytes)))
	if w < 1 {
		w = 1
	}
	return w
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
