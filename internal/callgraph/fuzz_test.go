package callgraph

import (
	"encoding/json"
	"testing"
)

// FuzzParse checks the spec parser never panics and that anything it
// accepts survives a marshal→parse round trip.
func FuzzParse(f *testing.F) {
	for _, g := range Templates() {
		data, err := json.Marshal(g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","components":[{"name":"a","cycles":1,"pinned":true}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","components":[{"name":"a","cycles":-1}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Parse(data)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		// Accepted graphs must be internally valid and re-parseable.
		if err := g.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid graph: %v", err)
		}
		out, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("accepted graph does not marshal: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted graph does not re-parse: %v", err)
		}
		if back.Len() != g.Len() || len(back.Edges()) != len(g.Edges()) {
			t.Fatal("round trip changed graph shape")
		}
	})
}
