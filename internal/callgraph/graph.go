// Package callgraph models the applications being offloaded as weighted
// component graphs, the abstraction the partitioner operates on.
//
// Vertices are application components (a method, a stage, a microservice
// handler) annotated with computational demand and working-set size; edges
// carry the bytes exchanged per interaction and how often the interaction
// happens per application run. Components that touch the user or device
// hardware (UI, sensors, local storage) are pinned and can never be
// offloaded — exactly the constraint MAUI-style partitioners enforce.
package callgraph

import (
	"fmt"
)

// ComponentID indexes a component within its graph.
type ComponentID int

// Component is one vertex of the call graph.
type Component struct {
	Name        string
	Cycles      float64 // CPU cycles per invocation
	MemoryBytes int64   // working-set size
	CallsPerRun float64 // invocations per application run (>= 0)
	Pinned      bool    // must execute on the device

	// ParallelFraction is the Amdahl-parallelisable fraction of the
	// component's work, used when it runs on substrates with >1 vCPU.
	ParallelFraction float64
}

// Edge is one interaction between two components.
type Edge struct {
	From, To    ComponentID
	Bytes       int64   // payload bytes per call (both directions combined)
	CallsPerRun float64 // interactions per application run
}

// Graph is a weighted component graph. Create one with New and populate it
// with AddComponent/AddEdge; Validate before handing it to a partitioner.
type Graph struct {
	name       string
	components []Component
	edges      []Edge
	byName     map[string]ComponentID
}

// New returns an empty graph with the given application name.
func New(name string) *Graph {
	return &Graph{name: name, byName: make(map[string]ComponentID)}
}

// Name returns the application name.
func (g *Graph) Name() string { return g.name }

// AddComponent appends a component and returns its ID. Component names
// must be unique and non-empty.
func (g *Graph) AddComponent(c Component) (ComponentID, error) {
	if c.Name == "" {
		return 0, fmt.Errorf("callgraph: %s: component with empty name", g.name)
	}
	if _, dup := g.byName[c.Name]; dup {
		return 0, fmt.Errorf("callgraph: %s: duplicate component %q", g.name, c.Name)
	}
	if c.Cycles < 0 || c.MemoryBytes < 0 || c.CallsPerRun < 0 {
		return 0, fmt.Errorf("callgraph: %s: component %q has negative weight", g.name, c.Name)
	}
	if c.ParallelFraction < 0 || c.ParallelFraction > 1 {
		return 0, fmt.Errorf("callgraph: %s: component %q parallel fraction outside [0,1]", g.name, c.Name)
	}
	if c.CallsPerRun == 0 {
		c.CallsPerRun = 1
	}
	id := ComponentID(len(g.components))
	g.components = append(g.components, c)
	g.byName[c.Name] = id
	return id, nil
}

// MustAddComponent is AddComponent for programmatic graph construction,
// panicking on error.
func (g *Graph) MustAddComponent(c Component) ComponentID {
	id, err := g.AddComponent(c)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge appends an interaction edge. Self-edges are rejected.
func (g *Graph) AddEdge(e Edge) error {
	if !g.valid(e.From) || !g.valid(e.To) {
		return fmt.Errorf("callgraph: %s: edge references unknown component (%d→%d)", g.name, e.From, e.To)
	}
	if e.From == e.To {
		return fmt.Errorf("callgraph: %s: self edge on %q", g.name, g.components[e.From].Name)
	}
	if e.Bytes < 0 || e.CallsPerRun < 0 {
		return fmt.Errorf("callgraph: %s: edge %q→%q has negative weight",
			g.name, g.components[e.From].Name, g.components[e.To].Name)
	}
	if e.CallsPerRun == 0 {
		e.CallsPerRun = 1
	}
	g.edges = append(g.edges, e)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(e Edge) {
	if err := g.AddEdge(e); err != nil {
		panic(err)
	}
}

// Connect is a convenience: add an edge between named components.
func (g *Graph) Connect(from, to string, bytes int64, calls float64) error {
	f, ok := g.byName[from]
	if !ok {
		return fmt.Errorf("callgraph: %s: unknown component %q", g.name, from)
	}
	t, ok := g.byName[to]
	if !ok {
		return fmt.Errorf("callgraph: %s: unknown component %q", g.name, to)
	}
	return g.AddEdge(Edge{From: f, To: t, Bytes: bytes, CallsPerRun: calls})
}

func (g *Graph) valid(id ComponentID) bool {
	return id >= 0 && int(id) < len(g.components)
}

// Len returns the number of components.
func (g *Graph) Len() int { return len(g.components) }

// Component returns the component with the given ID. It panics on an
// out-of-range ID: IDs only come from this graph.
func (g *Graph) Component(id ComponentID) Component {
	if !g.valid(id) {
		panic(fmt.Sprintf("callgraph: %s: component id %d out of range", g.name, id))
	}
	return g.components[id]
}

// Lookup returns the ID for a component name.
func (g *Graph) Lookup(name string) (ComponentID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// Components returns a copy of the component list.
func (g *Graph) Components() []Component {
	cp := make([]Component, len(g.components))
	copy(cp, g.components)
	return cp
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	cp := make([]Edge, len(g.edges))
	copy(cp, g.edges)
	return cp
}

// Validate checks the graph is usable for partitioning: non-empty and with
// at least one pinned component (the partition must have a device side to
// anchor user interaction).
func (g *Graph) Validate() error {
	if len(g.components) == 0 {
		return fmt.Errorf("callgraph: %s: empty graph", g.name)
	}
	pinned := false
	for _, c := range g.components {
		if c.Pinned {
			pinned = true
			break
		}
	}
	if !pinned {
		return fmt.Errorf("callgraph: %s: no pinned component", g.name)
	}
	return nil
}

// TotalCycles returns the total per-run computational demand of the app.
func (g *Graph) TotalCycles() float64 {
	sum := 0.0
	for _, c := range g.components {
		sum += c.Cycles * c.CallsPerRun
	}
	return sum
}

// TotalEdgeBytes returns the total per-run bytes across all interactions.
func (g *Graph) TotalEdgeBytes() float64 {
	sum := 0.0
	for _, e := range g.edges {
		sum += float64(e.Bytes) * e.CallsPerRun
	}
	return sum
}

// Neighbors returns the edges incident to id (in either direction).
func (g *Graph) Neighbors(id ComponentID) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if e.From == id || e.To == id {
			out = append(out, e)
		}
	}
	return out
}
