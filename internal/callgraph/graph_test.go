package callgraph

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"offload/internal/rng"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("test-app")
	g.MustAddComponent(Component{Name: "ui", Cycles: 1e7, Pinned: true})
	g.MustAddComponent(Component{Name: "work", Cycles: 1e10, MemoryBytes: 1 << 28})
	g.MustAddComponent(Component{Name: "store", Cycles: 1e8})
	if err := g.Connect("ui", "work", 1<<20, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("work", "store", 1<<16, 2); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddComponentErrors(t *testing.T) {
	g := New("app")
	tests := []struct {
		name    string
		comp    Component
		wantErr string
	}{
		{"empty name", Component{}, "empty name"},
		{"negative cycles", Component{Name: "a", Cycles: -1}, "negative weight"},
		{"negative memory", Component{Name: "b", MemoryBytes: -1}, "negative weight"},
		{"negative calls", Component{Name: "c", CallsPerRun: -1}, "negative weight"},
		{"bad parallel", Component{Name: "d", ParallelFraction: 1.5}, "parallel fraction"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddComponent(tt.comp); err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("AddComponent = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
	if _, err := g.AddComponent(Component{Name: "ok", Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddComponent(Component{Name: "ok", Cycles: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestCallsPerRunDefaultsToOne(t *testing.T) {
	g := New("app")
	id := g.MustAddComponent(Component{Name: "a", Cycles: 1})
	if got := g.Component(id).CallsPerRun; got != 1 {
		t.Fatalf("CallsPerRun = %g, want default 1", got)
	}
	g.MustAddComponent(Component{Name: "b", Cycles: 1})
	g.MustAddEdge(Edge{From: 0, To: 1, Bytes: 10})
	if got := g.Edges()[0].CallsPerRun; got != 1 {
		t.Fatalf("edge CallsPerRun = %g, want default 1", got)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("app")
	g.MustAddComponent(Component{Name: "a", Cycles: 1})
	g.MustAddComponent(Component{Name: "b", Cycles: 1})
	if err := g.AddEdge(Edge{From: 0, To: 5}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(Edge{From: 0, To: 0}); err == nil {
		t.Error("self edge accepted")
	}
	if err := g.AddEdge(Edge{From: 0, To: 1, Bytes: -1}); err == nil {
		t.Error("negative bytes accepted")
	}
	if err := g.Connect("a", "missing", 1, 1); err == nil {
		t.Error("edge to unknown name accepted")
	}
	if err := g.Connect("missing", "a", 1, 1); err == nil {
		t.Error("edge from unknown name accepted")
	}
}

func TestValidateRequiresPinned(t *testing.T) {
	g := New("app")
	if err := g.Validate(); err == nil {
		t.Error("empty graph validated")
	}
	g.MustAddComponent(Component{Name: "a", Cycles: 1})
	if err := g.Validate(); err == nil {
		t.Error("graph without pinned component validated")
	}
	g.MustAddComponent(Component{Name: "ui", Cycles: 1, Pinned: true})
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestTotals(t *testing.T) {
	g := smallGraph(t)
	wantCycles := 1e7 + 1e10 + 1e8
	if got := g.TotalCycles(); got != wantCycles {
		t.Fatalf("TotalCycles = %g, want %g", got, wantCycles)
	}
	wantBytes := float64(1<<20)*2 + float64(1<<16)*2
	if got := g.TotalEdgeBytes(); got != wantBytes {
		t.Fatalf("TotalEdgeBytes = %g, want %g", got, wantBytes)
	}
}

func TestNeighbors(t *testing.T) {
	g := smallGraph(t)
	work, _ := g.Lookup("work")
	if got := len(g.Neighbors(work)); got != 2 {
		t.Fatalf("Neighbors(work) = %d edges, want 2", got)
	}
	ui, _ := g.Lookup("ui")
	if got := len(g.Neighbors(ui)); got != 1 {
		t.Fatalf("Neighbors(ui) = %d edges, want 1", got)
	}
}

func TestCopySemantics(t *testing.T) {
	g := smallGraph(t)
	comps := g.Components()
	comps[0].Cycles = 999
	if g.Component(0).Cycles == 999 {
		t.Fatal("Components() returned aliased storage")
	}
	edges := g.Edges()
	edges[0].Bytes = 999
	if g.Edges()[0].Bytes == 999 {
		t.Fatal("Edges() returned aliased storage")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := smallGraph(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != g.Name() || back.Len() != g.Len() {
		t.Fatalf("round trip changed shape: %s/%d vs %s/%d",
			back.Name(), back.Len(), g.Name(), g.Len())
	}
	for i := 0; i < g.Len(); i++ {
		if back.Component(ComponentID(i)) != g.Component(ComponentID(i)) {
			t.Fatalf("component %d changed: %+v vs %+v",
				i, back.Component(ComponentID(i)), g.Component(ComponentID(i)))
		}
	}
	be, ge := back.Edges(), g.Edges()
	if len(be) != len(ge) {
		t.Fatalf("edge count changed: %d vs %d", len(be), len(ge))
	}
	for i := range ge {
		if be[i] != ge[i] {
			t.Fatalf("edge %d changed: %+v vs %+v", i, be[i], ge[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		spec string
	}{
		{"bad json", "{"},
		{"no name", `{"components":[{"name":"a","cycles":1,"pinned":true}]}`},
		{"no pinned", `{"name":"x","components":[{"name":"a","cycles":1}]}`},
		{"bad edge", `{"name":"x","components":[{"name":"a","cycles":1,"pinned":true}],"edges":[{"from":"a","to":"zz","bytes":1}]}`},
		{"dup component", `{"name":"x","components":[{"name":"a","cycles":1,"pinned":true},{"name":"a","cycles":1}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse([]byte(tt.spec)); err == nil {
				t.Fatalf("Parse(%s) succeeded", tt.spec)
			}
		})
	}
}

func TestTemplatesValid(t *testing.T) {
	for name, g := range Templates() {
		if err := g.Validate(); err != nil {
			t.Errorf("template %s invalid: %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("template map key %q != graph name %q", name, g.Name())
		}
		if g.Len() < 4 {
			t.Errorf("template %s suspiciously small: %d components", name, g.Len())
		}
		// Every template must round-trip through the spec format.
		data, err := json.Marshal(g)
		if err != nil {
			t.Errorf("template %s does not marshal: %v", name, err)
			continue
		}
		if _, err := Parse(data); err != nil {
			t.Errorf("template %s does not re-parse: %v", name, err)
		}
	}
	if len(Templates()) != len(TemplateNames()) {
		t.Fatalf("Templates() and TemplateNames() disagree")
	}
	for _, name := range TemplateNames() {
		if Templates()[name] == nil {
			t.Errorf("TemplateNames lists unknown template %q", name)
		}
	}
}

func TestRandomGraphProperties(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := 2 + int(size)%15
		g := Random(rng.New(seed), n)
		if g.Len() != n {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		// Connectivity: every non-root component has an incoming edge.
		hasIn := make([]bool, n)
		for _, e := range g.Edges() {
			// DAG property: edges go from lower to higher IDs.
			if e.From >= e.To {
				return false
			}
			hasIn[e.To] = true
		}
		for i := 1; i < n; i++ {
			if !hasIn[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDOTExport(t *testing.T) {
	g := smallGraph(t)
	dot := g.DOT(map[string]bool{"work": true})
	for _, want := range []string{
		`digraph "test-app"`,
		`"ui" [shape=box`,                   // pinned = box
		`"work" [shape=ellipse`,             // offloadable = ellipse
		`style=filled, fillcolor=lightblue`, // marked remote
		`"ui" -> "work"`,
		`2.0 MB`, // edge payload label (1 MB × 2 calls per run)
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Nil remote map renders without fill.
	plain := g.DOT(nil)
	if strings.Contains(plain, "fillcolor") {
		t.Error("nil remote map produced filled nodes")
	}
}

func TestByteLabel(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KB"},
		{3 << 20, "3.0 MB"},
		{5 << 30, "5.0 GB"},
	}
	for _, tt := range tests {
		if got := byteLabel(tt.n); got != tt.want {
			t.Errorf("byteLabel(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(rng.New(9), 10)
	b := Random(rng.New(9), 10)
	if a.Len() != b.Len() || len(a.Edges()) != len(b.Edges()) {
		t.Fatal("Random not deterministic for equal seeds")
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("Random edges differ for equal seeds")
		}
	}
}

// TestDOTGolden pins the full rendered DOT of a stock template, data
// weights included, so any drift in the export format is a conscious
// golden update rather than an accident.
func TestDOTGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "photo-pipeline.dot"))
	if err != nil {
		t.Fatal(err)
	}
	got := Templates()["photo-pipeline"].DOT(nil)
	if got != string(want) {
		t.Errorf("photo-pipeline DOT drifted from testdata/photo-pipeline.dot:\n%s", got)
	}
}

func TestDOTDataWeights(t *testing.T) {
	g := New("weights")
	a := g.MustAddComponent(Component{Name: "a", Cycles: 1e9, CallsPerRun: 1})
	b := g.MustAddComponent(Component{Name: "b", Cycles: 1e9, CallsPerRun: 1})
	c := g.MustAddComponent(Component{Name: "c", Cycles: 1e9, CallsPerRun: 1})
	g.MustAddEdge(Edge{From: a, To: b, Bytes: 100 << 20, CallsPerRun: 1})
	g.MustAddEdge(Edge{From: b, To: c, Bytes: 1 << 10, CallsPerRun: 1})
	dot := g.DOT(nil)
	// The heaviest edge gets the maximum pen width and layout weight; the
	// light edge is visibly thinner with minimum weight.
	if !strings.Contains(dot, `"a" -> "b" [label="100.0 MB", penwidth=5.0, weight=10]`) {
		t.Errorf("heavy edge not max-weighted:\n%s", dot)
	}
	if !strings.Contains(dot, `"b" -> "c" [label="1.0 KB", penwidth=2.5, weight=1]`) {
		t.Errorf("light edge weights wrong:\n%s", dot)
	}
	// Degenerate inputs stay in range.
	if penwidth(0, 0) != 1 || layoutWeight(0, 0) != 1 {
		t.Error("zero-byte edges must render at minimum weight")
	}
}
