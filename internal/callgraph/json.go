package callgraph

import (
	"encoding/json"
	"fmt"
)

// The on-disk spec format for application graphs, used by cmd/offctl and
// the CI/CD pipeline. Components are referenced by name in edges.

type jsonGraph struct {
	Name       string          `json:"name"`
	Components []jsonComponent `json:"components"`
	Edges      []jsonEdge      `json:"edges"`
}

type jsonComponent struct {
	Name             string  `json:"name"`
	Cycles           float64 `json:"cycles"`
	MemoryBytes      int64   `json:"memory_bytes,omitempty"`
	CallsPerRun      float64 `json:"calls_per_run,omitempty"`
	Pinned           bool    `json:"pinned,omitempty"`
	ParallelFraction float64 `json:"parallel_fraction,omitempty"`
}

type jsonEdge struct {
	From        string  `json:"from"`
	To          string  `json:"to"`
	Bytes       int64   `json:"bytes"`
	CallsPerRun float64 `json:"calls_per_run,omitempty"`
}

// MarshalJSON encodes the graph in the spec format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.name}
	for _, c := range g.components {
		jg.Components = append(jg.Components, jsonComponent{
			Name:             c.Name,
			Cycles:           c.Cycles,
			MemoryBytes:      c.MemoryBytes,
			CallsPerRun:      c.CallsPerRun,
			Pinned:           c.Pinned,
			ParallelFraction: c.ParallelFraction,
		})
	}
	for _, e := range g.edges {
		jg.Edges = append(jg.Edges, jsonEdge{
			From:        g.components[e.From].Name,
			To:          g.components[e.To].Name,
			Bytes:       e.Bytes,
			CallsPerRun: e.CallsPerRun,
		})
	}
	return json.Marshal(jg)
}

// Parse decodes a graph from the JSON spec format.
func Parse(data []byte) (*Graph, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("callgraph: parsing spec: %w", err)
	}
	if jg.Name == "" {
		return nil, fmt.Errorf("callgraph: spec has no application name")
	}
	g := New(jg.Name)
	for _, jc := range jg.Components {
		_, err := g.AddComponent(Component{
			Name:             jc.Name,
			Cycles:           jc.Cycles,
			MemoryBytes:      jc.MemoryBytes,
			CallsPerRun:      jc.CallsPerRun,
			Pinned:           jc.Pinned,
			ParallelFraction: jc.ParallelFraction,
		})
		if err != nil {
			return nil, err
		}
	}
	for _, je := range jg.Edges {
		if err := g.Connect(je.From, je.To, je.Bytes, je.CallsPerRun); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
