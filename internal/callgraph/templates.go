package callgraph

import (
	"fmt"

	"offload/internal/model"
	"offload/internal/rng"
)

// The five application templates used across the evaluation. All are
// non-time-critical by construction — batch or background jobs where the
// user tolerates seconds-to-hours of completion time — matching the
// paper's target use cases. Each has a pinned device-side anchor and a
// compute-heavy interior that is worth offloading to varying degrees.

// VideoTranscode models a background video-transcoding job: a large input,
// a highly parallel encode stage, and small metadata flowing back.
func VideoTranscode() *Graph {
	g := New("video-transcode")
	g.MustAddComponent(Component{Name: "ui", Cycles: 5e7, Pinned: true})
	g.MustAddComponent(Component{Name: "chunker", Cycles: 4e8, MemoryBytes: 256 * model.MB})
	g.MustAddComponent(Component{Name: "transcoder", Cycles: 6e10, MemoryBytes: 1536 * model.MB, ParallelFraction: 0.9})
	g.MustAddComponent(Component{Name: "thumbnailer", Cycles: 2e9, MemoryBytes: 256 * model.MB, ParallelFraction: 0.5})
	g.MustAddComponent(Component{Name: "packager", Cycles: 8e8, MemoryBytes: 512 * model.MB})
	mustConnect(g, "ui", "chunker", 64*model.MB, 1)
	mustConnect(g, "chunker", "transcoder", 64*model.MB, 1)
	mustConnect(g, "transcoder", "thumbnailer", 2*model.MB, 1)
	mustConnect(g, "transcoder", "packager", 48*model.MB, 1)
	mustConnect(g, "packager", "ui", 1*model.MB, 1)
	return g
}

// MLBatch models nightly batch inference: many small records pushed
// through a heavy model.
func MLBatch() *Graph {
	g := New("ml-batch")
	g.MustAddComponent(Component{Name: "collector", Cycles: 1e8, Pinned: true})
	g.MustAddComponent(Component{Name: "preprocess", Cycles: 3e9, MemoryBytes: 512 * model.MB, ParallelFraction: 0.7})
	g.MustAddComponent(Component{Name: "features", Cycles: 5e9, MemoryBytes: 768 * model.MB, ParallelFraction: 0.8})
	g.MustAddComponent(Component{Name: "inference", Cycles: 3e10, MemoryBytes: 2048 * model.MB, ParallelFraction: 0.85})
	g.MustAddComponent(Component{Name: "postprocess", Cycles: 6e8, MemoryBytes: 256 * model.MB})
	mustConnect(g, "collector", "preprocess", 16*model.MB, 1)
	mustConnect(g, "preprocess", "features", 8*model.MB, 1)
	mustConnect(g, "features", "inference", 4*model.MB, 1)
	mustConnect(g, "inference", "postprocess", 512*model.KB, 1)
	mustConnect(g, "postprocess", "collector", 256*model.KB, 1)
	return g
}

// PhotoPipeline models a photo backup/enhancement pipeline: moderate
// compute, chatty interactions per photo.
func PhotoPipeline() *Graph {
	g := New("photo-pipeline")
	g.MustAddComponent(Component{Name: "camera", Cycles: 2e7, Pinned: true, CallsPerRun: 20})
	g.MustAddComponent(Component{Name: "resize", Cycles: 4e8, MemoryBytes: 128 * model.MB, CallsPerRun: 20})
	g.MustAddComponent(Component{Name: "enhance", Cycles: 3e9, MemoryBytes: 512 * model.MB, CallsPerRun: 20, ParallelFraction: 0.6})
	g.MustAddComponent(Component{Name: "detect", Cycles: 6e9, MemoryBytes: 1024 * model.MB, CallsPerRun: 20, ParallelFraction: 0.75})
	g.MustAddComponent(Component{Name: "sync", Cycles: 1e8, MemoryBytes: 64 * model.MB, CallsPerRun: 20})
	mustConnect(g, "camera", "resize", 4*model.MB, 20)
	mustConnect(g, "resize", "enhance", 2*model.MB, 20)
	mustConnect(g, "enhance", "detect", 2*model.MB, 20)
	mustConnect(g, "detect", "sync", 128*model.KB, 20)
	mustConnect(g, "sync", "camera", 16*model.KB, 20)
	return g
}

// ReportGen models business-report generation: query-heavy with small
// payloads; the cheapest template to offload.
func ReportGen() *Graph {
	g := New("report-gen")
	g.MustAddComponent(Component{Name: "dashboard", Cycles: 5e7, Pinned: true})
	g.MustAddComponent(Component{Name: "query", Cycles: 2e9, MemoryBytes: 512 * model.MB})
	g.MustAddComponent(Component{Name: "aggregate", Cycles: 8e9, MemoryBytes: 1024 * model.MB, ParallelFraction: 0.8})
	g.MustAddComponent(Component{Name: "charts", Cycles: 1.5e9, MemoryBytes: 256 * model.MB})
	g.MustAddComponent(Component{Name: "compose", Cycles: 9e8, MemoryBytes: 256 * model.MB})
	mustConnect(g, "dashboard", "query", 64*model.KB, 1)
	mustConnect(g, "query", "aggregate", 8*model.MB, 1)
	mustConnect(g, "aggregate", "charts", 1*model.MB, 1)
	mustConnect(g, "charts", "compose", 2*model.MB, 1)
	mustConnect(g, "compose", "dashboard", 4*model.MB, 1)
	return g
}

// SciBatch models an overnight scientific batch job: enormous compute on
// modest data, the strongest case for cloud offloading.
func SciBatch() *Graph {
	g := New("sci-batch")
	g.MustAddComponent(Component{Name: "instrument", Cycles: 1e8, Pinned: true})
	g.MustAddComponent(Component{Name: "clean", Cycles: 2e9, MemoryBytes: 512 * model.MB})
	g.MustAddComponent(Component{Name: "simulate", Cycles: 2e11, MemoryBytes: 3072 * model.MB, ParallelFraction: 0.95})
	g.MustAddComponent(Component{Name: "analyze", Cycles: 1e10, MemoryBytes: 1024 * model.MB, ParallelFraction: 0.8})
	g.MustAddComponent(Component{Name: "visualize", Cycles: 2e9, MemoryBytes: 512 * model.MB})
	mustConnect(g, "instrument", "clean", 32*model.MB, 1)
	mustConnect(g, "clean", "simulate", 16*model.MB, 1)
	mustConnect(g, "simulate", "analyze", 8*model.MB, 1)
	mustConnect(g, "analyze", "visualize", 4*model.MB, 1)
	mustConnect(g, "visualize", "instrument", 2*model.MB, 1)
	return g
}

// Templates returns all application templates keyed by name.
func Templates() map[string]*Graph {
	graphs := []*Graph{
		VideoTranscode(), MLBatch(), PhotoPipeline(), ReportGen(), SciBatch(),
	}
	out := make(map[string]*Graph, len(graphs))
	for _, g := range graphs {
		out[g.Name()] = g
	}
	return out
}

// TemplateNames returns template names in canonical order.
func TemplateNames() []string {
	return []string{"video-transcode", "ml-batch", "photo-pipeline", "report-gen", "sci-batch"}
}

func mustConnect(g *Graph, from, to string, bytes int64, calls float64) {
	if err := g.Connect(from, to, bytes, calls); err != nil {
		panic(err)
	}
}

// Random generates a layered random DAG with n components (component 0
// pinned), for partitioner stress tests and the E3 optimality comparison.
// Weights span three orders of magnitude so instances include both
// compute-bound and communication-bound regions.
func Random(src *rng.Source, n int) *Graph {
	g := New("random")
	g.MustAddComponent(Component{Name: "root", Cycles: 1e7, Pinned: true})
	for i := 1; i < n; i++ {
		g.MustAddComponent(Component{
			Name:             compName(i),
			Cycles:           src.Pareto(1e8, 1.1),
			MemoryBytes:      int64(src.Uniform(64, 2048)) * model.MB,
			ParallelFraction: src.Uniform(0, 0.9),
		})
	}
	// Layered DAG edges: every component gets at least one upstream link to
	// keep the graph connected; extra edges appear with probability 0.3.
	for i := 1; i < n; i++ {
		from := ComponentID(src.Intn(i))
		g.MustAddEdge(Edge{From: from, To: ComponentID(i), Bytes: randBytes(src)})
		for j := 0; j < i; j++ {
			if ComponentID(j) != from && src.Bool(0.3/float64(i)) {
				g.MustAddEdge(Edge{From: ComponentID(j), To: ComponentID(i), Bytes: randBytes(src)})
			}
		}
	}
	return g
}

func randBytes(src *rng.Source) int64 {
	return int64(src.Pareto(float64(32*model.KB), 1.2))
}

func compName(i int) string {
	return fmt.Sprintf("c%03d", i)
}
