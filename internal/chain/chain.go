// Package chain executes one application run as its partitioned component
// graph: pinned and local components run on the device, offloaded ones on
// their per-component serverless functions (the deployment a CI/CD
// manifest describes), and every edge that crosses the device/cloud
// boundary pays a transfer on the network path.
//
// This is the runtime counterpart of the offline plan — where the
// monolithic scheduler treats an app run as one aggregate task, the chain
// runner honours the partition's structure, which is what per-component
// deployment actually buys (and costs: per-request charges and cut-edge
// transfers). Experiment E15 quantifies that trade.
package chain

import (
	"fmt"

	"offload/internal/callgraph"
	"offload/internal/device"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/partition"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// Runner executes runs of one partitioned application.
type Runner struct {
	eng        *sim.Engine
	graph      *callgraph.Graph
	assignment partition.Assignment
	dev        *device.Device
	path       *network.Path
	functions  map[callgraph.ComponentID]*serverless.Function

	order []callgraph.ComponentID
}

// Config wires a Runner.
type Config struct {
	Graph      *callgraph.Graph
	Assignment partition.Assignment
	Device     *device.Device
	Path       *network.Path // device↔cloud path for cut edges
	// Functions maps offloaded component names to deployed functions;
	// every remote component must be present.
	Functions map[string]*serverless.Function
}

// New validates the wiring and precomputes the execution order
// (topological where the graph is acyclic; back edges — results returning
// to an earlier component — are treated as final transfers).
func New(eng *sim.Engine, cfg Config) (*Runner, error) {
	if eng == nil {
		return nil, fmt.Errorf("chain: nil engine")
	}
	if cfg.Graph == nil {
		return nil, fmt.Errorf("chain: nil graph")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Assignment.Valid(cfg.Graph) {
		return nil, fmt.Errorf("chain: assignment invalid for graph %s", cfg.Graph.Name())
	}
	if cfg.Device == nil {
		return nil, fmt.Errorf("chain: nil device")
	}
	r := &Runner{
		eng:        eng,
		graph:      cfg.Graph,
		assignment: cfg.Assignment.Clone(),
		dev:        cfg.Device,
		path:       cfg.Path,
		functions:  make(map[callgraph.ComponentID]*serverless.Function),
	}
	needPath := false
	for i, remote := range cfg.Assignment {
		id := callgraph.ComponentID(i)
		if !remote {
			continue
		}
		name := cfg.Graph.Component(id).Name
		fn, ok := cfg.Functions[name]
		if !ok || fn == nil {
			return nil, fmt.Errorf("chain: no function deployed for remote component %q", name)
		}
		r.functions[id] = fn
	}
	for _, e := range cfg.Graph.Edges() {
		if cfg.Assignment[e.From] != cfg.Assignment[e.To] {
			needPath = true
		}
	}
	if needPath && cfg.Path == nil {
		return nil, fmt.Errorf("chain: partition has cut edges but no network path")
	}
	r.order = executionOrder(cfg.Graph)
	return r, nil
}

// executionOrder returns a Kahn topological order; components on cycles
// (typically results feeding back to the pinned anchor) keep their
// insertion order after the acyclic prefix.
func executionOrder(g *callgraph.Graph) []callgraph.ComponentID {
	n := g.Len()
	indeg := make([]int, n)
	adj := make([][]callgraph.ComponentID, n)
	for _, e := range g.Edges() {
		indeg[e.To]++
		adj[e.From] = append(adj[e.From], e.To)
	}
	var order []callgraph.ComponentID
	var queue []callgraph.ComponentID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, callgraph.ComponentID(i))
		}
	}
	done := make([]bool, n)
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		order = append(order, c)
		done[c] = true
		for _, next := range adj[c] {
			indeg[next]--
			if indeg[next] == 0 && !done[next] {
				queue = append(queue, next)
			}
		}
	}
	// Cycle members (if any) in insertion order.
	for i := 0; i < n; i++ {
		if !done[i] {
			order = append(order, callgraph.ComponentID(i))
		}
	}
	return order
}

// ComponentResult is one component's execution within a run.
type ComponentResult struct {
	Name      string
	Remote    bool
	Start     sim.Time
	End       sim.Time
	Exec      model.ExecReport
	TransferS float64 // cut-edge transfer time attributed to this component's inputs
}

// Result is one complete application run.
type Result struct {
	App        string
	Start, End sim.Time

	Components []ComponentResult
	CutEdges   int
	BytesMoved int64

	CostUSD      float64
	EnergyMilliJ float64
	Failed       bool
}

// Duration returns the run's end-to-end wall time.
func (r Result) Duration() sim.Duration { return r.End.Sub(r.Start) }

// Run executes one application run, calling done from the simulation loop
// when the last component (and every trailing cut transfer) finished.
// Components execute sequentially in dependency order, as a single
// application run's critical path does; CallsPerRun is already folded
// into component and edge weights.
func (r *Runner) Run(done func(Result)) {
	if done == nil {
		panic("chain: Run with nil done")
	}
	res := &Result{App: r.graph.Name(), Start: r.eng.Now()}
	r.step(0, res, done)
}

// step executes the order[idx] component: first pull its cut in-edges,
// then execute, then recurse.
func (r *Runner) step(idx int, res *Result, done func(Result)) {
	if idx >= len(r.order) {
		r.finishTrailing(res, done)
		return
	}
	id := r.order[idx]
	comp := r.graph.Component(id)

	// Pull transfers: in-edges from the other side whose source already
	// ran (forward edges; back edges are settled at the end of the run).
	var pulls []callgraph.Edge
	for _, e := range r.graph.Edges() {
		if e.To == id && r.assignment[e.From] != r.assignment[e.To] && r.ranBefore(e.From, idx) {
			pulls = append(pulls, e)
		}
	}
	r.transferAll(pulls, res, func(transferS float64) {
		start := r.eng.Now()
		task := &model.Task{
			App:              r.graph.Name(),
			Component:        comp.Name,
			Cycles:           comp.Cycles * comp.CallsPerRun,
			MemoryBytes:      comp.MemoryBytes,
			ParallelFraction: comp.ParallelFraction,
		}
		finish := func(rep model.ExecReport) {
			cr := ComponentResult{
				Name: comp.Name, Remote: r.assignment[id],
				Start: start, End: r.eng.Now(), Exec: rep, TransferS: transferS,
			}
			res.Components = append(res.Components, cr)
			res.CostUSD += rep.CostUSD
			if rep.Err != nil {
				res.Failed = true
				res.End = r.eng.Now()
				done(*res)
				return
			}
			r.step(idx+1, res, done)
		}
		if r.assignment[id] {
			res.EnergyMilliJ += 0 // remote compute costs the device nothing
			r.functions[id].Execute(task, finish)
		} else {
			res.EnergyMilliJ += r.dev.ComputeEnergyMilliJ(task)
			r.dev.Execute(task, finish)
		}
	})
}

// ranBefore reports whether component c appears before position idx in
// the execution order.
func (r *Runner) ranBefore(c callgraph.ComponentID, idx int) bool {
	for i := 0; i < idx; i++ {
		if r.order[i] == c {
			return true
		}
	}
	return false
}

// finishTrailing settles back edges — cut edges whose destination ran
// before its source (results flowing back, usually to the pinned anchor).
func (r *Runner) finishTrailing(res *Result, done func(Result)) {
	var trailing []callgraph.Edge
	pos := make(map[callgraph.ComponentID]int, len(r.order))
	for i, id := range r.order {
		pos[id] = i
	}
	for _, e := range r.graph.Edges() {
		if r.assignment[e.From] != r.assignment[e.To] && pos[e.To] <= pos[e.From] {
			trailing = append(trailing, e)
		}
	}
	r.transferAll(trailing, res, func(float64) {
		res.End = r.eng.Now()
		done(*res)
	})
}

// transferAll moves each edge's payload sequentially over the path (one
// device radio), accumulating device energy and stats, then calls next
// with the total transfer seconds.
func (r *Runner) transferAll(edges []callgraph.Edge, res *Result, next func(totalS float64)) {
	total := 0.0
	var run func(i int)
	run = func(i int) {
		if i >= len(edges) {
			next(total)
			return
		}
		e := edges[i]
		bytes := int64(float64(e.Bytes) * e.CallsPerRun)
		dir := network.Uplink // device → cloud
		uplink := true
		if r.assignment[e.From] { // remote source: data comes down
			dir = network.Downlink
			uplink = false
		}
		r.path.Transfer(bytes, dir, func(rep network.Report) {
			total += float64(rep.Duration())
			res.CutEdges++
			res.BytesMoved += bytes
			res.EnergyMilliJ += r.dev.RadioEnergyMilliJ(rep.Duration(), uplink)
			run(i + 1)
		})
	}
	run(0)
}
