package chain

import (
	"math"
	"testing"

	"offload/internal/callgraph"
	"offload/internal/device"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/partition"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// pipelineGraph: ui(pinned) → a → b → ui, with a and b offloadable.
func pipelineGraph() *callgraph.Graph {
	g := callgraph.New("pipe")
	g.MustAddComponent(callgraph.Component{Name: "ui", Cycles: 1e8, Pinned: true})
	g.MustAddComponent(callgraph.Component{Name: "a", Cycles: 2e9})
	g.MustAddComponent(callgraph.Component{Name: "b", Cycles: 4e9})
	g.MustAddEdge(callgraph.Edge{From: 0, To: 1, Bytes: 1 << 20})
	g.MustAddEdge(callgraph.Edge{From: 1, To: 2, Bytes: 1 << 18})
	g.MustAddEdge(callgraph.Edge{From: 2, To: 0, Bytes: 1 << 16})
	return g
}

type fixture struct {
	eng      *sim.Engine
	dev      *device.Device
	path     *network.Path
	platform *serverless.Platform
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	eng := sim.NewEngine()
	dev := device.New(eng, device.Config{
		Name: "ue", CPUHz: 1e9, Cores: 2,
		ActivePowerW: 2, TxPowerW: 1, RxPowerW: 0.5,
	})
	path := network.New(eng, rng.New(1), network.Config{
		Name: "wan", OneWayDelay: 0.01, UplinkBps: 8e6, DownlinkBps: 16e6, Serialize: true,
	})
	cfg := serverless.LambdaLike()
	cfg.ColdStart = serverless.ColdStartModel{} // deterministic
	platform := serverless.NewPlatform(eng, rng.New(2), cfg)
	return &fixture{eng: eng, dev: dev, path: path, platform: platform}
}

func (f *fixture) deployAll(t *testing.T, g *callgraph.Graph, a partition.Assignment) map[string]*serverless.Function {
	t.Helper()
	fns := make(map[string]*serverless.Function)
	for i, remote := range a {
		if !remote {
			continue
		}
		comp := g.Component(callgraph.ComponentID(i))
		// Size to at least one vCPU and twice the working set, rounded to
		// the 64 MB ladder.
		mem := int64(1792 * model.MB)
		if need := 2 * comp.MemoryBytes; need > mem {
			step := int64(64 * model.MB)
			mem = (need + step - 1) / step * step
		}
		fn, err := f.platform.Deploy(serverless.FunctionConfig{
			Name: g.Name() + "-" + comp.Name, MemoryBytes: mem,
		})
		if err != nil {
			t.Fatal(err)
		}
		fns[comp.Name] = fn
	}
	return fns
}

func run(t *testing.T, f *fixture, g *callgraph.Graph, a partition.Assignment) Result {
	t.Helper()
	r, err := New(f.eng, Config{
		Graph: g, Assignment: a, Device: f.dev, Path: f.path,
		Functions: f.deployAll(t, g, a),
	})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	r.Run(func(out Result) { res = out })
	f.eng.Run()
	return res
}

func TestAllLocalRunMatchesDeviceTime(t *testing.T) {
	f := newFixture(t)
	g := pipelineGraph()
	res := run(t, f, g, partition.AllLocal(g))
	if res.Failed {
		t.Fatal("run failed")
	}
	// 0.1 + 2 + 4 seconds of compute, no transfers.
	want := 6.1
	if math.Abs(float64(res.Duration())-want) > 1e-9 {
		t.Fatalf("Duration = %v, want %v", res.Duration(), want)
	}
	if res.CutEdges != 0 || res.BytesMoved != 0 || res.CostUSD != 0 {
		t.Fatalf("all-local run moved data or money: %+v", res)
	}
	if len(res.Components) != 3 {
		t.Fatalf("%d component results", len(res.Components))
	}
	// Compute energy: 6.1 s × 2 W = 12.2 J.
	if math.Abs(res.EnergyMilliJ-12200) > 1 {
		t.Fatalf("EnergyMilliJ = %g", res.EnergyMilliJ)
	}
}

func TestPartitionedRunPaysCutTransfersAndBills(t *testing.T) {
	f := newFixture(t)
	g := pipelineGraph()
	a := partition.Assignment{false, true, true} // offload a and b
	res := run(t, f, g, a)
	if res.Failed {
		t.Fatal("run failed")
	}
	// Cut edges: ui→a (up, 1 MB) and b→ui (down, 64 KB). a→b stays in the
	// cloud and is free.
	if res.CutEdges != 2 {
		t.Fatalf("CutEdges = %d, want 2", res.CutEdges)
	}
	if res.BytesMoved != 1<<20+1<<16 {
		t.Fatalf("BytesMoved = %d", res.BytesMoved)
	}
	if res.CostUSD <= 0 {
		t.Fatal("remote components billed nothing")
	}
	// Remote compute: (2e9+4e9)/2.5e9 ≈ 2.4 s at ~1 vCPU; local ui 0.1 s;
	// uplink ~1.06 s; downlink ~0.04 s. Far faster than 6.1 s local.
	if res.Duration() >= 6.1 {
		t.Fatalf("partitioned run (%v) not faster than local", res.Duration())
	}
	// Energy is radio-only beyond the ui's 0.2 J.
	if res.EnergyMilliJ >= 12200 {
		t.Fatalf("partitioned energy %g not below local", res.EnergyMilliJ)
	}
}

func TestRemoteToRemoteEdgeIsFree(t *testing.T) {
	f := newFixture(t)
	g := pipelineGraph()
	a := partition.Assignment{false, true, true}
	res := run(t, f, g, a)
	for _, cr := range res.Components {
		if cr.Name == "b" && cr.TransferS != 0 {
			t.Fatalf("intra-cloud edge a→b paid a device transfer: %g s", cr.TransferS)
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	f := newFixture(t)
	g := pipelineGraph()
	if _, err := New(nil, Config{Graph: g}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(f.eng, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(f.eng, Config{Graph: g, Assignment: partition.Assignment{true}, Device: f.dev}); err == nil {
		t.Error("wrong-arity assignment accepted")
	}
	// Remote component without a deployed function.
	a := partition.Assignment{false, true, false}
	if _, err := New(f.eng, Config{Graph: g, Assignment: a, Device: f.dev, Path: f.path,
		Functions: map[string]*serverless.Function{}}); err == nil {
		t.Error("missing function accepted")
	}
	// Cut edges without a path.
	fns := f.deployAll(t, g, a)
	if _, err := New(f.eng, Config{Graph: g, Assignment: a, Device: f.dev, Functions: fns}); err == nil {
		t.Error("cut edges without path accepted")
	}
}

func TestRunFailurePropagates(t *testing.T) {
	f := newFixture(t)
	a := partition.Assignment{false, true, false}
	// Deploy an undersized function so the remote component OOMs.
	fn, err := f.platform.Deploy(serverless.FunctionConfig{
		Name: "tiny", MemoryBytes: 128 * model.MB,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the remote component a working set the tiny function can't hold.
	g2 := callgraph.New("pipe")
	g2.MustAddComponent(callgraph.Component{Name: "ui", Cycles: 1e8, Pinned: true})
	g2.MustAddComponent(callgraph.Component{Name: "a", Cycles: 2e9, MemoryBytes: 1 << 30})
	g2.MustAddComponent(callgraph.Component{Name: "b", Cycles: 4e9})
	g2.MustAddEdge(callgraph.Edge{From: 0, To: 1, Bytes: 1 << 20})
	g2.MustAddEdge(callgraph.Edge{From: 1, To: 2, Bytes: 1 << 18})

	r, err := New(f.eng, Config{
		Graph: g2, Assignment: a, Device: f.dev, Path: f.path,
		Functions: map[string]*serverless.Function{"a": fn},
	})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	r.Run(func(out Result) { res = out })
	f.eng.Run()
	if !res.Failed {
		t.Fatal("OOM did not fail the run")
	}
	// The run stops at the failing component: b never executes.
	for _, cr := range res.Components {
		if cr.Name == "b" {
			t.Fatal("component after the failure still executed")
		}
	}
}

func TestExecutionOrderTopological(t *testing.T) {
	g := callgraph.New("dag")
	g.MustAddComponent(callgraph.Component{Name: "root", Cycles: 1, Pinned: true})
	g.MustAddComponent(callgraph.Component{Name: "x", Cycles: 1})
	g.MustAddComponent(callgraph.Component{Name: "y", Cycles: 1})
	g.MustAddComponent(callgraph.Component{Name: "z", Cycles: 1})
	g.MustAddEdge(callgraph.Edge{From: 0, To: 2, Bytes: 1}) // root→y
	g.MustAddEdge(callgraph.Edge{From: 2, To: 1, Bytes: 1}) // y→x
	g.MustAddEdge(callgraph.Edge{From: 1, To: 3, Bytes: 1}) // x→z
	order := executionOrder(g)
	pos := map[callgraph.ComponentID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] > pos[e.To] {
			t.Fatalf("order violates edge %d→%d: %v", e.From, e.To, order)
		}
	}
}

func TestExecutionOrderWithCycleFallsBack(t *testing.T) {
	g := pipelineGraph() // has b→ui back edge; ui is on a cycle
	order := executionOrder(g)
	if len(order) != 3 {
		t.Fatalf("order dropped components: %v", order)
	}
	seen := map[callgraph.ComponentID]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate in order: %v", order)
		}
		seen[id] = true
	}
}

func TestChainRunOnTemplates(t *testing.T) {
	// Every built-in template must run under its min-cut partition.
	for name, g := range callgraph.Templates() {
		t.Run(name, func(t *testing.T) {
			f := newFixture(t)
			m := partition.CostModel{
				LocalHz: 1e9, RemoteHz: 2.5e9,
				BandwidthBps: 8e6, RTTSeconds: 0.02,
				USDPerRemoteSecond: 3e-5,
				EnergyJPerCycle:    2e-9, RadioJPerByte: 1e-6,
				LatencyWeight: 0.001, EnergyWeight: 2.3e-5, MoneyWeight: 1,
			}
			pr, err := partition.MinCut(g, m)
			if err != nil {
				t.Fatal(err)
			}
			res := run(t, f, g, pr.Assignment)
			if res.Failed {
				t.Fatalf("template run failed: %+v", res)
			}
			if len(res.Components) != g.Len() {
				t.Fatalf("executed %d of %d components", len(res.Components), g.Len())
			}
		})
	}
}
