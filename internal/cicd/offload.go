package cicd

import (
	"encoding/json"
	"errors"
	"fmt"

	"offload/internal/alloc"
	"offload/internal/callgraph"
	"offload/internal/model"
	"offload/internal/partition"
	"offload/internal/profile"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// ErrRolledBack marks a pipeline run whose canary violated the SLO and
// whose deployment was reverted to the previous manifest.
var ErrRolledBack = errors.New("cicd: canary violated SLO, deployment rolled back")

// Context keys under which the offload stages publish their artefacts.
const (
	KeyCatalog   = "offload.catalog"
	KeyEstimated = "offload.graph.estimated"
	KeyPartition = "offload.partition"
	KeyManifest  = "offload.manifest"
	KeyCanary    = "offload.canary"
	KeyRolledBck = "offload.rolledback"
)

// FunctionSpec is one deployed function in a manifest.
type FunctionSpec struct {
	Name        string `json:"name"`
	Component   string `json:"component"`
	MemoryBytes int64  `json:"memory_bytes"`
}

// Manifest records what a pipeline run deployed: the partition and the
// sized functions. It is the artefact a rollback restores.
type Manifest struct {
	App       string         `json:"app"`
	Remote    []string       `json:"remote_components"`
	Functions []FunctionSpec `json:"functions"`
}

// MarshalJSON is the manifest's archival format (pretty-printed).
func (m *Manifest) Encode() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// DecodeManifest parses an archived manifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cicd: parsing manifest: %w", err)
	}
	if m.App == "" {
		return nil, fmt.Errorf("cicd: manifest without app")
	}
	return &m, nil
}

// CanarySpec configures the post-deploy verification stage.
type CanarySpec struct {
	// Invocations per deployed function. Zero disables the canary.
	Invocations int
	// SLOFactor bounds the observed mean execution time relative to the
	// allocator's expectation; exceeding it triggers rollback. Default 2.
	SLOFactor float64
}

// CanaryResult is published under KeyCanary.
type CanaryResult struct {
	Invocations int
	MeanExecS   float64
	ExpectedS   float64
	Passed      bool
}

// Build wires the offloading stages for one application into a pipeline.
type Build struct {
	App      *callgraph.Graph
	Platform *serverless.Platform
	Meter    *profile.Meter
	Cost     partition.CostModel

	// ProfileRuns is the number of measured executions per component
	// (default 30); ProfileRunTime is the virtual time each takes
	// (default 2 s).
	ProfileRuns    int
	ProfileRunTime sim.Duration

	Canary CanarySpec

	// Previous is the last known-good manifest; rollback re-deploys it.
	Previous *Manifest

	// ProfileCache, when set, makes the profile stage incremental: only
	// components listed in Changed (or missing from the cache) are
	// re-measured, and the stage's duration scales accordingly. This is
	// the iteration speed-up a per-commit pipeline needs.
	ProfileCache *profile.Catalog
	Changed      []string

	// InjectRegression inflates the true demand seen by canary traffic by
	// this fraction — the E8 knob that forces an SLO violation.
	InjectRegression float64

	// WithOffload false builds the vanilla pipeline (no profile /
	// partition / function stages), the E8 overhead baseline.
	WithOffload bool
}

// Durations of the conventional stages, in virtual seconds. These are
// typical mid-size-service CI numbers; E8 reports relative overhead so the
// absolute values only set the scale.
const (
	checkoutTime  = 20.0
	buildTime     = 90.0
	unitTestTime  = 60.0
	packageTime   = 45.0
	deployFnTime  = 15.0 // per function
	releaseTime   = 10.0
	rollbackTime  = 12.0
	partitionTime = 2.0
)

// Pipeline assembles the stage DAG.
func (b *Build) Pipeline() (*Pipeline, error) {
	if b.App == nil {
		return nil, fmt.Errorf("cicd: build without application graph")
	}
	if err := b.App.Validate(); err != nil {
		return nil, err
	}
	name := "deploy-" + b.App.Name()
	p := NewPipeline(name)
	p.MustAdd(Stage{Name: "checkout", Execute: RunFor(checkoutTime, nil)})
	p.MustAdd(Stage{Name: "build", Needs: []string{"checkout"}, Execute: RunFor(buildTime, nil)})
	p.MustAdd(Stage{Name: "unit-test", Needs: []string{"build"}, Execute: RunFor(unitTestTime, nil)})

	if !b.WithOffload {
		p.MustAdd(Stage{Name: "package", Needs: []string{"unit-test"}, Execute: RunFor(packageTime, nil)})
		p.MustAdd(Stage{Name: "deploy", Needs: []string{"package"}, Execute: RunFor(deployFnTime, nil)})
		p.MustAdd(Stage{Name: "release", Needs: []string{"deploy"}, Execute: RunFor(releaseTime, nil)})
		return p, nil
	}
	if b.Platform == nil {
		return nil, fmt.Errorf("cicd: offload build without serverless platform")
	}
	if err := b.Cost.Validate(); err != nil {
		return nil, err
	}

	runs := b.ProfileRuns
	if runs <= 0 {
		runs = 30
	}
	perRun := b.ProfileRunTime
	if perRun <= 0 {
		perRun = 2
	}
	meter := b.Meter
	if meter == nil {
		meter = profile.NewMeter(nil, 0)
	}

	p.MustAdd(Stage{
		Name:  "profile",
		Needs: []string{"build"},
		Execute: func(px *Exec, done func(error)) {
			cat, reprofiled, err := profile.UpdateCatalog(b.ProfileCache, b.App, meter, runs, b.Changed)
			if err != nil {
				px.Eng.After(0, func() { done(err) })
				return
			}
			est, err := cat.EstimatedGraph(b.App)
			if err != nil {
				px.Eng.After(0, func() { done(err) })
				return
			}
			px.Ctx.Set(KeyCatalog, cat)
			px.Ctx.Set(KeyEstimated, est)
			// Stage time scales with how much actually needed measuring.
			perComponent := float64(perRun) * float64(runs) / float64(b.App.Len())
			px.Eng.After(sim.Duration(perComponent*float64(reprofiled)), func() { done(nil) })
		},
	})
	p.MustAdd(Stage{
		Name:  "partition",
		Needs: []string{"profile"},
		Execute: RunFor(partitionTime, func(px *Exec) error {
			v, _ := px.Ctx.Get(KeyEstimated)
			est := v.(*callgraph.Graph)
			res, err := partition.MinCut(est, b.Cost)
			if err != nil {
				return err
			}
			px.Ctx.Set(KeyPartition, res)
			return nil
		}),
	})
	p.MustAdd(Stage{Name: "package", Needs: []string{"unit-test", "partition"}, Execute: RunFor(packageTime, nil)})
	p.MustAdd(Stage{
		Name:  "deploy",
		Needs: []string{"package"},
		Execute: func(px *Exec, done func(error)) {
			manifest, err := b.deploy(px)
			if err != nil {
				px.Eng.After(deployFnTime, func() { done(err) })
				return
			}
			px.Ctx.Set(KeyManifest, manifest)
			px.Eng.After(sim.Duration(deployFnTime*float64(max(1, len(manifest.Functions)))), func() {
				done(nil)
			})
		},
	})
	p.MustAdd(Stage{
		Name:    "canary",
		Needs:   []string{"deploy"},
		Execute: b.canary,
	})
	p.MustAdd(Stage{
		Name:    "rollback",
		Needs:   []string{"canary"},
		Execute: b.rollback,
	})
	p.MustAdd(Stage{Name: "release", Needs: []string{"rollback"}, Execute: RunFor(releaseTime, nil)})
	return p, nil
}

// deploy sizes one function per offloaded component and deploys it.
func (b *Build) deploy(px *Exec) (*Manifest, error) {
	pv, ok := px.Ctx.Get(KeyPartition)
	if !ok {
		return nil, fmt.Errorf("cicd: deploy without partition artefact")
	}
	res := pv.(partition.Result)
	ev, _ := px.Ctx.Get(KeyEstimated)
	est := ev.(*callgraph.Graph)
	cv, _ := px.Ctx.Get(KeyCatalog)
	cat := cv.(*profile.Catalog)

	allocator := alloc.New(b.Platform.Config())
	manifest := &Manifest{App: b.App.Name(), Remote: res.Remote(est)}
	for _, compName := range manifest.Remote {
		prof, ok := cat.Lookup(compName)
		if !ok {
			return nil, fmt.Errorf("cicd: no profile for component %q", compName)
		}
		id, _ := est.Lookup(compName)
		comp := est.Component(id)
		dec, err := allocator.Choose(alloc.Request{
			Cycles:           prof.MeanCycles,
			ParallelFraction: comp.ParallelFraction,
			MemoryFloorBytes: comp.MemoryBytes,
			ColdStartProb:    1,
		})
		if err != nil {
			return nil, fmt.Errorf("cicd: sizing %s: %w", compName, err)
		}
		fnName := b.App.Name() + "-" + compName
		if _, err := b.Platform.Deploy(serverless.FunctionConfig{
			Name:        fnName,
			MemoryBytes: dec.MemoryBytes,
		}); err != nil {
			return nil, fmt.Errorf("cicd: deploying %s: %w", fnName, err)
		}
		manifest.Functions = append(manifest.Functions, FunctionSpec{
			Name: fnName, Component: compName, MemoryBytes: dec.MemoryBytes,
		})
	}
	return manifest, nil
}

// canary sends synthetic invocations through every deployed function and
// compares observed mean execution time against the allocator expectation.
func (b *Build) canary(px *Exec, done func(error)) {
	if b.Canary.Invocations <= 0 {
		px.Ctx.Set(KeyCanary, CanaryResult{Passed: true})
		px.Eng.After(0, func() { done(nil) })
		return
	}
	mv, ok := px.Ctx.Get(KeyManifest)
	if !ok {
		px.Eng.After(0, func() { done(fmt.Errorf("cicd: canary without manifest")) })
		return
	}
	manifest := mv.(*Manifest)
	if len(manifest.Functions) == 0 {
		px.Ctx.Set(KeyCanary, CanaryResult{Passed: true})
		px.Eng.After(0, func() { done(nil) })
		return
	}
	ev, _ := px.Ctx.Get(KeyEstimated)
	est := ev.(*callgraph.Graph)

	factor := b.Canary.SLOFactor
	if factor <= 0 {
		factor = 2
	}

	type probe struct {
		fn   *serverless.Function
		task model.Task
		exp  float64
	}
	var probes []probe
	expectedSum := 0.0
	for _, spec := range manifest.Functions {
		fn := b.Platform.Function(spec.Name)
		if fn == nil {
			px.Eng.After(0, func() { done(fmt.Errorf("cicd: canary: function %s missing", spec.Name)) })
			return
		}
		id, okc := est.Lookup(spec.Component)
		if !okc {
			px.Eng.After(0, func() { done(fmt.Errorf("cicd: canary: component %s missing", spec.Component)) })
			return
		}
		comp := est.Component(id)
		trueCycles := comp.Cycles * (1 + b.InjectRegression)
		task := model.Task{
			App:              manifest.App,
			Component:        comp.Name,
			Cycles:           trueCycles,
			MemoryBytes:      comp.MemoryBytes,
			ParallelFraction: comp.ParallelFraction,
		}
		expTask := task
		expTask.Cycles = comp.Cycles
		exp := float64(b.Platform.Config().ExecTime(&expTask, spec.MemoryBytes))
		probes = append(probes, probe{fn: fn, task: task, exp: exp})
		expectedSum += exp
	}

	total := len(probes) * b.Canary.Invocations
	finished := 0
	execSum := 0.0
	for _, pr := range probes {
		pr := pr
		for i := 0; i < b.Canary.Invocations; i++ {
			task := pr.task
			pr.fn.Execute(&task, func(rep model.ExecReport) {
				execSum += float64(rep.Duration()) - float64(rep.ColdStart)
				finished++
				if finished < total {
					return
				}
				meanExec := execSum / float64(total)
				meanExpected := expectedSum / float64(len(probes))
				result := CanaryResult{
					Invocations: total,
					MeanExecS:   meanExec,
					ExpectedS:   meanExpected,
					Passed:      meanExec <= factor*meanExpected,
				}
				px.Ctx.Set(KeyCanary, result)
				done(nil)
			})
		}
	}
}

// rollback restores the previous manifest when the canary failed; it is a
// fast no-op otherwise. A performed rollback fails the stage with
// ErrRolledBack so the release stage is skipped.
func (b *Build) rollback(px *Exec, done func(error)) {
	cv, ok := px.Ctx.Get(KeyCanary)
	if !ok {
		px.Eng.After(0, func() { done(fmt.Errorf("cicd: rollback without canary result")) })
		return
	}
	if cv.(CanaryResult).Passed {
		px.Eng.After(0, func() { done(nil) })
		return
	}
	px.Eng.After(rollbackTime, func() {
		px.Ctx.Set(KeyRolledBck, true)
		if b.Previous != nil {
			for _, spec := range b.Previous.Functions {
				if _, err := b.Platform.Deploy(serverless.FunctionConfig{
					Name:        spec.Name,
					MemoryBytes: spec.MemoryBytes,
				}); err != nil {
					done(fmt.Errorf("cicd: restoring %s: %w", spec.Name, err))
					return
				}
			}
		}
		done(ErrRolledBack)
	})
}
