package cicd

import (
	"errors"
	"strings"
	"testing"

	"offload/internal/callgraph"
	"offload/internal/model"
	"offload/internal/partition"
	"offload/internal/profile"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

func testPlatform(eng *sim.Engine) *serverless.Platform {
	return serverless.NewPlatform(eng, rng.New(1), serverless.Config{
		Name:       "ci-faas",
		MinMemory:  128 * model.MB,
		MaxMemory:  8192 * model.MB,
		MemoryStep: 64 * model.MB,
		BaselineHz: 2.5e9, FullShareBytes: 1769 * model.MB, MaxShare: 6,
		ColdStart:        serverless.ColdStartModel{MedianSec: 0.3, Sigma: 0},
		KeepAlive:        420,
		ConcurrencyLimit: 1000,
		Price: serverless.PriceTable{
			PerRequestUSD: 2e-7, PerGBSecondUSD: 1.6667e-5,
			Granularity: 0.001, MinBilled: 0.001,
		},
		PressureKneeRatio: 2, PressurePenalty: 1.5,
	})
}

func testCostModel() partition.CostModel {
	return partition.CostModel{
		LocalHz: 2e9, RemoteHz: 2.5e9,
		BandwidthBps: 50e6, RTTSeconds: 0.05,
		USDPerRemoteSecond: 3e-5,
		EnergyJPerCycle:    1e-9, RadioJPerByte: 1e-7,
		LatencyWeight: 1, EnergyWeight: 0.5, MoneyWeight: 100,
	}
}

func runBuild(t *testing.T, b *Build) Report {
	t.Helper()
	p, err := b.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	eng := b.engine(t)
	var rep Report
	p.Run(eng, NewContext(), func(r Report) { rep = r })
	eng.Run()
	return rep
}

// engine returns the engine the build's platform lives on, or a fresh one
// for vanilla builds.
func (b *Build) engine(t *testing.T) *sim.Engine {
	t.Helper()
	if b.Platform != nil {
		return platformEngine(b.Platform)
	}
	return sim.NewEngine()
}

// platformEngine exposes the engine a test platform was created on.
var engines = map[*serverless.Platform]*sim.Engine{}

func newTestBuild(t *testing.T) *Build {
	t.Helper()
	eng := sim.NewEngine()
	platform := testPlatform(eng)
	engines[platform] = eng
	return &Build{
		App:         callgraph.ReportGen(),
		Platform:    platform,
		Meter:       profile.NewMeter(rng.New(2), 0.05),
		Cost:        testCostModel(),
		ProfileRuns: 10,
		Canary:      CanarySpec{Invocations: 3, SLOFactor: 2},
		WithOffload: true,
	}
}

func platformEngine(p *serverless.Platform) *sim.Engine { return engines[p] }

func TestVanillaPipelineStages(t *testing.T) {
	b := &Build{App: callgraph.ReportGen()}
	rep := runBuild(t, b)
	if !rep.Succeeded() {
		t.Fatalf("vanilla pipeline failed: %+v", rep.Results)
	}
	want := []string{"checkout", "build", "unit-test", "package", "deploy", "release"}
	if len(rep.Results) != len(want) {
		t.Fatalf("stages = %d, want %d", len(rep.Results), len(want))
	}
	for i, name := range want {
		if rep.Results[i].Name != name {
			t.Fatalf("stage %d = %s, want %s", i, rep.Results[i].Name, name)
		}
	}
}

func TestOffloadPipelineProducesArtifactsAndDeploys(t *testing.T) {
	b := newTestBuild(t)
	p, err := b.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	eng := platformEngine(b.Platform)
	ctx := NewContext()
	var rep Report
	p.Run(eng, ctx, func(r Report) { rep = r })
	eng.Run()

	if !rep.Succeeded() {
		t.Fatalf("offload pipeline failed: %+v", rep.Results)
	}
	mv, ok := ctx.Get(KeyManifest)
	if !ok {
		t.Fatal("no manifest artefact")
	}
	manifest := mv.(*Manifest)
	if manifest.App != "report-gen" || len(manifest.Functions) == 0 {
		t.Fatalf("manifest = %+v", manifest)
	}
	for _, spec := range manifest.Functions {
		if b.Platform.Function(spec.Name) == nil {
			t.Errorf("manifest function %s not deployed", spec.Name)
		}
		if !strings.HasPrefix(spec.Name, "report-gen-") {
			t.Errorf("function name %s not namespaced", spec.Name)
		}
	}
	cv, ok := ctx.Get(KeyCanary)
	if !ok {
		t.Fatal("no canary artefact")
	}
	if !cv.(CanaryResult).Passed {
		t.Fatalf("canary failed without regression: %+v", cv)
	}
	// The offloaded components must carry the heavy aggregate stage.
	joined := strings.Join(manifest.Remote, ",")
	if !strings.Contains(joined, "aggregate") {
		t.Errorf("partition did not offload aggregate: %v", manifest.Remote)
	}
}

func TestOffloadPipelineOverheadVsVanilla(t *testing.T) {
	van := &Build{App: callgraph.ReportGen()}
	vanRep := runBuild(t, van)

	off := newTestBuild(t)
	offRep := runBuild(t, off)
	if !vanRep.Succeeded() || !offRep.Succeeded() {
		t.Fatal("pipelines failed")
	}
	if offRep.Duration() <= vanRep.Duration() {
		t.Fatalf("offload pipeline (%v) not slower than vanilla (%v)",
			offRep.Duration(), vanRep.Duration())
	}
	// Profiling runs concurrently with unit tests, so overhead must be far
	// below the naive sum of the added stages.
	overhead := float64(offRep.Duration()-vanRep.Duration()) / float64(vanRep.Duration())
	if overhead > 1.0 {
		t.Fatalf("offload overhead %.0f%% implausibly high", overhead*100)
	}
}

func TestCanaryRegressionTriggersRollback(t *testing.T) {
	// First, a healthy run whose manifest becomes the rollback target.
	healthy := newTestBuild(t)
	healthyRep := runBuild(t, healthy)
	if !healthyRep.Succeeded() {
		t.Fatal("healthy run failed")
	}

	// Second build on the same platform with an injected 5x regression.
	eng := platformEngine(healthy.Platform)
	prev := &Manifest{App: "report-gen"}
	regressed := &Build{
		App:              callgraph.ReportGen(),
		Platform:         healthy.Platform,
		Meter:            profile.NewMeter(rng.New(3), 0.05),
		Cost:             testCostModel(),
		ProfileRuns:      10,
		Canary:           CanarySpec{Invocations: 3, SLOFactor: 2},
		Previous:         prev,
		InjectRegression: 5,
		WithOffload:      true,
	}
	p, err := regressed.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	var rep Report
	p.Run(eng, ctx, func(r Report) { rep = r })
	eng.Run()

	if rep.Succeeded() {
		t.Fatal("regressed deploy succeeded")
	}
	rb, _ := rep.Stage("rollback")
	if !errors.Is(rb.Err, ErrRolledBack) {
		t.Fatalf("rollback.Err = %v, want ErrRolledBack", rb.Err)
	}
	release, _ := rep.Stage("release")
	if !release.Skipped {
		t.Fatal("release ran after rollback")
	}
	if v, ok := ctx.Get(KeyRolledBck); !ok || v.(bool) != true {
		t.Fatal("rollback artefact missing")
	}
	cv, _ := ctx.Get(KeyCanary)
	if cv.(CanaryResult).Passed {
		t.Fatal("canary passed despite 5x regression")
	}
}

func TestIncrementalProfilingShortensPipeline(t *testing.T) {
	first := newTestBuild(t)
	firstRep := runBuild(t, first)
	if !firstRep.Succeeded() {
		t.Fatal("first run failed")
	}
	fullProfile, _ := firstRep.Stage("profile")

	// Re-run with a cache and a single changed component: the profile
	// stage should take ~1/5 of the time.
	cached := newTestBuild(t)
	// Build the cache against the SAME graph the cached build profiles.
	cat, err := profile.BuildCatalog(cached.App, cached.Meter, cached.ProfileRuns)
	if err != nil {
		t.Fatal(err)
	}
	cached.ProfileCache = cat
	cached.Changed = []string{"aggregate"}
	cachedRep := runBuild(t, cached)
	if !cachedRep.Succeeded() {
		t.Fatalf("cached run failed: %+v", cachedRep.Results)
	}
	incProfile, _ := cachedRep.Stage("profile")
	if incProfile.Duration() >= fullProfile.Duration()/2 {
		t.Fatalf("incremental profile (%v) not much shorter than full (%v)",
			incProfile.Duration(), fullProfile.Duration())
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		App:    "x",
		Remote: []string{"a", "b"},
		Functions: []FunctionSpec{
			{Name: "x-a", Component: "a", MemoryBytes: 512 * model.MB},
		},
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != m.App || len(back.Functions) != 1 || back.Functions[0] != m.Functions[0] {
		t.Fatalf("round trip changed manifest: %+v", back)
	}
	if _, err := DecodeManifest([]byte("{}")); err == nil {
		t.Fatal("manifest without app accepted")
	}
	if _, err := DecodeManifest([]byte("{bad")); err == nil {
		t.Fatal("malformed manifest accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := (&Build{}).Pipeline(); err == nil {
		t.Error("build without app accepted")
	}
	if _, err := (&Build{App: callgraph.ReportGen(), WithOffload: true}).Pipeline(); err == nil {
		t.Error("offload build without platform accepted")
	}
	eng := sim.NewEngine()
	b := &Build{App: callgraph.ReportGen(), WithOffload: true, Platform: testPlatform(eng)}
	if _, err := b.Pipeline(); err == nil {
		t.Error("offload build with zero cost model accepted")
	}
}
