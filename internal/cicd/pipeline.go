// Package cicd integrates computational offloading into a modern software
// deployment process — the paper's second originality claim. It provides a
// stage-DAG pipeline engine running on the simulation clock, plus the
// offloading-specific stages: profiling the application, partitioning it,
// allocating serverless resources, deploying the partitions, canary
// verification against an SLO, and automatic rollback.
package cicd

import (
	"fmt"
	"sort"

	"offload/internal/sim"
)

// Context carries artefacts between stages. Stages read what upstream
// stages produced and attach their own outputs under well-known keys.
type Context struct {
	values map[string]any
}

// NewContext returns an empty context.
func NewContext() *Context {
	return &Context{values: make(map[string]any)}
}

// Set stores an artefact.
func (c *Context) Set(key string, v any) { c.values[key] = v }

// Get retrieves an artefact.
func (c *Context) Get(key string) (any, bool) {
	v, ok := c.values[key]
	return v, ok
}

// Exec is what a running stage sees: the engine (for virtual time and
// substrate access) and the shared context.
type Exec struct {
	Eng *sim.Engine
	Ctx *Context
}

// Stage is one pipeline step. Execute starts at the engine's current time
// and must call done exactly once, from the simulation loop.
type Stage struct {
	Name    string
	Needs   []string
	Execute func(px *Exec, done func(error))
}

// RunFor wraps a synchronous body into an Execute that takes d of virtual
// time: the standard shape for build/test/package stages.
func RunFor(d sim.Duration, body func(px *Exec) error) func(*Exec, func(error)) {
	return func(px *Exec, done func(error)) {
		px.Eng.After(d, func() {
			if body == nil {
				done(nil)
				return
			}
			done(body(px))
		})
	}
}

// Pipeline is a DAG of stages.
type Pipeline struct {
	name   string
	stages []Stage
	byName map[string]int
}

// NewPipeline returns an empty pipeline.
func NewPipeline(name string) *Pipeline {
	return &Pipeline{name: name, byName: make(map[string]int)}
}

// Name returns the pipeline name.
func (p *Pipeline) Name() string { return p.name }

// Add appends a stage. Dependencies must already be present, which keeps
// the DAG acyclic by construction.
func (p *Pipeline) Add(s Stage) error {
	if s.Name == "" {
		return fmt.Errorf("cicd: %s: stage with empty name", p.name)
	}
	if _, dup := p.byName[s.Name]; dup {
		return fmt.Errorf("cicd: %s: duplicate stage %q", p.name, s.Name)
	}
	if s.Execute == nil {
		return fmt.Errorf("cicd: %s: stage %q has no Execute", p.name, s.Name)
	}
	for _, need := range s.Needs {
		if _, ok := p.byName[need]; !ok {
			return fmt.Errorf("cicd: %s: stage %q needs unknown stage %q", p.name, s.Name, need)
		}
	}
	p.byName[s.Name] = len(p.stages)
	p.stages = append(p.stages, s)
	return nil
}

// MustAdd is Add that panics on error, for static pipeline definitions.
func (p *Pipeline) MustAdd(s Stage) {
	if err := p.Add(s); err != nil {
		panic(err)
	}
}

// Stages returns the stage names in insertion order.
func (p *Pipeline) Stages() []string {
	out := make([]string, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.Name
	}
	return out
}

// StageResult reports one stage execution.
type StageResult struct {
	Name       string
	Start, End sim.Time
	Err        error
	Skipped    bool // upstream failure prevented the stage from running
}

// Duration returns the stage's wall time; zero for skipped stages.
func (r StageResult) Duration() sim.Duration {
	if r.Skipped {
		return 0
	}
	return r.End.Sub(r.Start)
}

// Report is the outcome of one pipeline run.
type Report struct {
	Pipeline   string
	Start, End sim.Time
	Results    []StageResult
}

// Succeeded reports whether every stage ran without error.
func (r Report) Succeeded() bool {
	for _, res := range r.Results {
		if res.Err != nil || res.Skipped {
			return false
		}
	}
	return true
}

// Duration returns the pipeline's end-to-end wall time.
func (r Report) Duration() sim.Duration { return r.End.Sub(r.Start) }

// Stage returns the named result.
func (r Report) Stage(name string) (StageResult, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return StageResult{}, false
}

// Run executes the pipeline on eng, invoking done with the report once
// every stage finished, failed, or was skipped. Independent stages run
// concurrently in virtual time.
func (p *Pipeline) Run(eng *sim.Engine, ctx *Context, done func(Report)) {
	if done == nil {
		panic("cicd: Run with nil done")
	}
	report := Report{Pipeline: p.name, Start: eng.Now()}
	results := make(map[string]*StageResult, len(p.stages))

	pendingDeps := make(map[string]int, len(p.stages))
	dependents := make(map[string][]string)
	for _, s := range p.stages {
		pendingDeps[s.Name] = len(s.Needs)
		for _, need := range s.Needs {
			dependents[need] = append(dependents[need], s.Name)
		}
	}

	remaining := len(p.stages)
	finished := false
	finishRun := func() {
		if finished {
			return
		}
		finished = true
		report.End = eng.Now()
		// Report results in pipeline definition order.
		for _, s := range p.stages {
			report.Results = append(report.Results, *results[s.Name])
		}
		done(report)
	}
	if remaining == 0 {
		eng.After(0, finishRun)
		return
	}

	var completeStage func(name string, err error)
	startStage := func(name string) {
		if _, seen := results[name]; seen {
			return // already skipped via another failed dependency
		}
		s := p.stages[p.byName[name]]
		res := &StageResult{Name: name, Start: eng.Now()}
		results[name] = res
		called := false
		s.Execute(&Exec{Eng: eng, Ctx: ctx}, func(err error) {
			if called {
				panic(fmt.Sprintf("cicd: stage %q completed twice", name))
			}
			called = true
			completeStage(name, err)
		})
	}
	var skipStage func(name string)
	skipStage = func(name string) {
		if _, started := results[name]; started {
			return
		}
		results[name] = &StageResult{Name: name, Start: eng.Now(), End: eng.Now(), Skipped: true}
		remaining--
		for _, dep := range dependents[name] {
			skipStage(dep)
		}
		if remaining == 0 {
			finishRun()
		}
	}
	completeStage = func(name string, err error) {
		res := results[name]
		res.End = eng.Now()
		res.Err = err
		remaining--
		// Deterministic downstream ordering.
		deps := append([]string(nil), dependents[name]...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err != nil {
				skipStage(dep)
				continue
			}
			pendingDeps[dep]--
			if pendingDeps[dep] == 0 {
				startStage(dep)
			}
		}
		if remaining == 0 {
			finishRun()
		}
	}

	// Kick off the roots.
	for _, s := range p.stages {
		if len(s.Needs) == 0 {
			startStage(s.Name)
		}
	}
}
