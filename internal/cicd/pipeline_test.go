package cicd

import (
	"errors"
	"math"
	"testing"

	"offload/internal/sim"
)

func TestLinearPipelineTiming(t *testing.T) {
	p := NewPipeline("linear")
	p.MustAdd(Stage{Name: "a", Execute: RunFor(10, nil)})
	p.MustAdd(Stage{Name: "b", Needs: []string{"a"}, Execute: RunFor(20, nil)})
	p.MustAdd(Stage{Name: "c", Needs: []string{"b"}, Execute: RunFor(5, nil)})
	eng := sim.NewEngine()
	var rep Report
	p.Run(eng, NewContext(), func(r Report) { rep = r })
	eng.Run()
	if !rep.Succeeded() {
		t.Fatalf("pipeline failed: %+v", rep.Results)
	}
	if math.Abs(float64(rep.Duration())-35) > 1e-9 {
		t.Fatalf("Duration = %v, want 35", rep.Duration())
	}
	b, _ := rep.Stage("b")
	if b.Start != 10 || b.End != 30 {
		t.Fatalf("stage b at [%v, %v], want [10, 30]", b.Start, b.End)
	}
}

func TestParallelStagesOverlap(t *testing.T) {
	p := NewPipeline("diamond")
	p.MustAdd(Stage{Name: "root", Execute: RunFor(5, nil)})
	p.MustAdd(Stage{Name: "left", Needs: []string{"root"}, Execute: RunFor(30, nil)})
	p.MustAdd(Stage{Name: "right", Needs: []string{"root"}, Execute: RunFor(10, nil)})
	p.MustAdd(Stage{Name: "join", Needs: []string{"left", "right"}, Execute: RunFor(5, nil)})
	eng := sim.NewEngine()
	var rep Report
	p.Run(eng, NewContext(), func(r Report) { rep = r })
	eng.Run()
	// 5 + max(30, 10) + 5 = 40, not 50.
	if math.Abs(float64(rep.Duration())-40) > 1e-9 {
		t.Fatalf("Duration = %v, want 40 (parallel branches)", rep.Duration())
	}
	if !rep.Succeeded() {
		t.Fatal("diamond failed")
	}
}

func TestFailureSkipsDownstream(t *testing.T) {
	boom := errors.New("boom")
	p := NewPipeline("failing")
	p.MustAdd(Stage{Name: "ok", Execute: RunFor(1, nil)})
	p.MustAdd(Stage{Name: "bad", Needs: []string{"ok"}, Execute: RunFor(1, func(*Exec) error { return boom })})
	p.MustAdd(Stage{Name: "after", Needs: []string{"bad"}, Execute: RunFor(1, nil)})
	p.MustAdd(Stage{Name: "sibling", Needs: []string{"ok"}, Execute: RunFor(1, nil)})
	eng := sim.NewEngine()
	var rep Report
	p.Run(eng, NewContext(), func(r Report) { rep = r })
	eng.Run()
	if rep.Succeeded() {
		t.Fatal("failed pipeline reported success")
	}
	bad, _ := rep.Stage("bad")
	if !errors.Is(bad.Err, boom) {
		t.Fatalf("bad.Err = %v", bad.Err)
	}
	after, _ := rep.Stage("after")
	if !after.Skipped {
		t.Fatal("downstream of failure not skipped")
	}
	sibling, _ := rep.Stage("sibling")
	if sibling.Skipped || sibling.Err != nil {
		t.Fatal("unrelated sibling was affected by the failure")
	}
}

func TestMultiDependencySkipOnlyOnce(t *testing.T) {
	boom := errors.New("boom")
	p := NewPipeline("multi")
	p.MustAdd(Stage{Name: "f1", Execute: RunFor(1, func(*Exec) error { return boom })})
	p.MustAdd(Stage{Name: "f2", Execute: RunFor(2, nil)})
	p.MustAdd(Stage{Name: "join", Needs: []string{"f1", "f2"}, Execute: RunFor(1, nil)})
	eng := sim.NewEngine()
	var rep Report
	p.Run(eng, NewContext(), func(r Report) { rep = r })
	eng.Run()
	join, _ := rep.Stage("join")
	if !join.Skipped {
		t.Fatal("join ran despite a failed dependency")
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results", len(rep.Results))
	}
}

func TestDoneInvokedExactlyOnceWhenTailIsSkipped(t *testing.T) {
	// A failure whose skip cascade drains the pipeline used to call done
	// twice (once from the cascade, once from the failing stage's own
	// completion path); the report then contained every stage twice.
	boom := errors.New("boom")
	p := NewPipeline("tail-skip")
	p.MustAdd(Stage{Name: "a", Execute: RunFor(1, nil)})
	p.MustAdd(Stage{Name: "bad", Needs: []string{"a"}, Execute: RunFor(1, func(*Exec) error { return boom })})
	p.MustAdd(Stage{Name: "tail", Needs: []string{"bad"}, Execute: RunFor(1, nil)})
	eng := sim.NewEngine()
	calls := 0
	var rep Report
	p.Run(eng, NewContext(), func(r Report) {
		calls++
		rep = r
	})
	eng.Run()
	if calls != 1 {
		t.Fatalf("done invoked %d times", calls)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("report has %d stage results, want 3", len(rep.Results))
	}
}

func TestAddValidation(t *testing.T) {
	p := NewPipeline("v")
	if err := p.Add(Stage{Name: "", Execute: RunFor(1, nil)}); err == nil {
		t.Error("empty name accepted")
	}
	if err := p.Add(Stage{Name: "x"}); err == nil {
		t.Error("nil Execute accepted")
	}
	if err := p.Add(Stage{Name: "y", Needs: []string{"nope"}, Execute: RunFor(1, nil)}); err == nil {
		t.Error("unknown dependency accepted")
	}
	if err := p.Add(Stage{Name: "a", Execute: RunFor(1, nil)}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Stage{Name: "a", Execute: RunFor(1, nil)}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestEmptyPipelineCompletes(t *testing.T) {
	p := NewPipeline("empty")
	eng := sim.NewEngine()
	ran := false
	p.Run(eng, NewContext(), func(r Report) {
		ran = true
		if !r.Succeeded() {
			t.Error("empty pipeline failed")
		}
	})
	eng.Run()
	if !ran {
		t.Fatal("done never invoked")
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := NewContext()
	if _, ok := ctx.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	ctx.Set("k", 42)
	v, ok := ctx.Get("k")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
}

func TestStageArtifactsFlow(t *testing.T) {
	p := NewPipeline("artifacts")
	p.MustAdd(Stage{Name: "produce", Execute: RunFor(1, func(px *Exec) error {
		px.Ctx.Set("artifact", "hello")
		return nil
	})})
	p.MustAdd(Stage{Name: "consume", Needs: []string{"produce"}, Execute: RunFor(1, func(px *Exec) error {
		v, ok := px.Ctx.Get("artifact")
		if !ok || v.(string) != "hello" {
			return errors.New("artifact missing")
		}
		return nil
	})})
	eng := sim.NewEngine()
	var rep Report
	p.Run(eng, NewContext(), func(r Report) { rep = r })
	eng.Run()
	if !rep.Succeeded() {
		t.Fatalf("artifact flow failed: %+v", rep.Results)
	}
}
