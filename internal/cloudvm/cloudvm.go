// Package cloudvm models the always-on IaaS comparator: a fleet of cloud
// virtual machines billed by the hour whether busy or idle. It exists for
// the cost-crossover analysis — serverless wins at low or bursty
// utilisation, reserved VMs win under sustained load — and as an optional
// execution target without cold starts.
//
// An optional autoscaler grows and shrinks the fleet between Min and Max
// instances based on demand, with a boot delay, which is the realistic
// middle ground between the two billing extremes.
package cloudvm

import (
	"fmt"

	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/sim"
)

// ErrTransient is an injected infrastructure failure (a preempted or
// crashed instance). It wraps model.ErrTransient, so callers classify it
// with model.Transient and should retry.
var ErrTransient = fmt.Errorf("cloudvm: transient execution failure: %w", model.ErrTransient)

// Config describes a VM fleet.
type Config struct {
	Name  string
	Cores int     // cores per instance
	CPUHz float64 // cycles per second per core

	HourlyCostUSD float64 // price of one instance per hour

	// MinInstances are always on. If MaxInstances > MinInstances the fleet
	// autoscales up to that bound when the queue is non-empty.
	MinInstances int
	MaxInstances int

	// BootDelay is how long a newly requested instance takes to join.
	BootDelay sim.Duration

	// IdleShutdownAfter retires a scaled-up instance that has been idle
	// this long. Zero keeps scaled-up instances forever.
	IdleShutdownAfter sim.Duration
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.CPUHz <= 0:
		return fmt.Errorf("cloudvm: %s: cores and CPUHz must be positive", c.Name)
	case c.HourlyCostUSD < 0:
		return fmt.Errorf("cloudvm: %s: negative hourly cost", c.Name)
	case c.MinInstances < 0:
		return fmt.Errorf("cloudvm: %s: negative min instances", c.Name)
	case c.MaxInstances < c.MinInstances:
		return fmt.Errorf("cloudvm: %s: max instances below min", c.Name)
	case c.MaxInstances == 0:
		return fmt.Errorf("cloudvm: %s: fleet bound is zero", c.Name)
	case c.BootDelay < 0 || c.IdleShutdownAfter < 0:
		return fmt.Errorf("cloudvm: %s: negative delay", c.Name)
	}
	return nil
}

// C5Large returns a fixed single general-purpose instance: 2 cores at
// 3 GHz, $0.085/hour.
func C5Large() Config {
	return Config{
		Name:          "c5-large",
		Cores:         2,
		CPUHz:         3 * model.GHz,
		HourlyCostUSD: 0.085,
		MinInstances:  1,
		MaxInstances:  1,
	}
}

// Autoscaled returns an elastic fleet of up to eight such instances with a
// 60-second boot delay and 5-minute idle shutdown.
func Autoscaled() Config {
	cfg := C5Large()
	cfg.Name = "c5-autoscaled"
	cfg.MinInstances = 1
	cfg.MaxInstances = 8
	cfg.BootDelay = 60
	cfg.IdleShutdownAfter = 300
	return cfg
}

// Fleet is a live VM fleet bound to a simulation engine. It implements
// model.Executor.
type Fleet struct {
	eng *sim.Engine
	cfg Config
	inj fault.Injector

	instances []*instance
	waiting   []*pending

	booting       int
	executed      uint64
	faulted       uint64
	instanceHours float64 // accrued at retirement; live instances added on demand
}

type instance struct {
	started   sim.Time
	busy      int
	retired   bool
	retiredAt sim.Time
	idleEv    sim.EventRef
	scaledUp  bool // true if beyond MinInstances (eligible for shutdown)
}

type pending struct {
	task *model.Task
	done func(model.ExecReport)
	at   sim.Time
}

var _ model.Executor = (*Fleet)(nil)

// New returns a Fleet on eng with MinInstances already booted. It panics on
// invalid configuration.
func New(eng *sim.Engine, cfg Config) *Fleet {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	f := &Fleet{eng: eng, cfg: cfg}
	for i := 0; i < cfg.MinInstances; i++ {
		f.instances = append(f.instances, &instance{started: eng.Now()})
	}
	return f
}

// Name returns the fleet name.
func (f *Fleet) Name() string { return f.cfg.Name }

// Placement returns model.PlaceVM.
func (f *Fleet) Placement() model.Placement { return model.PlaceVM }

// Config returns the fleet configuration.
func (f *Fleet) Config() Config { return f.cfg }

// SetFaultInjector installs a fault model on the fleet. A nil injector
// disables fault injection.
func (f *Fleet) SetFaultInjector(inj fault.Injector) { f.inj = inj }

// FaultInjector returns the installed fault model, or nil.
func (f *Fleet) FaultInjector() fault.Injector { return f.inj }

// ExecTime returns the task's single-core run time on this hardware.
func (f *Fleet) ExecTime(task *model.Task) sim.Duration {
	return sim.Duration(task.Cycles / f.cfg.CPUHz)
}

// Instances returns the number of live (non-retired) instances.
func (f *Fleet) Instances() int {
	n := 0
	for _, in := range f.instances {
		if !in.retired {
			n++
		}
	}
	return n
}

// BusyCores returns cores executing a task right now across live
// instances.
func (f *Fleet) BusyCores() int {
	n := 0
	for _, in := range f.instances {
		if !in.retired {
			n += in.busy
		}
	}
	return n
}

// Execute runs the task on a free core; if the fleet is saturated and can
// scale, a new instance boots. Per-task marginal cost is zero; the fleet
// accrues instance-hours instead.
func (f *Fleet) Execute(task *model.Task, done func(model.ExecReport)) {
	if done == nil {
		panic("cloudvm: Execute with nil callback")
	}
	p := &pending{task: task, done: done, at: f.eng.Now()}
	if in := f.freeInstance(); in != nil {
		f.runOn(in, p)
		return
	}
	f.waiting = append(f.waiting, p)
	f.maybeScaleUp()
}

func (f *Fleet) freeInstance() *instance {
	for _, in := range f.instances {
		if !in.retired && in.busy < f.cfg.Cores {
			return in
		}
	}
	return nil
}

func (f *Fleet) maybeScaleUp() {
	live := f.Instances() + f.booting
	if live >= f.cfg.MaxInstances || len(f.waiting) == 0 {
		return
	}
	f.booting++
	f.eng.After(f.cfg.BootDelay, func() {
		f.booting--
		in := &instance{started: f.eng.Now(), scaledUp: true}
		f.instances = append(f.instances, in)
		f.drainTo(in)
		f.armIdleShutdown(in)
		// More queued work than one instance's cores? Keep scaling.
		f.maybeScaleUp()
	})
}

func (f *Fleet) runOn(in *instance, p *pending) {
	in.busy++
	f.eng.Cancel(in.idleEv)
	in.idleEv = sim.EventRef{}
	start := p.at
	exec := f.ExecTime(p.task)
	// Fault model: a crash occupies the core for CrashFrac of the run and
	// reports a transient error; a straggler occupies it Slowdown× longer.
	dec := fault.Decision{Slowdown: 1}
	if f.inj != nil {
		dec = f.inj.Decide(f.eng.Now())
	}
	if dec.Slowdown > 1 {
		exec = sim.Duration(float64(exec) * dec.Slowdown)
	}
	if dec.Crash {
		exec = sim.Duration(float64(exec) * dec.CrashFrac)
	}
	f.eng.After(exec, func() {
		in.busy--
		rep := model.ExecReport{
			Start:     start,
			End:       f.eng.Now(),
			QueueWait: f.eng.Now().Sub(start) - exec,
		}
		if dec.Crash {
			f.faulted++
			rep.Err = ErrTransient
		} else {
			f.executed++
		}
		p.done(rep)
		f.drainTo(in)
		f.armIdleShutdown(in)
	})
}

func (f *Fleet) drainTo(in *instance) {
	for !in.retired && in.busy < f.cfg.Cores && len(f.waiting) > 0 {
		p := f.waiting[0]
		f.waiting = f.waiting[1:]
		f.runOn(in, p)
	}
}

func (f *Fleet) armIdleShutdown(in *instance) {
	if !in.scaledUp || in.retired || in.busy > 0 || f.cfg.IdleShutdownAfter == 0 {
		return
	}
	f.eng.Cancel(in.idleEv)
	in.idleEv = f.eng.After(f.cfg.IdleShutdownAfter, func() {
		if in.busy == 0 && !in.retired {
			in.retired = true
			in.retiredAt = f.eng.Now()
			f.instanceHours += float64(f.eng.Now().Sub(in.started)) / 3600
		}
	})
}

// AccruedCostUSD returns the money spent on instance-hours from the start
// of the simulation to now, including live instances.
func (f *Fleet) AccruedCostUSD() float64 {
	hours := f.instanceHours
	for _, in := range f.instances {
		if !in.retired {
			hours += float64(f.eng.Now().Sub(in.started)) / 3600
		}
	}
	return hours * f.cfg.HourlyCostUSD
}

// Executed returns how many tasks completed on the fleet.
func (f *Fleet) Executed() uint64 { return f.executed }

// Faulted returns how many tasks died to injected faults.
func (f *Fleet) Faulted() uint64 { return f.faulted }

// QueueLen returns tasks waiting for a core.
func (f *Fleet) QueueLen() int { return len(f.waiting) }
