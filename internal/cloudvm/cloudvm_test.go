package cloudvm

import (
	"math"
	"testing"

	"offload/internal/model"
	"offload/internal/sim"
)

func fixedConfig() Config {
	return Config{
		Name:          "fixed",
		Cores:         2,
		CPUHz:         1e9,
		HourlyCostUSD: 3.6,
		MinInstances:  1,
		MaxInstances:  1,
	}
}

func elasticConfig() Config {
	return Config{
		Name:              "elastic",
		Cores:             1,
		CPUHz:             1e9,
		HourlyCostUSD:     3.6,
		MinInstances:      1,
		MaxInstances:      3,
		BootDelay:         10,
		IdleShutdownAfter: 30,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero cores", func(c *Config) { c.Cores = 0 }, false},
		{"zero cpu", func(c *Config) { c.CPUHz = 0 }, false},
		{"negative cost", func(c *Config) { c.HourlyCostUSD = -1 }, false},
		{"max below min", func(c *Config) { c.MaxInstances = 0; c.MinInstances = 1 }, false},
		{"zero fleet", func(c *Config) { c.MinInstances = 0; c.MaxInstances = 0 }, false},
		{"negative boot", func(c *Config) { c.BootDelay = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := fixedConfig()
			tt.mutate(&cfg)
			if got := cfg.Validate() == nil; got != tt.ok {
				t.Fatalf("Validate ok = %v, want %v (%v)", got, tt.ok, cfg.Validate())
			}
		})
	}
	if err := C5Large().Validate(); err != nil {
		t.Fatalf("C5Large invalid: %v", err)
	}
	if err := Autoscaled().Validate(); err != nil {
		t.Fatalf("Autoscaled invalid: %v", err)
	}
}

func TestFixedFleetExecutes(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, fixedConfig())
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { ends = append(ends, r.End) })
	}
	eng.Run()
	for i, want := range []float64{1, 1, 2, 2} {
		if math.Abs(float64(ends[i])-want) > 1e-9 {
			t.Fatalf("completion %d at %v, want %v", i, ends[i], want)
		}
	}
	if f.Executed() != 4 {
		t.Fatalf("Executed = %d", f.Executed())
	}
}

func TestNoColdStartOnVM(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, fixedConfig())
	var rep model.ExecReport
	f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { rep = r })
	eng.Run()
	if rep.ColdStart != 0 {
		t.Fatalf("VM reported a cold start of %v", rep.ColdStart)
	}
}

func TestAutoscaleUp(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, elasticConfig()) // 1 core per instance, boot 10 s
	// Saturate: 3 long tasks of 100 s each.
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		f.Execute(&model.Task{Cycles: 100e9}, func(r model.ExecReport) { ends = append(ends, r.End) })
	}
	eng.Run()
	// First finishes at 100 on the always-on instance; each queued arrival
	// triggers a boot at t=0, so both extra instances join at 10 and the
	// remaining tasks finish at 110.
	want := []float64{100, 110, 110}
	if len(ends) != 3 {
		t.Fatalf("got %d completions", len(ends))
	}
	for i := range want {
		if math.Abs(float64(ends[i])-want[i]) > 1e-9 {
			t.Fatalf("completion %d at %v, want %v", i, ends[i], want[i])
		}
	}
}

func TestAutoscaleRespectsMax(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, elasticConfig()) // max 3
	for i := 0; i < 10; i++ {
		f.Execute(&model.Task{Cycles: 50e9}, func(model.ExecReport) {})
	}
	eng.RunUntil(40)
	if got := f.Instances(); got > 3 {
		t.Fatalf("fleet grew to %d instances, max is 3", got)
	}
}

func TestIdleShutdownRetiresScaledInstances(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, elasticConfig())
	for i := 0; i < 3; i++ {
		f.Execute(&model.Task{Cycles: 10e9}, func(model.ExecReport) {})
	}
	// All done by ~30; idle shutdown 30 s later retires the 2 scaled-up
	// instances but keeps the minimum.
	eng.RunUntil(500)
	if got := f.Instances(); got != 1 {
		t.Fatalf("Instances = %d after idle period, want 1", got)
	}
}

func TestAccruedCost(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, fixedConfig())
	eng.RunUntil(3600)
	if got := f.AccruedCostUSD(); math.Abs(got-3.6) > 1e-9 {
		t.Fatalf("AccruedCostUSD = %g, want 3.6", got)
	}
}

func TestAccruedCostCountsRetiredInstances(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, elasticConfig())
	for i := 0; i < 2; i++ {
		f.Execute(&model.Task{Cycles: 10e9}, func(model.ExecReport) {})
	}
	eng.RunUntil(3600)
	// Always-on: 1 h. Scaled-up: booted at 10, idle-retired at ~50.
	got := f.AccruedCostUSD()
	wantMin := 3.6 + 3.6*(30.0/3600) // at least boot→retire span
	if got < wantMin {
		t.Fatalf("AccruedCostUSD = %g, want >= %g", got, wantMin)
	}
	if got > 2*3.6 {
		t.Fatalf("AccruedCostUSD = %g, too high (retired instance billed forever?)", got)
	}
}

func TestQueueWaitReported(t *testing.T) {
	eng := sim.NewEngine()
	f := New(eng, fixedConfig()) // 2 cores
	var waits []sim.Duration
	for i := 0; i < 3; i++ {
		f.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { waits = append(waits, r.QueueWait) })
	}
	eng.Run()
	if waits[0] != 0 || waits[1] != 0 {
		t.Fatalf("first two tasks waited: %v", waits)
	}
	if math.Abs(float64(waits[2])-1) > 1e-9 {
		t.Fatalf("third task wait = %v, want 1", waits[2])
	}
}
