// Package core is the framework façade: it assembles the substrates
// (device, networks, edge, serverless, VMs) into a live System driven by a
// placement policy, and provides the offline planning journey — profile →
// partition → allocate → manifest — that cmd/offctl and the CI/CD stages
// expose to developers.
package core

import (
	"fmt"

	"offload/internal/adapt"
	"offload/internal/cloudvm"
	"offload/internal/dag"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/trace"
	"offload/internal/workload"
)

// PolicyName selects a placement policy.
type PolicyName string

// The available policies.
const (
	PolicyLocalOnly     PolicyName = "local-only"
	PolicyEdgeAll       PolicyName = "edge-all"
	PolicyCloudAll      PolicyName = "cloud-all"
	PolicyVMAll         PolicyName = "vm-all"
	PolicyRandom        PolicyName = "random"
	PolicyThreshold     PolicyName = "threshold"
	PolicyDeadlineAware PolicyName = "deadline-aware"
	PolicyBanditUCB     PolicyName = "bandit-ucb"
	PolicyBanditGreedy  PolicyName = "bandit-greedy"
)

// DefaultThresholdCycles is the offloading threshold the "threshold"
// policy uses: 5 Gcycles, a couple of seconds of mid-range-phone work.
const DefaultThresholdCycles = 5e9

// AllPolicies lists the policy names in canonical order.
func AllPolicies() []PolicyName {
	return []PolicyName{
		PolicyLocalOnly, PolicyEdgeAll, PolicyCloudAll,
		PolicyVMAll, PolicyRandom, PolicyThreshold, PolicyDeadlineAware,
		PolicyBanditUCB, PolicyBanditGreedy,
	}
}

// BatchConfig enables delay-tolerant batching of serverless tasks.
type BatchConfig struct {
	Size    int
	MaxWait sim.Duration
}

// Config assembles a complete offloading environment. Nil substrate
// configs leave that substrate out; Device and at least one remote
// substrate are required for offloading policies to differ from local.
type Config struct {
	Seed uint64

	Device device.Config

	Edge     *edge.Config
	EdgePath *network.Config

	Serverless *serverless.Config
	CloudPath  *network.Config

	VM *cloudvm.Config

	Policy PolicyName

	// PredictionNoise perturbs demand predictions (E10 knob). Zero gives
	// the adaptive per-app predictor exact feedback.
	PredictionNoise float64

	// ArrivalRateHint feeds the function pool's cold-start estimate.
	ArrivalRateHint float64

	// RedeployTolerance makes the function pool re-size a deployed
	// function when predicted demand drifts by more than this factor.
	// Zero sizes each function once, from the first prediction.
	RedeployTolerance float64

	// ProvisionedConcurrency pre-warms this many environments per deployed
	// function, trading a capacity fee for zero cold starts.
	ProvisionedConcurrency int

	// Batch, when non-nil, wraps the scheduler in a Batcher.
	Batch *BatchConfig

	// OffPeakShift delays slack-rich serverless tasks into the platform's
	// off-peak pricing window (requires a price schedule on the platform).
	// Mutually exclusive with Batch.
	OffPeakShift bool

	// Retries enables transparent retries of transient infrastructure
	// failures: total attempts per task (values <= 1 disable retries),
	// with exponential backoff starting at RetryBackoff, capped at
	// RetryMaxBackoff (zero leaves it uncapped). RetryJitter draws each
	// delay uniformly from [0, backoff) on a dedicated rng stream.
	Retries         int
	RetryBackoff    sim.Duration
	RetryMaxBackoff sim.Duration
	RetryJitter     bool

	// Fault, EdgeFault and VMFault install composite fault models
	// (correlated outages, scheduled windows, stragglers — see
	// internal/fault) on the serverless platform, the edge site and the
	// VM fleet. A non-nil Fault replaces Serverless.FailureRate.
	Fault     *fault.Config
	EdgeFault *fault.Config
	VMFault   *fault.Config

	// Resilience enables the scheduler's client-side resilience layer:
	// per-attempt timeouts, hedged requests, circuit breakers and
	// fallback execution. See sched.Resilience.
	Resilience *sched.Resilience

	// LocalDVFSMinScale enables per-task DVFS for local executions: tasks
	// run at the slowest frequency (floored here, in (0,1]) that still
	// meets their deadline. Zero disables.
	LocalDVFSMinScale float64

	// DailyBudgetUSD caps serverless spending per virtual day: once spent,
	// serverless-bound tasks fall back to free capacity. Zero disables.
	DailyBudgetUSD float64

	// Adapt configures the online adaptive layer (internal/adapt). For the
	// bandit-ucb / bandit-greedy policies it parameterises the bandit
	// (nil takes adapt.DefaultConfig); for any other policy a non-nil
	// Adapt wraps the policy with the configured memory tuning, drift
	// detection and admission control. The layer is strictly opt-in: a nil
	// Adapt with a non-bandit policy leaves every code path and rng stream
	// exactly as before.
	Adapt *adapt.Config

	// Regions homes each remote substrate in a named region and enables
	// the regional fault/failover machinery. Strictly opt-in: nil leaves
	// every code path and rng stream exactly as before.
	Regions *RegionsConfig

	// DAG enables precedence-aware job submission (SubmitJob /
	// SubmitJobStream) through an internal/dag Orchestrator. Strictly
	// opt-in and randomness-free: nil changes no code path or rng stream.
	// Mutually exclusive with Batch and OffPeakShift, whose wrappers the
	// orchestrator's node dispatches would bypass.
	DAG *DAGConfig

	// ShardCount partitions a fleet-scale run (NewShardedFleet) across
	// this many worker shards advancing in lockstep epochs against a
	// hub engine that owns the shared substrates — see sim.ShardedEngine.
	// 0 and 1 both mean one shard. Results are byte-identical at every
	// shard count: the sharded fleet keys all randomness per UE, never
	// per shard. Ignored by NewSystem and NewFleet, so existing
	// configurations change nothing.
	ShardCount int

	// ShardInterval is the conservative-barrier epoch width in simulated
	// seconds: cross-shard messages (remote executions and their
	// replies) are delivered at the next multiple of it. Zero takes
	// DefaultShardInterval. Smaller intervals tighten the feedback
	// latency quantisation; larger ones amortise barrier overhead.
	ShardInterval sim.Duration
}

// DefaultShardInterval is the ShardInterval a sharded fleet uses when the
// configuration leaves it zero: half a simulated second, well under the
// seconds-scale transfer+execution times of the workload mix, so barrier
// quantisation is negligible against non-time-critical deadlines.
const DefaultShardInterval sim.Duration = 0.5

// RegionsConfig places the remote substrates on a map of named regions,
// attaches correlated regional fault schedules, and (optionally) turns on
// the scheduler's failover layer. Empty region names leave that substrate
// region-less.
type RegionsConfig struct {
	// Edge, Serverless and VM name the region each substrate is homed in.
	Edge       string
	Serverless string
	VM         string

	// Link models the inter-region backbone re-homed state crosses. The
	// zero value takes model.DefaultInterRegionLink.
	Link model.InterRegionLink

	// Schedules lists correlated fault schedules, one per region. Every
	// substrate homed in a scheduled region gets a regional injector
	// (chained in front of its own fault model) built from the schedule.
	Schedules []fault.RegionSchedule

	// Failover, when non-nil, enables the scheduler's regional failover
	// layer (see sched.Failover); its Regions map and Link are filled in
	// from this config when left unset.
	Failover *sched.Failover
}

// regionOf returns the configured region of a placement ("" = none).
func (rc *RegionsConfig) regionOf(p model.Placement) string {
	switch p {
	case model.PlaceEdge:
		return rc.Edge
	case model.PlaceFunction:
		return rc.Serverless
	case model.PlaceVM:
		return rc.VM
	}
	return ""
}

// DefaultConfig is a smartphone on WiFi/LAN with every substrate present
// and the deadline-aware policy: the configuration the examples use.
func DefaultConfig() Config {
	edgeCfg := edge.SmallSite()
	edgePath := network.LANEdge()
	slCfg := serverless.LambdaLike()
	cloudPath := network.WiFiCloud()
	vmCfg := cloudvm.C5Large()
	return Config{
		Seed:       1,
		Device:     device.Smartphone(),
		Edge:       &edgeCfg,
		EdgePath:   &edgePath,
		Serverless: &slCfg,
		CloudPath:  &cloudPath,
		VM:         &vmCfg,
		Policy:     PolicyDeadlineAware,
	}
}

// System is a live assembled environment.
type System struct {
	Eng *sim.Engine
	Src *rng.Source
	Env *sched.Env

	Scheduler *sched.Scheduler
	Batcher   *sched.Batcher        // nil unless batching is configured
	Shifter   *sched.OffPeakShifter // nil unless off-peak shifting is on
	Jobs      *dag.Orchestrator     // nil unless a DAG block is configured
	Recorder  *trace.Recorder

	observer *Observer           // nil unless Observe was called
	spanRec  *trace.SpanRecorder // nil unless EnableSpans was called
	adapt    *adapt.Controller   // nil unless the adaptive layer is on
	jobErr   error               // first in-stream job submission error
	cfg      Config
}

// NewSystem builds a System from the configuration.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	src := rng.New(cfg.Seed)

	env := &sched.Env{
		Eng:    eng,
		Device: device.New(eng, cfg.Device),
	}
	if cfg.Edge != nil {
		if cfg.EdgePath == nil {
			return nil, fmt.Errorf("core: edge configured without an edge path")
		}
		env.Edge = edge.New(eng, *cfg.Edge)
		env.EdgePath = network.New(eng, src.Split(), *cfg.EdgePath)
	}
	if cfg.Serverless != nil {
		if cfg.CloudPath == nil {
			return nil, fmt.Errorf("core: serverless configured without a cloud path")
		}
		platform := serverless.NewPlatform(eng, src.Split(), *cfg.Serverless)
		pool := sched.NewFunctionPool(platform)
		pool.ArrivalRateHint = cfg.ArrivalRateHint
		pool.RedeployTolerance = cfg.RedeployTolerance
		pool.ProvisionedConcurrency = cfg.ProvisionedConcurrency
		env.Functions = pool
		env.CloudPath = network.New(eng, src.Split(), *cfg.CloudPath)
	}
	if cfg.VM != nil {
		if cfg.CloudPath == nil {
			return nil, fmt.Errorf("core: VM configured without a cloud path")
		}
		env.VM = cloudvm.New(eng, *cfg.VM)
		if env.CloudPath == nil {
			env.CloudPath = network.New(eng, src.Split(), *cfg.CloudPath)
		}
	}

	policy, ctrl, err := buildPolicy(cfg, src)
	if err != nil {
		return nil, err
	}
	var budget *sched.Budget
	if cfg.DailyBudgetUSD > 0 {
		budget, err = sched.NewBudget(eng, cfg.DailyBudgetUSD)
		if err != nil {
			return nil, err
		}
		policy = &sched.BudgetedPolicy{Inner: policy, Budget: budget}
	}
	var pred sched.Predictor = sched.NewPerApp(0.3)
	if cfg.PredictionNoise > 0 {
		pred = sched.NewNoisy(pred, src.Split(), cfg.PredictionNoise)
	}

	rec := &trace.Recorder{}
	recHook := rec.Hook()
	outcomeHook := recHook
	if budget != nil {
		charge := budget.Hook()
		outcomeHook = func(o model.Outcome) {
			charge(o)
			recHook(o)
		}
	}
	opts := []sched.Option{sched.WithOutcomeHook(outcomeHook)}
	if cfg.Retries > 1 {
		backoff := cfg.RetryBackoff
		if backoff <= 0 {
			backoff = 1
		}
		opts = append(opts, sched.WithRetries(sched.RetryPolicy{
			MaxAttempts: cfg.Retries,
			Backoff:     backoff,
			MaxBackoff:  cfg.RetryMaxBackoff,
			FullJitter:  cfg.RetryJitter,
		}))
	}
	if cfg.LocalDVFSMinScale > 0 {
		opts = append(opts, sched.WithLocalDVFS(cfg.LocalDVFSMinScale))
	}
	// New rng splits must stay behind every pre-existing one so that
	// configurations not using these features keep byte-identical streams.
	if cfg.RetryJitter {
		opts = append(opts, sched.WithRNG(src.Split()))
	}
	if cfg.Resilience != nil {
		opts = append(opts, sched.WithResilience(*cfg.Resilience))
	}
	if cfg.Regions != nil && cfg.Regions.Failover != nil {
		// Failover draws no randomness; only the regional injectors below
		// consume new splits.
		fo := *cfg.Regions.Failover
		if fo.Regions == nil {
			fo.Regions = map[model.Placement]string{}
			for _, p := range model.AllPlacements() {
				if name := cfg.Regions.regionOf(p); name != "" {
					fo.Regions[p] = name
				}
			}
		}
		if fo.Link == (model.InterRegionLink{}) {
			fo.Link = cfg.Regions.Link
		}
		opts = append(opts, sched.WithFailover(fo))
	}
	s, err := sched.New(env, policy, pred, opts...)
	if err != nil {
		return nil, err
	}
	sys := &System{Eng: eng, Src: src, Env: env, Scheduler: s, Recorder: rec, adapt: ctrl, cfg: cfg}
	if cfg.Batch != nil && cfg.OffPeakShift {
		return nil, fmt.Errorf("core: Batch and OffPeakShift are mutually exclusive")
	}
	if cfg.Batch != nil {
		b, err := sched.NewBatcher(s, cfg.Batch.Size, cfg.Batch.MaxWait)
		if err != nil {
			return nil, err
		}
		sys.Batcher = b
	}
	if cfg.OffPeakShift {
		sh, err := sched.NewOffPeakShifter(s)
		if err != nil {
			return nil, err
		}
		sys.Shifter = sh
	}
	if cfg.DAG != nil {
		if cfg.Batch != nil || cfg.OffPeakShift {
			return nil, fmt.Errorf("core: DAG is mutually exclusive with Batch and OffPeakShift")
		}
		placer, err := cfg.DAG.placer()
		if err != nil {
			return nil, err
		}
		// The orchestrator draws no randomness and adds no events of its
		// own, so configurations without DAG keep byte-identical streams.
		sys.Jobs = dag.NewOrchestrator(s, placer)
	}
	if cfg.Fault != nil {
		if sys.Platform() == nil {
			return nil, fmt.Errorf("core: Fault configured without serverless")
		}
		inj, err := fault.New(src.Split(), *cfg.Fault)
		if err != nil {
			return nil, err
		}
		if inj != nil {
			sys.Platform().SetFaultInjector(inj)
		}
	}
	if cfg.EdgeFault != nil {
		if env.Edge == nil {
			return nil, fmt.Errorf("core: EdgeFault configured without edge")
		}
		inj, err := fault.New(src.Split(), *cfg.EdgeFault)
		if err != nil {
			return nil, err
		}
		env.Edge.SetFaultInjector(inj)
	}
	if cfg.VMFault != nil {
		if env.VM == nil {
			return nil, fmt.Errorf("core: VMFault configured without a VM fleet")
		}
		inj, err := fault.New(src.Split(), *cfg.VMFault)
		if err != nil {
			return nil, err
		}
		env.VM.SetFaultInjector(inj)
	}
	if cfg.Regions != nil {
		if err := installRegions(sys, src, cfg.Regions); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// installRegions chains a regional fault injector in front of each
// substrate homed in a scheduled region. Substrates are visited in
// canonical placement order, one rng split per (substrate, schedule)
// pair, and these splits come after every other split NewSystem makes —
// so configurations without Regions keep byte-identical streams.
func installRegions(sys *System, src *rng.Source, rc *RegionsConfig) error {
	byRegion := make(map[string]fault.RegionSchedule, len(rc.Schedules))
	for _, sch := range rc.Schedules {
		if err := sch.Validate(); err != nil {
			return err
		}
		if _, dup := byRegion[sch.Region]; dup {
			return fmt.Errorf("core: duplicate region schedule for %q", sch.Region)
		}
		byRegion[sch.Region] = sch
	}
	used := make(map[string]bool, len(byRegion))
	env := sys.Env
	for _, p := range model.AllPlacements() {
		name := rc.regionOf(p)
		if name == "" {
			continue
		}
		switch {
		case p == model.PlaceEdge && env.Edge == nil:
			return fmt.Errorf("core: Regions.Edge %q named without an edge site", name)
		case p == model.PlaceFunction && env.Functions == nil:
			return fmt.Errorf("core: Regions.Serverless %q named without serverless", name)
		case p == model.PlaceVM && env.VM == nil:
			return fmt.Errorf("core: Regions.VM %q named without a VM fleet", name)
		}
		sch, ok := byRegion[name]
		if !ok {
			continue // a region without a schedule is simply healthy
		}
		used[name] = true
		rinj, err := fault.New(src.Split(), sch.Config())
		if err != nil {
			return err
		}
		switch p {
		case model.PlaceEdge:
			env.Edge.SetFaultInjector(fault.Chain(rinj, env.Edge.FaultInjector()))
		case model.PlaceFunction:
			pl := sys.Platform()
			pl.SetFaultInjector(fault.Chain(rinj, pl.FaultInjector()))
		case model.PlaceVM:
			env.VM.SetFaultInjector(fault.Chain(rinj, env.VM.FaultInjector()))
		}
	}
	for _, sch := range rc.Schedules {
		if !used[sch.Region] {
			return fmt.Errorf("core: region schedule for %q matches no substrate", sch.Region)
		}
	}
	return nil
}

// buildPolicy resolves the configured policy, constructing the adaptive
// controller when the policy is a bandit or an Adapt block asks for the
// wrap. The controller (nil otherwise) is also returned so the System can
// expose its learned state. Only bandit policies draw from src here —
// configurations without them consume the stream exactly as before.
func buildPolicy(cfg Config, src *rng.Source) (sched.Policy, *adapt.Controller, error) {
	acfg := adapt.DefaultConfig()
	if cfg.Adapt != nil {
		acfg = *cfg.Adapt
	}
	switch cfg.Policy {
	case PolicyBanditUCB, PolicyBanditGreedy:
		kind := adapt.BanditUCB
		if cfg.Policy == PolicyBanditGreedy {
			kind = adapt.BanditGreedy
		}
		ctrl, err := adapt.NewBandit(kind, acfg, src.Split())
		if err != nil {
			return nil, nil, err
		}
		return ctrl, ctrl, nil
	}
	base, err := buildStaticPolicy(cfg.Policy, src)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Adapt == nil {
		return base, nil, nil
	}
	ctrl, err := adapt.Wrap(base, acfg)
	if err != nil {
		return nil, nil, err
	}
	return ctrl, ctrl, nil
}

func buildStaticPolicy(name PolicyName, src *rng.Source) (sched.Policy, error) {
	switch name {
	case PolicyLocalOnly, "":
		return sched.LocalOnly{}, nil
	case PolicyEdgeAll:
		return sched.EdgeAll{}, nil
	case PolicyCloudAll:
		return sched.CloudAll{}, nil
	case PolicyVMAll:
		return sched.VMAll{}, nil
	case PolicyRandom:
		return &sched.Random{Src: src.Split()}, nil
	case PolicyThreshold:
		return &sched.Threshold{Cycles: DefaultThresholdCycles}, nil
	case PolicyDeadlineAware:
		return sched.NewDeadlineAware(), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q", name)
	}
}

// Submit routes one task through the configured scheduler (or its
// batching / off-peak-shifting wrapper).
func (s *System) Submit(task *model.Task) {
	switch {
	case s.Batcher != nil:
		s.Batcher.Submit(task)
	case s.Shifter != nil:
		s.Shifter.Submit(task)
	default:
		s.Scheduler.Submit(task)
	}
}

// SubmitStream schedules count arrivals from the generator.
func (s *System) SubmitStream(arrivals workload.Arrivals, gen *workload.Generator, count int) {
	workload.Stream(s.Eng, arrivals, gen, count, s.Submit)
}

// Run drives the simulation until no work remains, flushing any pending
// batches first.
func (s *System) Run() {
	if s.Batcher != nil {
		// Flush at the point all arrivals have been injected: run the
		// event queue, flush leftovers, and drain again.
		s.drain()
		s.Batcher.Flush()
	}
	s.drain()
	// Tasks still parked in the failover wait queue when the event queue
	// empties would never run (the outage outlasted the workload): the
	// ladder localizes them instead of dropping them.
	for s.Scheduler.FlushFailover() > 0 {
		s.drain()
	}
}

// drain runs the event queue to empty, interleaving observer samples when
// one is attached.
func (s *System) drain() {
	if s.observer != nil {
		s.observer.drive()
		return
	}
	s.Eng.Run()
}

// Stats returns the scheduler's aggregate statistics.
func (s *System) Stats() *sched.Stats { return s.Scheduler.Stats() }

// Policy returns the configured placement policy name.
func (s *System) Policy() PolicyName { return s.cfg.Policy }

// EnableSpans attaches a span recorder to the scheduler's causal hook
// points and returns it. Call before Run. Idempotent: a second call
// returns the recorder already installed. Span recording is
// observability only — it adds no events and draws no randomness, so
// enabling it never changes simulated results (TestSpansAreInert).
func (s *System) EnableSpans() *trace.SpanRecorder {
	if s.spanRec == nil {
		s.spanRec = trace.NewSpanRecorder()
		s.spanRec.SetMeta("run", string(s.cfg.Policy))
		s.Scheduler.SetTracer(s.spanRec)
		if s.adapt != nil {
			s.adapt.SetTracer(s.spanRec)
		}
		if s.Jobs != nil {
			s.Jobs.SetTracer(s.spanRec)
		}
	}
	return s.spanRec
}

// Adapt returns the adaptive-layer controller, or nil when the
// configuration did not enable one.
func (s *System) Adapt() *adapt.Controller { return s.adapt }

// SpanSet returns the causal spans recorded so far, or nil when
// EnableSpans was never called.
func (s *System) SpanSet() *trace.SpanSet {
	if s.spanRec == nil {
		return nil
	}
	return s.spanRec.Set()
}

// Platform returns the serverless platform, or nil.
func (s *System) Platform() *serverless.Platform {
	if s.Env.Functions == nil {
		return nil
	}
	return s.Env.Functions.Platform()
}

// InfrastructureCostUSD returns money that accrued outside per-task bills:
// edge provisioning, VM instance-hours, and serverless provisioned
// concurrency capacity fees up to the current virtual time.
func (s *System) InfrastructureCostUSD() float64 {
	total := 0.0
	if s.Env.Edge != nil {
		total += s.Env.Edge.ProvisionedCostUSD()
	}
	if s.Env.VM != nil {
		total += s.Env.VM.AccruedCostUSD()
	}
	if p := s.Platform(); p != nil {
		total += p.ProvisionedCostUSD()
	}
	return total
}
