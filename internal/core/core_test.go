package core

import (
	"math"
	"testing"

	"offload/internal/callgraph"
	"offload/internal/device"
	"offload/internal/model"
	"offload/internal/network"

	"offload/internal/serverless"
	"offload/internal/workload"
)

func TestNewSystemDefaultConfig(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Env.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Env.Available()) != 4 {
		t.Fatalf("default system has %d placements", len(sys.Env.Available()))
	}
}

func TestNewSystemValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EdgePath = nil
	if _, err := NewSystem(cfg); err == nil {
		t.Error("edge without path accepted")
	}
	cfg = DefaultConfig()
	cfg.CloudPath = nil
	if _, err := NewSystem(cfg); err == nil {
		t.Error("serverless without cloud path accepted")
	}
	cfg = DefaultConfig()
	cfg.Policy = "nope"
	if _, err := NewSystem(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
	cfg = DefaultConfig()
	cfg.Device.CPUHz = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestAllPoliciesBuild(t *testing.T) {
	for _, p := range AllPolicies() {
		cfg := DefaultConfig()
		cfg.Policy = p
		if _, err := NewSystem(cfg); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}

func TestEndToEndRunCollectsOutcomes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyDeadlineAware
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.StandardMix(sys.Src.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), 0.5), gen, 50)
	sys.Run()
	st := sys.Stats()
	if st.Total() != 50 {
		t.Fatalf("Total = %d, want 50", st.Total())
	}
	if st.Failed != 0 {
		t.Fatalf("Failed = %d", st.Failed)
	}
	if sys.Recorder.Len() != 50 {
		t.Fatalf("Recorder.Len = %d", sys.Recorder.Len())
	}
	if st.MissRate() > 0.05 {
		t.Fatalf("deadline-aware miss rate = %g", st.MissRate())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig()
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.StandardMix(sys.Src.Split())
		if err != nil {
			t.Fatal(err)
		}
		sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), 1), gen, 30)
		sys.Run()
		return sys.Stats().MeanCompletion()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different results: %g vs %g", a, b)
	}
}

func TestBatchedSystemFlushesOnRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyCloudAll
	cfg.Batch = &BatchConfig{Size: 100, MaxWait: 0} // only Flush can release
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.StandardMix(sys.Src.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), 1), gen, 10)
	sys.Run()
	if got := sys.Stats().Total(); got != 10 {
		t.Fatalf("batched run completed %d tasks, want 10", got)
	}
}

func TestInfrastructureCostAccrues(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.Eng.RunUntil(3600)
	// Edge $0.60/h + VM $0.085/h.
	want := 0.60 + 0.085
	if got := sys.InfrastructureCostUSD(); math.Abs(got-want) > 0.01 {
		t.Fatalf("InfrastructureCostUSD = %g, want ~%g", got, want)
	}
	noEdge := DefaultConfig()
	noEdge.Edge, noEdge.EdgePath, noEdge.VM = nil, nil, nil
	sys2, err := NewSystem(noEdge)
	if err != nil {
		t.Fatal(err)
	}
	sys2.Eng.RunUntil(3600)
	if got := sys2.InfrastructureCostUSD(); got != 0 {
		t.Fatalf("serverless-only infrastructure cost = %g, want 0", got)
	}
}

func TestCostModelForProducesValidModel(t *testing.T) {
	cm := CostModelFor(device.Smartphone(), serverless.LambdaLike(),
		serverless.LambdaLike().FullShareBytes, network.WiFiCloud(), DefaultWeights())
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	if cm.RemoteHz > serverless.LambdaLike().BaselineHz {
		t.Fatal("remote speed exceeds one vCPU for serial components")
	}
}

func TestPlanAppJourney(t *testing.T) {
	plan, err := PlanApp(callgraph.SciBatch(), PlanOptions{
		Device:     device.Smartphone(),
		Serverless: serverless.LambdaLike(),
		CloudPath:  network.WiFiCloud(),
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.App != "sci-batch" {
		t.Fatalf("App = %s", plan.App)
	}
	if len(plan.Remote) == 0 {
		t.Fatal("plan offloads nothing for the strongest offloading case")
	}
	found := false
	for _, r := range plan.Remote {
		if r == "simulate" {
			found = true
		}
		if r == "instrument" {
			t.Fatal("pinned component in remote set")
		}
	}
	if !found {
		t.Fatalf("simulate not offloaded: %v", plan.Remote)
	}
	if len(plan.Manifest.Functions) != len(plan.Remote) {
		t.Fatalf("manifest has %d functions for %d remote components",
			len(plan.Manifest.Functions), len(plan.Remote))
	}
	for _, fn := range plan.Manifest.Functions {
		if fn.MemoryBytes < 128*model.MB {
			t.Errorf("function %s sized at %d", fn.Name, fn.MemoryBytes)
		}
	}
	if plan.EstimatedCostPerRunUSD <= 0 {
		t.Fatal("plan has no estimated cost")
	}
	if plan.Template.MeanCycles <= 0 {
		t.Fatal("plan has no workload template")
	}
}

func TestPlanAppValidation(t *testing.T) {
	if _, err := PlanApp(callgraph.New("empty"), PlanOptions{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := PlanApp(callgraph.ReportGen(), PlanOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestPlanDeterministicForSeed(t *testing.T) {
	opts := PlanOptions{
		Device:     device.Smartphone(),
		Serverless: serverless.LambdaLike(),
		CloudPath:  network.WiFiCloud(),
		Seed:       3,
	}
	a, err := PlanApp(callgraph.MLBatch(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanApp(callgraph.MLBatch(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.EstimatedCostPerRunUSD != b.EstimatedCostPerRunUSD {
		t.Fatal("plans differ for equal seeds")
	}
	if len(a.Remote) != len(b.Remote) {
		t.Fatal("partitions differ for equal seeds")
	}
}
