package core

import (
	"fmt"

	"offload/internal/dag"
	"offload/internal/workload"
)

// DAGPlacement selects how a DAG job's nodes are placed.
type DAGPlacement string

// The DAG placement modes.
const (
	// DAGOblivious releases each ready node to the configured Policy as if
	// it were an independent task — the precedence-oblivious baseline.
	DAGOblivious DAGPlacement = "oblivious"
	// DAGRank plans every node up front with HEFT-style upward-rank list
	// scheduling over the predictor's estimates.
	DAGRank DAGPlacement = "rank"
)

// DAGConfig enables precedence-aware job submission: SubmitJob and
// SubmitJobStream drive multi-node dag.Jobs through the scheduler, a
// node dispatching only when all its predecessors completed. Strictly
// opt-in and randomness-free: a nil DAG changes no code path and no rng
// stream, and single-task submission keeps working alongside it.
type DAGConfig struct {
	// Placement picks the placer; empty defaults to DAGOblivious.
	Placement DAGPlacement
}

func (c *DAGConfig) placer() (dag.Placer, error) {
	switch c.Placement {
	case DAGOblivious, "":
		return dag.Oblivious{}, nil
	case DAGRank:
		return dag.Rank{}, nil
	default:
		return nil, fmt.Errorf("core: unknown DAG placement %q", c.Placement)
	}
}

// SubmitJob routes one DAG job through the orchestrator. The
// configuration must carry a DAG block.
func (s *System) SubmitJob(job *dag.Job) error {
	if s.Jobs == nil {
		return fmt.Errorf("core: SubmitJob without Config.DAG")
	}
	return s.Jobs.Submit(job)
}

// SubmitJobStream schedules count job arrivals from the generator.
// Submission errors inside the stream (an invalid generated job) surface
// on the first Err call after Run.
func (s *System) SubmitJobStream(arrivals workload.Arrivals, gen *workload.JobGenerator, count int) error {
	if s.Jobs == nil {
		return fmt.Errorf("core: SubmitJobStream without Config.DAG")
	}
	workload.JobStream(s.Eng, arrivals, gen, count, func(j *dag.Job) {
		if err := s.Jobs.Submit(j); err != nil && s.jobErr == nil {
			s.jobErr = err
		}
	})
	return nil
}

// JobErr returns the first in-stream job submission error, or nil.
func (s *System) JobErr() error { return s.jobErr }

// JobStats returns the orchestrator's aggregate job statistics, or nil
// when the configuration has no DAG block.
func (s *System) JobStats() *dag.Stats {
	if s.Jobs == nil {
		return nil
	}
	return s.Jobs.Stats()
}
