package core

import (
	"math"
	"testing"

	"offload/internal/dag"
	"offload/internal/rng"
	"offload/internal/trace"
	"offload/internal/workload"
)

func dagConfig(p DAGPlacement) Config {
	cfg := DefaultConfig()
	cfg.DAG = &DAGConfig{Placement: p}
	return cfg
}

func testJobTemplate() workload.JobTemplate {
	return workload.JobTemplate{
		App: "dagapp", Shape: workload.ShapeForkJoin, Nodes: 6,
		MeanCycles: 2e9, CyclesSigma: 0.2,
		EdgeBytes: 128 << 10, InputBytes: 1 << 20, OutputBytes: 1 << 19,
		Deadline: 3600,
	}
}

func TestDAGConfigValidation(t *testing.T) {
	cfg := dagConfig("spiral")
	if _, err := NewSystem(cfg); err == nil {
		t.Error("unknown placement accepted")
	}

	cfg = dagConfig(DAGRank)
	cfg.Batch = &BatchConfig{Size: 4, MaxWait: 1}
	if _, err := NewSystem(cfg); err == nil {
		t.Error("DAG combined with Batch accepted")
	}

	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Jobs != nil {
		t.Error("orchestrator present without a DAG block")
	}
	if err := sys.SubmitJob(dag.New("x", 0)); err == nil {
		t.Error("SubmitJob without DAG block accepted")
	}
	if sys.JobStats() != nil {
		t.Error("JobStats without DAG block non-nil")
	}
}

func TestDAGSystemRunsJobsAndReports(t *testing.T) {
	for _, placement := range []DAGPlacement{DAGOblivious, DAGRank} {
		t.Run(string(placement), func(t *testing.T) {
			sys, err := NewSystem(dagConfig(placement))
			if err != nil {
				t.Fatal(err)
			}
			gen, err := workload.NewJobGenerator(rng.New(41), testJobTemplate())
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.SubmitJobStream(&workload.Fixed{Gap: 5}, gen, 6); err != nil {
				t.Fatal(err)
			}
			sys.Run()
			if err := sys.JobErr(); err != nil {
				t.Fatalf("in-stream submission error: %v", err)
			}
			st := sys.JobStats()
			if st.Jobs != 6 || st.Failed != 0 {
				t.Fatalf("jobs %d failed %d, want 6/0", st.Jobs, st.Failed)
			}
			if st.NodesCompleted != 36 {
				t.Fatalf("nodes completed %d, want 36", st.NodesCompleted)
			}
			if st.MaxDriftS() > 1e-9 {
				t.Fatalf("critical-path drift %g > 1e-9", st.MaxDriftS())
			}
			r := sys.Report()
			if r.Jobs != 6 || r.MeanMakespanS <= 0 || r.P95MakespanS < r.MeanMakespanS*0.5 {
				t.Fatalf("report job block implausible: %+v", r)
			}
			if r.MeanCritS <= 0 || r.MeanCritS > r.MeanMakespanS+1e-9 {
				t.Fatalf("mean critical path %g vs makespan %g", r.MeanCritS, r.MeanMakespanS)
			}
			if math.IsNaN(r.MeanSlackS) || r.MeanSlackS < 0 {
				t.Fatalf("mean slack %g", r.MeanSlackS)
			}
			// The per-task side sees every node as a completed task.
			if r.Completed != 36 {
				t.Fatalf("completed tasks %d, want 36", r.Completed)
			}
		})
	}
}

func TestDAGJobSpans(t *testing.T) {
	sys, err := NewSystem(dagConfig(DAGRank))
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableSpans()
	gen, err := workload.NewJobGenerator(rng.New(42), testJobTemplate())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitJobStream(&workload.Fixed{Gap: 5}, gen, 3); err != nil {
		t.Fatal(err)
	}
	sys.Run()

	set := sys.SpanSet()
	if set == nil {
		t.Fatal("no span set")
	}
	jobRoots := map[uint64]trace.Span{}
	taskRoots := map[uint64][]trace.Span{} // parent span ID → adopted task roots
	for _, sp := range set.Spans {
		if sp.Name == trace.SpanJob {
			jobRoots[sp.ID] = sp
		}
		if sp.Name == trace.SpanTask && sp.Parent != 0 {
			taskRoots[sp.Parent] = append(taskRoots[sp.Parent], sp)
		}
	}
	if len(jobRoots) != 3 {
		t.Fatalf("job root spans %d, want 3", len(jobRoots))
	}
	for id, root := range jobRoots {
		kids := taskRoots[id]
		if len(kids) != 6 {
			t.Fatalf("job span %d has %d task children, want 6", id, len(kids))
		}
		if root.Status != "ok" {
			t.Errorf("job span status %q, want \"ok\"", root.Status)
		}
		for _, k := range kids {
			if k.Start < root.Start-1e-9 || k.End > root.End+1e-9 {
				t.Errorf("task span [%g,%g] escapes job span [%g,%g]",
					k.Start, k.End, root.Start, root.End)
			}
		}
	}
}

func TestShardedFleetRejectsDAG(t *testing.T) {
	cfg := dagConfig(DAGOblivious)
	if _, err := NewShardedFleet(cfg, 10); err == nil {
		t.Error("sharded fleet accepted a DAG config")
	}
}
