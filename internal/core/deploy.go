package core

import (
	"fmt"

	"offload/internal/callgraph"
	"offload/internal/cicd"
	"offload/internal/device"
	"offload/internal/network"
	"offload/internal/profile"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// DeployOptions configures one CI/CD pipeline run.
type DeployOptions struct {
	Seed uint64

	Device     device.Config
	Serverless serverless.Config
	CloudPath  network.Config
	Weights    Weights

	ProfileRuns  int
	ProfileNoise float64

	// CanaryInvocations per deployed function; zero disables the canary.
	CanaryInvocations int
	// CanarySLOFactor bounds the canary's observed mean execution time
	// relative to the allocator expectation (default 2).
	CanarySLOFactor float64

	// Previous is the manifest a failed canary rolls back to.
	Previous *cicd.Manifest

	// InjectRegression slows the canary's true demand by this factor, for
	// testing the rollback path.
	InjectRegression float64

	// WithoutOffload runs the vanilla pipeline (baseline).
	WithoutOffload bool
}

// DeployResult is the outcome of one pipeline run.
type DeployResult struct {
	Report     cicd.Report
	Manifest   *cicd.Manifest // nil for vanilla or failed runs
	Canary     *cicd.CanaryResult
	RolledBack bool
}

// RunDeployPipeline runs the deployment pipeline for an application on a
// fresh simulated serverless platform. Defaults mirror DefaultConfig:
// smartphone device, Lambda-like platform, WiFi cloud path.
func RunDeployPipeline(g *callgraph.Graph, opts DeployOptions) (DeployResult, error) {
	if g == nil {
		return DeployResult{}, fmt.Errorf("core: deploy without application graph")
	}
	if opts.Device.CPUHz == 0 {
		opts.Device = device.Smartphone()
	}
	if opts.Serverless.BaselineHz == 0 {
		opts.Serverless = serverless.LambdaLike()
	}
	if opts.CloudPath.UplinkBps == 0 {
		opts.CloudPath = network.WiFiCloud()
	}
	if opts.Weights == (Weights{}) {
		opts.Weights = DefaultWeights()
	}
	if opts.CanarySLOFactor == 0 {
		opts.CanarySLOFactor = 2
	}
	noise := opts.ProfileNoise
	if noise == 0 {
		noise = 0.05
	}

	eng := sim.NewEngine()
	platform := serverless.NewPlatform(eng, rng.New(opts.Seed), opts.Serverless)
	build := &cicd.Build{
		App:      g,
		Platform: platform,
		Meter:    profile.NewMeter(rng.New(opts.Seed+1), noise),
		Cost: CostModelFor(opts.Device, opts.Serverless,
			opts.Serverless.FullShareBytes, opts.CloudPath, opts.Weights),
		ProfileRuns:      opts.ProfileRuns,
		Canary:           cicd.CanarySpec{Invocations: opts.CanaryInvocations, SLOFactor: opts.CanarySLOFactor},
		Previous:         opts.Previous,
		InjectRegression: opts.InjectRegression,
		WithOffload:      !opts.WithoutOffload,
	}
	pipeline, err := build.Pipeline()
	if err != nil {
		return DeployResult{}, err
	}
	ctx := cicd.NewContext()
	var out DeployResult
	pipeline.Run(eng, ctx, func(r cicd.Report) { out.Report = r })
	eng.Run()

	if mv, ok := ctx.Get(cicd.KeyManifest); ok {
		out.Manifest = mv.(*cicd.Manifest)
	}
	if cv, ok := ctx.Get(cicd.KeyCanary); ok {
		c := cv.(cicd.CanaryResult)
		out.Canary = &c
	}
	if rv, ok := ctx.Get(cicd.KeyRolledBck); ok {
		out.RolledBack = rv.(bool)
	}
	return out, nil
}
