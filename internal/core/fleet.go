package core

import (
	"fmt"

	"offload/internal/cloudvm"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/workload"
)

// Fleet simulates many devices against SHARED remote infrastructure: one
// serverless region (one account concurrency limit, one function pool),
// one edge site and one VM fleet serve every device, while each device
// keeps its own radio path and scheduler. This is the configuration where
// shared-resource contention — the thing a single-device System cannot
// show — becomes visible.
type Fleet struct {
	Eng *sim.Engine
	Src *rng.Source

	Devices    []*device.Device
	Schedulers []*sched.Scheduler

	platform *serverless.Platform
	edge     *edge.Cluster
	vm       *cloudvm.Fleet

	cfg Config
}

// NewFleet builds n devices from the configuration's device template
// (names suffixed with their index), sharing the configured remote
// substrates. Batching and off-peak shifting are per-device features and
// are not supported at fleet scope.
func NewFleet(cfg Config, n int) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: fleet of %d devices", n)
	}
	if cfg.Batch != nil || cfg.OffPeakShift {
		return nil, fmt.Errorf("core: fleet does not support Batch or OffPeakShift")
	}
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	src := rng.New(cfg.Seed)
	f := &Fleet{Eng: eng, Src: src, cfg: cfg}

	var pool *sched.FunctionPool
	if cfg.Serverless != nil {
		if cfg.CloudPath == nil {
			return nil, fmt.Errorf("core: serverless configured without a cloud path")
		}
		f.platform = serverless.NewPlatform(eng, src.Split(), *cfg.Serverless)
		pool = sched.NewFunctionPool(f.platform)
		pool.ArrivalRateHint = cfg.ArrivalRateHint * float64(n)
		pool.RedeployTolerance = cfg.RedeployTolerance
		pool.ProvisionedConcurrency = cfg.ProvisionedConcurrency
	}
	if cfg.Edge != nil {
		if cfg.EdgePath == nil {
			return nil, fmt.Errorf("core: edge configured without an edge path")
		}
		f.edge = edge.New(eng, *cfg.Edge)
	}
	if cfg.VM != nil {
		if cfg.CloudPath == nil {
			return nil, fmt.Errorf("core: VM configured without a cloud path")
		}
		f.vm = cloudvm.New(eng, *cfg.VM)
	}

	for i := 0; i < n; i++ {
		devCfg := cfg.Device
		devCfg.Name = fmt.Sprintf("%s-%04d", cfg.Device.Name, i)
		env := &sched.Env{
			Eng:    eng,
			Device: device.New(eng, devCfg),
		}
		if f.edge != nil {
			env.Edge = f.edge
			env.EdgePath = network.New(eng, src.Split(), *cfg.EdgePath)
		}
		if pool != nil {
			env.Functions = pool
			env.CloudPath = network.New(eng, src.Split(), *cfg.CloudPath)
		}
		if f.vm != nil {
			env.VM = f.vm
			if env.CloudPath == nil {
				env.CloudPath = network.New(eng, src.Split(), *cfg.CloudPath)
			}
		}
		policy, _, err := buildPolicy(cfg, src)
		if err != nil {
			return nil, err
		}
		var pred sched.Predictor = sched.NewPerApp(0.3)
		if cfg.PredictionNoise > 0 {
			pred = sched.NewNoisy(pred, src.Split(), cfg.PredictionNoise)
		}
		var opts []sched.Option
		if cfg.Retries > 1 {
			backoff := cfg.RetryBackoff
			if backoff <= 0 {
				backoff = 1
			}
			opts = append(opts, sched.WithRetries(sched.RetryPolicy{MaxAttempts: cfg.Retries, Backoff: backoff}))
		}
		s, err := sched.New(env, policy, pred, opts...)
		if err != nil {
			return nil, err
		}
		f.Devices = append(f.Devices, env.Device)
		f.Schedulers = append(f.Schedulers, s)
	}
	return f, nil
}

// Size returns the number of devices.
func (f *Fleet) Size() int { return len(f.Devices) }

// Platform returns the shared serverless platform, or nil.
func (f *Fleet) Platform() *serverless.Platform { return f.platform }

// SubmitStreams gives every device its own arrival process (drawn from
// the fleet's RNG) and workload generator over the standard template mix.
func (f *Fleet) SubmitStreams(rate float64, tasksPerDevice int) error {
	for _, s := range f.Schedulers {
		gen, err := workload.StandardMix(f.Src.Split())
		if err != nil {
			return err
		}
		workload.Stream(f.Eng, workload.NewPoisson(f.Src.Split(), rate), gen, tasksPerDevice, s.Submit)
	}
	return nil
}

// Run drives the simulation to completion.
func (f *Fleet) Run() { f.Eng.Run() }

// FleetStats aggregates every scheduler's statistics.
type FleetStats struct {
	Completed uint64
	Failed    uint64
	Missed    uint64
	Retries   uint64

	MeanCompletion float64 // completion-weighted mean across devices
	CostUSD        float64
	EnergyMilliJ   float64

	// Spend sunk into tasks that ultimately failed; CostUSD above covers
	// completed tasks only (see sched.Stats).
	FailedCostUSD      float64
	FailedEnergyMilliJ float64

	// Completion is the fleet-wide completion-time distribution, merged
	// from every device's histogram without shared state, so quantiles
	// (P95Completion) are available at fleet scope too.
	Completion *metrics.Histogram

	ByPlacement map[model.Placement]uint64
}

// Stats aggregates across the fleet. Per-device histograms merge in device
// order, so the aggregate is deterministic for a given configuration.
func (f *Fleet) Stats() FleetStats { return aggregateStats(f.Schedulers) }

// aggregateStats merges per-scheduler statistics in slice order; Fleet and
// ShardedFleet share it so serial and sharded runs aggregate identically.
func aggregateStats(scheds []*sched.Scheduler) FleetStats {
	out := FleetStats{
		ByPlacement: make(map[model.Placement]uint64),
		Completion:  metrics.NewLatencyHistogram(),
	}
	var meanSum float64
	for _, s := range scheds {
		st := s.Stats()
		out.Completed += st.Completed
		out.Failed += st.Failed
		out.Missed += st.Missed
		out.Retries += st.Retries
		out.CostUSD += st.CostUSD
		out.EnergyMilliJ += st.EnergyMilliJ
		out.FailedCostUSD += st.FailedCostUSD
		out.FailedEnergyMilliJ += st.FailedEnergyMilliJ
		if err := out.Completion.Merge(st.Completion); err != nil {
			panic(err) // all schedulers use NewLatencyHistogram; cannot happen
		}
		meanSum += st.MeanCompletion() * float64(st.Completed)
		for p, n := range st.ByPlacement {
			out.ByPlacement[p] += n
		}
	}
	if out.Completed > 0 {
		out.MeanCompletion = meanSum / float64(out.Completed)
	}
	return out
}

// TotalCostUSD returns per-task spend across the fleet, completed and
// failed tasks alike.
func (s FleetStats) TotalCostUSD() float64 { return s.CostUSD + s.FailedCostUSD }

// P95Completion returns the fleet-wide 95th-percentile completion time in
// seconds, from the merged per-device histograms.
func (s FleetStats) P95Completion() float64 { return s.Completion.Quantile(0.95) }

// MissRate returns the fleet-wide deadline-miss fraction.
func (s FleetStats) MissRate() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.Missed) / float64(s.Completed)
}

// Table renders the fleet aggregate for terminal output.
func (s FleetStats) Table() *metrics.Table {
	t := metrics.NewTable("fleet aggregate", "metric", "value")
	t.AddRowf("completed", fmt.Sprintf("%d", s.Completed))
	t.AddRowf("failed", fmt.Sprintf("%d", s.Failed))
	t.AddRowf("mean completion (s)", s.MeanCompletion)
	t.AddRowf("miss rate", fmt.Sprintf("%.2f%%", 100*s.MissRate()))
	t.AddRowf("cost ($)", s.CostUSD)
	t.AddRowf("energy (mJ)", s.EnergyMilliJ)
	return t
}
