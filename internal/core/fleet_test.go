package core

import (
	"testing"

	"offload/internal/model"
	"offload/internal/serverless"
)

func TestFleetValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewFleet(cfg, 0); err == nil {
		t.Error("zero-device fleet accepted")
	}
	bad := DefaultConfig()
	bad.Batch = &BatchConfig{Size: 2}
	if _, err := NewFleet(bad, 2); err == nil {
		t.Error("fleet with Batch accepted")
	}
	bad = DefaultConfig()
	bad.OffPeakShift = true
	if _, err := NewFleet(bad, 2); err == nil {
		t.Error("fleet with OffPeakShift accepted")
	}
	bad = DefaultConfig()
	bad.CloudPath = nil
	if _, err := NewFleet(bad, 2); err == nil {
		t.Error("fleet without cloud path accepted")
	}
}

func TestFleetSharesOnePlatform(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyCloudAll
	cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
	cfg.ArrivalRateHint = 0.02
	fleet, err := NewFleet(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Size() != 8 {
		t.Fatalf("Size = %d", fleet.Size())
	}
	if err := fleet.SubmitStreams(0.02, 5); err != nil {
		t.Fatal(err)
	}
	fleet.Run()
	st := fleet.Stats()
	if st.Completed != 40 || st.Failed != 0 {
		t.Fatalf("Completed/Failed = %d/%d", st.Completed, st.Failed)
	}
	// All 40 invocations landed on the one shared platform.
	if got := fleet.Platform().Stats().Invocations; got != 40 {
		t.Fatalf("shared platform served %d invocations, want 40", got)
	}
	if st.ByPlacement[model.PlaceFunction] != 40 {
		t.Fatalf("ByPlacement = %v", st.ByPlacement)
	}
	if st.Table().Len() == 0 {
		t.Fatal("empty stats table")
	}
}

func TestFleetContendsOnConcurrencyLimit(t *testing.T) {
	// A tiny account limit makes simultaneous devices queue; the same load
	// with a large limit must not.
	run := func(limit int) float64 {
		cfg := DefaultConfig()
		cfg.Policy = PolicyCloudAll
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
		sl := serverless.LambdaLike()
		sl.ConcurrencyLimit = limit
		cfg.Serverless = &sl
		fleet, err := NewFleet(cfg, 10)
		if err != nil {
			t.Fatal(err)
		}
		// All devices submit a burst at once.
		if err := fleet.SubmitStreams(100, 3); err != nil {
			t.Fatal(err)
		}
		fleet.Run()
		return fleet.Stats().MeanCompletion
	}
	constrained := run(1)
	roomy := run(1000)
	if constrained <= roomy*2 {
		t.Fatalf("limit 1 (%g s) not slower than limit 1000 (%g s)", constrained, roomy)
	}
}

func TestFleetDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig()
		fleet, err := NewFleet(cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.SubmitStreams(0.05, 4); err != nil {
			t.Fatal(err)
		}
		fleet.Run()
		return fleet.Stats().MeanCompletion
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fleet not deterministic: %g vs %g", a, b)
	}
}
