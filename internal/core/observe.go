package core

import (
	"offload/internal/metrics"
	"offload/internal/sim"
)

// observeColumns is the fixed column set every observer samples. Substrates
// absent from the configuration report zero, so every export has the same
// shape and a reader never has to sniff headers. Systems with the
// failover layer on append two extra columns (healthy_regions,
// degradation_mode) — conditionally, so exports from every pre-existing
// configuration keep their exact historical shape.
var observeColumns = []string{
	"tasks_completed",
	"tasks_failed",
	"sched_inflight",
	"sched_open_breakers",
	"sched_breaker_opens",
	"sl_running_slots",
	"sl_queued",
	"sl_warm_containers",
	"sl_cold_start_frac",
	"edge_busy_cores",
	"edge_queue",
	"vm_instances",
	"vm_busy_cores",
	"vm_queue",
	"dev_cpu_util",
	"dev_backlog",
	"dev_battery_j",
}

// Observer samples a live System at a fixed simulated-time interval into a
// metrics.TimeSeries: queue depths, warm-pool size, breaker state,
// cold-start fraction, utilization. Sampling is not an engine event — the
// run loop interleaves it between events — so attaching an observer never
// changes simulation results: no extra events fire, the clock never
// advances past the last real event, and no randomness is drawn. It only
// records.
type Observer struct {
	sys    *System
	every  sim.Duration
	next   sim.Time
	series *metrics.TimeSeries
}

// Observe attaches an observer that samples every interval of simulated
// time, starting one interval in. Call before System.Run; a System carries
// at most one observer.
func (s *System) Observe(name string, every sim.Duration) *Observer {
	if every <= 0 {
		panic("core: observe interval must be positive")
	}
	if s.observer != nil {
		panic("core: system already has an observer")
	}
	cols := observeColumns
	if s.Scheduler.HasFailover() {
		cols = append(append([]string(nil), cols...), "healthy_regions", "degradation_mode")
	}
	o := &Observer{
		sys:    s,
		every:  every,
		next:   sim.Time(0).Add(every),
		series: metrics.NewTimeSeries(name, cols...),
	}
	s.observer = o
	return o
}

// Series returns the samples collected so far.
func (o *Observer) Series() *metrics.TimeSeries { return o.series }

// drive runs the engine to completion, recording a sample whenever the
// clock crosses a sampling point with work still pending. Events fire in
// exactly the order Engine.Run would fire them; sampling stops the moment
// the queue drains, so the run ends at the same virtual time observed or
// not.
func (o *Observer) drive() {
	eng := o.sys.Eng
	for eng.Pending() > 0 {
		if eng.NextEventTime() <= o.next {
			eng.Step()
			continue
		}
		// The next sampling point falls strictly between events: advance
		// the clock to it (firing nothing) and record.
		eng.RunUntil(o.next)
		o.sample()
		o.next = o.next.Add(o.every)
	}
}

func (o *Observer) sample() {
	s := o.sys
	st := s.Stats()
	vals := make([]float64, 0, len(observeColumns))
	vals = append(vals,
		float64(st.Completed),
		float64(st.Failed),
		float64(s.Scheduler.InFlight()),
		float64(s.Scheduler.OpenBreakers()),
		float64(s.Scheduler.BreakerOpens()),
	)
	if p := s.Platform(); p != nil {
		vals = append(vals,
			float64(p.RunningSlots()),
			float64(p.QueuedInvocations()),
			float64(p.WarmContainers()),
			p.ColdStartFraction(),
		)
	} else {
		vals = append(vals, 0, 0, 0, 0)
	}
	if s.Env.Edge != nil {
		vals = append(vals,
			float64(s.Env.Edge.BusyCores()),
			float64(s.Env.Edge.QueueLen()),
		)
	} else {
		vals = append(vals, 0, 0)
	}
	if s.Env.VM != nil {
		vals = append(vals,
			float64(s.Env.VM.Instances()),
			float64(s.Env.VM.BusyCores()),
			float64(s.Env.VM.QueueLen()),
		)
	} else {
		vals = append(vals, 0, 0, 0)
	}
	vals = append(vals,
		s.Env.Device.CPUUtilization(),
		float64(s.Env.Device.Backlog()),
		s.Env.Device.BatteryRemainingJ(),
	)
	if s.Scheduler.HasFailover() {
		healthy, _ := s.Scheduler.HealthyRegions()
		vals = append(vals,
			float64(healthy),
			float64(s.Scheduler.DegradationMode()),
		)
	}
	o.series.Record(float64(s.Eng.Now()), vals...)
}

// Registry aggregates the system's end-of-run counters, peaks and the
// completion-time distribution into a named metrics.Registry: the flat,
// mergeable snapshot cmd/offbench exports. Call after System.Run.
func (s *System) Registry(name string) *metrics.Registry {
	reg := metrics.NewRegistry(name)
	st := s.Stats()

	reg.Counter("tasks", metrics.L("state", "completed")).Add(float64(st.Completed))
	reg.Counter("tasks", metrics.L("state", "failed")).Add(float64(st.Failed))
	reg.Counter("tasks", metrics.L("state", "missed_deadline")).Add(float64(st.Missed))
	reg.Counter("sched_retries").Add(float64(st.Retries))
	reg.Counter("sched_timeouts").Add(float64(st.Timeouts))
	reg.Counter("sched_hedges").Add(float64(st.Hedges))
	reg.Counter("sched_hedge_wins").Add(float64(st.HedgeWins))
	reg.Counter("sched_fallbacks").Add(float64(st.Fallbacks))
	reg.Counter("sched_breaker_opens").Add(float64(s.Scheduler.BreakerOpens()))

	reg.Counter("cost_usd", metrics.L("state", "completed")).Add(st.CostUSD)
	reg.Counter("cost_usd", metrics.L("state", "failed")).Add(st.FailedCostUSD)
	reg.Counter("cost_usd", metrics.L("state", "infra")).Add(s.InfrastructureCostUSD())
	reg.Counter("energy_mj", metrics.L("state", "completed")).Add(st.EnergyMilliJ)
	reg.Counter("energy_mj", metrics.L("state", "failed")).Add(st.FailedEnergyMilliJ)

	for placement, n := range st.ByPlacement {
		reg.Counter("tasks_by_placement", metrics.L("placement", placement.String())).Add(float64(n))
	}

	if p := s.Platform(); p != nil {
		ps := p.Stats()
		reg.Counter("sl_invocations").Add(float64(ps.Invocations))
		reg.Counter("sl_cold_starts").Add(float64(ps.ColdStarts))
		reg.Counter("sl_warm_starts").Add(float64(ps.WarmStarts))
		reg.Counter("sl_errors").Add(float64(ps.Errors))
		reg.Counter("sl_billed_usd").Add(ps.BilledUSD)
		reg.Gauge("sl_warm_containers").Set(float64(p.WarmContainers()))
	}
	if s.Env.Edge != nil {
		reg.Counter("edge_executed").Add(float64(s.Env.Edge.Executed()))
		reg.Counter("edge_rejected").Add(float64(s.Env.Edge.Rejected()))
		reg.Counter("edge_faulted").Add(float64(s.Env.Edge.Faulted()))
		reg.Gauge("edge_utilization").Set(s.Env.Edge.Utilization())
	}
	if s.Env.VM != nil {
		reg.Counter("vm_executed").Add(float64(s.Env.VM.Executed()))
		reg.Counter("vm_faulted").Add(float64(s.Env.VM.Faulted()))
		reg.Gauge("vm_instances").Set(float64(s.Env.VM.Instances()))
	}
	reg.Counter("dev_executed").Add(float64(s.Env.Device.Executed()))
	reg.Counter("dev_drained_j").Add(s.Env.Device.DrainedJ())

	// Adaptive-layer state (decisions by arm, switches, drift resets,
	// sheds, resizes) appears only when the layer is on, so registries of
	// non-adaptive configurations keep their exact historical shape.
	if s.adapt != nil {
		s.adapt.FillRegistry(reg)
	}

	// Failover-layer state likewise appears only when the layer is on.
	if s.Scheduler.HasFailover() {
		fs := s.Scheduler.FailoverStats()
		reg.Counter("failover_shed").Add(float64(fs.Shed))
		reg.Counter("failover_queued").Add(float64(fs.Queued))
		reg.Counter("failover_rehomed").Add(float64(fs.ReHomed))
		reg.Counter("failover_localized").Add(float64(fs.Localized))
		reg.Counter("failover_lost").Add(float64(fs.Lost))
		reg.Counter("failover_probes").Add(float64(fs.Probes))
		reg.Counter("failover_transfer_usd").Add(fs.StateTransferUSD)
		reg.Counter("degraded_seconds").Add(s.Scheduler.DegradedSeconds())
		reg.Gauge("degradation_mode").Set(float64(s.Scheduler.DegradationMode()))
		for _, rs := range s.Scheduler.RegionSnapshots() {
			l := metrics.L("region", rs.Name)
			health := 1.0
			if rs.Down {
				health = 0
			}
			reg.Gauge("region_health", l).Set(health)
			reg.Counter("region_downs", l).Add(float64(rs.Downs))
			reg.Counter("region_down_seconds", l).Add(rs.DownSeconds)
			reg.Counter("region_mttd_s", l).Add(rs.MTTDSeconds)
			reg.Counter("region_mttr_s", l).Add(rs.MTTRSeconds)
		}
	}

	// The completion-time distribution merges observation-wise, so
	// registries from independent cells still answer quantile queries.
	if err := reg.LatencyHistogram("completion_s").Merge(st.Completion); err != nil {
		panic(err) // geometry is fixed by NewLatencyHistogram; cannot happen
	}
	return reg
}
