package core

import (
	"math"
	"testing"

	"offload/internal/fault"
	"offload/internal/metrics"
	"offload/internal/workload"
)

// runFaulty drives a cloud-all system with a 30% transient failure rate
// and no retries, so a substantial fraction of tasks fail permanently with
// their attempt already billed.
func runFaulty(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = PolicyCloudAll
	cfg.Retries = 1 // RetryPolicy{MaxAttempts:1}: every failure is permanent
	cfg.Fault = &fault.Config{FailureRate: 0.3}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.StandardMix(sys.Src.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), 0.5), gen, 100)
	sys.Run()
	return sys
}

// TestStatsCostIdentityUnderPermanentFailures: the money the scheduler
// accounts for — completed plus failed tasks — must equal what the
// platform billed, to 1e-9. Before the Stats.record fix, failed tasks'
// spend was silently dropped and this identity broke whenever anything
// failed permanently.
func TestStatsCostIdentityUnderPermanentFailures(t *testing.T) {
	sys := runFaulty(t)
	st := sys.Stats()
	if st.Failed == 0 {
		t.Fatal("no permanent failures at 30% fault rate; test exercises nothing")
	}
	if st.FailedCostUSD <= 0 {
		t.Fatal("failed tasks billed nothing: FailedCostUSD not accumulating")
	}
	billed := sys.Platform().Stats().BilledUSD
	if diff := math.Abs(st.TotalCostUSD() - billed); diff > 1e-9 {
		t.Fatalf("scheduler spend %g != platform billed %g (diff %g): failed-task cost dropped",
			st.TotalCostUSD(), billed, diff)
	}
	// The identity must NOT hold for completed-only spend — that is the
	// original bug. If it does, the fault injection failed to bill anyone.
	if math.Abs(st.CostUSD-billed) <= 1e-9 {
		t.Fatal("completed-only cost equals billed: no failed spend existed to account for")
	}
}

// TestReportMatchesStats: the Report summary must carry exactly the
// numbers Stats holds — one source of truth for examples, SLO gate and
// bench tables.
func TestReportMatchesStats(t *testing.T) {
	sys := runFaulty(t)
	st := sys.Stats()
	r := sys.Report()
	if r.Completed != st.Completed || r.Failed != st.Failed {
		t.Fatalf("Report counts %d/%d != Stats %d/%d", r.Completed, r.Failed, st.Completed, st.Failed)
	}
	if r.CompletedCostUSD != st.CostUSD || r.FailedCostUSD != st.FailedCostUSD {
		t.Fatal("Report cost fields diverge from Stats")
	}
	if r.CostPerTaskUSD != st.CostPerTask() {
		t.Fatal("Report.CostPerTaskUSD diverges from Stats.CostPerTask")
	}
	if r.P95CompletionS != st.P95Completion() {
		t.Fatal("Report.P95CompletionS diverges from Stats.P95Completion")
	}
	if r.InfraCostUSD != sys.InfrastructureCostUSD() {
		t.Fatal("Report.InfraCostUSD diverges from InfrastructureCostUSD")
	}
	if got := r.TotalCostUSD(); got != r.CompletedCostUSD+r.FailedCostUSD+r.InfraCostUSD {
		t.Fatalf("TotalCostUSD = %g, want sum of parts", got)
	}
	if r.Table().Len() == 0 {
		t.Fatal("Report.Table rendered no rows")
	}
}

// TestObserverIsInert: attaching an observer must not change any simulated
// result — same outcomes, same spend, same end time, same event count.
func TestObserverIsInert(t *testing.T) {
	run := func(observe bool) (*System, int) {
		cfg := DefaultConfig()
		cfg.Policy = PolicyDeadlineAware
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		samples := 0
		var obs *Observer
		if observe {
			obs = sys.Observe("test", 5)
		}
		gen, err := workload.StandardMix(sys.Src.Split())
		if err != nil {
			t.Fatal(err)
		}
		sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), 0.5), gen, 60)
		sys.Run()
		if obs != nil {
			samples = obs.Series().Len()
		}
		return sys, samples
	}
	plain, _ := run(false)
	observed, samples := run(true)
	if samples == 0 {
		t.Fatal("observer recorded no samples")
	}
	if a, b := plain.Stats(), observed.Stats(); a.MeanCompletion() != b.MeanCompletion() ||
		a.CostUSD != b.CostUSD || a.Completed != b.Completed {
		t.Fatal("observer changed simulation results")
	}
	if plain.Eng.Now() != observed.Eng.Now() {
		t.Fatalf("observer moved the end-of-run clock: %v vs %v", plain.Eng.Now(), observed.Eng.Now())
	}
	if plain.Eng.Fired() != observed.Eng.Fired() {
		t.Fatalf("observer fired events: %d vs %d", plain.Eng.Fired(), observed.Eng.Fired())
	}
	if plain.InfrastructureCostUSD() != observed.InfrastructureCostUSD() {
		t.Fatal("observer changed infrastructure cost accrual")
	}
}

// TestSystemRegistrySnapshot: the end-of-run registry must agree with the
// stats it was derived from.
func TestSystemRegistrySnapshot(t *testing.T) {
	sys := runFaulty(t)
	st := sys.Stats()
	reg := sys.Registry("run")
	if got := reg.Counter("tasks", metrics.L("state", "completed")).Value(); got != float64(st.Completed) {
		t.Fatalf("registry completed = %g, want %d", got, st.Completed)
	}
	if got := reg.Counter("cost_usd", metrics.L("state", "failed")).Value(); got != st.FailedCostUSD {
		t.Fatalf("registry failed cost = %g, want %g", got, st.FailedCostUSD)
	}
	if got := reg.LatencyHistogram("completion_s").Count(); got != st.Completion.Count() {
		t.Fatalf("registry completion count = %d, want %d", got, st.Completion.Count())
	}
}
