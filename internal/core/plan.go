package core

import (
	"fmt"

	"offload/internal/alloc"
	"offload/internal/callgraph"
	"offload/internal/cicd"
	"offload/internal/device"
	"offload/internal/network"
	"offload/internal/partition"
	"offload/internal/profile"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/workload"
)

// Weights converts seconds, joules and dollars into the partitioner's
// scalar objective.
type Weights struct {
	Latency float64 // per second
	Energy  float64 // per joule
	Money   float64 // per dollar
}

// DefaultWeights balances the three for a battery-powered consumer device:
// a dollar matters, a joule is ~2.3e-5 dollars (12 Wh battery valued at
// $1), a second of a non-time-critical job is worth very little.
func DefaultWeights() Weights {
	return Weights{Latency: 0.001, Energy: 2.3e-5, Money: 1}
}

// CostModelFor derives the partitioner's cost model from concrete
// substrate configurations: device speed and energy, serverless CPU at the
// given memory hint, network bandwidth and price.
func CostModelFor(dev device.Config, sl serverless.Config, memHint int64, net network.Config, w Weights) partition.CostModel {
	share := sl.CPUShare(memHint)
	gb := float64(memHint) / float64(1<<30)
	return partition.CostModel{
		LocalHz:            dev.CPUHz,
		RemoteHz:           sl.BaselineHz * min(share, 1), // serial components
		BandwidthBps:       min(net.UplinkBps, net.DownlinkBps),
		RTTSeconds:         2 * float64(net.OneWayDelay),
		USDPerRemoteSecond: gb * sl.Price.PerGBSecondUSD,
		EnergyJPerCycle:    dev.ActivePowerW / dev.CPUHz,
		RadioJPerByte:      dev.TxPowerW * 8 / net.UplinkBps,
		LatencyWeight:      w.Latency,
		EnergyWeight:       w.Energy,
		MoneyWeight:        w.Money,
		MaxRemoteMemory:    sl.MaxMemory,
	}
}

// PlanOptions configures the offline planning journey.
type PlanOptions struct {
	Device     device.Config
	Serverless serverless.Config
	CloudPath  network.Config
	Weights    Weights

	ProfileRuns  int     // default 30
	ProfileNoise float64 // relative measurement noise, default 0.05
	Seed         uint64

	// MemoryHint anchors the remote CPU speed in the cost model before
	// per-component allocation happens; default is the full-share size.
	MemoryHint int64
}

// Plan is the offline artefact for one application: what to offload, how
// to size it, and the workload template for simulating it.
type Plan struct {
	App       string
	Catalog   *profile.Catalog
	Partition partition.Result
	Remote    []string
	Manifest  cicd.Manifest
	Template  workload.TaskTemplate
	// EstimatedCostPerRunUSD is the allocator's expected serverless bill
	// for one application run under the plan.
	EstimatedCostPerRunUSD float64
}

// PlanApp runs the full offline journey on an application graph:
// determine demands (profile), partition (min-cut), allocate serverless
// resources per offloaded component, and emit the deployment manifest.
func PlanApp(g *callgraph.Graph, opts PlanOptions) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Device.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Serverless.Validate(); err != nil {
		return nil, err
	}
	if err := opts.CloudPath.Validate(); err != nil {
		return nil, err
	}
	if opts.Weights == (Weights{}) {
		opts.Weights = DefaultWeights()
	}
	runs := opts.ProfileRuns
	if runs <= 0 {
		runs = 30
	}
	noise := opts.ProfileNoise
	if noise == 0 {
		noise = 0.05
	}
	memHint := opts.MemoryHint
	if memHint == 0 {
		memHint = opts.Serverless.FullShareBytes
	}

	src := rng.New(opts.Seed + 0x9e37)
	meter := profile.NewMeter(src, noise)
	cat, err := profile.BuildCatalog(g, meter, runs)
	if err != nil {
		return nil, err
	}
	est, err := cat.EstimatedGraph(g)
	if err != nil {
		return nil, err
	}

	cm := CostModelFor(opts.Device, opts.Serverless, memHint, opts.CloudPath, opts.Weights)
	res, err := partition.MinCut(est, cm)
	if err != nil {
		return nil, err
	}

	allocator := alloc.New(opts.Serverless)
	plan := &Plan{
		App:       g.Name(),
		Catalog:   cat,
		Partition: res,
		Remote:    res.Remote(est),
		Manifest:  cicd.Manifest{App: g.Name(), Remote: res.Remote(est)},
	}
	for _, name := range plan.Remote {
		id, _ := est.Lookup(name)
		comp := est.Component(id)
		dec, err := allocator.Choose(alloc.Request{
			Cycles:           comp.Cycles,
			ParallelFraction: comp.ParallelFraction,
			MemoryFloorBytes: comp.MemoryBytes,
			ColdStartProb:    1,
		})
		if err != nil {
			return nil, fmt.Errorf("core: allocating %s: %w", name, err)
		}
		plan.Manifest.Functions = append(plan.Manifest.Functions, cicd.FunctionSpec{
			Name:        g.Name() + "-" + name,
			Component:   name,
			MemoryBytes: dec.MemoryBytes,
		})
		plan.EstimatedCostPerRunUSD += dec.ExpectedCostUSD * comp.CallsPerRun
	}

	tmpl, err := workload.FromGraph(est)
	if err != nil {
		return nil, err
	}
	plan.Template = tmpl
	return plan, nil
}
