package core

import (
	"offload/internal/metrics"
)

// Report is the run summary every consumer reads from the same place: the
// examples, the CI/CD SLO gate and the offbench tables all see identical
// numbers because they all come through here.
type Report struct {
	Policy PolicyName

	Completed uint64
	Failed    uint64
	Missed    uint64
	Retries   uint64
	Timeouts  uint64
	Hedges    uint64
	Fallbacks uint64

	MeanCompletionS float64
	P95CompletionS  float64
	MissRate        float64

	// Spend splits by task fate; CompletedCostUSD + FailedCostUSD equals
	// the platforms' per-task billing.
	CompletedCostUSD float64
	FailedCostUSD    float64
	InfraCostUSD     float64 // provisioning, instance-hours, capacity fees

	CostPerTaskUSD      float64 // total per-task spend / completed tasks
	EnergyPerTaskMilliJ float64

	ColdStartFraction float64 // 0 when no serverless platform is present
}

// TotalCostUSD returns all money spent: per-task billing for completed and
// failed tasks plus infrastructure accrual.
func (r Report) TotalCostUSD() float64 {
	return r.CompletedCostUSD + r.FailedCostUSD + r.InfraCostUSD
}

// Report summarises the run so far. Call after System.Run.
func (s *System) Report() Report {
	st := s.Stats()
	r := Report{
		Policy:              s.cfg.Policy,
		Completed:           st.Completed,
		Failed:              st.Failed,
		Missed:              st.Missed,
		Retries:             st.Retries,
		Timeouts:            st.Timeouts,
		Hedges:              st.Hedges,
		Fallbacks:           st.Fallbacks,
		MeanCompletionS:     st.MeanCompletion(),
		P95CompletionS:      st.P95Completion(),
		MissRate:            st.MissRate(),
		CompletedCostUSD:    st.CostUSD,
		FailedCostUSD:       st.FailedCostUSD,
		InfraCostUSD:        s.InfrastructureCostUSD(),
		CostPerTaskUSD:      st.CostPerTask(),
		EnergyPerTaskMilliJ: st.EnergyPerTaskMilliJ(),
	}
	if p := s.Platform(); p != nil {
		r.ColdStartFraction = p.ColdStartFraction()
	}
	return r
}

// Table renders the report as a two-column metrics.Table for printing.
func (r Report) Table() *metrics.Table {
	t := metrics.NewTable("run report · policy="+string(r.Policy), "metric", "value")
	t.AddRowf("completed", r.Completed)
	t.AddRowf("failed", r.Failed)
	t.AddRowf("missed deadline", r.Missed)
	t.AddRowf("retries", r.Retries)
	t.AddRowf("timeouts", r.Timeouts)
	t.AddRowf("hedges", r.Hedges)
	t.AddRowf("fallbacks", r.Fallbacks)
	t.AddRowf("mean completion (s)", fmtF(r.MeanCompletionS))
	t.AddRowf("p95 completion (s)", fmtF(r.P95CompletionS))
	t.AddRowf("miss rate", fmtF(r.MissRate))
	t.AddRowf("cost completed (USD)", fmtF(r.CompletedCostUSD))
	t.AddRowf("cost failed (USD)", fmtF(r.FailedCostUSD))
	t.AddRowf("cost infra (USD)", fmtF(r.InfraCostUSD))
	t.AddRowf("cost total (USD)", fmtF(r.TotalCostUSD()))
	t.AddRowf("cost per task (USD)", fmtF(r.CostPerTaskUSD))
	t.AddRowf("energy per task (mJ)", fmtF(r.EnergyPerTaskMilliJ))
	t.AddRowf("cold-start fraction", fmtF(r.ColdStartFraction))
	return t
}

func fmtF(v float64) string {
	return metrics.FormatFloat(v)
}
