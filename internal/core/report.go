package core

import (
	"offload/internal/metrics"
	"offload/internal/trace"
)

// Report is the run summary every consumer reads from the same place: the
// examples, the CI/CD SLO gate and the offbench tables all see identical
// numbers because they all come through here.
type Report struct {
	Policy PolicyName

	Completed uint64
	Failed    uint64
	Missed    uint64
	Retries   uint64
	Timeouts  uint64
	Hedges    uint64
	Fallbacks uint64

	MeanCompletionS float64
	P95CompletionS  float64
	MissRate        float64

	// Spend splits by task fate; CompletedCostUSD + FailedCostUSD equals
	// the platforms' per-task billing.
	CompletedCostUSD float64
	FailedCostUSD    float64
	InfraCostUSD     float64 // provisioning, instance-hours, capacity fees

	CostPerTaskUSD      float64 // total per-task spend / completed tasks
	EnergyPerTaskMilliJ float64

	ColdStartFraction float64 // 0 when no serverless platform is present

	// Phases is the critical-path phase breakdown over all completed
	// tasks — mean seconds on the critical path and share of total
	// completion time per phase. Filled only when EnableSpans was called
	// before the run; empty otherwise, so span-free reports are
	// unchanged.
	Phases []PhaseShare

	// Job-level summaries, filled only when the configuration carries a
	// DAG block and jobs were submitted; zero otherwise, so task-only
	// reports are unchanged.
	Jobs          uint64
	JobsFailed    uint64
	NodesSkipped  uint64
	MeanMakespanS float64
	P95MakespanS  float64
	MeanCritS     float64 // mean summed critical-path seconds per job
	MeanSlackS    float64 // mean per-node earliest-start slack
}

// PhaseShare is one critical-path phase's contribution to completion
// time across the run.
type PhaseShare struct {
	Phase string
	MeanS float64 // mean critical-path seconds per completed task
	Share float64 // fraction of total completion time
}

// TotalCostUSD returns all money spent: per-task billing for completed and
// failed tasks plus infrastructure accrual.
func (r Report) TotalCostUSD() float64 {
	return r.CompletedCostUSD + r.FailedCostUSD + r.InfraCostUSD
}

// Report summarises the run so far. Call after System.Run.
func (s *System) Report() Report {
	st := s.Stats()
	r := Report{
		Policy:              s.cfg.Policy,
		Completed:           st.Completed,
		Failed:              st.Failed,
		Missed:              st.Missed,
		Retries:             st.Retries,
		Timeouts:            st.Timeouts,
		Hedges:              st.Hedges,
		Fallbacks:           st.Fallbacks,
		MeanCompletionS:     st.MeanCompletion(),
		P95CompletionS:      st.P95Completion(),
		MissRate:            st.MissRate(),
		CompletedCostUSD:    st.CostUSD,
		FailedCostUSD:       st.FailedCostUSD,
		InfraCostUSD:        s.InfrastructureCostUSD(),
		CostPerTaskUSD:      st.CostPerTask(),
		EnergyPerTaskMilliJ: st.EnergyPerTaskMilliJ(),
	}
	if p := s.Platform(); p != nil {
		r.ColdStartFraction = p.ColdStartFraction()
	}
	if js := s.JobStats(); js != nil {
		r.Jobs = js.Jobs
		r.JobsFailed = js.Failed
		r.NodesSkipped = js.NodesSkipped
		r.MeanMakespanS = js.MeanMakespanS()
		r.P95MakespanS = js.P95MakespanS()
		r.MeanCritS = js.MeanCritPathS()
		r.MeanSlackS = js.MeanSlackS()
	}
	if set := s.SpanSet(); set != nil {
		if g := trace.Attribute(set).Group("all"); g != nil {
			for _, phase := range trace.Phases {
				ps := g.Phase[phase]
				if ps.MeanS == 0 {
					continue
				}
				r.Phases = append(r.Phases, PhaseShare{
					Phase: phase, MeanS: ps.MeanS, Share: ps.ShareMean,
				})
			}
		}
	}
	return r
}

// Table renders the report as a two-column metrics.Table for printing.
func (r Report) Table() *metrics.Table {
	t := metrics.NewTable("run report · policy="+string(r.Policy), "metric", "value")
	t.AddRowf("completed", r.Completed)
	t.AddRowf("failed", r.Failed)
	t.AddRowf("missed deadline", r.Missed)
	t.AddRowf("retries", r.Retries)
	t.AddRowf("timeouts", r.Timeouts)
	t.AddRowf("hedges", r.Hedges)
	t.AddRowf("fallbacks", r.Fallbacks)
	t.AddRowf("mean completion (s)", fmtF(r.MeanCompletionS))
	t.AddRowf("p95 completion (s)", fmtF(r.P95CompletionS))
	t.AddRowf("miss rate", fmtF(r.MissRate))
	t.AddRowf("cost completed (USD)", fmtF(r.CompletedCostUSD))
	t.AddRowf("cost failed (USD)", fmtF(r.FailedCostUSD))
	t.AddRowf("cost infra (USD)", fmtF(r.InfraCostUSD))
	t.AddRowf("cost total (USD)", fmtF(r.TotalCostUSD()))
	t.AddRowf("cost per task (USD)", fmtF(r.CostPerTaskUSD))
	t.AddRowf("energy per task (mJ)", fmtF(r.EnergyPerTaskMilliJ))
	t.AddRowf("cold-start fraction", fmtF(r.ColdStartFraction))
	for _, ph := range r.Phases {
		t.AddRowf("phase "+ph.Phase+" (s)", fmtF(ph.MeanS))
	}
	if r.Jobs > 0 {
		t.AddRowf("jobs", r.Jobs)
		t.AddRowf("jobs failed", r.JobsFailed)
		t.AddRowf("nodes skipped", r.NodesSkipped)
		t.AddRowf("mean makespan (s)", fmtF(r.MeanMakespanS))
		t.AddRowf("p95 makespan (s)", fmtF(r.P95MakespanS))
		t.AddRowf("mean critical path (s)", fmtF(r.MeanCritS))
		t.AddRowf("mean node slack (s)", fmtF(r.MeanSlackS))
	}
	return t
}

func fmtF(v float64) string {
	return metrics.FormatFloat(v)
}
