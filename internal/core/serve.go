package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/sim"
)

// Serve-mode errors the daemon maps onto HTTP statuses.
var (
	// ErrOverloaded means the admission cap rejected the submission: the
	// caller should back off (HTTP 429).
	ErrOverloaded = errors.New("core: serve admission cap reached")
	// ErrDraining means the server is shutting down and no longer
	// accepts work (HTTP 503).
	ErrDraining = errors.New("core: server draining")
)

// Server is the serve-mode assembly: a System whose event core runs on a
// sim.Realtime loop instead of a batch Run, accepting task submissions
// from any goroutine in wall-clock (or simulated) time. The entire
// engine–scheduler–substrate stack is reused unchanged; concurrency
// stops at the loop's inbox, so none of the simulation code grows locks.
//
// Construct with NewServer, call Start, submit with Submit or SubmitWait,
// and shut down with Drain (graceful) or Close (immediate).
type Server struct {
	sys *System
	rt  *sim.Realtime

	// maxInFlight caps accepted-but-unsettled tasks; above it Submit
	// sheds with ErrOverloaded. Zero means uncapped.
	maxInFlight uint64

	nextID   atomic.Uint64
	accepted atomic.Uint64
	settled  atomic.Uint64
	shed     atomic.Uint64
	rejected atomic.Uint64 // validation failures surfaced as errors

	ready    atomic.Bool
	draining atomic.Bool
	started  atomic.Bool
}

// NewServer assembles a serve-mode system from the configuration. A nil
// clock runs the deterministic sim clock (events fire back to back —
// the testing and CI-smoke mode); a wall clock makes the daemon live.
// maxInFlight caps concurrently outstanding tasks (0 = uncapped).
//
// Batch and OffPeakShift are batch-run features (their flush semantics
// assume a finite workload) and are rejected here.
func NewServer(cfg Config, clock sim.Clock, maxInFlight int) (*Server, error) {
	if cfg.Batch != nil || cfg.OffPeakShift {
		return nil, fmt.Errorf("core: serve mode does not support Batch or OffPeakShift")
	}
	if cfg.ShardCount > 1 {
		return nil, fmt.Errorf("core: serve mode does not support sharding")
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sys: sys,
		rt:  sim.NewRealtime(sys.Eng, clock),
	}
	if maxInFlight > 0 {
		s.maxInFlight = uint64(maxInFlight)
	}
	// Count settlements on the loop goroutine; InFlight derives from the
	// accepted/settled pair without touching scheduler internals.
	sys.Scheduler.ChainOutcomeHook(func(model.Outcome) {
		s.settled.Add(1)
	})
	return s, nil
}

// System returns the underlying system. Only code running on the loop —
// closures passed through Call — may touch it once Start has been called.
func (s *Server) System() *System { return s.sys }

// Start launches the event loop and warms the server: it returns once
// the loop goroutine is live and has executed its first closure, after
// which Ready reports true. Start must be called exactly once.
func (s *Server) Start() error {
	if !s.started.CompareAndSwap(false, true) {
		return fmt.Errorf("core: server already started")
	}
	go s.rt.Run()
	// The warm-up barrier: substrates exist, the loop is scheduling.
	if !s.rt.Call(func() {}) {
		return fmt.Errorf("core: serve loop failed to start")
	}
	s.ready.Store(true)
	return nil
}

// Ready reports whether the loop is warm and accepting work: the /readyz
// signal. It turns false again when draining begins.
func (s *Server) Ready() bool {
	return s.ready.Load() && !s.draining.Load()
}

// InFlight returns how many accepted tasks have not settled yet.
func (s *Server) InFlight() uint64 {
	return s.accepted.Load() - s.settled.Load()
}

// Accepted returns how many tasks have been accepted so far.
func (s *Server) Accepted() uint64 { return s.accepted.Load() }

// Shed returns how many submissions the admission cap rejected.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// Submit accepts one task for scheduling: it assigns the server-wide
// task ID, stamps the submission into the loop, and returns immediately.
// then, when non-nil, fires exactly once with the final outcome — on the
// loop goroutine, so it must not block. Submit is safe from any
// goroutine and returns ErrOverloaded past the admission cap or
// ErrDraining during shutdown.
func (s *Server) Submit(task *model.Task, then func(model.Outcome)) (model.TaskID, error) {
	if s.draining.Load() {
		return 0, ErrDraining
	}
	if task == nil {
		return 0, fmt.Errorf("core: nil task")
	}
	if s.maxInFlight > 0 && s.InFlight() >= s.maxInFlight {
		s.shed.Add(1)
		return 0, ErrOverloaded
	}
	if err := task.Validate(); err != nil {
		s.rejected.Add(1)
		return 0, err
	}
	id := model.TaskID(s.nextID.Add(1))
	task.ID = id
	s.accepted.Add(1)
	if !s.rt.Do(func() { s.sys.Scheduler.SubmitThen(task, then) }) {
		s.accepted.Add(^uint64(0)) // undo: the loop is gone
		return 0, ErrDraining
	}
	return id, nil
}

// SubmitWait submits the task and blocks until it settles or the context
// is cancelled. On cancellation the task keeps running to completion
// inside the loop; only the wait is abandoned.
func (s *Server) SubmitWait(ctx context.Context, task *model.Task) (model.Outcome, error) {
	ch := make(chan model.Outcome, 1)
	if _, err := s.Submit(task, func(o model.Outcome) { ch <- o }); err != nil {
		return model.Outcome{}, err
	}
	select {
	case o := <-ch:
		return o, nil
	case <-ctx.Done():
		return model.Outcome{}, ctx.Err()
	}
}

// Report snapshots the run summary. The snapshot runs on the loop
// goroutine, so it is consistent: no event is mid-flight while it reads.
// ok is false when the loop has stopped.
func (s *Server) Report() (Report, bool) {
	var r Report
	ok := s.rt.Call(func() { r = s.sys.Report() })
	return r, ok
}

// Registry snapshots the metrics registry under the given name,
// augmented with the serve layer's own counters and gauges
// (serve_accepted, serve_shed, serve_inflight, ...).
func (s *Server) Registry(name string) (*metrics.Registry, bool) {
	var reg *metrics.Registry
	if ok := s.rt.Call(func() { reg = s.sys.Registry(name) }); !ok {
		return nil, false
	}
	reg.Counter("serve_accepted").Add(float64(s.accepted.Load()))
	reg.Counter("serve_settled").Add(float64(s.settled.Load()))
	reg.Counter("serve_shed").Add(float64(s.shed.Load()))
	reg.Counter("serve_rejected").Add(float64(s.rejected.Load()))
	reg.Gauge("serve_inflight").Set(float64(s.InFlight()))
	return reg, true
}

// WriteMetrics renders the current registry snapshot in Prometheus text
// exposition format: the body of GET /metrics.
func (s *Server) WriteMetrics(w io.Writer) error {
	reg, ok := s.Registry("serve")
	if !ok {
		return fmt.Errorf("core: serve loop stopped")
	}
	return metrics.WritePrometheus(w, reg)
}

// Drain performs a graceful shutdown: new submissions are refused, tasks
// already accepted run to completion (tasks parked by the failover
// ladder are localized rather than stranded), and the loop stops once
// everything has settled or the context expires. It returns the number
// of tasks still unsettled at exit — zero on a clean drain.
func (s *Server) Drain(ctx context.Context) (uint64, error) {
	s.draining.Store(true)
	s.ready.Store(false)
	defer func() {
		s.rt.Stop()
		<-s.rt.Done()
	}()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.InFlight() == 0 {
			return 0, nil
		}
		// Work parked in the failover wait queue would never run if the
		// outage outlasts the daemon: localize it, as batch Run does.
		s.rt.Call(func() { s.sys.Scheduler.FlushFailover() })
		if s.InFlight() == 0 {
			return 0, nil
		}
		select {
		case <-ctx.Done():
			return s.InFlight(), fmt.Errorf("core: drain aborted with %d tasks in flight: %w", s.InFlight(), ctx.Err())
		case <-tick.C:
		}
	}
}

// Close stops the loop immediately without draining. Safe after Drain.
func (s *Server) Close() {
	s.draining.Store(true)
	s.ready.Store(false)
	s.rt.Stop()
	<-s.rt.Done()
}
