package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/sim"
)

func serveTask() *model.Task {
	return &model.Task{
		App:         "serve-test",
		InputBytes:  64 << 10,
		OutputBytes: 16 << 10,
		Cycles:      2e8,
		MemoryBytes: 256 << 20,
	}
}

func startedServer(t *testing.T, clock sim.Clock, maxInFlight int) *Server {
	t.Helper()
	s, err := NewServer(DefaultConfig(), clock, maxInFlight)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return s
}

func TestServerSubmitWaitAndReport(t *testing.T) {
	s := startedServer(t, sim.SimClock{}, 0)
	defer s.Close()
	if !s.Ready() {
		t.Fatal("server not ready after Start")
	}

	const n = 20
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		o, err := s.SubmitWait(ctx, serveTask())
		if err != nil {
			t.Fatalf("SubmitWait %d: %v", i, err)
		}
		if o.Failed {
			t.Fatalf("task %d failed: %+v", i, o)
		}
		if o.Task.ID == 0 {
			t.Fatal("server did not assign a task ID")
		}
		if o.Finished < o.Started {
			t.Fatalf("task %d finished %v before start %v", i, o.Finished, o.Started)
		}
	}

	r, ok := s.Report()
	if !ok {
		t.Fatal("Report after loop stop")
	}
	if r.Completed != n {
		t.Fatalf("report.Completed = %d, want %d", r.Completed, n)
	}

	reg, ok := s.Registry("serve")
	if !ok {
		t.Fatal("Registry after loop stop")
	}
	if v := reg.Counter("tasks", metrics.L("state", "completed")).Value(); v != n {
		t.Errorf("tasks{state=completed} = %g, want %d", v, n)
	}
	if v := reg.Counter("serve_accepted").Value(); v != n {
		t.Errorf("serve_accepted = %g, want %d", v, n)
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	fams, err := metrics.ParseExposition(&buf)
	if err != nil {
		t.Fatalf("exposition output unparseable: %v", err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "tasks" && f.Kind == "counter" {
			found = true
		}
	}
	if !found {
		t.Error("tasks counter family missing from /metrics body")
	}
}

func TestServerAdmissionCapSheds(t *testing.T) {
	s, err := NewServer(DefaultConfig(), sim.SimClock{}, 1)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	// Deliberately not started: accepted work stays in flight, so the
	// second submission must shed.
	if _, err := s.Submit(serveTask(), nil); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if _, err := s.Submit(serveTask(), nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second Submit err = %v, want ErrOverloaded", err)
	}
	if s.Shed() != 1 {
		t.Errorf("Shed = %d, want 1", s.Shed())
	}

	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if n, err := s.Drain(ctx); err != nil || n != 0 {
		t.Fatalf("Drain = (%d, %v), want clean", n, err)
	}
}

func TestServerDrainRejectsNewWork(t *testing.T) {
	s := startedServer(t, sim.SimClock{}, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if n, err := s.Drain(ctx); err != nil || n != 0 {
		t.Fatalf("Drain = (%d, %v), want clean", n, err)
	}
	if s.Ready() {
		t.Error("Ready after Drain")
	}
	if _, err := s.Submit(serveTask(), nil); !errors.Is(err, ErrDraining) {
		t.Errorf("Submit after Drain err = %v, want ErrDraining", err)
	}
}

func TestServerDrainWaitsForInFlight(t *testing.T) {
	// A dilated wall clock keeps tasks genuinely in flight for a few
	// wall milliseconds, so the drain has something to wait for.
	s := startedServer(t, sim.NewWallClock(1000), 0)
	done := make(chan model.Outcome, 64)
	for i := 0; i < 32; i++ {
		if _, err := s.Submit(serveTask(), func(o model.Outcome) { done <- o }); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	left, err := s.Drain(ctx)
	if err != nil || left != 0 {
		t.Fatalf("Drain = (%d, %v), want clean", left, err)
	}
	if len(done) != 32 {
		t.Errorf("outcomes delivered = %d, want 32", len(done))
	}
}

func TestServerRejectsInvalidTask(t *testing.T) {
	s := startedServer(t, sim.SimClock{}, 0)
	defer s.Close()
	bad := serveTask()
	bad.Cycles = -1
	if _, err := s.Submit(bad, nil); err == nil {
		t.Fatal("Submit of invalid task succeeded")
	}
	if s.Accepted() != 0 {
		t.Errorf("Accepted = %d after a rejected task, want 0", s.Accepted())
	}
}

func TestServerRejectsBatchAndShards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Batch = &BatchConfig{Size: 4, MaxWait: 10}
	if _, err := NewServer(cfg, nil, 0); err == nil {
		t.Error("NewServer accepted a Batch config")
	}
	cfg = DefaultConfig()
	cfg.ShardCount = 4
	if _, err := NewServer(cfg, nil, 0); err == nil {
		t.Error("NewServer accepted a sharded config")
	}
}

func TestServerDoubleStart(t *testing.T) {
	s := startedServer(t, sim.SimClock{}, 0)
	defer s.Close()
	if err := s.Start(); err == nil {
		t.Error("second Start succeeded")
	}
}
