package core

import (
	"fmt"

	"offload/internal/cloudvm"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/trace"
	"offload/internal/workload"
)

// ShardedFleet is Fleet at million-UE scale: the UEs are partitioned
// across N worker shards, each owning its devices' event heap, advancing
// in lockstep epochs against a hub engine that owns the shared substrates
// (serverless platform, edge site, VM fleet). Remote executions cross the
// conservative barrier (sim.ShardedEngine) in canonical order, so results
// are byte-identical at every shard count — including one shard, which is
// the serial reference the determinism gate diffs against.
//
// Determinism layout: every result-affecting random stream is keyed by UE
// index (rng.Fork(Derive(seed, 1), ue)), never by shard, and task IDs are
// offset per UE (ue<<32), so the UE→shard partition cannot influence a
// single draw or identifier. The hub draws from rng.Fork(seed, 0). See
// DESIGN.md for the full barrier-protocol argument.
type ShardedFleet struct {
	SE *sim.ShardedEngine

	Devices    []*device.Device
	Schedulers []*sched.Scheduler

	platform *serverless.Platform
	edge     *edge.Cluster
	vm       *cloudvm.Fleet
	hub      *shardHub

	ueSrc    []*rng.Source
	spanRecs []*trace.SpanRecorder

	cfg Config
}

// fixedCycles is a Predictor that replays a demand estimate captured
// earlier: the shard-side scheduler predicts at dispatch time, and the
// hub-side function pool must size instances with exactly that estimate,
// not a fresh one from a different predictor state.
type fixedCycles float64

func (c fixedCycles) PredictCycles(*model.Task) float64 { return float64(c) }
func (fixedCycles) Observe(*model.Task, float64)        {}

// shardHub executes remote attempts on the hub engine. Its execute method
// runs hub-side (delivered through the barrier in canonical order) and
// mirrors the serial scheduler's dispatchTo arms for the three remote
// substrates.
type shardHub struct {
	se   *sim.ShardedEngine
	pool *sched.FunctionPool
	edge *edge.Cluster
	vm   *cloudvm.Fleet
}

func (h *shardHub) execute(task *model.Task, placement model.Placement, predicted float64, done func(model.ExecReport)) {
	switch placement {
	case model.PlaceEdge:
		h.edge.Execute(task, done)
	case model.PlaceFunction:
		// Deploying/resizing the function mutates shared pool state,
		// which is exactly why this happens hub-side; fixedCycles hands
		// it the shard-captured prediction the serial path would use.
		fn, err := h.pool.For(task, fixedCycles(predicted))
		if err != nil {
			now := h.se.Hub().Now()
			done(model.ExecReport{Start: now, End: now, Err: err})
			return
		}
		fn.Execute(task, done)
	case model.PlaceVM:
		h.vm.Execute(task, done)
	default:
		now := h.se.Hub().Now()
		done(model.ExecReport{Start: now, End: now,
			Err: fmt.Errorf("core: sharded hub cannot execute placement %v", placement)})
	}
}

// uePort implements sched.RemoteBackends for one UE: it forwards the
// execution to the hub at the next barrier (keyed by UE index, so
// delivery order is canonical and shard-count-invariant) and returns the
// report to the UE's shard at the barrier after the execution finishes.
type uePort struct {
	hub   *shardHub
	shard int
	key   uint64 // UE index: the canonical cross-shard ordering key
}

var _ sched.RemoteBackends = (*uePort)(nil)

func (p *uePort) Execute(task *model.Task, placement model.Placement, predicted float64, done func(model.ExecReport)) {
	h := p.hub
	h.se.SendToHub(p.shard, p.key, func() {
		h.execute(task, placement, predicted, func(rep model.ExecReport) {
			h.se.SendToShard(p.shard, func() { done(rep) })
		})
	})
}

// NewShardedFleet builds n UEs partitioned round-robin (UE i on shard
// i mod ShardCount) over the configuration's shared substrates. Features
// that mutate shared or global state from per-UE code paths are not
// supported at sharded scope and are rejected up front; the supported
// surface (static policies, retries, prediction noise, DVFS-free local
// execution) is exactly what the scale experiments use.
func NewShardedFleet(cfg Config, n int) (*ShardedFleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: sharded fleet of %d devices", n)
	}
	shards := cfg.ShardCount
	if shards == 0 {
		shards = 1
	}
	if shards < 0 {
		return nil, fmt.Errorf("core: ShardCount %d negative", cfg.ShardCount)
	}
	interval := cfg.ShardInterval
	if interval == 0 {
		interval = DefaultShardInterval
	}
	if interval < 0 {
		return nil, fmt.Errorf("core: ShardInterval %v negative", cfg.ShardInterval)
	}
	switch {
	case cfg.Batch != nil || cfg.OffPeakShift:
		return nil, fmt.Errorf("core: sharded fleet does not support Batch or OffPeakShift")
	case cfg.Resilience != nil:
		return nil, fmt.Errorf("core: sharded fleet does not support Resilience")
	case cfg.Regions != nil:
		return nil, fmt.Errorf("core: sharded fleet does not support Regions")
	case cfg.Adapt != nil:
		return nil, fmt.Errorf("core: sharded fleet does not support Adapt")
	case cfg.Policy == PolicyBanditUCB || cfg.Policy == PolicyBanditGreedy:
		return nil, fmt.Errorf("core: sharded fleet does not support bandit policies")
	case cfg.DailyBudgetUSD > 0:
		return nil, fmt.Errorf("core: sharded fleet does not support DailyBudgetUSD")
	case cfg.Fault != nil || cfg.EdgeFault != nil || cfg.VMFault != nil:
		return nil, fmt.Errorf("core: sharded fleet does not support fault injection")
	case cfg.DAG != nil:
		return nil, fmt.Errorf("core: sharded fleet does not support DAG jobs")
	}
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}

	se := sim.NewSharded(shards, interval)
	hubEng := se.Hub()
	hubSrc := rng.Fork(cfg.Seed, 0)
	f := &ShardedFleet{SE: se, cfg: cfg}

	var pool *sched.FunctionPool
	if cfg.Serverless != nil {
		if cfg.CloudPath == nil {
			return nil, fmt.Errorf("core: serverless configured without a cloud path")
		}
		f.platform = serverless.NewPlatform(hubEng, hubSrc.Split(), *cfg.Serverless)
		pool = sched.NewFunctionPool(f.platform)
		pool.ArrivalRateHint = cfg.ArrivalRateHint * float64(n)
		pool.RedeployTolerance = cfg.RedeployTolerance
		pool.ProvisionedConcurrency = cfg.ProvisionedConcurrency
	}
	if cfg.Edge != nil {
		if cfg.EdgePath == nil {
			return nil, fmt.Errorf("core: edge configured without an edge path")
		}
		f.edge = edge.New(hubEng, *cfg.Edge)
	}
	if cfg.VM != nil {
		if cfg.CloudPath == nil {
			return nil, fmt.Errorf("core: VM configured without a cloud path")
		}
		f.vm = cloudvm.New(hubEng, *cfg.VM)
	}
	f.hub = &shardHub{se: se, pool: pool, edge: f.edge, vm: f.vm}

	// Per-UE rng base: Derive(seed, 1) so the hub stream (Fork(seed, 0))
	// and UE streams can never collide whatever n is.
	ueBase := rng.Derive(cfg.Seed, 1)

	for i := 0; i < n; i++ {
		sidx := i % shards
		eng := se.Shard(sidx)
		src := rng.Fork(ueBase, uint64(i))
		f.ueSrc = append(f.ueSrc, src)

		devCfg := cfg.Device
		devCfg.Name = fmt.Sprintf("%s-%04d", cfg.Device.Name, i)
		env := &sched.Env{
			Eng:    eng,
			Device: device.New(eng, devCfg),
			Remote: &uePort{hub: f.hub, shard: sidx, key: uint64(i)},
		}
		if f.edge != nil {
			env.Edge = f.edge
			env.EdgePath = network.New(eng, src.Split(), *cfg.EdgePath)
		}
		if pool != nil {
			env.Functions = pool
			env.CloudPath = network.New(eng, src.Split(), *cfg.CloudPath)
		}
		if f.vm != nil {
			env.VM = f.vm
			if env.CloudPath == nil {
				env.CloudPath = network.New(eng, src.Split(), *cfg.CloudPath)
			}
		}
		policy, _, err := buildPolicy(cfg, src)
		if err != nil {
			return nil, err
		}
		var pred sched.Predictor = sched.NewPerApp(0.3)
		if cfg.PredictionNoise > 0 {
			pred = sched.NewNoisy(pred, src.Split(), cfg.PredictionNoise)
		}
		var opts []sched.Option
		if cfg.Retries > 1 {
			backoff := cfg.RetryBackoff
			if backoff <= 0 {
				backoff = 1
			}
			opts = append(opts, sched.WithRetries(sched.RetryPolicy{MaxAttempts: cfg.Retries, Backoff: backoff}))
		}
		s, err := sched.New(env, policy, pred, opts...)
		if err != nil {
			return nil, err
		}
		f.Devices = append(f.Devices, env.Device)
		f.Schedulers = append(f.Schedulers, s)
	}
	return f, nil
}

// Size returns the number of devices.
func (f *ShardedFleet) Size() int { return len(f.Devices) }

// Shards returns the number of worker shards.
func (f *ShardedFleet) Shards() int { return f.SE.NumShards() }

// Platform returns the shared serverless platform, or nil.
func (f *ShardedFleet) Platform() *serverless.Platform { return f.platform }

// Submit gives every UE its own generator clone over the standard
// template mix (task IDs offset by ue<<32, globally unique and
// shard-count-invariant) and an arrival process built from a per-UE
// stream, then schedules count tasks per UE on the UE's shard engine.
func (f *ShardedFleet) Submit(count int, arrivals func(src *rng.Source, ue int) workload.Arrivals) error {
	// The prototype only carries the template mix; its stream is never
	// drawn from, so any seed works.
	proto, err := workload.StandardMix(rng.New(0))
	if err != nil {
		return err
	}
	shards := f.SE.NumShards()
	for i, s := range f.Schedulers {
		src := f.ueSrc[i]
		gen := proto.Clone(src.Split(), model.TaskID(uint64(i))<<32)
		workload.Stream(f.SE.Shard(i%shards), arrivals(src.Split(), i), gen, count, s.Submit)
	}
	return nil
}

// SubmitStreams mirrors Fleet.SubmitStreams: Poisson arrivals at the
// given per-UE rate, count tasks per UE.
func (f *ShardedFleet) SubmitStreams(rate float64, tasksPerDevice int) error {
	return f.Submit(tasksPerDevice, func(src *rng.Source, _ int) workload.Arrivals {
		return workload.NewPoisson(src, rate)
	})
}

// Run drives the sharded simulation to completion.
func (f *ShardedFleet) Run() { f.SE.Run() }

// Events returns the total number of events fired across the hub and
// every shard. The global event set is partition-invariant, so the count
// is identical at every shard count.
func (f *ShardedFleet) Events() uint64 {
	total := f.SE.Hub().Fired()
	for i := 0; i < f.SE.NumShards(); i++ {
		total += f.SE.Shard(i).Fired()
	}
	return total
}

// Stats aggregates across the fleet exactly as Fleet.Stats does, in UE
// order.
func (f *ShardedFleet) Stats() FleetStats { return aggregateStats(f.Schedulers) }

// EnableSpans attaches one span recorder per shard (each single-threaded
// on its shard) to every scheduler's causal hook points. Call before Run;
// idempotent. SpanSet merges the per-shard recordings canonically.
func (f *ShardedFleet) EnableSpans() {
	if f.spanRecs != nil {
		return
	}
	f.spanRecs = make([]*trace.SpanRecorder, f.SE.NumShards())
	for i := range f.spanRecs {
		f.spanRecs[i] = trace.NewSpanRecorder()
		f.spanRecs[i].SetMeta("run", string(f.cfg.Policy))
	}
	for i, s := range f.Schedulers {
		s.SetTracer(f.spanRecs[i%len(f.spanRecs)])
	}
}

// SpanSet returns the merged, canonically renumbered spans from every
// shard recorder, or nil when EnableSpans was never called. The merge is
// byte-identical at every shard count (trace.MergeSets).
func (f *ShardedFleet) SpanSet() *trace.SpanSet {
	if f.spanRecs == nil {
		return nil
	}
	sets := make([]*trace.SpanSet, len(f.spanRecs))
	for i, r := range f.spanRecs {
		sets[i] = r.Set()
	}
	return trace.MergeSets("run", string(f.cfg.Policy), sets...)
}
