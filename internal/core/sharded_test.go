package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"offload/internal/adapt"
	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/sched"
	"offload/internal/trace"
)

// shardedFingerprint runs a full-substrate sharded fleet and returns an
// exact (bit-level) fingerprint of everything observable: aggregate
// stats, per-placement counts, completion-distribution quantiles and the
// merged span set.
func shardedFingerprint(t *testing.T, shards, devices, tasks int) (string, *trace.SpanSet) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = PolicyDeadlineAware
	cfg.PredictionNoise = 0.2
	cfg.Retries = 3
	cfg.ShardCount = shards
	f, err := NewShardedFleet(cfg, devices)
	if err != nil {
		t.Fatal(err)
	}
	f.EnableSpans()
	if err := f.SubmitStreams(0.05, tasks); err != nil {
		t.Fatal(err)
	}
	f.Run()
	st := f.Stats()
	var placements []string
	for p, n := range st.ByPlacement {
		placements = append(placements, fmt.Sprintf("%v=%d", p, n))
	}
	sort.Strings(placements)
	fp := fmt.Sprintf("c=%d f=%d m=%d r=%d mean=%x cost=%x energy=%x fcost=%x fenergy=%x p50=%x p95=%x by=%v",
		st.Completed, st.Failed, st.Missed, st.Retries,
		st.MeanCompletion, st.CostUSD, st.EnergyMilliJ,
		st.FailedCostUSD, st.FailedEnergyMilliJ,
		st.Completion.Quantile(0.5), st.Completion.Quantile(0.95), placements)
	return fp, f.SpanSet()
}

// TestShardedFleetMatchesAcrossShardCounts is the fleet-level determinism
// property: the same configuration must produce bit-identical stats and
// byte-identical merged spans at every shard count, with one shard as the
// serial reference.
func TestShardedFleetMatchesAcrossShardCounts(t *testing.T) {
	const devices, tasks = 30, 5
	refFP, refSpans := shardedFingerprint(t, 1, devices, tasks)
	if refSpans == nil || len(refSpans.Spans) == 0 {
		t.Fatal("serial reference recorded no spans")
	}
	for _, shards := range []int{2, 4, 7} {
		fp, spans := shardedFingerprint(t, shards, devices, tasks)
		if fp != refFP {
			t.Errorf("shards=%d stats diverged:\n serial: %s\nsharded: %s", shards, refFP, fp)
		}
		if !reflect.DeepEqual(refSpans, spans) {
			t.Errorf("shards=%d spans diverged: %d vs %d spans", shards, len(refSpans.Spans), len(spans.Spans))
		}
	}
}

// TestShardedFleetCompletesWork: the barrier path actually executes remote
// work on the shared substrates and brings every task home.
func TestShardedFleetCompletesWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyCloudAll
	cfg.ShardCount = 4
	f, err := NewShardedFleet(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SubmitStreams(0.05, 4); err != nil {
		t.Fatal(err)
	}
	f.Run()
	st := f.Stats()
	if st.Completed != 48 || st.Failed != 0 {
		t.Fatalf("Completed/Failed = %d/%d, want 48/0", st.Completed, st.Failed)
	}
	if st.ByPlacement[model.PlaceFunction] != 48 {
		t.Fatalf("ByPlacement = %v, want all on functions", st.ByPlacement)
	}
	if got := f.Platform().Stats().Invocations; got != 48 {
		t.Fatalf("shared platform served %d invocations, want 48", got)
	}
	if f.Shards() != 4 || f.Size() != 12 {
		t.Fatalf("Shards/Size = %d/%d", f.Shards(), f.Size())
	}
}

// TestShardedFleetTaskIDsDisjoint: per-UE ID bases (ue<<32) keep task
// identifiers globally unique whatever the partition — checked through
// the recorded spans, which carry one trace per task.
func TestShardedFleetTaskIDsDisjoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyThreshold
	cfg.ShardCount = 3
	f, err := NewShardedFleet(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	f.EnableSpans()
	if err := f.SubmitStreams(0.05, 7); err != nil {
		t.Fatal(err)
	}
	f.Run()
	set := f.SpanSet()
	traces := map[uint64]bool{}
	for _, sp := range set.Spans {
		traces[sp.Trace] = true
	}
	if len(traces) != 9*7 {
		t.Fatalf("saw %d distinct task traces, want 63", len(traces))
	}
}

func TestShardedFleetRejectsUnsupported(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"batch", func(c *Config) { c.Batch = &BatchConfig{Size: 2} }},
		{"offpeak", func(c *Config) { c.OffPeakShift = true }},
		{"resilience", func(c *Config) { c.Resilience = &sched.Resilience{} }},
		{"regions", func(c *Config) { c.Regions = &RegionsConfig{} }},
		{"adapt", func(c *Config) { a := adapt.DefaultConfig(); c.Adapt = &a }},
		{"bandit", func(c *Config) { c.Policy = PolicyBanditUCB }},
		{"budget", func(c *Config) { c.DailyBudgetUSD = 1 }},
		{"fault", func(c *Config) { c.Fault = &fault.Config{} }},
		{"negative shards", func(c *Config) { c.ShardCount = -1 }},
		{"negative interval", func(c *Config) { c.ShardInterval = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		if _, err := NewShardedFleet(cfg, 2); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewShardedFleet(DefaultConfig(), 0); err == nil {
		t.Error("zero-device sharded fleet accepted")
	}
}
