package core

import (
	"offload/internal/callgraph"
	"offload/internal/chain"
	"offload/internal/device"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// SimulatePlan runs the full offline-to-runtime journey: plan the
// application (profile → partition → allocate), deploy the manifest onto
// a fresh simulated platform, and execute runs application runs through
// the chain runner. It returns the plan and the per-run results.
func SimulatePlan(g *callgraph.Graph, opts PlanOptions, runs int) (*Plan, []chain.Result, error) {
	if runs <= 0 {
		runs = 1
	}
	if opts.Device.CPUHz == 0 {
		opts.Device = device.Smartphone()
	}
	if opts.Serverless.BaselineHz == 0 {
		opts.Serverless = serverless.LambdaLike()
	}
	if opts.CloudPath.UplinkBps == 0 {
		opts.CloudPath = network.WiFiCloud()
	}
	plan, err := PlanApp(g, opts)
	if err != nil {
		return nil, nil, err
	}

	eng := sim.NewEngine()
	dev := device.New(eng, opts.Device)
	path := network.New(eng, rng.New(opts.Seed+5), opts.CloudPath)
	platform := serverless.NewPlatform(eng, rng.New(opts.Seed+6), opts.Serverless)
	fns := make(map[string]*serverless.Function)
	for _, spec := range plan.Manifest.Functions {
		fn, err := platform.Deploy(serverless.FunctionConfig{
			Name: spec.Name, MemoryBytes: spec.MemoryBytes,
		})
		if err != nil {
			return nil, nil, err
		}
		fns[spec.Component] = fn
	}
	runner, err := chain.New(eng, chain.Config{
		Graph:      g,
		Assignment: plan.Partition.Assignment,
		Device:     dev,
		Path:       path,
		Functions:  fns,
	})
	if err != nil {
		return nil, nil, err
	}

	results := make([]chain.Result, 0, runs)
	var runOnce func(i int)
	runOnce = func(i int) {
		if i >= runs {
			return
		}
		runner.Run(func(res chain.Result) {
			results = append(results, res)
			runOnce(i + 1)
		})
	}
	runOnce(0)
	eng.Run()
	return plan, results, nil
}
