package core

import (
	"testing"

	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/sched"
	"offload/internal/trace"
	"offload/internal/workload"
)

// spanHeavyConfig exercises every traced scheduler path: retries with
// jitter, hedges, per-attempt timeouts, a circuit breaker with local
// fallback, and a straggler-laden fault injector to trip them all.
func spanHeavyConfig() Config {
	cfg := DefaultConfig()
	cfg.Policy = PolicyCloudAll
	cfg.Retries = 4
	cfg.RetryBackoff = 2
	cfg.RetryJitter = true
	cfg.Fault = &fault.Config{
		Outages:       []fault.Window{{Start: 30, Duration: 40}},
		StragglerProb: 0.15, StragglerFactor: 5, StragglerAlpha: 1.5,
	}
	cfg.Resilience = &sched.Resilience{
		AttemptTimeout: 90,
		HedgeDelay:     15, HedgeQuantile: 0.9, MaxHedges: 1,
		Breaker:  &sched.BreakerConfig{FailureThreshold: 4, OpenFor: 15, HalfOpenSuccesses: 1},
		Fallback: model.PlaceLocal,
	}
	return cfg
}

// TestSpansAreInert: enabling span recording must not change any
// simulated result — same outcomes, same spend, same end time, same
// event count — on a run that exercises retries, hedges, timeouts,
// breaker transitions and fallback.
func TestSpansAreInert(t *testing.T) {
	run := func(spans bool) (*System, int) {
		cfg := spanHeavyConfig()
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if spans {
			sys.EnableSpans()
		}
		gen, err := workload.StandardMix(sys.Src.Split())
		if err != nil {
			t.Fatal(err)
		}
		sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), 0.5), gen, 60)
		sys.Run()
		n := 0
		if set := sys.SpanSet(); set != nil {
			n = len(set.Spans)
		}
		return sys, n
	}
	plain, _ := run(false)
	traced, spans := run(true)
	if spans == 0 {
		t.Fatal("span recording produced no spans")
	}

	a, b := plain.Stats(), traced.Stats()
	if a.Completed != b.Completed || a.Failed != b.Failed || a.Missed != b.Missed ||
		a.Retries != b.Retries || a.Timeouts != b.Timeouts ||
		a.Hedges != b.Hedges || a.HedgeWins != b.HedgeWins || a.Fallbacks != b.Fallbacks {
		t.Fatalf("span recording changed task counters:\nplain  %+v\ntraced %+v", a, b)
	}
	if a.MeanCompletion() != b.MeanCompletion() || a.CostUSD != b.CostUSD ||
		a.FailedCostUSD != b.FailedCostUSD || a.EnergyMilliJ != b.EnergyMilliJ {
		t.Fatal("span recording changed aggregate results")
	}
	if plain.Eng.Now() != traced.Eng.Now() {
		t.Fatalf("span recording moved the end-of-run clock: %v vs %v", plain.Eng.Now(), traced.Eng.Now())
	}
	if plain.Eng.Fired() != traced.Eng.Fired() {
		t.Fatalf("span recording fired events: %d vs %d", plain.Eng.Fired(), traced.Eng.Fired())
	}
	if plain.InfrastructureCostUSD() != traced.InfrastructureCostUSD() {
		t.Fatal("span recording changed infrastructure cost accrual")
	}
	pr, tr := plain.Recorder.Records(), traced.Recorder.Records()
	if len(pr) != len(tr) {
		t.Fatalf("record counts differ: %d vs %d", len(pr), len(tr))
	}
	for i := range pr {
		if pr[i] != tr[i] {
			t.Fatalf("record %d differs:\nplain  %+v\ntraced %+v", i, pr[i], tr[i])
		}
	}
}

// TestSpanRunConsistency: the recorded spans must agree with the
// scheduler's own accounting — one root per settled task, per-attempt
// money summing to the stats' spend, and phase attribution covering every
// completed task's full completion time.
func TestSpanRunConsistency(t *testing.T) {
	sys, err := NewSystem(spanHeavyConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableSpans()
	gen, err := workload.StandardMix(sys.Src.Split())
	if err != nil {
		t.Fatal(err)
	}
	sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), 0.5), gen, 60)
	sys.Run()

	st := sys.Stats()
	set := sys.SpanSet()
	roots := 0
	for _, sp := range set.Spans {
		if sp.Name == trace.SpanTask {
			roots++
		}
	}
	if want := int(st.Completed + st.Failed); roots != want {
		t.Fatalf("%d task root spans, want %d", roots, want)
	}

	w := trace.ComputeWaste(set)
	ground := st.CostUSD + st.FailedCostUSD
	for name, got := range map[string]float64{"attempt": w.AttemptUSD, "task": w.TaskUSD} {
		if d := got - ground; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s span spend %.12g != stats spend %.12g", name, got, ground)
		}
	}

	// Every completed task's critical path must cover its completion time
	// exactly: phases partition [Started, Finished].
	for _, p := range trace.CriticalPaths(set) {
		if p.Failed {
			continue
		}
		total := 0.0
		for _, v := range p.PhaseS {
			total += v
		}
		if d := total - p.CompletionS; d > 1e-6 || d < -1e-6 {
			t.Errorf("task %d: phases sum to %.9g, completion %.9g", p.Trace, total, p.CompletionS)
		}
	}

	// The report surfaces the breakdown.
	rep := sys.Report()
	if len(rep.Phases) == 0 {
		t.Fatal("report has no phase breakdown despite spans being enabled")
	}
	share := 0.0
	for _, ph := range rep.Phases {
		share += ph.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("phase shares sum to %g, want 1", share)
	}
}
