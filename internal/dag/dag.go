// Package dag models multi-stage applications as precedence task graphs
// and schedules them on the existing event core. A Job is a directed
// acyclic graph whose nodes carry compute and memory demand and whose
// edges carry the bytes handed from producer to consumer; the
// Orchestrator releases each node to the scheduler only once every
// predecessor has completed, so a job's observed makespan is the paper's
// per-job completion time rather than a per-task latency.
//
// Edge data flows through the device: a producer's results return to the
// device (its task's OutputBytes include the edge payloads) and are
// uploaded again when the consumer dispatches (its InputBytes include
// them). Every byte therefore crosses the modelled network exactly as the
// single-task engine prices it, whatever placements the two endpoints
// got — no new transfer model, no co-placement special case.
package dag

import (
	"fmt"
	"sort"
	"strings"

	"offload/internal/sim"
)

// NodeID indexes a node within its job.
type NodeID int

// Node is one task of a job: a stage of the application.
type Node struct {
	Name        string
	Cycles      float64 // computational demand, CPU cycles
	MemoryBytes int64   // working-set size

	// InputBytes and OutputBytes are the node's job-external payloads: data
	// the device holds before the job starts (inputs of entry stages) and
	// results the user keeps (outputs of exit stages). Inter-node payloads
	// are edges, not these.
	InputBytes  int64
	OutputBytes int64

	// ParallelFraction is the Amdahl-parallelisable fraction in [0, 1].
	ParallelFraction float64
}

// Edge is one producer→consumer data dependency.
type Edge struct {
	From, To NodeID
	Bytes    int64 // payload handed from From to To
}

// Job is a directed acyclic task graph. Build one with New, AddNode and
// AddEdge, then Validate before handing it to an Orchestrator.
type Job struct {
	app      string
	deadline sim.Duration

	nodes  []Node
	edges  []Edge
	byName map[string]NodeID

	// Adjacency, rebuilt by Validate: preds/succs per node plus the
	// per-node sums of incident edge bytes the relay data model needs.
	preds, succs [][]NodeID
	inBytes      []int64 // Σ incoming edge bytes per node
	outBytes     []int64 // Σ outgoing edge bytes per node
	topo         []NodeID
	validated    bool
}

// New returns an empty job for the named application. The deadline is the
// whole job's soft completion budget; zero means fully delay-tolerant.
func New(app string, deadline sim.Duration) *Job {
	return &Job{app: app, deadline: deadline, byName: make(map[string]NodeID)}
}

// App returns the application name.
func (j *Job) App() string { return j.app }

// Deadline returns the job's soft completion budget (0 = none).
func (j *Job) Deadline() sim.Duration { return j.deadline }

// Len returns the number of nodes.
func (j *Job) Len() int { return len(j.nodes) }

// AddNode appends a node and returns its ID. Names must be unique and
// non-empty; weights must be non-negative.
func (j *Job) AddNode(n Node) (NodeID, error) {
	if n.Name == "" {
		return 0, fmt.Errorf("dag: %s: node with empty name", j.app)
	}
	if _, dup := j.byName[n.Name]; dup {
		return 0, fmt.Errorf("dag: %s: duplicate node %q", j.app, n.Name)
	}
	if n.Cycles < 0 || n.MemoryBytes < 0 || n.InputBytes < 0 || n.OutputBytes < 0 {
		return 0, fmt.Errorf("dag: %s: node %q has negative weight", j.app, n.Name)
	}
	if n.ParallelFraction < 0 || n.ParallelFraction > 1 {
		return 0, fmt.Errorf("dag: %s: node %q parallel fraction outside [0,1]", j.app, n.Name)
	}
	id := NodeID(len(j.nodes))
	j.nodes = append(j.nodes, n)
	j.byName[n.Name] = id
	j.validated = false
	return id, nil
}

// MustAddNode is AddNode for programmatic construction, panicking on error.
func (j *Job) MustAddNode(n Node) NodeID {
	id, err := j.AddNode(n)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge appends a dependency edge. Self-edges, duplicate edges (same
// ordered pair), unknown endpoints and negative payloads are rejected.
func (j *Job) AddEdge(e Edge) error {
	if !j.valid(e.From) || !j.valid(e.To) {
		return fmt.Errorf("dag: %s: edge references unknown node (%d→%d)", j.app, e.From, e.To)
	}
	if e.From == e.To {
		return fmt.Errorf("dag: %s: self edge on %q", j.app, j.nodes[e.From].Name)
	}
	if e.Bytes < 0 {
		return fmt.Errorf("dag: %s: edge %q→%q has negative payload",
			j.app, j.nodes[e.From].Name, j.nodes[e.To].Name)
	}
	for _, ex := range j.edges {
		if ex.From == e.From && ex.To == e.To {
			return fmt.Errorf("dag: %s: duplicate edge %q→%q",
				j.app, j.nodes[e.From].Name, j.nodes[e.To].Name)
		}
	}
	j.edges = append(j.edges, e)
	j.validated = false
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (j *Job) MustAddEdge(e Edge) {
	if err := j.AddEdge(e); err != nil {
		panic(err)
	}
}

// Connect is a convenience: add an edge between named nodes.
func (j *Job) Connect(from, to string, bytes int64) error {
	f, ok := j.byName[from]
	if !ok {
		return fmt.Errorf("dag: %s: unknown node %q", j.app, from)
	}
	t, ok := j.byName[to]
	if !ok {
		return fmt.Errorf("dag: %s: unknown node %q", j.app, to)
	}
	return j.AddEdge(Edge{From: f, To: t, Bytes: bytes})
}

func (j *Job) valid(id NodeID) bool { return id >= 0 && int(id) < len(j.nodes) }

// Node returns the node with the given ID. It panics on an out-of-range
// ID: IDs only come from this job.
func (j *Job) Node(id NodeID) Node {
	if !j.valid(id) {
		panic(fmt.Sprintf("dag: %s: node id %d out of range", j.app, id))
	}
	return j.nodes[id]
}

// Lookup returns the ID for a node name.
func (j *Job) Lookup(name string) (NodeID, bool) {
	id, ok := j.byName[name]
	return id, ok
}

// Nodes returns a copy of the node list.
func (j *Job) Nodes() []Node {
	cp := make([]Node, len(j.nodes))
	copy(cp, j.nodes)
	return cp
}

// Edges returns a copy of the edge list.
func (j *Job) Edges() []Edge {
	cp := make([]Edge, len(j.edges))
	copy(cp, j.edges)
	return cp
}

// Validate checks the job is runnable — non-empty and acyclic — and
// freezes the adjacency caches. It must be called (directly or via the
// Orchestrator) before Preds/Succs/TopoOrder/TaskSizes.
func (j *Job) Validate() error {
	if len(j.nodes) == 0 {
		return fmt.Errorf("dag: %s: empty job", j.app)
	}
	if j.deadline < 0 {
		return fmt.Errorf("dag: %s: negative deadline", j.app)
	}
	n := len(j.nodes)
	j.preds = make([][]NodeID, n)
	j.succs = make([][]NodeID, n)
	j.inBytes = make([]int64, n)
	j.outBytes = make([]int64, n)
	indeg := make([]int, n)
	for _, e := range j.edges {
		j.succs[e.From] = append(j.succs[e.From], e.To)
		j.preds[e.To] = append(j.preds[e.To], e.From)
		j.outBytes[e.From] += e.Bytes
		j.inBytes[e.To] += e.Bytes
		indeg[e.To]++
	}
	for id := range j.preds {
		sortIDs(j.preds[id])
		sortIDs(j.succs[id])
	}
	// Kahn's algorithm with the ready set drained in ascending NodeID
	// order: the resulting topological order is a pure function of the
	// graph, independent of insertion order.
	ready := make([]NodeID, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready = append(ready, NodeID(id))
		}
	}
	j.topo = make([]NodeID, 0, n)
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		j.topo = append(j.topo, id)
		for _, s := range j.succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = insertSorted(ready, s)
			}
		}
	}
	if len(j.topo) != n {
		var stuck []string
		for id := 0; id < n; id++ {
			if indeg[id] > 0 {
				stuck = append(stuck, j.nodes[id].Name)
			}
		}
		return fmt.Errorf("dag: %s: cycle through {%s}", j.app, strings.Join(stuck, ", "))
	}
	j.validated = true
	return nil
}

func sortIDs(ids []NodeID) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}

// insertSorted keeps the ready set ascending while Kahn drains it.
func insertSorted(ids []NodeID, id NodeID) []NodeID {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

func (j *Job) mustValidated() {
	if !j.validated {
		panic(fmt.Sprintf("dag: %s: Validate before use", j.app))
	}
}

// TopoOrder returns the deterministic topological order: among released
// candidates, lower NodeIDs come first. The slice is a copy.
func (j *Job) TopoOrder() []NodeID {
	j.mustValidated()
	cp := make([]NodeID, len(j.topo))
	copy(cp, j.topo)
	return cp
}

// Preds returns the node's predecessors in ascending order (shared slice;
// do not mutate).
func (j *Job) Preds(id NodeID) []NodeID {
	j.mustValidated()
	return j.preds[id]
}

// Succs returns the node's successors in ascending order (shared slice;
// do not mutate).
func (j *Job) Succs(id NodeID) []NodeID {
	j.mustValidated()
	return j.succs[id]
}

// TaskSizes returns the transfer payloads of the node's scheduled task
// under the device-relay data model: its job-external bytes plus the
// payloads of every incident edge. Charging these through the scheduler's
// ordinary uplink/downlink legs prices all inter-node data movement on
// the existing network and inter-region cost models.
func (j *Job) TaskSizes(id NodeID) (inBytes, outBytes int64) {
	j.mustValidated()
	n := j.nodes[id]
	return n.InputBytes + j.inBytes[id], n.OutputBytes + j.outBytes[id]
}

// TotalCycles returns the summed demand of all nodes.
func (j *Job) TotalCycles() float64 {
	sum := 0.0
	for _, n := range j.nodes {
		sum += n.Cycles
	}
	return sum
}

// DOT renders the job in Graphviz format: nodes labelled with their
// demand, edges with their payloads, entry/exit payloads as dashed edges
// from/to a device anchor.
func (j *Job) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", j.app)
	b.WriteString("  \"device\" [shape=box];\n")
	for _, n := range j.nodes {
		fmt.Fprintf(&b, "  %q [shape=ellipse, label=\"%s\\n%.3g Gcyc\"];\n",
			n.Name, n.Name, n.Cycles/1e9)
	}
	for _, n := range j.nodes {
		if n.InputBytes > 0 {
			fmt.Fprintf(&b, "  \"device\" -> %q [style=dashed, label=\"%s\"];\n",
				n.Name, byteLabel(n.InputBytes))
		}
	}
	for _, e := range j.edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s\"];\n",
			j.nodes[e.From].Name, j.nodes[e.To].Name, byteLabel(e.Bytes))
	}
	for _, n := range j.nodes {
		if n.OutputBytes > 0 {
			fmt.Fprintf(&b, "  %q -> \"device\" [style=dashed, label=\"%s\"];\n",
				n.Name, byteLabel(n.OutputBytes))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
