package dag

import (
	"strings"
	"testing"
)

func mustJob(t *testing.T, build func(j *Job)) *Job {
	t.Helper()
	j := New("test", 60)
	build(j)
	if err := j.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return j
}

func node(name string) Node { return Node{Name: name, Cycles: 1e9} }

func TestBuilderRejections(t *testing.T) {
	j := New("bad", 0)
	if _, err := j.AddNode(Node{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := j.AddNode(Node{Name: "a", Cycles: -1}); err == nil {
		t.Error("negative cycles accepted")
	}
	if _, err := j.AddNode(Node{Name: "a", ParallelFraction: 2}); err == nil {
		t.Error("parallel fraction 2 accepted")
	}
	a := j.MustAddNode(node("a"))
	if _, err := j.AddNode(node("a")); err == nil {
		t.Error("duplicate name accepted")
	}
	b := j.MustAddNode(node("b"))
	if err := j.AddEdge(Edge{From: a, To: a}); err == nil {
		t.Error("self edge accepted")
	}
	if err := j.AddEdge(Edge{From: a, To: 99}); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if err := j.AddEdge(Edge{From: a, To: b, Bytes: -1}); err == nil {
		t.Error("negative payload accepted")
	}
	if err := j.AddEdge(Edge{From: a, To: b, Bytes: 1}); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := j.AddEdge(Edge{From: a, To: b, Bytes: 2}); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestValidateCycle(t *testing.T) {
	j := New("cyclic", 0)
	a := j.MustAddNode(node("a"))
	b := j.MustAddNode(node("b"))
	c := j.MustAddNode(node("c"))
	j.MustAddEdge(Edge{From: a, To: b})
	j.MustAddEdge(Edge{From: b, To: c})
	j.MustAddEdge(Edge{From: c, To: a})
	err := j.Validate()
	if err == nil {
		t.Fatal("cycle not detected")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error %q does not name the cycle", err)
	}

	if err := New("empty", 0).Validate(); err == nil {
		t.Error("empty job validated")
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	// Diamond a→{b,c}→d, plus an isolated source e: the topological order
	// must be ascending among simultaneously-ready nodes regardless of
	// edge insertion order.
	type edge struct{ from, to string }
	edges := []edge{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}}
	build := func(order []int) *Job {
		j := New("diamond", 0)
		for _, n := range []string{"a", "b", "c", "d", "e"} {
			j.MustAddNode(node(n))
		}
		for _, i := range order {
			if err := j.Connect(edges[i].from, edges[i].to, 1); err != nil {
				t.Fatalf("connect: %v", err)
			}
		}
		if err := j.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		return j
	}
	want := build([]int{0, 1, 2, 3}).TopoOrder()
	got := build([]int{3, 2, 1, 0}).TopoOrder()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("topo order depends on insertion order: %v vs %v", want, got)
		}
	}
	// Ready set drains ascending: a(0) first (e is also ready but 4 > 0),
	// then b(1), c(2); d(3) unblocks before e(4) is drained.
	wantSeq := []NodeID{0, 1, 2, 3, 4}
	for i, id := range want {
		if id != wantSeq[i] {
			t.Fatalf("topo order %v, want %v", want, wantSeq)
		}
	}
}

func TestValidateTwiceStable(t *testing.T) {
	j := mustJob(t, func(j *Job) {
		a := j.MustAddNode(node("a"))
		b := j.MustAddNode(node("b"))
		j.MustAddEdge(Edge{From: a, To: b, Bytes: 8})
	})
	first := j.TopoOrder()
	if err := j.Validate(); err != nil {
		t.Fatalf("revalidate: %v", err)
	}
	second := j.TopoOrder()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("topo order changed across Validate calls: %v vs %v", first, second)
		}
	}
}

func TestTaskSizes(t *testing.T) {
	j := mustJob(t, func(j *Job) {
		a := j.MustAddNode(Node{Name: "a", Cycles: 1, InputBytes: 100})
		b := j.MustAddNode(Node{Name: "b", Cycles: 1, OutputBytes: 7})
		c := j.MustAddNode(Node{Name: "c", Cycles: 1})
		j.MustAddEdge(Edge{From: a, To: b, Bytes: 10})
		j.MustAddEdge(Edge{From: a, To: c, Bytes: 20})
		j.MustAddEdge(Edge{From: c, To: b, Bytes: 40})
	})
	cases := []struct {
		id      NodeID
		in, out int64
	}{
		{0, 100, 30}, // external input + two outgoing edges
		{1, 50, 7},   // two incoming edges + external output
		{2, 20, 40},
	}
	for _, tc := range cases {
		in, out := j.TaskSizes(tc.id)
		if in != tc.in || out != tc.out {
			t.Errorf("TaskSizes(%d) = (%d, %d), want (%d, %d)", tc.id, in, out, tc.in, tc.out)
		}
	}
}

func TestDOT(t *testing.T) {
	j := mustJob(t, func(j *Job) {
		a := j.MustAddNode(Node{Name: "decode", Cycles: 2e9, InputBytes: 4 << 20})
		b := j.MustAddNode(Node{Name: "encode", Cycles: 3e9, OutputBytes: 1 << 20})
		j.MustAddEdge(Edge{From: a, To: b, Bytes: 2 << 20})
	})
	dot := j.DOT()
	for _, want := range []string{
		`digraph "test"`,
		`"decode" -> "encode" [label="2.0 MB"]`,
		`"device" -> "decode" [style=dashed, label="4.0 MB"]`,
		`"encode" -> "device" [style=dashed, label="1.0 MB"]`,
		`2 Gcyc`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
