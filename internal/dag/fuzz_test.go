package dag

import (
	"testing"
)

// FuzzDAGValidate throws arbitrary edge sets at the job builder and checks
// the structural invariants Validate promises: self-edges and duplicate
// edges are rejected at insertion, every accepted job yields a topological
// order that is a permutation of the nodes respecting all edges, the order
// is stable across repeated Validate calls, and it does not depend on edge
// insertion order.
func FuzzDAGValidate(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2})
	f.Add([]byte{1})
	f.Add([]byte{4, 0, 1, 0, 2, 1, 3, 2, 3})
	f.Add([]byte{2, 0, 1, 1, 0}) // cycle
	f.Add([]byte{5, 0, 0, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%16 + 1
		data = data[1:]

		build := func(reverse bool) (*Job, [][2]NodeID) {
			j := New("fuzz", 0)
			for i := 0; i < n; i++ {
				j.MustAddNode(Node{Name: string(rune('a' + i)), Cycles: 1})
			}
			var pairs [][2]NodeID
			for i := 0; i+1 < len(data); i += 2 {
				pairs = append(pairs, [2]NodeID{
					NodeID(int(data[i]) % n), NodeID(int(data[i+1]) % n),
				})
			}
			if reverse {
				for l, r := 0, len(pairs)-1; l < r; l, r = l+1, r-1 {
					pairs[l], pairs[r] = pairs[r], pairs[l]
				}
			}
			seen := make(map[[2]NodeID]bool)
			var accepted [][2]NodeID
			for _, p := range pairs {
				err := j.AddEdge(Edge{From: p[0], To: p[1], Bytes: 1})
				switch {
				case p[0] == p[1]:
					if err == nil {
						t.Fatalf("self edge %v accepted", p)
					}
				case seen[p]:
					if err == nil {
						t.Fatalf("duplicate edge %v accepted", p)
					}
				default:
					if err != nil {
						t.Fatalf("valid edge %v rejected: %v", p, err)
					}
					seen[p] = true
					accepted = append(accepted, p)
				}
			}
			return j, accepted
		}

		j, edges := build(false)
		err := j.Validate()
		if err != nil {
			// The only failure left for a well-formed edge set is a cycle;
			// validating again must keep failing identically.
			if err2 := j.Validate(); err2 == nil {
				t.Fatal("Validate failed then succeeded on the same job")
			}
			return
		}

		checkTopo := func(topo []NodeID) {
			if len(topo) != n {
				t.Fatalf("topo order has %d nodes, want %d", len(topo), n)
			}
			pos := make(map[NodeID]int, n)
			for i, id := range topo {
				if _, dup := pos[id]; dup {
					t.Fatalf("node %d appears twice in topo order %v", id, topo)
				}
				pos[id] = i
			}
			for _, e := range edges {
				if pos[e[0]] >= pos[e[1]] {
					t.Fatalf("edge %v violated by topo order %v", e, topo)
				}
			}
		}
		first := j.TopoOrder()
		checkTopo(first)

		// Re-validating must reproduce the same order.
		if err := j.Validate(); err != nil {
			t.Fatalf("revalidate failed: %v", err)
		}
		for i, id := range j.TopoOrder() {
			if id != first[i] {
				t.Fatalf("topo order changed across Validate calls")
			}
		}

		// Inserting the same edges in reverse order must not change it.
		rj, _ := build(true)
		if err := rj.Validate(); err != nil {
			t.Fatalf("reverse insertion of an acyclic edge set failed: %v", err)
		}
		for i, id := range rj.TopoOrder() {
			if id != first[i] {
				t.Fatalf("topo order depends on insertion order: %v vs %v",
					rj.TopoOrder(), first)
			}
		}
	})
}
