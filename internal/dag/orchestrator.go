package dag

import (
	"fmt"
	"math"
	"sort"

	"offload/internal/model"
	"offload/internal/sched"
	"offload/internal/sim"
	"offload/internal/trace"
)

// jobIDShift positions each job's node task IDs in a private range:
// job k owns IDs (k<<jobIDShift)+1 … (k<<jobIDShift)+Len, and k<<jobIDShift
// itself is the job's span trace ID. Jobs are capped at 2^20−1 nodes,
// far above any realistic application graph.
const jobIDShift = 20

// Result is one settled job: when it ran, how long it took, and where
// the time went.
type Result struct {
	Job   *Job
	ID    uint64 // job sequence number; also the job's span trace ID
	Start sim.Time
	End   sim.Time

	Failed bool // a node failed terminally; descendants were skipped

	MakespanS float64 // End − Start

	// CritPath is the observed critical path in execution order, with
	// CritS[i] seconds attributed to CritPath[i]: each node's finish minus
	// its latest-finishing predecessor's. The contributions telescope, so
	// CritTotalS equals MakespanS up to float summation error. Empty for
	// failed jobs.
	CritPath   []NodeID
	CritS      []float64
	CritTotalS float64

	// MeanSlackS is the mean earliest-start slack across nodes: how long
	// each node could have been delayed (under the observed durations)
	// without stretching the makespan. Zero on every critical node.
	MeanSlackS float64

	CostUSD      float64
	EnergyMilliJ float64

	// NodeOutcomes holds each node's scheduler outcome, indexed by NodeID.
	// Skipped nodes (descendants of a failure) have a zero Outcome.
	NodeOutcomes []model.Outcome
}

// MissedDeadline reports whether the job carried a deadline and finished
// after it.
func (r Result) MissedDeadline() bool {
	return r.Job.Deadline() > 0 && sim.Duration(r.MakespanS) > r.Job.Deadline()
}

// Stats aggregates settled jobs.
type Stats struct {
	Jobs   uint64 // settled jobs, failures included
	Failed uint64 // jobs with at least one terminally failed node

	NodesCompleted uint64
	NodesFailed    uint64
	NodesSkipped   uint64 // never released: a predecessor failed

	CostUSD      float64
	EnergyMilliJ float64

	makespans []float64 // succeeded jobs only
	critSum   float64
	slackSum  float64
	maxDrift  float64
}

// MeanMakespanS returns the mean makespan over succeeded jobs.
func (s *Stats) MeanMakespanS() float64 {
	if len(s.makespans) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range s.makespans {
		sum += m
	}
	return sum / float64(len(s.makespans))
}

// P95MakespanS returns the 95th-percentile makespan over succeeded jobs.
func (s *Stats) P95MakespanS() float64 {
	n := len(s.makespans)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, s.makespans)
	sort.Float64s(cp)
	idx := int(math.Ceil(0.95*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return cp[idx]
}

// MeanCritPathS returns the mean summed critical-path seconds per
// succeeded job — MeanMakespanS measured the other way.
func (s *Stats) MeanCritPathS() float64 {
	if len(s.makespans) == 0 {
		return 0
	}
	return s.critSum / float64(len(s.makespans))
}

// MeanSlackS returns the mean per-node earliest-start slack across
// succeeded jobs.
func (s *Stats) MeanSlackS() float64 {
	if len(s.makespans) == 0 {
		return 0
	}
	return s.slackSum / float64(len(s.makespans))
}

// MaxDriftS returns the largest |CritTotalS − MakespanS| seen on any
// succeeded job: the critical-path partition's bookkeeping error, which
// must stay at float-summation scale (≤ 1e-9 s).
func (s *Stats) MaxDriftS() float64 { return s.maxDrift }

// jobState tracks one in-flight job.
type jobState struct {
	job        *Job
	id         uint64
	base       model.TaskID
	start      sim.Time
	placements []model.Placement // nil: the scheduler's policy decides

	remaining []int // unfinished predecessors per node
	done      []bool
	skipped   []bool
	outcomes  []model.Outcome

	pending int // nodes not yet settled or skipped
	failed  bool

	costUSD float64
	energy  float64
}

// Orchestrator drives Jobs through a sched.Scheduler, releasing each
// node only when its predecessors have completed. It adds no events and
// draws no randomness of its own: all timing and stochasticity stay in
// the substrates underneath, so runs remain deterministic.
type Orchestrator struct {
	s      *sched.Scheduler
	placer Placer
	jobSeq uint64
	active map[uint64]*jobState
	stats  Stats
	onDone func(Result)
	tr     trace.JobTracer
}

// NewOrchestrator returns an orchestrator submitting through s. A nil
// placer defaults to Oblivious.
func NewOrchestrator(s *sched.Scheduler, placer Placer) *Orchestrator {
	if placer == nil {
		placer = Oblivious{}
	}
	return &Orchestrator{s: s, placer: placer, active: make(map[uint64]*jobState)}
}

// Placer returns the configured placer.
func (o *Orchestrator) Placer() Placer { return o.placer }

// Stats returns the accumulated job statistics.
func (o *Orchestrator) Stats() *Stats { return &o.stats }

// InFlight returns how many jobs have been submitted but not settled.
func (o *Orchestrator) InFlight() int { return len(o.active) }

// OnJobDone registers fn to receive every settled job, after the stats
// update. Call before the first Submit.
func (o *Orchestrator) OnJobDone(fn func(Result)) { o.onDone = fn }

// SetTracer attaches a job tracer (the span recorder): node task spans
// are adopted under one root span per job. Tracers are passive —
// attaching one never changes simulated results.
func (o *Orchestrator) SetTracer(t trace.JobTracer) { o.tr = t }

// Submit validates the job, plans placements if the placer does, and
// releases its entry nodes. Node completions cascade inside the
// simulation; the job settles when every node has completed, failed, or
// been skipped behind a failure.
func (o *Orchestrator) Submit(job *Job) error {
	if err := job.Validate(); err != nil {
		return err
	}
	if job.Len() >= 1<<jobIDShift {
		return fmt.Errorf("dag: %s: %d nodes exceeds the per-job limit %d",
			job.App(), job.Len(), 1<<jobIDShift-1)
	}
	placements := o.placer.Place(job, o.s.Env(), o.s.Predictor())
	if placements != nil && len(placements) != job.Len() {
		return fmt.Errorf("dag: %s: placer %s returned %d placements for %d nodes",
			job.App(), o.placer.Name(), len(placements), job.Len())
	}
	o.jobSeq++
	st := &jobState{
		job:        job,
		id:         o.jobSeq,
		base:       model.TaskID(o.jobSeq << jobIDShift),
		start:      o.s.Env().Eng.Now(),
		placements: placements,
		remaining:  make([]int, job.Len()),
		done:       make([]bool, job.Len()),
		skipped:    make([]bool, job.Len()),
		outcomes:   make([]model.Outcome, job.Len()),
		pending:    job.Len(),
	}
	for id := 0; id < job.Len(); id++ {
		st.remaining[id] = len(job.Preds(NodeID(id)))
	}
	o.active[st.id] = st
	for id := 0; id < job.Len(); id++ {
		if st.remaining[id] == 0 {
			o.release(st, NodeID(id))
		}
	}
	return nil
}

// release hands one ready node to the scheduler.
func (o *Orchestrator) release(st *jobState, nid NodeID) {
	node := st.job.Node(nid)
	in, out := st.job.TaskSizes(nid)
	task := &model.Task{
		ID:               st.base + 1 + model.TaskID(nid),
		App:              st.job.App() + "/" + node.Name,
		Component:        node.Name,
		InputBytes:       in,
		OutputBytes:      out,
		Cycles:           node.Cycles,
		MemoryBytes:      node.MemoryBytes,
		ParallelFraction: node.ParallelFraction,
		Deadline:         st.job.Deadline(),
	}
	if o.tr != nil {
		o.tr.AdoptTrace(task.ID, st.id)
	}
	then := func(out model.Outcome) { o.nodeDone(st, nid, out) }
	if st.placements != nil {
		task.Submitted = o.s.Env().Eng.Now()
		o.s.DispatchThen(task, st.placements[nid], then)
		return
	}
	o.s.SubmitThen(task, then)
}

// nodeDone settles one node: successors whose last dependency this was
// are released; a failure skips every (transitive) descendant.
func (o *Orchestrator) nodeDone(st *jobState, nid NodeID, out model.Outcome) {
	st.outcomes[nid] = out
	st.costUSD += out.CostUSD
	st.energy += out.EnergyMilliJ
	st.pending--
	if out.Failed {
		st.failed = true
		o.stats.NodesFailed++
		o.skipDescendants(st, nid)
	} else {
		st.done[nid] = true
		o.stats.NodesCompleted++
		for _, s := range st.job.Succs(nid) {
			if st.skipped[s] {
				continue
			}
			st.remaining[s]--
			if st.remaining[s] == 0 {
				o.release(st, s)
			}
		}
	}
	if st.pending == 0 {
		o.finalize(st)
	}
}

// skipDescendants marks everything downstream of a failed node as
// skipped: those nodes can never become ready, so they settle without
// dispatching.
func (o *Orchestrator) skipDescendants(st *jobState, from NodeID) {
	stack := []NodeID{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range st.job.Succs(n) {
			if st.skipped[s] || st.done[s] {
				continue
			}
			st.skipped[s] = true
			st.pending--
			o.stats.NodesSkipped++
			stack = append(stack, s)
		}
	}
}

// finalize computes the job's makespan, critical path and slack, updates
// the aggregate stats and reports the result.
func (o *Orchestrator) finalize(st *jobState) {
	delete(o.active, st.id)

	res := Result{
		Job: st.job, ID: st.id, Start: st.start,
		Failed:       st.failed,
		CostUSD:      st.costUSD,
		EnergyMilliJ: st.energy,
		NodeOutcomes: st.outcomes,
	}
	end := st.start
	for id := range st.outcomes {
		if !st.skipped[id] && st.outcomes[id].Finished > end {
			end = st.outcomes[id].Finished
		}
	}
	res.End = end
	res.MakespanS = float64(end.Sub(st.start))

	o.stats.Jobs++
	o.stats.CostUSD += st.costUSD
	o.stats.EnergyMilliJ += st.energy
	if st.failed {
		o.stats.Failed++
	} else {
		o.criticalPath(st, &res)
		res.MeanSlackS = o.meanSlack(st, res.MakespanS)
		o.stats.makespans = append(o.stats.makespans, res.MakespanS)
		o.stats.critSum += res.CritTotalS
		o.stats.slackSum += res.MeanSlackS
		if drift := math.Abs(res.CritTotalS - res.MakespanS); drift > o.stats.maxDrift {
			o.stats.maxDrift = drift
		}
	}

	if o.tr != nil {
		status := trace.StatusOK
		switch {
		case res.Failed:
			status = trace.StatusFailed
		case res.MissedDeadline():
			status = trace.StatusMissed
		}
		o.tr.JobDone(st.id, st.job.App(), st.start, end, status, st.costUSD)
	}
	if o.onDone != nil {
		o.onDone(res)
	}
}

// criticalPath walks backward from the last-finishing node, at each step
// moving to the latest-finishing predecessor (ties: lowest NodeID). Each
// node's contribution is its finish minus its critical predecessor's
// finish (or the job start), so the contributions telescope to the
// makespan exactly.
func (o *Orchestrator) criticalPath(st *jobState, res *Result) {
	last, lastFin := NodeID(-1), sim.Time(0)
	for id := range st.outcomes {
		fin := st.outcomes[id].Finished
		if last == -1 || fin > lastFin {
			last, lastFin = NodeID(id), fin
		}
	}
	var path []NodeID
	var secs []float64
	for n := last; ; {
		prevFin := st.start
		next := NodeID(-1)
		for _, p := range st.job.Preds(n) {
			if fin := st.outcomes[p].Finished; next == -1 || fin > st.outcomes[next].Finished {
				next = p
				prevFin = fin
			}
		}
		path = append(path, n)
		secs = append(secs, float64(st.outcomes[n].Finished.Sub(prevFin)))
		if next == -1 {
			break
		}
		n = next
	}
	// Reverse into execution order.
	for i, k := 0, len(path)-1; i < k; i, k = i+1, k-1 {
		path[i], path[k] = path[k], path[i]
		secs[i], secs[k] = secs[k], secs[i]
	}
	total := 0.0
	for _, s := range secs {
		total += s
	}
	res.CritPath, res.CritS, res.CritTotalS = path, secs, total
}

// meanSlack runs a critical-path-method forward/backward pass over the
// observed node durations and returns the mean earliest-start slack.
func (o *Orchestrator) meanSlack(st *jobState, makespan float64) float64 {
	n := st.job.Len()
	dur := make([]float64, n)
	for id := 0; id < n; id++ {
		out := st.outcomes[id]
		dur[id] = float64(out.Finished.Sub(out.Started))
	}
	topo := st.job.TopoOrder()
	ef := make([]float64, n) // earliest finish, relative to job start
	for _, id := range topo {
		es := 0.0
		for _, p := range st.job.Preds(id) {
			if ef[p] > es {
				es = ef[p]
			}
		}
		ef[id] = es + dur[id]
	}
	ls := make([]float64, n) // latest start
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		lf := makespan
		for _, s := range st.job.Succs(id) {
			if v := ls[s]; v < lf {
				lf = v
			}
		}
		ls[id] = lf - dur[id]
	}
	sum := 0.0
	for id := 0; id < n; id++ {
		if slack := ls[id] - (ef[id] - dur[id]); slack > 0 {
			sum += slack
		}
	}
	return sum / float64(n)
}
