package dag_test

import (
	"math"
	"testing"

	"offload/internal/dag"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/sim"
)

// localEnv is the smallest environment a job can run in: one device.
func localEnv() (*sim.Engine, *sched.Env) {
	eng := sim.NewEngine()
	env := &sched.Env{Eng: eng, Device: device.New(eng, device.Smartphone())}
	return eng, env
}

// edgeEnv adds an edge site behind a LAN path so rank placement has a
// real offload choice.
func edgeEnv() (*sim.Engine, *sched.Env) {
	eng := sim.NewEngine()
	src := rng.New(7)
	env := &sched.Env{
		Eng:      eng,
		Device:   device.New(eng, device.Smartphone()),
		Edge:     edge.New(eng, edge.SmallSite()),
		EdgePath: network.New(eng, src.Split(), network.LANEdge()),
	}
	return eng, env
}

func newOrch(t *testing.T, env *sched.Env, policy sched.Policy, placer dag.Placer) *dag.Orchestrator {
	t.Helper()
	s, err := sched.New(env, policy, sched.Exact{})
	if err != nil {
		t.Fatalf("sched.New: %v", err)
	}
	return dag.NewOrchestrator(s, placer)
}

// diamond builds a → {b, c} → d with enough work to be observable.
func diamond(t *testing.T) *dag.Job {
	t.Helper()
	j := dag.New("diamond", 0)
	for _, n := range []string{"a", "b", "c", "d"} {
		j.MustAddNode(dag.Node{Name: n, Cycles: 2e9, InputBytes: 64 << 10, OutputBytes: 64 << 10})
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if err := j.Connect(e[0], e[1], 128<<10); err != nil {
			t.Fatalf("connect: %v", err)
		}
	}
	return j
}

func TestOrchestratorPrecedence(t *testing.T) {
	eng, env := localEnv()
	o := newOrch(t, env, sched.LocalOnly{}, nil)
	var res dag.Result
	o.OnJobDone(func(r dag.Result) { res = r })
	job := diamond(t)
	if err := o.Submit(job); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	eng.Run()

	if o.InFlight() != 0 {
		t.Fatalf("jobs still in flight: %d", o.InFlight())
	}
	if res.Job == nil || res.Failed {
		t.Fatalf("job did not succeed: %+v", res)
	}
	// Every node must start at or after all its predecessors finished.
	finished := make(map[dag.NodeID]sim.Time)
	for id := range res.NodeOutcomes {
		finished[dag.NodeID(id)] = res.NodeOutcomes[id].Finished
	}
	for _, id := range job.TopoOrder() {
		for _, p := range job.Preds(id) {
			if res.NodeOutcomes[id].Started < finished[p] {
				t.Errorf("node %d started %.6f before pred %d finished %.6f",
					id, res.NodeOutcomes[id].Started, p, finished[p])
			}
		}
	}

	// The critical-path decomposition partitions the makespan exactly.
	var critSum float64
	for _, s := range res.CritS {
		if s < 0 {
			t.Errorf("negative critical-path contribution %g", s)
		}
		critSum += s
	}
	if drift := math.Abs(critSum - res.MakespanS); drift > 1e-9 {
		t.Errorf("critical path sums to %.12f, makespan %.12f (drift %g)",
			critSum, res.MakespanS, drift)
	}
	if res.CritTotalS != critSum {
		t.Errorf("CritTotalS %.12f != sum of CritS %.12f", res.CritTotalS, critSum)
	}
	if st := o.Stats(); st.MaxDriftS() > 1e-9 {
		t.Errorf("stats drift %g > 1e-9", st.MaxDriftS())
	}
	// Serial local execution: slack on the critical path is zero, and the
	// diamond's off-path branch gets strictly positive slack only if the
	// branches overlapped; with one task running at a time on a multi-core
	// device both branches run concurrently, so at least one node has
	// slack. Just require the mean to be finite and non-negative.
	if res.MeanSlackS < 0 || math.IsNaN(res.MeanSlackS) {
		t.Errorf("bad mean slack %g", res.MeanSlackS)
	}
}

// edgeFor fails one component by routing it to a substrate the
// environment lacks.
type edgeFor struct{ component string }

func (edgeFor) Name() string { return "test-edge-for" }

func (p edgeFor) Decide(task *model.Task, _ *sched.Env, _ sched.Predictor) model.Placement {
	if task.Component == p.component {
		return model.PlaceEdge // env has no edge: terminal failure
	}
	return model.PlaceLocal
}

func TestOrchestratorFailureSkipsDescendants(t *testing.T) {
	eng, env := localEnv()
	o := newOrch(t, env, edgeFor{component: "b"}, nil)
	var res dag.Result
	o.OnJobDone(func(r dag.Result) { res = r })
	job := diamond(t)
	if err := o.Submit(job); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	eng.Run()

	if !res.Failed {
		t.Fatal("job with a failed node reported success")
	}
	st := o.Stats()
	if st.NodesFailed != 1 {
		t.Errorf("NodesFailed = %d, want 1", st.NodesFailed)
	}
	// d depends on b and must be skipped, never dispatched; a and c ran.
	if st.NodesSkipped != 1 {
		t.Errorf("NodesSkipped = %d, want 1", st.NodesSkipped)
	}
	if st.NodesCompleted != 2 {
		t.Errorf("NodesCompleted = %d, want 2", st.NodesCompleted)
	}
	if st.Failed != 1 || st.Jobs != 1 {
		t.Errorf("Jobs/Failed = %d/%d, want 1/1", st.Jobs, st.Failed)
	}
	d, _ := job.Lookup("d")
	if out := res.NodeOutcomes[d]; out.Task != nil {
		t.Errorf("skipped node d has an outcome: %+v", out)
	}
}

func TestRankPlacementDeterministic(t *testing.T) {
	_, env := edgeEnv()
	s, err := sched.New(env, sched.LocalOnly{}, sched.Exact{})
	if err != nil {
		t.Fatal(err)
	}
	job := diamond(t)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	first := dag.Rank{}.Place(job, s.Env(), s.Predictor())
	second := dag.Rank{}.Place(job, s.Env(), s.Predictor())
	if len(first) != job.Len() || len(second) != job.Len() {
		t.Fatalf("placement lengths %d/%d, want %d", len(first), len(second), job.Len())
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("rank placement not deterministic: %v vs %v", first, second)
		}
	}
}

func TestOrchestratorRankRunsToCompletion(t *testing.T) {
	eng, env := edgeEnv()
	o := newOrch(t, env, sched.LocalOnly{}, dag.Rank{})
	var res dag.Result
	o.OnJobDone(func(r dag.Result) { res = r })
	job := diamond(t)
	if err := o.Submit(job); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	eng.Run()
	if res.Job == nil || res.Failed {
		t.Fatalf("rank-placed job did not succeed: %+v", res)
	}
	if res.MakespanS <= 0 {
		t.Errorf("makespan %g, want > 0", res.MakespanS)
	}
	for id, out := range res.NodeOutcomes {
		if out.Task == nil {
			t.Fatalf("node %d has no outcome", id)
		}
		// Dispatch bypasses Submit, so the orchestrator must stamp the
		// release time itself; a zero Started on a non-root node would
		// corrupt completion-time stats.
		for _, p := range job.Preds(dag.NodeID(id)) {
			if out.Started < res.NodeOutcomes[p].Finished {
				t.Errorf("rank node %d started before pred %d finished", id, p)
			}
		}
	}
}

func TestSubmitRejectsOversizedAndInvalid(t *testing.T) {
	_, env := localEnv()
	o := newOrch(t, env, sched.LocalOnly{}, nil)
	bad := dag.New("cyclic", 0)
	a := bad.MustAddNode(dag.Node{Name: "a", Cycles: 1})
	b := bad.MustAddNode(dag.Node{Name: "b", Cycles: 1})
	bad.MustAddEdge(dag.Edge{From: a, To: b})
	bad.MustAddEdge(dag.Edge{From: b, To: a})
	if err := o.Submit(bad); err == nil {
		t.Error("cyclic job accepted")
	}
	if err := o.Submit(dag.New("empty", 0)); err == nil {
		t.Error("empty job accepted")
	}
}
