package dag

import (
	"math"

	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/sched"
)

// Placer plans where a job's nodes run before the first node dispatches.
type Placer interface {
	// Name identifies the placer in results tables.
	Name() string
	// Place returns one placement per node, or nil to let the scheduler's
	// configured policy decide each node at its release time.
	Place(job *Job, env *sched.Env, pred sched.Predictor) []model.Placement
}

// Oblivious is the precedence-oblivious baseline: ready nodes are
// submitted to the scheduler's configured policy one by one, exactly as
// independent tasks would be. The policy sees each node's queue states
// and deadline but never the job structure.
type Oblivious struct{}

var _ Placer = Oblivious{}

// Name implements Placer.
func (Oblivious) Name() string { return "oblivious" }

// Place implements Placer by declining to plan.
func (Oblivious) Place(*Job, *sched.Env, sched.Predictor) []model.Placement { return nil }

// Rank is HEFT-style upward-rank list scheduling. Each node's mean
// execution estimate across the available placements feeds its upward
// rank (the length of the longest estimate-weighted path to an exit
// node); nodes are then planned in descending rank order onto the
// placement finishing them earliest, against per-placement slot
// availability. Data transfers are already inside each placement's
// estimate — the relay data model charges every edge through the device
// regardless of co-placement — so the classic c̄ edge term is zero here.
//
// Planned finish times model contention on both resources a remote node
// consumes: a compute slot AND airtime on its network path. Serialized
// paths (a half-duplex radio) carry one transfer at a time, so a wide
// job's branches cannot all ship concurrently no matter how elastic the
// remote substrate is — without the airtime term the planner would
// happily "parallelise" onto a substrate whose uplink serialises every
// byte, and the real run would queue on the radio.
//
// Rank plans makespan, not money: it is the latency-optimal counterpart
// to the cost-minimising deadline-aware baseline.
type Rank struct{}

var _ Placer = Rank{}

// Name implements Placer.
func (Rank) Name() string { return "rank" }

// functionSlots caps the modelled concurrency of the elastic serverless
// substrate during planning. Practically unbounded next to any one job's
// width, but finite so the slot table stays small.
const functionSlots = 256

// Place implements Placer.
func (Rank) Place(job *Job, env *sched.Env, pred sched.Predictor) []model.Placement {
	n := job.Len()
	avail := env.Available()

	// w[id][p]: estimated uplink/execute/downlink seconds of node id at
	// placement p; infinite where the placement cannot serve the node.
	w := make([]map[model.Placement]estimate, n)
	wbar := make([]float64, n)
	for id := 0; id < n; id++ {
		w[id] = nodeEstimates(job, NodeID(id), env, pred)
		sum, cnt := 0.0, 0
		for _, p := range avail {
			if v := w[id][p].total(); !math.IsInf(v, 1) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			// Nothing can serve it as planned; rank it by its local estimate
			// and let dispatch surface the failure.
			wbar[id] = w[id][model.PlaceLocal].total()
			if math.IsInf(wbar[id], 1) {
				wbar[id] = 0
			}
			continue
		}
		wbar[id] = sum / float64(cnt)
	}

	// Upward ranks, computed in reverse topological order so successors
	// are ranked before their predecessors.
	rank := make([]float64, n)
	topo := job.TopoOrder()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		best := 0.0
		for _, s := range job.Succs(id) {
			if rank[s] > best {
				best = rank[s]
			}
		}
		rank[id] = wbar[id] + best
	}

	// List-schedule by descending rank (ties: ascending NodeID, so the
	// plan is a pure function of the job and the estimates).
	order := make([]NodeID, len(topo))
	copy(order, topo)
	for i := 1; i < len(order); i++ {
		for k := i; k > 0; k-- {
			a, b := order[k-1], order[k]
			if rank[b] > rank[a] || (rank[b] == rank[a] && b < a) {
				order[k-1], order[k] = b, a
			} else {
				break
			}
		}
	}

	slots := slotTable(env)
	channels := pathChannels(env)
	aft := make([]float64, n) // planned actual finish time per node
	out := make([]model.Placement, n)
	for _, id := range order {
		ready := 0.0
		for _, p := range job.Preds(id) {
			if aft[p] > ready {
				ready = aft[p]
			}
		}
		bestP, bestSlot := model.PlaceUnknown, -1
		bestFinish, bestSlotBusy, bestChFree := math.Inf(1), 0.0, 0.0
		for _, p := range avail {
			e := w[id][p]
			if math.IsInf(e.total(), 1) {
				continue
			}
			si, slotFree := slots.earliest(p)
			var fin, slotBusy, chFree float64
			if c := channels[p]; c != nil {
				// The uplink waits for the radio, the execute for a compute
				// slot, and the node's total airtime (both directions) keeps
				// the radio busy for the transfers that follow.
				upEnd := math.Max(ready, c.free) + e.up
				execEnd := math.Max(upEnd, slotFree) + e.exec
				fin = execEnd + e.down
				slotBusy = execEnd
				chFree = upEnd + e.down
			} else {
				fin = math.Max(ready, slotFree) + e.total()
				slotBusy = fin
			}
			if fin < bestFinish {
				bestP, bestSlot = p, si
				bestFinish, bestSlotBusy, bestChFree = fin, slotBusy, chFree
			}
		}
		if bestP == model.PlaceUnknown {
			// Nowhere feasible: fall back to local and keep the plan moving.
			bestP = model.PlaceLocal
			si, free := slots.earliest(bestP)
			bestFinish = math.Max(ready, free) + wbar[id]
			bestSlot, bestSlotBusy = si, bestFinish
		}
		out[id] = bestP
		aft[id] = bestFinish
		slots.occupy(bestP, bestSlot, bestSlotBusy)
		if c := channels[bestP]; c != nil {
			c.free = bestChFree
		}
	}
	return out
}

// estimate breaks one node-at-placement plan into its phases: uplink
// airtime, execution, downlink airtime, in seconds. Local execution has
// zero transfer terms; an infeasible placement carries an infinite exec.
type estimate struct {
	up, exec, down float64
}

// total is the uncontended end-to-end estimate.
func (e estimate) total() float64 { return e.up + e.exec + e.down }

// infeasible is the estimate for a placement that cannot serve a node.
var infeasible = estimate{exec: math.Inf(1)}

// nodeEstimates prices one node at every placement the way the
// deadline-aware policy does — demand prediction, public substrate
// execution estimates, network transfer estimates — over the relay-model
// transfer sizes. Infeasible placements get an infinite estimate.
func nodeEstimates(job *Job, id NodeID, env *sched.Env, pred sched.Predictor) map[model.Placement]estimate {
	node := job.Node(id)
	in, out := job.TaskSizes(id)
	probe := &model.Task{
		App:              job.App() + "/" + node.Name,
		Component:        node.Name,
		InputBytes:       in,
		OutputBytes:      out,
		Cycles:           node.Cycles,
		MemoryBytes:      node.MemoryBytes,
		ParallelFraction: node.ParallelFraction,
		Deadline:         job.Deadline(),
	}
	probe.Cycles = pred.PredictCycles(probe)

	ests := map[model.Placement]estimate{
		model.PlaceLocal:    infeasible,
		model.PlaceEdge:     infeasible,
		model.PlaceFunction: infeasible,
		model.PlaceVM:       infeasible,
	}
	if dev := env.Device; dev != nil && !dev.Dead() {
		ests[model.PlaceLocal] = estimate{exec: float64(dev.ExecTime(probe))}
	}
	if env.Edge != nil {
		cfg := env.Edge.Config()
		if cfg.MemoryPerServer == 0 || probe.MemoryBytes <= cfg.MemoryPerServer {
			ests[model.PlaceEdge] = estimate{
				up:   float64(env.EdgePath.EstimateTransfer(in, network.Uplink)),
				exec: float64(env.Edge.ExecTime(probe)),
				down: float64(env.EdgePath.EstimateTransfer(out, network.Downlink)),
			}
		}
	}
	if env.Functions != nil {
		if dec, err := env.Functions.EstimateFor(probe, probe.Cycles); err == nil {
			ests[model.PlaceFunction] = estimate{
				up:   float64(env.CloudPath.EstimateTransfer(in, network.Uplink)),
				exec: float64(dec.ExpectedTime),
				down: float64(env.CloudPath.EstimateTransfer(out, network.Downlink)),
			}
		}
	}
	if env.VM != nil {
		path := env.VMPath
		if path == nil {
			path = env.CloudPath
		}
		ests[model.PlaceVM] = estimate{
			up:   float64(path.EstimateTransfer(in, network.Uplink)),
			exec: float64(env.VM.ExecTime(probe)),
			down: float64(path.EstimateTransfer(out, network.Downlink)),
		}
	}
	return ests
}

// pathChannel is the planned airtime ledger for one serialized network
// path: the time its half-duplex radio frees up.
type pathChannel struct {
	free float64
}

// pathChannels maps each remote placement to its path's airtime channel.
// Placements behind the same physical path share one channel — a VM in
// the serverless region contends with function invocations for the same
// radio. Fair-share and uncontended paths get no channel: their
// transfers overlap, so the uncontended estimate already prices them.
func pathChannels(env *sched.Env) map[model.Placement]*pathChannel {
	channels := make(map[model.Placement]*pathChannel)
	byPath := make(map[*network.Path]*pathChannel)
	add := func(p model.Placement, path *network.Path) {
		if path == nil || !path.Config().Serialize {
			return
		}
		c, ok := byPath[path]
		if !ok {
			c = &pathChannel{}
			byPath[path] = c
		}
		channels[p] = c
	}
	add(model.PlaceEdge, env.EdgePath)
	add(model.PlaceFunction, env.CloudPath)
	vmPath := env.VMPath
	if vmPath == nil {
		vmPath = env.CloudPath
	}
	add(model.PlaceVM, vmPath)
	return channels
}

// slotPool tracks per-placement planned availability: one entry per
// concurrent execution slot, holding the time it frees up.
type slotPool map[model.Placement][]float64

func slotTable(env *sched.Env) slotPool {
	s := slotPool{model.PlaceLocal: make([]float64, max(1, env.Device.Config().Cores))}
	if env.Edge != nil {
		cfg := env.Edge.Config()
		s[model.PlaceEdge] = make([]float64, max(1, cfg.Servers*cfg.Cores))
	}
	if env.Functions != nil {
		s[model.PlaceFunction] = make([]float64, functionSlots)
	}
	if env.VM != nil {
		s[model.PlaceVM] = make([]float64, max(1, env.VM.Instances()*env.VM.Config().Cores))
	}
	return s
}

// earliest returns the index and free time of the placement's earliest
// available slot.
func (s slotPool) earliest(p model.Placement) (int, float64) {
	slots := s[p]
	if len(slots) == 0 {
		return -1, math.Inf(1)
	}
	best, bestT := 0, slots[0]
	for i, t := range slots {
		if t < bestT {
			best, bestT = i, t
		}
	}
	return best, bestT
}

func (s slotPool) occupy(p model.Placement, slot int, until float64) {
	if slots := s[p]; slot >= 0 && slot < len(slots) {
		slots[slot] = until
	}
}
