// Package device models the User Equipment (UE): a battery-powered device
// with a modest CPU and a radio. It is both a compute substrate (local
// execution implements model.Executor) and the energy accountant for the
// radio time that offloading consumes.
//
// The energy model follows the standard mobile-offloading formulation:
// computing drains ActivePower for the duration of execution, transmitting
// and receiving drain TxPower/RxPower for the duration of the transfer, and
// offloading pays radio energy instead of compute energy — which is the
// break-even the E5 experiment measures.
package device

import (
	"errors"
	"fmt"

	"offload/internal/model"
	"offload/internal/sim"
)

// ErrBatteryDead is reported when an execution or transfer is attempted on
// a device whose battery has been exhausted.
var ErrBatteryDead = errors.New("device: battery exhausted")

// Config describes a device.
type Config struct {
	Name  string
	CPUHz float64 // cycles per second, per core
	Cores int

	ActivePowerW float64 // CPU power while computing
	IdlePowerW   float64 // informational; not drained automatically
	TxPowerW     float64 // radio power while transmitting
	RxPowerW     float64 // radio power while receiving

	// Radio tail energy: after a transfer ends, cellular radios hold a
	// high-power state (LTE DRX tail) for RadioTailS seconds at
	// RadioTailPowerW before dropping to idle. The tail is charged once
	// per transfer unless the next transfer starts inside the window (the
	// device tracks the window and only bills the incremental part).
	// Zeros disable the effect — appropriate for WiFi.
	RadioTailS      float64
	RadioTailPowerW float64

	// BatteryJ is the usable battery capacity in joules. Zero means the
	// device is mains powered (energy is tracked but never exhausted).
	BatteryJ float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.CPUHz <= 0:
		return fmt.Errorf("device: %s: CPUHz must be positive", c.Name)
	case c.Cores <= 0:
		return fmt.Errorf("device: %s: Cores must be positive", c.Name)
	case c.ActivePowerW < 0 || c.IdlePowerW < 0 || c.TxPowerW < 0 || c.RxPowerW < 0:
		return fmt.Errorf("device: %s: negative power", c.Name)
	case c.BatteryJ < 0:
		return fmt.Errorf("device: %s: negative battery", c.Name)
	case c.RadioTailS < 0 || c.RadioTailPowerW < 0:
		return fmt.Errorf("device: %s: negative radio tail", c.Name)
	}
	return nil
}

// Smartphone returns a mid-range handset: 4×2 GHz, ~2 W active CPU power,
// LTE-class radio power, 12 Wh usable battery.
func Smartphone() Config {
	return Config{
		Name:         "smartphone",
		CPUHz:        2 * model.GHz,
		Cores:        4,
		ActivePowerW: 2.0,
		IdlePowerW:   0.05,
		TxPowerW:     1.2,
		RxPowerW:     0.9,
		BatteryJ:     12 * 3600, // 12 Wh
	}
}

// SmartphoneLTE returns the same handset on a cellular connection, which
// adds the LTE DRX tail: ~2 s of ~1 W radio power after every transfer.
// Radio energy for short chatty transfers is dominated by this tail,
// which shifts the offloading break-even noticeably.
func SmartphoneLTE() Config {
	cfg := Smartphone()
	cfg.Name = "smartphone-lte"
	cfg.RadioTailS = 2.0
	cfg.RadioTailPowerW = 1.0
	return cfg
}

// IoTSensor returns a constrained sensor node: 1×200 MHz, milliwatt-class
// power, small battery.
func IoTSensor() Config {
	return Config{
		Name:         "iot-sensor",
		CPUHz:        200 * model.MHz,
		Cores:        1,
		ActivePowerW: 0.4,
		IdlePowerW:   0.002,
		TxPowerW:     0.7,
		RxPowerW:     0.3,
		BatteryJ:     2 * 3600, // 2 Wh
	}
}

// Laptop returns a mains-powered developer laptop: 8×3 GHz, no battery
// constraint.
func Laptop() Config {
	return Config{
		Name:         "laptop",
		CPUHz:        3 * model.GHz,
		Cores:        8,
		ActivePowerW: 25,
		IdlePowerW:   3,
		TxPowerW:     2,
		RxPowerW:     1.5,
	}
}

// Device is a live UE bound to a simulation engine.
type Device struct {
	eng *sim.Engine
	cfg Config
	cpu *sim.Resource

	drainedJ  float64 // total energy drawn so far
	dead      bool
	executed  uint64
	cpuScale  float64  // DVFS scale in (0, 1]
	tailUntil sim.Time // end of the currently billed radio tail
}

var _ model.Executor = (*Device)(nil)

// New returns a Device on eng. It panics on invalid configuration.
func New(eng *sim.Engine, cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		eng:      eng,
		cfg:      cfg,
		cpu:      sim.NewResource(eng, cfg.Name+"/cpu", cfg.Cores),
		cpuScale: 1,
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// Placement returns model.PlaceLocal.
func (d *Device) Placement() model.Placement { return model.PlaceLocal }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetCPUScale applies a DVFS-style frequency scale in (0, 1]. Power scales
// with the square of frequency (a simplification of the cubic dynamic-power
// law that keeps the energy ordering realistic). It panics outside (0, 1].
func (d *Device) SetCPUScale(s float64) {
	if s <= 0 || s > 1 {
		panic(fmt.Sprintf("device: CPU scale %g outside (0,1]", s))
	}
	d.cpuScale = s
}

// EffectiveHz returns the current per-core clock after DVFS scaling.
func (d *Device) EffectiveHz() float64 { return d.cfg.CPUHz * d.cpuScale }

// ExecTime returns how long the task's computation takes on one core at
// the current frequency.
func (d *Device) ExecTime(task *model.Task) sim.Duration {
	return sim.Duration(task.Cycles / d.EffectiveHz())
}

// Execute runs the task on the device CPU at the device-wide frequency.
// The report carries the device's compute energy as a cost of zero
// dollars; energy is also accumulated on the device battery.
func (d *Device) Execute(task *model.Task, done func(model.ExecReport)) {
	d.ExecuteScaled(task, d.cpuScale, done)
}

// ExecuteScaled runs the task at a per-task DVFS scale in (0, 1],
// overriding the device-wide setting. Lower scales stretch execution time
// by 1/scale and cut energy by roughly the same factor (P ∝ f², t ∝ 1/f ⇒
// E ∝ f) — the lever a delay-tolerant local policy can pull instead of
// offloading.
func (d *Device) ExecuteScaled(task *model.Task, scale float64, done func(model.ExecReport)) {
	if done == nil {
		panic("device: Execute with nil callback")
	}
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("device: per-task CPU scale %g outside (0,1]", scale))
	}
	start := d.eng.Now()
	if d.dead {
		d.eng.After(0, func() {
			done(model.ExecReport{Start: start, End: start, Err: ErrBatteryDead})
		})
		return
	}
	d.cpu.Acquire(func() {
		granted := d.eng.Now()
		dur := sim.Duration(task.Cycles / (d.cfg.CPUHz * scale))
		d.eng.After(dur, func() {
			d.cpu.Release()
			d.executed++
			// Dynamic power ~ f^2 at fixed voltage-scaling policy.
			powerW := d.cfg.ActivePowerW * scale * scale
			d.drain(powerW * float64(dur))
			done(model.ExecReport{
				Start:     start,
				End:       d.eng.Now(),
				QueueWait: granted.Sub(start),
			})
		})
	})
}

// RadioEnergyMilliJ returns the device energy (mJ) consumed by a transfer
// of the given wall duration in the given direction — including the
// radio's post-transfer tail — and drains it from the battery.
//
// Tail accounting: the radio stays hot for RadioTailS after a transfer
// ends. If a new transfer starts while a previous tail is still running,
// only the tail extension beyond the already-billed window is charged, so
// back-to-back transfers pay roughly one tail between them, as on real
// hardware.
func (d *Device) RadioEnergyMilliJ(dur sim.Duration, uplink bool) float64 {
	powerW := d.cfg.RxPowerW
	if uplink {
		powerW = d.cfg.TxPowerW
	}
	j := powerW * float64(dur)
	if d.cfg.RadioTailS > 0 && d.cfg.RadioTailPowerW > 0 {
		now := d.eng.Now()
		tailEnd := now.Add(sim.Duration(d.cfg.RadioTailS))
		billedFrom := now
		if d.tailUntil > billedFrom {
			billedFrom = d.tailUntil
		}
		if tailEnd > billedFrom {
			j += d.cfg.RadioTailPowerW * float64(tailEnd.Sub(billedFrom))
		}
		if tailEnd > d.tailUntil {
			d.tailUntil = tailEnd
		}
	}
	d.drain(j)
	return j * 1000
}

// ComputeEnergyMilliJ returns the energy (mJ) that executing the task
// locally would consume, without draining it. Planners use this estimate.
func (d *Device) ComputeEnergyMilliJ(task *model.Task) float64 {
	powerW := d.cfg.ActivePowerW * d.cpuScale * d.cpuScale
	return powerW * float64(d.ExecTime(task)) * 1000
}

func (d *Device) drain(joules float64) {
	d.drainedJ += joules
	if d.cfg.BatteryJ > 0 && d.drainedJ >= d.cfg.BatteryJ {
		d.dead = true
	}
}

// DrainedJ returns the total energy drawn since the start of the run.
func (d *Device) DrainedJ() float64 { return d.drainedJ }

// BatteryRemainingJ returns the remaining battery energy, or +Inf-like
// large values are avoided: mains-powered devices return -1.
func (d *Device) BatteryRemainingJ() float64 {
	if d.cfg.BatteryJ == 0 {
		return -1
	}
	rem := d.cfg.BatteryJ - d.drainedJ
	if rem < 0 {
		return 0
	}
	return rem
}

// Dead reports whether the battery is exhausted.
func (d *Device) Dead() bool { return d.dead }

// Executed returns how many tasks completed locally.
func (d *Device) Executed() uint64 { return d.executed }

// CPUUtilization returns the time-averaged CPU utilisation.
func (d *Device) CPUUtilization() float64 { return d.cpu.Utilization() }

// Backlog returns the number of tasks running or waiting on the CPU,
// which schedulers use to estimate local queueing delay.
func (d *Device) Backlog() int { return d.cpu.InUse() + d.cpu.QueueLen() }
