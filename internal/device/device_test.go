package device

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"offload/internal/model"
	"offload/internal/sim"
)

func testConfig() Config {
	return Config{
		Name:         "test",
		CPUHz:        1e9, // 1 GHz
		Cores:        2,
		ActivePowerW: 2,
		TxPowerW:     1,
		RxPowerW:     0.5,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"valid", func(c *Config) {}, ""},
		{"zero cpu", func(c *Config) { c.CPUHz = 0 }, "CPUHz"},
		{"zero cores", func(c *Config) { c.Cores = 0 }, "Cores"},
		{"negative power", func(c *Config) { c.TxPowerW = -1 }, "power"},
		{"negative battery", func(c *Config) { c.BatteryJ = -1 }, "battery"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (tt.wantErr == "") != (err == nil) {
				t.Fatalf("Validate() = %v, wantErr=%q", err, tt.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestPresetsValid(t *testing.T) {
	for _, cfg := range []Config{Smartphone(), IoTSensor(), Laptop()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s: %v", cfg.Name, err)
		}
	}
	if Smartphone().CPUHz <= IoTSensor().CPUHz {
		t.Error("smartphone should be faster than IoT sensor")
	}
	if Laptop().BatteryJ != 0 {
		t.Error("laptop should be mains powered")
	}
}

func TestExecuteDuration(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	task := &model.Task{ID: 1, Cycles: 2e9} // 2 s at 1 GHz
	var rep model.ExecReport
	d.Execute(task, func(r model.ExecReport) { rep = r })
	eng.Run()
	if rep.Err != nil {
		t.Fatalf("Execute failed: %v", rep.Err)
	}
	if math.Abs(float64(rep.Duration())-2) > 1e-9 {
		t.Fatalf("local exec duration = %v, want 2", rep.Duration())
	}
	if rep.CostUSD != 0 {
		t.Fatalf("local execution billed %v dollars", rep.CostUSD)
	}
}

func TestExecuteQueuesBeyondCores(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig()) // 2 cores
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		d.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) {
			ends = append(ends, r.End)
		})
	}
	eng.Run()
	if len(ends) != 4 {
		t.Fatalf("got %d completions", len(ends))
	}
	for i, want := range []float64{1, 1, 2, 2} {
		if math.Abs(float64(ends[i])-want) > 1e-9 {
			t.Fatalf("completion %d at %v, want %v", i, ends[i], want)
		}
	}
	// Third task waited one second.
	if d.Executed() != 4 {
		t.Fatalf("Executed = %d", d.Executed())
	}
}

func TestComputeEnergy(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	task := &model.Task{Cycles: 3e9} // 3 s at 2 W = 6 J
	if got := d.ComputeEnergyMilliJ(task); math.Abs(got-6000) > 1e-6 {
		t.Fatalf("ComputeEnergyMilliJ = %g, want 6000", got)
	}
	d.Execute(task, func(model.ExecReport) {})
	eng.Run()
	if math.Abs(d.DrainedJ()-6) > 1e-9 {
		t.Fatalf("DrainedJ = %g, want 6", d.DrainedJ())
	}
}

func TestRadioEnergy(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	up := d.RadioEnergyMilliJ(2, true) // 2 s at 1 W = 2000 mJ
	if math.Abs(up-2000) > 1e-9 {
		t.Fatalf("uplink energy = %g, want 2000", up)
	}
	down := d.RadioEnergyMilliJ(2, false) // 2 s at 0.5 W
	if math.Abs(down-1000) > 1e-9 {
		t.Fatalf("downlink energy = %g, want 1000", down)
	}
	if math.Abs(d.DrainedJ()-3) > 1e-9 {
		t.Fatalf("DrainedJ = %g, want 3", d.DrainedJ())
	}
}

func TestRadioTailEnergyBilledOncePerIdleGap(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.RadioTailS = 2
	cfg.RadioTailPowerW = 1
	d := New(eng, cfg)

	// One 1-second uplink at t=0: 1 J transmission + 2 J tail.
	got := d.RadioEnergyMilliJ(1, true)
	if math.Abs(got-3000) > 1e-9 {
		t.Fatalf("first transfer energy = %g mJ, want 3000", got)
	}

	// A second transfer starting inside the tail window (t=1, tail runs to
	// t=2) bills only the tail extension: 1 J tx + tail [2, 3] = 1 J.
	eng.At(1, func() {
		if got := d.RadioEnergyMilliJ(1, true); math.Abs(got-2000) > 1e-9 {
			t.Errorf("in-tail transfer energy = %g mJ, want 2000", got)
		}
	})
	// A transfer long after the tail expired pays the full tail again.
	eng.At(100, func() {
		if got := d.RadioEnergyMilliJ(1, true); math.Abs(got-3000) > 1e-9 {
			t.Errorf("post-tail transfer energy = %g mJ, want 3000", got)
		}
	})
	eng.Run()
}

func TestRadioTailDisabledByDefault(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	if got := d.RadioEnergyMilliJ(1, true); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("no-tail transfer energy = %g mJ, want 1000", got)
	}
}

func TestSmartphoneLTEPreset(t *testing.T) {
	cfg := SmartphoneLTE()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.RadioTailS <= 0 || cfg.RadioTailPowerW <= 0 {
		t.Fatal("LTE preset has no tail")
	}
	if Smartphone().RadioTailS != 0 {
		t.Fatal("WiFi smartphone grew a tail")
	}
}

func TestBatteryExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.BatteryJ = 5 // enough for ~2.5 s of compute at 2 W
	d := New(eng, cfg)

	var errs []error
	for i := 0; i < 3; i++ {
		d.Execute(&model.Task{Cycles: 1.5e9}, func(r model.ExecReport) {
			errs = append(errs, r.Err)
		})
	}
	eng.Run()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("early tasks failed: %v", errs)
	}
	// Battery is dead after two 3 J draws — but the third task was admitted
	// before death (all submitted at t=0 on 2 cores), so run a fourth.
	var last error
	d.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { last = r.Err })
	eng.Run()
	if !errors.Is(last, ErrBatteryDead) {
		t.Fatalf("task on dead device returned %v, want ErrBatteryDead", last)
	}
	if !d.Dead() {
		t.Fatal("device not marked dead")
	}
	if d.BatteryRemainingJ() != 0 {
		t.Fatalf("BatteryRemainingJ = %g on dead device", d.BatteryRemainingJ())
	}
}

func TestMainsPoweredNeverDies(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig()) // BatteryJ == 0
	for i := 0; i < 100; i++ {
		d.Execute(&model.Task{Cycles: 1e12}, func(r model.ExecReport) {
			if r.Err != nil {
				t.Errorf("mains-powered device failed: %v", r.Err)
			}
		})
	}
	eng.Run()
	if d.Dead() {
		t.Fatal("mains-powered device died")
	}
	if d.BatteryRemainingJ() != -1 {
		t.Fatalf("BatteryRemainingJ = %g, want -1 sentinel", d.BatteryRemainingJ())
	}
}

func TestDVFSSlowsAndSaves(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	task := &model.Task{Cycles: 1e9}
	fullTime := d.ExecTime(task)
	fullEnergy := d.ComputeEnergyMilliJ(task)

	d.SetCPUScale(0.5)
	if got := d.ExecTime(task); math.Abs(float64(got)-2*float64(fullTime)) > 1e-9 {
		t.Fatalf("half-speed ExecTime = %v, want %v", got, 2*fullTime)
	}
	// Energy = P*f^2 * (t/f) = P*t*f: half frequency halves energy here.
	if got := d.ComputeEnergyMilliJ(task); math.Abs(got-fullEnergy/2) > 1e-6 {
		t.Fatalf("half-speed energy = %g, want %g", got, fullEnergy/2)
	}
}

func TestSetCPUScalePanics(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetCPUScale(%g) did not panic", s)
				}
			}()
			d.SetCPUScale(s)
		}()
	}
}

func TestExecuteScaledStretchesTimeAndSavesEnergy(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	task := &model.Task{Cycles: 2e9}
	var full, half model.ExecReport
	d.Execute(task, func(r model.ExecReport) { full = r })
	eng.Run()
	fullDrain := d.DrainedJ()
	d.ExecuteScaled(task, 0.5, func(r model.ExecReport) { half = r })
	eng.Run()
	halfDrain := d.DrainedJ() - fullDrain
	if math.Abs(float64(half.Duration())-2*float64(full.Duration())) > 1e-9 {
		t.Fatalf("half-speed duration %v, want double %v", half.Duration(), full.Duration())
	}
	// E ∝ f: half frequency, half energy.
	if math.Abs(halfDrain-fullDrain/2) > 1e-9 {
		t.Fatalf("half-speed drain %g J, want %g", halfDrain, fullDrain/2)
	}
}

func TestExecuteScaledValidation(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	for _, s := range []float64{0, -0.5, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExecuteScaled(%g) did not panic", s)
				}
			}()
			d.ExecuteScaled(&model.Task{Cycles: 1}, s, func(model.ExecReport) {})
		}()
	}
}

func TestExecTimeScalesWithCycles(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, testConfig())
	f := func(mcycles uint16) bool {
		task := &model.Task{Cycles: float64(mcycles) * 1e6}
		want := float64(mcycles) * 1e6 / 1e9
		return math.Abs(float64(d.ExecTime(task))-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
