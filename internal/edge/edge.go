// Package edge models the Edge-Computing comparator: a small fleet of
// servers deployed near the user. Edge wins on proximity (the scheduler
// pairs it with a LAN path) but carries the drawback the paper calls out —
// required infrastructure. That shows up here as a fixed provisioning cost
// that accrues whether or not the cluster is busy, and as finite capacity
// that queues under load.
package edge

import (
	"fmt"

	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/sim"
)

// ErrTransient is an injected infrastructure failure (a died edge server,
// a dropped request). It wraps model.ErrTransient, so callers classify it
// with model.Transient and should retry.
var ErrTransient = fmt.Errorf("edge: transient execution failure: %w", model.ErrTransient)

// Config describes an edge site.
type Config struct {
	Name    string
	Servers int     // number of machines
	Cores   int     // cores per machine
	CPUHz   float64 // cycles per second per core

	// HourlyCostUSD is the amortised infrastructure cost of the whole site
	// per hour (hardware depreciation + power + space). It accrues with
	// wall time, independent of utilisation.
	HourlyCostUSD float64

	// MemoryPerServer bounds each task's working set. Zero disables.
	MemoryPerServer int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Servers <= 0 || c.Cores <= 0:
		return fmt.Errorf("edge: %s: servers and cores must be positive", c.Name)
	case c.CPUHz <= 0:
		return fmt.Errorf("edge: %s: CPUHz must be positive", c.Name)
	case c.HourlyCostUSD < 0:
		return fmt.Errorf("edge: %s: negative hourly cost", c.Name)
	case c.MemoryPerServer < 0:
		return fmt.Errorf("edge: %s: negative memory", c.Name)
	}
	return nil
}

// SmallSite returns a typical on-premises micro-datacenter: two 8-core
// 3 GHz machines at roughly $0.60/h amortised ($430/month).
func SmallSite() Config {
	return Config{
		Name:            "edge-small",
		Servers:         2,
		Cores:           8,
		CPUHz:           3 * model.GHz,
		HourlyCostUSD:   0.60,
		MemoryPerServer: 32 * model.GB,
	}
}

// Cluster is a live edge site bound to a simulation engine. It implements
// model.Executor.
type Cluster struct {
	eng   *sim.Engine
	cfg   Config
	cores *sim.Resource
	inj   fault.Injector

	executed uint64
	rejected uint64
	faulted  uint64
}

var _ model.Executor = (*Cluster)(nil)

// New returns a Cluster on eng. It panics on invalid configuration.
func New(eng *sim.Engine, cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cluster{
		eng:   eng,
		cfg:   cfg,
		cores: sim.NewResource(eng, cfg.Name+"/cores", cfg.Servers*cfg.Cores),
	}
}

// Name returns the site name.
func (c *Cluster) Name() string { return c.cfg.Name }

// Placement returns model.PlaceEdge.
func (c *Cluster) Placement() model.Placement { return model.PlaceEdge }

// Config returns the site configuration.
func (c *Cluster) Config() Config { return c.cfg }

// SetFaultInjector installs a fault model on the site. A nil injector
// disables fault injection.
func (c *Cluster) SetFaultInjector(inj fault.Injector) { c.inj = inj }

// FaultInjector returns the installed fault model, or nil.
func (c *Cluster) FaultInjector() fault.Injector { return c.inj }

// ExecTime returns the task's single-core run time on this hardware.
func (c *Cluster) ExecTime(task *model.Task) sim.Duration {
	return sim.Duration(task.Cycles / c.cfg.CPUHz)
}

// Execute runs the task on the first free core; excess load queues FIFO.
// The per-task marginal cost is zero — the infrastructure is already paid
// for — which is precisely the accounting that makes edge look cheap until
// ProvisionedCostUSD is included.
func (c *Cluster) Execute(task *model.Task, done func(model.ExecReport)) {
	if done == nil {
		panic("edge: Execute with nil callback")
	}
	start := c.eng.Now()
	if c.cfg.MemoryPerServer > 0 && task.MemoryBytes > c.cfg.MemoryPerServer {
		c.rejected++
		c.eng.After(0, func() {
			done(model.ExecReport{Start: start, End: c.eng.Now(),
				Err: fmt.Errorf("edge: %s: task needs %d bytes, servers have %d",
					c.cfg.Name, task.MemoryBytes, c.cfg.MemoryPerServer)})
		})
		return
	}
	c.cores.Acquire(func() {
		granted := c.eng.Now()
		exec := c.ExecTime(task)
		// Fault model: a crash holds the core for CrashFrac of the run and
		// reports a transient error; a straggler holds it Slowdown× longer.
		dec := fault.Decision{Slowdown: 1}
		if c.inj != nil {
			dec = c.inj.Decide(granted)
		}
		if dec.Slowdown > 1 {
			exec = sim.Duration(float64(exec) * dec.Slowdown)
		}
		if dec.Crash {
			exec = sim.Duration(float64(exec) * dec.CrashFrac)
		}
		c.eng.After(exec, func() {
			c.cores.Release()
			rep := model.ExecReport{
				Start:     start,
				End:       c.eng.Now(),
				QueueWait: granted.Sub(start),
			}
			if dec.Crash {
				c.faulted++
				rep.Err = ErrTransient
			} else {
				c.executed++
			}
			done(rep)
		})
	})
}

// ProvisionedCostUSD returns the infrastructure cost accrued from the
// start of the simulation to now.
func (c *Cluster) ProvisionedCostUSD() float64 {
	return c.cfg.HourlyCostUSD * float64(c.eng.Now()) / 3600
}

// Utilization returns the time-averaged core utilisation.
func (c *Cluster) Utilization() float64 { return c.cores.Utilization() }

// BusyCores returns cores executing a task right now.
func (c *Cluster) BusyCores() int { return c.cores.InUse() }

// Executed returns how many tasks completed on the site.
func (c *Cluster) Executed() uint64 { return c.executed }

// Rejected returns how many tasks were refused (memory bound).
func (c *Cluster) Rejected() uint64 { return c.rejected }

// Faulted returns how many tasks died to injected faults.
func (c *Cluster) Faulted() uint64 { return c.faulted }

// QueueLen returns tasks waiting for a core.
func (c *Cluster) QueueLen() int { return c.cores.QueueLen() }
