package edge

import (
	"math"
	"testing"

	"offload/internal/model"
	"offload/internal/sim"
)

func testConfig() Config {
	return Config{
		Name:            "test-edge",
		Servers:         1,
		Cores:           2,
		CPUHz:           1e9,
		HourlyCostUSD:   3.6, // $0.001 per second, easy numbers
		MemoryPerServer: model.GB,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero servers", func(c *Config) { c.Servers = 0 }, false},
		{"zero cores", func(c *Config) { c.Cores = 0 }, false},
		{"zero cpu", func(c *Config) { c.CPUHz = 0 }, false},
		{"negative cost", func(c *Config) { c.HourlyCostUSD = -1 }, false},
		{"negative memory", func(c *Config) { c.MemoryPerServer = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if got := cfg.Validate() == nil; got != tt.ok {
				t.Fatalf("Validate ok = %v, want %v", got, tt.ok)
			}
		})
	}
	if err := SmallSite().Validate(); err != nil {
		t.Fatalf("SmallSite invalid: %v", err)
	}
}

func TestExecuteTiming(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig())
	var rep model.ExecReport
	c.Execute(&model.Task{Cycles: 2e9}, func(r model.ExecReport) { rep = r })
	eng.Run()
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if math.Abs(float64(rep.Duration())-2) > 1e-9 {
		t.Fatalf("duration = %v, want 2", rep.Duration())
	}
	if rep.CostUSD != 0 {
		t.Fatal("edge execution billed per task")
	}
}

func TestQueueingBeyondCores(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig()) // 2 cores total
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		c.Execute(&model.Task{Cycles: 1e9}, func(r model.ExecReport) { ends = append(ends, r.End) })
	}
	eng.Run()
	for i, want := range []float64{1, 1, 2, 2} {
		if math.Abs(float64(ends[i])-want) > 1e-9 {
			t.Fatalf("completion %d at %v, want %v", i, ends[i], want)
		}
	}
	if c.Executed() != 4 {
		t.Fatalf("Executed = %d", c.Executed())
	}
}

func TestMemoryRejection(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig())
	var rep model.ExecReport
	c.Execute(&model.Task{Cycles: 1, MemoryBytes: 2 * model.GB}, func(r model.ExecReport) { rep = r })
	eng.Run()
	if rep.Err == nil {
		t.Fatal("oversized task accepted")
	}
	if c.Rejected() != 1 {
		t.Fatalf("Rejected = %d", c.Rejected())
	}
}

func TestProvisionedCostAccruesWithTimeNotUse(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig())
	eng.RunUntil(7200) // two idle hours
	want := 2 * 3.6
	if math.Abs(c.ProvisionedCostUSD()-want) > 1e-9 {
		t.Fatalf("ProvisionedCostUSD = %g, want %g", c.ProvisionedCostUSD(), want)
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, testConfig())
	c.Execute(&model.Task{Cycles: 10e9}, func(model.ExecReport) {}) // 10 s on 1 of 2 cores
	eng.RunUntil(20)
	u := c.Utilization()
	if math.Abs(u-0.25) > 0.01 {
		t.Fatalf("Utilization = %g, want ~0.25", u)
	}
}
