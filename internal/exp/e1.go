package exp

import (
	"offload/internal/core"
	"offload/internal/metrics"
)

// e1Policies are the placement policies E1 compares. Random is omitted
// from the headline table (it only sanity-checks the informed policies in
// unit tests).
var e1Policies = []core.PolicyName{
	core.PolicyLocalOnly,
	core.PolicyEdgeAll,
	core.PolicyCloudAll,
	core.PolicyVMAll,
	core.PolicyDeadlineAware,
}

// e1Rate is the per-device task arrival rate: ~72 app runs per hour, a
// busy but sustainable personal workload.
const e1Rate = 0.02

// e1ConfigFor provisions exactly the infrastructure each policy needs, so
// the infra_usd column reflects what running that policy actually costs:
// edge-all pays for the edge site, vm-all for the VM, cloud-all and
// deadline-aware (the framework's proposed deployment) for serverless
// only, local-only for nothing.
func e1ConfigFor(policy core.PolicyName) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = policy
	switch policy {
	case core.PolicyLocalOnly:
		cfg.Edge, cfg.EdgePath, cfg.Serverless, cfg.CloudPath, cfg.VM = nil, nil, nil, nil, nil
	case core.PolicyEdgeAll:
		cfg.Serverless, cfg.CloudPath, cfg.VM = nil, nil, nil
	case core.PolicyCloudAll, core.PolicyDeadlineAware:
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
	case core.PolicyVMAll:
		cfg.Edge, cfg.EdgePath, cfg.Serverless = nil, nil, nil
	}
	return cfg
}

// E1Placement reproduces the headline comparison (Figure 1): for each
// application template, each policy's completion time, deadline misses,
// marginal dollars, infrastructure dollars and device energy.
//
// Expected shape: EdgeAll wins raw latency but carries the infrastructure
// column; CloudAll and DeadlineAware meet the generous deadlines at
// micro-dollar marginal cost; LocalOnly pays no money but the most energy
// and the worst completion times (it saturates the device on the heavy
// templates); DeadlineAware never does worse on misses than CloudAll.
func E1Placement(s Scale) ([]*metrics.Table, error) {
	tbl := metrics.NewTable(
		"E1 (Fig 1): placement policies across application templates",
		"app", "policy", "mean_s", "p95_s", "miss", "task_usd", "infra_usd", "task_mJ")
	apps := []string{"video-transcode", "ml-batch", "photo-pipeline", "report-gen", "sci-batch"}
	for _, app := range apps {
		mix, err := templateMix(app)
		if err != nil {
			return nil, err
		}
		for _, policy := range e1Policies {
			cfg := e1ConfigFor(policy)
			cfg.Seed = s.Seed
			cfg.ArrivalRateHint = e1Rate
			res, err := runCell(s, cfg, mix, e1Rate)
			if err != nil {
				return nil, err
			}
			st := res.stats
			tbl.AddRow(app, string(policy),
				seconds(st.MeanCompletion()),
				seconds(st.P95Completion()),
				pct(st.MissRate()),
				usd(st.CostPerTask()),
				usd(res.infraUSD),
				fmtMilliJ(st.EnergyPerTaskMilliJ()),
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}
