package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/model"
)

// E10PredictionError reproduces the demand-determination ablation
// (Table 4): the deadline-aware policy driven by predictions perturbed
// with growing relative error, against the exact-prediction baseline.
//
// Expected shape: degradation is graceful, not catastrophic. Misprediction
// mis-sizes functions (paying the pressure penalty or wasted memory) and
// mis-places tasks — overestimates push work to conservative local
// execution (raising completion time and device energy rather than
// dollars), underestimates buy undersized functions (raising billed time).
// Deadline misses stay at zero throughout: the generous non-time-critical
// budgets absorb the error, which is itself part of the paper's argument.
func E10PredictionError(s Scale) ([]*metrics.Table, error) {
	mix, err := standardMixTemplates()
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E10 (Tab 4): impact of demand-prediction error on the framework",
		"rel_error", "mean_s", "miss", "task_usd", "excess_cost", "task_mJ", "cloud_share")

	baseCost := 0.0
	for _, noise := range []float64{0, 0.1, 0.25, 0.5, 1.0} {
		// The framework's serverless-only deployment: predictions drive
		// both the local/cloud decision and function sizing, so error
		// shows up in money and misses rather than being absorbed by a
		// free edge site.
		cfg := core.DefaultConfig()
		cfg.Seed = s.Seed
		cfg.Policy = core.PolicyDeadlineAware
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
		cfg.ArrivalRateHint = e1Rate
		cfg.PredictionNoise = noise
		// Let sizing keep chasing the (noisy) predictions, as a live
		// deployment with continuous re-profiling would.
		cfg.RedeployTolerance = 0.3
		res, err := runCell(s, cfg, mix, e1Rate)
		if err != nil {
			return nil, err
		}
		cost := res.stats.CostPerTask()
		if noise == 0 {
			baseCost = cost
		}
		excess := 0.0
		if baseCost > 0 {
			excess = cost/baseCost - 1
		}
		cloudShare := 0.0
		if res.stats.Completed > 0 {
			cloudShare = float64(res.stats.ByPlacement[model.PlaceFunction]) / float64(res.stats.Completed)
		}
		tbl.AddRow(
			fmt.Sprintf("%g", noise),
			seconds(res.stats.MeanCompletion()),
			pct(res.stats.MissRate()),
			usd(cost),
			pct(excess),
			fmtMilliJ(res.stats.EnergyPerTaskMilliJ()),
			pct(cloudShare),
		)
	}
	return []*metrics.Table{tbl}, nil
}
