package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/serverless"
)

// E11OffPeak reproduces the delay-for-price analysis (Table 5): under a
// diurnal price schedule (60% discount between 22:00 and 06:00 virtual
// time), the off-peak shifter delays slack-rich serverless tasks into the
// discount window. Compared against immediate dispatch across deadline
// slack factors.
//
// Expected shape: with generous slack nearly every task shifts and the
// bill approaches the discounted rate; as slack tightens fewer tasks can
// afford the wait and the two policies converge; deadline misses stay at
// zero in both — the shifter only delays tasks that can prove they still
// make their deadline.
func E11OffPeak(s Scale) ([]*metrics.Table, error) {
	mix, err := standardMixTemplates()
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E11 (Tab 5): shifting delay-tolerant work into the off-peak window",
		"slack_x", "shifting", "shifted", "task_usd", "saving", "miss", "mean_s")

	// Arrivals start at 20:00 virtual time — two hours before the window
	// opens, so shifting means a real wait that tight deadlines cannot
	// afford and generous ones can.
	const startAt = 20 * 3600

	for _, factor := range []float64{0.05, 1, 4, 24} {
		scaled := scaleDeadlines(mix, factor)
		baseCost := 0.0
		for _, shift := range []bool{false, true} {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = core.PolicyCloudAll
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			sl := serverless.LambdaLike()
			sl.Price.OffPeakFactor = 0.4
			sl.Price.OffPeakStartHour = 22
			sl.Price.OffPeakEndHour = 6
			cfg.Serverless = &sl
			cfg.ArrivalRateHint = e1Rate
			cfg.OffPeakShift = shift
			res, err := runCellAt(s, cfg, scaled, e1Rate, startAt)
			if err != nil {
				return nil, err
			}
			cost := res.stats.CostPerTask()
			if !shift {
				baseCost = cost
			}
			saving := 0.0
			if baseCost > 0 {
				saving = 1 - cost/baseCost
			}
			shifted := "-"
			if shift && res.system.Shifter != nil {
				sh := res.system.Shifter
				shifted = pct(float64(sh.Shifted()) / float64(sh.Shifted()+sh.Immediate()))
			}
			tbl.AddRow(
				fmt.Sprintf("%g", factor),
				fmt.Sprintf("%v", shift),
				shifted,
				usd(cost),
				pct(saving),
				pct(res.stats.MissRate()),
				seconds(res.stats.MeanCompletion()),
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}
