package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/serverless"
)

// E12Failures reproduces the robustness analysis (Table 6): the cloud
// policy under injected transient invocation failures, with and without
// retries. Failed attempts are still billed (as real platforms bill
// crashed containers), so retries cost money as well as time.
//
// Expected shape: without retries the task failure rate tracks the
// injected rate; with retries the failure rate collapses to roughly
// rate^attempts while cost per task rises by about the failure rate (the
// re-billed attempts) and completion time absorbs the backoff. Deadline
// misses stay at zero — another place the non-time-critical budget pays.
func E12Failures(s Scale) ([]*metrics.Table, error) {
	mix, err := templateMix("report-gen")
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E12 (Tab 6): transient failures, with and without retries",
		"failure_rate", "retries", "task_failures", "sched_retries", "task_usd", "mean_s", "miss")

	for _, rate := range []float64{0.05, 0.2, 0.5} {
		for _, attempts := range []int{1, 5} {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = core.PolicyCloudAll
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			sl := serverless.LambdaLike()
			sl.FailureRate = rate
			cfg.Serverless = &sl
			cfg.ArrivalRateHint = e1Rate
			cfg.Retries = attempts
			cfg.RetryBackoff = 5
			res, err := runCell(s, cfg, mix, e1Rate)
			if err != nil {
				return nil, err
			}
			st := res.stats
			tbl.AddRow(
				fmt.Sprintf("%g", rate),
				fmt.Sprintf("%d", attempts),
				pct(float64(st.Failed)/float64(st.Total())),
				fmt.Sprintf("%d", st.Retries),
				usd(st.CostPerTask()),
				seconds(st.MeanCompletion()),
				pct(st.MissRate()),
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}
