package exp

import (
	"offload/internal/core"
	"offload/internal/metrics"
)

// E13DVFS reproduces the local-execution ablation (Table 7): if the device
// must run the work itself, is racing to idle at full frequency or
// stretching the job with DVFS the better use of the deadline slack — and
// how do both compare to offloading?
//
// Expected shape: DVFS cuts local energy roughly in proportion to the
// frequency reduction the deadline permits (E ∝ f under the quadratic
// power model), without causing misses; offloading still beats both by an
// order of magnitude on compute-heavy apps. DVFS narrows but does not
// close the gap — supporting the paper's choice of offloading over
// on-device power management.
func E13DVFS(s Scale) ([]*metrics.Table, error) {
	tbl := metrics.NewTable(
		"E13 (Tab 7): race-to-idle vs DVFS vs offloading",
		"app", "mode", "task_mJ", "mean_s", "miss", "vs_full")
	apps := []string{"sci-batch", "report-gen"}
	modes := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"local-full-speed", func(cfg *core.Config) {
			cfg.Policy = core.PolicyLocalOnly
		}},
		{"local-dvfs", func(cfg *core.Config) {
			cfg.Policy = core.PolicyLocalOnly
			cfg.LocalDVFSMinScale = 0.25
		}},
		{"cloud", func(cfg *core.Config) {
			cfg.Policy = core.PolicyCloudAll
		}},
	}
	for _, app := range apps {
		mix, err := templateMix(app)
		if err != nil {
			return nil, err
		}
		fullEnergy := 0.0
		for _, mode := range modes {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			cfg.ArrivalRateHint = e1Rate
			cfg.Device.BatteryJ = 0 // measure rates, not exhaustion
			mode.mutate(&cfg)
			// Use a lower arrival rate for DVFS: stretched executions
			// occupy cores longer, and a saturated queue would conflate
			// queueing with the frequency effect.
			rate := e1Rate
			if mode.name == "local-dvfs" {
				rate = e1Rate / 4
			}
			res, err := runCell(s, cfg, mix, rate)
			if err != nil {
				return nil, err
			}
			energy := res.stats.EnergyPerTaskMilliJ()
			if mode.name == "local-full-speed" {
				fullEnergy = energy
			}
			rel := "-"
			if fullEnergy > 0 {
				rel = pct(energy/fullEnergy - 1)
			}
			tbl.AddRow(app, mode.name,
				fmtMilliJ(energy),
				seconds(res.stats.MeanCompletion()),
				pct(res.stats.MissRate()),
				rel,
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}
