package exp

import (
	"offload/internal/cloudvm"
	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/workload"
)

// E14Bursts reproduces the elasticity analysis (Table 8): the abstract
// leans on "seemingly endless computational capacity in the cloud"; this
// experiment checks what that buys under bursty arrivals. The same
// report-gen workload arrives either as a steady Poisson stream or as an
// MMPP (calm 0.01/s, bursts of 5/s lasting ~2 min) with an equal long-run
// rate, served by serverless, a fixed VM, or an autoscaled VM fleet.
//
// Expected shape: all three handle the steady stream; under bursts the
// fixed VM's queue explodes (P95 grows by an order of magnitude), the
// autoscaler lands in between (its 60 s boot delay lags each burst), and
// serverless degrades the least because every invocation gets its own
// container (only the device radio and the account limit are shared).
func E14Bursts(s Scale) ([]*metrics.Table, error) {
	mix, err := templateMix("report-gen")
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E14 (Tab 8): absorbing bursty arrivals (equal long-run rate)",
		"arrivals", "backend", "mean_s", "p95_s", "miss", "task_usd", "infra_usd")

	// MMPP: calm 0.01/s, burst 3/s; calm spells ~20 min, bursts ~2 min.
	// The long-run mean (~0.28/s) keeps the fixed VM stable on the steady
	// stream (demand ≈ 1.2 of its 2 core-seconds/second), so any collapse
	// under the bursty stream is the bursts' doing, not plain overload.
	const (
		calmRate  = 0.01
		burstRate = 3.0
		toBurst   = 1.0 / 1200
		toCalm    = 1.0 / 120
	)
	// Long-run mean of the MMPP, used as the steady comparator's rate.
	burstFrac := (1 / toCalm) / (1/toBurst + 1/toCalm)
	meanRate := calmRate*(1-burstFrac) + burstRate*burstFrac

	backends := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"serverless", func(cfg *core.Config) {
			cfg.Policy = core.PolicyCloudAll
		}},
		{"vm-fixed", func(cfg *core.Config) {
			cfg.Policy = core.PolicyVMAll
			vm := cloudvm.C5Large()
			cfg.VM = &vm
		}},
		{"vm-autoscaled", func(cfg *core.Config) {
			cfg.Policy = core.PolicyVMAll
			vm := cloudvm.Autoscaled()
			cfg.VM = &vm
		}},
	}
	for _, arrivals := range []string{"steady", "bursty"} {
		for _, backend := range backends {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			cfg.ArrivalRateHint = meanRate
			backend.mutate(&cfg)
			if cfg.Policy == core.PolicyVMAll {
				cfg.Serverless = nil
			}

			sys, err := core.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			gen, err := workload.NewGenerator(sys.Src.Split(), mix)
			if err != nil {
				return nil, err
			}
			var arr workload.Arrivals
			if arrivals == "steady" {
				arr = workload.NewPoisson(sys.Src.Split(), meanRate)
			} else {
				arr = workload.NewMMPP(sys.Src.Split(), calmRate, burstRate, toBurst, toCalm)
			}
			sys.SubmitStream(arr, gen, s.Tasks*3)
			sys.Run()

			st := sys.Stats()
			tbl.AddRow(arrivals, backend.name,
				seconds(st.MeanCompletion()),
				seconds(st.P95Completion()),
				pct(st.MissRate()),
				usd(st.CostPerTask()),
				usd(sys.InfrastructureCostUSD()),
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}
