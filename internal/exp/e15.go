package exp

import (
	"fmt"

	"offload/internal/alloc"
	"offload/internal/callgraph"
	"offload/internal/chain"
	"offload/internal/device"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/partition"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/workload"
)

// E15Granularity reproduces the deployment-granularity ablation (Table 9):
// should the offloadable side of an application deploy as ONE aggregated
// function (what the online scheduler's function pool does) or as one
// function PER component (what the CI/CD manifest deploys)? Five
// sequential runs per variant, on a fresh platform each.
//
// Expected shape: per-component deployment right-sizes each stage's
// memory (cheaper GB-seconds for the light stages) but pays one cold
// start per function on the first run and a per-request charge per stage;
// the monolithic function amortises those but over-provisions memory for
// its lightest work. Neither dominates — the gap per run is small, which
// is itself the finding: granularity is an operational choice (rollback
// scope, canary precision), not a cost cliff.
func E15Granularity(s Scale) ([]*metrics.Table, error) {
	tbl := metrics.NewTable(
		"E15 (Tab 9): one aggregated function vs one function per component",
		"app", "deployment", "functions", "run_s", "run_usd", "run_mJ")
	const runs = 5
	for _, app := range []string{"ml-batch", "sci-batch", "report-gen"} {
		g := callgraph.Templates()[app]
		mono, err := runMonolithic(s, g, runs)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(app, "monolithic", "1",
			seconds(mono.meanS), usd(mono.meanUSD), fmtMilliJ(mono.meanMJ))
		per, err := runPerComponent(s, g, runs)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(app, "per-component", fmt.Sprintf("%d", per.functions),
			seconds(per.meanS), usd(per.meanUSD), fmtMilliJ(per.meanMJ))
	}
	return []*metrics.Table{tbl}, nil
}

type granResult struct {
	meanS, meanUSD, meanMJ float64
	functions              int
}

func e15Fixture(seed uint64) (*sim.Engine, *device.Device, *network.Path, *serverless.Platform) {
	eng := sim.NewEngine()
	dev := device.New(eng, device.Smartphone())
	path := network.New(eng, rng.New(seed+1), network.WiFiCloud())
	platform := serverless.NewPlatform(eng, rng.New(seed+2), serverless.LambdaLike())
	return eng, dev, path, platform
}

// runMonolithic executes the app as the aggregate task the function pool
// would build: one function sized for the whole offloadable side.
func runMonolithic(s Scale, g *callgraph.Graph, runs int) (granResult, error) {
	eng, dev, path, platform := e15Fixture(s.Seed)
	tmpl, err := workload.FromGraph(g)
	if err != nil {
		return granResult{}, err
	}
	allocator := alloc.New(platform.Config())
	dec, err := allocator.Choose(alloc.Request{
		Cycles:           tmpl.MeanCycles,
		ParallelFraction: tmpl.ParallelFraction,
		MemoryFloorBytes: tmpl.MemoryBytes,
		ColdStartProb:    1,
	})
	if err != nil {
		return granResult{}, err
	}
	fn, err := platform.Deploy(serverless.FunctionConfig{
		Name: g.Name() + "-all", MemoryBytes: dec.MemoryBytes,
	})
	if err != nil {
		return granResult{}, err
	}

	var out granResult
	out.functions = 1
	var durS, usdSum, mj float64
	var runOnce func(i int)
	runOnce = func(i int) {
		if i >= runs {
			return
		}
		start := eng.Now()
		task := &model.Task{
			App: g.Name(), Cycles: tmpl.MeanCycles,
			MemoryBytes: tmpl.MemoryBytes, ParallelFraction: tmpl.ParallelFraction,
			InputBytes: tmpl.InputBytes, OutputBytes: tmpl.OutputBytes,
		}
		path.Transfer(task.InputBytes, network.Uplink, func(up network.Report) {
			mj += dev.RadioEnergyMilliJ(up.Duration(), true)
			fn.Execute(task, func(rep model.ExecReport) {
				usdSum += rep.CostUSD
				path.Transfer(task.OutputBytes, network.Downlink, func(down network.Report) {
					mj += dev.RadioEnergyMilliJ(down.Duration(), false)
					durS += float64(eng.Now().Sub(start))
					runOnce(i + 1)
				})
			})
		})
	}
	runOnce(0)
	eng.Run()
	out.meanS = durS / float64(runs)
	out.meanUSD = usdSum / float64(runs)
	out.meanMJ = mj / float64(runs)
	return out, nil
}

// runPerComponent executes the app through the chain runner with every
// non-pinned component on its own allocator-sized function.
func runPerComponent(s Scale, g *callgraph.Graph, runs int) (granResult, error) {
	eng, dev, path, platform := e15Fixture(s.Seed + 100)
	allocator := alloc.New(platform.Config())
	assignment := partition.AllRemote(g)
	fns := make(map[string]*serverless.Function)
	count := 0
	for i, remote := range assignment {
		if !remote {
			continue
		}
		comp := g.Component(callgraph.ComponentID(i))
		dec, err := allocator.Choose(alloc.Request{
			Cycles:           comp.Cycles * comp.CallsPerRun,
			ParallelFraction: comp.ParallelFraction,
			MemoryFloorBytes: comp.MemoryBytes,
			ColdStartProb:    1,
		})
		if err != nil {
			return granResult{}, err
		}
		fn, err := platform.Deploy(serverless.FunctionConfig{
			Name: g.Name() + "-" + comp.Name, MemoryBytes: dec.MemoryBytes,
		})
		if err != nil {
			return granResult{}, err
		}
		fns[comp.Name] = fn
		count++
	}
	runner, err := chain.New(eng, chain.Config{
		Graph: g, Assignment: assignment, Device: dev, Path: path, Functions: fns,
	})
	if err != nil {
		return granResult{}, err
	}

	var out granResult
	out.functions = count
	var durS, usdSum, mj float64
	var runErr error
	var runOnce func(i int)
	runOnce = func(i int) {
		if i >= runs {
			return
		}
		runner.Run(func(res chain.Result) {
			if res.Failed {
				runErr = fmt.Errorf("e15: %s chain run %d failed", g.Name(), i)
				return
			}
			durS += float64(res.Duration())
			usdSum += res.CostUSD
			mj += res.EnergyMilliJ
			runOnce(i + 1)
		})
	}
	runOnce(0)
	eng.Run()
	if runErr != nil {
		return granResult{}, runErr
	}
	out.meanS = durS / float64(runs)
	out.meanUSD = usdSum / float64(runs)
	out.meanMJ = mj / float64(runs)
	return out, nil
}
