package exp

import (
	"fmt"

	"offload/internal/alloc"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/serverless"
)

// E16Providers reproduces the provider-choice analysis (Table 10): the
// same demand profile sized by the allocator on two FaaS providers with
// different billing granularities (1 ms Lambda-like vs 100 ms GCF-like).
//
// Expected shape: for sub-100 ms tasks, the coarse-granularity provider
// bills a full 100 ms slot, inflating cost by up to ~10× relative to fine
// granularity; as task duration grows, rounding amortises and the two
// providers converge to their per-GB-second list prices. The allocator
// adapts its memory choice per provider (their CPU/memory curves differ),
// which is exactly why resource allocation must be provider-aware.
func E16Providers(s Scale) ([]*metrics.Table, error) {
	providers := []serverless.Config{serverless.LambdaLike(), serverless.GCFLike()}
	profiles := []struct {
		name string
		req  alloc.Request
	}{
		{"tiny-20ms", alloc.Request{Cycles: 5e7}},                                                     // ~20 ms at one vCPU
		{"small-200ms", alloc.Request{Cycles: 5e8}},                                                   // ~200 ms
		{"medium-2s", alloc.Request{Cycles: 5e9, MemoryFloorBytes: 512 * model.MB}},                   // ~2 s
		{"large-20s", alloc.Request{Cycles: 5e10, ParallelFraction: 0.8, MemoryFloorBytes: model.GB}}, // ~20 s
	}

	tbl := metrics.NewTable(
		"E16 (Tab 10): allocator choice and cost per provider",
		"profile", "provider", "chosen_mb", "exec_s", "cost_usd", "cost_ratio")
	for _, p := range profiles {
		base := 0.0
		for i, cfg := range providers {
			a := alloc.New(cfg)
			d, err := a.Choose(p.req)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = d.ExpectedCostUSD
			}
			ratio := "-"
			if base > 0 {
				ratio = fmt.Sprintf("%.2fx", d.ExpectedCostUSD/base)
			}
			tbl.AddRow(p.name, cfg.Name,
				fmt.Sprintf("%d", d.MemoryBytes/model.MB),
				seconds(float64(d.ExpectedTime)),
				usd(d.ExpectedCostUSD),
				ratio,
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}
