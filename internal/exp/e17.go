package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/fault"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/sched"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// e17Rate is the arrival rate for the resilience study. It is an order of
// magnitude denser than e1Rate so that even the shortest outage burst
// covers several arrivals and the failure statistics resolve the bursts.
const e17Rate = 0.2

// e17OutageStart leaves a short healthy warm-up before the burst begins.
const e17OutageStart sim.Time = 20

// E17Resilience studies correlated cloud outages — the robustness case
// i.i.d. failure injection (E12) cannot express. A scheduled outage of
// varying length hits the serverless region while the cloud-all policy
// keeps submitting; four client-side strategies face it:
//
//   - fail-fast:    no retries — every invocation lost to the outage fails;
//   - retry-only:   exponential backoff with full jitter (≈62 s horizon);
//   - brk+fallback: retries plus a circuit breaker that reroutes to local
//     execution while open, re-probing the cloud every cooldown;
//   - hedged:       retries plus per-attempt timeouts and a duplicate
//     attempt once the primary looks slow (a straggler-tail hedge).
//
// A light straggler model (5% of invocations 4× slower, Pareto tail) runs
// alongside the outage so the hedged strategy has a tail to cut.
//
// Expected shape: fail-fast loses roughly the fraction of tasks that
// arrive inside the burst. Retry-only absorbs bursts shorter than its
// backoff horizon but degrades sharply at 240 s. Breaker+fallback keeps
// the failure rate at zero for every burst length by buying local
// completions (visible as fallbacks and higher energy), and recovers
// within one cooldown of the outage clearing. Hedging pays a small cost
// premium (wasted duplicates) for a tighter tail. Failed attempts are
// billed by the platform, so resilience shows up as money too.
func E17Resilience(s Scale) ([]*metrics.Table, error) {
	mix, err := templateMix("report-gen")
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E17: resilience strategies under correlated cloud outages",
		"burst_s", "strategy", "task_fail", "p95_s", "task_usd",
		"task_mJ", "fallbacks", "hedges", "recovery_s")

	retry := func(cfg *core.Config) {
		cfg.Retries = 6
		cfg.RetryBackoff = 2
		cfg.RetryMaxBackoff = 60
		cfg.RetryJitter = true
	}
	strategies := []struct {
		name  string
		apply func(*core.Config)
	}{
		{"fail-fast", func(cfg *core.Config) {}},
		{"retry-only", retry},
		{"brk+fallback", func(cfg *core.Config) {
			retry(cfg)
			cfg.Resilience = &sched.Resilience{
				Breaker:  &sched.BreakerConfig{FailureThreshold: 5, OpenFor: 20, HalfOpenSuccesses: 1},
				Fallback: model.PlaceLocal,
			}
		}},
		{"hedged", func(cfg *core.Config) {
			retry(cfg)
			cfg.Resilience = &sched.Resilience{
				AttemptTimeout: 120,
				HedgeDelay:     20, HedgeQuantile: 0.95, MaxHedges: 1,
			}
		}},
	}

	for _, burst := range []sim.Duration{15, 60, 240} {
		for _, strat := range strategies {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = core.PolicyCloudAll
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			sl := serverless.LambdaLike()
			cfg.Serverless = &sl
			cfg.ArrivalRateHint = e17Rate
			cfg.Fault = &fault.Config{
				Outages:       []fault.Window{{Start: e17OutageStart, Duration: burst}},
				StragglerProb: 0.05, StragglerFactor: 4, StragglerAlpha: 1.5,
			}
			strat.apply(&cfg)
			res, err := runCell(s, cfg, mix, e17Rate)
			if err != nil {
				return nil, err
			}
			st := res.stats
			tbl.AddRow(
				fmt.Sprintf("%g", float64(burst)),
				strat.name,
				pct(float64(st.Failed)/float64(st.Total())),
				seconds(st.P95Completion()),
				usd(st.CostPerTask()),
				fmtMilliJ(st.EnergyPerTaskMilliJ()),
				fmt.Sprintf("%d", st.Fallbacks),
				fmt.Sprintf("%d", st.Hedges),
				recoverySeconds(res, e17OutageStart.Add(burst)),
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}

// recoverySeconds measures how long after the outage cleared the cloud
// path carried its first successful completion again — the recovery lag a
// breaker's probing cadence adds. "-" means the run ended first (e.g. the
// burst outlived the workload at quick scale).
func recoverySeconds(res runResult, outEnd sim.Time) string {
	best := -1.0
	for _, r := range res.system.Recorder.Records() {
		if r.Failed || r.Placement != model.PlaceFunction.String() || r.Finished < float64(outEnd) {
			continue
		}
		if lag := r.Finished - float64(outEnd); best < 0 || lag < best {
			best = lag
		}
	}
	if best < 0 {
		return "-"
	}
	return seconds(best)
}
