package exp

import (
	"fmt"
	"math"

	"offload/internal/core"
	"offload/internal/fault"
	"offload/internal/metrics"
	"offload/internal/sched"
	"offload/internal/serverless"
	"offload/internal/trace"
)

// e18Rate matches the resilience study's arrival density so hedging has
// enough in-flight overlap to matter.
const e18Rate = 0.2

// e18ColdRatioMin/Max bound the accepted cold-start inflation: doubling
// the cold-start model (median and per-GB surcharge both ×2) must move
// the attributed cold_start critical-path seconds by about the same
// factor. The band is wide because only the critical-path *portion* of
// each cold start scales, and lognormal draws land differently once
// attempt timings shift.
const (
	e18ColdRatioMin = 1.3
	e18ColdRatioMax = 3.0
)

// e18USDTolerance is the accepted absolute drift between span-accounted
// spend and the scheduler's Stats: pure float summation error.
const e18USDTolerance = 1e-9

// E18Attribution validates the span-level critical-path attribution
// against ground truth it can control. Four serverless-only cells run
// the cloud-all policy:
//
//   - baseline:      every container start cold (KeepAlive 0);
//   - cold-2x:       the same cell with the cold-start model doubled —
//     the attributed cold_start seconds must inflate accordingly;
//   - stragglers:    a heavy straggler tail (20% of invocations 6×
//     slower) and no mitigation — exec dominates the P95 band;
//   - hedged:        the same tail raced by a duplicate attempt — the
//     exec share of the P95 band must drop, and the losing attempts
//     must show up in the waste accounting.
//
// Every cell also cross-checks the money identity: the spend summed over
// attempt spans, and over task root spans, must equal the scheduler's
// Stats (completed + failed per-task billing) to float precision —
// span-level accounting invents and loses nothing.
func E18Attribution(s Scale) ([]*metrics.Table, error) {
	mix, err := standardMixTemplates()
	if err != nil {
		return nil, err
	}

	baseCfg := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Seed = s.Seed
		cfg.Policy = core.PolicyCloudAll
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
		sl := serverless.LambdaLike()
		cfg.Serverless = &sl
		cfg.ArrivalRateHint = e18Rate
		return cfg
	}

	cells := []struct {
		name  string
		apply func(*core.Config)
	}{
		{"baseline", func(cfg *core.Config) {
			cfg.Serverless.KeepAlive = 0 // every start cold: maximal cold_start signal
		}},
		{"cold-2x", func(cfg *core.Config) {
			cfg.Serverless.KeepAlive = 0
			cfg.Serverless.ColdStart.MedianSec *= 2
			cfg.Serverless.ColdStart.PerGBExtra *= 2
		}},
		{"stragglers", func(cfg *core.Config) {
			cfg.Fault = &fault.Config{
				StragglerProb: 0.2, StragglerFactor: 6, StragglerAlpha: 1.5,
			}
		}},
		{"hedged", func(cfg *core.Config) {
			cfg.Fault = &fault.Config{
				StragglerProb: 0.2, StragglerFactor: 6, StragglerAlpha: 1.5,
			}
			cfg.Resilience = &sched.Resilience{
				HedgeDelay: 10, HedgeQuantile: 0.9, MaxHedges: 1,
			}
		}},
	}

	phaseTbl := metrics.NewTable(
		"E18: critical-path attribution across controlled cells",
		"cell", "phase", "mean_s", "share", "share_p95")
	type cellOut struct {
		att   *trace.Attribution
		waste trace.Waste
		stats *sched.Stats
	}
	outs := make(map[string]cellOut, len(cells))

	for _, cell := range cells {
		cfg := baseCfg()
		cell.apply(&cfg)
		res, set, err := runCellSpans(s, "e18_"+cell.name, cfg, mix, e18Rate)
		if err != nil {
			return nil, err
		}
		att := trace.Attribute(set)
		outs[cell.name] = cellOut{att: att, waste: trace.ComputeWaste(set), stats: res.stats}
		if g := att.Group("all"); g != nil {
			for _, phase := range trace.Phases {
				ps := g.Phase[phase]
				if ps.MeanS == 0 {
					continue
				}
				phaseTbl.AddRow(cell.name, phase,
					fmt.Sprintf("%.4g", ps.MeanS),
					pct(ps.ShareMean), pct(ps.ShareP95))
			}
		}
	}

	phaseOf := func(cell, phase string) trace.PhaseStats {
		if g := outs[cell].att.Group("all"); g != nil {
			return g.Phase[phase]
		}
		return trace.PhaseStats{}
	}

	checks := metrics.NewTable(
		"E18: attribution vs ground truth",
		"check", "measured", "expect", "ok")
	pass := true
	add := func(name, measured, expect string, ok bool) {
		verdict := "yes"
		if !ok {
			verdict = "NO"
			pass = false
		}
		checks.AddRow(name, measured, expect, verdict)
	}

	coldBase := phaseOf("baseline", trace.PhaseColdStart).MeanS
	coldRatio := math.Inf(1)
	if coldBase > 0 {
		coldRatio = phaseOf("cold-2x", trace.PhaseColdStart).MeanS / coldBase
	}
	add("cold_start mean inflates under 2x cold model",
		fmt.Sprintf("%.3gx", coldRatio),
		fmt.Sprintf("%.2gx..%.2gx", e18ColdRatioMin, e18ColdRatioMax),
		coldRatio >= e18ColdRatioMin && coldRatio <= e18ColdRatioMax)

	execNoHedge := phaseOf("stragglers", trace.PhaseExec).ShareP95
	execHedged := phaseOf("hedged", trace.PhaseExec).ShareP95
	add("hedging cuts exec share of the P95 band",
		fmt.Sprintf("%s -> %s", pct(execNoHedge), pct(execHedged)),
		"hedged < unhedged", execHedged < execNoHedge)

	hw := outs["hedged"].waste
	add("hedged cell pays for losing attempts",
		fmt.Sprintf("%d lost hedges at %s", hw.LostHedges, usd(hw.LostUSD)),
		"> 0", hw.LostHedges > 0 && hw.LostUSD > 0)

	maxDrift := 0.0
	for _, cell := range cells {
		o := outs[cell.name]
		ground := o.stats.CostUSD + o.stats.FailedCostUSD
		drift := math.Max(
			math.Abs(o.waste.AttemptUSD-ground),
			math.Abs(o.waste.TaskUSD-ground))
		maxDrift = math.Max(maxDrift, drift)
	}
	add("span spend matches scheduler stats (all cells)",
		fmt.Sprintf("%.2e USD drift", maxDrift),
		fmt.Sprintf("<= %.0e", e18USDTolerance), maxDrift <= e18USDTolerance)

	tables := []*metrics.Table{phaseTbl, checks, outs["hedged"].waste.Table()}
	if !pass {
		return tables, fmt.Errorf("exp: E18 attribution check failed (see table %q)", checks.Title())
	}
	return tables, nil
}
