package exp

import (
	"fmt"
	"sort"

	"offload/internal/adapt"
	"offload/internal/cloudvm"
	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/edge"
	"offload/internal/fault"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/serverless"
	"offload/internal/sim"
	"offload/internal/workload"
)

// E19 pits the online adaptive layer (internal/adapt) against every
// static placement policy across three cells whose best backend CHANGES
// mid-run. A static policy can win at most some cells; the bandit has to
// win the sum.
const (
	// e19Rate is the steady arrival rate of the outage and cold-start
	// cells; it also sets the cell horizon (tasks/rate).
	e19Rate = 0.2

	// Burst cell: a long calm phase at trickle rate teaches the bandit
	// the calm-weather optimum, then the remaining tasks arrive in a
	// flash crowd that buries the fixed-capacity backends.
	e19CalmRate  = 0.05
	e19BurstRate = 1.0

	// Objective weights: a settled task scores
	//   completion/latScale + (money + energy·price)/costScale,
	// a failed task scores e19FailScore outright. The same latency and
	// cost scales are handed to the bandit so the learner optimises the
	// objective it is judged on.
	e19LatScaleS     = 10.0
	e19CostScaleUSD  = 0.001
	e19EnergyUSDPerJ = 2.3e-5
	e19FailScore     = 2.5

	// Cold-start regime: a heavy container runtime with a short
	// keep-alive, so the platform runs mostly cold; the drift cell
	// doubles the median mid-run.
	e19ColdMedianS = 1.5
	e19KeepAliveS  = 2
)

// e19Tasks doubles the per-cell task count relative to the suite-wide
// scale: a learner needs enough rounds after each drift for its
// exploration tax to amortise, and 40 tasks split across three regimes
// would measure mostly the tax.
func e19Tasks(s Scale) int { return 2 * s.Tasks }

// e19Cell is one drift regime: a config mutation applied before the
// system is built plus a drive schedule for the arrivals (and any
// mid-run environment shift).
type e19Cell struct {
	name  string
	prep  func(cfg *core.Config, horizon float64)
	drive func(s Scale, sys *core.System, gen *workload.Generator, horizon float64)
}

// e19Config assembles the shared environment every policy faces: a
// smartphone against a deliberately small single-machine edge site
// (cheap and fast until a flash crowd buries it), one always-on VM, and
// an elastic serverless region with slow cold starts.
func e19Config(s Scale, policy core.PolicyName) core.Config {
	edgeCfg := edge.Config{
		Name:            "cell-site",
		Servers:         1,
		Cores:           2,
		CPUHz:           3 * model.GHz,
		HourlyCostUSD:   0.15,
		MemoryPerServer: 16 * model.GB,
	}
	edgePath := network.LANEdge()
	sl := serverless.LambdaLike()
	sl.ColdStart = serverless.ColdStartModel{MedianSec: e19ColdMedianS, Sigma: 0.35, PerGBExtra: 0.05}
	sl.KeepAlive = e19KeepAliveS
	cloudPath := network.WiFiCloud()
	vmCfg := cloudvm.C5Large()
	cfg := core.Config{
		Seed:            s.Seed,
		Device:          device.Smartphone(),
		Edge:            &edgeCfg,
		EdgePath:        &edgePath,
		Serverless:      &sl,
		CloudPath:       &cloudPath,
		VM:              &vmCfg,
		Policy:          policy,
		ArrivalRateHint: e19Rate,
	}
	if isAdaptivePolicy(policy) {
		acfg := adapt.DefaultConfig()
		acfg.LatencyScaleS = e19LatScaleS
		acfg.CostScaleUSD = e19CostScaleUSD
		acfg.EnergyUSDPerJ = e19EnergyUSDPerJ
		// Tighter exploration than the defaults: three cells of a few
		// hundred rounds each cannot afford a wide confidence radius.
		acfg.UCBC = 0.2
		acfg.Epsilon = 0.05
		// A jumpy drift detector and a hair-trigger breaker: the regimes
		// here shift hard (dark region, doubled cold starts, 160× rate),
		// so reacting late costs more than a false alarm.
		acfg.Drift = &adapt.DriftConfig{Lambda: 20, MinSamples: 3}
		acfg.Admission.FailureStreak = 2
		acfg.Admission.Cooldown = 45
		cfg.Adapt = &acfg
	}
	return cfg
}

// e19Cells returns the three drift regimes. Horizons are expressed in
// multiples of the cell length so quick and full scale drift at the
// same relative point.
func e19Cells() []e19Cell {
	steady := func(s Scale, sys *core.System, gen *workload.Generator, _ float64) {
		sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), e19Rate), gen, e19Tasks(s))
	}
	return []e19Cell{
		{
			// The serverless region goes dark for half the run: anything
			// committed to the cloud fails until the window clears.
			name: "outage",
			prep: func(cfg *core.Config, horizon float64) {
				cfg.Fault = &fault.Config{Outages: []fault.Window{{
					Start:    sim.Time(0.2 * horizon),
					Duration: sim.Duration(0.4 * horizon),
				}}}
			},
			drive: steady,
		},
		{
			// The container runtime regresses: median cold start doubles
			// 30% in, on a platform that runs mostly cold.
			name: "cold-2x",
			prep: func(cfg *core.Config, horizon float64) {},
			drive: func(s Scale, sys *core.System, gen *workload.Generator, horizon float64) {
				doubled := serverless.ColdStartModel{
					MedianSec: 2 * e19ColdMedianS, Sigma: 0.35, PerGBExtra: 0.05,
				}
				sys.Eng.At(sim.Time(0.3*horizon), func() {
					if err := sys.Platform().SetColdStart(doubled); err != nil {
						panic(err) // model is statically valid; cannot happen
					}
				})
				steady(s, sys, gen, horizon)
			},
		},
		{
			// A diurnal shift: 40% of tasks trickle in, then the rest
			// arrive as a flash crowd that swamps every fixed-capacity
			// backend; only the elastic region keeps its latency.
			name: "burst",
			prep: func(cfg *core.Config, horizon float64) {},
			drive: func(s Scale, sys *core.System, gen *workload.Generator, _ float64) {
				n := e19Tasks(s)
				calm := (n * 3) / 10
				burst := n - calm
				sys.SubmitStream(workload.NewPoisson(sys.Src.Split(), e19CalmRate), gen, calm)
				arrivals := workload.NewPoisson(sys.Src.Split(), e19BurstRate)
				calmEnd := sim.Time(float64(calm) / e19CalmRate)
				sys.Eng.At(calmEnd, func() {
					sys.SubmitStream(arrivals, gen, burst)
				})
			},
		},
	}
}

// e19RunCell builds a system, lets the cell drive it, and collects the
// same aggregates as driveCell (Observation protocol included).
func e19RunCell(s Scale, cfg core.Config, mix []workload.WeightedTemplate, cell e19Cell, horizon float64) (runResult, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return runResult{}, err
	}
	var obs *core.Observer
	if s.Obs != nil {
		obs = s.Obs.attach(sys)
	}
	gen, err := workload.NewGenerator(sys.Src.Split(), mix)
	if err != nil {
		return runResult{}, err
	}
	cell.drive(s, sys, gen, horizon)
	sys.Run()
	if s.Obs != nil {
		if err := s.Obs.collect(obs, sys); err != nil {
			return runResult{}, err
		}
	}
	res := runResult{
		stats:     sys.Stats(),
		infraUSD:  sys.InfrastructureCostUSD(),
		simEvents: sys.Eng.Fired(),
		system:    sys,
	}
	if p := sys.Platform(); p != nil {
		st := p.Stats()
		if st.Invocations > 0 {
			res.coldRate = float64(st.ColdStarts) / float64(st.Invocations)
		}
	}
	return res, nil
}

// e19Objective scores one cell from its task records: mean per-task
// cost/latency blend, failures charged a flat penalty. Infrastructure
// spend is identical across policies within a cell (same fleet, same
// horizon up to drain) and is deliberately excluded — the objective is
// the marginal cost a placement decision controls.
func e19Objective(res runResult) float64 {
	recs := res.system.Recorder.Records()
	if len(recs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range recs {
		if r.Failed {
			sum += e19FailScore
			continue
		}
		spend := r.CostUSD + r.EnergyMilliJ/1000*e19EnergyUSDPerJ
		sum += (r.Finished-r.Submitted)/e19LatScaleS + spend/e19CostScaleUSD
	}
	return sum / float64(len(recs))
}

// E19Adaptive runs every placement policy — the seven static baselines
// and both bandit variants — through three regime-drift cells and
// scores them on one cost/latency objective. The claim: no static
// policy wins everywhere, so the bandit's cumulative objective beats
// every static baseline and lands within bounded regret of the
// static-best oracle (the per-cell best static, picked with hindsight).
func E19Adaptive(s Scale) ([]*metrics.Table, error) {
	mix, err := templateMix("report-gen")
	if err != nil {
		return nil, err
	}
	horizon := float64(e19Tasks(s)) / e19Rate
	cells := e19Cells()
	policies := core.AllPolicies()

	detail := metrics.NewTable(
		"E19: adaptive vs static placement under regime drift",
		"cell", "policy", "obj", "p95_s", "task_usd", "fail",
		"switches", "sheds", "drift", "resizes")

	objs := make([][]float64, len(policies)) // [policy][cell]
	for i := range objs {
		objs[i] = make([]float64, len(cells))
	}
	for ci, cell := range cells {
		for pi, policy := range policies {
			cfg := e19Config(s, policy)
			cell.prep(&cfg, horizon)
			res, err := e19RunCell(s, cfg, mix, cell, horizon)
			if err != nil {
				return nil, err
			}
			obj := e19Objective(res)
			objs[pi][ci] = obj
			st := res.stats
			sheds, drift, resizes := "-", "-", "-"
			if ctrl := res.system.Adapt(); ctrl != nil {
				sheds = fmt.Sprintf("%d", ctrl.Sheds())
				drift = fmt.Sprintf("%d", ctrl.DriftResets())
				resizes = fmt.Sprintf("%d", ctrl.Resizes())
			}
			detail.AddRow(
				cell.name,
				string(policy),
				fmt.Sprintf("%.3f", obj),
				seconds(st.P95Completion()),
				usd(st.CostPerTask()),
				pct(float64(st.Failed)/float64(st.Total())),
				fmt.Sprintf("%d", recordSwitches(res)),
				sheds, drift, resizes,
			)
		}
	}

	// The oracle picks the best static policy per cell with hindsight;
	// regret is each policy's excess total objective over that bound.
	// "Static" means a fixed placement rule: the stochastic random
	// baseline still competes in the tables, but a coin flip is not a
	// policy an operator could have committed to, so it cannot set the
	// oracle.
	oracle := make([]float64, len(cells))
	for ci := range cells {
		best := -1.0
		for pi, policy := range policies {
			if isAdaptivePolicy(policy) || policy == core.PolicyRandom {
				continue
			}
			if best < 0 || objs[pi][ci] < best {
				best = objs[pi][ci]
			}
		}
		oracle[ci] = best
	}
	var oracleTotal float64
	for _, v := range oracle {
		oracleTotal += v
	}

	summary := metrics.NewTable(
		"E19 summary: cumulative objective and regret vs static-best oracle",
		"policy", "outage", "cold-2x", "burst", "total", "regret")
	for pi, policy := range policies {
		var total float64
		for _, v := range objs[pi] {
			total += v
		}
		summary.AddRow(
			string(policy),
			fmt.Sprintf("%.3f", objs[pi][0]),
			fmt.Sprintf("%.3f", objs[pi][1]),
			fmt.Sprintf("%.3f", objs[pi][2]),
			fmt.Sprintf("%.3f", total),
			pct((total-oracleTotal)/oracleTotal),
		)
	}
	summary.AddRow(
		"oracle(static-best)",
		fmt.Sprintf("%.3f", oracle[0]),
		fmt.Sprintf("%.3f", oracle[1]),
		fmt.Sprintf("%.3f", oracle[2]),
		fmt.Sprintf("%.3f", oracleTotal),
		"-",
	)
	return []*metrics.Table{detail, summary}, nil
}

// isAdaptivePolicy reports whether the policy carries the online
// adaptive layer (and is therefore excluded from the static oracle).
func isAdaptivePolicy(p core.PolicyName) bool {
	return p == core.PolicyBanditUCB || p == core.PolicyBanditGreedy
}

// recordSwitches counts placement changes between consecutive tasks in
// submission order — a flap rate comparable across static and adaptive
// policies alike (failed tasks count: they were decisions too).
func recordSwitches(res runResult) int {
	recs := res.system.Recorder.Records()
	idx := make([]int, len(recs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if recs[idx[a]].Submitted != recs[idx[b]].Submitted {
			return recs[idx[a]].Submitted < recs[idx[b]].Submitted
		}
		return recs[idx[a]].TaskID < recs[idx[b]].TaskID
	})
	switches := 0
	for i := 1; i < len(idx); i++ {
		if recs[idx[i]].Placement != recs[idx[i-1]].Placement {
			switches++
		}
	}
	return switches
}
