package exp

import (
	"fmt"

	"offload/internal/alloc"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/serverless"
)

// e2Profiles are the three demand profiles swept in E2.
var e2Profiles = []struct {
	name string
	req  alloc.Request
}{
	{"small-serial", alloc.Request{Cycles: 2e9, MemoryFloorBytes: 256 * model.MB}},
	{"medium-serial", alloc.Request{Cycles: 20e9, MemoryFloorBytes: 1024 * model.MB}},
	{"large-parallel", alloc.Request{Cycles: 60e9, ParallelFraction: 0.9, MemoryFloorBytes: 2048 * model.MB}},
}

// E2MemorySweep reproduces the serverless resource-allocation curve
// (Figure 2): execution time and expected cost across the memory ladder
// for three demand profiles, with the allocator's pick marked.
//
// Expected shape: time is non-increasing in memory; cost is U-shaped
// (memory pressure on the left, wasted GB-seconds on the right); the
// allocator's pick coincides with the sweep minimum.
func E2MemorySweep(s Scale) ([]*metrics.Table, error) {
	cfg := serverless.LambdaLike()
	allocator := alloc.New(cfg)

	curve := metrics.NewTable(
		"E2 (Fig 2): execution time and cost vs function memory",
		"profile", "memory_mb", "exec_s", "cost_usd", "chosen")
	choice := metrics.NewTable(
		"E2 summary: allocator pick vs sweep optimum",
		"profile", "chosen_mb", "optimum_mb", "chosen_usd", "optimum_usd")

	for _, p := range e2Profiles {
		sweep, err := allocator.Sweep(p.req)
		if err != nil {
			return nil, err
		}
		chosen, err := allocator.Choose(p.req)
		if err != nil {
			return nil, err
		}
		var best alloc.Decision
		haveBest := false
		for _, d := range sweep {
			if d.MemoryBytes < p.req.MemoryFloorBytes {
				continue
			}
			if !haveBest || d.ExpectedCostUSD < best.ExpectedCostUSD {
				best, haveBest = d, true
			}
		}
		// Sample the curve at readable intervals (every 512 MB plus the
		// chosen point) — the full ladder is 159 rows per profile.
		for _, d := range sweep {
			if d.MemoryBytes < p.req.MemoryFloorBytes {
				continue
			}
			mb := d.MemoryBytes / model.MB
			isChosen := d.MemoryBytes == chosen.MemoryBytes
			if mb%512 != 0 && !isChosen {
				continue
			}
			mark := ""
			if isChosen {
				mark = "<== chosen"
			}
			curve.AddRow(p.name, fmt.Sprintf("%d", mb),
				seconds(float64(d.ExpectedTime)), usd(d.ExpectedCostUSD), mark)
		}
		choice.AddRow(p.name,
			fmt.Sprintf("%d", chosen.MemoryBytes/model.MB),
			fmt.Sprintf("%d", best.MemoryBytes/model.MB),
			usd(chosen.ExpectedCostUSD),
			usd(best.ExpectedCostUSD))
	}
	return []*metrics.Table{curve, choice}, nil
}
