package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/fault"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/sched"
	"offload/internal/sim"
)

// E20 is the disaster drill: a three-region edge–cloud continuum (edge in
// "metro", serverless in "cloud-east", an always-on VM in "cloud-west")
// hit by correlated regional incidents while four client-side postures
// face the same workload.
const (
	// e20Rate matches the resilience study (E17): dense enough that every
	// incident window covers many arrivals.
	e20Rate = 0.2

	// The single-region outage: cloud-east dark for [20, 80), then a 10 s
	// recovery ramp during which invocations still die with decaying
	// probability — the flapping phase that separates naive failback from
	// a health-tracked one.
	e20OutageStart sim.Time     = 20
	e20OutageLen   sim.Duration = 60
	e20OutageRamp  sim.Duration = 10

	// The rolling brown-out: cloud-east at 30% capacity for [20, 60),
	// then cloud-west at 30% for [60, 100) — the incident migrates, so a
	// posture that failed over east-to-west gets chased.
	e20BrownCap = 0.3

	// The partition: every region unreachable for [20, 60). Only the
	// device itself still computes.
	e20PartStart sim.Time     = 20
	e20PartLen   sim.Duration = 40
)

// e20Regions returns the region homing shared by every cell, carrying the
// scenario's fault schedules and (for postures that enable it) the
// failover layer.
func e20Regions(schedules []fault.RegionSchedule, fo *sched.Failover) *core.RegionsConfig {
	return &core.RegionsConfig{
		Edge:       "metro",
		Serverless: "cloud-east",
		VM:         "cloud-west",
		Schedules:  schedules,
		Failover:   fo,
	}
}

// e20Scenarios are the three disaster drills.
func e20Scenarios() []struct {
	name      string
	schedules []fault.RegionSchedule
} {
	return []struct {
		name      string
		schedules []fault.RegionSchedule
	}{
		{"region-outage", []fault.RegionSchedule{
			{
				Region:       "cloud-east",
				Outages:      []fault.Window{{Start: e20OutageStart, Duration: e20OutageLen}},
				RecoveryRamp: e20OutageRamp,
			},
		}},
		{"rolling-brownout", []fault.RegionSchedule{
			{
				Region:    "cloud-east",
				Brownouts: []fault.Brownout{{Window: fault.Window{Start: 20, Duration: 40}, Capacity: e20BrownCap}},
			},
			{
				Region:    "cloud-west",
				Brownouts: []fault.Brownout{{Window: fault.Window{Start: 60, Duration: 40}, Capacity: e20BrownCap}},
			},
		}},
		{"partition", []fault.RegionSchedule{
			{Region: "metro", Outages: []fault.Window{{Start: e20PartStart, Duration: e20PartLen}}},
			{Region: "cloud-east", Outages: []fault.Window{{Start: e20PartStart, Duration: e20PartLen}}},
			{Region: "cloud-west", Outages: []fault.Window{{Start: e20PartStart, Duration: e20PartLen}}},
		}},
	}
}

// e20Tag assigns priorities deterministically by task ID: every fourth
// task is sheddable background work, the next fourth is critical, the
// rest are normal — so each cell carries the same priority mix.
func e20Tag(t *model.Task) {
	switch t.ID % 4 {
	case 0:
		t.Priority = model.PriorityLow
	case 1:
		t.Priority = model.PriorityCritical
	}
}

// e20Failover returns the failover layer configuration: detect a region
// as down after 3 consecutive transient failures, canary-probe it every
// 15 s until it answers again.
func e20Failover(ladder *sched.Ladder) *sched.Failover {
	return &sched.Failover{
		FailureThreshold: 3,
		ProbeEvery:       15,
		Ladder:           ladder,
	}
}

// e20Ladder is the graceful-degradation ladder the drilled postures use:
// shed background work on detection, localize critical work 20 s in,
// queue-and-wait for everything else at 45 s.
func e20Ladder() *sched.Ladder {
	return &sched.Ladder{ShedLowAfter: 0, LocalizeAfter: 20, QueueAfter: 45}
}

// E20Failover drills four postures through three regional disasters:
//
//   - fail-fast: no retries, no failover — the task dies with its region;
//   - failover:  retries plus the health-tracked failover layer, which
//     re-homes work to a surviving region (paying the inter-region
//     state-transfer cost) and canary-probes the dead one;
//   - ladder:    failover plus the graceful-degradation ladder
//     (shed-low → localize-critical → queue-and-wait);
//   - adaptive:  ladder posture under the bandit-greedy policy, whose
//     arms reset on every region transition (internal/adapt).
//
// Expected shape: fail-fast loses roughly the fraction of tasks whose
// region was dark when they arrived; the failover postures lose none —
// the ladder converts loss into shed/queued work and degraded-mode
// seconds instead. Recovery-time accounting (MTTD from the health
// tracker's detection lag, MTTR from the canary probe cadence) prices
// each posture's visibility into the incident.
func E20Failover(s Scale) ([]*metrics.Table, error) {
	mix, err := templateMix("report-gen")
	if err != nil {
		return nil, err
	}
	tbl := metrics.NewTable(
		"E20: regional failover and graceful degradation under disaster drills",
		"scenario", "strategy", "task_fail", "p95_s", "task_usd",
		"shed", "rehomed", "lost", "degraded_s", "mttd_s", "mttr_s", "avail")

	retry := func(cfg *core.Config) {
		cfg.Retries = 5
		cfg.RetryBackoff = 2
		cfg.RetryMaxBackoff = 30
		cfg.RetryJitter = true
	}
	strategies := []struct {
		name   string
		policy core.PolicyName
		fo     *sched.Failover
		apply  func(*core.Config)
	}{
		{"fail-fast", core.PolicyCloudAll, nil, func(cfg *core.Config) {}},
		{"failover", core.PolicyCloudAll, e20Failover(nil), retry},
		{"ladder", core.PolicyCloudAll, e20Failover(e20Ladder()), retry},
		{"adaptive", core.PolicyBanditGreedy, e20Failover(e20Ladder()), retry},
	}

	for _, scen := range e20Scenarios() {
		for _, strat := range strategies {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = strat.policy
			cfg.ArrivalRateHint = e20Rate
			cfg.Regions = e20Regions(scen.schedules, strat.fo)
			strat.apply(&cfg)
			res, err := runCellTagged(s, cfg, mix, e20Rate, e20Tag)
			if err != nil {
				return nil, err
			}
			st := res.stats
			tbl.AddRow(append([]string{
				scen.name,
				strat.name,
				pct(float64(st.Failed) / float64(st.Total())),
				seconds(st.P95Completion()),
				usd(st.CostPerTask()),
			}, e20FailoverCols(res)...)...)
		}
	}
	return []*metrics.Table{tbl}, nil
}

// e20FailoverCols renders the failover-layer columns of one cell; every
// column is "-" for postures without the layer.
func e20FailoverCols(res runResult) []string {
	sc := res.system.Scheduler
	if !sc.HasFailover() {
		return []string{"-", "-", "-", "-", "-", "-", "-"}
	}
	fs := sc.FailoverStats()
	elapsed := float64(res.system.Eng.Now())

	// MTTD/MTTR average over regions that saw detections/recoveries;
	// availability averages over every tracked region.
	var mttdSum, mttrSum, availSum float64
	var mttdN, mttrN, regions int
	for _, rs := range sc.RegionSnapshots() {
		regions++
		availSum += rs.Availability(elapsed)
		if rs.Downs > 0 {
			mttdSum += rs.MTTDSeconds
			mttdN++
		}
		if rs.Recoveries > 0 {
			mttrSum += rs.MTTRSeconds
			mttrN++
		}
	}
	mttd, mttr := "-", "-"
	if mttdN > 0 {
		mttd = seconds(mttdSum / float64(mttdN))
	}
	if mttrN > 0 {
		mttr = seconds(mttrSum / float64(mttrN))
	}
	return []string{
		fmt.Sprintf("%d", fs.Shed),
		fmt.Sprintf("%d", fs.ReHomed),
		fmt.Sprintf("%d", fs.Lost),
		seconds(sc.DegradedSeconds()),
		mttd,
		mttr,
		pct(availSum / float64(regions)),
	}
}
