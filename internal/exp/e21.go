package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/rng"
	"offload/internal/sim"
	"offload/internal/workload"
)

// flashArrivals is a two-regime arrival process: calm Poisson traffic
// that switches to a much hotter Poisson stream inside the flash window
// [start, end). The regime is chosen by the time the previous arrival
// landed, so a calm-drawn gap can overshoot the window edge — an
// acceptable approximation for a drill, and a deterministic one: both
// regimes draw from per-UE streams, so the process is identical at every
// shard count.
type flashArrivals struct {
	calm, flash workload.Arrivals
	start, end  sim.Time
}

func (f *flashArrivals) Next(now sim.Time) sim.Duration {
	if now >= f.start && now < f.end {
		return f.flash.Next(now)
	}
	return f.calm.Next(now)
}

// E21 drill parameters: background traffic at one task per ~50 s per UE,
// then a one-minute flash where every UE submits at 2/s — the
// shared-platform stampede the sharded engine exists to simulate.
const (
	e21CalmRate   = 0.02
	e21FlashRate  = 2.0
	e21FlashStart = sim.Time(30)
	e21FlashEnd   = sim.Time(90)
)

// E21FlashCrowd is the scale drill for the sharded simulation engine
// (core.ShardedFleet): a fleet two to three orders of magnitude beyond
// E9 — a million UEs at full scale, ten-million-plus tasks — hits one
// shared serverless region with a flash crowd, partitioned across
// s.Shards worker shards. Every table cell is byte-identical at every
// shard count (per-UE rng keying, canonical barrier order), so the
// determinism gate diffs a -shards 1 run against a -shards 7 run; the
// shard count itself is deliberately absent from the table.
//
// Expected shape: the flash compresses most submissions into one
// minute. At quick scale the region absorbs the stampede and quality
// stays in E9's steady-state regime (no misses, no failures). At full
// scale the million-UE flash deliberately buries a region provisioned
// for calm traffic: the queue it builds drains over simulated days, so
// the mean completion and miss rate blow up while nothing fails — the
// drill's claim is the engine (tens of millions of events, bounded
// memory, identical bytes at every shard count), not platform
// elasticity.
func E21FlashCrowd(s Scale) ([]*metrics.Table, error) {
	// Quick: 50× the E9 fleet. Full: the headline million-UE run.
	devices, tasks := 50*s.Devices, 4
	if s.Devices >= 500 {
		devices, tasks = 1_000_000, 11
	}

	cfg := core.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Policy = core.PolicyThreshold
	cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
	cfg.ArrivalRateHint = e21CalmRate
	cfg.ShardCount = s.Shards
	fleet, err := core.NewShardedFleet(cfg, devices)
	if err != nil {
		return nil, err
	}
	err = fleet.Submit(tasks, func(src *rng.Source, _ int) workload.Arrivals {
		return &flashArrivals{
			calm:  workload.NewPoisson(src.Split(), e21CalmRate),
			flash: workload.NewPoisson(src.Split(), e21FlashRate),
			start: e21FlashStart, end: e21FlashEnd,
		}
	})
	if err != nil {
		return nil, err
	}
	fleet.Run()

	st := fleet.Stats()
	costPerTask := 0.0
	if st.Completed > 0 {
		costPerTask = st.CostUSD / float64(st.Completed)
	}
	tbl := metrics.NewTable(
		"E21: flash crowd at sharded-engine scale, one shared serverless region",
		"devices", "tasks", "events", "windows", "mean_s", "p95_s", "task_usd", "miss")
	tbl.AddRow(
		fmt.Sprintf("%d", devices),
		fmt.Sprintf("%d", st.Completed+st.Failed),
		fmt.Sprintf("%d", fleet.Events()),
		fmt.Sprintf("%d", fleet.SE.Windows()),
		seconds(st.MeanCompletion),
		seconds(st.P95Completion()),
		usd(costPerTask),
		pct(st.MissRate()),
	)
	return []*metrics.Table{tbl}, nil
}
