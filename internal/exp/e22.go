package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/edge"
	"offload/internal/metrics"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/workload"
)

// e22Rate is the job arrival rate: one DAG application run every ~20 s,
// so jobs mostly run in isolation and the table contrasts precedence
// structure, not cross-job queueing.
const e22Rate = 0.05

// e22Shapes are the three DAG families E22 races. The node population is
// identical across shapes — same demand distribution, same 2 MB
// inter-stage payloads — only the precedence structure changes: a serial
// chain (no parallelism to exploit), a wide fork-join (14 independent
// branches), and a layered graph in between.
var e22Shapes = []struct {
	name string
	tmpl workload.JobTemplate
}{
	{"narrow", e22Template(workload.ShapePipeline, 8, 0)},
	{"wide", e22Template(workload.ShapeForkJoin, 16, 0)},
	{"deep", e22Template(workload.ShapeLayered, 12, 3)},
}

// e22Template sizes one node population: ~0.75 s of local compute per
// node behind 2 MB precedence payloads — light enough that shipping a
// node is far cheaper than the device energy to compute it.
func e22Template(shape workload.JobShape, nodes, width int) workload.JobTemplate {
	return workload.JobTemplate{
		App:         "dag-" + string(shape),
		Shape:       shape,
		Nodes:       nodes,
		Width:       width,
		MeanCycles:  1.5e9,
		CyclesSigma: 0.2,
		EdgeBytes:   2 * model.MB,
		InputBytes:  4 * model.MB,
		OutputBytes: 1 * model.MB,
		MemoryBytes: 512 * model.MB,
		Deadline:    3600, // generous: non-time-critical jobs
	}
}

// e22Config is the cell's substrate: the default smartphone+serverless
// system, plus a deliberately tiny on-premises edge box — one 2-core
// machine at $0.10/h. The box is the cheapest place to run a node, so
// the precedence-oblivious deadline-aware baseline (generous deadlines →
// pure cost minimisation) sends every ready node there and a wide job's
// branches serialise on its two cores. The rank placer prices the same
// substrate by earliest finish instead: it claims the box and the
// device's cores, then spills the remaining parallel branches to
// serverless — buying makespan with money, the classic time/cost trade.
func e22Config(placement core.DAGPlacement) core.Config {
	cfg := core.DefaultConfig()
	cfg.Policy = core.PolicyDeadlineAware
	cfg.ArrivalRateHint = e22Rate
	edgeCfg := edge.Config{
		Name:            "edge-nano",
		Servers:         1,
		Cores:           2,
		CPUHz:           3 * model.GHz,
		HourlyCostUSD:   0.10,
		MemoryPerServer: 8 * model.GB,
	}
	cfg.Edge = &edgeCfg
	cfg.VM = nil
	cfg.DAG = &core.DAGConfig{Placement: placement}
	return cfg
}

// e22Placements are the two placers under test.
var e22Placements = []core.DAGPlacement{core.DAGOblivious, core.DAGRank}

// e22Cell is one (shape, placement) cell aggregated over replications.
type e22Cell struct {
	jobs      uint64
	failed    uint64
	meanMkS   float64
	p95MkS    float64
	critS     float64
	slackS    float64
	nodeUSD   float64
	completed uint64
}

// e22RunCell runs s.RandomSeeds replications of one cell and averages.
// Every replication self-checks the orchestrator's accounting invariant:
// per-job critical-path seconds must partition the makespan exactly.
func e22RunCell(s Scale, shape workload.JobTemplate, placement core.DAGPlacement) (e22Cell, error) {
	jobsPerRep := s.Tasks / 10
	if jobsPerRep < 4 {
		jobsPerRep = 4
	}
	var cell e22Cell
	for rep := 0; rep < s.RandomSeeds; rep++ {
		cfg := e22Config(placement)
		cfg.Seed = rng.Derive(s.Seed, uint64(rep))
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return e22Cell{}, err
		}
		gen, err := workload.NewJobGenerator(sys.Src.Split(), shape)
		if err != nil {
			return e22Cell{}, err
		}
		arrivals := workload.NewPoisson(sys.Src.Split(), e22Rate)
		if err := sys.SubmitJobStream(arrivals, gen, jobsPerRep); err != nil {
			return e22Cell{}, err
		}
		sys.Run()
		if err := sys.JobErr(); err != nil {
			return e22Cell{}, err
		}
		st := sys.JobStats()
		if st.Jobs != uint64(jobsPerRep) {
			return e22Cell{}, fmt.Errorf("exp: e22: %d jobs settled, want %d", st.Jobs, jobsPerRep)
		}
		if drift := st.MaxDriftS(); drift > 1e-9 {
			return e22Cell{}, fmt.Errorf(
				"exp: e22: critical-path drift %g s exceeds 1e-9 (%s/%s rep %d)",
				drift, shape.App, placement, rep)
		}
		cell.jobs += st.Jobs
		cell.failed += st.Failed
		cell.meanMkS += st.MeanMakespanS()
		cell.p95MkS += st.P95MakespanS()
		cell.critS += st.MeanCritPathS()
		cell.slackS += st.MeanSlackS()
		cell.completed += st.NodesCompleted
		if st.NodesCompleted > 0 {
			cell.nodeUSD += st.CostUSD / float64(st.NodesCompleted)
		}
	}
	reps := float64(s.RandomSeeds)
	cell.meanMkS /= reps
	cell.p95MkS /= reps
	cell.critS /= reps
	cell.slackS /= reps
	cell.nodeUSD /= reps
	return cell, nil
}

// E22DAGPlacement races precedence-oblivious node release against
// HEFT-style upward-rank list scheduling across three DAG shapes.
//
// Expected shape: on the narrow chain the two placers tie — there is no
// parallelism for rank to find, and the critical path equals the
// makespan. On the wide fork-join the oblivious baseline prices every
// branch onto the 4-core device and serialises, while rank spreads
// branches across device and edge for a decisively shorter makespan (at
// some dollar and energy premium — the classic time/cost trade). The
// layered shape lands between the two. Per-job critical-path seconds
// partition the makespan exactly in every cell; the run aborts if the
// books are off by more than a nanosecond.
func E22DAGPlacement(s Scale) ([]*metrics.Table, error) {
	tbl := metrics.NewTable(
		"E22: DAG jobs — precedence-oblivious release vs upward-rank placement",
		"shape", "placement", "jobs", "mean_mk_s", "p95_mk_s", "crit_s", "slack_s", "node_usd", "fail")
	for _, shape := range e22Shapes {
		for _, placement := range e22Placements {
			cell, err := e22RunCell(s, shape.tmpl, placement)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(
				shape.name,
				string(placement),
				fmt.Sprintf("%d", cell.jobs),
				seconds(cell.meanMkS),
				seconds(cell.p95MkS),
				seconds(cell.critS),
				seconds(cell.slackS),
				usd(cell.nodeUSD),
				fmt.Sprintf("%d", cell.failed),
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}
