package exp

import (
	"fmt"

	"offload/internal/callgraph"
	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/metrics"
	"offload/internal/network"
	"offload/internal/partition"
	"offload/internal/serverless"
)

// e3Model is the environment the partitions are evaluated in: smartphone
// to Lambda-like over WiFi, with the default latency/energy/money weights.
func e3Model() partition.CostModel {
	return core.CostModelFor(device.Smartphone(), serverless.LambdaLike(),
		serverless.LambdaLike().FullShareBytes, network.WiFiCloud(), core.DefaultWeights())
}

// E3Partition reproduces the partitioner comparison (Table 1): objective
// value and work done by each algorithm on the five templates and a set of
// random DAGs small enough to brute-force.
//
// Expected shape: min-cut matches the brute-force optimum everywhere;
// greedy lands within a few percent; annealing closes most of greedy's
// remaining gap; all informed algorithms beat all-local and all-remote.
func E3Partition(s Scale) ([]*metrics.Table, error) {
	m := e3Model()
	tbl := metrics.NewTable(
		"E3 (Tab 1): partition objective by algorithm (lower is better)",
		"graph", "n", "all_local", "all_remote", "greedy", "anneal", "min_cut", "optimal", "mincut_gap")

	run := func(name string, g *callgraph.Graph, seed uint64) error {
		bf, err := partition.BruteForce(g, m)
		if err != nil {
			return err
		}
		mc, err := partition.MinCut(g, m)
		if err != nil {
			return err
		}
		gr, err := partition.Greedy(g, m)
		if err != nil {
			return err
		}
		an, err := partition.Anneal(g, m, newSeedSource(seed+500), partition.DefaultAnneal())
		if err != nil {
			return err
		}
		gap := 0.0
		if bf.Objective > 0 {
			gap = mc.Objective/bf.Objective - 1
		}
		tbl.AddRow(name, fmt.Sprintf("%d", g.Len()),
			fmt.Sprintf("%.4g", partition.Objective(g, m, partition.AllLocal(g))),
			fmt.Sprintf("%.4g", partition.Objective(g, m, partition.AllRemote(g))),
			fmt.Sprintf("%.4g", gr.Objective),
			fmt.Sprintf("%.4g", an.Objective),
			fmt.Sprintf("%.4g", mc.Objective),
			fmt.Sprintf("%.4g", bf.Objective),
			pct(gap),
		)
		return nil
	}

	for _, name := range callgraph.TemplateNames() {
		if err := run(name, callgraph.Templates()[name], s.Seed); err != nil {
			return nil, err
		}
	}
	for i := 0; i < s.RandomSeeds; i++ {
		seed := s.Seed + uint64(i)*7919
		n := 8 + i%7 // 8..14 components
		g := callgraph.Random(newSeedSource(seed), n)
		if err := run(fmt.Sprintf("random-%02d", i), g, seed); err != nil {
			return nil, err
		}
	}
	return []*metrics.Table{tbl}, nil
}
