package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/sim"
)

// E4ColdStart reproduces the cold-start analysis (Figure 3): the fraction
// of invocations paying a cold start across arrival rates and keep-alive
// settings, and the effect of delay-tolerant batching at low rates.
//
// Expected shape: cold-start fraction falls with arrival rate and with
// keep-alive (approximately exp(-rate·keepAlive)); with keep-alive zero
// every invocation is cold; batching at low rates removes most cold
// starts (one per batch) at the price of completion latency.
func E4ColdStart(s Scale) ([]*metrics.Table, error) {
	mix, err := templateMix("report-gen")
	if err != nil {
		return nil, err
	}

	rates := []float64{0.002, 0.02, 0.2, 2}
	keepAlives := []sim.Duration{0, 60, 420, 900}
	coldTbl := metrics.NewTable(
		"E4 (Fig 3a): cold-start fraction vs arrival rate and keep-alive",
		"rate_per_s", "keepalive_s", "cold_frac", "mean_s", "task_usd")
	for _, rate := range rates {
		for _, ka := range keepAlives {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = core.PolicyCloudAll
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			sl := *cfg.Serverless
			sl.KeepAlive = ka
			cfg.Serverless = &sl
			cfg.ArrivalRateHint = rate
			res, err := runCell(s, cfg, mix, rate)
			if err != nil {
				return nil, err
			}
			coldTbl.AddRow(
				fmt.Sprintf("%g", rate),
				fmt.Sprintf("%g", float64(ka)),
				pct(res.coldRate),
				seconds(res.stats.MeanCompletion()),
				usd(res.stats.CostPerTask()),
			)
		}
	}

	// Batching at the all-cold rate: one cold start per batch instead of
	// one per task.
	batchTbl := metrics.NewTable(
		"E4 (Fig 3b): batching delay-tolerant tasks at rate 0.002/s",
		"batch_size", "cold_frac", "mean_s", "task_usd")
	for _, size := range []int{1, 4, 16} {
		cfg := core.DefaultConfig()
		cfg.Seed = s.Seed
		cfg.Policy = core.PolicyCloudAll
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
		cfg.ArrivalRateHint = 0.002
		if size > 1 {
			cfg.Batch = &core.BatchConfig{Size: size, MaxWait: 3600}
		}
		res, err := runCell(s, cfg, mix, 0.002)
		if err != nil {
			return nil, err
		}
		batchTbl.AddRow(
			fmt.Sprintf("%d", size),
			pct(res.coldRate),
			seconds(res.stats.MeanCompletion()),
			usd(res.stats.CostPerTask()),
		)
	}

	// Ablation: cold-start-aware sizing (rate hint) vs naive pessimistic
	// sizing. The aware allocator knows warm traffic needs no cold-start
	// headroom and can pick cheaper configurations.
	ablTbl := metrics.NewTable(
		"E4 ablation: cold-start-aware allocation vs naive",
		"rate_per_s", "aware", "sized_mb", "mean_s", "task_usd")
	for _, rate := range []float64{0.002, 2} {
		for _, aware := range []bool{false, true} {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = core.PolicyCloudAll
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			if aware {
				cfg.ArrivalRateHint = rate
			}
			res, err := runCell(s, cfg, mix, rate)
			if err != nil {
				return nil, err
			}
			sized := res.system.Env.Functions.Sized("report-gen")
			ablTbl.AddRow(
				fmt.Sprintf("%g", rate),
				fmt.Sprintf("%v", aware),
				fmt.Sprintf("%d", sized/(1<<20)),
				seconds(res.stats.MeanCompletion()),
				usd(res.stats.CostPerTask()),
			)
		}
	}
	// Provisioned concurrency: zero cold starts for a flat capacity fee —
	// worth it at steady rates, wasteful for sporadic traffic.
	provTbl := metrics.NewTable(
		"E4 (Fig 3c): provisioned concurrency vs on-demand",
		"rate_per_s", "provisioned", "cold_frac", "mean_s", "task_usd", "capacity_usd_per_task")
	for _, rate := range []float64{0.002, 0.2} {
		for _, prov := range []int{0, 1, 2} {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = core.PolicyCloudAll
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			cfg.ArrivalRateHint = rate
			cfg.ProvisionedConcurrency = prov
			res, err := runCell(s, cfg, mix, rate)
			if err != nil {
				return nil, err
			}
			capacityPerTask := 0.0
			if res.stats.Completed > 0 {
				capacityPerTask = res.system.Platform().ProvisionedCostUSD() /
					float64(res.stats.Completed)
			}
			provTbl.AddRow(
				fmt.Sprintf("%g", rate),
				fmt.Sprintf("%d", prov),
				pct(res.coldRate),
				seconds(res.stats.MeanCompletion()),
				usd(res.stats.CostPerTask()),
				usd(capacityPerTask),
			)
		}
	}
	return []*metrics.Table{coldTbl, batchTbl, ablTbl, provTbl}, nil
}
