package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/metrics"
	"offload/internal/network"
)

// E5Energy reproduces the device-energy analysis (Figure 4): device energy
// per task under each policy, and the projected number of tasks one
// battery charge supports (battery capacity divided by measured energy
// per task).
//
// Expected shape: offloading pays radio energy instead of compute energy;
// for the compute-heavy templates that is orders of magnitude less, so
// cloud policies extend battery life by a large factor. For the
// transfer-heavy video template the gap narrows — radio time is the
// break-even.
func E5Energy(s Scale) ([]*metrics.Table, error) {
	policies := []core.PolicyName{core.PolicyLocalOnly, core.PolicyEdgeAll,
		core.PolicyCloudAll, core.PolicyDeadlineAware}
	apps := []string{"sci-batch", "report-gen", "video-transcode"}

	tbl := metrics.NewTable(
		"E5 (Fig 4): device energy per task and projected battery life",
		"app", "policy", "task_mJ", "tasks_per_charge", "extension_x")
	for _, app := range apps {
		mix, err := templateMix(app)
		if err != nil {
			return nil, err
		}
		localPerTask := 0.0
		for _, policy := range policies {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = policy
			cfg.ArrivalRateHint = e1Rate
			// Measure pure energy rates: mains power the device so the
			// battery never cuts the run short, then project.
			batteryJ := cfg.Device.BatteryJ
			cfg.Device.BatteryJ = 0
			res, err := runCell(s, cfg, mix, e1Rate)
			if err != nil {
				return nil, err
			}
			perTaskMilliJ := res.stats.EnergyPerTaskMilliJ()
			if policy == core.PolicyLocalOnly {
				localPerTask = perTaskMilliJ
			}
			tasksPerCharge := 0.0
			if perTaskMilliJ > 0 {
				tasksPerCharge = batteryJ * 1000 / perTaskMilliJ
			}
			extension := 0.0
			if perTaskMilliJ > 0 && localPerTask > 0 {
				extension = localPerTask / perTaskMilliJ
			}
			tbl.AddRow(app, string(policy),
				fmtMilliJ(perTaskMilliJ),
				fmt.Sprintf("%.0f", tasksPerCharge),
				fmt.Sprintf("%.1fx", extension),
			)
		}
	}
	// Connectivity scenario: the same offloading on cellular pays the LTE
	// DRX tail (~2 s of ~1 W after every transfer), which dominates radio
	// energy for small payloads and erodes the offloading dividend.
	tailTbl := metrics.NewTable(
		"E5b: radio tail — WiFi vs LTE connectivity for cloud offloading",
		"app", "connectivity", "task_mJ", "extension_x")
	for _, app := range []string{"report-gen", "sci-batch"} {
		mix, err := templateMix(app)
		if err != nil {
			return nil, err
		}
		localPerTask := 0.0
		{
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = core.PolicyLocalOnly
			cfg.Device.BatteryJ = 0
			res, err := runCell(s, cfg, mix, e1Rate)
			if err != nil {
				return nil, err
			}
			localPerTask = res.stats.EnergyPerTaskMilliJ()
		}
		for _, conn := range []string{"wifi", "lte"} {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = core.PolicyCloudAll
			cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
			cfg.ArrivalRateHint = e1Rate
			if conn == "lte" {
				cfg.Device = device.SmartphoneLTE()
				lte := network.LTECloud()
				cfg.CloudPath = &lte
			}
			cfg.Device.BatteryJ = 0
			res, err := runCell(s, cfg, mix, e1Rate)
			if err != nil {
				return nil, err
			}
			perTask := res.stats.EnergyPerTaskMilliJ()
			ext := 0.0
			if perTask > 0 {
				ext = localPerTask / perTask
			}
			tailTbl.AddRow(app, conn, fmtMilliJ(perTask), fmt.Sprintf("%.1fx", ext))
		}
	}
	return []*metrics.Table{tbl, tailTbl}, nil
}

// fmtMilliJ renders a millijoule figure compactly.
func fmtMilliJ(v float64) string {
	if v >= 1000 {
		return fmt.Sprintf("%.3gJ", v/1000)
	}
	return fmt.Sprintf("%.3gmJ", v)
}
