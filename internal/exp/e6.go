package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/metrics"
)

// E6DeadlineSlack reproduces the non-time-critical crossover (Figure 5):
// deadline-miss rate per policy as the deadline slack factor grows from
// "interactive" (hundredths of the default minutes-to-hours budgets) to
// "fully delay tolerant".
//
// Expected shape: at tiny slack the cloud policies miss massively while
// edge misses least — the regime where edge infrastructure earns its
// keep. As slack grows, every remote policy's miss rate collapses to
// zero and the curves converge: exactly the claim that non-time-critical
// use cases can neglect edge computing's advantage. DeadlineAware tracks
// the best feasible option across the whole sweep.
func E6DeadlineSlack(s Scale) ([]*metrics.Table, error) {
	mix, err := standardMixTemplates()
	if err != nil {
		return nil, err
	}
	policies := []core.PolicyName{core.PolicyLocalOnly, core.PolicyEdgeAll,
		core.PolicyCloudAll, core.PolicyDeadlineAware}
	factors := []float64{0.0002, 0.001, 0.01, 0.1, 1, 10}

	tbl := metrics.NewTable(
		"E6 (Fig 5): deadline-miss rate vs slack factor",
		"slack_x", "policy", "miss", "mean_s", "task_usd")
	for _, factor := range factors {
		scaled := scaleDeadlines(mix, factor)
		for _, policy := range policies {
			cfg := core.DefaultConfig()
			cfg.Seed = s.Seed
			cfg.Policy = policy
			cfg.ArrivalRateHint = e1Rate
			res, err := runCell(s, cfg, scaled, e1Rate)
			if err != nil {
				return nil, err
			}
			tbl.AddRow(
				fmt.Sprintf("%g", factor),
				string(policy),
				pct(res.stats.MissRate()),
				seconds(res.stats.MeanCompletion()),
				usd(res.stats.CostPerTask()),
			)
		}
	}
	return []*metrics.Table{tbl}, nil
}
