package exp

import (
	"fmt"
	"math"

	"offload/internal/cloudvm"
	"offload/internal/core"
	"offload/internal/edge"
	"offload/internal/metrics"
)

// E7CostCrossover reproduces the infrastructure-cost comparison (Table 2):
// monthly dollars to serve a report-gen workload at growing volume, on
// serverless (measured $/task × volume), on right-sized always-on VMs,
// and on the fixed edge site.
//
// Expected shape: serverless is cheapest at low volume because it bills
// nothing when idle; the VM fleet wins once sustained utilisation covers
// its hourly price; the edge site is a flat line that only makes sense at
// high volume — "the required infrastructure" drawback the abstract
// calls out.
func E7CostCrossover(s Scale) ([]*metrics.Table, error) {
	mix, err := templateMix("report-gen")
	if err != nil {
		return nil, err
	}
	const hoursPerMonth = 730.0

	vmCfg := cloudvm.C5Large()
	edgeCfg := edge.SmallSite()

	// Single-task VM service time for the template's offloadable demand.
	execSec := mix[0].Template.MeanCycles / vmCfg.CPUHz

	tbl := metrics.NewTable(
		"E7 (Tab 2): monthly cost vs task volume (report-gen)",
		"tasks_per_hour", "serverless_usd", "vm_usd", "vm_instances", "edge_usd", "cheapest")
	for _, perHour := range []float64{1, 10, 100, 1000, 5000} {
		rate := perHour / 3600

		cfg := core.DefaultConfig()
		cfg.Seed = s.Seed
		cfg.Policy = core.PolicyCloudAll
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
		cfg.ArrivalRateHint = rate
		res, err := runCell(s, cfg, mix, rate)
		if err != nil {
			return nil, err
		}
		perTask := res.stats.CostPerTask()
		serverlessMonthly := perTask * perHour * hoursPerMonth

		// VMs sized for 70% target utilisation.
		demandCores := rate * execSec
		instances := int(math.Max(1, math.Ceil(demandCores/(float64(vmCfg.Cores)*0.7))))
		vmMonthly := float64(instances) * vmCfg.HourlyCostUSD * hoursPerMonth

		edgeMonthly := edgeCfg.HourlyCostUSD * hoursPerMonth

		cheapest := "serverless"
		low := serverlessMonthly
		if vmMonthly < low {
			cheapest, low = "vm", vmMonthly
		}
		if edgeMonthly < low {
			cheapest = "edge"
		}
		tbl.AddRow(
			fmt.Sprintf("%g", perHour),
			usd(serverlessMonthly),
			usd(vmMonthly),
			fmt.Sprintf("%d", instances),
			usd(edgeMonthly),
			cheapest,
		)
	}
	return []*metrics.Table{tbl}, nil
}
