package exp

import (
	"errors"
	"fmt"

	"offload/internal/callgraph"
	"offload/internal/cicd"
	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/metrics"
	"offload/internal/network"
	"offload/internal/profile"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// E8Pipeline reproduces the CI/CD integration analysis (Table 3):
// per-stage durations of a vanilla deploy pipeline versus the
// offload-integrated pipeline on three application templates, plus a
// regression round showing SLO-triggered rollback.
//
// Expected shape: the offload stages (profile, partition, per-function
// deploy, canary) add minutes of pipeline time but profiling overlaps the
// existing unit-test stage, so end-to-end overhead stays well below the
// stage-sum; the injected regression fails the canary, the deployment
// rolls back, and release is skipped.
func E8Pipeline(s Scale) []*metrics.Table {
	apps := []string{"report-gen", "ml-batch", "sci-batch"}

	stageTbl := metrics.NewTable(
		"E8 (Tab 3a): pipeline stage durations (vanilla vs offload-integrated)",
		"app", "pipeline", "stage", "start_s", "dur_s")
	totalTbl := metrics.NewTable(
		"E8 (Tab 3b): end-to-end pipeline time and overhead",
		"app", "vanilla_s", "offload_s", "overhead")

	for _, app := range apps {
		g := callgraph.Templates()[app]
		vanRep := runPipeline(s, &cicd.Build{App: g})
		offRep := runPipeline(s, newE8Build(s, g, 0, nil))
		for _, res := range vanRep.Results {
			stageTbl.AddRow(app, "vanilla", res.Name,
				seconds(float64(res.Start)), seconds(float64(res.Duration())))
		}
		for _, res := range offRep.Results {
			stageTbl.AddRow(app, "offload", res.Name,
				seconds(float64(res.Start)), seconds(float64(res.Duration())))
		}
		overhead := float64(offRep.Duration())/float64(vanRep.Duration()) - 1
		totalTbl.AddRow(app,
			seconds(float64(vanRep.Duration())),
			seconds(float64(offRep.Duration())),
			pct(overhead))
	}

	// Regression round: a healthy deploy establishes the manifest, then a
	// 5x-slower build goes through the same pipeline.
	rbTbl := metrics.NewTable(
		"E8 (Tab 3c): canary verdict and rollback on an injected regression",
		"round", "canary_mean_s", "canary_slo_s", "passed", "rolled_back", "released")
	g := callgraph.Templates()["report-gen"]
	healthy := newE8Build(s, g, 0, nil)
	healthyRep, healthyCtx := runPipelineCtx(s, healthy)
	addRollbackRow(rbTbl, "healthy", healthyRep, healthyCtx)

	var prev *cicd.Manifest
	if mv, ok := healthyCtx.Get(cicd.KeyManifest); ok {
		prev = mv.(*cicd.Manifest)
	}
	regressed := newE8Build(s, g, 5, prev)
	regRep, regCtx := runPipelineCtx(s, regressed)
	addRollbackRow(rbTbl, "regressed(5x)", regRep, regCtx)

	return []*metrics.Table{stageTbl, totalTbl, rbTbl}
}

func newE8Build(s Scale, g *callgraph.Graph, regression float64, prev *cicd.Manifest) *cicd.Build {
	eng := sim.NewEngine()
	platform := serverless.NewPlatform(eng, rng.New(s.Seed), serverless.LambdaLike())
	e8Engines[platform] = eng
	return &cicd.Build{
		App:              g,
		Platform:         platform,
		Meter:            profile.NewMeter(rng.New(s.Seed+1), 0.05),
		Cost:             core.CostModelFor(device.Smartphone(), serverless.LambdaLike(), serverless.LambdaLike().FullShareBytes, network.WiFiCloud(), core.DefaultWeights()),
		ProfileRuns:      30,
		Canary:           cicd.CanarySpec{Invocations: 5, SLOFactor: 2},
		Previous:         prev,
		InjectRegression: regression,
		WithOffload:      true,
	}
}

var e8Engines = map[*serverless.Platform]*sim.Engine{}

func runPipeline(s Scale, b *cicd.Build) cicd.Report {
	rep, _ := runPipelineCtx(s, b)
	return rep
}

func runPipelineCtx(s Scale, b *cicd.Build) (cicd.Report, *cicd.Context) {
	p, err := b.Pipeline()
	if err != nil {
		panic(err)
	}
	eng := e8Engines[b.Platform]
	if eng == nil {
		eng = sim.NewEngine()
	}
	ctx := cicd.NewContext()
	var rep cicd.Report
	p.Run(eng, ctx, func(r cicd.Report) { rep = r })
	eng.Run()
	return rep, ctx
}

func addRollbackRow(tbl *metrics.Table, round string, rep cicd.Report, ctx *cicd.Context) {
	var canary cicd.CanaryResult
	if cv, ok := ctx.Get(cicd.KeyCanary); ok {
		canary = cv.(cicd.CanaryResult)
	}
	rb, _ := rep.Stage("rollback")
	rolledBack := errors.Is(rb.Err, cicd.ErrRolledBack)
	release, _ := rep.Stage("release")
	tbl.AddRow(round,
		seconds(canary.MeanExecS),
		seconds(2*canary.ExpectedS),
		fmt.Sprintf("%v", canary.Passed),
		fmt.Sprintf("%v", rolledBack),
		fmt.Sprintf("%v", !release.Skipped && release.Err == nil),
	)
}
