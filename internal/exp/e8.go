package exp

import (
	"errors"
	"fmt"

	"offload/internal/callgraph"
	"offload/internal/cicd"
	"offload/internal/core"
	"offload/internal/device"
	"offload/internal/metrics"
	"offload/internal/network"
	"offload/internal/profile"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// e8Build pairs a pipeline build with the simulation engine its platform
// runs on. Earlier versions kept a package-level platform→engine map,
// which was shared mutable state; carrying the engine explicitly keeps
// E8 a pure function of its Scale so it can run concurrently with the
// rest of the suite.
type e8Build struct {
	build *cicd.Build
	eng   *sim.Engine
}

// E8Pipeline reproduces the CI/CD integration analysis (Table 3):
// per-stage durations of a vanilla deploy pipeline versus the
// offload-integrated pipeline on three application templates, plus a
// regression round showing SLO-triggered rollback.
//
// Expected shape: the offload stages (profile, partition, per-function
// deploy, canary) add minutes of pipeline time but profiling overlaps the
// existing unit-test stage, so end-to-end overhead stays well below the
// stage-sum; the injected regression fails the canary, the deployment
// rolls back, and release is skipped.
func E8Pipeline(s Scale) ([]*metrics.Table, error) {
	apps := []string{"report-gen", "ml-batch", "sci-batch"}

	stageTbl := metrics.NewTable(
		"E8 (Tab 3a): pipeline stage durations (vanilla vs offload-integrated)",
		"app", "pipeline", "stage", "start_s", "dur_s")
	totalTbl := metrics.NewTable(
		"E8 (Tab 3b): end-to-end pipeline time and overhead",
		"app", "vanilla_s", "offload_s", "overhead")

	for _, app := range apps {
		g := callgraph.Templates()[app]
		vanRep, _, err := runPipeline(e8Build{build: &cicd.Build{App: g}, eng: sim.NewEngine()})
		if err != nil {
			return nil, err
		}
		offRep, _, err := runPipeline(newE8Build(s, g, 0, nil))
		if err != nil {
			return nil, err
		}
		for _, res := range vanRep.Results {
			stageTbl.AddRow(app, "vanilla", res.Name,
				seconds(float64(res.Start)), seconds(float64(res.Duration())))
		}
		for _, res := range offRep.Results {
			stageTbl.AddRow(app, "offload", res.Name,
				seconds(float64(res.Start)), seconds(float64(res.Duration())))
		}
		overhead := float64(offRep.Duration())/float64(vanRep.Duration()) - 1
		totalTbl.AddRow(app,
			seconds(float64(vanRep.Duration())),
			seconds(float64(offRep.Duration())),
			pct(overhead))
	}

	// Regression round: a healthy deploy establishes the manifest, then a
	// 5x-slower build goes through the same pipeline.
	rbTbl := metrics.NewTable(
		"E8 (Tab 3c): canary verdict and rollback on an injected regression",
		"round", "canary_mean_s", "canary_slo_s", "passed", "rolled_back", "released")
	g := callgraph.Templates()["report-gen"]
	healthyRep, healthyCtx, err := runPipeline(newE8Build(s, g, 0, nil))
	if err != nil {
		return nil, err
	}
	addRollbackRow(rbTbl, "healthy", healthyRep, healthyCtx)

	var prev *cicd.Manifest
	if mv, ok := healthyCtx.Get(cicd.KeyManifest); ok {
		prev = mv.(*cicd.Manifest)
	}
	regRep, regCtx, err := runPipeline(newE8Build(s, g, 5, prev))
	if err != nil {
		return nil, err
	}
	addRollbackRow(rbTbl, "regressed(5x)", regRep, regCtx)

	return []*metrics.Table{stageTbl, totalTbl, rbTbl}, nil
}

func newE8Build(s Scale, g *callgraph.Graph, regression float64, prev *cicd.Manifest) e8Build {
	eng := sim.NewEngine()
	platform := serverless.NewPlatform(eng, rng.New(s.Seed), serverless.LambdaLike())
	return e8Build{
		eng: eng,
		build: &cicd.Build{
			App:              g,
			Platform:         platform,
			Meter:            profile.NewMeter(rng.New(s.Seed+1), 0.05),
			Cost:             core.CostModelFor(device.Smartphone(), serverless.LambdaLike(), serverless.LambdaLike().FullShareBytes, network.WiFiCloud(), core.DefaultWeights()),
			ProfileRuns:      30,
			Canary:           cicd.CanarySpec{Invocations: 5, SLOFactor: 2},
			Previous:         prev,
			InjectRegression: regression,
			WithOffload:      true,
		},
	}
}

func runPipeline(b e8Build) (cicd.Report, *cicd.Context, error) {
	p, err := b.build.Pipeline()
	if err != nil {
		return cicd.Report{}, nil, err
	}
	ctx := cicd.NewContext()
	var rep cicd.Report
	p.Run(b.eng, ctx, func(r cicd.Report) { rep = r })
	b.eng.Run()
	return rep, ctx, nil
}

func addRollbackRow(tbl *metrics.Table, round string, rep cicd.Report, ctx *cicd.Context) {
	var canary cicd.CanaryResult
	if cv, ok := ctx.Get(cicd.KeyCanary); ok {
		canary = cv.(cicd.CanaryResult)
	}
	rb, _ := rep.Stage("rollback")
	rolledBack := errors.Is(rb.Err, cicd.ErrRolledBack)
	release, _ := rep.Stage("release")
	tbl.AddRow(round,
		seconds(canary.MeanExecS),
		seconds(2*canary.ExpectedS),
		fmt.Sprintf("%v", canary.Passed),
		fmt.Sprintf("%v", rolledBack),
		fmt.Sprintf("%v", !release.Skipped && release.Err == nil),
	)
}
