package exp

import (
	"fmt"

	"offload/internal/core"
	"offload/internal/metrics"
)

// E9Scalability reproduces the fleet-scale analysis (Figure 6): one shared
// serverless region serving a growing fleet of devices, each with its own
// radio path and deadline-aware scheduler (core.Fleet). Reported: the
// simulated event count and whether per-task quality metrics stay stable
// as the fleet grows — shared-platform contention (the account
// concurrency limit) is the thing that could break them. Wall-clock
// throughput is measured by the Runner's per-experiment stats and the
// bench_test.go benchmarks, not here: table cells must be deterministic
// so the suite diffs byte-identically across runs and worker counts.
//
// Expected shape: events grow roughly linearly with the fleet (the kernel
// is O(log n) per event); cost per task and miss rate stay flat until the
// fleet saturates the account concurrency limit.
func E9Scalability(s Scale) ([]*metrics.Table, error) {
	tbl := metrics.NewTable(
		"E9 (Fig 6): fleet scaling on one shared serverless region",
		"devices", "tasks", "events", "mean_s", "task_usd", "miss")

	sizes := []int{1, 10, s.Devices / 5, s.Devices}
	seen := map[int]bool{}
	for _, k := range sizes {
		if k < 1 || seen[k] {
			continue
		}
		seen[k] = true
		tasksPerDevice := s.Tasks / 4
		if tasksPerDevice < 5 {
			tasksPerDevice = 5
		}

		cfg := core.DefaultConfig()
		cfg.Seed = s.Seed + uint64(k)*31
		cfg.Policy = core.PolicyDeadlineAware
		cfg.Edge, cfg.EdgePath, cfg.VM = nil, nil, nil
		cfg.ArrivalRateHint = e1Rate
		fleet, err := core.NewFleet(cfg, k)
		if err != nil {
			return nil, err
		}
		if err := fleet.SubmitStreams(e1Rate, tasksPerDevice); err != nil {
			return nil, err
		}
		fleet.Run()

		st := fleet.Stats()
		events := fleet.Eng.Fired()
		costPerTask := 0.0
		if st.Completed > 0 {
			costPerTask = st.CostUSD / float64(st.Completed)
		}
		tbl.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", st.Completed+st.Failed),
			fmt.Sprintf("%d", events),
			seconds(st.MeanCompletion),
			usd(costPerTask),
			pct(st.MissRate()),
		)
	}
	return []*metrics.Table{tbl}, nil
}
