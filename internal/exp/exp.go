// Package exp implements the evaluation suite E1–E20 defined in DESIGN.md.
// The published paper is a doctoral-symposium abstract with no tables or
// figures, so these experiments ARE the reproduction target: each one
// exercises a specific claim of the abstract, and EXPERIMENTS.md records
// the expected shape against what this code measures.
//
// Every experiment is a pure function from a Scale (how much work to do)
// to one or more metrics.Tables, so cmd/offbench, bench_test.go and the
// unit tests all share one implementation.
package exp

import (
	"fmt"
	"sort"

	"offload/internal/metrics"
)

// Scale controls how much work an experiment does. Quick keeps unit tests
// and smoke runs fast; Full is what offbench and the recorded
// EXPERIMENTS.md numbers use.
type Scale struct {
	Tasks       int    // tasks per cell
	RandomSeeds int    // replications / random instances
	Devices     int    // E9/E21 fleet bound
	Seed        uint64 // base RNG seed

	// Shards partitions the sharded-engine experiments (E21) across this
	// many worker shards (core.ShardedFleet). 0 and 1 both mean one
	// shard; results are byte-identical at every value, which the
	// determinism gate exploits by diffing -shards 1 against -shards 7.
	Shards int

	// Obs, when non-nil, makes every simulated cell sample a time series
	// and bank its end-of-run metrics registry. Observability only — it
	// never changes table cells. The Runner sets this per experiment; see
	// Runner.ObserveEvery.
	Obs *Observation
}

// Quick is the CI-friendly scale.
func Quick() Scale {
	return Scale{Tasks: 40, RandomSeeds: 3, Devices: 50, Seed: 1}
}

// Full is the scale the recorded results use.
func Full() Scale {
	return Scale{Tasks: 400, RandomSeeds: 10, Devices: 500, Seed: 1}
}

// Experiment is one runnable entry of the suite.
//
// Run is a pure function of its Scale: it must not read or write any
// package-level mutable state, so that the Runner can execute experiments
// concurrently and still produce bit-identical tables. Expected failures
// (bad configuration, infeasible allocation) come back as errors;
// panics are reserved for programming bugs, and the Runner converts them
// into errors rather than crashing the suite.
type Experiment struct {
	ID    string
	Seq   int // canonical position in the registry; seeds derive from it
	Claim string
	Run   func(Scale) ([]*metrics.Table, error)
}

// Registry returns the full suite in canonical order. Each experiment's
// Seq is its index here; rng.Derive(baseSeed, Seq) gives it a private
// seed stream regardless of which subset of the suite runs or in what
// order — see Runner.
func Registry() []Experiment {
	reg := []Experiment{
		{ID: "E1", Claim: "cloud serverless suffices for non-time-critical workloads", Run: E1Placement},
		{ID: "E2", Claim: "serverless resource allocation finds the cost-optimal memory", Run: E2MemorySweep},
		{ID: "E3", Claim: "min-cut code partitioning is optimal and cheap", Run: E3Partition},
		{ID: "E4", Claim: "cold starts are managed by keep-alive awareness and batching", Run: E4ColdStart},
		{ID: "E5", Claim: "offloading extends device battery life", Run: E5Energy},
		{ID: "E6", Claim: "with slack, edge's latency advantage stops mattering", Run: E6DeadlineSlack},
		{ID: "E7", Claim: "serverless beats provisioned infrastructure at low utilisation", Run: E7CostCrossover},
		{ID: "E8", Claim: "offloading integrates into CI/CD with modest overhead", Run: E8Pipeline},
		{ID: "E9", Claim: "the framework scales to fleets of devices", Run: E9Scalability},
		{ID: "E10", Claim: "allocation degrades gracefully with demand-prediction error", Run: E10PredictionError},
		{ID: "E11", Claim: "delay tolerance converts into money under diurnal pricing", Run: E11OffPeak},
		{ID: "E12", Claim: "transient infrastructure failures are absorbed by retries", Run: E12Failures},
		{ID: "E13", Claim: "DVFS narrows but does not close the gap to offloading", Run: E13DVFS},
		{ID: "E14", Claim: "serverless elasticity absorbs bursts fixed capacity cannot", Run: E14Bursts},
		{ID: "E15", Claim: "deployment granularity is an operational choice, not a cost cliff", Run: E15Granularity},
		{ID: "E16", Claim: "resource allocation must be provider-aware (billing granularity)", Run: E16Providers},
		{ID: "E17", Claim: "client-side resilience absorbs correlated cloud outages", Run: E17Resilience},
		{ID: "E18", Claim: "span-level attribution explains completion time and accounts every dollar", Run: E18Attribution},
		{ID: "E19", Claim: "online adaptation tracks regime drift within bounded regret of the static-best oracle", Run: E19Adaptive},
		{ID: "E20", Claim: "regional failover with graceful degradation survives disasters fail-fast cannot", Run: E20Failover},
		{ID: "E21", Claim: "the sharded engine drives million-UE flash crowds deterministically at any shard count", Run: E21FlashCrowd},
		{ID: "E22", Claim: "precedence-aware rank placement beats oblivious release on wide DAG jobs", Run: E22DAGPlacement},
	}
	for i := range reg {
		reg[i].Seq = i
	}
	return reg
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, ids)
}
