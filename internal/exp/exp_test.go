package exp

import (
	"strconv"
	"strings"
	"testing"

	"offload/internal/metrics"
)

// rows parses a table's CSV back into cells for shape assertions.
func rows(t *testing.T, tbl *metrics.Table) (header []string, data [][]string) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(tbl.CSV()), "\n")
	if len(lines) < 2 {
		t.Fatalf("table %q has no data rows", tbl.Title())
	}
	header = strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		data = append(data, strings.Split(line, ","))
	}
	return header, data
}

// col returns the index of a named column.
func col(t *testing.T, header []string, name string) int {
	t.Helper()
	for i, h := range header {
		if h == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, header)
	return -1
}

// num parses a cell that may carry $, %, s, J or x suffixes.
func num(t *testing.T, cell string) float64 {
	t.Helper()
	c := strings.TrimSpace(cell)
	c = strings.TrimPrefix(c, "$")
	c = strings.TrimSuffix(c, "%")
	c = strings.TrimSuffix(c, "x")
	c = strings.TrimSuffix(c, "s")
	c = strings.TrimSuffix(c, "mJ")
	c = strings.TrimSuffix(c, "J")
	v, err := strconv.ParseFloat(c, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 22 {
		t.Fatalf("registry has %d experiments, want 22", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
		if _, err := ByID(e.ID); err != nil {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestE1Shape(t *testing.T) {
	tables, err := E1Placement(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	if len(data) != 25 { // 5 apps × 5 policies
		t.Fatalf("E1 has %d rows, want 25", len(data))
	}
	app := col(t, header, "app")
	policy := col(t, header, "policy")
	mean := col(t, header, "mean_s")
	taskUSD := col(t, header, "task_usd")
	infra := col(t, header, "infra_usd")
	energy := col(t, header, "task_mJ")

	byKey := map[string][]string{}
	for _, r := range data {
		byKey[r[app]+"/"+r[policy]] = r
	}
	for _, a := range []string{"sci-batch", "report-gen", "ml-batch"} {
		local := byKey[a+"/local-only"]
		cloud := byKey[a+"/cloud-all"]
		edge := byKey[a+"/edge-all"]
		aware := byKey[a+"/deadline-aware"]
		// The thesis: cloud offloading beats local on completion time for
		// compute-heavy apps, at micro-dollar cost and far less energy.
		if num(t, cloud[mean]) >= num(t, local[mean]) {
			t.Errorf("%s: cloud (%s) not faster than local (%s)", a, cloud[mean], local[mean])
		}
		if jEnergy(t, cloud[energy]) >= jEnergy(t, local[energy]) {
			t.Errorf("%s: cloud energy not below local", a)
		}
		// Local pays no money; edge pays no marginal money but carries the
		// infrastructure column; cloud carries no infrastructure.
		if num(t, local[taskUSD]) != 0 || num(t, local[infra]) != 0 {
			t.Errorf("%s: local-only costs money", a)
		}
		if num(t, edge[infra]) <= 0 {
			t.Errorf("%s: edge has no infrastructure cost", a)
		}
		if num(t, cloud[infra]) != 0 {
			t.Errorf("%s: cloud-all charged infrastructure", a)
		}
		if num(t, aware[infra]) != 0 {
			t.Errorf("%s: deadline-aware charged infrastructure", a)
		}
	}
}

// jEnergy normalises the mJ/J formatting to joules.
func jEnergy(t *testing.T, cell string) float64 {
	t.Helper()
	if strings.HasSuffix(cell, "mJ") {
		return num(t, cell) / 1000
	}
	return num(t, cell)
}

func TestE2Shape(t *testing.T) {
	tables, err := E2MemorySweep(Quick())
	if err != nil {
		t.Fatal(err)
	}
	_, curve := rows(t, tables[0])
	if len(curve) < 20 {
		t.Fatalf("E2 curve has %d rows", len(curve))
	}
	header, summary := rows(t, tables[1])
	chosenMB := col(t, header, "chosen_mb")
	optimumMB := col(t, header, "optimum_mb")
	chosenUSD := col(t, header, "chosen_usd")
	optimumUSD := col(t, header, "optimum_usd")
	for _, r := range summary {
		if r[chosenMB] != r[optimumMB] {
			t.Errorf("profile %s: allocator picked %s MB, optimum %s MB", r[0], r[chosenMB], r[optimumMB])
		}
		if num(t, r[chosenUSD]) > num(t, r[optimumUSD])*1.0001 {
			t.Errorf("profile %s: chosen cost above optimum", r[0])
		}
	}
}

func TestE3Shape(t *testing.T) {
	tables, err := E3Partition(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	gap := col(t, header, "mincut_gap")
	mc := col(t, header, "min_cut")
	local := col(t, header, "all_local")
	remote := col(t, header, "all_remote")
	greedy := col(t, header, "greedy")
	for _, r := range data {
		if num(t, r[gap]) > 0.01 {
			t.Errorf("graph %s: min-cut gap %s above 0.01%%", r[0], r[gap])
		}
		if num(t, r[mc]) > num(t, r[local])+1e-12 || num(t, r[mc]) > num(t, r[remote])+1e-12 {
			t.Errorf("graph %s: min-cut worse than a trivial assignment", r[0])
		}
		if num(t, r[greedy]) > num(t, r[local])+1e-12 {
			t.Errorf("graph %s: greedy worse than all-local", r[0])
		}
	}
}

func TestE4Shape(t *testing.T) {
	tables, err := E4ColdStart(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	rate := col(t, header, "rate_per_s")
	ka := col(t, header, "keepalive_s")
	cold := col(t, header, "cold_frac")
	for _, r := range data {
		if r[ka] == "0" && num(t, r[cold]) != 100 {
			t.Errorf("keep-alive 0 with cold fraction %s", r[cold])
		}
	}
	// At a fixed moderate rate, cold fraction must fall with keep-alive.
	var last float64 = 101
	for _, r := range data {
		if r[rate] != "0.02" {
			continue
		}
		c := num(t, r[cold])
		if c > last+1e-9 {
			t.Errorf("cold fraction rose with keep-alive at rate 0.02: %v -> %v", last, c)
		}
		last = c
	}
	// Batching: cold fraction strictly falls as batch size grows.
	bh, bdata := rows(t, tables[1])
	bcold := col(t, bh, "cold_frac")
	prev := 101.0
	for _, r := range bdata {
		c := num(t, r[bcold])
		if c > prev+1e-9 {
			t.Errorf("batching did not reduce cold starts: %v after %v", c, prev)
		}
		prev = c
	}
}

func TestE5Shape(t *testing.T) {
	tables, err := E5Energy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	policy := col(t, header, "policy")
	ext := col(t, header, "extension_x")
	for _, r := range data {
		e := num(t, r[ext])
		if r[policy] == "local-only" {
			if e != 1 {
				t.Errorf("local extension %g != 1", e)
			}
			continue
		}
		if e <= 1 {
			t.Errorf("%s/%s: battery extension %g not above local", r[0], r[policy], e)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tables, err := E6DeadlineSlack(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	slack := col(t, header, "slack_x")
	policy := col(t, header, "policy")
	miss := col(t, header, "miss")
	missOf := func(s, p string) float64 {
		for _, r := range data {
			if r[slack] == s && r[policy] == p {
				return num(t, r[miss])
			}
		}
		t.Fatalf("no row %s/%s", s, p)
		return 0
	}
	// At generous slack everything converges to zero misses — the core
	// non-time-critical claim.
	for _, p := range []string{"edge-all", "cloud-all", "deadline-aware"} {
		if m := missOf("1", p); m != 0 {
			t.Errorf("%s misses %g%% at slack 1", p, m)
		}
		if m := missOf("10", p); m != 0 {
			t.Errorf("%s misses %g%% at slack 10", p, m)
		}
	}
	// At brutal slack everyone misses a lot.
	if m := missOf("0.0002", "cloud-all"); m < 50 {
		t.Errorf("cloud-all misses only %g%% at slack 0.0002", m)
	}
	// Deadline-aware never does meaningfully worse than cloud-all.
	for _, s := range []string{"0.01", "0.1", "1", "10"} {
		if missOf(s, "deadline-aware") > missOf(s, "cloud-all")+10 {
			t.Errorf("deadline-aware much worse than cloud-all at slack %s", s)
		}
	}
}

func TestE7Shape(t *testing.T) {
	tables, err := E7CostCrossover(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	cheapest := col(t, header, "cheapest")
	// Serverless cheapest at the lowest volume; not at the highest.
	if data[0][cheapest] != "serverless" {
		t.Errorf("lowest volume cheapest = %s", data[0][cheapest])
	}
	if last := data[len(data)-1][cheapest]; last == "serverless" {
		t.Error("serverless still cheapest at the highest volume")
	}
	// Serverless monthly cost grows with volume.
	sl := col(t, header, "serverless_usd")
	prev := -1.0
	for _, r := range data {
		v := num(t, r[sl])
		if v < prev {
			t.Errorf("serverless monthly cost fell with volume: %v -> %v", prev, v)
		}
		prev = v
	}
}

func TestE8Shape(t *testing.T) {
	tables, err := E8Pipeline(Quick())
	if err != nil {
		t.Fatal(err)
	}
	_, totals := rows(t, tables[1])
	header := []string{"app", "vanilla_s", "offload_s", "overhead"}
	for _, r := range totals {
		van := num(t, r[1])
		off := num(t, r[2])
		if off <= van {
			t.Errorf("%s: offload pipeline not slower than vanilla", r[0])
		}
		if off > van*1.6 {
			t.Errorf("%s: offload overhead implausible: %v vs %v", r[0], off, van)
		}
	}
	_ = header
	rh, rbRows := rows(t, tables[2])
	passed := col(t, rh, "passed")
	rolled := col(t, rh, "rolled_back")
	released := col(t, rh, "released")
	if rbRows[0][passed] != "true" || rbRows[0][rolled] != "false" || rbRows[0][released] != "true" {
		t.Errorf("healthy round wrong: %v", rbRows[0])
	}
	if rbRows[1][passed] != "false" || rbRows[1][rolled] != "true" || rbRows[1][released] != "false" {
		t.Errorf("regressed round wrong: %v", rbRows[1])
	}
}

func TestE9Shape(t *testing.T) {
	tables, err := E9Scalability(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	devices := col(t, header, "devices")
	miss := col(t, header, "miss")
	if len(data) < 3 {
		t.Fatalf("E9 has %d rows", len(data))
	}
	prev := 0.0
	for _, r := range data {
		d := num(t, r[devices])
		if d <= prev {
			t.Errorf("device counts not increasing: %v after %v", d, prev)
		}
		prev = d
		if num(t, r[miss]) > 20 {
			t.Errorf("fleet of %s misses %s of deadlines", r[devices], r[miss])
		}
	}
}

func TestE11Shape(t *testing.T) {
	tables, err := E11OffPeak(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	slack := col(t, header, "slack_x")
	shifting := col(t, header, "shifting")
	shifted := col(t, header, "shifted")
	saving := col(t, header, "saving")
	miss := col(t, header, "miss")
	var genSaving, tightShifted float64
	tightShifted = -1
	for _, r := range data {
		if r[shifting] != "true" {
			continue
		}
		switch r[slack] {
		case "24":
			genSaving = num(t, r[saving])
			if num(t, r[shifted]) < 90 {
				t.Errorf("generous slack shifted only %s", r[shifted])
			}
		case "0.05":
			tightShifted = num(t, r[shifted])
		}
		// The shifter must never cause more misses than the tight-deadline
		// baseline already has; in particular, at generous slack it must
		// stay at zero.
		if r[slack] != "0.05" && num(t, r[miss]) != 0 {
			t.Errorf("slack %s: shifting caused %s misses", r[slack], r[miss])
		}
	}
	if genSaving < 40 {
		t.Errorf("generous-slack saving %g%% below the 60%% discount's reach", genSaving)
	}
	if tightShifted != 0 {
		t.Errorf("tight slack shifted %g%% of tasks, want 0", tightShifted)
	}
}

func TestE12Shape(t *testing.T) {
	tables, err := E12Failures(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	rate := col(t, header, "failure_rate")
	retries := col(t, header, "retries")
	failures := col(t, header, "task_failures")
	miss := col(t, header, "miss")
	get := func(r, a string) []string {
		for _, row := range data {
			if row[rate] == r && row[retries] == a {
				return row
			}
		}
		t.Fatalf("no row %s/%s", r, a)
		return nil
	}
	for _, r := range []string{"0.05", "0.2", "0.5"} {
		bare := num(t, get(r, "1")[failures])
		retried := num(t, get(r, "5")[failures])
		if retried >= bare && bare > 0 {
			t.Errorf("rate %s: retries did not reduce failures (%g -> %g)", r, bare, retried)
		}
		if retried > 5 {
			t.Errorf("rate %s: %g%% failures survive 5 attempts", r, retried)
		}
	}
	for _, row := range data {
		if num(t, row[miss]) != 0 {
			t.Errorf("failures caused deadline misses: %v", row)
		}
	}
}

func TestE13Shape(t *testing.T) {
	tables, err := E13DVFS(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	app := col(t, header, "app")
	mode := col(t, header, "mode")
	miss := col(t, header, "miss")
	energy := col(t, header, "task_mJ")
	byKey := map[string][]string{}
	for _, r := range data {
		byKey[r[app]+"/"+r[mode]] = r
	}
	for _, a := range []string{"sci-batch", "report-gen"} {
		full := jEnergy(t, byKey[a+"/local-full-speed"][energy])
		dvfs := jEnergy(t, byKey[a+"/local-dvfs"][energy])
		cloud := jEnergy(t, byKey[a+"/cloud"][energy])
		if !(cloud < dvfs && dvfs < full) {
			t.Errorf("%s: energy ordering violated: cloud %g, dvfs %g, full %g", a, cloud, dvfs, full)
		}
		// DVFS must not cause misses: it only stretches inside the budget.
		if m := num(t, byKey[a+"/local-dvfs"][miss]); m != 0 {
			t.Errorf("%s: DVFS caused %g%% misses", a, m)
		}
	}
}

func TestE14Shape(t *testing.T) {
	tables, err := E14Bursts(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	arrivals := col(t, header, "arrivals")
	backend := col(t, header, "backend")
	p95 := col(t, header, "p95_s")
	get := func(a, b string) []string {
		for _, r := range data {
			if r[arrivals] == a && r[backend] == b {
				return r
			}
		}
		t.Fatalf("no row %s/%s", a, b)
		return nil
	}
	// Under bursts, the fixed VM's tail must be far worse than serverless;
	// the autoscaler lands in between.
	slBurst := num(t, get("bursty", "serverless")[p95])
	fixedBurst := num(t, get("bursty", "vm-fixed")[p95])
	autoBurst := num(t, get("bursty", "vm-autoscaled")[p95])
	if fixedBurst < 3*slBurst {
		t.Errorf("fixed VM burst P95 (%g) not far above serverless (%g)", fixedBurst, slBurst)
	}
	if !(autoBurst < fixedBurst) {
		t.Errorf("autoscaler (%g) not better than fixed (%g) under bursts", autoBurst, fixedBurst)
	}
	// Serverless stays in the same regime regardless of arrival pattern.
	slSteady := num(t, get("steady", "serverless")[p95])
	if slBurst > 10*slSteady {
		t.Errorf("serverless tail degraded %gx under bursts", slBurst/slSteady)
	}
}

func TestE15Shape(t *testing.T) {
	tables, err := E15Granularity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	app := col(t, header, "app")
	deployment := col(t, header, "deployment")
	fns := col(t, header, "functions")
	runUSD := col(t, header, "run_usd")
	byKey := map[string][]string{}
	for _, r := range data {
		byKey[r[app]+"/"+r[deployment]] = r
	}
	for _, a := range []string{"ml-batch", "sci-batch", "report-gen"} {
		mono := byKey[a+"/monolithic"]
		per := byKey[a+"/per-component"]
		if mono == nil || per == nil {
			t.Fatalf("missing rows for %s", a)
		}
		if mono[fns] != "1" {
			t.Errorf("%s: monolithic deployed %s functions", a, mono[fns])
		}
		if num(t, per[fns]) < 2 {
			t.Errorf("%s: per-component deployed %s functions", a, per[fns])
		}
		// Neither variant should dominate by more than 2x on money — the
		// "no cost cliff" claim.
		m, p := num(t, mono[runUSD]), num(t, per[runUSD])
		if p > 2*m || m > 2*p {
			t.Errorf("%s: granularity cost cliff: mono $%g vs per $%g", a, m, p)
		}
	}
}

func TestE16Shape(t *testing.T) {
	tables, err := E16Providers(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	profile := col(t, header, "profile")
	provider := col(t, header, "provider")
	ratio := col(t, header, "cost_ratio")
	ratioOf := func(p string) float64 {
		for _, r := range data {
			if r[profile] == p && r[provider] == "gcf-like" {
				return num(t, r[ratio])
			}
		}
		t.Fatalf("no gcf row for %s", p)
		return 0
	}
	tiny := ratioOf("tiny-20ms")
	large := ratioOf("large-20s")
	// Coarse granularity hurts tiny tasks disproportionately.
	if tiny <= large {
		t.Errorf("granularity penalty not decreasing with size: tiny %gx vs large %gx", tiny, large)
	}
	if tiny < 1.2 {
		t.Errorf("tiny-task penalty %gx implausibly small", tiny)
	}
	if large > 1.5 {
		t.Errorf("large-task ratio %gx should approach the list-price gap", large)
	}
}

func TestE17Shape(t *testing.T) {
	tables, err := E17Resilience(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	if len(data) != 12 { // 3 burst lengths × 4 strategies
		t.Fatalf("E17 has %d rows, want 12", len(data))
	}
	burst := col(t, header, "burst_s")
	strategy := col(t, header, "strategy")
	fail := col(t, header, "task_fail")
	fallbacks := col(t, header, "fallbacks")
	hedges := col(t, header, "hedges")
	get := func(b, s string) []string {
		for _, r := range data {
			if r[burst] == b && r[strategy] == s {
				return r
			}
		}
		t.Fatalf("no row %s/%s", b, s)
		return nil
	}
	for _, b := range []string{"15", "60", "240"} {
		ff := num(t, get(b, "fail-fast")[fail])
		retry := num(t, get(b, "retry-only")[fail])
		brk := num(t, get(b, "brk+fallback")[fail])
		// Fail-fast loses tasks during every burst; retries never hurt.
		if ff <= 0 {
			t.Errorf("burst %s: fail-fast lost no tasks", b)
		}
		// Each cell draws its own workload stream, so allow a few points of
		// arrival noise; retries must never make things materially worse.
		if retry > ff+5 {
			t.Errorf("burst %s: retry-only (%g%%) worse than fail-fast (%g%%)", b, retry, ff)
		}
		// The headline claim: breaker+fallback rides out any burst length.
		if brk != 0 {
			t.Errorf("burst %s: brk+fallback lost %g%% of tasks", b, brk)
		}
		if num(t, get(b, "fail-fast")[fallbacks]) != 0 {
			t.Errorf("burst %s: fail-fast recorded fallbacks", b)
		}
	}
	// Retry-only's ~62 s backoff horizon absorbs the short burst but not
	// the long one.
	if r := num(t, get("15", "retry-only")[fail]); r != 0 {
		t.Errorf("retry-only lost %g%% of tasks to a 15 s burst inside its horizon", r)
	}
	if r := num(t, get("240", "retry-only")[fail]); r < 20 {
		t.Errorf("retry-only lost only %g%% to a 240 s burst far beyond its horizon", r)
	}
	// The breaker must actually have rerouted during the sustained burst,
	// and the hedged strategy must actually have hedged.
	if num(t, get("240", "brk+fallback")[fallbacks]) == 0 {
		t.Error("brk+fallback never rerouted during a 240 s burst")
	}
	hedgedTotal := 0.0
	for _, b := range []string{"15", "60", "240"} {
		hedgedTotal += num(t, get(b, "hedged")[hedges])
	}
	if hedgedTotal == 0 {
		t.Error("hedged strategy never launched a hedge")
	}
}

func TestE18Shape(t *testing.T) {
	tables, err := E18Attribution(Quick())
	if err != nil {
		t.Fatal(err) // E18 fails itself when an attribution check misses
	}
	if len(tables) != 3 {
		t.Fatalf("E18 produced %d tables, want 3", len(tables))
	}
	header, data := rows(t, tables[1])
	ok := col(t, header, "ok")
	if len(data) != 4 {
		t.Fatalf("E18 ran %d checks, want 4", len(data))
	}
	for _, r := range data {
		if r[ok] != "yes" {
			t.Errorf("check %q failed: %v", r[0], r)
		}
	}
	// The phase table must attribute cold starts in the cold cells and
	// show exec dominating the straggler cell's P95 band.
	ph, pdata := rows(t, tables[0])
	cell := col(t, ph, "cell")
	phase := col(t, ph, "phase")
	p95 := col(t, ph, "share_p95")
	seenCold := false
	for _, r := range pdata {
		if r[cell] == "baseline" && r[phase] == "cold_start" {
			seenCold = true
		}
		if r[cell] == "stragglers" && r[phase] == "exec" && num(t, r[p95]) < 50 {
			t.Errorf("stragglers: exec carries only %s of the P95 band", r[p95])
		}
	}
	if !seenCold {
		t.Error("baseline cell attributed no cold_start time")
	}
}

func TestE10Shape(t *testing.T) {
	tables, err := E10PredictionError(Quick())
	if err != nil {
		t.Fatal(err)
	}
	header, data := rows(t, tables[0])
	relErr := col(t, header, "rel_error")
	miss := col(t, header, "miss")
	excess := col(t, header, "excess_cost")
	if data[0][relErr] != "0" {
		t.Fatalf("first row not the baseline: %v", data[0])
	}
	if num(t, data[0][excess]) != 0 {
		t.Errorf("baseline excess cost %s != 0", data[0][excess])
	}
	for _, r := range data {
		// Graceful degradation: errors must not blow up cost or misses.
		if num(t, r[excess]) > 50 {
			t.Errorf("error %s: excess cost %s above 50%%", r[relErr], r[excess])
		}
		if num(t, r[miss]) > 10 {
			t.Errorf("error %s: miss rate %s above 10%%", r[relErr], r[miss])
		}
	}
}

func TestE19Shape(t *testing.T) {
	tables, err := E19Adaptive(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("E19 produced %d tables, want 2", len(tables))
	}
	header, data := rows(t, tables[0])
	if want := 3 * 9; len(data) != want {
		t.Fatalf("detail table has %d rows, want %d (3 cells x 9 policies)", len(data), want)
	}
	policy := col(t, header, "policy")
	drift := col(t, header, "drift")
	cell := col(t, header, "cell")
	fired := false
	for _, r := range data {
		adaptive := strings.HasPrefix(r[policy], "bandit")
		if adaptive && r[drift] == "-" {
			t.Errorf("adaptive row %v reports no drift counter", r)
		}
		if !adaptive && r[drift] != "-" {
			t.Errorf("static row %v reports a drift counter", r)
		}
		if adaptive && r[cell] == "outage" && num(t, r[drift]) > 0 {
			fired = true
		}
	}
	if !fired {
		t.Error("no adaptive policy saw the drift detector fire in the outage cell")
	}

	// The headline claim: each bandit's cumulative objective beats every
	// static baseline's, and stays within 25% regret of the per-cell
	// static-best oracle.
	sHeader, sData := rows(t, tables[1])
	total := col(t, sHeader, "total")
	regret := col(t, sHeader, "regret")
	bestStatic, worstBandit := -1.0, -1.0
	for _, r := range sData {
		switch {
		case strings.HasPrefix(r[policy], "bandit"):
			if v := num(t, r[total]); v > worstBandit {
				worstBandit = v
			}
			if v := num(t, r[regret]); v > 25 {
				t.Errorf("%s regret %s above the 25%% bound", r[policy], r[regret])
			}
		case r[policy] == "oracle(static-best)":
		default:
			if v := num(t, r[total]); bestStatic < 0 || v < bestStatic {
				bestStatic = v
			}
		}
	}
	if worstBandit >= bestStatic {
		t.Errorf("bandit total %.3f does not beat best static %.3f", worstBandit, bestStatic)
	}
}

func TestE20Shape(t *testing.T) {
	tables, err := E20Failover(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("E20 produced %d tables, want 1", len(tables))
	}
	header, data := rows(t, tables[0])
	if len(data) != 12 { // 3 scenarios × 4 strategies
		t.Fatalf("E20 has %d rows, want 12", len(data))
	}
	scenario := col(t, header, "scenario")
	strategy := col(t, header, "strategy")
	fail := col(t, header, "task_fail")
	lost := col(t, header, "lost")
	mttr := col(t, header, "mttr_s")
	get := func(sc, st string) []string {
		for _, r := range data {
			if r[scenario] == sc && r[strategy] == st {
				return r
			}
		}
		t.Fatalf("no row %s/%s", sc, st)
		return nil
	}

	// The headline claim: in the single-region outage, fail-fast loses a
	// visible share of the workload while the ladder posture loses none —
	// the incident becomes shed/queued work instead of failures.
	if ff := num(t, get("region-outage", "fail-fast")[fail]); ff <= 5 {
		t.Errorf("fail-fast lost only %.1f%% in the region outage, want > 5%%", ff)
	}
	ladder := get("region-outage", "ladder")
	if v := num(t, ladder[fail]); v != 0 {
		t.Errorf("ladder posture lost %.1f%% in the region outage, want 0%%", v)
	}
	if ladder[lost] != "0" {
		t.Errorf("ladder posture dropped %s parked tasks, want 0", ladder[lost])
	}

	// Recovery-time accounting: the adaptive posture's canary probes must
	// observe the recovery — MTTR positive and within 2× of the outage
	// window's end.
	adaptive := get("region-outage", "adaptive")
	if adaptive[mttr] == "-" {
		t.Fatal("adaptive posture reports no MTTR for the region outage")
	}
	bound := 2 * float64(e20OutageStart.Add(e20OutageLen))
	if v := num(t, adaptive[mttr]); v <= 0 || v > bound {
		t.Errorf("adaptive MTTR %.3gs outside (0, %.3gs]", v, bound)
	}

	// Failover postures never lose tasks in any drill: re-homing, the
	// ladder and last-resort localization absorb every incident here.
	for _, r := range data {
		if r[strategy] == "fail-fast" {
			continue
		}
		if v := num(t, r[fail]); v != 0 {
			t.Errorf("%s/%s failed %.1f%% of tasks, want 0%%", r[scenario], r[strategy], v)
		}
	}
}

func TestE21Shape(t *testing.T) {
	tables, err := E21FlashCrowd(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("E21 produced %d tables, want 1", len(tables))
	}
	header, data := rows(t, tables[0])
	if len(data) != 1 {
		t.Fatalf("E21 has %d rows, want 1", len(data))
	}
	r := data[0]
	devices := col(t, header, "devices")
	tasks := col(t, header, "tasks")
	windows := col(t, header, "windows")
	miss := col(t, header, "miss")
	// 50× the E9 quick fleet, all tasks accounted for.
	if r[devices] != "2500" {
		t.Errorf("devices = %s, want 2500", r[devices])
	}
	if r[tasks] != "10000" {
		t.Errorf("tasks = %s, want 2500 devices x 4", r[tasks])
	}
	// The flash crowd is absorbed: generous non-time-critical deadlines
	// keep the miss rate at zero even with every UE stampeding at once.
	if v := num(t, r[miss]); v != 0 {
		t.Errorf("miss rate %.2f%%, want 0%%", v)
	}
	// The barrier actually ran epochs (idle-skip keeps it near the busy
	// windows, but a flash crowd plus calm tails spans many).
	if v := num(t, r[windows]); v <= 10 {
		t.Errorf("only %.0f executed windows, want a real epoch stream", v)
	}
}

// TestE21ShardCountInvariance is the experiment-level determinism gate:
// the full rendered table (and its CSV) must be byte-identical whatever
// the shard count, including the serial reference.
func TestE21ShardCountInvariance(t *testing.T) {
	render := func(shards int) string {
		s := Quick()
		s.Shards = shards
		tables, err := E21FlashCrowd(s)
		if err != nil {
			t.Fatal(err)
		}
		return tables[0].String() + "\n" + tables[0].CSV()
	}
	ref := render(1)
	for _, shards := range []int{2, 4, 7} {
		if got := render(shards); got != ref {
			t.Errorf("shards=%d output diverged from serial:\n%s\nvs\n%s", shards, got, ref)
		}
	}
}

func TestE22Shape(t *testing.T) {
	tables, err := E22DAGPlacement(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("E22 produced %d tables, want 1", len(tables))
	}
	header, data := rows(t, tables[0])
	if len(data) != 6 {
		t.Fatalf("E22 has %d rows, want 3 shapes x 2 placements", len(data))
	}
	shape := col(t, header, "shape")
	placement := col(t, header, "placement")
	meanMk := col(t, header, "mean_mk_s")
	critS := col(t, header, "crit_s")
	slack := col(t, header, "slack_s")
	fail := col(t, header, "fail")

	mk := map[string]float64{} // "shape/placement" → mean makespan
	for _, r := range data {
		key := r[shape] + "/" + r[placement]
		mk[key] = num(t, r[meanMk])
		if num(t, r[fail]) != 0 {
			t.Errorf("%s: failed jobs in a healthy run", key)
		}
		if num(t, r[meanMk]) <= 0 {
			t.Errorf("%s: non-positive makespan", key)
		}
		// The critical-path partition means crit_s can never exceed the
		// makespan it decomposes.
		if c := num(t, r[critS]); c > num(t, r[meanMk])+1e-9 {
			t.Errorf("%s: critical path %.3f exceeds makespan %.3f", key, c, num(t, r[meanMk]))
		}
		// The serial chain has no off-path nodes, so no slack.
		if r[shape] == "narrow" {
			if v := num(t, r[slack]); v != 0 {
				t.Errorf("narrow/%s: non-zero slack %.3f on a chain", r[placement], v)
			}
		}
	}
	// The headline claim: on the wide fork-join, upward-rank placement
	// beats precedence-oblivious release on mean makespan.
	if mk["wide/rank"] >= mk["wide/oblivious"] {
		t.Errorf("wide: rank %.3fs not better than oblivious %.3fs",
			mk["wide/rank"], mk["wide/oblivious"])
	}
}
