package exp

import (
	"fmt"

	"offload/internal/callgraph"
	"offload/internal/core"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sched"
	"offload/internal/sim"
	"offload/internal/trace"
	"offload/internal/workload"
)

// runResult is one simulated cell: a policy on a workload.
type runResult struct {
	stats     *sched.Stats
	infraUSD  float64
	coldRate  float64
	simEvents uint64
	system    *core.System
}

// runCell builds a system from cfg, streams s.Tasks tasks of the template
// mix at the Poisson rate, runs to completion, and returns the aggregate.
// When the Scale carries an Observation, the cell is sampled while it runs
// and its end-of-run registry folds into the experiment-wide aggregate.
func runCell(s Scale, cfg core.Config, mix []workload.WeightedTemplate, rate float64) (runResult, error) {
	return runCellAt(s, cfg, mix, rate, 0)
}

// runCellAt is runCell with the stream starting at the given virtual time
// (used by E11 to begin arrivals during peak pricing hours).
func runCellAt(s Scale, cfg core.Config, mix []workload.WeightedTemplate, rate float64, startAt sim.Time) (runResult, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return runResult{}, err
	}
	return driveCell(s, sys, mix, rate, startAt)
}

// runCellTagged is runCell with a per-task tag applied at submission time
// (E20 uses it to assign priorities deterministically by task ID). A nil
// tag is identical to runCell.
func runCellTagged(s Scale, cfg core.Config, mix []workload.WeightedTemplate, rate float64, tag func(*model.Task)) (runResult, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return runResult{}, err
	}
	return driveCellTagged(s, sys, mix, rate, 0, tag)
}

// runCellSpans is runCell with causal span recording enabled on the cell
// (used by E18, which needs spans regardless of the Runner's settings).
// The run name labels the exported span set.
func runCellSpans(s Scale, name string, cfg core.Config, mix []workload.WeightedTemplate, rate float64) (runResult, *trace.SpanSet, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return runResult{}, nil, err
	}
	sys.EnableSpans().SetMeta(name, string(cfg.Policy))
	res, err := driveCell(s, sys, mix, rate, 0)
	if err != nil {
		return runResult{}, nil, err
	}
	return res, sys.SpanSet(), nil
}

// driveCell streams s.Tasks tasks of the mix into a built system, runs it
// to completion, and returns the aggregate.
func driveCell(s Scale, sys *core.System, mix []workload.WeightedTemplate, rate float64, startAt sim.Time) (runResult, error) {
	return driveCellTagged(s, sys, mix, rate, startAt, nil)
}

// driveCellTagged is driveCell with an optional per-task tag applied
// between generation and submission. A nil tag submits the stream exactly
// as driveCell does.
func driveCellTagged(s Scale, sys *core.System, mix []workload.WeightedTemplate, rate float64, startAt sim.Time, tag func(*model.Task)) (runResult, error) {
	var obs *core.Observer
	if s.Obs != nil {
		obs = s.Obs.attach(sys)
	}
	gen, err := workload.NewGenerator(sys.Src.Split(), mix)
	if err != nil {
		return runResult{}, err
	}
	count := s.Tasks
	submit := sys.Submit
	if tag != nil {
		submit = func(t *model.Task) {
			tag(t)
			sys.Submit(t)
		}
	}
	if startAt > 0 {
		sys.Eng.At(startAt, func() {
			workload.Stream(sys.Eng, workload.NewPoisson(sys.Src.Split(), rate), gen, count, submit)
		})
	} else {
		workload.Stream(sys.Eng, workload.NewPoisson(sys.Src.Split(), rate), gen, count, submit)
	}
	sys.Run()
	if s.Obs != nil {
		if err := s.Obs.collect(obs, sys); err != nil {
			return runResult{}, err
		}
	}

	res := runResult{
		stats:     sys.Stats(),
		infraUSD:  sys.InfrastructureCostUSD(),
		simEvents: sys.Eng.Fired(),
		system:    sys,
	}
	if p := sys.Platform(); p != nil {
		st := p.Stats()
		if st.Invocations > 0 {
			res.coldRate = float64(st.ColdStarts) / float64(st.Invocations)
		}
	}
	return res, nil
}

// templateMix returns the single-template mix for an app name.
func templateMix(app string) ([]workload.WeightedTemplate, error) {
	g, ok := callgraph.Templates()[app]
	if !ok {
		return nil, fmt.Errorf("exp: unknown template %q", app)
	}
	t, err := workload.FromGraph(g)
	if err != nil {
		return nil, err
	}
	return []workload.WeightedTemplate{{Template: t, Weight: 1}}, nil
}

// standardMixTemplates returns the five-template equal-weight mix.
func standardMixTemplates() ([]workload.WeightedTemplate, error) {
	var mix []workload.WeightedTemplate
	for _, name := range callgraph.TemplateNames() {
		t, err := workload.FromGraph(callgraph.Templates()[name])
		if err != nil {
			return nil, err
		}
		mix = append(mix, workload.WeightedTemplate{Template: t, Weight: 1})
	}
	return mix, nil
}

// scaleDeadlines multiplies every template deadline by factor.
func scaleDeadlines(mix []workload.WeightedTemplate, factor float64) []workload.WeightedTemplate {
	out := make([]workload.WeightedTemplate, len(mix))
	copy(out, mix)
	for i := range out {
		out[i].Template.Deadline = sim.Duration(float64(out[i].Template.Deadline) * factor)
	}
	return out
}

// pct formats a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// usd formats dollars with enough precision for micro-bills.
func usd(v float64) string {
	switch {
	case v == 0:
		return "$0"
	case v < 0.001:
		return fmt.Sprintf("$%.2e", v)
	default:
		return fmt.Sprintf("$%.4f", v)
	}
}

// seconds formats a duration in seconds.
func seconds(v float64) string { return fmt.Sprintf("%.3gs", v) }

// newSeedSource derives a seed stream for replicated cells.
func newSeedSource(base uint64) *rng.Source { return rng.New(base) }
