package exp

import (
	"testing"

	"offload/internal/sim"
	"offload/internal/workload"
)

func TestFormattingHelpers(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{pct(0.123), "12.3%"},
		{pct(0), "0.0%"},
		{usd(0), "$0"},
		{usd(0.0005), "$5.00e-04"},
		{usd(1.5), "$1.5000"},
		{seconds(12.345), "12.3s"},
		{fmtMilliJ(500), "500mJ"},
		{fmtMilliJ(2500), "2.5J"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("formatted %q, want %q", tt.got, tt.want)
		}
	}
}

func TestScaleDeadlines(t *testing.T) {
	mix, err := standardMixTemplates()
	if err != nil {
		t.Fatal(err)
	}
	scaled := scaleDeadlines(mix, 0.5)
	for i := range mix {
		want := sim.Duration(float64(mix[i].Template.Deadline) * 0.5)
		if scaled[i].Template.Deadline != want {
			t.Errorf("%s: deadline %v, want %v",
				mix[i].Template.App, scaled[i].Template.Deadline, want)
		}
		// The original mix must be untouched.
		if mix[i].Template.Deadline == scaled[i].Template.Deadline {
			t.Errorf("%s: scaleDeadlines mutated its input", mix[i].Template.App)
		}
	}
}

func TestTemplateMixUnknownApp(t *testing.T) {
	if _, err := templateMix("no-such-app"); err == nil {
		t.Fatal("unknown app accepted")
	}
	mix, err := templateMix("report-gen")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 1 || mix[0].Template.App != "report-gen" {
		t.Fatalf("mix = %+v", mix)
	}
}

func TestStandardMixTemplatesCoversAll(t *testing.T) {
	mix, err := standardMixTemplates()
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 5 {
		t.Fatalf("standard mix has %d templates", len(mix))
	}
	var _ []workload.WeightedTemplate = mix
}
