package exp

import (
	"fmt"
	"strings"

	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/sim"
	"offload/internal/trace"
)

// Observation collects sim-time samples, end-of-run metrics, and
// (optionally) causal spans across the cells of one experiment. Cells
// within an experiment run sequentially, so series append, registries
// merge and span sets stack in a fixed order — the resulting export is
// byte-identical at any Runner parallelism, since workers only decide
// when an experiment runs, never the order of its cells.
//
// Observation is observability only: attaching one never changes table
// cells (sampling is read-only and draws no randomness).
type Observation struct {
	every    sim.Duration
	expID    string
	cells    int
	spans    bool
	series   []*metrics.TimeSeries
	registry *metrics.Registry
	spanSets []*trace.SpanSet
}

// NewObservation returns a collector for the experiment with the given
// ID. A positive interval samples a time series every interval of
// simulated time; zero disables time sampling (span-only collection).
func NewObservation(expID string, every sim.Duration) *Observation {
	if every < 0 {
		panic("exp: observation interval must not be negative")
	}
	return &Observation{
		every:    every,
		expID:    expID,
		registry: metrics.NewRegistry(strings.ToLower(expID)),
	}
}

// EnableSpans makes every subsequently attached cell record causal spans
// (see core.System.EnableSpans).
func (o *Observation) EnableSpans() { o.spans = true }

// attach starts observing a freshly built cell. Call before System.Run.
// Returns nil when time sampling is disabled.
func (o *Observation) attach(sys *core.System) *core.Observer {
	o.cells++
	name := fmt.Sprintf("%s_cell%03d", strings.ToLower(o.expID), o.cells)
	if o.spans {
		sys.EnableSpans().SetMeta(name, string(sys.Policy()))
	}
	if o.every <= 0 {
		return nil
	}
	return sys.Observe(name, o.every)
}

// collect banks a finished cell: its time series verbatim, its span set,
// and its end-of-run registry merged into the experiment-wide aggregate.
func (o *Observation) collect(obs *core.Observer, sys *core.System) error {
	if obs != nil {
		o.series = append(o.series, obs.Series())
	}
	if set := sys.SpanSet(); set != nil {
		o.spanSets = append(o.spanSets, set)
	}
	return o.registry.Merge(sys.Registry(o.registry.Name()))
}

// Series returns one time series per observed cell, in cell order.
func (o *Observation) Series() []*metrics.TimeSeries { return o.series }

// Registry returns the merged end-of-run metrics across all cells.
func (o *Observation) Registry() *metrics.Registry { return o.registry }

// SpanSets returns one span set per cell, in cell order; empty unless
// EnableSpans was called before the cells ran.
func (o *Observation) SpanSets() []*trace.SpanSet { return o.spanSets }
