package exp

import (
	"fmt"
	"strings"

	"offload/internal/core"
	"offload/internal/metrics"
	"offload/internal/sim"
)

// Observation collects sim-time samples and end-of-run metrics across the
// cells of one experiment. Cells within an experiment run sequentially, so
// series append and registries merge in a fixed order — the resulting
// export is byte-identical at any Runner parallelism, since workers only
// decide when an experiment runs, never the order of its cells.
//
// Observation is observability only: attaching one never changes table
// cells (sampling is read-only and draws no randomness).
type Observation struct {
	every    sim.Duration
	expID    string
	cells    int
	series   []*metrics.TimeSeries
	registry *metrics.Registry
}

// NewObservation returns a collector sampling every interval of simulated
// time for the experiment with the given ID.
func NewObservation(expID string, every sim.Duration) *Observation {
	if every <= 0 {
		panic("exp: observation interval must be positive")
	}
	return &Observation{
		every:    every,
		expID:    expID,
		registry: metrics.NewRegistry(strings.ToLower(expID)),
	}
}

// attach starts sampling a freshly built cell. Call before System.Run.
func (o *Observation) attach(sys *core.System) *core.Observer {
	o.cells++
	name := fmt.Sprintf("%s_cell%03d", strings.ToLower(o.expID), o.cells)
	return sys.Observe(name, o.every)
}

// collect banks a finished cell: its time series verbatim and its
// end-of-run registry merged into the experiment-wide aggregate.
func (o *Observation) collect(obs *core.Observer, sys *core.System) error {
	o.series = append(o.series, obs.Series())
	return o.registry.Merge(sys.Registry(o.registry.Name()))
}

// Series returns one time series per observed cell, in cell order.
func (o *Observation) Series() []*metrics.TimeSeries { return o.series }

// Registry returns the merged end-of-run metrics across all cells.
func (o *Observation) Registry() *metrics.Registry { return o.registry }
