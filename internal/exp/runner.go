package exp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"offload/internal/metrics"
	"offload/internal/rng"
	"offload/internal/sim"
	"offload/internal/trace"
)

// Result is the outcome of one experiment executed by a Runner.
type Result struct {
	ID     string
	Claim  string
	Seed   uint64 // the derived seed the experiment ran with
	Tables []*metrics.Table
	// Err is non-nil when the experiment returned an error, panicked
	// (the panic message and stack are captured in the error), or was
	// skipped because the suite was cancelled before it started.
	Err     error
	Skipped bool // cancelled before the experiment started

	// Elapsed is the experiment's wall-clock time. AllocBytes is the
	// growth of the process-wide cumulative heap allocation across the
	// run: exact at Parallel=1, an upper bound when experiments overlap.
	// Both are observability only — they never appear in table cells, so
	// data output stays byte-identical across runs and worker counts.
	Elapsed    time.Duration
	AllocBytes uint64

	// Series and Registry carry the experiment's sim-time samples and
	// merged end-of-run metrics when the Runner's ObserveEvery is set; nil
	// otherwise (and empty for experiments that simulate no cells). Both
	// are pure functions of the derived seed, so they are byte-identical
	// at any Parallel value.
	Series   []*metrics.TimeSeries
	Registry *metrics.Registry

	// Spans carries one causal span set per simulated cell when the
	// Runner's RecordSpans is set; nil otherwise. Like Series, a pure
	// function of the derived seed — byte-identical at any Parallel
	// value.
	Spans []*trace.SpanSet
}

// Runner executes a set of experiments on a bounded worker pool with
// deterministic per-experiment seeding. It is the single execution
// substrate for cmd/offbench, the test suite and CI.
//
// Determinism: each experiment runs with Scale.Seed replaced by
// rng.Derive(Scale.Seed, Seq), a pure function of the base seed and the
// experiment's canonical registry position. Workers only decide WHEN an
// experiment runs, never WITH WHAT randomness, so the produced tables are
// bit-identical for any Parallel value and any completion order, and a
// subset run (offbench -exp E5) reproduces exactly the rows the full
// suite produces for those experiments.
type Runner struct {
	// Scale is the per-experiment workload; Scale.Seed is the base seed
	// that per-experiment seeds derive from.
	Scale Scale
	// Parallel is the worker-pool size; <= 0 means runtime.NumCPU().
	Parallel int
	// OnResult, if non-nil, is invoked as each experiment finishes, in
	// completion order (not suite order). Calls are serialized through a
	// single delivery goroutine, never made from worker goroutines, so a
	// callback's writes (e.g. progress lines to stderr) can never tear.
	OnResult func(Result)
	// ObserveEvery, when positive, attaches a sim-time observer to every
	// simulated cell (see Observation) and fills each Result's Series and
	// Registry. Zero disables observation.
	ObserveEvery sim.Duration
	// RecordSpans, when set, records causal spans in every simulated cell
	// and fills each Result's Spans. Observability only: table cells are
	// unchanged (TestSpansAreInert).
	RecordSpans bool
}

// Run executes exps and returns one Result per experiment, in input
// order. The first experiment failure (error or recovered panic) cancels
// the remaining queue — experiments already in flight finish, queued ones
// come back with Skipped set — and is returned as the error, alongside
// the partial results. Cancelling ctx has the same effect.
func (r *Runner) Run(ctx context.Context, exps []Experiment) ([]Result, error) {
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]Result, len(exps))
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards firstErr
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// Workers hand finished Results to a single consumer goroutine, which
	// is the only caller of OnResult. Funnelling the callback through one
	// goroutine — instead of invoking it from whichever worker finished —
	// is what keeps progress lines written by OnResult from interleaving
	// mid-line on stderr under -parallel: each callback (and therefore each
	// write it performs) fully completes before the next one starts.
	resCh := make(chan Result, len(exps))
	var consumer sync.WaitGroup
	if r.OnResult != nil {
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for res := range resCh {
				r.OnResult(res)
			}
		}()
	}
	deliver := func(res Result) {
		if r.OnResult != nil {
			resCh <- res
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				e := exps[idx]
				if ctx.Err() != nil {
					res := Result{
						ID: e.ID, Claim: e.Claim,
						Err:     fmt.Errorf("exp: %s skipped: %w", e.ID, context.Cause(ctx)),
						Skipped: true,
					}
					results[idx] = res
					deliver(res)
					continue
				}
				res := r.runOne(e)
				results[idx] = res
				if res.Err != nil {
					fail(res.Err)
				}
				deliver(res)
			}
		}()
	}
	for idx := range exps {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	close(resCh)
	consumer.Wait()

	if firstErr == nil && ctx.Err() != nil {
		firstErr = context.Cause(ctx)
	}
	return results, firstErr
}

// runOne executes a single experiment with its derived seed, converting
// panics into errors so one broken experiment cannot take down the suite.
func (r *Runner) runOne(e Experiment) (res Result) {
	s := r.Scale
	s.Seed = rng.Derive(r.Scale.Seed, uint64(e.Seq))
	if r.ObserveEvery > 0 || r.RecordSpans {
		s.Obs = NewObservation(e.ID, r.ObserveEvery)
		if r.RecordSpans {
			s.Obs.EnableSpans()
		}
	}
	res = Result{ID: e.ID, Claim: e.Claim, Seed: s.Seed}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	allocBefore := ms.TotalAlloc
	start := time.Now()
	defer func() {
		res.Elapsed = time.Since(start)
		runtime.ReadMemStats(&ms)
		if ms.TotalAlloc > allocBefore {
			res.AllocBytes = ms.TotalAlloc - allocBefore
		}
		if p := recover(); p != nil {
			res.Tables = nil
			res.Err = fmt.Errorf("exp: %s panicked: %v\n%s", e.ID, p, debug.Stack())
		}
	}()

	tables, err := e.Run(s)
	if err != nil {
		res.Err = fmt.Errorf("exp: %s: %w", e.ID, err)
		return res
	}
	res.Tables = tables
	if s.Obs != nil {
		if r.ObserveEvery > 0 {
			res.Series = s.Obs.Series()
			res.Registry = s.Obs.Registry()
		}
		res.Spans = s.Obs.SpanSets()
	}
	return res
}
