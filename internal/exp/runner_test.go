package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"offload/internal/metrics"
	"offload/internal/rng"
)

// fakeExperiment builds a deterministic experiment whose single table row
// records the seed it was handed — enough to prove seed derivation and
// ordering without paying for a real simulation.
func fakeExperiment(id string, seq int) Experiment {
	return Experiment{
		ID:  id,
		Seq: seq,
		Run: func(s Scale) ([]*metrics.Table, error) {
			tbl := metrics.NewTable(id, "seed")
			tbl.AddRow(fmt.Sprintf("%d", s.Seed))
			return []*metrics.Table{tbl}, nil
		},
	}
}

// render flattens results into one comparable string, the same way
// offbench renders its CSV output.
func render(results []Result) string {
	var b strings.Builder
	for _, res := range results {
		fmt.Fprintf(&b, "## %s\n", res.ID)
		for _, tbl := range res.Tables {
			b.WriteString(tbl.CSV())
		}
	}
	return b.String()
}

func TestRunnerWorkerCountInvariance(t *testing.T) {
	// The real quick-scale suite, restricted to the fastest experiments so
	// the test stays snappy, must render byte-identically at every worker
	// count — the property CI's determinism gate enforces at full breadth.
	var exps []Experiment
	for _, id := range []string{"E2", "E3", "E16"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	var want string
	for _, workers := range []int{1, 2, 4, 16} {
		r := &Runner{Scale: Quick(), Parallel: workers}
		results, err := r.Run(context.Background(), exps)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		got := render(results)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("parallel=%d output differs from parallel=1", workers)
		}
	}
}

func TestRunnerSeedDerivation(t *testing.T) {
	exps := []Experiment{fakeExperiment("A", 0), fakeExperiment("B", 1), fakeExperiment("C", 7)}
	r := &Runner{Scale: Scale{Seed: 42}, Parallel: 3}
	results, err := r.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[uint64]bool{}
	for i, res := range results {
		want := rng.Derive(42, uint64(exps[i].Seq))
		if res.Seed != want {
			t.Errorf("%s ran with seed %d, want Derive(42, %d) = %d", res.ID, res.Seed, exps[i].Seq, want)
		}
		if !strings.Contains(res.Tables[0].CSV(), fmt.Sprintf("%d", want)) {
			t.Errorf("%s's table does not record the derived seed", res.ID)
		}
		seeds[res.Seed] = true
	}
	if len(seeds) != len(exps) {
		t.Errorf("derived seeds collide: %v", seeds)
	}
	// Results come back in input order regardless of completion order.
	for i, id := range []string{"A", "B", "C"} {
		if results[i].ID != id {
			t.Errorf("results[%d] = %s, want %s", i, results[i].ID, id)
		}
	}
}

func TestRunnerSubsetMatchesFullRun(t *testing.T) {
	// Running one experiment alone reproduces exactly what the full list
	// produced for it: seeds derive from Seq, not list position.
	exps := []Experiment{fakeExperiment("A", 0), fakeExperiment("B", 1), fakeExperiment("C", 2)}
	r := &Runner{Scale: Scale{Seed: 9}, Parallel: 2}
	full, err := r.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := r.Run(context.Background(), exps[2:])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := solo[0].Tables[0].CSV(), full[2].Tables[0].CSV(); got != want {
		t.Errorf("subset run diverged: %q != %q", got, want)
	}
}

func TestRunnerFirstErrorCancelsQueue(t *testing.T) {
	boom := errors.New("boom")
	var ran sync.Map
	slow := func(id string, seq int, err error) Experiment {
		return Experiment{ID: id, Seq: seq, Run: func(s Scale) ([]*metrics.Table, error) {
			ran.Store(id, true)
			return nil, err
		}}
	}
	// One worker: the failure of the first experiment must skip the rest.
	exps := []Experiment{slow("A", 0, boom), slow("B", 1, nil), slow("C", 2, nil)}
	r := &Runner{Scale: Scale{Seed: 1}, Parallel: 1}
	results, err := r.Run(context.Background(), exps)
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if results[0].Err == nil || results[0].Skipped {
		t.Errorf("failed experiment misreported: %+v", results[0])
	}
	for _, res := range results[1:] {
		if !res.Skipped {
			t.Errorf("%s ran after the suite failed", res.ID)
		}
		if res.Err == nil {
			t.Errorf("%s skipped without an error", res.ID)
		}
	}
	if _, bRan := ran.Load("B"); bRan {
		t.Error("B executed despite cancellation")
	}
}

func TestRunnerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blocker := func(id string, seq int) Experiment {
		return Experiment{ID: id, Seq: seq, Run: func(s Scale) ([]*metrics.Table, error) {
			once.Do(func() { close(started) })
			<-release
			return []*metrics.Table{metrics.NewTable(id, "c")}, nil
		}}
	}
	exps := []Experiment{blocker("A", 0), blocker("B", 1), blocker("C", 2)}
	r := &Runner{Scale: Scale{Seed: 1}, Parallel: 1}

	done := make(chan struct{})
	var results []Result
	var err error
	go func() {
		results, err = r.Run(ctx, exps)
		close(done)
	}()
	<-started // A is mid-flight
	cancel()  // cancel the suite while A runs
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	// A was in flight and completes; B and C never start.
	if results[0].Err != nil || results[0].Skipped {
		t.Errorf("in-flight experiment did not complete: %+v", results[0].Err)
	}
	for _, res := range results[1:] {
		if !res.Skipped || !errors.Is(res.Err, context.Canceled) {
			t.Errorf("%s not skipped on cancellation: %+v", res.ID, res.Err)
		}
	}
}

func TestRunnerPanicRecovery(t *testing.T) {
	exps := []Experiment{
		fakeExperiment("A", 0),
		{ID: "P", Seq: 1, Run: func(s Scale) ([]*metrics.Table, error) {
			panic("kaboom")
		}},
	}
	r := &Runner{Scale: Scale{Seed: 1}, Parallel: 2}
	results, err := r.Run(context.Background(), exps)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not surfaced as the suite error: %v", err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured on the result: %v", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), "runner_test.go") {
		t.Errorf("panic error carries no stack trace: %v", results[1].Err)
	}
}

func TestRunnerRecordsStats(t *testing.T) {
	exps := []Experiment{{ID: "S", Seq: 0, Run: func(s Scale) ([]*metrics.Table, error) {
		buf := make([]byte, 1<<20)
		_ = buf
		time.Sleep(time.Millisecond)
		return []*metrics.Table{metrics.NewTable("S", "c")}, nil
	}}}
	r := &Runner{Scale: Scale{Seed: 1}, Parallel: 1}
	results, err := r.Run(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", results[0].Elapsed)
	}
	if results[0].AllocBytes == 0 {
		t.Errorf("AllocBytes = 0, want > 0")
	}
}

func TestRunnerOnResultSerialized(t *testing.T) {
	var exps []Experiment
	for i := 0; i < 8; i++ {
		exps = append(exps, fakeExperiment(fmt.Sprintf("X%d", i), i))
	}
	var seen []string
	var depth atomic.Int32
	r := &Runner{
		Scale:    Scale{Seed: 1},
		Parallel: 4,
		OnResult: func(res Result) {
			// Overlap detector: a second OnResult entering while one is
			// still running means delivery is not serialized. The sleep
			// widens the window so an unserialized runner fails reliably.
			if depth.Add(1) > 1 {
				t.Error("OnResult entered concurrently")
			}
			time.Sleep(200 * time.Microsecond)
			seen = append(seen, res.ID)
			depth.Add(-1)
		},
	}
	if _, err := r.Run(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	// Run must not return before every delivery completed: seen is written
	// only inside OnResult, with no synchronization of its own.
	if len(seen) != len(exps) {
		t.Fatalf("OnResult fired %d times, want %d", len(seen), len(exps))
	}
}
