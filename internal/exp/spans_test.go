package exp

import (
	"bytes"
	"context"
	"testing"
)

// suiteTables renders every experiment's tables at quick scale under the
// given runner settings, keyed by experiment ID.
func suiteTables(t *testing.T, spans bool, parallel int) (map[string]string, []Result) {
	t.Helper()
	r := &Runner{Scale: Quick(), Parallel: parallel, RecordSpans: spans}
	results, err := r.Run(context.Background(), Registry())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(results))
	for _, res := range results {
		var buf bytes.Buffer
		for _, tbl := range res.Tables {
			buf.WriteString(tbl.CSV())
		}
		out[res.ID] = buf.String()
	}
	return out, results
}

// TestSpansAreInertAcrossSuite: recording spans must leave every
// experiment's tables byte-identical — the suite-wide guarantee that
// observability never perturbs results.
func TestSpansAreInertAcrossSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice")
	}
	plain, _ := suiteTables(t, false, 4)
	traced, results := suiteTables(t, true, 4)
	for id, want := range plain {
		if got := traced[id]; got != want {
			t.Errorf("%s: tables differ with spans enabled", id)
		}
	}
	sawSpans := false
	for _, res := range results {
		if len(res.Spans) > 0 {
			sawSpans = true
		}
	}
	if !sawSpans {
		t.Fatal("RecordSpans produced no span sets")
	}
}

// TestSpansDeterministicAcrossParallel: the span export must be
// byte-identical at any worker count — cells run sequentially inside an
// experiment, and seeds derive from registry position, so parallelism
// only reorders completion, never content.
func TestSpansDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the suite twice")
	}
	render := func(parallel int) map[string]string {
		r := &Runner{Scale: Quick(), Parallel: parallel, RecordSpans: true}
		results, err := r.Run(context.Background(), Registry())
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(results))
		for _, res := range results {
			var buf bytes.Buffer
			for _, set := range res.Spans {
				if err := set.WriteJSONL(&buf); err != nil {
					t.Fatal(err)
				}
				if err := set.WriteChromeTrace(&buf); err != nil {
					t.Fatal(err)
				}
			}
			out[res.ID] = buf.String()
		}
		return out
	}
	serial := render(1)
	parallel := render(8)
	for id, want := range serial {
		if got := parallel[id]; got != want {
			t.Errorf("%s: span export differs between -parallel 1 and 8", id)
		}
	}
}
