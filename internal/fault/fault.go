// Package fault is the composable fault model shared by every compute
// substrate (serverless, edge, cloud VM). It layers four failure modes
// behind one Injector interface:
//
//   - i.i.d. transient failures — each invocation independently crashes
//     with probability FailureRate (subsumes the legacy
//     serverless.Config.FailureRate);
//   - a Gilbert–Elliott chain — the substrate alternates between a Good
//     and a Bad state with exponential sojourns, and in the Bad state
//     invocations crash with BadFailRate, producing the bursty,
//     correlated outages real platforms exhibit;
//   - scheduled outage windows — a regional incident of duration D
//     starting at time T rejects every invocation inside the window,
//     optionally followed by a recovery ramp during which capacity comes
//     back server by server instead of all at once;
//   - brown-out windows — a partial-capacity incident: inside the window
//     only a Capacity fraction of the substrate survives, so invocations
//     are rejected with probability 1−Capacity and the survivors run
//     1/Capacity× slower;
//   - straggler slowdowns — with probability StragglerProb an invocation
//     runs slower by a heavy-tailed (Pareto) factor.
//
// Regional, correlated failures are expressed by giving every substrate
// in a region the same schedule (see RegionSchedule) and composing it in
// front of the substrate's own fault model with Chain.
//
// All randomness flows through an injected *rng.Source, so simulations
// remain byte-deterministic under exp.Runner parallelism.
package fault

import (
	"fmt"
	"math"
	"sort"

	"offload/internal/rng"
	"offload/internal/sim"
)

// Decision is the sampled fault outcome for one invocation.
type Decision struct {
	// Crash aborts the invocation with a transient infrastructure error.
	Crash bool
	// CrashFrac is the fraction of the execution completed before the
	// crash, in [0, 1). Zero models an immediate rejection (the substrate
	// is down); larger values model containers dying mid-execution, which
	// still consume — and bill — time.
	CrashFrac float64
	// Slowdown multiplies the invocation's execution time (straggler
	// injection). Always >= 1; exactly 1 means no slowdown. Never set on
	// crashed invocations.
	Slowdown float64
}

// Injector samples one fault Decision per invocation. Implementations are
// deterministic functions of their rng.Source and the (non-decreasing)
// times they are asked about; like the rest of the simulator they are not
// safe for concurrent use.
type Injector interface {
	Decide(now sim.Time) Decision
}

// Window is one scheduled outage: invocations starting inside
// [Start, Start+Duration) are rejected immediately.
type Window struct {
	Start    sim.Time
	Duration sim.Duration
}

// End returns the first instant after the outage.
func (w Window) End() sim.Time { return w.Start.Add(w.Duration) }

// Brownout is one scheduled partial-capacity window: inside it only a
// Capacity fraction of the substrate is alive, so each invocation is
// rejected with probability 1−Capacity and the survivors run
// 1/Capacity× slower on the remaining, oversubscribed units.
type Brownout struct {
	Window
	// Capacity is the surviving fraction of the substrate, in (0, 1).
	Capacity float64
}

// Config describes a composite fault model. The zero value injects
// nothing. Modes compose: an invocation first checks scheduled outages,
// then the Gilbert–Elliott chain, then the i.i.d. coin, and only
// crash-free invocations can be slowed down as stragglers.
type Config struct {
	// FailureRate is the probability an invocation independently dies with
	// a transient error partway through execution. Zero disables.
	FailureRate float64

	// GoodToBadRate and BadToGoodRate are the exponential transition rates
	// (per second) of the Gilbert–Elliott chain; both must be set together.
	// While the chain is Bad, invocations crash with BadFailRate.
	GoodToBadRate float64
	BadToGoodRate float64
	BadFailRate   float64

	// Outages lists scheduled outage windows. They must not overlap; New
	// sorts them by start time.
	Outages []Window

	// RecoveryRamp heals each outage gradually instead of instantly: for
	// this long after an outage window ends, invocations still crash with
	// a probability that decays linearly from 1 to 0 — the region's
	// capacity coming back server by server. Zero keeps instant healing.
	// Requires at least one outage window.
	RecoveryRamp sim.Duration

	// Brownouts lists scheduled partial-capacity windows. They must not
	// overlap each other; New sorts them by start time.
	Brownouts []Brownout

	// StragglerProb slows an invocation down with this probability by a
	// Pareto(StragglerFactor, StragglerAlpha) multiplier, so the typical
	// straggler runs StragglerFactor× slower and the tail is heavy.
	StragglerProb   float64
	StragglerFactor float64
	StragglerAlpha  float64
}

// Enabled reports whether the configuration injects anything at all.
func (c Config) Enabled() bool {
	return c.FailureRate > 0 || c.GoodToBadRate > 0 ||
		len(c.Outages) > 0 || len(c.Brownouts) > 0 || c.StragglerProb > 0
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	for _, v := range []float64{
		c.FailureRate, c.GoodToBadRate, c.BadToGoodRate, c.BadFailRate,
		c.StragglerProb, c.StragglerFactor, c.StragglerAlpha,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fault: non-finite parameter %g", v)
		}
	}
	switch {
	case c.FailureRate < 0 || c.FailureRate >= 1:
		return fmt.Errorf("fault: failure rate %g outside [0,1)", c.FailureRate)
	case c.GoodToBadRate < 0 || c.BadToGoodRate < 0:
		return fmt.Errorf("fault: negative chain transition rate")
	case (c.GoodToBadRate > 0) != (c.BadToGoodRate > 0):
		return fmt.Errorf("fault: both chain transition rates must be set together")
	case c.GoodToBadRate > 0 && (c.BadFailRate <= 0 || c.BadFailRate > 1):
		return fmt.Errorf("fault: bad-state failure rate %g outside (0,1]", c.BadFailRate)
	case c.GoodToBadRate == 0 && c.BadFailRate != 0:
		return fmt.Errorf("fault: bad-state failure rate without a chain")
	case c.StragglerProb < 0 || c.StragglerProb >= 1:
		return fmt.Errorf("fault: straggler probability %g outside [0,1)", c.StragglerProb)
	case c.StragglerProb > 0 && c.StragglerFactor < 1:
		return fmt.Errorf("fault: straggler factor %g below 1", c.StragglerFactor)
	case c.StragglerProb > 0 && c.StragglerAlpha <= 0:
		return fmt.Errorf("fault: straggler alpha %g not positive", c.StragglerAlpha)
	case c.StragglerProb == 0 && (c.StragglerFactor != 0 || c.StragglerAlpha != 0):
		return fmt.Errorf("fault: straggler parameters without a probability")
	case math.IsNaN(float64(c.RecoveryRamp)) || math.IsInf(float64(c.RecoveryRamp), 0) || c.RecoveryRamp < 0:
		return fmt.Errorf("fault: recovery ramp %g not finite and non-negative", float64(c.RecoveryRamp))
	case c.RecoveryRamp > 0 && len(c.Outages) == 0:
		return fmt.Errorf("fault: recovery ramp without an outage window")
	}
	sorted := sortedWindows(c.Outages)
	for i, w := range sorted {
		if !(w.Start >= 0) || !(w.Duration > 0) ||
			math.IsInf(float64(w.Start), 0) || math.IsInf(float64(w.Duration), 0) {
			return fmt.Errorf("fault: outage window %d (start %g, duration %g) not positive and finite",
				i, float64(w.Start), float64(w.Duration))
		}
		if i > 0 && w.Start < sorted[i-1].End().Add(c.RecoveryRamp) {
			return fmt.Errorf("fault: outage windows (including recovery ramps) overlap at %g", float64(w.Start))
		}
	}
	browns := sortedBrownouts(c.Brownouts)
	for i, b := range browns {
		if !(b.Start >= 0) || !(b.Duration > 0) ||
			math.IsInf(float64(b.Start), 0) || math.IsInf(float64(b.Duration), 0) {
			return fmt.Errorf("fault: brownout window %d (start %g, duration %g) not positive and finite",
				i, float64(b.Start), float64(b.Duration))
		}
		if math.IsNaN(b.Capacity) || b.Capacity <= 0 || b.Capacity >= 1 {
			return fmt.Errorf("fault: brownout capacity %g outside (0,1)", b.Capacity)
		}
		if i > 0 && b.Start < browns[i-1].End() {
			return fmt.Errorf("fault: brownout windows overlap at %g", float64(b.Start))
		}
	}
	return nil
}

func sortedWindows(ws []Window) []Window {
	out := make([]Window, len(ws))
	copy(out, ws)
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

func sortedBrownouts(bs []Brownout) []Brownout {
	out := make([]Brownout, len(bs))
	copy(out, bs)
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// injector is the composite Injector behind New and IID.
type injector struct {
	src *rng.Source
	cfg Config

	outages []Window // sorted by start
	outIdx  int      // first window whose ramp (end + RecoveryRamp) is still in the future

	brownouts []Brownout // sorted by start
	boIdx     int        // first brownout whose end is still in the future

	chainInit      bool
	bad            bool
	nextTransition sim.Time
}

// New returns an Injector for cfg drawing from src. A disabled
// configuration yields a nil Injector (inject nothing) and no error.
func New(src *rng.Source, cfg Config) (Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if src == nil {
		return nil, fmt.Errorf("fault: nil rng source")
	}
	return &injector{
		src:       src,
		cfg:       cfg,
		outages:   sortedWindows(cfg.Outages),
		brownouts: sortedBrownouts(cfg.Brownouts),
	}, nil
}

// IID returns an injector with only the memoryless per-invocation failure
// mode — the exact legacy serverless.Config.FailureRate behaviour,
// including its draw order (one Bool per invocation, one extra Float64 on
// a crash), so simulations that predate this package reproduce their old
// byte-identical output.
func IID(src *rng.Source, rate float64) Injector {
	inj, err := New(src, Config{FailureRate: rate})
	if err != nil {
		panic(err)
	}
	return inj
}

// Decide implements Injector. Draw order is part of the package contract:
// scheduled outages consume no randomness; a recovery ramp draws one Bool
// while it is live; a brownout draws one Bool (its slowdown is
// deterministic); the chain draws its sojourns lazily plus one Bool (and
// one Float64 on crash) in the Bad state; the i.i.d. mode draws one Bool
// (and one Float64 on crash); stragglers draw one Bool (and one Pareto
// variate when slowed). Modes left unset draw nothing, so extending a
// configuration never perturbs the byte stream of the modes it already
// used.
func (i *injector) Decide(now sim.Time) Decision {
	d := Decision{Slowdown: 1}
	if i.inOutage(now) {
		d.Crash = true
		return d
	}
	if p := i.rampCrashProb(now); p > 0 && i.src.Bool(p) {
		// A rejected arrival during the ramp: the instance it hashed to is
		// not back yet, so the invocation bounces immediately.
		d.Crash = true
		return d
	}
	if f, ok := i.inBrownout(now); ok {
		if i.src.Bool(1 - f) {
			// The invocation landed on lost capacity and bounces.
			d.Crash = true
			return d
		}
		d.Slowdown = 1 / f
	}
	if i.cfg.GoodToBadRate > 0 {
		i.advanceChain(now)
		if i.bad && i.src.Bool(i.cfg.BadFailRate) {
			d.Crash = true
			d.CrashFrac = i.src.Float64()
			return d
		}
	}
	if i.cfg.FailureRate > 0 && i.src.Bool(i.cfg.FailureRate) {
		d.Crash = true
		d.CrashFrac = i.src.Float64()
		return d
	}
	if i.cfg.StragglerProb > 0 && i.src.Bool(i.cfg.StragglerProb) {
		d.Slowdown *= i.src.Pareto(i.cfg.StragglerFactor, i.cfg.StragglerAlpha)
	}
	return d
}

// inOutage reports whether now falls inside a scheduled outage window,
// discarding windows whose recovery ramp has fully played out.
func (i *injector) inOutage(now sim.Time) bool {
	for i.outIdx < len(i.outages) && now >= i.outages[i.outIdx].End().Add(i.cfg.RecoveryRamp) {
		i.outIdx++
	}
	return i.outIdx < len(i.outages) &&
		now >= i.outages[i.outIdx].Start && now < i.outages[i.outIdx].End()
}

// rampCrashProb returns the crash probability of the recovery ramp at
// now: 1 at the moment an outage window ends, decaying linearly to 0
// over RecoveryRamp. Zero outside any ramp (or with no ramp configured).
// Must be called after inOutage, which positions outIdx on the window
// whose ramp could still be live.
func (i *injector) rampCrashProb(now sim.Time) float64 {
	if i.cfg.RecoveryRamp <= 0 || i.outIdx >= len(i.outages) {
		return 0
	}
	end := i.outages[i.outIdx].End()
	if now < end {
		return 0
	}
	return 1 - float64(now.Sub(end))/float64(i.cfg.RecoveryRamp)
}

// inBrownout returns the surviving capacity fraction if now falls inside
// a scheduled brownout window, discarding windows that already ended.
func (i *injector) inBrownout(now sim.Time) (float64, bool) {
	for i.boIdx < len(i.brownouts) && now >= i.brownouts[i.boIdx].End() {
		i.boIdx++
	}
	if i.boIdx < len(i.brownouts) && now >= i.brownouts[i.boIdx].Start {
		return i.brownouts[i.boIdx].Capacity, true
	}
	return 0, false
}

// advanceChain moves the Gilbert–Elliott chain to now, flipping states at
// their sampled sojourn boundaries (same construction as the network
// path's degradation chain). The chain starts Good at the first decision.
func (i *injector) advanceChain(now sim.Time) {
	if !i.chainInit {
		i.chainInit = true
		i.nextTransition = now.Add(sim.Duration(i.src.Exp(i.cfg.GoodToBadRate)))
	}
	for i.nextTransition <= now {
		at := i.nextTransition
		i.bad = !i.bad
		rate := i.cfg.GoodToBadRate
		if i.bad {
			rate = i.cfg.BadToGoodRate
		}
		next := at.Add(sim.Duration(i.src.Exp(rate)))
		if next <= at {
			// The sampled sojourn underflowed at this magnitude of virtual
			// time (an extreme transition rate). Step just past now so the
			// loop always terminates.
			next = sim.Time(math.Nextafter(float64(now), math.Inf(1)))
		}
		i.nextTransition = next
	}
}
