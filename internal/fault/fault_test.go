package fault

import (
	"testing"

	"offload/internal/rng"
	"offload/internal/sim"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"failure rate 1", Config{FailureRate: 1}},
		{"negative failure rate", Config{FailureRate: -0.1}},
		{"only one chain rate", Config{GoodToBadRate: 0.1, BadFailRate: 0.5}},
		{"chain without bad rate", Config{GoodToBadRate: 0.1, BadToGoodRate: 0.2}},
		{"bad fail rate above 1", Config{GoodToBadRate: 0.1, BadToGoodRate: 0.2, BadFailRate: 1.5}},
		{"bad fail rate without chain", Config{BadFailRate: 0.5}},
		{"negative chain rate", Config{GoodToBadRate: -1, BadToGoodRate: 1, BadFailRate: 0.5}},
		{"straggler prob 1", Config{StragglerProb: 1, StragglerFactor: 2, StragglerAlpha: 1}},
		{"straggler factor below 1", Config{StragglerProb: 0.1, StragglerFactor: 0.5, StragglerAlpha: 1}},
		{"straggler alpha zero", Config{StragglerProb: 0.1, StragglerFactor: 2}},
		{"straggler params without prob", Config{StragglerFactor: 2, StragglerAlpha: 1}},
		{"zero-length outage", Config{Outages: []Window{{Start: 5}}}},
		{"negative outage start", Config{Outages: []Window{{Start: -1, Duration: 2}}}},
		{"overlapping outages", Config{Outages: []Window{
			{Start: 0, Duration: 10}, {Start: 5, Duration: 10}}}},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.cfg)
		}
		if _, err := New(rng.New(1), c.cfg); err == nil {
			t.Errorf("%s: New accepted %+v", c.name, c.cfg)
		}
	}
}

func TestDisabledConfigYieldsNilInjector(t *testing.T) {
	inj, err := New(rng.New(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Fatalf("disabled config produced injector %v", inj)
	}
}

// TestIIDMatchesLegacyDraws pins the compatibility contract: the i.i.d.
// mode consumes exactly one Bool(rate) per decision plus one Float64 on a
// crash, in that order — the draw pattern the serverless platform used
// before this package existed, which keeps old goldens byte-identical.
func TestIIDMatchesLegacyDraws(t *testing.T) {
	const rate = 0.3
	inj := IID(rng.New(42), rate)
	legacy := rng.New(42)
	for i := 0; i < 5000; i++ {
		d := inj.Decide(sim.Time(i))
		crash := legacy.Bool(rate)
		frac := 0.0
		if crash {
			frac = legacy.Float64()
		}
		if d.Crash != crash || d.CrashFrac != frac {
			t.Fatalf("decision %d diverged: got (%v, %g), legacy (%v, %g)",
				i, d.Crash, d.CrashFrac, crash, frac)
		}
		if d.Slowdown != 1 {
			t.Fatalf("decision %d: iid slowdown %g", i, d.Slowdown)
		}
	}
}

func TestIIDRate(t *testing.T) {
	const rate = 0.2
	inj := IID(rng.New(7), rate)
	crashes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		d := inj.Decide(sim.Time(i))
		if d.Crash {
			crashes++
			if d.CrashFrac < 0 || d.CrashFrac >= 1 {
				t.Fatalf("crash fraction %g outside [0,1)", d.CrashFrac)
			}
		}
	}
	got := float64(crashes) / n
	if got < 0.18 || got > 0.22 {
		t.Fatalf("observed crash rate %g, want ~%g", got, rate)
	}
}

func TestScheduledOutages(t *testing.T) {
	// Deliberately unsorted input: New must sort.
	inj, err := New(rng.New(1), Config{Outages: []Window{
		{Start: 100, Duration: 50},
		{Start: 10, Duration: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at    sim.Time
		crash bool
	}{
		{0, false}, {9.99, false}, {10, true}, {15, true}, {19.99, true},
		{20, false}, {99, false}, {100, true}, {149, true}, {150, false}, {1e6, false},
	}
	for _, c := range cases {
		d := inj.Decide(c.at)
		if d.Crash != c.crash {
			t.Errorf("at %g: crash=%v, want %v", float64(c.at), d.Crash, c.crash)
		}
		if d.Crash && d.CrashFrac != 0 {
			t.Errorf("at %g: outage crash fraction %g, want 0 (immediate rejection)",
				float64(c.at), d.CrashFrac)
		}
	}
}

// TestGilbertElliottBurstiness drives the chain at one decision per second
// and checks both the marginal failure rate (≈ the chain's stationary Bad
// probability, since BadFailRate is 1) and that the failures cluster into
// far fewer runs than independent failures would produce.
func TestGilbertElliottBurstiness(t *testing.T) {
	cfg := Config{GoodToBadRate: 0.02, BadToGoodRate: 0.1, BadFailRate: 1}
	inj, err := New(rng.New(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	crashes, runs := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		d := inj.Decide(sim.Time(i))
		if d.Crash {
			crashes++
			if !prev {
				runs++
			}
		}
		prev = d.Crash
	}
	stationary := cfg.GoodToBadRate / (cfg.GoodToBadRate + cfg.BadToGoodRate) // ≈ 0.167
	got := float64(crashes) / n
	if got < stationary*0.8 || got > stationary*1.2 {
		t.Fatalf("marginal failure rate %g, want ~%g", got, stationary)
	}
	// Mean Bad sojourn is 10 s = 10 consecutive decisions per outage burst.
	// Independent failures at the same marginal rate would give
	// crashes·(1-rate) ≈ 0.83·crashes runs; the chain must produce far
	// fewer, longer runs.
	if runs == 0 || float64(crashes)/float64(runs) < 5 {
		t.Fatalf("failures not bursty: %d crashes in %d runs", crashes, runs)
	}
}

func TestStragglerSlowdowns(t *testing.T) {
	cfg := Config{StragglerProb: 0.25, StragglerFactor: 4, StragglerAlpha: 1.5}
	inj, err := New(rng.New(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	slowed := 0
	for i := 0; i < n; i++ {
		d := inj.Decide(sim.Time(i))
		if d.Crash {
			t.Fatal("straggler-only config crashed")
		}
		if d.Slowdown < 1 {
			t.Fatalf("slowdown %g below 1", d.Slowdown)
		}
		if d.Slowdown > 1 {
			slowed++
			if d.Slowdown < cfg.StragglerFactor {
				t.Fatalf("straggler slowdown %g below the Pareto minimum %g",
					d.Slowdown, cfg.StragglerFactor)
			}
		}
	}
	got := float64(slowed) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("straggler fraction %g, want ~%g", got, cfg.StragglerProb)
	}
}

// TestCompositeDeterminism: two injectors with identical seeds and configs
// produce identical decision sequences — the property exp.Runner
// parallelism rests on.
func TestCompositeDeterminism(t *testing.T) {
	cfg := Config{
		FailureRate:   0.05,
		GoodToBadRate: 0.01, BadToGoodRate: 0.1, BadFailRate: 0.9,
		Outages:       []Window{{Start: 500, Duration: 100}},
		StragglerProb: 0.1, StragglerFactor: 2, StragglerAlpha: 1.2,
	}
	a, err := New(rng.New(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(rng.New(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		at := sim.Time(float64(i) * 0.7)
		da, db := a.Decide(at), b.Decide(at)
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

// TestCompositeOutagePrecedence: inside a scheduled window every decision
// crashes regardless of the other modes, and no randomness is consumed, so
// the post-outage stream is unaffected by the outage length.
func TestCompositeOutagePrecedence(t *testing.T) {
	cfg := Config{
		FailureRate: 0.05,
		Outages:     []Window{{Start: 10, Duration: 100}},
	}
	inj, err := New(rng.New(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for at := sim.Time(10); at < 110; at += 1 {
		if d := inj.Decide(at); !d.Crash {
			t.Fatalf("no crash inside outage at %g", float64(at))
		}
	}
	// The stream after the outage must equal a run that never entered the
	// window (outages draw nothing).
	ref, err := New(rng.New(9), Config{FailureRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		at := sim.Time(200 + i)
		if d, r := inj.Decide(at), ref.Decide(at); d != r {
			t.Fatalf("post-outage decision %d diverged: %+v vs %+v", i, d, r)
		}
	}
}
