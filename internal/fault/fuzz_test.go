package fault

import (
	"math"
	"testing"

	"offload/internal/rng"
	"offload/internal/sim"
)

// FuzzFaultInjector checks the injector's invariants over arbitrary
// configurations and decision times: any configuration that passes
// Validate must never panic, never emit a crash fraction outside [0,1),
// never emit a slowdown below 1, and never slow down a crashed invocation.
func FuzzFaultInjector(f *testing.F) {
	f.Add(uint64(1), 0.1, 0.01, 0.1, 0.5, 0.05, 4.0, 1.5, 20.0, 60.0, 0.7)
	f.Add(uint64(2), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0, 1.0)
	f.Add(uint64(3), 0.99, 1000.0, 1000.0, 1.0, 0.99, 1.0, 0.001, 0.0, 0.0, 1e9)
	f.Add(uint64(4), 0.5, 1e-9, 1e9, 0.5, 0.0, 0.0, 0.0, 1e6, 1e-9, 1e-9)
	f.Fuzz(func(t *testing.T, seed uint64,
		failRate, g2b, b2g, badRate,
		stragProb, stragFactor, stragAlpha,
		outStart, outDur, step float64) {
		cfg := Config{
			FailureRate:   failRate,
			GoodToBadRate: g2b, BadToGoodRate: b2g, BadFailRate: badRate,
			StragglerProb: stragProb, StragglerFactor: stragFactor, StragglerAlpha: stragAlpha,
		}
		if outDur > 0 {
			cfg.Outages = []Window{
				{Start: sim.Time(outStart), Duration: sim.Duration(outDur)},
				{Start: sim.Time(outStart) + sim.Time(2*outDur), Duration: sim.Duration(outDur)},
			}
		}
		if err := cfg.Validate(); err != nil {
			// Validate must reject exactly what New rejects.
			if _, nerr := New(rng.New(seed), cfg); nerr == nil {
				t.Fatalf("Validate rejected (%v) but New accepted %+v", err, cfg)
			}
			t.Skip()
		}
		inj, err := New(rng.New(seed), cfg)
		if err != nil {
			t.Fatalf("Validate accepted but New rejected %+v: %v", cfg, err)
		}
		if inj == nil {
			if cfg.Enabled() {
				t.Fatalf("enabled config %+v produced nil injector", cfg)
			}
			t.Skip()
		}
		if step < 0 || math.IsNaN(step) || math.IsInf(step, 0) {
			step = 1
		}
		now := sim.Time(0)
		for i := 0; i < 300; i++ {
			d := inj.Decide(now)
			if d.CrashFrac < 0 || d.CrashFrac >= 1 || math.IsNaN(d.CrashFrac) {
				t.Fatalf("decision %d at %g: crash fraction %g outside [0,1)", i, float64(now), d.CrashFrac)
			}
			if d.Slowdown < 1 || math.IsNaN(d.Slowdown) {
				t.Fatalf("decision %d at %g: slowdown %g below 1", i, float64(now), d.Slowdown)
			}
			if d.Crash && d.Slowdown != 1 {
				t.Fatalf("decision %d at %g: crashed invocation slowed down %g", i, float64(now), d.Slowdown)
			}
			if !d.Crash && d.CrashFrac != 0 {
				t.Fatalf("decision %d at %g: crash fraction %g without a crash", i, float64(now), d.CrashFrac)
			}
			next := now.Add(sim.Duration(step))
			if next < now { // overflow to -Inf or wrap: keep time monotonic
				break
			}
			now = next
		}
	})
}
