package fault

import (
	"math"
	"testing"

	"offload/internal/rng"
	"offload/internal/sim"
)

// FuzzFaultInjector checks the injector's invariants over arbitrary
// configurations and decision times: any configuration that passes
// Validate must never panic, never emit a crash fraction outside [0,1),
// never emit a slowdown below 1, and never slow down a crashed invocation.
// The corpus spans every mode, including recovery ramps and brownouts,
// and a regional chain of the same configuration behind a pure window
// schedule must satisfy the same invariants.
func FuzzFaultInjector(f *testing.F) {
	f.Add(uint64(1), 0.1, 0.01, 0.1, 0.5, 0.05, 4.0, 1.5, 20.0, 60.0, 0.7, 10.0, 200.0, 30.0, 0.3)
	f.Add(uint64(2), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0, 1.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(3), 0.99, 1000.0, 1000.0, 1.0, 0.99, 1.0, 0.001, 0.0, 0.0, 1e9, 0.0, 1.0, 1e6, 0.999)
	f.Add(uint64(4), 0.5, 1e-9, 1e9, 0.5, 0.0, 0.0, 0.0, 1e6, 1e-9, 1e-9, 1e-9, 0.0, 0.0, 1e-9)
	f.Add(uint64(5), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 0.5, 1e9, 8.0, 4.0, 0.5)
	f.Fuzz(func(t *testing.T, seed uint64,
		failRate, g2b, b2g, badRate,
		stragProb, stragFactor, stragAlpha,
		outStart, outDur, step,
		ramp, boStart, boDur, boCap float64) {
		cfg := Config{
			FailureRate:   failRate,
			GoodToBadRate: g2b, BadToGoodRate: b2g, BadFailRate: badRate,
			StragglerProb: stragProb, StragglerFactor: stragFactor, StragglerAlpha: stragAlpha,
		}
		if outDur > 0 {
			cfg.Outages = []Window{
				{Start: sim.Time(outStart), Duration: sim.Duration(outDur)},
				{Start: sim.Time(outStart) + sim.Time(2*outDur), Duration: sim.Duration(outDur)},
			}
			cfg.RecoveryRamp = sim.Duration(ramp)
		}
		if boDur > 0 {
			cfg.Brownouts = []Brownout{{
				Window:   Window{Start: sim.Time(boStart), Duration: sim.Duration(boDur)},
				Capacity: boCap,
			}}
		}
		if err := cfg.Validate(); err != nil {
			// Validate must reject exactly what New rejects.
			if _, nerr := New(rng.New(seed), cfg); nerr == nil {
				t.Fatalf("Validate rejected (%v) but New accepted %+v", err, cfg)
			}
			t.Skip()
		}
		inj, err := New(rng.New(seed), cfg)
		if err != nil {
			t.Fatalf("Validate accepted but New rejected %+v: %v", cfg, err)
		}
		if inj == nil {
			if cfg.Enabled() {
				t.Fatalf("enabled config %+v produced nil injector", cfg)
			}
			t.Skip()
		}
		if step < 0 || math.IsNaN(step) || math.IsInf(step, 0) {
			step = 1
		}
		check := func(label string, inj Injector) {
			now := sim.Time(0)
			for i := 0; i < 300; i++ {
				d := inj.Decide(now)
				if d.CrashFrac < 0 || d.CrashFrac >= 1 || math.IsNaN(d.CrashFrac) {
					t.Fatalf("%s decision %d at %g: crash fraction %g outside [0,1)", label, i, float64(now), d.CrashFrac)
				}
				if d.Slowdown < 1 || math.IsNaN(d.Slowdown) {
					t.Fatalf("%s decision %d at %g: slowdown %g below 1", label, i, float64(now), d.Slowdown)
				}
				if d.Crash && d.Slowdown != 1 {
					t.Fatalf("%s decision %d at %g: crashed invocation slowed down %g", label, i, float64(now), d.Slowdown)
				}
				if !d.Crash && d.CrashFrac != 0 {
					t.Fatalf("%s decision %d at %g: crash fraction %g without a crash", label, i, float64(now), d.CrashFrac)
				}
				next := now.Add(sim.Duration(step))
				if next < now { // overflow to -Inf or wrap: keep time monotonic
					break
				}
				now = next
			}
		}
		check("plain", inj)
		// The same configuration behind a regional window schedule (the
		// shape core.installRegions builds) must hold the same invariants.
		regional, err := New(rng.New(seed+1), Config{
			Outages: []Window{{Start: 3, Duration: 4}},
		})
		if err != nil {
			t.Fatalf("regional window schedule rejected: %v", err)
		}
		fresh, err := New(rng.New(seed), cfg)
		if err != nil {
			t.Fatalf("accepted config rejected on rebuild: %v", err)
		}
		check("chained", Chain(regional, fresh))
	})
}
