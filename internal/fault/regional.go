package fault

import (
	"fmt"
	"strings"

	"offload/internal/sim"
)

// RegionSchedule is a correlated fault schedule for one named region:
// every substrate homed in the region shares the same outage windows,
// recovery ramp and brownouts, so a regional incident takes them down
// together. Each substrate still gets its own injector (own rng stream)
// built from Config; the correlation is in the shared schedule, which
// consumes no randomness for the outage windows themselves.
type RegionSchedule struct {
	// Region names the region the schedule applies to.
	Region string
	// Outages lists full-region outage windows.
	Outages []Window
	// RecoveryRamp heals each outage gradually; see Config.RecoveryRamp.
	RecoveryRamp sim.Duration
	// Brownouts lists partial-capacity windows; see Brownout.
	Brownouts []Brownout
}

// Config returns the schedule as an injector configuration, ready for New.
func (rs RegionSchedule) Config() Config {
	return Config{
		Outages:      rs.Outages,
		RecoveryRamp: rs.RecoveryRamp,
		Brownouts:    rs.Brownouts,
	}
}

// Validate reports whether the schedule is usable.
func (rs RegionSchedule) Validate() error {
	if rs.Region == "" {
		return fmt.Errorf("fault: region schedule without a region name")
	}
	if !rs.Config().Enabled() {
		return fmt.Errorf("fault: region schedule for %q injects nothing", rs.Region)
	}
	return rs.Config().Validate()
}

// chain is the composite injector behind Chain.
type chain struct {
	injs []Injector
}

// Chain composes independent injectors into one. Decide consults each
// injector in order and returns the first crash; surviving slowdowns
// multiply. The order contract follows from the per-injector draw order:
// injectors that consume no randomness (pure window schedules, such as a
// RegionSchedule's outages) commute, but once an injector draws, a crash
// earlier in the chain short-circuits the draws of everything after it —
// so chains of drawing injectors are order-dependent by this documented
// rule. Nil injectors (disabled configs) are dropped; a chain of zero
// injectors is nil and a chain of one is that injector itself.
func Chain(injs ...Injector) Injector {
	live := make([]Injector, 0, len(injs))
	for _, in := range injs {
		if in != nil {
			live = append(live, in)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &chain{injs: live}
}

// Decide implements Injector: first crash wins, slowdowns multiply.
func (c *chain) Decide(now sim.Time) Decision {
	d := Decision{Slowdown: 1}
	for _, in := range c.injs {
		step := in.Decide(now)
		if step.Crash {
			return Decision{Crash: true, CrashFrac: step.CrashFrac, Slowdown: 1}
		}
		d.Slowdown *= step.Slowdown
	}
	return d
}

// Describe renders the configuration's composed injector stack, one line
// per mode in Decide's draw order, for operator tooling (offctl faults).
// A disabled configuration describes to nothing.
func (c Config) Describe() []string {
	var lines []string
	add := func(kind, format string, args ...any) {
		lines = append(lines, fmt.Sprintf("%-10s %s", kind, fmt.Sprintf(format, args...)))
	}
	for _, w := range sortedWindows(c.Outages) {
		if c.RecoveryRamp > 0 {
			add("outage", "%s ramp=%s", window(w), seconds(sim.Time(c.RecoveryRamp)))
			continue
		}
		add("outage", "%s", window(w))
	}
	for _, b := range sortedBrownouts(c.Brownouts) {
		add("brownout", "%s capacity=%g", window(b.Window), b.Capacity)
	}
	if c.GoodToBadRate > 0 {
		add("chain", "good→bad=%g/s bad→good=%g/s bad_fail=%g",
			c.GoodToBadRate, c.BadToGoodRate, c.BadFailRate)
	}
	if c.FailureRate > 0 {
		add("iid", "failure_rate=%g", c.FailureRate)
	}
	if c.StragglerProb > 0 {
		add("straggler", "p=%g factor=%g alpha=%g",
			c.StragglerProb, c.StragglerFactor, c.StragglerAlpha)
	}
	return lines
}

// window renders one schedule window as a half-open interval.
func window(w Window) string {
	return fmt.Sprintf("[%s, %s)", seconds(w.Start), seconds(w.End()))
}

// seconds renders a sim time compactly with an explicit unit.
func seconds(t sim.Time) string {
	s := strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", float64(t)), "0"), ".")
	return s + "s"
}
