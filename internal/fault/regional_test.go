package fault

import (
	"testing"

	"offload/internal/rng"
	"offload/internal/sim"
)

// decisions samples inj at the given times.
func decisions(inj Injector, times []sim.Time) []Decision {
	out := make([]Decision, len(times))
	for i, at := range times {
		out[i] = inj.Decide(at)
	}
	return out
}

// sameDecisions compares two decision sequences elementwise.
func sameDecisions(t *testing.T, label string, a, b []Decision) {
	t.Helper()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: decision %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// ticks returns n times spaced step apart from 0.
func ticks(n int, step sim.Duration) []sim.Time {
	out := make([]sim.Time, n)
	now := sim.Time(0)
	for i := range out {
		out[i] = now
		now = now.Add(step)
	}
	return out
}

// TestOutageOrderInsensitive is the composition-order property for pure
// window schedules: the declaration order of outage and brownout windows
// never changes a decision, because New sorts them and the windows draw
// no randomness that could go out of sync.
func TestOutageOrderInsensitive(t *testing.T) {
	sorted := Config{
		Outages:   []Window{{Start: 10, Duration: 5}, {Start: 30, Duration: 5}, {Start: 50, Duration: 5}},
		Brownouts: []Brownout{{Window{Start: 70, Duration: 5}, 0.5}, {Window{Start: 90, Duration: 5}, 0.25}},
	}
	shuffled := Config{
		Outages:   []Window{{Start: 50, Duration: 5}, {Start: 10, Duration: 5}, {Start: 30, Duration: 5}},
		Brownouts: []Brownout{{Window{Start: 90, Duration: 5}, 0.25}, {Window{Start: 70, Duration: 5}, 0.5}},
	}
	a, err := New(rng.New(11), sorted)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(rng.New(11), shuffled)
	if err != nil {
		t.Fatal(err)
	}
	times := ticks(200, 0.5)
	sameDecisions(t, "sorted vs shuffled", decisions(a, times), decisions(b, times))
}

// TestChainWindowOnlyCommutes pins the documented Chain order contract:
// injectors that draw no randomness commute.
func TestChainWindowOnlyCommutes(t *testing.T) {
	mk := func(cfg Config, seed uint64) Injector {
		inj, err := New(rng.New(seed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	east := Config{Outages: []Window{{Start: 10, Duration: 10}}}
	west := Config{Outages: []Window{{Start: 40, Duration: 10}}}
	ab := Chain(mk(east, 1), mk(west, 2))
	ba := Chain(mk(west, 2), mk(east, 1))
	times := ticks(120, 0.5)
	sameDecisions(t, "chain order", decisions(ab, times), decisions(ba, times))
}

// TestChainShortCircuitPreservesLaterStream pins the other half of the
// contract: a window crash early in the chain short-circuits the draws
// of everything after it, so the later injector's rng stream is exactly
// the stream of a standalone injector consulted only outside the window.
func TestChainShortCircuitPreservesLaterStream(t *testing.T) {
	outage := Config{Outages: []Window{{Start: 10, Duration: 10}}}
	iid := Config{FailureRate: 0.3}
	oinj, err := New(rng.New(5), outage)
	if err != nil {
		t.Fatal(err)
	}
	chained, err2 := New(rng.New(77), iid)
	if err2 != nil {
		t.Fatal(err2)
	}
	alone, err3 := New(rng.New(77), iid)
	if err3 != nil {
		t.Fatal(err3)
	}
	ch := Chain(oinj, chained)
	var got, want []Decision
	for _, at := range ticks(120, 0.5) {
		d := ch.Decide(at)
		if at >= 10 && at < 20 {
			if !d.Crash {
				t.Fatalf("no crash inside the outage window at %g", float64(at))
			}
			continue // the standalone injector is not consulted here
		}
		got = append(got, d)
		want = append(want, alone.Decide(at))
	}
	sameDecisions(t, "outside-window stream", got, want)
}

// TestChainDegenerateForms pins Chain's nil handling.
func TestChainDegenerateForms(t *testing.T) {
	if Chain() != nil {
		t.Error("empty chain not nil")
	}
	if Chain(nil, nil) != nil {
		t.Error("all-nil chain not nil")
	}
	inj, err := New(rng.New(1), Config{FailureRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if Chain(nil, inj, nil) != inj {
		t.Error("single-injector chain not the injector itself")
	}
}

// TestChainSlowdownsMultiply pins slowdown composition across surviving
// chain steps.
func TestChainSlowdownsMultiply(t *testing.T) {
	a, err := New(rng.New(1), Config{Brownouts: []Brownout{{Window{Start: 0, Duration: 100}, 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err2 := New(rng.New(2), Config{Brownouts: []Brownout{{Window{Start: 0, Duration: 100}, 0.25}}})
	if err2 != nil {
		t.Fatal(err2)
	}
	ch := Chain(a, b)
	found := false
	for _, at := range ticks(400, 0.25) {
		d := ch.Decide(at)
		if d.Crash {
			continue
		}
		// A double survivor compounds 1/0.5 × 1/0.25 = 8.
		if d.Slowdown == 8 {
			found = true
		}
		if d.Slowdown != 1 && d.Slowdown != 2 && d.Slowdown != 4 && d.Slowdown != 8 {
			t.Fatalf("slowdown %g at %g not a product of the step slowdowns", d.Slowdown, float64(at))
		}
	}
	if !found {
		t.Error("no invocation survived both brownouts with compounded slowdown")
	}
}

// TestBrownoutCapacity pins the brownout model: inside the window,
// roughly Capacity of invocations survive and each survivor runs 1/f
// slower; outside, nothing happens.
func TestBrownoutCapacity(t *testing.T) {
	inj, err := New(rng.New(9), Config{
		Brownouts: []Brownout{{Window{Start: 10, Duration: 100}, 0.3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	crashed, survived := 0, 0
	for i := 0; i < 4000; i++ {
		at := sim.Time(10).Add(sim.Duration(float64(i) * 0.025))
		d := inj.Decide(at)
		if d.Crash {
			crashed++
			continue
		}
		survived++
		if want := 1 / 0.3; d.Slowdown < want*0.999 || d.Slowdown > want*1.001 {
			t.Fatalf("survivor slowdown %g, want %g", d.Slowdown, want)
		}
	}
	frac := float64(survived) / float64(crashed+survived)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("survival fraction %.3f, want ≈ 0.3", frac)
	}
	if d := inj.Decide(200); d.Crash || d.Slowdown != 1 {
		t.Fatalf("decision %+v outside the window, want benign", d)
	}
}

// TestRecoveryRampHeals pins the ramp: fully dark inside the window,
// decaying crash probability inside the ramp, fully healed after it.
func TestRecoveryRampHeals(t *testing.T) {
	inj, err := New(rng.New(3), Config{
		Outages:      []Window{{Start: 10, Duration: 10}},
		RecoveryRamp: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := inj.Decide(sim.Time(10).Add(sim.Duration(float64(i) * 0.1))); !d.Crash {
			t.Fatal("survivor inside the outage window")
		}
	}
	early, late := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		// First ramp half [20, 30): crash probability decays 1 → 0.5.
		if inj.Decide(sim.Time(20).Add(sim.Duration(float64(i) * 0.005))).Crash {
			early++
		}
	}
	for i := 0; i < n; i++ {
		// Second half [30, 40): 0.5 → 0.
		if inj.Decide(sim.Time(30).Add(sim.Duration(float64(i) * 0.005))).Crash {
			late++
		}
	}
	if early <= late {
		t.Fatalf("ramp not decaying: %d crashes early vs %d late", early, late)
	}
	if frac := float64(early+late) / (2 * n); frac < 0.4 || frac > 0.6 {
		t.Fatalf("mean ramp crash rate %.3f, want ≈ 0.5", frac)
	}
	for i := 0; i < 200; i++ {
		if d := inj.Decide(sim.Time(40).Add(sim.Duration(float64(i)))); d.Crash {
			t.Fatal("crash after the ramp fully healed")
		}
	}
}

// TestRegionScheduleValidate pins the schedule-level validation.
func TestRegionScheduleValidate(t *testing.T) {
	if err := (RegionSchedule{Region: "", Outages: []Window{{Start: 0, Duration: 1}}}).Validate(); err == nil {
		t.Error("unnamed schedule accepted")
	}
	if err := (RegionSchedule{Region: "east"}).Validate(); err == nil {
		t.Error("schedule injecting nothing accepted")
	}
	if err := (RegionSchedule{Region: "east", RecoveryRamp: 5}).Validate(); err == nil {
		t.Error("ramp without outages accepted")
	}
	good := RegionSchedule{
		Region:       "east",
		Outages:      []Window{{Start: 0, Duration: 1}},
		RecoveryRamp: 5,
		Brownouts:    []Brownout{{Window{Start: 20, Duration: 5}, 0.5}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}
