package metrics

import "testing"

// BenchmarkRegistryTouch measures the instrumented-code hot path: look up
// an existing labelled counter and increment it. Steady-state touches
// must not allocate — the key string is interned on first use.
func BenchmarkRegistryTouch(b *testing.B) {
	r := NewRegistry("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("tasks_total", L("backend", "serverless")).Inc()
	}
}

// BenchmarkRegistryTouchTwoLabels is the two-dimension variant: backend
// plus application, the label shape the experiment suite uses most.
func BenchmarkRegistryTouchTwoLabels(b *testing.B) {
	r := NewRegistry("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("tasks_total", L("backend", "edge"), L("app", "report-gen")).Inc()
	}
}

// BenchmarkRegistryHistogramTouch measures a labelled latency-histogram
// observation, the per-task recording path.
func BenchmarkRegistryHistogramTouch(b *testing.B) {
	r := NewRegistry("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.LatencyHistogram("completion_s", L("backend", "vm")).Observe(0.25)
	}
}
