package metrics

import "testing"

// FuzzSanitizeName drives the export sanitizer with arbitrary byte
// strings and asserts its contract: the output is always a valid
// Prometheus identifier, sanitization is idempotent, and already-valid
// names pass through unchanged (the property that keeps historical
// CSV/JSONL exports byte-identical).
func FuzzSanitizeName(f *testing.F) {
	for _, seed := range []string{
		"", "tasks", "cost_usd", "edge.queue-depth", "5xx", "a:b",
		"métrique", "name{with=labels}", "__reserved", "9", "\x00\xff",
	} {
		f.Add(seed)
	}
	valid := func(s string, colonOK bool) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			if !validIdentRune(s[i], i == 0, colonOK) {
				return false
			}
		}
		return true
	}
	f.Fuzz(func(t *testing.T, in string) {
		m := SanitizeMetricName(in)
		if !valid(m, true) {
			t.Fatalf("SanitizeMetricName(%q) = %q: not a valid metric name", in, m)
		}
		if again := SanitizeMetricName(m); again != m {
			t.Fatalf("SanitizeMetricName not idempotent: %q -> %q -> %q", in, m, again)
		}
		if valid(in, true) && m != in {
			t.Fatalf("valid metric name %q changed to %q", in, m)
		}

		l := SanitizeLabelName(in)
		if !valid(l, false) {
			t.Fatalf("SanitizeLabelName(%q) = %q: not a valid label name", in, l)
		}
		if again := SanitizeLabelName(l); again != l {
			t.Fatalf("SanitizeLabelName not idempotent: %q -> %q -> %q", in, l, again)
		}
		if valid(in, false) && l != in {
			t.Fatalf("valid label name %q changed to %q", in, l)
		}

		// SanitizeKey must be idempotent too, and must never panic on
		// arbitrary key-shaped input.
		k := SanitizeKey(in)
		if again := SanitizeKey(k); again != k {
			t.Fatalf("SanitizeKey not idempotent: %q -> %q -> %q", in, k, again)
		}
	})
}
