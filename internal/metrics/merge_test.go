package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"

	"offload/internal/rng"
)

// TestHistogramQuantileWithinDocumentedError: against exact sorted-slice
// quantiles, the bucketed estimate must stay within the documented 5%
// relative error (the growth factor of NewLatencyHistogram buckets), for
// every quantile and across distributions.
func TestHistogramQuantileWithinDocumentedError(t *testing.T) {
	src := rng.New(7)
	dists := map[string]func() float64{
		"lognormal": func() float64 { return src.LogNormal(0, 1.5) },
		"exp":       func() float64 { return src.Exp(0.05) },
		"uniform":   func() float64 { return 1e-3 + src.Float64()*1e3 },
	}
	for name, draw := range dists {
		h := NewLatencyHistogram()
		values := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw()
			values = append(values, v)
			h.Observe(v)
		}
		sort.Float64s(values)
		for q := 0.01; q <= 1.0; q += 0.01 {
			target := int(math.Ceil(q * float64(len(values))))
			if target == 0 {
				target = 1
			}
			exact := values[target-1]
			got := h.Quantile(q)
			if rel := math.Abs(got-exact) / exact; rel > 0.0501 {
				t.Fatalf("%s: Quantile(%.2f) = %g, exact %g, rel err %.3f > 5%%",
					name, q, got, exact, rel)
			}
		}
	}
}

// TestHistogramMaxAllNegative: before the fix the max field started at 0,
// so all-negative inputs reported Max() == 0, a value never observed.
func TestHistogramMaxAllNegative(t *testing.T) {
	h := NewHistogram(1, 100, 1.5)
	h.Observe(-3)
	h.Observe(-1)
	if got := h.Max(); got != -1 {
		t.Fatalf("Max = %g, want -1 (all-negative observations)", got)
	}
	if got := h.Min(); got != -3 {
		t.Fatalf("Min = %g, want -3", got)
	}
	if got := h.Quantile(0.99); got < -3 || got > -1 {
		t.Fatalf("Quantile(0.99) = %g outside observed range [-3,-1]", got)
	}
}

// TestHistogramQuantileClampedToObservedRange: a bucket's upper edge can
// exceed the largest observation; the estimate must be clamped to it.
func TestHistogramQuantileClampedToObservedRange(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(2.0) // bucket upper edge is ~2.04
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 2.0 {
			t.Fatalf("Quantile(%g) = %g, want exactly 2.0 (single observation)", q, got)
		}
	}
	h2 := NewLatencyHistogram()
	h2.Observe(1e-9) // underflow only
	if got := h2.Quantile(0.5); got != 1e-9 {
		t.Fatalf("Quantile(0.5) = %g, want 1e-9 (underflow clamped to observed min)", got)
	}
}

// TestHistogramMergeAssociative uses integer observations — exactly
// representable, so float sums are associative — to check that merge order
// does not change any statistic.
func TestHistogramMergeAssociative(t *testing.T) {
	build := func(vals ...float64) *Histogram {
		h := NewLatencyHistogram()
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	a := build(1, 2, 4, 1024)
	b := build(8, 16, 0.5)
	c := build(32, 64, 128, 256, 3)

	left := build() // (a ⊕ b) ⊕ c
	for _, h := range []*Histogram{a, b} {
		if err := left.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := left.Merge(c); err != nil {
		t.Fatal(err)
	}
	right := build() // a ⊕ (b ⊕ c)
	bc := build()
	for _, h := range []*Histogram{b, c} {
		if err := bc.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range []*Histogram{a, bc} {
		if err := right.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	oneShot := build(1, 2, 4, 1024, 8, 16, 0.5, 32, 64, 128, 256, 3)

	for _, pair := range []struct {
		name string
		x, y *Histogram
	}{
		{"(a⊕b)⊕c vs a⊕(b⊕c)", left, right},
		{"(a⊕b)⊕c vs one-shot", left, oneShot},
	} {
		if pair.x.Count() != pair.y.Count() {
			t.Fatalf("%s: Count %d != %d", pair.name, pair.x.Count(), pair.y.Count())
		}
		if pair.x.Sum() != pair.y.Sum() {
			t.Fatalf("%s: Sum %g != %g", pair.name, pair.x.Sum(), pair.y.Sum())
		}
		if pair.x.Min() != pair.y.Min() || pair.x.Max() != pair.y.Max() {
			t.Fatalf("%s: range [%g,%g] != [%g,%g]", pair.name,
				pair.x.Min(), pair.x.Max(), pair.y.Min(), pair.y.Max())
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if gx, gy := pair.x.Quantile(q), pair.y.Quantile(q); gx != gy {
				t.Fatalf("%s: Quantile(%g) %g != %g", pair.name, q, gx, gy)
			}
		}
	}
}

func TestHistogramMergeIncompatible(t *testing.T) {
	h := NewHistogram(1, 100, 1.5)
	if err := h.Merge(NewHistogram(2, 100, 1.5)); err == nil {
		t.Fatal("merging different min succeeded")
	}
	if err := h.Merge(NewHistogram(1, 100, 1.6)); err == nil {
		t.Fatal("merging different growth succeeded")
	}
	if err := h.Merge(nil); err == nil {
		t.Fatal("merging nil succeeded")
	}
	if err := h.Merge(NewHistogram(1, 100, 1.5)); err != nil {
		t.Fatalf("merging identical geometry failed: %v", err)
	}
}

// TestSummaryMergeMatchesSinglePass: the parallel Welford combine must
// agree with observing everything on one Summary.
func TestSummaryMergeMatchesSinglePass(t *testing.T) {
	src := rng.New(11)
	var whole Summary
	parts := make([]Summary, 4)
	for i := 0; i < 10000; i++ {
		v := src.LogNormal(1, 0.7)
		whole.Observe(v)
		parts[i%len(parts)].Observe(v)
	}
	var merged Summary
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.N() != whole.N() {
		t.Fatalf("N = %d, want %d", merged.N(), whole.N())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("range [%g,%g] != [%g,%g]", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	if rel := math.Abs(merged.Mean()-whole.Mean()) / whole.Mean(); rel > 1e-12 {
		t.Fatalf("Mean %g vs %g (rel %g)", merged.Mean(), whole.Mean(), rel)
	}
	if rel := math.Abs(merged.Variance()-whole.Variance()) / whole.Variance(); rel > 1e-9 {
		t.Fatalf("Variance %g vs %g (rel %g)", merged.Variance(), whole.Variance(), rel)
	}

	// Merging into an empty summary adopts the other side verbatim, and
	// merging an empty summary is a no-op.
	var empty Summary
	empty.Merge(whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Fatal("merge into empty summary did not adopt")
	}
	before := whole
	whole.Merge(Summary{})
	if whole != before {
		t.Fatal("merging an empty summary changed the receiver")
	}
}

func TestRegistryGetOrCreateAndKeys(t *testing.T) {
	r := NewRegistry("test")
	c := r.Counter("tasks", L("state", "done"))
	c.Inc()
	r.Counter("tasks", L("state", "done")).Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %g, want 3 (lookup did not return same instance)", got)
	}
	// Label order must not matter: both orders hit one series.
	r.Gauge("depth", L("a", "1"), L("b", "2")).Set(5)
	r.Gauge("depth", L("b", "2"), L("a", "1")).Set(7)
	if got := r.Gauge("depth", L("a", "1"), L("b", "2")).Value(); got != 7 {
		t.Fatalf("gauge = %g, want 7 (label order created separate series)", got)
	}
	if k := Key("m", []Label{{"z", "1"}, {"a", "2"}}); k != "m{a=2,z=1}" {
		t.Fatalf("Key = %q", k)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestRegistryMerge(t *testing.T) {
	a := NewRegistry("a")
	a.Counter("n").Add(2)
	a.Gauge("peak").Set(5)
	a.LatencyHistogram("lat").Observe(1)

	b := NewRegistry("b")
	b.Counter("n").Add(3)
	b.Counter("only_b").Inc()
	b.Gauge("peak").Set(4)
	b.LatencyHistogram("lat").Observe(2)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Counter("n").Value(); got != 5 {
		t.Fatalf("counter n = %g, want 5", got)
	}
	if got := a.Counter("only_b").Value(); got != 1 {
		t.Fatalf("adopted counter = %g, want 1", got)
	}
	if got := a.Gauge("peak").Value(); got != 5 {
		t.Fatalf("gauge = %g, want 5 (max wins)", got)
	}
	if got := a.LatencyHistogram("lat").Count(); got != 2 {
		t.Fatalf("histogram count = %d, want 2", got)
	}
	// Adopted metrics are copies: mutating b must not leak into a.
	b.Counter("only_b").Inc()
	if got := a.Counter("only_b").Value(); got != 1 {
		t.Fatal("merge aliased a counter from the source registry")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil registry: %v", err)
	}

	c := NewRegistry("c")
	c.Histogram("lat", 1, 10, 1.5)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging a registry with incompatible histogram geometry succeeded")
	}
}

func TestRegistrySnapshotDeterministicAndWriters(t *testing.T) {
	build := func(order bool) *Registry {
		r := NewRegistry("x")
		if order {
			r.Counter("b").Inc()
			r.Counter("a").Inc()
		} else {
			r.Counter("a").Inc()
			r.Counter("b").Inc()
		}
		r.Gauge("g").Set(1.5)
		r.LatencyHistogram("h").Observe(2)
		return r
	}
	var s1, s2 strings.Builder
	if err := build(true).WriteCSV(&s1); err != nil {
		t.Fatal(err)
	}
	if err := build(false).WriteCSV(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("snapshot depends on registration order:\n%s\nvs\n%s", s1.String(), s2.String())
	}
	want := "kind,metric,stat,value\ncounter,a,,1\ncounter,b,,1\ngauge,g,,1.5\n"
	if !strings.HasPrefix(s1.String(), want) {
		t.Fatalf("CSV = %q, want prefix %q", s1.String(), want)
	}
	var j strings.Builder
	if err := build(true).WriteJSONL(&j); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), `{"kind":"counter","metric":"a","value":1}`) {
		t.Fatalf("JSONL = %q", j.String())
	}
	if !strings.Contains(j.String(), `"stat":"p95"`) {
		t.Fatalf("JSONL missing histogram stats: %q", j.String())
	}
}

func TestTimeSeriesRecordAndWriters(t *testing.T) {
	ts := NewTimeSeries("s", "x", "y")
	ts.Record(0, 1, 2)
	ts.Record(5, 1.5, -3)
	if ts.Len() != 2 {
		t.Fatalf("Len = %d", ts.Len())
	}
	at, vals := ts.Row(1)
	if at != 5 || vals[0] != 1.5 || vals[1] != -3 {
		t.Fatalf("Row(1) = %g %v", at, vals)
	}
	var csv strings.Builder
	if err := ts.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if csv.String() != "time_s,x,y\n0,1,2\n5,1.5,-3\n" {
		t.Fatalf("CSV = %q", csv.String())
	}
	var j strings.Builder
	if err := ts.WriteJSONL(&j); err != nil {
		t.Fatal(err)
	}
	if j.String() != "{\"time_s\":0,\"x\":1,\"y\":2}\n{\"time_s\":5,\"x\":1.5,\"y\":-3}\n" {
		t.Fatalf("JSONL = %q", j.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	ts.Record(10, 1)
}
