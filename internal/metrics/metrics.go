// Package metrics provides the measurement primitives the benchmark
// harness reports with: log-bucketed histograms with quantile queries,
// Welford mean/variance summaries, and aligned-text / CSV table rendering.
package metrics

import (
	"fmt"
	"math"
)

// Histogram records positive float64 observations in logarithmic buckets,
// trading a bounded relative error (about 5% per bucket) for O(1) inserts
// and O(buckets) quantiles.
//
// Underflow semantics: observations below the configured minimum
// (including zero and negative values) land in a dedicated underflow
// bucket. They still count toward Count, Mean, Min and Max — those are
// exact, not bucketed — but inside the underflow bucket they are
// indistinguishable for quantile queries, so Quantile answers that fall in
// the underflow region are clamped to the exact observed range
// [Min(), Max()] rather than reported at a bucket edge.
type Histogram struct {
	min     float64 // lower bound of bucket 0
	growth  float64 // bucket width factor
	logG    float64
	buckets []uint64
	under   uint64 // observations <= 0 or < min
	count   uint64
	sum     float64
	max     float64 // largest observation; -Inf until the first Observe
	minSeen float64 // smallest observation; +Inf until the first Observe
}

// NewHistogram returns a histogram covering [min, max] with the given
// per-bucket growth factor (e.g. 1.05). It panics on nonsensical bounds.
func NewHistogram(min, max, growth float64) *Histogram {
	if min <= 0 || max <= min || growth <= 1 {
		panic(fmt.Sprintf("metrics: bad histogram bounds min=%g max=%g growth=%g", min, max, growth))
	}
	n := int(math.Ceil(math.Log(max/min)/math.Log(growth))) + 1
	return &Histogram{
		min:     min,
		growth:  growth,
		logG:    math.Log(growth),
		buckets: make([]uint64, n),
		max:     math.Inf(-1),
		minSeen: math.Inf(1),
	}
}

// NewLatencyHistogram covers 1 µs to 1,000,000 s, ample for any completion
// time this simulator produces.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(1e-6, 1e6, 1.05)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.minSeen {
		h.minSeen = v
	}
	if v < h.min {
		h.under++
		return
	}
	idx := int(math.Log(v/h.min) / h.logG)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of all observations (not bucketed).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observation, or 0 if empty. Unlike the bucketed
// quantiles it is exact, even when every observation underflowed (all
// negative observations report a negative max).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Sum returns the exact total of all observations, including underflows.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.minSeen
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) with the
// histogram's relative bucket error. The estimate is clamped to the exact
// observed range [Min(), Max()], so it can never exceed the largest
// observation (a bucket upper edge otherwise could) or undercut the
// smallest. It returns 0 for an empty histogram and panics on q outside
// [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %g outside [0,1]", q))
	}
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	v := h.max
	seen := h.under
	if seen >= target {
		// The quantile falls among underflowed observations; h.min is the
		// underflow bucket's upper edge, the same conservative estimate the
		// regular buckets report.
		v = h.min
	} else {
		for i, c := range h.buckets {
			seen += c
			if seen >= target {
				// Upper edge of the bucket: a conservative estimate.
				v = h.min * math.Pow(h.growth, float64(i+1))
				break
			}
		}
	}
	if v > h.max {
		v = h.max
	}
	if v < h.minSeen {
		v = h.minSeen
	}
	return v
}

// Compatible reports whether o shares this histogram's bucket geometry,
// the precondition for Merge.
func (h *Histogram) Compatible(o *Histogram) bool {
	return o != nil && h.min == o.min && h.growth == o.growth && len(h.buckets) == len(o.buckets)
}

// Merge folds o's observations into h, as if every Observe call on o had
// been made on h instead. Bucket counts merge exactly; Sum (and therefore
// Mean) is a float64 accumulation, so merging in a different order can
// move the last few ulps — callers that need byte-stable output must merge
// in a deterministic order. o is left untouched. Merging histograms with
// different bucket geometry is an error.
func (h *Histogram) Merge(o *Histogram) error {
	if !h.Compatible(o) {
		return fmt.Errorf("metrics: merging incompatible histograms")
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.under += o.under
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	if o.minSeen < h.minSeen {
		h.minSeen = o.minSeen
	}
	return nil
}

// Summary computes running mean and variance with Welford's algorithm —
// numerically stable and single pass.
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe records one value.
func (s *Summary) Observe(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the running mean, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the sample variance, or 0 with fewer than two values.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Sum returns n·mean, the exact total of all observations up to rounding.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Merge folds o's observations into s using the parallel form of
// Welford's update (Chan et al.), so independently accumulated summaries
// — one per worker, one per device — combine without shared state. The
// merged mean and variance match a single-pass accumulation up to
// floating-point rounding; merge in a deterministic order when byte-stable
// output matters. o is left untouched.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	na, nb := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	n := na + nb
	s.mean += delta * nb / n
	s.m2 += o.m2 + delta*delta*na*nb/n
	s.n += o.n
}
