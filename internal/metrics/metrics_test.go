package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"offload/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("Mean = %g, want exact 50.5", h.Mean())
	}
	if h.Max() != 100 || h.Min() != 1 {
		t.Fatalf("Min/Max = %g/%g", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	src := rng.New(1)
	var values []float64
	for i := 0; i < 50000; i++ {
		v := src.LogNormal(0, 1.5)
		values = append(values, v)
		h.Observe(v)
	}
	sort.Float64s(values)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := values[int(q*float64(len(values)))-1]
		got := h.Quantile(q)
		if math.Abs(got-exact)/exact > 0.08 {
			t.Errorf("Quantile(%g) = %g, exact %g (err > 8%%)", q, got, exact)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewLatencyHistogram()
	src := rng.New(2)
	for i := 0; i < 1000; i++ {
		h.Observe(src.Exp(0.1))
	}
	f := func(a, b uint8) bool {
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return h.Quantile(q1) <= h.Quantile(q2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramUnderflowAndOverflow(t *testing.T) {
	h := NewHistogram(1, 100, 1.5)
	h.Observe(0)      // underflow
	h.Observe(-5)     // underflow
	h.Observe(1e9)    // clamps to top bucket
	h.Observe(0.0001) // below min
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(1); got < 100 {
		t.Fatalf("Quantile(1) = %g, want >= max bucket", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 1.5) },
		func() { NewHistogram(10, 5, 1.5) },
		func() { NewHistogram(1, 10, 1.0) },
		func() { NewLatencyHistogram().Quantile(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zeroed")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", s.Mean())
	}
	// Sample variance of that classic dataset is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Fatalf("Sum = %g, want 40", s.Sum())
	}
}

func TestSummaryMatchesNaiveComputation(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e15 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		var s Summary
		sum := 0.0
		for _, v := range vals {
			s.Observe(v)
			sum += v
		}
		mean := sum / float64(len(vals))
		scale := math.Max(math.Abs(mean), 1)
		return math.Abs(s.Mean()-mean) < 1e-9*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("E1: policies", "policy", "mean_s", "cost_usd")
	tbl.AddRow("local", "12.5", "0")
	tbl.AddRowf("cloud", 3.25, 0.000125)
	out := tbl.String()
	if !strings.Contains(out, "== E1: policies ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "policy") || !strings.Contains(out, "cloud") {
		t.Errorf("table content missing:\n%s", out)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("x,y", `say "hi"`)
	csv := tbl.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRow("only")
	if !strings.Contains(tbl.CSV(), "only,,") {
		t.Fatalf("short row not padded: %q", tbl.CSV())
	}
}

func TestTableOverlongRowPanics(t *testing.T) {
	tbl := NewTable("t", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("overlong row did not panic")
		}
	}()
	tbl.AddRow("1", "2")
}
