package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format, version 0.0.4: one `# HELP` and one `# TYPE` line per metric
// family followed by its samples, counters and gauges as single samples,
// histograms as cumulative `_bucket` samples (with the canonical `+Inf`
// bucket equal to `_count`) plus `_sum` and `_count`.
//
// Metric and label names pass through the canonical sanitizer
// (SanitizeMetricName / SanitizeLabelName), label values are escaped per
// the format, and families and series render in sorted order, so the
// output for a given registry state is deterministic byte for byte.
//
// Two raw metric names that sanitize onto the same family name must
// carry the same metric kind; a kind clash returns an error and writes
// no further output.
func WritePrometheus(w io.Writer, reg *Registry) error {
	type series struct {
		labels []Label
		c      *Counter
		g      *Gauge
		h      *Histogram
	}
	type family struct {
		kind   string
		series []series
	}

	fams := make(map[string]*family)
	add := func(key, kind string, s series) error {
		rawName, labels := ParseKey(key)
		name := SanitizeMetricName(rawName)
		f, ok := fams[name]
		if !ok {
			f = &family{kind: kind}
			fams[name] = f
		} else if f.kind != kind {
			return fmt.Errorf("metrics: family %q is both %s and %s after sanitization", name, f.kind, kind)
		}
		s.labels = make([]Label, len(labels))
		for i, l := range labels {
			s.labels[i] = Label{Name: SanitizeLabelName(l.Name), Value: l.Value}
		}
		f.series = append(f.series, s)
		return nil
	}

	for k, c := range reg.counters {
		if err := add(k, "counter", series{c: c}); err != nil {
			return err
		}
	}
	for k, g := range reg.gauges {
		if err := add(k, "gauge", series{g: g}); err != nil {
			return err
		}
	}
	for k, h := range reg.hists {
		if err := add(k, "histogram", series{h: h}); err != nil {
			return err
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	b := bufio.NewWriter(w)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool {
			return labelString(f.series[i].labels) < labelString(f.series[j].labels)
		})
		fmt.Fprintf(b, "# HELP %s offload registry %s %s.\n", name, f.kind, name)
		fmt.Fprintf(b, "# TYPE %s %s\n", name, f.kind)
		for _, s := range f.series {
			switch {
			case s.c != nil:
				writeSample(b, name, s.labels, "", "", s.c.Value())
			case s.g != nil:
				writeSample(b, name, s.labels, "", "", s.g.Value())
			case s.h != nil:
				writeHistogram(b, name, s.labels, s.h)
			}
		}
	}
	return b.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets at the
// upper edge of every non-empty bucket (sparse buckets are valid — the
// cumulative count simply doesn't change across an empty one), the
// mandatory `+Inf` bucket equal to the observation count, then the exact
// sum and count. The top catch-all bucket has no finite upper edge (it
// absorbs overflow), so its observations appear only in `+Inf`.
func writeHistogram(b *bufio.Writer, name string, labels []Label, h *Histogram) {
	cum := uint64(0)
	if h.under > 0 {
		cum = h.under
		writeSample(b, name, labels, "_bucket", FormatFloat(h.min), float64(cum))
	}
	for i, c := range h.buckets {
		if i == len(h.buckets)-1 {
			break // overflow bucket: no honest finite upper edge
		}
		if c == 0 {
			continue
		}
		cum += c
		edge := h.min * math.Pow(h.growth, float64(i+1))
		writeSample(b, name, labels, "_bucket", FormatFloat(edge), float64(cum))
	}
	writeSample(b, name, labels, "_bucket", "+Inf", float64(h.count))
	writeSample(b, name, labels, "_sum", "", h.sum)
	writeSample(b, name, labels, "_count", "", float64(h.count))
}

// writeSample renders one sample line. le, when non-empty, is appended
// as the trailing `le` label (histogram buckets).
func writeSample(b *bufio.Writer, name string, labels []Label, suffix, le string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(FormatFloat(v))
	b.WriteByte('\n')
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// labelString renders labels for sorting series within a family.
func labelString(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}
