package metrics

import (
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func promTestRegistry() *Registry {
	reg := NewRegistry("serve")
	reg.Counter("tasks", L("state", "completed")).Add(42)
	reg.Counter("tasks", L("state", "failed")).Add(3)
	reg.Counter("cost.usd", L("state", "completed")).Add(0.125) // name needs sanitizing
	reg.Gauge("sl_warm_containers").Set(7)
	reg.Gauge("quoted", L("path", `C:\tmp "x"`+"\nnext")).Set(1)
	h := reg.LatencyHistogram("completion_seconds", L("placement", "function"))
	for _, v := range []float64{0.001, 0.001, 0.25, 0.9, 3.2, 1e-9 /* underflow */} {
		h.Observe(v)
	}
	return reg
}

// expositionLines returns the non-empty lines of the rendered body.
func expositionLines(t *testing.T, reg *Registry) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
}

// TestPrometheusConformance checks the structural rules of the text
// exposition format on the writer's own output: TYPE precedes samples,
// one TYPE per family, histogram buckets are cumulative and monotone,
// and the +Inf bucket equals _count.
func TestPrometheusConformance(t *testing.T) {
	lines := expositionLines(t, promTestRegistry())

	typed := map[string]string{}
	sampleSeen := map[string]bool{}
	famOf := func(sample string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(sample, suffix); ok {
				if typed[base] == "histogram" {
					return base
				}
			}
		}
		return sample
	}

	type bucket struct {
		le  float64
		cum float64
	}
	buckets := map[string][]bucket{} // per series (name + labels minus le)
	counts := map[string]float64{}

	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, kind := fields[2], fields[3]
			if _, dup := typed[name]; dup {
				t.Errorf("duplicate TYPE for %q", name)
			}
			if sampleSeen[name] {
				t.Errorf("TYPE for %q appears after its samples", name)
			}
			typed[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		fam := famOf(s.Name)
		if _, ok := typed[fam]; !ok {
			t.Errorf("sample %q precedes its TYPE line", line)
		}
		sampleSeen[fam] = true

		// Collect histogram buckets and counts per series.
		var le string
		var rest []string
		for _, l := range s.Labels {
			if l.Name == "le" {
				le = l.Value
			} else {
				rest = append(rest, l.Name+"="+l.Value)
			}
		}
		sort.Strings(rest)
		series := fam + "{" + strings.Join(rest, ",") + "}"
		switch {
		case strings.HasSuffix(s.Name, "_bucket") && typed[fam] == "histogram":
			lv := math.Inf(1)
			if le != "+Inf" {
				var err error
				lv, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bucket %q: bad le: %v", line, err)
				}
			}
			buckets[series] = append(buckets[series], bucket{lv, s.Value})
		case strings.HasSuffix(s.Name, "_count") && typed[fam] == "histogram":
			counts[series] = s.Value
		}
	}

	if len(buckets) == 0 {
		t.Fatal("no histogram buckets rendered")
	}
	for series, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				t.Errorf("%s: bucket edges not increasing: %g after %g", series, bs[i].le, bs[i-1].le)
			}
			if bs[i].cum < bs[i-1].cum {
				t.Errorf("%s: cumulative counts not monotone: %g after %g", series, bs[i].cum, bs[i-1].cum)
			}
		}
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			t.Errorf("%s: final bucket le = %g, want +Inf", series, last.le)
		}
		if want, ok := counts[series]; !ok || last.cum != want {
			t.Errorf("%s: +Inf bucket = %g, _count = %g", series, last.cum, want)
		}
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	reg := promTestRegistry()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	tasks, ok := byName["tasks"]
	if !ok || tasks.Kind != "counter" {
		t.Fatalf("tasks family missing or mistyped: %+v", tasks)
	}
	got := map[string]float64{}
	for _, s := range tasks.Samples {
		got[s.Labels[0].Value] = s.Value
	}
	if got["completed"] != 42 || got["failed"] != 3 {
		t.Errorf("tasks samples = %v, want completed=42 failed=3", got)
	}

	if f, ok := byName["cost_usd"]; !ok {
		t.Error("sanitized family cost_usd missing")
	} else if f.Samples[0].Value != 0.125 {
		t.Errorf("cost_usd = %g, want 0.125", f.Samples[0].Value)
	}

	// The escaped label value must round-trip exactly.
	q, ok := byName["quoted"]
	if !ok || len(q.Samples) != 1 {
		t.Fatalf("quoted family missing: %+v", q)
	}
	want := `C:\tmp "x"` + "\nnext"
	if v := q.Samples[0].Labels[0].Value; v != want {
		t.Errorf("escaped label value = %q, want %q", v, want)
	}

	h, ok := byName["completion_seconds"]
	if !ok || h.Kind != "histogram" {
		t.Fatalf("histogram family missing or mistyped: %+v", h)
	}
	var sum, count float64
	for _, s := range h.Samples {
		switch s.Name {
		case "completion_seconds_sum":
			sum = s.Value
		case "completion_seconds_count":
			count = s.Value
		}
	}
	if count != 6 {
		t.Errorf("histogram count = %g, want 6", count)
	}
	if math.Abs(sum-(0.001+0.001+0.25+0.9+3.2+1e-9)) > 1e-12 {
		t.Errorf("histogram sum = %g", sum)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, promTestRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, promTestRegistry()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same registry state differ")
	}
}

func TestPrometheusKindClash(t *testing.T) {
	reg := NewRegistry("clash")
	reg.Counter("foo.bar").Inc()
	reg.Gauge("foo_bar").Set(1)
	if err := WritePrometheus(&bytes.Buffer{}, reg); err == nil {
		t.Error("want error when sanitization merges a counter and a gauge")
	}
}

func TestPrometheusUnderflowBucket(t *testing.T) {
	reg := NewRegistry("under")
	h := reg.LatencyHistogram("lat")
	h.Observe(1e-9) // below the 1e-6 floor
	h.Observe(0.5)
	lines := expositionLines(t, reg)
	foundUnder := false
	for _, line := range lines {
		if strings.HasPrefix(line, `lat_bucket{le="1e-06"}`) {
			foundUnder = true
			if !strings.HasSuffix(line, " 1") {
				t.Errorf("underflow bucket line = %q, want cumulative 1", line)
			}
		}
	}
	if !foundUnder {
		t.Error("no le=1e-06 underflow bucket rendered")
	}
}
