package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample line.
type PromSample struct {
	Name   string // full sample name, including _bucket/_sum/_count suffixes
	Labels []Label
	Value  float64
}

// PromFamily is one parsed metric family: its TYPE/HELP metadata and the
// samples that followed it, in input order.
type PromFamily struct {
	Name    string
	Kind    string // counter|gauge|histogram|untyped
	Help    string
	Samples []PromSample
}

// ParseExposition parses a Prometheus text-format (0.0.4) body into
// families in input order. It is the consumer half of WritePrometheus —
// the round-trip test and `offctl scrape` run on it — and accepts the
// subset of the format a scrape of this repository's endpoints can
// produce: HELP/TYPE comments, sample lines with optional labels and an
// optional timestamp (ignored), blank lines and other comments.
func ParseExposition(r io.Reader) ([]PromFamily, error) {
	var (
		fams  []PromFamily
		index = make(map[string]int)
	)
	family := func(name string) *PromFamily {
		if i, ok := index[name]; ok {
			return &fams[i]
		}
		index[name] = len(fams)
		fams = append(fams, PromFamily{Name: name, Kind: "untyped"})
		return &fams[len(fams)-1]
	}
	// familyFor maps a sample name onto its family, peeling histogram
	// suffixes only when the base family is a known histogram.
	familyFor := func(sample string) *PromFamily {
		if i, ok := index[sample]; ok {
			return &fams[i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(sample, suffix)
			if !ok {
				continue
			}
			if i, ok := index[base]; ok && fams[i].Kind == "histogram" {
				return &fams[i]
			}
		}
		return family(sample)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				f := family(fields[2])
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return nil, fmt.Errorf("metrics: line %d: TYPE without a kind", lineNo)
					}
					f.Kind = strings.TrimSpace(fields[3])
				} else if len(fields) >= 4 {
					f.Help = fields[3]
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		f := familyFor(s.Name)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parseSampleLine(line string) (PromSample, error) {
	var s PromSample
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = line[:i]
	if s.Name == "" {
		return s, fmt.Errorf("sample %q has no name", line)
	}
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		s.Labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return s, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `name="value",...}` and returns what follows the
// closing brace.
func parseLabels(rest string) ([]Label, string, error) {
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, ", ")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %q value is not quoted", name)
		}
		value, remainder, err := parseQuoted(rest[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", name, err)
		}
		labels = append(labels, Label{Name: name, Value: value})
		rest = remainder
	}
}

// parseQuoted consumes an escaped string body up to its closing quote.
func parseQuoted(rest string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch rest[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(rest[i])
			default:
				// Unknown escapes pass through verbatim, matching the
				// reference parser's leniency.
				b.WriteByte('\\')
				b.WriteByte(rest[i])
			}
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
