package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Label is one name=value dimension attached to a metric. Two metrics with
// the same name but different label sets are distinct series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing value: tasks completed, dollars
// billed, breaker trips. Adding a negative delta panics.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds delta. It panics on negative deltas: counters only go up, and a
// negative Add is a programming error that would silently corrupt merges.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: counter Add(%g) with negative delta", delta))
	}
	c.v += delta
}

// Value returns the accumulated total.
func (c *Counter) Value() float64 { return c.v }

// Gauge is an instantaneous value: queue depth, warm-pool size, battery
// left. Gauges merge by maximum, so peaks survive aggregation.
type Gauge struct {
	v float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry is a named collection of counters, gauges and histograms keyed
// by metric name plus labels. Lookups create metrics on first use, so
// instrumented code never checks for existence. Registries accumulated
// independently — one per worker, one per device, one per experiment cell
// — combine with Merge, and snapshots render in sorted key order so the
// export is deterministic regardless of registration order.
//
// Registry is not safe for concurrent use; give each goroutine its own and
// merge, which is the cheaper and deterministic design anyway.
type Registry struct {
	name     string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Interned key strings: rendering name{a=1,b=2} allocates, so the
	// rendered form is cached per (name, labels) tuple and steady-state
	// metric touches reuse it without allocating. Struct-valued map keys
	// make the cache lookup itself allocation-free.
	keys1 map[labelKey1]string
	keys2 map[labelKey2]string
}

type labelKey1 struct{ name, ln, lv string }

type labelKey2 struct{ name, l1n, l1v, l2n, l2v string }

// key returns the canonical registry key for name+labels, interning the
// rendered string for the one- and two-label shapes the hot paths use.
// Three or more labels fall back to rendering every time.
func (r *Registry) key(name string, labels []Label) string {
	switch len(labels) {
	case 0:
		return name
	case 1:
		k := labelKey1{name, labels[0].Name, labels[0].Value}
		if s, ok := r.keys1[k]; ok {
			return s
		}
		s := Key(name, labels)
		if r.keys1 == nil {
			r.keys1 = make(map[labelKey1]string)
		}
		r.keys1[k] = s
		return s
	case 2:
		k := labelKey2{name, labels[0].Name, labels[0].Value, labels[1].Name, labels[1].Value}
		if s, ok := r.keys2[k]; ok {
			return s
		}
		s := Key(name, labels)
		if r.keys2 == nil {
			r.keys2 = make(map[labelKey2]string)
		}
		r.keys2[k] = s
		return s
	default:
		return Key(name, labels)
	}
}

// NewRegistry returns an empty registry with the given name.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Name returns the registry name.
func (r *Registry) Name() string { return r.name }

// Key renders a metric name plus labels into the canonical registry key:
// name{a=1,b=2} with labels sorted by name. The empty label set renders as
// the bare name.
func Key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	k := r.key(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	k := r.key(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for name+labels, creating it with the
// given bounds on first use. The bounds of an existing histogram are kept;
// mixing bounds under one key would make merges incompatible.
func (r *Registry) Histogram(name string, min, max, growth float64, labels ...Label) *Histogram {
	k := r.key(name, labels)
	h, ok := r.hists[k]
	if !ok {
		h = NewHistogram(min, max, growth)
		r.hists[k] = h
	}
	return h
}

// LatencyHistogram returns the histogram for name+labels with the standard
// latency bounds (see NewLatencyHistogram), creating it on first use.
func (r *Registry) LatencyHistogram(name string, labels ...Label) *Histogram {
	k := r.key(name, labels)
	h, ok := r.hists[k]
	if !ok {
		h = NewLatencyHistogram()
		r.hists[k] = h
	}
	return h
}

// Merge folds o into r: counters add, gauges take the maximum (peaks
// survive), histograms merge observation-wise. Metrics present only in o
// are adopted (copied, not aliased). Histograms sharing a key but not a
// bucket geometry abort with an error; r is left partially merged in that
// case, so treat an error as fatal for the receiving registry.
func (r *Registry) Merge(o *Registry) error {
	if o == nil {
		return nil
	}
	for k, oc := range o.counters {
		r.counterByKey(k).Add(oc.v)
	}
	for k, og := range o.gauges {
		g := r.gaugeByKey(k)
		if og.v > g.v {
			g.v = og.v
		}
	}
	for k, oh := range o.hists {
		h, ok := r.hists[k]
		if !ok {
			// Clone the exact bucket geometry; deriving bounds and calling
			// NewHistogram could mis-size the slice by a rounding step.
			h = &Histogram{
				min:     oh.min,
				growth:  oh.growth,
				logG:    oh.logG,
				buckets: make([]uint64, len(oh.buckets)),
				max:     math.Inf(-1),
				minSeen: math.Inf(1),
			}
			r.hists[k] = h
		}
		if err := h.Merge(oh); err != nil {
			return fmt.Errorf("metrics: merging %q: %w", k, err)
		}
	}
	return nil
}

func (r *Registry) counterByKey(k string) *Counter {
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

func (r *Registry) gaugeByKey(k string) *Gauge {
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Point is one row of a registry snapshot. Histograms flatten into their
// summary statistics so a snapshot is a plain list of numbers.
type Point struct {
	Kind  string // "counter", "gauge" or "histogram"
	Key   string // canonical name{labels} key
	Stat  string // "" for counter/gauge; count|mean|p50|p95|p99|max for histograms
	Value float64
}

// Snapshot returns every metric as rows sorted by (kind, key, stat): a
// deterministic flat view for export and assertions.
func (r *Registry) Snapshot() []Point {
	var pts []Point
	for k, c := range r.counters {
		pts = append(pts, Point{Kind: "counter", Key: k, Value: c.v})
	}
	for k, g := range r.gauges {
		pts = append(pts, Point{Kind: "gauge", Key: k, Value: g.v})
	}
	for k, h := range r.hists {
		pts = append(pts,
			Point{Kind: "histogram", Key: k, Stat: "count", Value: float64(h.Count())},
			Point{Kind: "histogram", Key: k, Stat: "mean", Value: h.Mean()},
			Point{Kind: "histogram", Key: k, Stat: "p50", Value: h.Quantile(0.50)},
			Point{Kind: "histogram", Key: k, Stat: "p95", Value: h.Quantile(0.95)},
			Point{Kind: "histogram", Key: k, Stat: "p99", Value: h.Quantile(0.99)},
			Point{Kind: "histogram", Key: k, Stat: "max", Value: h.Max()},
		)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Kind != pts[j].Kind {
			return pts[i].Kind < pts[j].Kind
		}
		if pts[i].Key != pts[j].Key {
			return pts[i].Key < pts[j].Key
		}
		return pts[i].Stat < pts[j].Stat
	})
	return pts
}

// WriteCSV writes the snapshot as CSV with a kind,metric,stat,value
// header. Rows stream through a buffered writer rather than rendering
// the whole export in memory first. Metric and label names pass through
// the canonical export sanitizer (see sanitize.go) shared with the
// Prometheus writer, so one registered name exports identically in every
// format; names that are already valid identifiers — all of them, today
// — render unchanged.
func (r *Registry) WriteCSV(w io.Writer) error {
	b := bufio.NewWriter(w)
	b.WriteString("kind,metric,stat,value\n")
	for _, p := range r.Snapshot() {
		b.WriteString(p.Kind)
		b.WriteByte(',')
		b.WriteString(csvCell(SanitizeKey(p.Key)))
		b.WriteByte(',')
		b.WriteString(p.Stat)
		b.WriteByte(',')
		b.WriteString(FormatFloat(p.Value))
		b.WriteByte('\n')
	}
	return b.Flush()
}

// WriteJSONL writes the snapshot as one JSON object per line, streamed
// through a buffered writer. Names are sanitized exactly as in WriteCSV.
func (r *Registry) WriteJSONL(w io.Writer) error {
	b := bufio.NewWriter(w)
	for _, p := range r.Snapshot() {
		b.WriteString(`{"kind":`)
		b.WriteString(strconv.Quote(p.Kind))
		b.WriteString(`,"metric":`)
		b.WriteString(strconv.Quote(SanitizeKey(p.Key)))
		if p.Stat != "" {
			b.WriteString(`,"stat":`)
			b.WriteString(strconv.Quote(p.Stat))
		}
		b.WriteString(`,"value":`)
		b.WriteString(FormatFloat(p.Value))
		b.WriteString("}\n")
	}
	return b.Flush()
}

// FormatFloat renders v with the shortest round-trippable representation,
// so exports are byte-stable across runs and platforms.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvCell quotes a cell when it contains CSV metacharacters.
func csvCell(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
