package metrics

import "testing"

// TestRegistryTouchZeroAlloc asserts the interning contract: after a
// metric's first touch rendered and cached its key, every later touch of
// the same (name, labels) tuple is allocation-free.
func TestRegistryTouchZeroAlloc(t *testing.T) {
	r := NewRegistry("alloc")
	// First touches render, intern and create the metrics.
	r.Counter("tasks_total", L("backend", "edge")).Inc()
	r.Counter("tasks_total", L("backend", "edge"), L("app", "report-gen")).Inc()
	r.Gauge("queue_depth", L("backend", "edge")).Set(1)
	r.LatencyHistogram("completion_s", L("backend", "edge")).Observe(0.5)

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter one label", func() { r.Counter("tasks_total", L("backend", "edge")).Inc() }},
		{"counter two labels", func() { r.Counter("tasks_total", L("backend", "edge"), L("app", "report-gen")).Inc() }},
		{"gauge one label", func() { r.Gauge("queue_depth", L("backend", "edge")).Set(2) }},
		{"histogram one label", func() { r.LatencyHistogram("completion_s", L("backend", "edge")).Observe(0.25) }},
		{"counter no labels", func() { r.Counter("plain").Inc() }},
	}
	r.Counter("plain").Inc()
	for _, tc := range cases {
		if got := testing.AllocsPerRun(100, tc.fn); got != 0 {
			t.Errorf("%s: %.1f allocs per touch, want 0", tc.name, got)
		}
	}
}

// TestInternedKeysMatchRendered proves the cache returns exactly what
// Key renders, including the sorted-label canonical form.
func TestInternedKeysMatchRendered(t *testing.T) {
	r := NewRegistry("alloc")
	// Touch with unsorted labels twice: second hit comes from the cache.
	for i := 0; i < 2; i++ {
		r.Counter("m", L("z", "1"), L("a", "2")).Inc()
	}
	want := Key("m", []Label{L("z", "1"), L("a", "2")})
	if want != "m{a=2,z=1}" {
		t.Fatalf("canonical key = %q", want)
	}
	if _, ok := r.counters[want]; !ok {
		t.Fatalf("counter stored under %v, want %q", keysOf(r.counters), want)
	}
	if r.counters[want].Value() != 2 {
		t.Fatalf("cached key hit created a second counter: %v", keysOf(r.counters))
	}
}

func keysOf(m map[string]*Counter) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
