package metrics

import (
	"sort"
	"strings"
)

// This file is the one canonical place metric and label names are made
// export-safe. Every writer — CSV, JSONL and Prometheus — routes names
// through these functions, so a metric registered as "edge.queue-depth"
// exports identically everywhere: "edge_queue_depth".
//
// The rules are the Prometheus identifier rules, the strictest format we
// export to: metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
// match [a-zA-Z_][a-zA-Z0-9_]*. Names already valid pass through
// unchanged (and without allocating), which keeps historical CSV/JSONL
// exports byte-identical: every metric this repository registers today
// is already a valid identifier.

// SanitizeMetricName maps s onto a valid Prometheus metric name: invalid
// characters become '_', a leading digit gains a '_' prefix, and the
// empty string becomes "_". Valid names are returned unchanged.
func SanitizeMetricName(s string) string {
	return sanitizeIdent(s, true)
}

// SanitizeLabelName maps s onto a valid Prometheus label name. Same
// rules as SanitizeMetricName except that ':' is not allowed in label
// names. Label names beginning with "__" are reserved in Prometheus, but
// passing them through is the caller's concern, not a format violation.
func SanitizeLabelName(s string) string {
	return sanitizeIdent(s, false)
}

func validIdentRune(c byte, first, colonOK bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c == ':':
		return colonOK
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func sanitizeIdent(s string, colonOK bool) string {
	if s == "" {
		return "_"
	}
	clean := true
	for i := 0; i < len(s); i++ {
		if !validIdentRune(s[i], i == 0, colonOK) {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	if c := s[0]; c >= '0' && c <= '9' {
		// A leading digit is valid mid-name: keep it, prefixed.
		b.WriteByte('_')
		b.WriteByte(c)
	} else if validIdentRune(s[0], true, colonOK) {
		b.WriteByte(s[0])
	} else {
		b.WriteByte('_')
	}
	for i := 1; i < len(s); i++ {
		if validIdentRune(s[i], false, colonOK) {
			b.WriteByte(s[i])
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// SanitizeKey re-renders a canonical registry key (name{a=1,b=2}) with
// its metric name and label names sanitized. Label values pass through
// untouched — every export format can represent arbitrary values. Keys
// whose names are already valid come back unchanged.
func SanitizeKey(key string) string {
	name, labels := ParseKey(key)
	dirty := SanitizeMetricName(name) != name
	for _, l := range labels {
		if SanitizeLabelName(l.Name) != l.Name {
			dirty = true
			break
		}
	}
	if !dirty {
		return key
	}
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{Name: SanitizeLabelName(l.Name), Value: l.Value}
	}
	return Key(SanitizeMetricName(name), out)
}

// ParseKey splits a canonical registry key back into its metric name and
// labels: the inverse of Key. Keys without labels return a nil slice.
// Label values containing ',' or '=' are not representable in the key
// form and split naively; registry keys produced by Key from clean
// values round-trip exactly.
func ParseKey(key string) (string, []Label) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name := key[:open]
	body := key[open+1 : len(key)-1]
	if body == "" {
		return name, nil
	}
	parts := strings.Split(body, ",")
	labels := make([]Label, 0, len(parts))
	for _, p := range parts {
		if eq := strings.IndexByte(p, '='); eq >= 0 {
			labels = append(labels, Label{Name: p[:eq], Value: p[eq+1:]})
		} else {
			labels = append(labels, Label{Name: p})
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
	return name, labels
}
