package metrics

import "testing"

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"tasks", "tasks"},
		{"sl_billed_usd", "sl_billed_usd"},
		{"namespace:metric", "namespace:metric"},
		{"_leading_underscore", "_leading_underscore"},
		{"edge.queue-depth", "edge_queue_depth"},
		{"5xx_responses", "_5xx_responses"},
		{"répønse", "r__p__nse"}, // multi-byte runes sanitize bytewise
		{"a b", "a_b"},
		{"", "_"},
		{"9", "_9"},
		{"-", "_"},
		{"metric{bad}", "metric_bad_"},
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSanitizeLabelName(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"state", "state"},
		{"le", "le"},
		{"_hidden", "_hidden"},
		{"ns:label", "ns_label"}, // colon is metric-name-only
		{"app.name", "app_name"},
		{"2nd", "_2nd"},
		{"", "_"},
	}
	for _, c := range cases {
		if got := SanitizeLabelName(c.in); got != c.want {
			t.Errorf("SanitizeLabelName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSanitizeKey(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"tasks", "tasks"},
		{"tasks{state=completed}", "tasks{state=completed}"},
		{"edge.queue{site-id=a,zone=b}", "edge_queue{site_id=a,zone=b}"},
		// Label values are preserved verbatim, even when odd.
		{"x{app=video-transcode}", "x{app=video-transcode}"},
		{"9lives{a=1}", "_9lives{a=1}"},
	}
	for _, c := range cases {
		if got := SanitizeKey(c.in); got != c.want {
			t.Errorf("SanitizeKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSanitizeKeyIsStableForValidKeys(t *testing.T) {
	// A valid key must come back unchanged — the property that keeps
	// every historical CSV/JSONL export byte-identical.
	keys := []string{
		"tasks{state=completed}",
		"cost_usd{state=infra}",
		"adapt_decisions{arm=function,context=ml-batch:3}",
		"failover_shed",
		"region_health{region=eu-west}",
	}
	for _, k := range keys {
		if got := SanitizeKey(k); got != k {
			t.Errorf("SanitizeKey(%q) = %q, want unchanged", k, got)
		}
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	cases := []struct {
		key    string
		name   string
		labels []Label
	}{
		{"tasks", "tasks", nil},
		{"tasks{state=completed}", "tasks", []Label{{"state", "completed"}}},
		{"x{a=1,b=2}", "x", []Label{{"a", "1"}, {"b", "2"}}},
		{"x{}", "x", nil},
	}
	for _, c := range cases {
		name, labels := ParseKey(c.key)
		if name != c.name {
			t.Errorf("ParseKey(%q) name = %q, want %q", c.key, name, c.name)
		}
		if len(labels) != len(c.labels) {
			t.Errorf("ParseKey(%q) labels = %v, want %v", c.key, labels, c.labels)
			continue
		}
		for i := range labels {
			if labels[i] != c.labels[i] {
				t.Errorf("ParseKey(%q) label %d = %v, want %v", c.key, i, labels[i], c.labels[i])
			}
		}
		if len(c.labels) > 0 {
			if rt := Key(name, labels); rt != c.key {
				t.Errorf("Key(ParseKey(%q)) = %q, want the original", c.key, rt)
			}
		}
	}
}
