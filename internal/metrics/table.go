package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them as aligned text (for terminals)
// or CSV (for plotting), the two output formats of the benchmark harness.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// AddRow appends a row. Short rows are padded; long rows panic, since they
// indicate a programming error in the harness.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("metrics: row with %d cells in a %d-column table", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each value with %v, floats as %.4g.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, 0, len(values))
	for _, v := range values {
		switch x := v.(type) {
		case float64:
			cells = append(cells, fmt.Sprintf("%.4g", x))
		case float32:
			cells = append(cells, fmt.Sprintf("%.4g", x))
		default:
			cells = append(cells, fmt.Sprintf("%v", x))
		}
	}
	t.AddRow(cells...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table as aligned text with a title and rule lines.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV streams the table as RFC-4180-ish CSV with a header row
// through a buffered writer. Cells containing commas or quotes are
// quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	b := bufio.NewWriter(w)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.Flush()
}

// CSV renders the table as CSV in memory; WriteCSV is the streaming
// form and the two produce identical bytes.
func (t *Table) CSV() string {
	var b strings.Builder
	t.WriteCSV(&b)
	return b.String()
}
