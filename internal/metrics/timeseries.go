package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// TimeSeries holds periodic samples of a fixed set of columns over
// simulated time: queue depths, pool sizes, utilizations. Rows append in
// sample order, and both writers render floats with the shortest
// round-trippable representation, so an export is byte-stable for a given
// sequence of Record calls.
type TimeSeries struct {
	name string
	cols []string
	rows []tsRow
}

type tsRow struct {
	t    float64
	vals []float64
}

// NewTimeSeries returns an empty series with the given name and column set.
func NewTimeSeries(name string, cols ...string) *TimeSeries {
	return &TimeSeries{name: name, cols: cols}
}

// Name returns the series name.
func (ts *TimeSeries) Name() string { return ts.name }

// Columns returns the column names, excluding the implicit leading time.
func (ts *TimeSeries) Columns() []string { return ts.cols }

// Len returns the number of recorded samples.
func (ts *TimeSeries) Len() int { return len(ts.rows) }

// Record appends one sample at time t. The number of values must match the
// column set; a mismatch is a programming error and panics.
func (ts *TimeSeries) Record(t float64, vals ...float64) {
	if len(vals) != len(ts.cols) {
		panic(fmt.Sprintf("metrics: series %q got %d values for %d columns", ts.name, len(vals), len(ts.cols)))
	}
	row := tsRow{t: t, vals: make([]float64, len(vals))}
	copy(row.vals, vals)
	ts.rows = append(ts.rows, row)
}

// Row returns the time and values of sample i.
func (ts *TimeSeries) Row(i int) (t float64, vals []float64) {
	return ts.rows[i].t, ts.rows[i].vals
}

// WriteCSV writes the series with a time_s,<columns...> header, rows
// streamed through a buffered writer so a long run never materialises
// its whole export in memory.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	b := bufio.NewWriter(w)
	b.WriteString("time_s")
	for _, c := range ts.cols {
		b.WriteByte(',')
		b.WriteString(csvCell(c))
	}
	b.WriteByte('\n')
	for _, r := range ts.rows {
		b.WriteString(FormatFloat(r.t))
		for _, v := range r.vals {
			b.WriteByte(',')
			b.WriteString(FormatFloat(v))
		}
		b.WriteByte('\n')
	}
	return b.Flush()
}

// WriteJSONL writes one JSON object per sample, keyed by column name plus
// a leading "time_s", streamed through a buffered writer.
func (ts *TimeSeries) WriteJSONL(w io.Writer) error {
	b := bufio.NewWriter(w)
	for _, r := range ts.rows {
		b.WriteString(`{"time_s":`)
		b.WriteString(FormatFloat(r.t))
		for i, c := range ts.cols {
			b.WriteByte(',')
			b.WriteString(strconv.Quote(c))
			b.WriteByte(':')
			b.WriteString(FormatFloat(r.vals[i]))
		}
		b.WriteString("}\n")
	}
	return b.Flush()
}
