// Package model defines the domain types shared by every subsystem of the
// offloading framework: tasks, execution reports, placements, and the
// Executor interface that all compute substrates (device, edge, serverless,
// VM) implement.
package model

import (
	"errors"
	"fmt"

	"offload/internal/sim"
)

// ErrTransient marks infrastructure failures that are worth retrying: the
// task itself is fine, the substrate dropped it. Substrate-specific errors
// (crashed containers, dead edge servers, preempted VMs, attempt timeouts)
// wrap this sentinel so schedulers can classify them with Transient
// without importing every substrate package.
var ErrTransient = errors.New("transient infrastructure failure")

// Transient reports whether err is a retryable infrastructure failure.
func Transient(err error) bool { return errors.Is(err, ErrTransient) }

// TaskID uniquely identifies a task within one simulation run.
type TaskID uint64

// Placement says where a task's computation ran.
type Placement int

// Placements, in increasing distance from the user.
const (
	PlaceUnknown  Placement = iota
	PlaceLocal              // on the user equipment itself
	PlaceEdge               // on a nearby edge server
	PlaceFunction           // on cloud serverless (FaaS)
	PlaceVM                 // on an always-on cloud VM
)

var placementNames = map[Placement]string{
	PlaceUnknown:  "unknown",
	PlaceLocal:    "local",
	PlaceEdge:     "edge",
	PlaceFunction: "function",
	PlaceVM:       "vm",
}

// String returns the lower-case placement name.
func (p Placement) String() string {
	if s, ok := placementNames[p]; ok {
		return s
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// AllPlacements lists the concrete placements in canonical order.
func AllPlacements() []Placement {
	return []Placement{PlaceLocal, PlaceEdge, PlaceFunction, PlaceVM}
}

// Byte-size helpers.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
)

// MHz expresses clock rates; 1 MHz = 1e6 cycles per second.
const MHz = 1e6

// GHz expresses clock rates; 1 GHz = 1e9 cycles per second.
const GHz = 1e9

// Task is one unit of offloadable work: an invocation of an application
// component on some input.
type Task struct {
	ID        TaskID
	App       string // application template name
	Component string // call-graph component, if the app is partitioned

	InputBytes  int64 // bytes that must reach the execution site
	OutputBytes int64 // bytes that must return to the device

	Cycles      float64 // true computational demand, CPU cycles
	MemoryBytes int64   // working-set size

	// ParallelFraction is the Amdahl-parallelisable fraction of the work in
	// [0, 1]. Substrates whose CPU allocation exceeds one core (for example
	// large serverless memory sizes) can only speed up this fraction.
	ParallelFraction float64

	// Deadline is the soft completion budget measured from Submitted.
	// Zero means "no deadline" (fully delay tolerant).
	Deadline  sim.Duration
	Submitted sim.Time

	// Priority classes the task for degraded-mode scheduling: negative is
	// load-sheddable background work, zero (the default) is normal, and
	// positive is critical work that must keep running even if that means
	// executing locally. Healthy systems ignore it.
	Priority int
}

// Priority classes for Task.Priority.
const (
	PriorityLow      = -1
	PriorityNormal   = 0
	PriorityCritical = 1
)

// Validate reports whether the task is internally consistent.
func (t *Task) Validate() error {
	switch {
	case t == nil:
		return fmt.Errorf("model: nil task")
	case t.Cycles < 0:
		return fmt.Errorf("model: task %d has negative cycles %g", t.ID, t.Cycles)
	case t.InputBytes < 0 || t.OutputBytes < 0:
		return fmt.Errorf("model: task %d has negative transfer sizes", t.ID)
	case t.MemoryBytes < 0:
		return fmt.Errorf("model: task %d has negative memory", t.ID)
	case t.Deadline < 0:
		return fmt.Errorf("model: task %d has negative deadline", t.ID)
	case t.ParallelFraction < 0 || t.ParallelFraction > 1:
		return fmt.Errorf("model: task %d has parallel fraction %g outside [0,1]",
			t.ID, t.ParallelFraction)
	}
	return nil
}

// HasDeadline reports whether the task carries a soft deadline.
func (t *Task) HasDeadline() bool { return t.Deadline > 0 }

// ExecReport describes one task execution on one substrate. Transfers to
// and from the substrate are reported separately by the scheduler.
type ExecReport struct {
	Start sim.Time // when the execution was accepted by the substrate
	End   sim.Time // when computation (and billing) finished

	QueueWait sim.Duration // time spent waiting for a free unit
	ColdStart sim.Duration // environment-provisioning time (serverless)

	CostUSD float64 // money billed for this execution
	Err     error   // non-nil if the substrate rejected or aborted the task
}

// Duration returns the total wall time the execution took on the substrate.
func (r ExecReport) Duration() sim.Duration { return r.End.Sub(r.Start) }

// Executor is a compute substrate that can run tasks. Execute is
// asynchronous: done is invoked from the simulation loop when the task
// finishes (successfully or not). Implementations must invoke done exactly
// once per submitted task.
type Executor interface {
	// Name identifies the substrate in traces and metrics.
	Name() string
	// Placement reports which placement class this substrate represents.
	Placement() Placement
	// Execute runs the task and reports the outcome through done.
	Execute(task *Task, done func(ExecReport))
}

// Outcome is the scheduler's end-to-end record for a task: transfers,
// execution, money and energy.
type Outcome struct {
	Task      *Task
	Placement Placement

	Started  sim.Time // submission time
	Finished sim.Time // when results were back on the device

	UplinkTime   sim.Duration
	DownlinkTime sim.Duration
	Exec         ExecReport

	CostUSD      float64 // total money spent (execution + transfer)
	EnergyMilliJ float64 // device-side energy (compute or radio)

	// Attempts counts dispatches including retries; 0 means the scheduler
	// did not track attempts.
	Attempts int

	Failed bool
}

// CompletionTime returns the end-to-end latency of the task.
func (o Outcome) CompletionTime() sim.Duration { return o.Finished.Sub(o.Started) }

// MissedDeadline reports whether the task had a deadline and finished
// after it.
func (o Outcome) MissedDeadline() bool {
	return o.Task != nil && o.Task.HasDeadline() &&
		o.CompletionTime() > o.Task.Deadline
}
