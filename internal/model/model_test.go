package model

import (
	"strings"
	"testing"

	"offload/internal/sim"
)

func TestPlacementString(t *testing.T) {
	tests := []struct {
		p    Placement
		want string
	}{
		{PlaceLocal, "local"},
		{PlaceEdge, "edge"},
		{PlaceFunction, "function"},
		{PlaceVM, "vm"},
		{PlaceUnknown, "unknown"},
		{Placement(99), "placement(99)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Placement(%d).String() = %q, want %q", int(tt.p), got, tt.want)
		}
	}
}

func TestAllPlacementsDistinct(t *testing.T) {
	seen := map[Placement]bool{}
	for _, p := range AllPlacements() {
		if seen[p] {
			t.Fatalf("duplicate placement %v", p)
		}
		if p == PlaceUnknown {
			t.Fatal("AllPlacements includes PlaceUnknown")
		}
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Fatalf("AllPlacements returned %d entries, want 4", len(seen))
	}
}

func TestTaskValidate(t *testing.T) {
	tests := []struct {
		name    string
		task    *Task
		wantErr string
	}{
		{"valid", &Task{ID: 1, Cycles: 1e9, InputBytes: 100}, ""},
		{"zero is valid", &Task{}, ""},
		{"negative cycles", &Task{Cycles: -1}, "negative cycles"},
		{"negative input", &Task{InputBytes: -1}, "negative transfer"},
		{"negative output", &Task{OutputBytes: -5}, "negative transfer"},
		{"negative memory", &Task{MemoryBytes: -1}, "negative memory"},
		{"negative deadline", &Task{Deadline: -1}, "negative deadline"},
		{"parallel fraction low", &Task{ParallelFraction: -0.1}, "parallel fraction"},
		{"parallel fraction high", &Task{ParallelFraction: 1.1}, "parallel fraction"},
		{"parallel fraction ok", &Task{ParallelFraction: 0.8}, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.task.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestNilTaskValidate(t *testing.T) {
	var task *Task
	if err := task.Validate(); err == nil {
		t.Fatal("nil task validated")
	}
}

func TestHasDeadline(t *testing.T) {
	if (&Task{}).HasDeadline() {
		t.Error("zero deadline should mean no deadline")
	}
	if !(&Task{Deadline: 10}).HasDeadline() {
		t.Error("positive deadline not detected")
	}
}

func TestOutcomeCompletionAndMiss(t *testing.T) {
	task := &Task{Deadline: 5}
	o := Outcome{Task: task, Started: 10, Finished: 17}
	if got := o.CompletionTime(); got != 7 {
		t.Fatalf("CompletionTime = %v, want 7", got)
	}
	if !o.MissedDeadline() {
		t.Fatal("deadline miss not detected")
	}
	o.Finished = 14
	if o.MissedDeadline() {
		t.Fatal("false deadline miss")
	}
	o.Task = &Task{} // no deadline
	o.Finished = 1000
	if o.MissedDeadline() {
		t.Fatal("task without deadline reported a miss")
	}
}

func TestExecReportDuration(t *testing.T) {
	r := ExecReport{Start: 2, End: 9}
	if r.Duration() != sim.Duration(7) {
		t.Fatalf("Duration = %v, want 7", r.Duration())
	}
}

func TestByteConstants(t *testing.T) {
	if KB != 1024 || MB != 1024*1024 || GB != 1024*1024*1024 {
		t.Fatal("byte constants wrong")
	}
	if GHz != 1e9 || MHz != 1e6 {
		t.Fatal("clock constants wrong")
	}
}
