package model

import (
	"fmt"
	"math"

	"offload/internal/sim"
)

// InterRegionLink prices the backbone between two regions of the
// edge–cloud continuum. When a task is re-homed — its chosen region died
// and a surviving one takes over — the input state must cross this link
// before execution can start, which costs both time (one RTT of
// coordination plus the serialized transfer) and money (egress).
//
// The link is deliberately coarser than internal/network's device paths:
// backbone links between regions are provisioned, symmetric and
// contention-free at the traffic volumes one device generates, so a
// fixed RTT + bandwidth pair captures them.
type InterRegionLink struct {
	// RTT is the round-trip coordination delay paid once per re-homing.
	RTT sim.Duration
	// BandwidthBps is the backbone throughput in bits per second (the same
	// unit as network.Config), shared by the state transfer.
	BandwidthBps float64
	// EgressUSDPerGB is the cloud egress price charged for moving the
	// task's input bytes out of the failed region (or from the device's
	// home point of presence) into the surviving one.
	EgressUSDPerGB float64
}

// DefaultInterRegionLink models a metro-to-cloud backbone hop: 60 ms RTT,
// 1 Gbit/s of usable throughput, and a typical cloud egress price.
func DefaultInterRegionLink() InterRegionLink {
	return InterRegionLink{
		RTT:            0.060,
		BandwidthBps:   1e9,
		EgressUSDPerGB: 0.02,
	}
}

// Validate reports whether the link is usable.
func (l InterRegionLink) Validate() error {
	switch {
	case math.IsNaN(float64(l.RTT)) || math.IsInf(float64(l.RTT), 0) || l.RTT < 0:
		return fmt.Errorf("model: inter-region RTT %g not finite and non-negative", float64(l.RTT))
	case math.IsNaN(l.BandwidthBps) || math.IsInf(l.BandwidthBps, 0) || l.BandwidthBps <= 0:
		return fmt.Errorf("model: inter-region bandwidth %g not finite and positive", l.BandwidthBps)
	case math.IsNaN(l.EgressUSDPerGB) || math.IsInf(l.EgressUSDPerGB, 0) || l.EgressUSDPerGB < 0:
		return fmt.Errorf("model: inter-region egress price %g not finite and non-negative", l.EgressUSDPerGB)
	}
	return nil
}

// TransferTime returns how long re-homing bytes of task state takes over
// the link: one RTT of coordination plus the serialized transfer.
func (l InterRegionLink) TransferTime(bytes int64) sim.Duration {
	if bytes < 0 {
		bytes = 0
	}
	return l.RTT + sim.Duration(float64(bytes)*8/l.BandwidthBps)
}

// TransferCostUSD returns the egress charge for re-homing bytes of task
// state across the link.
func (l InterRegionLink) TransferCostUSD(bytes int64) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return float64(bytes) / float64(GB) * l.EgressUSDPerGB
}
