package network

import (
	"math"

	"offload/internal/sim"
)

// Fair-share mode: concurrent transfers in the same direction split the
// direction's bandwidth equally, the processor-sharing model of a real
// bottleneck link. Each arrival or departure re-computes every active
// flow's completion time from its remaining bits.

type flow struct {
	remainingBits float64
	start         sim.Time
	bytes         int64
	dir           Direction
	degraded      bool
	done          func(Report)
	ev            sim.EventRef
}

// sharedLink is the per-direction processor-sharing state.
type sharedLink struct {
	path  *Path
	dir   Direction
	flows []*flow
	last  sim.Time
}

// progress charges elapsed time against every active flow at the current
// equal share.
func (s *sharedLink) progress() {
	now := s.path.eng.Now()
	if len(s.flows) > 0 {
		per := s.path.bandwidth(s.dir) / float64(len(s.flows))
		elapsed := float64(now.Sub(s.last))
		for _, f := range s.flows {
			f.remainingBits = math.Max(0, f.remainingBits-per*elapsed)
		}
	}
	s.last = now
}

// reschedule recomputes every flow's completion event.
func (s *sharedLink) reschedule() {
	eng := s.path.eng
	n := len(s.flows)
	if n == 0 {
		return
	}
	per := s.path.bandwidth(s.dir) / float64(n)
	for _, f := range s.flows {
		eng.Cancel(f.ev)
		f := f
		f.ev = eng.After(sim.Duration(f.remainingBits/per), func() { s.complete(f) })
	}
}

func (s *sharedLink) add(f *flow) {
	s.progress()
	s.flows = append(s.flows, f)
	s.reschedule()
}

func (s *sharedLink) complete(f *flow) {
	s.progress()
	for i, g := range s.flows {
		if g == f {
			s.flows = append(s.flows[:i], s.flows[i+1:]...)
			break
		}
	}
	s.reschedule()
	p := s.path
	p.transfers++
	if f.dir == Uplink {
		p.bytesUp += f.bytes
	} else {
		p.bytesDown += f.bytes
	}
	f.done(Report{Start: f.start, End: p.eng.Now(), Bytes: f.bytes, Direction: f.dir, Degraded: f.degraded})
}

// Active returns the number of in-flight transfers in dir (fair-share
// mode only; 0 otherwise).
func (p *Path) Active(dir Direction) int {
	if s := p.shared[dir]; s != nil {
		return len(s.flows)
	}
	return 0
}

// transferShared starts a fair-share transfer: propagation (plus jitter)
// first, then processor-sharing transmission.
func (p *Path) transferShared(n int64, dir Direction, done func(Report)) {
	start := p.eng.Now()
	p.advanceChain()
	degraded := p.bad
	delay := float64(p.cfg.OneWayDelay)
	if p.cfg.JitterStd > 0 {
		delay += p.src.Normal(0, p.cfg.JitterStd)
		if delay < 0 {
			delay = 0
		}
	}
	p.eng.After(sim.Duration(delay), func() {
		p.shared[dir].add(&flow{
			remainingBits: float64(8 * n),
			start:         start,
			bytes:         n,
			dir:           dir,
			degraded:      degraded,
			done:          done,
		})
	})
}
