package network

import (
	"math"
	"testing"

	"offload/internal/rng"
	"offload/internal/sim"
)

func fairConfig() Config {
	return Config{
		Name:        "shared",
		OneWayDelay: 0, // pure transmission for exact arithmetic
		UplinkBps:   8e6,
		DownlinkBps: 8e6,
		FairShare:   true,
	}
}

func TestFairShareExclusiveWithSerialize(t *testing.T) {
	cfg := fairConfig()
	cfg.Serialize = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("Serialize+FairShare accepted")
	}
}

func TestFairShareSingleFlowFullBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), fairConfig())
	var rep Report
	p.Transfer(1_000_000, Uplink, func(r Report) { rep = r })
	eng.Run()
	if math.Abs(float64(rep.Duration())-1) > 1e-9 {
		t.Fatalf("single flow duration = %v, want 1", rep.Duration())
	}
}

func TestFairShareTwoConcurrentFlowsHalveBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), fairConfig())
	var ends []sim.Time
	for i := 0; i < 2; i++ {
		p.Transfer(1_000_000, Uplink, func(r Report) { ends = append(ends, r.End) })
	}
	eng.Run()
	// Both share 8 Mbps: each effectively gets 4 Mbps, both finish at 2 s.
	for i, e := range ends {
		if math.Abs(float64(e)-2) > 1e-9 {
			t.Fatalf("flow %d ended at %v, want 2", i, e)
		}
	}
}

func TestFairShareLateArrivalSlowsFirstFlow(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), fairConfig())
	var first, second sim.Time
	p.Transfer(1_000_000, Uplink, func(r Report) { first = r.End })
	eng.At(0.5, func() {
		p.Transfer(1_000_000, Uplink, func(r Report) { second = r.End })
	})
	eng.Run()
	// First: 0.5 s alone (half done), then shares until finished: another
	// 0.5 Mbits... remaining 4 Mbits at 4 Mbps = 1 s → ends at 1.5.
	if math.Abs(float64(first)-1.5) > 1e-9 {
		t.Fatalf("first flow ended at %v, want 1.5", first)
	}
	// Second: shares [0.5, 1.5] (4 Mbits done), then alone: 4 Mbits at
	// 8 Mbps = 0.5 → ends at 2.0.
	if math.Abs(float64(second)-2.0) > 1e-9 {
		t.Fatalf("second flow ended at %v, want 2.0", second)
	}
}

func TestFairShareDirectionsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), fairConfig())
	var up, down sim.Time
	p.Transfer(1_000_000, Uplink, func(r Report) { up = r.End })
	p.Transfer(1_000_000, Downlink, func(r Report) { down = r.End })
	eng.Run()
	// Different directions do not contend.
	if math.Abs(float64(up)-1) > 1e-9 || math.Abs(float64(down)-1) > 1e-9 {
		t.Fatalf("cross-direction contention: up %v down %v", up, down)
	}
}

func TestFairShareNFlowsScaleLinearly(t *testing.T) {
	for _, n := range []int{1, 3, 5} {
		eng := sim.NewEngine()
		p := New(eng, rng.New(1), fairConfig())
		var last sim.Time
		for i := 0; i < n; i++ {
			p.Transfer(1_000_000, Uplink, func(r Report) { last = r.End })
		}
		eng.Run()
		if math.Abs(float64(last)-float64(n)) > 1e-6 {
			t.Fatalf("%d flows finished at %v, want %d", n, last, n)
		}
	}
}

func TestFairShareActiveCount(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), fairConfig())
	for i := 0; i < 3; i++ {
		p.Transfer(1_000_000, Uplink, func(Report) {})
	}
	eng.RunUntil(0.1)
	if got := p.Active(Uplink); got != 3 {
		t.Fatalf("Active = %d, want 3", got)
	}
	eng.Run()
	if got := p.Active(Uplink); got != 0 {
		t.Fatalf("Active after drain = %d", got)
	}
	// Non-fair-share paths report zero.
	plain := New(eng, rng.New(2), noJitter("plain"))
	if plain.Active(Uplink) != 0 {
		t.Fatal("plain path reported active flows")
	}
}

func TestFairShareZeroBytes(t *testing.T) {
	eng := sim.NewEngine()
	cfg := fairConfig()
	cfg.OneWayDelay = 0.01
	p := New(eng, rng.New(1), cfg)
	var rep Report
	p.Transfer(0, Uplink, func(r Report) { rep = r })
	eng.Run()
	if math.Abs(float64(rep.Duration())-0.01) > 1e-9 {
		t.Fatalf("zero-byte fair-share duration = %v", rep.Duration())
	}
}

func TestFairShareStatsAccumulate(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), fairConfig())
	p.Transfer(100, Uplink, func(Report) {})
	p.Transfer(200, Downlink, func(Report) {})
	eng.Run()
	s := p.Stats()
	if s.Transfers != 2 || s.BytesUp != 100 || s.BytesDown != 200 {
		t.Fatalf("Stats = %+v", s)
	}
}
