// Package network models the paths between user equipment and remote
// compute: the wide-area path to the cloud and the local-area path to an
// edge site.
//
// A Path has a propagation delay, asymmetric bandwidth, jitter, and an
// optional Gilbert–Elliott two-state degradation chain (good/bad radio
// conditions). Transfer produces virtual-time completion callbacks on the
// simulation engine, so schedulers can compose "uplink → execute →
// downlink" flows.
package network

import (
	"fmt"

	"offload/internal/rng"
	"offload/internal/sim"
)

// Direction distinguishes uplink (device to remote) from downlink.
type Direction int

// Transfer directions.
const (
	Uplink Direction = iota
	Downlink
)

// String returns "uplink" or "downlink".
func (d Direction) String() string {
	if d == Uplink {
		return "uplink"
	}
	return "downlink"
}

// Config describes a network path.
type Config struct {
	Name string

	// OneWayDelay is the propagation delay in each direction.
	OneWayDelay sim.Duration
	// JitterStd is the standard deviation of per-transfer delay noise, in
	// seconds. Sampled noise is clamped so delay never goes negative.
	JitterStd float64

	UplinkBps   float64 // device→remote bandwidth, bits per second
	DownlinkBps float64 // remote→device bandwidth, bits per second

	// Gilbert–Elliott degradation. Rates are per second of virtual time;
	// zero rates disable the chain (path is always good). In the bad state
	// bandwidth is multiplied by BadFactor.
	GoodToBadRate float64
	BadToGoodRate float64
	BadFactor     float64

	// Serialize makes transfers queue on a single radio (realistic for one
	// device's cellular modem). When false, transfers overlap freely.
	Serialize bool

	// FairShare makes concurrent transfers in one direction split that
	// direction's bandwidth equally (processor sharing) — the model for a
	// shared bottleneck link. Mutually exclusive with Serialize.
	FairShare bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.OneWayDelay < 0:
		return fmt.Errorf("network: %s: negative one-way delay", c.Name)
	case c.UplinkBps <= 0 || c.DownlinkBps <= 0:
		return fmt.Errorf("network: %s: bandwidth must be positive", c.Name)
	case c.JitterStd < 0:
		return fmt.Errorf("network: %s: negative jitter", c.Name)
	case c.GoodToBadRate < 0 || c.BadToGoodRate < 0:
		return fmt.Errorf("network: %s: negative transition rate", c.Name)
	case (c.GoodToBadRate > 0) != (c.BadToGoodRate > 0):
		return fmt.Errorf("network: %s: both transition rates must be set together", c.Name)
	case c.GoodToBadRate > 0 && (c.BadFactor <= 0 || c.BadFactor > 1):
		return fmt.Errorf("network: %s: BadFactor must be in (0,1] when degradation is enabled", c.Name)
	case c.Serialize && c.FairShare:
		return fmt.Errorf("network: %s: Serialize and FairShare are mutually exclusive", c.Name)
	}
	return nil
}

// Path is a live network path bound to a simulation engine.
type Path struct {
	eng *sim.Engine
	src *rng.Source
	cfg Config

	radio  *sim.Resource             // nil unless cfg.Serialize
	shared map[Direction]*sharedLink // nil unless cfg.FairShare

	// Lazily advanced Gilbert–Elliott state.
	bad            bool
	nextTransition sim.Time

	bytesUp, bytesDown int64
	transfers          uint64
}

// New returns a Path on eng using src for stochastic draws. It panics if
// the configuration is invalid; configs are programmer-supplied constants.
func New(eng *sim.Engine, src *rng.Source, cfg Config) *Path {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Path{eng: eng, src: src, cfg: cfg}
	if cfg.Serialize {
		p.radio = sim.NewResource(eng, cfg.Name+"/radio", 1)
	}
	if cfg.FairShare {
		p.shared = map[Direction]*sharedLink{
			Uplink:   {path: p, dir: Uplink},
			Downlink: {path: p, dir: Downlink},
		}
	}
	if cfg.GoodToBadRate > 0 {
		p.nextTransition = eng.Now().Add(sim.Duration(src.Exp(cfg.GoodToBadRate)))
	}
	return p
}

// Name returns the configured path name.
func (p *Path) Name() string { return p.cfg.Name }

// Config returns the path configuration.
func (p *Path) Config() Config { return p.cfg }

// Report is the outcome of one transfer.
type Report struct {
	Start, End sim.Time
	Bytes      int64
	Direction  Direction
	// Degraded reports whether the path was in the bad state when the
	// transfer started.
	Degraded bool
}

// Duration returns the transfer's wall time including queueing.
func (r Report) Duration() sim.Duration { return r.End.Sub(r.Start) }

// advanceChain moves the Gilbert–Elliott chain forward to the current
// virtual time, flipping states at their sampled sojourn boundaries.
func (p *Path) advanceChain() {
	if p.cfg.GoodToBadRate == 0 {
		return
	}
	now := p.eng.Now()
	for p.nextTransition <= now {
		at := p.nextTransition
		p.bad = !p.bad
		rate := p.cfg.GoodToBadRate
		if p.bad {
			rate = p.cfg.BadToGoodRate
		}
		p.nextTransition = at.Add(sim.Duration(p.src.Exp(rate)))
	}
}

// bandwidth returns the effective bits-per-second for dir right now.
func (p *Path) bandwidth(dir Direction) float64 {
	bps := p.cfg.UplinkBps
	if dir == Downlink {
		bps = p.cfg.DownlinkBps
	}
	if p.bad {
		bps *= p.cfg.BadFactor
	}
	return bps
}

// EstimateTransfer returns the expected duration of moving n bytes in dir
// under good conditions with no queueing. Schedulers use this for planning;
// actual transfers include jitter and degradation.
func (p *Path) EstimateTransfer(n int64, dir Direction) sim.Duration {
	bps := p.cfg.UplinkBps
	if dir == Downlink {
		bps = p.cfg.DownlinkBps
	}
	return p.cfg.OneWayDelay + sim.Duration(float64(8*n)/bps)
}

// Transfer moves n bytes across the path in dir and calls done when the
// last byte arrives. Zero-byte transfers still pay propagation delay
// (a request with empty payload). Negative sizes panic.
func (p *Path) Transfer(n int64, dir Direction, done func(Report)) {
	if n < 0 {
		panic(fmt.Sprintf("network: %s: negative transfer size %d", p.cfg.Name, n))
	}
	if done == nil {
		panic("network: Transfer with nil callback")
	}
	if p.shared != nil {
		p.transferShared(n, dir, done)
		return
	}
	start := p.eng.Now()
	run := func() {
		p.advanceChain()
		degraded := p.bad
		d := float64(p.cfg.OneWayDelay) + float64(8*n)/p.bandwidth(dir)
		if p.cfg.JitterStd > 0 {
			d += p.src.Normal(0, p.cfg.JitterStd)
			if d < 0 {
				d = 0
			}
		}
		p.eng.After(sim.Duration(d), func() {
			p.transfers++
			if dir == Uplink {
				p.bytesUp += n
			} else {
				p.bytesDown += n
			}
			if p.radio != nil {
				p.radio.Release()
			}
			done(Report{Start: start, End: p.eng.Now(), Bytes: n, Direction: dir, Degraded: degraded})
		})
	}
	if p.radio != nil {
		p.radio.Acquire(run)
		return
	}
	run()
}

// Stats summarises path usage.
type Stats struct {
	Transfers uint64
	BytesUp   int64
	BytesDown int64
}

// Stats returns cumulative usage counters.
func (p *Path) Stats() Stats {
	return Stats{Transfers: p.transfers, BytesUp: p.bytesUp, BytesDown: p.bytesDown}
}
