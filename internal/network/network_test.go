package network

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"offload/internal/rng"
	"offload/internal/sim"
)

func noJitter(name string) Config {
	return Config{
		Name:        name,
		OneWayDelay: 0.010,
		UplinkBps:   8e6, // 1 MB/s
		DownlinkBps: 16e6,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"valid", func(c *Config) {}, ""},
		{"negative delay", func(c *Config) { c.OneWayDelay = -1 }, "one-way delay"},
		{"zero uplink", func(c *Config) { c.UplinkBps = 0 }, "bandwidth"},
		{"zero downlink", func(c *Config) { c.DownlinkBps = 0 }, "bandwidth"},
		{"negative jitter", func(c *Config) { c.JitterStd = -1 }, "jitter"},
		{"lonely rate", func(c *Config) { c.GoodToBadRate = 1 }, "together"},
		{"bad factor", func(c *Config) {
			c.GoodToBadRate, c.BadToGoodRate, c.BadFactor = 1, 1, 0
		}, "BadFactor"},
		{"bad factor above one", func(c *Config) {
			c.GoodToBadRate, c.BadToGoodRate, c.BadFactor = 1, 1, 1.5
		}, "BadFactor"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := noJitter("t")
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestTransferDuration(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), noJitter("t"))
	var rep Report
	p.Transfer(1_000_000, Uplink, func(r Report) { rep = r })
	eng.Run()
	// 10 ms propagation + 8e6 bits / 8e6 bps = 1 s.
	want := 1.010
	if math.Abs(float64(rep.Duration())-want) > 1e-9 {
		t.Fatalf("uplink duration = %v, want %v", rep.Duration(), want)
	}
	p.Transfer(1_000_000, Downlink, func(r Report) { rep = r })
	eng.Run()
	want = 0.510 // twice the bandwidth
	if math.Abs(float64(rep.Duration())-want) > 1e-9 {
		t.Fatalf("downlink duration = %v, want %v", rep.Duration(), want)
	}
}

func TestZeroByteTransferPaysPropagation(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), noJitter("t"))
	var rep Report
	p.Transfer(0, Uplink, func(r Report) { rep = r })
	eng.Run()
	if math.Abs(float64(rep.Duration())-0.010) > 1e-9 {
		t.Fatalf("zero-byte duration = %v, want 0.010", rep.Duration())
	}
}

func TestEstimateMatchesActualWithoutNoise(t *testing.T) {
	f := func(kb uint16) bool {
		eng := sim.NewEngine()
		p := New(eng, rng.New(1), noJitter("t"))
		n := int64(kb) * 1024
		est := p.EstimateTransfer(n, Uplink)
		var got sim.Duration
		p.Transfer(n, Uplink, func(r Report) { got = r.Duration() })
		eng.Run()
		return math.Abs(float64(est-got)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateMonotonicInSize(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), noJitter("t"))
	prev := sim.Duration(-1)
	for _, n := range []int64{0, 1, 1024, 1 << 20, 1 << 24} {
		d := p.EstimateTransfer(n, Uplink)
		if d < prev {
			t.Fatalf("EstimateTransfer not monotone at %d bytes", n)
		}
		prev = d
	}
}

func TestSerializeQueuesTransfers(t *testing.T) {
	eng := sim.NewEngine()
	cfg := noJitter("radio")
	cfg.Serialize = true
	p := New(eng, rng.New(1), cfg)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		p.Transfer(1_000_000, Uplink, func(r Report) { ends = append(ends, r.End) })
	}
	eng.Run()
	if len(ends) != 3 {
		t.Fatalf("got %d completions", len(ends))
	}
	// Serialized: ~1.01, 2.02, 3.03.
	for i, want := range []float64{1.010, 2.020, 3.030} {
		if math.Abs(float64(ends[i])-want) > 1e-6 {
			t.Fatalf("serialized completion %d at %v, want %v", i, ends[i], want)
		}
	}
}

func TestParallelTransfersOverlapWithoutSerialize(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), noJitter("wan"))
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		p.Transfer(1_000_000, Uplink, func(r Report) { ends = append(ends, r.End) })
	}
	eng.Run()
	for i, e := range ends {
		if math.Abs(float64(e)-1.010) > 1e-9 {
			t.Fatalf("parallel completion %d at %v, want 1.010", i, e)
		}
	}
}

func TestDegradationSlowsTransfers(t *testing.T) {
	// With a chain that is almost always bad, transfers should take ~4x the
	// good-state time with BadFactor 0.25.
	eng := sim.NewEngine()
	cfg := noJitter("flaky")
	cfg.GoodToBadRate = 1000 // flips to bad almost immediately
	cfg.BadToGoodRate = 1e-6 // and stays there
	cfg.BadFactor = 0.25
	p := New(eng, rng.New(7), cfg)

	// Let virtual time pass so the chain can transition.
	eng.At(10, func() {
		p.Transfer(1_000_000, Uplink, func(r Report) {
			if !r.Degraded {
				t.Error("transfer not marked degraded")
			}
			want := 4.010
			if math.Abs(float64(r.Duration())-want) > 1e-6 {
				t.Errorf("degraded duration = %v, want %v", r.Duration(), want)
			}
		})
	})
	eng.Run()
}

func TestStatsAccumulate(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), noJitter("t"))
	p.Transfer(100, Uplink, func(Report) {})
	p.Transfer(200, Downlink, func(Report) {})
	eng.Run()
	s := p.Stats()
	if s.Transfers != 2 || s.BytesUp != 100 || s.BytesDown != 200 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, rng.New(1), noJitter("t"))
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer did not panic")
		}
	}()
	p.Transfer(-1, Uplink, func(Report) {})
}

func TestPresetsValid(t *testing.T) {
	presets := map[string]Config{
		"wifi-cloud": WiFiCloud(),
		"lte-cloud":  LTECloud(),
		"lan-edge":   LANEdge(),
		"5g-edge":    FiveGEdge(),
		"instant":    Instant(),
	}
	for name, cfg := range presets {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if cfg.Name != name {
			t.Errorf("preset %s has Name %q", name, cfg.Name)
		}
	}
	// The edge paths must be strictly closer than the cloud paths: the
	// entire edge-vs-cloud tradeoff rests on this.
	if LANEdge().OneWayDelay >= WiFiCloud().OneWayDelay {
		t.Error("LAN edge not closer than WiFi cloud")
	}
	if FiveGEdge().OneWayDelay >= LTECloud().OneWayDelay {
		t.Error("5G edge not closer than LTE cloud")
	}
}

func TestJitterNeverNegative(t *testing.T) {
	eng := sim.NewEngine()
	cfg := noJitter("jittery")
	cfg.JitterStd = 5 // enormous jitter relative to the mean
	p := New(eng, rng.New(3), cfg)
	for i := 0; i < 200; i++ {
		p.Transfer(10, Uplink, func(r Report) {
			if r.Duration() < 0 {
				t.Errorf("negative transfer duration %v", r.Duration())
			}
		})
		eng.Run()
	}
}
