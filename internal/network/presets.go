package network

// Preset paths, calibrated to commonly reported characteristics of the
// respective access technologies. The absolute values matter less than the
// ordering: LAN-to-edge is an order of magnitude closer than WAN-to-cloud,
// which is exactly the gap the non-time-critical argument says we may
// ignore.

// WiFiCloud models a device on home/office WiFi reaching a cloud region
// over the WAN: ~25 ms one-way, 50/100 Mbps up/down.
func WiFiCloud() Config {
	return Config{
		Name:        "wifi-cloud",
		OneWayDelay: 0.025,
		JitterStd:   0.004,
		UplinkBps:   50e6,
		DownlinkBps: 100e6,
		Serialize:   true,
	}
}

// LTECloud models a cellular device reaching the cloud: ~45 ms one-way,
// 10/40 Mbps, with occasional degraded radio conditions.
func LTECloud() Config {
	return Config{
		Name:          "lte-cloud",
		OneWayDelay:   0.045,
		JitterStd:     0.012,
		UplinkBps:     10e6,
		DownlinkBps:   40e6,
		GoodToBadRate: 1.0 / 120, // degrade roughly every 2 minutes
		BadToGoodRate: 1.0 / 15,  // bad spells last ~15 s
		BadFactor:     0.25,
		Serialize:     true,
	}
}

// LANEdge models the same device reaching an on-premises edge server:
// ~2 ms one-way, symmetric 200 Mbps.
func LANEdge() Config {
	return Config{
		Name:        "lan-edge",
		OneWayDelay: 0.002,
		JitterStd:   0.0005,
		UplinkBps:   200e6,
		DownlinkBps: 200e6,
		Serialize:   true,
	}
}

// FiveGEdge models a 5G device reaching a MEC site: ~8 ms one-way,
// 80/300 Mbps.
func FiveGEdge() Config {
	return Config{
		Name:        "5g-edge",
		OneWayDelay: 0.008,
		JitterStd:   0.002,
		UplinkBps:   80e6,
		DownlinkBps: 300e6,
		Serialize:   true,
	}
}

// Instant returns an idealised zero-cost path, useful in unit tests and for
// intra-cloud traffic between a function and cloud storage.
func Instant() Config {
	return Config{
		Name:        "instant",
		OneWayDelay: 0,
		UplinkBps:   1e15,
		DownlinkBps: 1e15,
	}
}
