package partition

import (
	"fmt"
	"math"

	"offload/internal/callgraph"
	"offload/internal/rng"
)

// BruteForceLimit bounds the graph size BruteForce accepts: 2^n objective
// evaluations are exhaustive validation, not production partitioning.
const BruteForceLimit = 24

// BruteForce enumerates every valid assignment and returns the optimum. It
// errors on graphs larger than BruteForceLimit or an invalid model.
func BruteForce(g *callgraph.Graph, m CostModel) (Result, error) {
	if err := precheck(g, m); err != nil {
		return Result{}, err
	}
	var free []int // non-pinned component indices
	for i := 0; i < g.Len(); i++ {
		if !g.Component(callgraph.ComponentID(i)).Pinned {
			free = append(free, i)
		}
	}
	if len(free) > BruteForceLimit {
		return Result{}, fmt.Errorf("partition: brute force over %d free components (limit %d)",
			len(free), BruteForceLimit)
	}
	best := AllLocal(g)
	bestObj := Objective(g, m, best)
	evals := 1
	a := AllLocal(g)
	for mask := uint64(1); mask < uint64(1)<<len(free); mask++ {
		for bit, idx := range free {
			a[idx] = mask&(1<<bit) != 0
		}
		if obj := Objective(g, m, a); obj < bestObj {
			bestObj = obj
			best = a.Clone()
		}
		evals++
	}
	return Result{Algorithm: "brute-force", Assignment: best, Objective: bestObj, Evaluations: evals}, nil
}

// MinCut computes the optimal partition as a minimum s-t cut of the
// MAUI-style flow network: source = device side, sink = remote side,
// terminal edge capacities are the opposite side's cost, and inter-vertex
// capacities are cut costs. Runs Dinic's algorithm in O(V²E).
func MinCut(g *callgraph.Graph, m CostModel) (Result, error) {
	if err := precheck(g, m); err != nil {
		return Result{}, err
	}
	n := g.Len()
	src, snk := n, n+1
	net := newFlowNet(n + 2)
	for i := 0; i < n; i++ {
		c := g.Component(callgraph.ComponentID(i))
		if c.Pinned || !m.RemoteFeasible(c) {
			// Infinite capacity from the source keeps pinned (or
			// remote-infeasible) components on the device side of any
			// finite cut.
			net.addEdge(src, i, math.Inf(1))
		} else {
			net.addEdge(src, i, m.RemoteCost(c))
		}
		net.addEdge(i, snk, m.LocalCost(c))
	}
	for _, e := range g.Edges() {
		w := m.CutCost(e)
		net.addEdge(int(e.From), int(e.To), w)
		net.addEdge(int(e.To), int(e.From), w)
	}
	net.maxflow(src, snk)

	// Components still reachable from the source in the residual graph are
	// on the device side.
	reach := net.reachable(src)
	a := make(Assignment, n)
	for i := 0; i < n; i++ {
		a[i] = !reach[i]
	}
	return Result{
		Algorithm:   "min-cut",
		Assignment:  a,
		Objective:   Objective(g, m, a),
		Evaluations: net.augmentations,
	}, nil
}

// Greedy starts all-local and repeatedly flips the single component whose
// move improves the objective most, until no flip helps. It is the cheap
// heuristic baseline: optimal on many instances, but it can stop at a
// local minimum when two components must move together.
func Greedy(g *callgraph.Graph, m CostModel) (Result, error) {
	if err := precheck(g, m); err != nil {
		return Result{}, err
	}
	a := AllLocal(g)
	obj := Objective(g, m, a)
	evals := 1
	for {
		bestIdx, bestObj := -1, obj
		for i := 0; i < g.Len(); i++ {
			if g.Component(callgraph.ComponentID(i)).Pinned {
				continue
			}
			a[i] = !a[i]
			if cand := Objective(g, m, a); cand < bestObj {
				bestObj, bestIdx = cand, i
			}
			a[i] = !a[i]
			evals++
		}
		if bestIdx < 0 {
			return Result{Algorithm: "greedy", Assignment: a, Objective: obj, Evaluations: evals}, nil
		}
		a[bestIdx] = !a[bestIdx]
		obj = bestObj
	}
}

// AnnealConfig tunes the simulated-annealing searcher.
type AnnealConfig struct {
	Iterations int     // total proposal steps
	StartTemp  float64 // initial temperature, in objective units
	Cooling    float64 // geometric cooling factor per step, in (0, 1)
}

// DefaultAnneal returns a schedule that works well for graphs up to a few
// hundred components.
func DefaultAnneal() AnnealConfig {
	return AnnealConfig{Iterations: 20000, StartTemp: 1.0, Cooling: 0.9995}
}

// Anneal searches with simulated annealing from the greedy solution. It is
// the comparator that shows how much the exact min-cut buys over a generic
// metaheuristic.
func Anneal(g *callgraph.Graph, m CostModel, src *rng.Source, cfg AnnealConfig) (Result, error) {
	if err := precheck(g, m); err != nil {
		return Result{}, err
	}
	if cfg.Iterations <= 0 || cfg.StartTemp <= 0 || cfg.Cooling <= 0 || cfg.Cooling >= 1 {
		return Result{}, fmt.Errorf("partition: bad anneal config %+v", cfg)
	}
	seedRes, err := Greedy(g, m)
	if err != nil {
		return Result{}, err
	}
	var free []int
	for i := 0; i < g.Len(); i++ {
		if !g.Component(callgraph.ComponentID(i)).Pinned {
			free = append(free, i)
		}
	}
	cur := seedRes.Assignment.Clone()
	curObj := seedRes.Objective
	best := cur.Clone()
	bestObj := curObj
	if len(free) == 0 {
		return Result{Algorithm: "anneal", Assignment: best, Objective: bestObj, Evaluations: seedRes.Evaluations}, nil
	}
	// Temperature is relative to the objective scale so one schedule works
	// across workloads of very different magnitudes.
	temp := cfg.StartTemp * math.Max(curObj, 1e-12)
	evals := seedRes.Evaluations
	for it := 0; it < cfg.Iterations; it++ {
		idx := free[src.Intn(len(free))]
		cur[idx] = !cur[idx]
		cand := Objective(g, m, cur)
		evals++
		delta := cand - curObj
		if delta <= 0 || src.Float64() < math.Exp(-delta/temp) {
			curObj = cand
			if curObj < bestObj {
				bestObj = curObj
				best = cur.Clone()
			}
		} else {
			cur[idx] = !cur[idx] // reject
		}
		temp *= cfg.Cooling
	}
	return Result{Algorithm: "anneal", Assignment: best, Objective: bestObj, Evaluations: evals}, nil
}

func precheck(g *callgraph.Graph, m CostModel) error {
	if err := g.Validate(); err != nil {
		return err
	}
	return m.Validate()
}

// flowNet is a Dinic max-flow network over float64 capacities.
type flowNet struct {
	n             int
	head          [][]int // adjacency: node -> edge indices
	to            []int
	cap           []float64
	level         []int
	iter          []int
	augmentations int
}

func newFlowNet(n int) *flowNet {
	return &flowNet{n: n, head: make([][]int, n)}
}

// addEdge inserts a directed edge and its zero-capacity reverse.
func (f *flowNet) addEdge(u, v int, c float64) {
	f.head[u] = append(f.head[u], len(f.to))
	f.to = append(f.to, v)
	f.cap = append(f.cap, c)
	f.head[v] = append(f.head[v], len(f.to))
	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
}

// eps is the residual-capacity floor below which an edge counts as
// saturated; our capacities are objective values well above this scale.
const eps = 1e-12

func (f *flowNet) bfs(s, t int) bool {
	f.level = make([]int, f.n)
	for i := range f.level {
		f.level[i] = -1
	}
	queue := []int{s}
	f.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ei := range f.head[u] {
			if f.cap[ei] > eps && f.level[f.to[ei]] < 0 {
				f.level[f.to[ei]] = f.level[u] + 1
				queue = append(queue, f.to[ei])
			}
		}
	}
	return f.level[t] >= 0
}

func (f *flowNet) dfs(u, t int, pushed float64) float64 {
	if u == t {
		return pushed
	}
	for ; f.iter[u] < len(f.head[u]); f.iter[u]++ {
		ei := f.head[u][f.iter[u]]
		v := f.to[ei]
		if f.cap[ei] <= eps || f.level[v] != f.level[u]+1 {
			continue
		}
		got := f.dfs(v, t, math.Min(pushed, f.cap[ei]))
		if got > 0 {
			f.cap[ei] -= got
			f.cap[ei^1] += got
			return got
		}
	}
	return 0
}

func (f *flowNet) maxflow(s, t int) float64 {
	total := 0.0
	for f.bfs(s, t) {
		f.iter = make([]int, f.n)
		for {
			pushed := f.dfs(s, t, math.Inf(1))
			if pushed <= 0 {
				break
			}
			total += pushed
			f.augmentations++
		}
	}
	return total
}

// reachable returns which nodes the source still reaches in the residual
// network — the source side of the minimum cut.
func (f *flowNet) reachable(s int) []bool {
	seen := make([]bool, f.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range f.head[u] {
			if f.cap[ei] > eps && !seen[f.to[ei]] {
				seen[f.to[ei]] = true
				stack = append(stack, f.to[ei])
			}
		}
	}
	return seen
}
