// Package partition decides which components of an application call graph
// execute on the device and which are offloaded, minimising a weighted
// objective of completion time, device energy and cloud money.
//
// The objective has the classic MAUI/CloneCloud structure — a per-vertex
// cost that depends only on the vertex's side plus a per-edge cost paid
// when an edge crosses the cut — so the optimal partition is a minimum
// s-t cut, computed here with Dinic's algorithm. Exhaustive search (for
// validation on small graphs), greedy hill-climbing and simulated
// annealing are provided as comparators for the E3 experiment.
package partition

import (
	"fmt"
	"math"

	"offload/internal/callgraph"
)

// CostModel captures the execution environment the partition will run in.
// Weights convert seconds, joules and dollars into one scalar objective;
// a pure-latency model sets LatencyWeight=1 and the rest to zero.
type CostModel struct {
	LocalHz  float64 // device cycles per second
	RemoteHz float64 // offload-target cycles per second

	BandwidthBps float64 // device↔remote bandwidth for cut edges
	RTTSeconds   float64 // per-interaction round trip on cut edges

	USDPerRemoteSecond float64 // price of remote compute time
	EnergyJPerCycle    float64 // device energy per local cycle
	RadioJPerByte      float64 // device energy per transferred byte

	LatencyWeight float64 // objective weight per second
	EnergyWeight  float64 // objective weight per joule
	MoneyWeight   float64 // objective weight per dollar

	// MaxRemoteMemory bounds the working set a remote component may have
	// (the offload target's largest instance size). Components above it
	// are effectively pinned to the device. Zero disables the bound.
	MaxRemoteMemory int64
}

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	switch {
	case m.LocalHz <= 0 || m.RemoteHz <= 0:
		return fmt.Errorf("partition: CPU rates must be positive")
	case m.BandwidthBps <= 0:
		return fmt.Errorf("partition: bandwidth must be positive")
	case m.RTTSeconds < 0:
		return fmt.Errorf("partition: negative RTT")
	case m.USDPerRemoteSecond < 0 || m.EnergyJPerCycle < 0 || m.RadioJPerByte < 0:
		return fmt.Errorf("partition: negative rate")
	case m.LatencyWeight < 0 || m.EnergyWeight < 0 || m.MoneyWeight < 0:
		return fmt.Errorf("partition: negative weight")
	case m.LatencyWeight+m.EnergyWeight+m.MoneyWeight == 0:
		return fmt.Errorf("partition: all objective weights are zero")
	case m.MaxRemoteMemory < 0:
		return fmt.Errorf("partition: negative remote memory bound")
	}
	return nil
}

// RemoteFeasible reports whether the component may execute remotely under
// the model's memory bound.
func (m CostModel) RemoteFeasible(c callgraph.Component) bool {
	return m.MaxRemoteMemory == 0 || c.MemoryBytes <= m.MaxRemoteMemory
}

// LocalCost returns the objective contribution of running c on the device.
func (m CostModel) LocalCost(c callgraph.Component) float64 {
	cycles := c.Cycles * c.CallsPerRun
	t := cycles / m.LocalHz
	return m.LatencyWeight*t + m.EnergyWeight*cycles*m.EnergyJPerCycle
}

// RemoteCost returns the objective contribution of running c remotely.
func (m CostModel) RemoteCost(c callgraph.Component) float64 {
	cycles := c.Cycles * c.CallsPerRun
	t := cycles / m.RemoteHz
	return m.LatencyWeight*t + m.MoneyWeight*t*m.USDPerRemoteSecond
}

// CutCost returns the objective contribution of edge e crossing the
// device/remote boundary.
func (m CostModel) CutCost(e callgraph.Edge) float64 {
	bytes := float64(e.Bytes) * e.CallsPerRun
	t := 8*bytes/m.BandwidthBps + m.RTTSeconds*e.CallsPerRun
	return m.LatencyWeight*t + m.EnergyWeight*bytes*m.RadioJPerByte
}

// Assignment maps each component to a side: false = device, true = remote.
type Assignment []bool

// RemoteCount returns how many components are offloaded.
func (a Assignment) RemoteCount() int {
	n := 0
	for _, r := range a {
		if r {
			n++
		}
	}
	return n
}

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	cp := make(Assignment, len(a))
	copy(cp, a)
	return cp
}

// Valid reports whether the assignment has the right arity and keeps every
// pinned component on the device.
func (a Assignment) Valid(g *callgraph.Graph) bool {
	if len(a) != g.Len() {
		return false
	}
	for i, remote := range a {
		if remote && g.Component(callgraph.ComponentID(i)).Pinned {
			return false
		}
	}
	return true
}

// Objective evaluates the assignment under the model. Invalid assignments
// (wrong arity or pinned component offloaded) evaluate to +Inf, which lets
// stochastic searchers treat validity as just another cost.
func Objective(g *callgraph.Graph, m CostModel, a Assignment) float64 {
	if !a.Valid(g) {
		return math.Inf(1)
	}
	total := 0.0
	for i, remote := range a {
		c := g.Component(callgraph.ComponentID(i))
		if remote {
			if !m.RemoteFeasible(c) {
				return math.Inf(1)
			}
			total += m.RemoteCost(c)
		} else {
			total += m.LocalCost(c)
		}
	}
	for _, e := range g.Edges() {
		if a[e.From] != a[e.To] {
			total += m.CutCost(e)
		}
	}
	return total
}

// AllLocal returns the assignment that keeps everything on the device.
func AllLocal(g *callgraph.Graph) Assignment {
	return make(Assignment, g.Len())
}

// AllRemote returns the assignment that offloads everything except pinned
// components.
func AllRemote(g *callgraph.Graph) Assignment {
	a := make(Assignment, g.Len())
	for i := range a {
		a[i] = !g.Component(callgraph.ComponentID(i)).Pinned
	}
	return a
}

// FeasibleRemote returns the assignment that offloads everything the
// model's memory bound allows, keeping pinned and oversized components on
// the device.
func FeasibleRemote(g *callgraph.Graph, m CostModel) Assignment {
	a := make(Assignment, g.Len())
	for i := range a {
		c := g.Component(callgraph.ComponentID(i))
		a[i] = !c.Pinned && m.RemoteFeasible(c)
	}
	return a
}

// Result is the outcome of one partitioning run.
type Result struct {
	Algorithm  string
	Assignment Assignment
	Objective  float64
	// Evaluations counts objective (or flow) work, for the E3 cost table.
	Evaluations int
}

// Remote lists the names of offloaded components, in graph order.
func (r Result) Remote(g *callgraph.Graph) []string {
	var out []string
	for i, remote := range r.Assignment {
		if remote {
			out = append(out, g.Component(callgraph.ComponentID(i)).Name)
		}
	}
	return out
}
