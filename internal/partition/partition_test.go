package partition

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"offload/internal/callgraph"
	"offload/internal/rng"
)

// testModel is a latency+energy+money model with a 2 GHz device, a 3 GHz
// remote, 10 Mbps and 50 ms RTT.
func testModel() CostModel {
	return CostModel{
		LocalHz:            2e9,
		RemoteHz:           3e9,
		BandwidthBps:       10e6,
		RTTSeconds:         0.05,
		USDPerRemoteSecond: 2e-5,
		EnergyJPerCycle:    1e-9,
		RadioJPerByte:      1e-7,
		LatencyWeight:      1,
		EnergyWeight:       0.5,
		MoneyWeight:        100,
	}
}

func TestCostModelValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*CostModel)
		ok     bool
	}{
		{"valid", func(m *CostModel) {}, true},
		{"zero local", func(m *CostModel) { m.LocalHz = 0 }, false},
		{"zero remote", func(m *CostModel) { m.RemoteHz = 0 }, false},
		{"zero bandwidth", func(m *CostModel) { m.BandwidthBps = 0 }, false},
		{"negative rtt", func(m *CostModel) { m.RTTSeconds = -1 }, false},
		{"negative price", func(m *CostModel) { m.USDPerRemoteSecond = -1 }, false},
		{"negative weight", func(m *CostModel) { m.LatencyWeight = -1 }, false},
		{"all weights zero", func(m *CostModel) {
			m.LatencyWeight, m.EnergyWeight, m.MoneyWeight = 0, 0, 0
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := testModel()
			tt.mutate(&m)
			if got := m.Validate() == nil; got != tt.ok {
				t.Fatalf("Validate ok = %v, want %v", got, tt.ok)
			}
		})
	}
}

func TestObjectiveInvalidAssignments(t *testing.T) {
	g := callgraph.VideoTranscode()
	m := testModel()
	if got := Objective(g, m, make(Assignment, 2)); !math.IsInf(got, 1) {
		t.Fatal("wrong arity did not evaluate to +Inf")
	}
	a := AllLocal(g)
	a[0] = true // component 0 is the pinned UI
	if got := Objective(g, m, a); !math.IsInf(got, 1) {
		t.Fatal("offloaded pinned component did not evaluate to +Inf")
	}
}

func TestObjectiveAllLocalIsSumOfLocalCosts(t *testing.T) {
	g := callgraph.ReportGen()
	m := testModel()
	want := 0.0
	for _, c := range g.Components() {
		want += m.LocalCost(c)
	}
	if got := Objective(g, m, AllLocal(g)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Objective(all-local) = %g, want %g", got, want)
	}
}

func TestMinCutMatchesBruteForceOnTemplates(t *testing.T) {
	m := testModel()
	for name, g := range callgraph.Templates() {
		t.Run(name, func(t *testing.T) {
			bf, err := BruteForce(g, m)
			if err != nil {
				t.Fatal(err)
			}
			mc, err := MinCut(g, m)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mc.Objective-bf.Objective) > 1e-6*math.Max(1, bf.Objective) {
				t.Fatalf("min-cut %g != brute force %g", mc.Objective, bf.Objective)
			}
		})
	}
}

func TestMinCutMatchesBruteForceOnRandomGraphs(t *testing.T) {
	m := testModel()
	f := func(seed uint64, size uint8) bool {
		n := 3 + int(size)%10 // 3..12 components
		g := callgraph.Random(rng.New(seed), n)
		bf, err := BruteForce(g, m)
		if err != nil {
			return false
		}
		mc, err := MinCut(g, m)
		if err != nil {
			return false
		}
		if !mc.Assignment.Valid(g) {
			return false
		}
		return math.Abs(mc.Objective-bf.Objective) <= 1e-6*math.Max(1, bf.Objective)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMinCutNeverWorseThanTrivialAssignments(t *testing.T) {
	m := testModel()
	f := func(seed uint64, size uint8) bool {
		n := 3 + int(size)%30
		g := callgraph.Random(rng.New(seed), n)
		mc, err := MinCut(g, m)
		if err != nil {
			return false
		}
		local := Objective(g, m, AllLocal(g))
		remote := Objective(g, m, AllRemote(g))
		return mc.Objective <= local+1e-9 && mc.Objective <= remote+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedStaysLocalInAllAlgorithms(t *testing.T) {
	m := testModel()
	g := callgraph.Random(rng.New(5), 12)
	results := map[string]Result{}
	bf, err := BruteForce(g, m)
	if err != nil {
		t.Fatal(err)
	}
	results["bf"] = bf
	mc, err := MinCut(g, m)
	if err != nil {
		t.Fatal(err)
	}
	results["mc"] = mc
	gr, err := Greedy(g, m)
	if err != nil {
		t.Fatal(err)
	}
	results["greedy"] = gr
	an, err := Anneal(g, m, rng.New(1), DefaultAnneal())
	if err != nil {
		t.Fatal(err)
	}
	results["anneal"] = an
	for name, r := range results {
		if !r.Assignment.Valid(g) {
			t.Errorf("%s produced invalid assignment", name)
		}
		if r.Assignment[0] {
			t.Errorf("%s offloaded the pinned root", name)
		}
	}
}

func TestGreedyNeverWorseThanAllLocal(t *testing.T) {
	m := testModel()
	f := func(seed uint64) bool {
		g := callgraph.Random(rng.New(seed), 15)
		r, err := Greedy(g, m)
		if err != nil {
			return false
		}
		return r.Objective <= Objective(g, m, AllLocal(g))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealNeverWorseThanGreedy(t *testing.T) {
	m := testModel()
	for seed := uint64(0); seed < 10; seed++ {
		g := callgraph.Random(rng.New(seed), 15)
		gr, err := Greedy(g, m)
		if err != nil {
			t.Fatal(err)
		}
		an, err := Anneal(g, m, rng.New(seed+100), AnnealConfig{Iterations: 5000, StartTemp: 0.5, Cooling: 0.999})
		if err != nil {
			t.Fatal(err)
		}
		if an.Objective > gr.Objective+1e-9 {
			t.Fatalf("seed %d: anneal %g worse than its greedy seed %g", seed, an.Objective, gr.Objective)
		}
	}
}

func TestBruteForceRejectsLargeGraphs(t *testing.T) {
	g := callgraph.Random(rng.New(1), BruteForceLimit+3)
	if _, err := BruteForce(g, testModel()); err == nil {
		t.Fatal("brute force accepted an oversized graph")
	}
}

func TestHeavyComputeOffloadsCheapDataStays(t *testing.T) {
	// A graph with one enormous compute component behind a tiny edge must
	// offload it; a component with huge data behind tiny compute must not.
	g := callgraph.New("synthetic")
	g.MustAddComponent(callgraph.Component{Name: "ui", Cycles: 1e6, Pinned: true})
	g.MustAddComponent(callgraph.Component{Name: "cruncher", Cycles: 1e12})
	g.MustAddComponent(callgraph.Component{Name: "streamer", Cycles: 1e6})
	g.MustAddEdge(callgraph.Edge{From: 0, To: 1, Bytes: 1024})
	g.MustAddEdge(callgraph.Edge{From: 0, To: 2, Bytes: 1 << 32}) // 4 GB
	m := testModel()
	r, err := MinCut(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Assignment[1] {
		t.Error("compute-heavy component not offloaded")
	}
	if r.Assignment[2] {
		t.Error("data-heavy component offloaded")
	}
}

func TestRemoteNames(t *testing.T) {
	g := callgraph.SciBatch()
	r, err := MinCut(g, testModel())
	if err != nil {
		t.Fatal(err)
	}
	names := r.Remote(g)
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "simulate") {
		t.Errorf("sci-batch min-cut did not offload the simulate stage: %v", names)
	}
	for _, n := range names {
		if n == "instrument" {
			t.Error("pinned instrument listed as remote")
		}
	}
}

func TestAnnealConfigValidation(t *testing.T) {
	g := callgraph.ReportGen()
	bad := []AnnealConfig{
		{Iterations: 0, StartTemp: 1, Cooling: 0.99},
		{Iterations: 10, StartTemp: 0, Cooling: 0.99},
		{Iterations: 10, StartTemp: 1, Cooling: 1.5},
		{Iterations: 10, StartTemp: 1, Cooling: 1},
	}
	for _, cfg := range bad {
		if _, err := Anneal(g, testModel(), rng.New(1), cfg); err == nil {
			t.Errorf("Anneal accepted bad config %+v", cfg)
		}
	}
}

func TestMinCutDeterministic(t *testing.T) {
	g := callgraph.Random(rng.New(77), 20)
	m := testModel()
	a, err := MinCut(g, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCut(g, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("MinCut not deterministic")
		}
	}
}

func TestMemoryBoundPinsOversizedComponents(t *testing.T) {
	g := callgraph.New("big-mem")
	g.MustAddComponent(callgraph.Component{Name: "ui", Cycles: 1e6, Pinned: true})
	// Enormous compute that would certainly offload — but a 64 GB working
	// set no function instance can hold.
	g.MustAddComponent(callgraph.Component{Name: "whale", Cycles: 1e13, MemoryBytes: 64 << 30})
	g.MustAddComponent(callgraph.Component{Name: "minnow", Cycles: 1e12, MemoryBytes: 1 << 30})
	g.MustAddEdge(callgraph.Edge{From: 0, To: 1, Bytes: 1024})
	g.MustAddEdge(callgraph.Edge{From: 1, To: 2, Bytes: 1024})

	m := testModel()
	m.MaxRemoteMemory = 10 << 30 // 10 GB cap

	r, err := MinCut(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assignment[1] {
		t.Error("oversized component offloaded past the memory bound")
	}
	if !r.Assignment[2] {
		t.Error("feasible heavy component not offloaded")
	}
	// The objective must agree: putting the whale remote is infeasible.
	forced := r.Assignment.Clone()
	forced[1] = true
	if !math.IsInf(Objective(g, m, forced), 1) {
		t.Error("Objective accepted an infeasible remote placement")
	}
	// Brute force agrees with min-cut under the bound.
	bf, err := BruteForce(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bf.Objective-r.Objective) > 1e-9*math.Max(1, bf.Objective) {
		t.Fatalf("min-cut %g != brute force %g under memory bound", r.Objective, bf.Objective)
	}
}

func TestFeasibleRemoteRespectsBound(t *testing.T) {
	g := callgraph.New("fr")
	g.MustAddComponent(callgraph.Component{Name: "ui", Cycles: 1, Pinned: true})
	g.MustAddComponent(callgraph.Component{Name: "ok", Cycles: 1, MemoryBytes: 1 << 20})
	g.MustAddComponent(callgraph.Component{Name: "huge", Cycles: 1, MemoryBytes: 1 << 40})
	m := testModel()
	m.MaxRemoteMemory = 1 << 30
	a := FeasibleRemote(g, m)
	if a[0] || !a[1] || a[2] {
		t.Fatalf("FeasibleRemote = %v", a)
	}
	if math.IsInf(Objective(g, m, a), 1) {
		t.Fatal("FeasibleRemote produced an infeasible assignment")
	}
}

func TestMoneyWeightPullsWorkBackLocal(t *testing.T) {
	// With an extreme money weight, offloading should shrink or vanish.
	g := callgraph.SciBatch()
	cheap := testModel()
	expensive := testModel()
	expensive.MoneyWeight = 1e9
	rc, err := MinCut(g, cheap)
	if err != nil {
		t.Fatal(err)
	}
	re, err := MinCut(g, expensive)
	if err != nil {
		t.Fatal(err)
	}
	if re.Assignment.RemoteCount() > rc.Assignment.RemoteCount() {
		t.Fatalf("raising money weight increased offloading: %d > %d",
			re.Assignment.RemoteCount(), rc.Assignment.RemoteCount())
	}
	if re.Assignment.RemoteCount() != 0 {
		t.Fatalf("extreme money weight still offloads %d components", re.Assignment.RemoteCount())
	}
}
