package profile

import (
	"testing"

	"offload/internal/callgraph"
	"offload/internal/rng"
)

func TestUpdateCatalogNilPriorProfilesEverything(t *testing.T) {
	g := callgraph.ReportGen()
	cat, n, err := UpdateCatalog(nil, g, NewMeter(rng.New(1), 0), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != g.Len() {
		t.Fatalf("reprofiled %d, want all %d", n, g.Len())
	}
	if len(cat.Profiles()) != g.Len() {
		t.Fatalf("catalog has %d entries", len(cat.Profiles()))
	}
}

func TestUpdateCatalogReprofilesOnlyChanged(t *testing.T) {
	g := callgraph.ReportGen()
	meter := NewMeter(rng.New(1), 0)
	prior, err := BuildCatalog(g, meter, 5)
	if err != nil {
		t.Fatal(err)
	}
	cat, n, err := UpdateCatalog(prior, g, meter, 5, []string{"aggregate"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reprofiled %d components, want 1", n)
	}
	// Unchanged entries are carried over verbatim.
	for _, comp := range g.Components() {
		if comp.Name == "aggregate" {
			continue
		}
		before, _ := prior.Lookup(comp.Name)
		after, ok := cat.Lookup(comp.Name)
		if !ok || before != after {
			t.Fatalf("unchanged component %s was touched", comp.Name)
		}
	}
}

func TestUpdateCatalogReprofilesMissingComponents(t *testing.T) {
	g := callgraph.ReportGen()
	meter := NewMeter(rng.New(2), 0)
	prior, err := BuildCatalog(g, meter, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A new component appears in the next build.
	grown := callgraph.New(g.Name())
	for _, c := range g.Components() {
		grown.MustAddComponent(c)
	}
	grown.MustAddComponent(callgraph.Component{Name: "new-stage", Cycles: 7e9})
	cat, n, err := UpdateCatalog(prior, grown, meter, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reprofiled %d, want just the new component", n)
	}
	if _, ok := cat.Lookup("new-stage"); !ok {
		t.Fatal("new component not in catalog")
	}
}

func TestUpdateCatalogValidation(t *testing.T) {
	g := callgraph.ReportGen()
	prior, _ := BuildCatalog(g, NewMeter(rng.New(1), 0), 3)
	if _, _, err := UpdateCatalog(prior, g, NewMeter(rng.New(1), 0), 0, nil); err == nil {
		t.Fatal("runs=0 accepted")
	}
	if _, _, err := UpdateCatalog(prior, callgraph.New("empty"), NewMeter(rng.New(1), 0), 3, nil); err == nil {
		t.Fatal("invalid graph accepted")
	}
}
