// Package profile determines the computational demands of application
// components — the first of the paper's contributions. It provides:
//
//   - estimators that learn a component's demand from observed executions
//     (a least-squares linear model in input size, an EWMA, and a sliding
//     window quantile for conservative planning);
//   - a measurement model (Meter) that injects realistic multiplicative
//     profiling noise, the ablation knob for experiment E10;
//   - a Catalog that profiles every component of a call graph and serves
//     predictions to the allocator and scheduler.
package profile

import (
	"fmt"
	"math"
	"sort"

	"offload/internal/callgraph"
	"offload/internal/rng"
)

// Estimator predicts a component's computational demand (cycles) for a
// given input size, learning from observations.
type Estimator interface {
	// Observe records one measured execution.
	Observe(inputBytes int64, cycles float64)
	// Predict estimates the demand for an input of the given size.
	// Estimators with no observations return 0.
	Predict(inputBytes int64) float64
	// N returns the number of observations seen.
	N() int
}

// LinearModel fits cycles = a + b·inputBytes by ordinary least squares,
// updated incrementally. With fewer than two distinct input sizes it
// degrades to the running mean.
type LinearModel struct {
	n                        int
	sumX, sumY, sumXY, sumXX float64
}

var _ Estimator = (*LinearModel)(nil)

// Observe implements Estimator.
func (l *LinearModel) Observe(inputBytes int64, cycles float64) {
	x := float64(inputBytes)
	l.n++
	l.sumX += x
	l.sumY += cycles
	l.sumXY += x * cycles
	l.sumXX += x * x
}

// Coefficients returns the fitted intercept and slope.
func (l *LinearModel) Coefficients() (a, b float64) {
	if l.n == 0 {
		return 0, 0
	}
	nf := float64(l.n)
	det := nf*l.sumXX - l.sumX*l.sumX
	if det <= 1e-12*nf*l.sumXX || det == 0 {
		// All inputs (numerically) identical: mean-only model.
		return l.sumY / nf, 0
	}
	b = (nf*l.sumXY - l.sumX*l.sumY) / det
	a = (l.sumY - b*l.sumX) / nf
	return a, b
}

// Predict implements Estimator. Predictions are clamped at zero: demand is
// never negative even if the fit's intercept is.
func (l *LinearModel) Predict(inputBytes int64) float64 {
	a, b := l.Coefficients()
	p := a + b*float64(inputBytes)
	if p < 0 {
		return 0
	}
	return p
}

// N implements Estimator.
func (l *LinearModel) N() int { return l.n }

// EWMA tracks an exponentially weighted moving average of demand,
// independent of input size. It adapts quickly to drift, which the CI/CD
// re-partitioning stage exploits.
type EWMA struct {
	alpha float64
	n     int
	value float64
}

var _ Estimator = (*EWMA)(nil)

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("profile: EWMA alpha %g outside (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Observe implements Estimator.
func (e *EWMA) Observe(_ int64, cycles float64) {
	if e.n == 0 {
		e.value = cycles
	} else {
		e.value = e.alpha*cycles + (1-e.alpha)*e.value
	}
	e.n++
}

// Predict implements Estimator.
func (e *EWMA) Predict(int64) float64 { return e.value }

// N implements Estimator.
func (e *EWMA) N() int { return e.n }

// WindowQuantile predicts a configurable quantile of the last W
// observations. Planners that must hold a deadline use a high quantile so
// underestimates are rare.
type WindowQuantile struct {
	window int
	q      float64
	buf    []float64
	next   int
	n      int
}

var _ Estimator = (*WindowQuantile)(nil)

// NewWindowQuantile returns a quantile estimator over a window of w
// observations. q must be in [0, 1].
func NewWindowQuantile(w int, q float64) *WindowQuantile {
	if w <= 0 {
		panic(fmt.Sprintf("profile: window %d not positive", w))
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("profile: quantile %g outside [0,1]", q))
	}
	return &WindowQuantile{window: w, q: q, buf: make([]float64, 0, w)}
}

// Observe implements Estimator.
func (wq *WindowQuantile) Observe(_ int64, cycles float64) {
	if len(wq.buf) < wq.window {
		wq.buf = append(wq.buf, cycles)
	} else {
		wq.buf[wq.next] = cycles
		wq.next = (wq.next + 1) % wq.window
	}
	wq.n++
}

// Predict implements Estimator.
func (wq *WindowQuantile) Predict(int64) float64 {
	if len(wq.buf) == 0 {
		return 0
	}
	sorted := make([]float64, len(wq.buf))
	copy(sorted, wq.buf)
	sort.Float64s(sorted)
	idx := int(math.Ceil(wq.q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// N implements Estimator.
func (wq *WindowQuantile) N() int { return wq.n }

// Meter models the measurement process: observing a true demand yields the
// truth perturbed by multiplicative lognormal noise with relative standard
// deviation RelStd. RelStd = 0 measures exactly.
type Meter struct {
	src    *rng.Source
	relStd float64
}

// NewMeter returns a Meter drawing noise from src. RelStd must be >= 0.
func NewMeter(src *rng.Source, relStd float64) *Meter {
	if relStd < 0 {
		panic(fmt.Sprintf("profile: negative measurement noise %g", relStd))
	}
	return &Meter{src: src, relStd: relStd}
}

// Measure returns a noisy observation of trueCycles.
func (m *Meter) Measure(trueCycles float64) float64 {
	if m.relStd == 0 {
		return trueCycles
	}
	// Lognormal with unit mean: mu = -sigma²/2.
	sigma := math.Sqrt(math.Log(1 + m.relStd*m.relStd))
	return trueCycles * m.src.LogNormal(-sigma*sigma/2, sigma)
}

// ComponentProfile summarises one component's measured demand.
type ComponentProfile struct {
	Name        string
	MeanCycles  float64
	P95Cycles   float64
	MemoryBytes int64
	Runs        int
}

// RelativeError returns |mean - truth| / truth, the E10 accuracy metric.
func (p ComponentProfile) RelativeError(truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return math.Abs(p.MeanCycles-truth) / truth
}

// Catalog holds fitted demand profiles for every component of an app.
type Catalog struct {
	app      string
	profiles map[string]ComponentProfile
}

// BuildCatalog profiles every component of g by taking runs noisy
// measurements through meter. runs must be positive.
func BuildCatalog(g *callgraph.Graph, meter *Meter, runs int) (*Catalog, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if runs <= 0 {
		return nil, fmt.Errorf("profile: runs must be positive, got %d", runs)
	}
	c := &Catalog{app: g.Name(), profiles: make(map[string]ComponentProfile, g.Len())}
	for _, comp := range g.Components() {
		wq := NewWindowQuantile(runs, 0.95)
		sum := 0.0
		for i := 0; i < runs; i++ {
			obs := meter.Measure(comp.Cycles)
			sum += obs
			wq.Observe(0, obs)
		}
		c.profiles[comp.Name] = ComponentProfile{
			Name:        comp.Name,
			MeanCycles:  sum / float64(runs),
			P95Cycles:   wq.Predict(0),
			MemoryBytes: comp.MemoryBytes,
			Runs:        runs,
		}
	}
	return c, nil
}

// UpdateCatalog incrementally re-profiles an application: components named
// in changed (or absent from prior) are measured afresh; everything else
// reuses the prior entry. It returns the new catalog and how many
// components were actually re-profiled — the quantity that determines the
// CI profile stage's duration. A nil prior re-profiles everything.
func UpdateCatalog(prior *Catalog, g *callgraph.Graph, meter *Meter, runs int, changed []string) (*Catalog, int, error) {
	if prior == nil {
		cat, err := BuildCatalog(g, meter, runs)
		return cat, g.Len(), err
	}
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	if runs <= 0 {
		return nil, 0, fmt.Errorf("profile: runs must be positive, got %d", runs)
	}
	changedSet := make(map[string]bool, len(changed))
	for _, name := range changed {
		changedSet[name] = true
	}
	out := &Catalog{app: g.Name(), profiles: make(map[string]ComponentProfile, g.Len())}
	reprofiled := 0
	for _, comp := range g.Components() {
		if p, ok := prior.profiles[comp.Name]; ok && !changedSet[comp.Name] {
			out.profiles[comp.Name] = p
			continue
		}
		wq := NewWindowQuantile(runs, 0.95)
		sum := 0.0
		for i := 0; i < runs; i++ {
			obs := meter.Measure(comp.Cycles)
			sum += obs
			wq.Observe(0, obs)
		}
		out.profiles[comp.Name] = ComponentProfile{
			Name:        comp.Name,
			MeanCycles:  sum / float64(runs),
			P95Cycles:   wq.Predict(0),
			MemoryBytes: comp.MemoryBytes,
			Runs:        runs,
		}
		reprofiled++
	}
	return out, reprofiled, nil
}

// App returns the profiled application's name.
func (c *Catalog) App() string { return c.app }

// Lookup returns the profile for a component name.
func (c *Catalog) Lookup(name string) (ComponentProfile, bool) {
	p, ok := c.profiles[name]
	return p, ok
}

// Profiles returns all component profiles, sorted by name.
func (c *Catalog) Profiles() []ComponentProfile {
	out := make([]ComponentProfile, 0, len(c.profiles))
	for _, p := range c.profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EstimatedGraph returns a copy of g whose component cycle counts are
// replaced by the catalog's mean estimates — the graph the partitioner
// actually sees, as opposed to ground truth.
func (c *Catalog) EstimatedGraph(g *callgraph.Graph) (*callgraph.Graph, error) {
	est := callgraph.New(g.Name())
	for _, comp := range g.Components() {
		p, ok := c.profiles[comp.Name]
		if !ok {
			return nil, fmt.Errorf("profile: catalog for %s missing component %q", c.app, comp.Name)
		}
		comp.Cycles = p.MeanCycles
		if _, err := est.AddComponent(comp); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Edges() {
		if err := est.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return est, nil
}
