package profile

import (
	"math"
	"testing"
	"testing/quick"

	"offload/internal/callgraph"
	"offload/internal/rng"
)

func TestLinearModelRecoversExactLine(t *testing.T) {
	l := &LinearModel{}
	// cycles = 1000 + 5·bytes
	for _, x := range []int64{100, 200, 500, 1000, 4000} {
		l.Observe(x, 1000+5*float64(x))
	}
	a, b := l.Coefficients()
	if math.Abs(a-1000) > 1e-6 || math.Abs(b-5) > 1e-9 {
		t.Fatalf("Coefficients = (%g, %g), want (1000, 5)", a, b)
	}
	if got := l.Predict(2000); math.Abs(got-11000) > 1e-6 {
		t.Fatalf("Predict(2000) = %g, want 11000", got)
	}
}

func TestLinearModelNoisyFit(t *testing.T) {
	src := rng.New(1)
	l := &LinearModel{}
	for i := 0; i < 2000; i++ {
		x := int64(src.Uniform(1000, 100000))
		y := 5e6 + 120*float64(x) + src.Normal(0, 1e5)
		l.Observe(x, y)
	}
	_, b := l.Coefficients()
	if math.Abs(b-120)/120 > 0.02 {
		t.Fatalf("slope = %g, want ~120", b)
	}
}

func TestLinearModelDegenerateInputs(t *testing.T) {
	l := &LinearModel{}
	if l.Predict(100) != 0 {
		t.Fatal("empty model should predict 0")
	}
	// All observations at the same input size: mean-only model.
	l.Observe(500, 10)
	l.Observe(500, 20)
	l.Observe(500, 30)
	if got := l.Predict(9999); math.Abs(got-20) > 1e-9 {
		t.Fatalf("degenerate Predict = %g, want mean 20", got)
	}
}

func TestLinearModelNeverNegative(t *testing.T) {
	l := &LinearModel{}
	// Steep negative slope.
	l.Observe(0, 100)
	l.Observe(100, 0)
	if got := l.Predict(10000); got != 0 {
		t.Fatalf("Predict clamped = %g, want 0", got)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 200; i++ {
		e.Observe(0, 42)
	}
	if math.Abs(e.Predict(0)-42) > 1e-9 {
		t.Fatalf("EWMA = %g, want 42", e.Predict(0))
	}
}

func TestEWMAAdaptsToDrift(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 50; i++ {
		e.Observe(0, 10)
	}
	for i := 0; i < 50; i++ {
		e.Observe(0, 100)
	}
	if got := e.Predict(0); math.Abs(got-100) > 1 {
		t.Fatalf("EWMA after drift = %g, want ~100", got)
	}
}

func TestEWMAFirstObservationSeedsValue(t *testing.T) {
	e := NewEWMA(0.01)
	e.Observe(0, 77)
	if e.Predict(0) != 77 {
		t.Fatalf("EWMA after one observation = %g, want 77", e.Predict(0))
	}
}

func TestEWMAAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%g) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestWindowQuantile(t *testing.T) {
	wq := NewWindowQuantile(10, 0.9)
	for i := 1; i <= 10; i++ {
		wq.Observe(0, float64(i))
	}
	if got := wq.Predict(0); got != 9 {
		t.Fatalf("P90 of 1..10 = %g, want 9", got)
	}
	// Window slides: push ten 100s, old values evicted.
	for i := 0; i < 10; i++ {
		wq.Observe(0, 100)
	}
	if got := wq.Predict(0); got != 100 {
		t.Fatalf("P90 after slide = %g, want 100", got)
	}
}

func TestWindowQuantileMinMax(t *testing.T) {
	wq := NewWindowQuantile(5, 0)
	for _, v := range []float64{5, 3, 9, 1, 7} {
		wq.Observe(0, v)
	}
	if got := wq.Predict(0); got != 1 {
		t.Fatalf("q=0 = %g, want min 1", got)
	}
	wqMax := NewWindowQuantile(5, 1)
	for _, v := range []float64{5, 3, 9, 1, 7} {
		wqMax.Observe(0, v)
	}
	if got := wqMax.Predict(0); got != 9 {
		t.Fatalf("q=1 = %g, want max 9", got)
	}
}

func TestWindowQuantileEmptyPredictsZero(t *testing.T) {
	if got := NewWindowQuantile(5, 0.5).Predict(0); got != 0 {
		t.Fatalf("empty window Predict = %g", got)
	}
}

func TestMeterExactWhenNoiseless(t *testing.T) {
	m := NewMeter(rng.New(1), 0)
	f := func(v uint32) bool {
		return m.Measure(float64(v)) == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterUnbiasedAndSpread(t *testing.T) {
	m := NewMeter(rng.New(2), 0.2)
	const truth = 1e9
	sum, sumsq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := m.Measure(truth)
		if v <= 0 {
			t.Fatal("measurement not positive")
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	if math.Abs(mean-truth)/truth > 0.01 {
		t.Fatalf("meter biased: mean = %g, want ~%g", mean, truth)
	}
	rel := math.Sqrt(sumsq/n-mean*mean) / mean
	if math.Abs(rel-0.2) > 0.02 {
		t.Fatalf("relative spread = %g, want ~0.2", rel)
	}
}

func TestBuildCatalog(t *testing.T) {
	g := callgraph.ReportGen()
	cat, err := BuildCatalog(g, NewMeter(rng.New(3), 0.1), 50)
	if err != nil {
		t.Fatal(err)
	}
	if cat.App() != g.Name() {
		t.Fatalf("App = %q", cat.App())
	}
	if len(cat.Profiles()) != g.Len() {
		t.Fatalf("catalog has %d profiles, want %d", len(cat.Profiles()), g.Len())
	}
	for _, comp := range g.Components() {
		p, ok := cat.Lookup(comp.Name)
		if !ok {
			t.Fatalf("missing profile for %s", comp.Name)
		}
		if p.RelativeError(comp.Cycles) > 0.15 {
			t.Errorf("%s: mean estimate off by %.0f%%", comp.Name, 100*p.RelativeError(comp.Cycles))
		}
		if p.P95Cycles < p.MeanCycles*0.8 {
			t.Errorf("%s: P95 %g implausibly below mean %g", comp.Name, p.P95Cycles, p.MeanCycles)
		}
	}
}

func TestBuildCatalogValidation(t *testing.T) {
	g := callgraph.ReportGen()
	if _, err := BuildCatalog(g, NewMeter(rng.New(1), 0), 0); err == nil {
		t.Fatal("runs=0 accepted")
	}
	empty := callgraph.New("empty")
	if _, err := BuildCatalog(empty, NewMeter(rng.New(1), 0), 5); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func TestEstimatedGraph(t *testing.T) {
	g := callgraph.MLBatch()
	cat, err := BuildCatalog(g, NewMeter(rng.New(4), 0), 3) // noiseless
	if err != nil {
		t.Fatal(err)
	}
	est, err := cat.EstimatedGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if est.Len() != g.Len() || len(est.Edges()) != len(g.Edges()) {
		t.Fatal("estimated graph changed shape")
	}
	for i := 0; i < g.Len(); i++ {
		id := callgraph.ComponentID(i)
		if est.Component(id).Cycles != g.Component(id).Cycles {
			t.Fatalf("noiseless estimate differs for %s", g.Component(id).Name)
		}
	}
}

func TestEstimatedGraphMissingComponent(t *testing.T) {
	g := callgraph.MLBatch()
	cat, err := BuildCatalog(g, NewMeter(rng.New(4), 0), 3)
	if err != nil {
		t.Fatal(err)
	}
	other := callgraph.ReportGen()
	if _, err := cat.EstimatedGraph(other); err == nil {
		t.Fatal("catalog applied to foreign graph")
	}
}
