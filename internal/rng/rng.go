// Package rng provides deterministic pseudo-random number generation and
// the probability distributions used throughout the offloading simulator.
//
// Every stochastic component in the repository draws from a *rng.Source so
// that simulations are exactly reproducible given a seed, and so that
// independent subsystems can be given independent (split) streams without
// sharing mutable state across goroutines.
package rng

import (
	"fmt"
	"math"
)

// Source is a deterministic pseudo-random source based on the
// splitmix64/xoshiro256** construction. The zero value is NOT usable; create
// sources with New or by splitting an existing source.
//
// Source is not safe for concurrent use; split one stream per goroutine.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Distinct seeds yield uncorrelated
// streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	r := &Source{}
	// Expand the seed with splitmix64 so that small or similar seeds still
	// produce well-distributed initial state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives a new independent Source from r. The derived stream is a
// deterministic function of r's current state, and advancing r afterwards
// does not affect the child.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Derive maps (base, stream) to a new seed with a splitmix64 finalizer, so
// that callers can hand out one independent seed per shard/experiment/
// replication purely from immutable inputs. Unlike Split, Derive consumes
// no generator state: the result depends only on its arguments, which is
// what makes parallel execution bit-identical to serial execution — worker
// count and completion order cannot influence which seed a stream gets.
//
// Distinct (base, stream) pairs yield uncorrelated seeds even when base
// and stream are small consecutive integers.
func Derive(base, stream uint64) uint64 {
	// Mix the stream index into the base with the golden-gamma increment,
	// then apply the splitmix64 finalizer twice (once over the combined
	// word, once over the result) so that low-entropy inputs diffuse into
	// all 64 bits.
	x := base + (stream+1)*0x9e3779b97f4a7c15
	for i := 0; i < 2; i++ {
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x = x ^ (x >> 31)
	}
	return x
}

// Fork returns a fresh Source for the given stream index derived from
// base. It is shorthand for New(Derive(base, stream)): a pure function of
// its arguments, safe to call concurrently from any number of goroutines.
func Fork(base, stream uint64) *Source {
	return New(Derive(base, stream))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rng: Intn called with n=%d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("rng: Exp called with rate=%g", rate))
	}
	u := r.Float64()
	// Guard u == 0, where Log would return -Inf.
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns a lognormally distributed float64 where the underlying
// normal has parameters mu and sigma.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed float64 with minimum xm and shape
// alpha. It panics if xm <= 0 or alpha <= 0.
func (r *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("rng: Pareto called with xm=%g alpha=%g", xm, alpha))
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf draws integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the CDF on construction, so sampling is
// O(log n).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s >= 0.
// It panics if n <= 0 or s < 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 || s < 0 {
		panic(fmt.Sprintf("rng: NewZipf called with n=%d s=%g", n, s))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Empirical samples from a fixed set of observed values, uniformly. It is
// used for trace-driven distributions (for example, measured cold-start
// times).
type Empirical struct {
	src    *Source
	values []float64
}

// NewEmpirical returns a sampler over a copy of values.
// It panics if values is empty.
func NewEmpirical(src *Source, values []float64) *Empirical {
	if len(values) == 0 {
		panic("rng: NewEmpirical called with no values")
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	return &Empirical{src: src, values: cp}
}

// Next returns a uniformly chosen observed value.
func (e *Empirical) Next() float64 {
	return e.values[e.src.Intn(len(e.values))]
}
