package rng

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: streams diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Record the child's first draws, then advance the parent and verify the
	// child continues its own deterministic stream.
	want := make([]uint64, 10)
	probe := New(7)
	probeChild := probe.Split()
	for i := range want {
		want[i] = probeChild.Uint64()
	}
	for i := 0; i < 50; i++ {
		parent.Uint64()
	}
	for i := range want {
		if got := child.Uint64(); got != want[i] {
			t.Fatalf("child stream affected by parent at %d: %d != %d", i, got, want[i])
		}
	}
}

func TestDeriveDeterministic(t *testing.T) {
	for base := uint64(0); base < 4; base++ {
		for stream := uint64(0); stream < 4; stream++ {
			if Derive(base, stream) != Derive(base, stream) {
				t.Fatalf("Derive(%d, %d) not deterministic", base, stream)
			}
		}
	}
}

func TestDeriveDistinctStreams(t *testing.T) {
	// Consecutive small bases and streams — the worst case for a weak
	// mixer — must still yield pairwise-distinct seeds.
	seen := map[uint64]string{}
	for base := uint64(0); base < 64; base++ {
		for stream := uint64(0); stream < 64; stream++ {
			s := Derive(base, stream)
			key := fmt.Sprintf("base=%d stream=%d", base, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Derive collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestForkStreamIndependence(t *testing.T) {
	// Forked streams must be uncorrelated: across many draws, sibling
	// streams never emit the same value at the same position, and the
	// order in which streams are created or drawn from cannot matter
	// (each Fork is a pure function of base+index).
	const streams, draws = 16, 500
	all := make([][]uint64, streams)
	for i := range all {
		src := Fork(99, uint64(i))
		all[i] = make([]uint64, draws)
		for j := range all[i] {
			all[i][j] = src.Uint64()
		}
	}
	for i := 0; i < streams; i++ {
		for j := i + 1; j < streams; j++ {
			same := 0
			for k := 0; k < draws; k++ {
				if all[i][k] == all[j][k] {
					same++
				}
			}
			if same > 0 {
				t.Fatalf("streams %d and %d matched at %d of %d positions", i, j, same, draws)
			}
		}
	}
	// Re-deriving a stream out of order reproduces it exactly.
	replay := Fork(99, 7)
	for k := 0; k < draws; k++ {
		if got := replay.Uint64(); got != all[7][k] {
			t.Fatalf("re-forked stream 7 diverged at draw %d", k)
		}
	}
}

func TestForkMeanIsUniform(t *testing.T) {
	// Sanity-check Derive's diffusion: the mean of the first Float64 drawn
	// from each of many consecutive streams should approximate 0.5.
	const n = 10000
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += Fork(1, i).Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("first draws across streams have mean %g, want ~0.5", mean)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	tests := []struct {
		name string
		rate float64
	}{
		{"rate 1", 1},
		{"rate 0.1", 0.1},
		{"rate 50", 50},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New(99)
			const n = 200000
			sum := 0.0
			for i := 0; i < n; i++ {
				v := r.Exp(tt.rate)
				if v < 0 {
					t.Fatalf("Exp returned negative value %g", v)
				}
				sum += v
			}
			mean := sum / n
			want := 1 / tt.rate
			if math.Abs(mean-want)/want > 0.02 {
				t.Fatalf("Exp(rate=%g) mean = %g, want ~%g", tt.rate, mean, want)
			}
		})
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %g, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("Normal stddev = %g, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive value %g", v)
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2, 1.5) returned %g < xm", v)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		v := r.Uniform(5, 9)
		return v >= 5 && v < 9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Rank-0 frequency should approximate 1/H where H is the normalising sum.
	if counts[0] < n/10 {
		t.Fatalf("Zipf rank-0 frequency too low: %d", counts[0])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(12)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > n/50 {
			t.Fatalf("Zipf(s=0) not uniform: counts[%d]=%d", i, c)
		}
	}
}

func TestEmpiricalOnlyObservedValues(t *testing.T) {
	r := New(13)
	vals := []float64{1.5, 2.5, 42}
	e := NewEmpirical(r, vals)
	allowed := map[float64]bool{1.5: true, 2.5: true, 42: true}
	for i := 0; i < 1000; i++ {
		if v := e.Next(); !allowed[v] {
			t.Fatalf("Empirical returned unobserved value %g", v)
		}
	}
}

func TestEmpiricalCopiesInput(t *testing.T) {
	r := New(14)
	vals := []float64{1, 2, 3}
	e := NewEmpirical(r, vals)
	vals[0] = 999
	for i := 0; i < 100; i++ {
		if e.Next() == 999 {
			t.Fatal("Empirical did not copy its input slice")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(1)
	}
}
