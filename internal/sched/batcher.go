package sched

import (
	"fmt"

	"offload/internal/model"
	"offload/internal/sim"
)

// Batcher exploits delay tolerance by holding serverless-bound tasks of
// the same application and dispatching them back-to-back, so that all but
// the first reuse the warm container — the cold-start amortisation the E4
// experiment quantifies. A batch flushes when it reaches Size tasks or
// when the oldest member has waited MaxWait.
//
// Tasks the policy sends anywhere other than serverless bypass batching.
type Batcher struct {
	sched   *Scheduler
	size    int
	maxWait sim.Duration

	queues  map[string]*batchQueue
	flushes uint64
	batched uint64
}

type batchQueue struct {
	tasks []*model.Task
	timer sim.EventRef
}

// NewBatcher wraps a scheduler. Size must be positive; maxWait zero means
// "flush only when full" (use with a finite workload followed by Flush).
func NewBatcher(s *Scheduler, size int, maxWait sim.Duration) (*Batcher, error) {
	if s == nil {
		return nil, fmt.Errorf("sched: batcher over nil scheduler")
	}
	if size <= 0 {
		return nil, fmt.Errorf("sched: batch size %d not positive", size)
	}
	if maxWait < 0 {
		return nil, fmt.Errorf("sched: negative batch wait")
	}
	return &Batcher{
		sched:   s,
		size:    size,
		maxWait: maxWait,
		queues:  make(map[string]*batchQueue),
	}, nil
}

// Submit routes a task: serverless-bound tasks queue for batching, all
// others dispatch immediately.
func (b *Batcher) Submit(task *model.Task) {
	env := b.sched.env
	task.Submitted = env.Eng.Now()
	placement := b.sched.policy.Decide(task, env, b.sched.pred)
	if placement != model.PlaceFunction || env.Functions == nil {
		b.sched.Dispatch(task, placement)
		return
	}
	q, ok := b.queues[task.App]
	if !ok {
		q = &batchQueue{}
		b.queues[task.App] = q
	}
	q.tasks = append(q.tasks, task)
	b.batched++
	if len(q.tasks) >= b.size {
		b.flush(task.App, q)
		return
	}
	if !q.timer.Scheduled() && b.maxWait > 0 {
		q.timer = env.Eng.After(b.maxWait, func() {
			q.timer = sim.EventRef{}
			if len(q.tasks) > 0 {
				b.flush(task.App, q)
			}
		})
	}
}

// Flush dispatches every queued batch immediately, regardless of fill.
func (b *Batcher) Flush() {
	for app, q := range b.queues {
		if len(q.tasks) > 0 {
			b.flush(app, q)
		}
	}
}

// flush dispatches the queue's tasks sequentially: each next task is
// submitted when the previous one completes, so the platform's keep-alive
// pool serves them from the same warm container.
func (b *Batcher) flush(app string, q *batchQueue) {
	tasks := q.tasks
	q.tasks = nil
	b.sched.env.Eng.Cancel(q.timer)
	q.timer = sim.EventRef{}
	b.flushes++
	var runNext func(i int)
	runNext = func(i int) {
		if i >= len(tasks) {
			return
		}
		b.sched.DispatchThen(tasks[i], model.PlaceFunction, func(model.Outcome) {
			runNext(i + 1)
		})
	}
	runNext(0)
	_ = app
}

// Flushes returns how many batches were dispatched.
func (b *Batcher) Flushes() uint64 { return b.flushes }

// Batched returns how many tasks went through batching.
func (b *Batcher) Batched() uint64 { return b.batched }

// Pending returns tasks currently waiting in batch queues.
func (b *Batcher) Pending() int {
	n := 0
	for _, q := range b.queues {
		n += len(q.tasks)
	}
	return n
}
