package sched

import (
	"fmt"
	"math"

	"offload/internal/model"
	"offload/internal/sim"
)

// Budget caps serverless spending per virtual day. When the cap is
// reached, a BudgetedPolicy stops choosing paid placements until the next
// day starts — spending becomes a hard constraint instead of a weighted
// objective term, which is how organisations actually run cloud accounts.
type Budget struct {
	eng      *sim.Engine
	dailyUSD float64

	day     int
	spent   float64
	blocked uint64
}

// NewBudget returns a budget of dailyUSD per 24 h of virtual time.
func NewBudget(eng *sim.Engine, dailyUSD float64) (*Budget, error) {
	if eng == nil {
		return nil, fmt.Errorf("sched: budget without engine")
	}
	if dailyUSD <= 0 {
		return nil, fmt.Errorf("sched: daily budget must be positive, got %g", dailyUSD)
	}
	return &Budget{eng: eng, dailyUSD: dailyUSD}, nil
}

// roll resets the accumulator when the virtual day changes.
func (b *Budget) roll() {
	day := int(float64(b.eng.Now()) / 86400)
	if day != b.day {
		b.day = day
		b.spent = 0
	}
}

// Remaining returns today's unspent budget.
func (b *Budget) Remaining() float64 {
	b.roll()
	return math.Max(0, b.dailyUSD-b.spent)
}

// Exhausted reports whether today's budget is gone.
func (b *Budget) Exhausted() bool { return b.Remaining() <= 0 }

// Hook returns an outcome callback that charges the budget; register it
// with the scheduler (core does this automatically).
func (b *Budget) Hook() func(model.Outcome) {
	return func(o model.Outcome) {
		b.roll()
		b.spent += o.CostUSD
	}
}

// Blocked returns how many placement decisions the budget overrode.
func (b *Budget) Blocked() uint64 { return b.blocked }

// BudgetedPolicy wraps a policy and overrides paid placements (serverless)
// with the cheapest free one once the daily budget is exhausted.
type BudgetedPolicy struct {
	Inner  Policy
	Budget *Budget
}

var _ Policy = (*BudgetedPolicy)(nil)

// Name implements Policy.
func (p *BudgetedPolicy) Name() string { return p.Inner.Name() + "+budget" }

// Decide implements Policy.
func (p *BudgetedPolicy) Decide(task *model.Task, env *Env, pred Predictor) model.Placement {
	placement := p.Inner.Decide(task, env, pred)
	if placement != model.PlaceFunction || !p.Budget.Exhausted() {
		return placement
	}
	p.Budget.blocked++
	// Fall back to the cheapest free capacity: the edge if present (its
	// cost is sunk), the VM if present (likewise), else the device.
	switch {
	case env.Edge != nil:
		return model.PlaceEdge
	case env.VM != nil:
		return model.PlaceVM
	default:
		return model.PlaceLocal
	}
}

// ObserveOutcome forwards outcome feedback to the wrapped policy when it
// learns online, so budget capping composes with adaptive placement.
func (p *BudgetedPolicy) ObserveOutcome(o model.Outcome, env *Env) {
	if fp, ok := p.Inner.(FeedbackPolicy); ok {
		fp.ObserveOutcome(o, env)
	}
}
