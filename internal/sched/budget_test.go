package sched

import (
	"testing"

	"offload/internal/model"
	"offload/internal/sim"
)

func TestBudgetValidation(t *testing.T) {
	if _, err := NewBudget(nil, 1); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewBudget(sim.NewEngine(), 0); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewBudget(sim.NewEngine(), -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestBudgetChargesAndExhausts(t *testing.T) {
	eng := sim.NewEngine()
	b, err := NewBudget(eng, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	hook := b.Hook()
	if b.Exhausted() {
		t.Fatal("fresh budget exhausted")
	}
	hook(model.Outcome{CostUSD: 0.0006})
	if b.Exhausted() {
		t.Fatal("half-spent budget exhausted")
	}
	hook(model.Outcome{CostUSD: 0.0006})
	if !b.Exhausted() {
		t.Fatal("overspent budget not exhausted")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %g", b.Remaining())
	}
}

func TestBudgetResetsDaily(t *testing.T) {
	eng := sim.NewEngine()
	b, err := NewBudget(eng, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b.Hook()(model.Outcome{CostUSD: 1})
	if !b.Exhausted() {
		t.Fatal("not exhausted")
	}
	eng.RunUntil(86400 + 10) // next virtual day
	if b.Exhausted() {
		t.Fatal("budget did not reset on day roll")
	}
}

func TestBudgetedPolicyOverridesWhenExhausted(t *testing.T) {
	env := testEnv(t)
	b, err := NewBudget(env.Eng, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	pol := &BudgetedPolicy{Inner: CloudAll{}, Budget: b}
	task := heavyTask(1)
	if got := pol.Decide(task, env, Exact{}); got != model.PlaceFunction {
		t.Fatalf("fresh budget placed at %v", got)
	}
	b.Hook()(model.Outcome{CostUSD: 1}) // blow the budget
	if got := pol.Decide(task, env, Exact{}); got != model.PlaceEdge {
		t.Fatalf("exhausted budget placed at %v, want edge fallback", got)
	}
	if b.Blocked() != 1 {
		t.Fatalf("Blocked = %d", b.Blocked())
	}
	// Without edge or VM the fallback is local.
	env.Edge, env.EdgePath, env.VM = nil, nil, nil
	if got := pol.Decide(task, env, Exact{}); got != model.PlaceLocal {
		t.Fatalf("fallback without free capacity = %v", got)
	}
}

func TestBudgetedSchedulerEndToEnd(t *testing.T) {
	env := testEnv(t)
	env.Edge, env.EdgePath, env.VM = nil, nil, nil
	b, err := NewBudget(env.Eng, 0.0002) // roughly one heavy task's bill
	if err != nil {
		t.Fatal(err)
	}
	pol := &BudgetedPolicy{Inner: CloudAll{}, Budget: b}
	s, err := New(env, pol, Exact{}, WithOutcomeHook(b.Hook()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		task := heavyTask(model.TaskID(i + 1))
		task.Cycles = 20e9
		env.Eng.At(sim.Time(i*200), func() { s.Submit(task) })
	}
	env.Eng.Run()
	st := s.Stats()
	if st.ByPlacement[model.PlaceFunction] == 0 {
		t.Fatal("no task ran on serverless before the budget hit")
	}
	if st.ByPlacement[model.PlaceLocal] == 0 {
		t.Fatal("no task fell back to local after exhaustion")
	}
	if st.Failed != 0 {
		t.Fatalf("Failed = %d", st.Failed)
	}
}
