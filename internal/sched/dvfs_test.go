package sched

import (
	"math"
	"testing"

	"offload/internal/model"
)

func TestLocalDVFSStretchesToDeadline(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, LocalOnly{}, Exact{}, WithLocalDVFS(0.1))
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	// 10 s of full-speed work with a 100 s deadline: the policy should run
	// at scale 10/(100·0.8) = 0.125 → 80 s execution.
	task := &model.Task{ID: 1, App: "x", Cycles: 10e9, Deadline: 100}
	s.Submit(task)
	env.Eng.Run()
	if out.Failed {
		t.Fatal("run failed")
	}
	if math.Abs(float64(out.CompletionTime())-80) > 1e-6 {
		t.Fatalf("DVFS completion = %v, want 80", out.CompletionTime())
	}
	if out.MissedDeadline() {
		t.Fatal("DVFS missed the deadline it was sized for")
	}
	// Energy ∝ f: 0.125 scale → 2 W × 0.125² × 80 s = 2.5 J (vs 20 J full).
	if math.Abs(out.EnergyMilliJ-2500) > 1 {
		t.Fatalf("DVFS energy = %g mJ, want 2500", out.EnergyMilliJ)
	}
}

func TestLocalDVFSFloorsAtMinScale(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, LocalOnly{}, Exact{}, WithLocalDVFS(0.5))
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	// No deadline: fully delay tolerant, runs at the floor (0.5 → 2x time).
	task := &model.Task{ID: 2, App: "x", Cycles: 10e9}
	s.Submit(task)
	env.Eng.Run()
	if math.Abs(float64(out.CompletionTime())-20) > 1e-6 {
		t.Fatalf("floored completion = %v, want 20", out.CompletionTime())
	}
}

func TestLocalDVFSFullSpeedForTightDeadlines(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, LocalOnly{}, Exact{}, WithLocalDVFS(0.25))
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	// Deadline barely above full-speed time: no stretching possible.
	task := &model.Task{ID: 3, App: "x", Cycles: 10e9, Deadline: 11}
	s.Submit(task)
	env.Eng.Run()
	if math.Abs(float64(out.CompletionTime())-10) > 1e-6 {
		t.Fatalf("tight-deadline completion = %v, want full-speed 10", out.CompletionTime())
	}
}

func TestDVFSDisabledRunsFullSpeed(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, LocalOnly{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	task := &model.Task{ID: 4, App: "x", Cycles: 10e9, Deadline: 100}
	s.Submit(task)
	env.Eng.Run()
	if math.Abs(float64(out.CompletionTime())-10) > 1e-6 {
		t.Fatalf("default completion = %v, want 10", out.CompletionTime())
	}
}
