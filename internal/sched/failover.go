package sched

import (
	"fmt"

	"offload/internal/model"
	"offload/internal/sim"
	"offload/internal/trace"
)

// Failover configures the scheduler's regional failover layer: a passive
// per-region health tracker fed by attempt outcomes, canary probes that
// discover recovery, re-homing of tasks whose region died (paying the
// inter-region state-transfer cost), and an optional graceful-degradation
// ladder that escalates from shedding background work to queue-and-wait
// as an incident drags on.
//
// The layer routes; it never executes. Every task still flows through the
// scheduler's normal dispatch, retry and resilience machinery — failover
// only decides where (and when) the next dispatch goes. With failover
// enabled, a task's final retry attempt always runs locally: the
// last-resort rung of the ladder, so a flapping recovery cannot strand a
// task out of attempts.
type Failover struct {
	// Regions names the region each remote placement is homed in.
	// Placements absent from the map are region-less: never tracked,
	// always considered healthy.
	Regions map[model.Placement]string

	// Link prices the inter-region backbone a re-homed task's input state
	// crosses. The zero value takes model.DefaultInterRegionLink.
	Link model.InterRegionLink

	// FailureThreshold consecutive transient failures mark a region down
	// (its mean detection lag is exported as MTTD). Default 3.
	FailureThreshold int

	// ProbeEvery paces the canary probes a down region receives until one
	// succeeds and marks it up again (mean outage length is exported as
	// MTTR). Default 15 s.
	ProbeEvery sim.Duration

	// Ladder enables the graceful-degradation ladder. Nil re-homes every
	// task of a down region (failover only).
	Ladder *Ladder
}

// Ladder is the graceful-degradation state machine, entered when a region
// goes down and escalated by how long the incident has lasted:
//
//	healthy → shed-low → localize-critical → queue-and-wait
//
// Each rung adds a behaviour on top of re-homing: at shed-low,
// low-priority tasks are parked in the wait queue instead of consuming
// surviving capacity; at localize-critical, critical tasks run locally
// instead of gambling on the backbone; at queue-and-wait, normal tasks
// park too and only critical work still executes (locally). Parked tasks
// re-dispatch in FIFO order the moment a region recovers, or run locally
// when the simulation would otherwise end with them still parked — the
// ladder degrades service, it never drops work. Only a full wait queue
// loses tasks.
type Ladder struct {
	// ShedLowAfter is how long after detection the shed-low rung engages.
	// Default 0 (immediately).
	ShedLowAfter sim.Duration
	// LocalizeAfter is how long after detection the localize-critical rung
	// engages. Default 30 s.
	LocalizeAfter sim.Duration
	// QueueAfter is how long after detection the queue-and-wait rung
	// engages. Default 120 s.
	QueueAfter sim.Duration
	// MaxQueue bounds the wait queue; overflow is lost. Default 4096.
	MaxQueue int
}

func (l *Ladder) localizeAfter() sim.Duration {
	if l.LocalizeAfter <= 0 {
		return 30
	}
	return l.LocalizeAfter
}

func (l *Ladder) queueAfter() sim.Duration {
	if l.QueueAfter <= 0 {
		return 120
	}
	return l.QueueAfter
}

func (l *Ladder) maxQueue() int {
	if l.MaxQueue <= 0 {
		return 4096
	}
	return l.MaxQueue
}

// Validate reports whether the configuration is usable.
func (f *Failover) Validate() error {
	if len(f.Regions) == 0 {
		return fmt.Errorf("sched: failover without region assignments")
	}
	for p, name := range f.Regions {
		switch p {
		case model.PlaceEdge, model.PlaceFunction, model.PlaceVM:
		default:
			return fmt.Errorf("sched: failover region for non-remote placement %v", p)
		}
		if name == "" {
			return fmt.Errorf("sched: empty region name for placement %v", p)
		}
	}
	if f.Link != (model.InterRegionLink{}) {
		if err := f.Link.Validate(); err != nil {
			return err
		}
	}
	if f.FailureThreshold < 0 {
		return fmt.Errorf("sched: negative failover failure threshold")
	}
	if f.ProbeEvery < 0 {
		return fmt.Errorf("sched: negative failover probe interval")
	}
	if l := f.Ladder; l != nil {
		if l.ShedLowAfter < 0 || l.LocalizeAfter < 0 || l.QueueAfter < 0 || l.MaxQueue < 0 {
			return fmt.Errorf("sched: negative ladder parameter")
		}
	}
	return nil
}

func (f *Failover) failureThreshold() int {
	if f.FailureThreshold > 0 {
		return f.FailureThreshold
	}
	return 3
}

func (f *Failover) probeEvery() sim.Duration {
	if f.ProbeEvery > 0 {
		return f.ProbeEvery
	}
	return 15
}

func (f *Failover) link() model.InterRegionLink {
	if f.Link == (model.InterRegionLink{}) {
		return model.DefaultInterRegionLink()
	}
	return f.Link
}

// DegradationMode is the ladder's current rung.
type DegradationMode int

// The ladder rungs, in escalation order.
const (
	DegradeHealthy DegradationMode = iota
	DegradeShedLow
	DegradeLocalizeCritical
	DegradeQueueAndWait
)

// String returns the rung's name.
func (m DegradationMode) String() string {
	switch m {
	case DegradeHealthy:
		return "healthy"
	case DegradeShedLow:
		return "shed-low"
	case DegradeLocalizeCritical:
		return "localize-critical"
	case DegradeQueueAndWait:
		return "queue-and-wait"
	}
	return fmt.Sprintf("degradation-mode(%d)", int(m))
}

// RegionAwarePolicy is implemented by policies (notably the adaptive
// controller) that want region up/down transitions as context: a region
// going dark is a regime change worth resetting learned state over, long
// before per-outcome drift statistics would notice.
type RegionAwarePolicy interface {
	Policy
	ObserveRegion(region string, placements []model.Placement, down bool, now sim.Time)
}

// FailoverStats counts what the failover layer did to tasks.
type FailoverStats struct {
	Shed      uint64 // distinct low-priority tasks parked by the ladder (drain re-parks don't re-count)
	Queued    uint64 // distinct normal-priority tasks parked by queue-and-wait (or no alternative)
	ReHomed   uint64 // tasks re-dispatched to a surviving region
	Localized uint64 // tasks forced onto the device (critical rung, last resort, flush)
	Lost      uint64 // tasks dropped because the wait queue overflowed
	Probes    uint64 // canary probes sent to down regions

	// StateTransferUSD is the egress money re-homing paid in total.
	StateTransferUSD float64
}

// RegionSnapshot is one region's health ledger at a point in time.
type RegionSnapshot struct {
	Name string
	Down bool
	// Downs counts down transitions; Recoveries counts completed ups.
	Downs      uint64
	Recoveries uint64
	// MTTDSeconds and MTTRSeconds are means over detections/recoveries
	// (zero when none happened yet).
	MTTDSeconds float64
	MTTRSeconds float64
	// DownSeconds is total time spent down, including a still-open outage.
	DownSeconds float64
}

// Availability returns the fraction of the elapsed run the region was up.
func (r RegionSnapshot) Availability(elapsed float64) float64 {
	if elapsed <= 0 {
		return 1
	}
	a := 1 - r.DownSeconds/elapsed
	if a < 0 {
		return 0
	}
	return a
}

// regionHealth is the live tracker behind one RegionSnapshot.
type regionHealth struct {
	name       string
	placements []model.Placement // env placements homed here, canonical order

	down      bool
	streak    int      // consecutive transient failures
	firstFail sim.Time // start of the current failure streak
	downAt    sim.Time

	downs       uint64
	recoveries  uint64
	mttdSum     float64
	mttrSum     float64
	downSeconds float64
}

// waiting is one parked task in the ladder's wait queue.
type waiting struct {
	task      *model.Task
	placement model.Placement // original target, re-routed on drain
}

// failover is the runtime behind WithFailover.
type failover struct {
	s   *Scheduler
	cfg Failover

	regions     []*regionHealth // deterministic order (first appearance over canonical placements)
	byPlacement map[model.Placement]*regionHealth
	remote      []model.Placement // env's remote placements, canonical order

	waitq    []waiting
	draining bool // set while drain re-routes the queue: re-parks must not re-count
	lastRung DegradationMode

	nDown          int
	unionDownStart sim.Time
	unionDownSecs  float64

	probeSeq uint64

	stats FailoverStats
}

// WithFailover enables the regional failover layer. See Failover.
func WithFailover(cfg Failover) Option {
	return func(s *Scheduler) { s.fo = &failover{cfg: cfg} }
}

// initFailover validates the configuration against the environment and
// builds the health trackers; called from New.
func (s *Scheduler) initFailover() error {
	f := s.fo
	if err := f.cfg.Validate(); err != nil {
		return err
	}
	f.s = s
	f.byPlacement = make(map[model.Placement]*regionHealth)
	byName := make(map[string]*regionHealth)
	for _, p := range model.AllPlacements() {
		if p == model.PlaceLocal || !s.envHas(p) {
			continue
		}
		f.remote = append(f.remote, p)
		name, ok := f.cfg.Regions[p]
		if !ok {
			continue
		}
		rh := byName[name]
		if rh == nil {
			rh = &regionHealth{name: name}
			byName[name] = rh
			f.regions = append(f.regions, rh)
		}
		rh.placements = append(rh.placements, p)
		f.byPlacement[p] = rh
	}
	if len(f.regions) == 0 {
		return fmt.Errorf("sched: no failover region maps to an available placement")
	}
	return nil
}

// envHas reports whether the environment serves the placement.
func (s *Scheduler) envHas(p model.Placement) bool {
	switch p {
	case model.PlaceLocal:
		return true
	case model.PlaceEdge:
		return s.env.Edge != nil
	case model.PlaceFunction:
		return s.env.Functions != nil
	case model.PlaceVM:
		return s.env.VM != nil
	}
	return false
}

// HasFailover reports whether the regional failover layer is installed.
func (s *Scheduler) HasFailover() bool { return s.fo != nil }

// FailoverStats returns the failover layer's counters (zero when the
// layer is disabled).
func (s *Scheduler) FailoverStats() FailoverStats {
	if s.fo == nil {
		return FailoverStats{}
	}
	return s.fo.stats
}

// DegradationMode returns the ladder's current rung; DegradeHealthy when
// the layer (or the ladder) is off or every region is up. Read-only:
// safe to sample from an observer.
func (s *Scheduler) DegradationMode() DegradationMode {
	if s.fo == nil {
		return DegradeHealthy
	}
	return s.fo.rungAt(s.env.Eng.Now())
}

// DegradedSeconds returns total simulated time with at least one region
// down, including a still-open incident.
func (s *Scheduler) DegradedSeconds() float64 {
	if s.fo == nil {
		return 0
	}
	total := s.fo.unionDownSecs
	if s.fo.nDown > 0 {
		total += float64(s.env.Eng.Now().Sub(s.fo.unionDownStart))
	}
	return total
}

// FailoverQueueLen returns how many tasks the ladder has parked right now.
func (s *Scheduler) FailoverQueueLen() int {
	if s.fo == nil {
		return 0
	}
	return len(s.fo.waitq)
}

// HealthyRegions returns how many tracked regions are up, and the total.
func (s *Scheduler) HealthyRegions() (healthy, total int) {
	if s.fo == nil {
		return 0, 0
	}
	total = len(s.fo.regions)
	return total - s.fo.nDown, total
}

// RegionSnapshots returns each tracked region's health ledger, in the
// layer's deterministic region order.
func (s *Scheduler) RegionSnapshots() []RegionSnapshot {
	if s.fo == nil {
		return nil
	}
	now := s.env.Eng.Now()
	out := make([]RegionSnapshot, 0, len(s.fo.regions))
	for _, rh := range s.fo.regions {
		snap := RegionSnapshot{
			Name:        rh.name,
			Down:        rh.down,
			Downs:       rh.downs,
			Recoveries:  rh.recoveries,
			DownSeconds: rh.downSeconds,
		}
		if rh.down {
			snap.DownSeconds += float64(now.Sub(rh.downAt))
		}
		if rh.downs > 0 {
			snap.MTTDSeconds = rh.mttdSum / float64(rh.downs)
		}
		if rh.recoveries > 0 {
			snap.MTTRSeconds = rh.mttrSum / float64(rh.recoveries)
		}
		out = append(out, snap)
	}
	return out
}

// FlushFailover dispatches any still-parked tasks locally and returns how
// many it flushed. core.System.Run calls it once the event queue drains,
// so a run that ends mid-incident completes its parked work on the device
// instead of losing it.
func (s *Scheduler) FlushFailover() int {
	if s.fo == nil || len(s.fo.waitq) == 0 {
		return 0
	}
	q := s.fo.waitq
	s.fo.waitq = nil
	for _, w := range q {
		s.fo.stats.Localized++
		s.dispatchDirect(w.task, model.PlaceLocal)
	}
	return len(q)
}

// regionTracer returns the attached tracer's region hooks, if it has any.
func (f *failover) regionTracer() (trace.RegionTracer, bool) {
	rt, ok := f.s.tr.(trace.RegionTracer)
	return rt, ok && f.s.tr != nil
}

// rungAt computes the ladder rung at time now from how long the oldest
// still-down region has been down. Read-only.
func (f *failover) rungAt(now sim.Time) DegradationMode {
	if f.cfg.Ladder == nil || f.nDown == 0 {
		return DegradeHealthy
	}
	oldest := sim.Time(0)
	first := true
	for _, rh := range f.regions {
		if rh.down && (first || rh.downAt < oldest) {
			oldest = rh.downAt
			first = false
		}
	}
	elapsed := now.Sub(oldest)
	l := f.cfg.Ladder
	switch {
	case elapsed >= l.queueAfter():
		return DegradeQueueAndWait
	case elapsed >= l.localizeAfter():
		return DegradeLocalizeCritical
	case elapsed >= l.ShedLowAfter:
		return DegradeShedLow
	}
	return DegradeHealthy
}

// noteRung emits a degradation span event when the rung moved since last
// observed. Called from the event-driven paths; the rung itself advances
// continuously and is sampled read-only by observers.
func (f *failover) noteRung(now sim.Time) {
	cur := f.rungAt(now)
	if cur == f.lastRung {
		return
	}
	if rt, ok := f.regionTracer(); ok {
		rt.DegradationChange(f.lastRung.String(), cur.String(), now)
	}
	f.lastRung = cur
}

// route is the failover layer's dispatch interception: every Dispatch
// (initial, plain-path retry, queue drain) flows through here and comes
// out as a direct dispatch, a deferred re-homed dispatch, a parked task,
// or — on queue overflow — a terminal failure.
func (f *failover) route(task *model.Task, p model.Placement) {
	now := f.s.env.Eng.Now()
	f.noteRung(now)
	// Last-resort localization: the final retry attempt of a remote task
	// runs on the device, which cannot be taken down by a regional fault.
	if p != model.PlaceLocal && f.s.retry.MaxAttempts > 1 &&
		f.s.attempts[task.ID]+1 >= f.s.retry.MaxAttempts {
		f.localize(task)
		return
	}
	rh := f.byPlacement[p]
	if rh == nil || !rh.down {
		f.s.dispatchDirect(task, p)
		return
	}
	rung := f.rungAt(now)
	if f.cfg.Ladder != nil && task.Priority < 0 && rung >= DegradeShedLow {
		f.park(task, p, true)
		return
	}
	alt, hasAlt := f.alternative(p)
	if task.Priority > 0 {
		if rung >= DegradeLocalizeCritical || !hasAlt {
			f.localize(task)
			return
		}
		f.rehome(task, p, alt)
		return
	}
	if f.cfg.Ladder != nil && rung >= DegradeQueueAndWait {
		f.park(task, p, false)
		return
	}
	if hasAlt {
		f.rehome(task, p, alt)
		return
	}
	if f.cfg.Ladder != nil {
		f.park(task, p, false)
		return
	}
	f.localize(task)
}

// alternative returns the first remote placement (canonical order) whose
// region is up, excluding the failed placement itself.
func (f *failover) alternative(failed model.Placement) (model.Placement, bool) {
	for _, p := range f.remote {
		if p == failed {
			continue
		}
		if rh := f.byPlacement[p]; rh != nil && rh.down {
			continue
		}
		return p, true
	}
	return model.PlaceUnknown, false
}

// rehome re-dispatches the task to a surviving region after its input
// state crosses the inter-region link, charging the egress cost to the
// task's sunk spend.
func (f *failover) rehome(task *model.Task, from, to model.Placement) {
	link := f.cfg.link()
	cost := link.TransferCostUSD(task.InputBytes)
	f.s.sunkUSD[task.ID] += cost
	f.stats.StateTransferUSD += cost
	f.stats.ReHomed++
	now := f.s.env.Eng.Now()
	if rt, ok := f.regionTracer(); ok {
		rt.TaskRehomed(task.ID, from, to, now)
	}
	f.s.env.Eng.After(link.TransferTime(task.InputBytes), func() {
		f.s.dispatchDirect(task, to)
	})
}

// localize runs the task on the device immediately.
func (f *failover) localize(task *model.Task) {
	f.stats.Localized++
	f.s.dispatchDirect(task, model.PlaceLocal)
}

// park defers the task until a region recovers (FIFO) or the run ends
// (flush). A full queue loses the task.
func (f *failover) park(task *model.Task, p model.Placement, shed bool) {
	max := 4096
	if f.cfg.Ladder != nil {
		max = f.cfg.Ladder.maxQueue()
	}
	if len(f.waitq) >= max {
		f.stats.Lost++
		f.s.fail(task, p, f.s.finish)
		return
	}
	f.waitq = append(f.waitq, waiting{task: task, placement: p})
	if f.draining {
		// A drain re-park: the task was already counted when it first
		// entered the queue. Counting it again would inflate Shed/Queued
		// by one per drain the incident survives, breaking the
		// one-count-per-task identity the tables rely on.
		return
	}
	if shed {
		f.stats.Shed++
	} else {
		f.stats.Queued++
	}
}

// drain re-routes every parked task in FIFO order; called when a region
// recovers. Tasks whose target is still down simply park again — without
// re-incrementing the park counters (see park).
func (f *failover) drain() {
	q := f.waitq
	f.waitq = nil
	f.draining = true
	for _, w := range q {
		f.route(w.task, w.placement)
	}
	f.draining = false
}

// observe feeds one genuine attempt outcome into the health tracker:
// transient failures count against the region, successes count for it,
// and task-caused failures (non-transient) say nothing about the region.
func (f *failover) observe(p model.Placement, failed bool, err error, now sim.Time) {
	rh := f.byPlacement[p]
	if rh == nil {
		return
	}
	if failed && model.Transient(err) {
		f.noteFailure(rh, now)
		return
	}
	if !failed {
		f.noteSuccess(rh, now)
	}
}

func (f *failover) noteFailure(rh *regionHealth, now sim.Time) {
	rh.streak++
	if rh.streak == 1 {
		rh.firstFail = now
	}
	if !rh.down && rh.streak >= f.cfg.failureThreshold() {
		f.markDown(rh, now)
	}
}

func (f *failover) noteSuccess(rh *regionHealth, now sim.Time) {
	rh.streak = 0
	if rh.down {
		f.markUp(rh, now)
	}
}

func (f *failover) markDown(rh *regionHealth, now sim.Time) {
	rh.down = true
	rh.downAt = now
	rh.downs++
	rh.mttdSum += float64(now.Sub(rh.firstFail))
	f.nDown++
	if f.nDown == 1 {
		f.unionDownStart = now
	}
	if rp, ok := f.s.policy.(RegionAwarePolicy); ok {
		rp.ObserveRegion(rh.name, rh.placements, true, now)
	}
	if rt, ok := f.regionTracer(); ok {
		rt.RegionTransition(rh.name, true, now)
	}
	f.noteRung(now)
	f.scheduleProbe(rh)
}

func (f *failover) markUp(rh *regionHealth, now sim.Time) {
	rh.down = false
	rh.downSeconds += float64(now.Sub(rh.downAt))
	rh.mttrSum += float64(now.Sub(rh.downAt))
	rh.recoveries++
	f.nDown--
	if f.nDown == 0 {
		f.unionDownSecs += float64(now.Sub(f.unionDownStart))
	}
	if rp, ok := f.s.policy.(RegionAwarePolicy); ok {
		rp.ObserveRegion(rh.name, rh.placements, false, now)
	}
	if rt, ok := f.regionTracer(); ok {
		rt.RegionTransition(rh.name, false, now)
	}
	f.noteRung(now)
	f.drain()
}

// probeBase keeps canary task IDs clear of workload task IDs.
const probeBase model.TaskID = 1 << 62

// scheduleProbe arms the next canary probe of a down region. The loop
// runs until a probe succeeds: probes are how a region with no surviving
// traffic (the policy routed everything away) is discovered to be back.
func (f *failover) scheduleProbe(rh *regionHealth) {
	f.s.env.Eng.After(f.cfg.probeEvery(), func() {
		if !rh.down {
			return
		}
		f.probe(rh)
	})
}

// probe sends one canary execution straight to the region's first
// substrate — a control-plane ping that bypasses the device network. A
// transient failure keeps the region down and re-arms the loop; anything
// else marks it up.
func (f *failover) probe(rh *regionHealth) {
	exec, ok := f.probeTarget(rh.placements[0])
	if !ok {
		f.scheduleProbe(rh)
		return
	}
	f.stats.Probes++
	f.probeSeq++
	canary := &model.Task{
		ID:          probeBase + model.TaskID(f.probeSeq),
		App:         "__probe",
		Cycles:      1e6,
		MemoryBytes: 64 * model.MB,
		Submitted:   f.s.env.Eng.Now(),
	}
	exec.Execute(canary, func(rep model.ExecReport) {
		now := f.s.env.Eng.Now()
		if !rh.down {
			return // genuine traffic recovered the region first
		}
		if rep.Err != nil && model.Transient(rep.Err) {
			f.scheduleProbe(rh)
			return
		}
		f.noteSuccess(rh, now)
	})
}

// probeTarget resolves the substrate executor behind a placement.
func (f *failover) probeTarget(p model.Placement) (model.Executor, bool) {
	switch p {
	case model.PlaceEdge:
		if f.s.env.Edge != nil {
			return f.s.env.Edge, true
		}
	case model.PlaceFunction:
		if f.s.env.Functions != nil {
			fn, err := f.s.env.Functions.For(&model.Task{
				App: "__probe", Cycles: 1e6, MemoryBytes: 64 * model.MB,
			}, f.s.pred)
			if err == nil {
				return fn, true
			}
		}
	case model.PlaceVM:
		if f.s.env.VM != nil {
			return f.s.env.VM, true
		}
	}
	return nil, false
}

// retarget is route's lightweight sibling for the resilience layer's
// attempt machinery: it re-points an attempt at a surviving region (or
// the device) synchronously — attempt timeouts and hedges keep their
// semantics — charging the state-transfer egress but folding the
// transfer delay into the attempt itself is left to the backbone model.
func (f *failover) retarget(task *model.Task, p model.Placement) model.Placement {
	rh := f.byPlacement[p]
	if rh == nil || !rh.down {
		return p
	}
	if alt, ok := f.alternative(p); ok {
		cost := f.cfg.link().TransferCostUSD(task.InputBytes)
		f.s.sunkUSD[task.ID] += cost
		f.stats.StateTransferUSD += cost
		f.stats.ReHomed++
		if rt, ok := f.regionTracer(); ok {
			rt.TaskRehomed(task.ID, p, alt, f.s.env.Eng.Now())
		}
		return alt
	}
	f.stats.Localized++
	return model.PlaceLocal
}
