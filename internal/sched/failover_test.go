package sched

import (
	"testing"

	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/sim"
)

// twoRegionEnv is testEnv with an outage schedule installed on the
// serverless platform; tests home it in "east" and the VM in "west".
func twoRegionEnv(t *testing.T, outages ...fault.Window) *Env {
	t.Helper()
	env := testEnv(t)
	if len(outages) > 0 {
		inj, err := fault.New(rng.New(7), fault.Config{Outages: outages})
		if err != nil {
			t.Fatal(err)
		}
		env.Functions.Platform().SetFaultInjector(inj)
	}
	return env
}

func twoRegionFailover(ladder *Ladder) Failover {
	return Failover{
		Regions: map[model.Placement]string{
			model.PlaceFunction: "east",
			model.PlaceVM:       "west",
		},
		FailureThreshold: 2,
		ProbeEvery:       5,
		Ladder:           ladder,
	}
}

func TestFailoverValidation(t *testing.T) {
	env := testEnv(t)
	cases := []struct {
		name string
		fo   Failover
	}{
		{"no regions", Failover{}},
		{"local placement", Failover{Regions: map[model.Placement]string{model.PlaceLocal: "here"}}},
		{"empty region name", Failover{Regions: map[model.Placement]string{model.PlaceVM: ""}}},
		{"negative threshold", Failover{Regions: map[model.Placement]string{model.PlaceVM: "west"}, FailureThreshold: -1}},
		{"negative probe pace", Failover{Regions: map[model.Placement]string{model.PlaceVM: "west"}, ProbeEvery: -1}},
		{"bad link", Failover{Regions: map[model.Placement]string{model.PlaceVM: "west"}, Link: model.InterRegionLink{RTT: -1, BandwidthBps: 1}}},
	}
	for _, c := range cases {
		if _, err := New(env, CloudAll{}, Exact{}, WithFailover(c.fo)); err == nil {
			t.Errorf("%s: New accepted %+v", c.name, c.fo)
		}
	}
	// A region mapped to a placement the environment does not offer is a
	// configuration error, not a silently-untracked region.
	env.VM = nil
	if _, err := New(env, CloudAll{}, Exact{}, WithFailover(Failover{
		Regions: map[model.Placement]string{model.PlaceVM: "west"},
	})); err == nil {
		t.Error("New accepted a region homed on an absent substrate")
	}
}

// TestFailoverRehomesOnOutage pins the tentpole behaviour: with the east
// region dark, tasks re-home to west (paying the state-transfer cost),
// nothing is lost, and the health ledger records the open incident.
func TestFailoverRehomesOnOutage(t *testing.T) {
	env := twoRegionEnv(t, fault.Window{Start: 0, Duration: 1e4})
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 5, Backoff: 1}),
		WithFailover(twoRegionFailover(nil)))
	if err != nil {
		t.Fatal(err)
	}
	failed, completed := 0, 0
	s.onDone = func(o model.Outcome) {
		if o.Failed {
			failed++
		} else {
			completed++
		}
	}
	// Staggered arrivals: the first failure and the threshold-crossing one
	// land at different instants, so detection has a measurable lag.
	for i := 1; i <= 8; i++ {
		task := heavyTask(model.TaskID(i))
		task.Cycles = 1e9
		env.Eng.At(sim.Time(3*(i-1)), func() { s.Submit(task) })
	}
	// Stop mid-outage: the canary probe loop keeps the queue busy until
	// the window clears, and this test wants the incident still open.
	env.Eng.RunUntil(100)
	if failed != 0 {
		t.Fatalf("%d tasks failed despite a healthy alternative region", failed)
	}
	if completed != 8 {
		t.Fatalf("%d tasks completed by t=100, want 8", completed)
	}
	fs := s.FailoverStats()
	if fs.ReHomed == 0 {
		t.Fatal("no tasks re-homed off the dark region")
	}
	if fs.StateTransferUSD <= 0 {
		t.Fatal("re-homing paid no state-transfer cost")
	}
	if fs.Probes == 0 {
		t.Fatal("no canary probes sent to the down region")
	}
	healthy, total := s.HealthyRegions()
	if total != 2 || healthy != 1 {
		t.Fatalf("healthy/total = %d/%d, want 1/2", healthy, total)
	}
	for _, rs := range s.RegionSnapshots() {
		switch rs.Name {
		case "east":
			if !rs.Down || rs.Downs != 1 {
				t.Errorf("east snapshot %+v, want one open incident", rs)
			}
			if rs.MTTDSeconds <= 0 {
				t.Errorf("east MTTD %g, want > 0", rs.MTTDSeconds)
			}
			if rs.DownSeconds <= 0 {
				t.Errorf("east down seconds %g, want > 0", rs.DownSeconds)
			}
		case "west":
			if rs.Down || rs.Downs != 0 {
				t.Errorf("west snapshot %+v, want healthy", rs)
			}
		}
	}
	if s.DegradedSeconds() <= 0 {
		t.Error("no degraded time accrued during an open incident")
	}
}

// TestLadderShedsAndRecovers walks the ladder: during the outage,
// low-priority work parks (shed) while normal work re-homes; when the
// canary probe discovers the recovery, parked work drains and completes,
// and the ledger closes the incident with a plausible MTTR.
func TestLadderShedsAndRecovers(t *testing.T) {
	env := twoRegionEnv(t, fault.Window{Start: 0, Duration: 60})
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 5, Backoff: 1}),
		WithFailover(twoRegionFailover(&Ladder{ShedLowAfter: 0, LocalizeAfter: 30, QueueAfter: 50})))
	if err != nil {
		t.Fatal(err)
	}
	done := map[model.TaskID]bool{}
	s.onDone = func(o model.Outcome) {
		if o.Task != nil && !o.Failed {
			done[o.Task.ID] = true
		}
	}
	for i := 1; i <= 6; i++ {
		task := heavyTask(model.TaskID(i))
		task.Cycles = 1e9
		if i%2 == 0 {
			task.Priority = model.PriorityLow
		}
		s.Submit(task)
	}
	env.Eng.Run()
	if n := s.FlushFailover(); n != 0 {
		t.Fatalf("flush localized %d tasks after a discovered recovery", n)
	}
	fs := s.FailoverStats()
	if fs.Shed == 0 {
		t.Fatal("ladder shed no low-priority work during the outage")
	}
	if fs.Lost != 0 {
		t.Fatalf("ladder lost %d tasks", fs.Lost)
	}
	for i := 1; i <= 6; i++ {
		if !done[model.TaskID(i)] {
			t.Errorf("task %d never completed", i)
		}
	}
	for _, rs := range s.RegionSnapshots() {
		if rs.Name != "east" {
			continue
		}
		if rs.Down || rs.Recoveries != 1 {
			t.Fatalf("east snapshot %+v, want one completed recovery", rs)
		}
		// The outage runs [0, 60) and probes pace at 5 s: recovery must be
		// discovered within one probe period of the window clearing.
		if rs.MTTRSeconds <= 0 || rs.MTTRSeconds > 66 {
			t.Fatalf("east MTTR %g outside (0, 66]", rs.MTTRSeconds)
		}
	}
	if s.DegradationMode() != DegradeHealthy {
		t.Errorf("mode %v after recovery, want healthy", s.DegradationMode())
	}
}

// TestFlushLocalizesStrandedWork pins the never-drop contract: when the
// outage outlasts the workload and no alternative region exists, parked
// tasks run locally at drain time instead of being lost.
func TestFlushLocalizesStrandedWork(t *testing.T) {
	env := twoRegionEnv(t, fault.Window{Start: 0, Duration: 1e4})
	// Both remotes homed in east: shed work has nowhere to go.
	fo := Failover{
		Regions: map[model.Placement]string{
			model.PlaceFunction: "east",
			model.PlaceVM:       "east",
		},
		FailureThreshold: 2,
		ProbeEvery:       5,
		Ladder:           &Ladder{ShedLowAfter: 0},
	}
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 5, Backoff: 1}),
		WithFailover(fo))
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	s.onDone = func(o model.Outcome) {
		if !o.Failed {
			completed++
		}
	}
	for i := 1; i <= 4; i++ {
		task := heavyTask(model.TaskID(i))
		task.Cycles = 1e9
		task.Priority = model.PriorityLow
		s.Submit(task)
	}
	env.Eng.RunUntil(100)
	if s.FailoverQueueLen() == 0 {
		t.Fatal("no work parked during a permanent outage")
	}
	if n := s.FlushFailover(); n == 0 {
		t.Fatal("flush localized nothing")
	}
	env.Eng.RunUntil(200)
	if completed != 4 {
		t.Fatalf("%d tasks completed after flush, want 4", completed)
	}
	if fs := s.FailoverStats(); fs.Lost != 0 {
		t.Fatalf("flush lost %d tasks", fs.Lost)
	}
}

// TestDrainTwiceMidIncidentCountsOnce is the double-settle regression:
// a drain whose targets are still down re-parks every task, and before
// the fix each re-park re-incremented Shed/Queued — so a task parked
// through two mid-incident drains counted three times in the park
// ledger, and the cost identity (one settle, one count per task) broke.
// Two explicit drains mid-incident must leave the counters where the
// first park put them, and every task must still settle exactly once.
func TestDrainTwiceMidIncidentCountsOnce(t *testing.T) {
	env := twoRegionEnv(t, fault.Window{Start: 0, Duration: 1e4})
	// Both remotes homed in east: a drain can never move parked work, it
	// can only re-park it — the worst case for double counting.
	fo := Failover{
		Regions: map[model.Placement]string{
			model.PlaceFunction: "east",
			model.PlaceVM:       "east",
		},
		FailureThreshold: 2,
		ProbeEvery:       5,
		Ladder:           &Ladder{ShedLowAfter: 0},
	}
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 5, Backoff: 1}),
		WithFailover(fo))
	if err != nil {
		t.Fatal(err)
	}
	settled := map[model.TaskID]int{}
	s.onDone = func(o model.Outcome) {
		if o.Task != nil {
			settled[o.Task.ID]++
		}
	}
	const n = 4
	for i := 1; i <= n; i++ {
		task := heavyTask(model.TaskID(i))
		task.Cycles = 1e9
		task.Priority = model.PriorityLow
		s.Submit(task)
	}
	env.Eng.RunUntil(50)
	if got := s.FailoverQueueLen(); got != n {
		t.Fatalf("%d tasks parked by t=50, want %d", got, n)
	}
	before := s.FailoverStats()

	// Two mid-incident drains — in production a sibling region recovering
	// while east stays dark. Every task re-parks both times.
	env.Eng.At(60, func() { s.fo.drain() })
	env.Eng.At(70, func() { s.fo.drain() })
	env.Eng.RunUntil(80)

	if got := s.FailoverQueueLen(); got != n {
		t.Fatalf("%d tasks parked after two drains, want %d still parked", got, n)
	}
	after := s.FailoverStats()
	if after.Shed != before.Shed || after.Queued != before.Queued {
		t.Fatalf("drain re-parks re-counted: Shed %d→%d, Queued %d→%d",
			before.Shed, after.Shed, before.Queued, after.Queued)
	}
	if after.Lost != 0 || after.Localized != before.Localized {
		t.Fatalf("drains leaked tasks: Lost=%d, Localized %d→%d",
			after.Lost, before.Localized, after.Localized)
	}

	// Flush ends the run: each task is localized once and settles once.
	if got := s.FlushFailover(); got != n {
		t.Fatalf("flush localized %d tasks, want %d", got, n)
	}
	env.Eng.RunUntil(500)
	fs := s.FailoverStats()
	if fs.Localized != before.Localized+n {
		t.Fatalf("Localized = %d after flush, want %d", fs.Localized, before.Localized+n)
	}
	if len(settled) != n {
		t.Fatalf("%d distinct tasks settled, want %d", len(settled), n)
	}
	for id, c := range settled {
		if c != 1 {
			t.Fatalf("task %d settled %d times, want exactly once", id, c)
		}
	}
}

// TestLadderQueueOverflowLoses pins the only loss path the ladder has: a
// full wait queue.
func TestLadderQueueOverflowLoses(t *testing.T) {
	env := twoRegionEnv(t, fault.Window{Start: 0, Duration: 1e4})
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 5, Backoff: 1}),
		WithFailover(twoRegionFailover(&Ladder{ShedLowAfter: 0, MaxQueue: 1})))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		task := heavyTask(model.TaskID(i))
		task.Cycles = 1e9
		task.Priority = model.PriorityLow
		s.Submit(task)
	}
	env.Eng.RunUntil(100)
	if fs := s.FailoverStats(); fs.Lost == 0 {
		t.Fatal("a one-slot queue absorbed four shed tasks without loss")
	}
}

// TestLadderRungProgression pins the rung thresholds against the age of
// the oldest open incident.
func TestLadderRungProgression(t *testing.T) {
	env := twoRegionEnv(t, fault.Window{Start: 0, Duration: 1e4})
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 3, Backoff: 1}),
		WithFailover(twoRegionFailover(&Ladder{ShedLowAfter: 5, LocalizeAfter: 30, QueueAfter: 120})))
	if err != nil {
		t.Fatal(err)
	}
	// One task drives detection: two failed attempts mark east down well
	// before t=5, so the checkpoints below land inside each rung.
	task := heavyTask(1)
	task.Cycles = 1e9
	s.Submit(task)
	for _, cp := range []struct {
		at   sim.Time
		want DegradationMode
	}{
		{3, DegradeHealthy}, // detected, but younger than ShedLowAfter
		{10, DegradeShedLow},
		{40, DegradeLocalizeCritical},
		{200, DegradeQueueAndWait},
	} {
		cp := cp
		env.Eng.At(cp.at, func() {
			if got := s.DegradationMode(); got != cp.want {
				t.Errorf("mode %v at t=%g, want %v", got, float64(cp.at), cp.want)
			}
		})
	}
	env.Eng.RunUntil(300)
	for _, rs := range s.RegionSnapshots() {
		if rs.Name == "east" && !rs.Down {
			t.Fatal("east never marked down")
		}
	}
}
