package sched

import (
	"math"

	"offload/internal/alloc"
	"offload/internal/model"
	"offload/internal/network"
	"offload/internal/rng"
)

// Policy decides where a task runs.
type Policy interface {
	// Name identifies the policy in results tables.
	Name() string
	// Decide returns the placement for the task.
	Decide(task *model.Task, env *Env, pred Predictor) model.Placement
}

// FeedbackPolicy is a Policy that learns online. The scheduler reports
// every settled outcome (success or terminal failure — retries and hedges
// already folded in) right after recording it, giving adaptive policies
// their reward signal. Implementations must not schedule events; they may
// only update internal state.
type FeedbackPolicy interface {
	Policy
	// ObserveOutcome receives one settled outcome and the environment it
	// ran in.
	ObserveOutcome(o model.Outcome, env *Env)
}

// LocalOnly never offloads: the no-offloading baseline.
type LocalOnly struct{}

var _ Policy = LocalOnly{}

// Name implements Policy.
func (LocalOnly) Name() string { return "local-only" }

// Decide implements Policy.
func (LocalOnly) Decide(*model.Task, *Env, Predictor) model.Placement {
	return model.PlaceLocal
}

// EdgeAll offloads everything to the edge site — the edge-computing
// comparator. It degrades to local when the environment has no edge.
type EdgeAll struct{}

var _ Policy = EdgeAll{}

// Name implements Policy.
func (EdgeAll) Name() string { return "edge-all" }

// Decide implements Policy.
func (EdgeAll) Decide(_ *model.Task, env *Env, _ Predictor) model.Placement {
	if env.Edge == nil {
		return model.PlaceLocal
	}
	return model.PlaceEdge
}

// CloudAll offloads everything to serverless — the naive cloud policy.
type CloudAll struct{}

var _ Policy = CloudAll{}

// Name implements Policy.
func (CloudAll) Name() string { return "cloud-all" }

// Decide implements Policy.
func (CloudAll) Decide(_ *model.Task, env *Env, _ Predictor) model.Placement {
	if env.Functions == nil {
		return model.PlaceLocal
	}
	return model.PlaceFunction
}

// VMAll offloads everything to the always-on VM fleet.
type VMAll struct{}

var _ Policy = VMAll{}

// Name implements Policy.
func (VMAll) Name() string { return "vm-all" }

// Decide implements Policy.
func (VMAll) Decide(_ *model.Task, env *Env, _ Predictor) model.Placement {
	if env.VM == nil {
		return model.PlaceLocal
	}
	return model.PlaceVM
}

// Random picks uniformly among the available placements — the sanity
// baseline every informed policy must beat.
type Random struct {
	Src *rng.Source
}

var _ Policy = (*Random)(nil)

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Decide implements Policy.
func (r *Random) Decide(_ *model.Task, env *Env, _ Predictor) model.Placement {
	avail := env.Available()
	return avail[r.Src.Intn(len(avail))]
}

// Threshold is the classic static heuristic from the offloading
// literature: offload to serverless whenever the predicted demand exceeds
// a fixed cycle count, run locally otherwise. It ignores data sizes,
// deadlines, prices and queue states — exactly the information the
// deadline-aware policy uses — and so serves as the "informed but static"
// baseline between Random and DeadlineAware.
type Threshold struct {
	// Cycles is the offloading threshold. Zero offloads everything that
	// the environment can serve remotely.
	Cycles float64
}

var _ Policy = (*Threshold)(nil)

// Name implements Policy.
func (*Threshold) Name() string { return "threshold" }

// Decide implements Policy.
func (t *Threshold) Decide(task *model.Task, env *Env, pred Predictor) model.Placement {
	if env.Functions == nil {
		return model.PlaceLocal
	}
	if pred.PredictCycles(task) > t.Cycles {
		return model.PlaceFunction
	}
	return model.PlaceLocal
}

// DeadlineAware is the framework's policy. For each available placement it
// estimates end-to-end completion time, device energy and dollar cost from
// the demand prediction, current queue backlogs and the network model;
// among placements expected to finish within Safety × deadline it picks
// the one with the lowest weighted money+energy score. Tasks without a
// deadline treat every placement as feasible — pure cost minimisation,
// which is exactly what "non-time-critical" buys.
type DeadlineAware struct {
	// Safety derates the deadline to absorb estimation error. Default 0.8.
	Safety float64
	// EnergyUSDPerJ converts device energy to money: by default a full
	// 12 Wh battery is valued at one dollar (≈2.3e-5 $/J).
	EnergyUSDPerJ float64
	// TimeUSDPerSec breaks ties toward faster placements. Default 1e-9.
	TimeUSDPerSec float64
}

var _ Policy = (*DeadlineAware)(nil)

// NewDeadlineAware returns the policy with default weights.
func NewDeadlineAware() *DeadlineAware {
	return &DeadlineAware{Safety: 0.8, EnergyUSDPerJ: 2.3e-5, TimeUSDPerSec: 1e-9}
}

// Name implements Policy.
func (*DeadlineAware) Name() string { return "deadline-aware" }

type estimate struct {
	placement model.Placement
	time      float64 // seconds
	energyJ   float64
	moneyUSD  float64
	ok        bool
}

// Decide implements Policy.
func (d *DeadlineAware) Decide(task *model.Task, env *Env, pred Predictor) model.Placement {
	cycles := pred.PredictCycles(task)
	ests := d.estimates(task, env, cycles)

	budget := math.Inf(1)
	if task.HasDeadline() {
		budget = float64(task.Deadline) * d.Safety
	}
	best, bestScore := model.PlaceUnknown, math.Inf(1)
	fastest, fastestTime := model.PlaceUnknown, math.Inf(1)
	for _, e := range ests {
		if !e.ok {
			continue
		}
		if e.time < fastestTime {
			fastest, fastestTime = e.placement, e.time
		}
		if e.time > budget {
			continue
		}
		score := e.moneyUSD + e.energyJ*d.EnergyUSDPerJ + e.time*d.TimeUSDPerSec
		if score < bestScore {
			best, bestScore = e.placement, score
		}
	}
	if best != model.PlaceUnknown {
		return best
	}
	if fastest != model.PlaceUnknown {
		return fastest
	}
	return model.PlaceLocal
}

func (d *DeadlineAware) estimates(task *model.Task, env *Env, cycles float64) []estimate {
	predTask := *task
	predTask.Cycles = cycles

	var ests []estimate

	// Local: backlog-aware queue estimate plus compute energy.
	dev := env.Device
	localExec := float64(dev.ExecTime(&predTask))
	queueFactor := float64(dev.Backlog())/float64(dev.Config().Cores) + 1
	ests = append(ests, estimate{
		placement: model.PlaceLocal,
		time:      localExec * queueFactor,
		energyJ:   dev.ComputeEnergyMilliJ(&predTask) / 1000,
		ok:        !dev.Dead(),
	})

	if env.Edge != nil {
		up := float64(env.EdgePath.EstimateTransfer(task.InputBytes, network.Uplink))
		down := float64(env.EdgePath.EstimateTransfer(task.OutputBytes, network.Downlink))
		exec := float64(env.Edge.ExecTime(&predTask))
		cores := env.Edge.Config().Servers * env.Edge.Config().Cores
		qf := float64(env.Edge.QueueLen())/float64(cores) + 1
		ests = append(ests, estimate{
			placement: model.PlaceEdge,
			time:      up + exec*qf + down,
			energyJ:   d.radioJ(env, up, down),
			// Amortised infrastructure attribution: the core-seconds this
			// task occupies, priced at the site's hourly cost.
			moneyUSD: exec * env.Edge.Config().HourlyCostUSD / (3600 * float64(cores)),
			ok:       env.Edge.Config().MemoryPerServer == 0 || task.MemoryBytes <= env.Edge.Config().MemoryPerServer,
		})
	}

	if env.Functions != nil {
		up := float64(env.CloudPath.EstimateTransfer(task.InputBytes, network.Uplink))
		down := float64(env.CloudPath.EstimateTransfer(task.OutputBytes, network.Downlink))
		dec, err := env.Functions.EstimateFor(task, cycles)
		ests = append(ests, estimate{
			placement: model.PlaceFunction,
			time:      up + float64(dec.ExpectedTime) + down,
			energyJ:   d.radioJ(env, up, down),
			moneyUSD:  dec.ExpectedCostUSD,
			ok:        err == nil,
		})
	}

	if env.VM != nil {
		path := env.vmPath()
		up := float64(path.EstimateTransfer(task.InputBytes, network.Uplink))
		down := float64(path.EstimateTransfer(task.OutputBytes, network.Downlink))
		exec := float64(env.VM.ExecTime(&predTask))
		cores := env.VM.Instances() * env.VM.Config().Cores
		qf := 1.0
		if cores > 0 {
			qf = float64(env.VM.QueueLen())/float64(cores) + 1
		}
		ests = append(ests, estimate{
			placement: model.PlaceVM,
			time:      up + exec*qf + down,
			energyJ:   d.radioJ(env, up, down),
			moneyUSD:  exec * env.VM.Config().HourlyCostUSD / (3600 * float64(env.VM.Config().Cores)),
			ok:        true,
		})
	}
	return ests
}

func (d *DeadlineAware) radioJ(env *Env, upSec, downSec float64) float64 {
	cfg := env.Device.Config()
	return cfg.TxPowerW*upSec + cfg.RxPowerW*downSec
}

// EstimateFor sizes (without deploying) the function that would serve the
// task, returning the allocator's expected time and cost.
func (p *FunctionPool) EstimateFor(task *model.Task, predictedCycles float64) (alloc.Decision, error) {
	return p.alloc.Choose(p.request(task, predictedCycles))
}
