package sched

import (
	"testing"

	"offload/internal/model"
	"offload/internal/rng"
)

// TestPolicyNilBackendDegradation: every static policy must degrade to
// local execution when its target substrate is absent, rather than
// emitting a placement the scheduler cannot dispatch.
func TestPolicyNilBackendDegradation(t *testing.T) {
	full := testEnv(t)
	bare := &Env{Eng: full.Eng, Device: full.Device}
	task := heavyTask(1)

	cases := []struct {
		name   string
		policy Policy
		env    *Env
		want   model.Placement
	}{
		{"edge-all without edge", EdgeAll{}, bare, model.PlaceLocal},
		{"cloud-all without functions", CloudAll{}, bare, model.PlaceLocal},
		{"vm-all without vm", VMAll{}, bare, model.PlaceLocal},
		{"threshold without functions", &Threshold{Cycles: 0}, bare, model.PlaceLocal},
		{"edge-all with edge", EdgeAll{}, full, model.PlaceEdge},
		{"cloud-all with functions", CloudAll{}, full, model.PlaceFunction},
		{"vm-all with vm", VMAll{}, full, model.PlaceVM},
		{"local-only ignores backends", LocalOnly{}, full, model.PlaceLocal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.policy.Decide(task, tc.env, Exact{}); got != tc.want {
				t.Errorf("Decide = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestThresholdCutoff pins the comparison direction: the threshold is
// exclusive (strictly greater offloads), so a task predicted exactly at
// the cutoff stays local. The policy trusts the predictor, not the task's
// true demand.
func TestThresholdCutoff(t *testing.T) {
	env := testEnv(t)
	const cutoff = 1e10

	cases := []struct {
		name      string
		predicted float64
		want      model.Placement
	}{
		{"below cutoff", cutoff - 1, model.PlaceLocal},
		{"exactly at cutoff", cutoff, model.PlaceLocal},
		{"just above cutoff", cutoff + 1, model.PlaceFunction},
	}
	p := &Threshold{Cycles: cutoff}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			task := heavyTask(1)
			task.Cycles = tc.predicted
			if got := p.Decide(task, env, Exact{}); got != tc.want {
				t.Errorf("Decide(%.0f cycles) = %v, want %v", tc.predicted, got, tc.want)
			}
		})
	}

	t.Run("zero threshold offloads everything", func(t *testing.T) {
		task := heavyTask(2)
		task.Cycles = 1
		if got := (&Threshold{}).Decide(task, env, Exact{}); got != model.PlaceFunction {
			t.Errorf("Decide = %v, want %v", got, model.PlaceFunction)
		}
	})
}

// TestDeadlineAwareInfeasibleFallsBackToFastest: when no placement can
// meet the (derated) deadline, the policy must still return the fastest
// estimate rather than give up — missing a deadline by little beats
// missing it by a lot.
func TestDeadlineAwareInfeasibleFallsBackToFastest(t *testing.T) {
	full := testEnv(t)
	// Device-plus-VM environment: the 3 GHz VM beats the 1 GHz device on a
	// compute-heavy task even after WAN transfers, so "fastest" is the VM.
	env := &Env{
		Eng:       full.Eng,
		Device:    full.Device,
		VM:        full.VM,
		CloudPath: full.CloudPath,
	}
	task := heavyTask(1)
	task.Deadline = 0.001 // infeasible everywhere

	p := NewDeadlineAware()
	if got := p.Decide(task, env, Exact{}); got != model.PlaceVM {
		t.Errorf("infeasible deadline: Decide = %v, want fastest (%v)", got, model.PlaceVM)
	}

	// Sanity: with the deadline relaxed the same environment prefers the
	// cheaper device, proving the fallback path (not cost scoring) chose
	// the VM above.
	task.Deadline = 0
	if got := p.Decide(task, env, Exact{}); got == model.PlaceUnknown {
		t.Errorf("no-deadline Decide = %v, want a concrete placement", got)
	}
}

// TestDeadlineAwareNoDeadlinePureCost: without a deadline every placement
// is feasible and the policy minimises money+energy; for a tiny task the
// transfers outweigh any speedup, so it stays local.
func TestDeadlineAwareNoDeadlinePureCost(t *testing.T) {
	env := testEnv(t)
	task := &model.Task{
		ID: 1, App: "tiny",
		InputBytes: 64 * model.MB, OutputBytes: 64 * model.MB,
		Cycles: 1e6, MemoryBytes: 64 * model.MB,
	}
	if got := NewDeadlineAware().Decide(task, env, Exact{}); got != model.PlaceLocal {
		t.Errorf("tiny task with huge transfers: Decide = %v, want %v", got, model.PlaceLocal)
	}
}

// TestRandomCoversAvailable: the random baseline only emits placements
// the environment can actually serve, across both full and bare envs.
func TestRandomCoversAvailable(t *testing.T) {
	for _, tc := range []struct {
		name string
		bare bool
		want int
	}{
		{"full env", false, 4},
		{"device only", true, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := testEnv(t)
			if tc.bare {
				env = &Env{Eng: env.Eng, Device: env.Device}
			}
			avail := make(map[model.Placement]bool)
			for _, p := range env.Available() {
				avail[p] = true
			}
			r := &Random{Src: rng.New(7)}
			seen := make(map[model.Placement]bool)
			for i := 0; i < 200; i++ {
				got := r.Decide(heavyTask(model.TaskID(i)), env, Exact{})
				if !avail[got] {
					t.Fatalf("Decide = %v, not in Available()", got)
				}
				seen[got] = true
			}
			if len(seen) != tc.want {
				t.Errorf("saw %d distinct placements in 200 draws, want %d", len(seen), tc.want)
			}
		})
	}
}
