package sched

import (
	"fmt"

	"offload/internal/alloc"
	"offload/internal/model"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// FunctionPool lazily deploys one serverless function per application,
// sized by the resource allocator from the first task's predicted demand —
// the deployment decision the paper's serverless-allocation contribution
// is about. Re-allocation happens when the predicted demand drifts past a
// tolerance, mirroring a CI/CD-driven re-deploy.
type FunctionPool struct {
	platform *serverless.Platform
	alloc    *alloc.Allocator
	byApp    map[string]*poolEntry

	// TimeBudgetFactor converts a task deadline into the execution budget
	// handed to the allocator: transfers and queueing consume the rest of
	// the slack. Defaults to 0.5.
	TimeBudgetFactor float64
	// ArrivalRateHint drives the cold-start probability estimate. Zero
	// means "unknown" (pessimistic: every invocation cold).
	ArrivalRateHint float64
	// RedeployTolerance re-allocates when predicted demand moves by more
	// than this factor from the deployed sizing. Zero disables.
	RedeployTolerance float64
	// ProvisionedConcurrency pre-warms this many environments on every
	// function the pool deploys.
	ProvisionedConcurrency int

	redeploys uint64
}

type poolEntry struct {
	fn          *serverless.Function
	sizedCycles float64
	sizedMem    int64
}

// NewFunctionPool returns a pool on the given platform.
func NewFunctionPool(p *serverless.Platform) *FunctionPool {
	return &FunctionPool{
		platform:         p,
		alloc:            alloc.New(p.Config()),
		byApp:            make(map[string]*poolEntry),
		TimeBudgetFactor: 0.5,
	}
}

// Platform returns the underlying serverless platform.
func (p *FunctionPool) Platform() *serverless.Platform { return p.platform }

// Allocator returns the pool's resource allocator.
func (p *FunctionPool) Allocator() *alloc.Allocator { return p.alloc }

// Redeploys returns how many drift-triggered re-deployments happened.
func (p *FunctionPool) Redeploys() uint64 { return p.redeploys }

func (p *FunctionPool) request(task *model.Task, predictedCycles float64) alloc.Request {
	req := alloc.Request{
		Cycles:           predictedCycles,
		ParallelFraction: task.ParallelFraction,
		MemoryFloorBytes: task.MemoryBytes,
		ColdStartProb:    1,
	}
	if p.ArrivalRateHint > 0 {
		req.ColdStartProb = alloc.ColdStartProbability(p.ArrivalRateHint, p.platform.Config().KeepAlive)
	}
	if task.HasDeadline() && p.TimeBudgetFactor > 0 {
		req.TimeBudget = sim.Duration(float64(task.Deadline) * p.TimeBudgetFactor)
	}
	return req
}

// For returns the function serving the task's application, deploying or
// re-sizing it as needed.
func (p *FunctionPool) For(task *model.Task, pred Predictor) (*serverless.Function, error) {
	predicted := pred.PredictCycles(task)
	entry, ok := p.byApp[task.App]
	if ok {
		if p.RedeployTolerance > 0 && drift(predicted, entry.sizedCycles) > p.RedeployTolerance {
			if err := p.deploy(task, predicted, entry); err != nil {
				return nil, err
			}
			p.redeploys++
		}
		return entry.fn, nil
	}
	entry = &poolEntry{}
	if err := p.deploy(task, predicted, entry); err != nil {
		return nil, err
	}
	p.byApp[task.App] = entry
	return entry.fn, nil
}

func (p *FunctionPool) deploy(task *model.Task, predictedCycles float64, entry *poolEntry) error {
	d, err := p.alloc.Choose(p.request(task, predictedCycles))
	if err != nil {
		return fmt.Errorf("sizing function for %s: %w", task.App, err)
	}
	fn, err := p.platform.Deploy(serverless.FunctionConfig{
		Name:                   "app-" + task.App,
		MemoryBytes:            d.MemoryBytes,
		ProvisionedConcurrency: p.ProvisionedConcurrency,
	})
	if err != nil {
		return fmt.Errorf("deploying function for %s: %w", task.App, err)
	}
	entry.fn = fn
	entry.sizedCycles = predictedCycles
	entry.sizedMem = d.MemoryBytes
	return nil
}

// Resize re-deploys the app's function at the given memory size — the
// online memory tuner's lever. memBytes must lie on the platform's ladder
// (the allocator only proposes ladder sizes). Re-deploying discards warm
// containers, exactly as a live configuration change would. No-op when the
// app has no deployed function or the size is unchanged.
func (p *FunctionPool) Resize(app string, memBytes int64) error {
	entry, ok := p.byApp[app]
	if !ok || entry.sizedMem == memBytes {
		return nil
	}
	fn, err := p.platform.Deploy(serverless.FunctionConfig{
		Name:                   "app-" + app,
		MemoryBytes:            memBytes,
		ProvisionedConcurrency: p.ProvisionedConcurrency,
	})
	if err != nil {
		return fmt.Errorf("resizing function for %s: %w", app, err)
	}
	entry.fn = fn
	entry.sizedMem = memBytes
	return nil
}

// Sized returns the deployed memory size for an app, or 0 if not deployed.
func (p *FunctionPool) Sized(app string) int64 {
	if e, ok := p.byApp[app]; ok {
		return e.sizedMem
	}
	return 0
}

func drift(now, then float64) float64 {
	if then == 0 {
		return 0
	}
	d := now/then - 1
	if d < 0 {
		d = -d
	}
	return d
}
