package sched

import (
	"offload/internal/model"
	"offload/internal/profile"
	"offload/internal/rng"
)

// Predictor estimates a task's computational demand before placement. The
// scheduler feeds back actual demands after completion, so adaptive
// predictors converge during a run.
type Predictor interface {
	// PredictCycles estimates the task's demand in CPU cycles.
	PredictCycles(task *model.Task) float64
	// Observe reports the task's actual demand after execution.
	Observe(task *model.Task, actualCycles float64)
}

// Exact is the oracle predictor: it returns the task's true demand. It is
// the upper bound every learned predictor is compared against.
type Exact struct{}

var _ Predictor = Exact{}

// PredictCycles implements Predictor.
func (Exact) PredictCycles(task *model.Task) float64 { return task.Cycles }

// Observe implements Predictor.
func (Exact) Observe(*model.Task, float64) {}

// PerApp learns one EWMA per application, keyed by task.App. Before the
// first observation of an app it falls back to the task's own demand (the
// first run of an app is always profiled in practice).
type PerApp struct {
	alpha float64
	byApp map[string]*profile.EWMA
}

var _ Predictor = (*PerApp)(nil)

// NewPerApp returns a PerApp predictor with EWMA smoothing alpha.
func NewPerApp(alpha float64) *PerApp {
	return &PerApp{alpha: alpha, byApp: make(map[string]*profile.EWMA)}
}

// PredictCycles implements Predictor.
func (p *PerApp) PredictCycles(task *model.Task) float64 {
	if e, ok := p.byApp[task.App]; ok && e.N() > 0 {
		return e.Predict(task.InputBytes)
	}
	return task.Cycles
}

// Observe implements Predictor.
func (p *PerApp) Observe(task *model.Task, actualCycles float64) {
	e, ok := p.byApp[task.App]
	if !ok {
		e = profile.NewEWMA(p.alpha)
		p.byApp[task.App] = e
	}
	e.Observe(task.InputBytes, actualCycles)
}

// Noisy wraps another predictor and perturbs every prediction with
// multiplicative lognormal error — the injection knob for the E10
// demand-accuracy ablation.
type Noisy struct {
	inner Predictor
	meter *profile.Meter
}

var _ Predictor = (*Noisy)(nil)

// NewNoisy returns a Noisy predictor with relative error relStd around
// inner's predictions.
func NewNoisy(inner Predictor, src *rng.Source, relStd float64) *Noisy {
	return &Noisy{inner: inner, meter: profile.NewMeter(src, relStd)}
}

// PredictCycles implements Predictor.
func (n *Noisy) PredictCycles(task *model.Task) float64 {
	return n.meter.Measure(n.inner.PredictCycles(task))
}

// Observe implements Predictor.
func (n *Noisy) Observe(task *model.Task, actualCycles float64) {
	n.inner.Observe(task, actualCycles)
}
