package sched

import (
	"fmt"

	"offload/internal/model"
	"offload/internal/sim"
	"offload/internal/trace"
)

// ErrAttemptTimeout is reported when the resilience layer abandons an
// attempt that exceeded the per-attempt timeout. It wraps
// model.ErrTransient: a killed straggler is worth re-dispatching.
var ErrAttemptTimeout = fmt.Errorf("sched: attempt exceeded per-attempt timeout: %w", model.ErrTransient)

// Resilience configures the scheduler's client-side fault-handling layer.
// Every control is optional; the zero value (with WithResilience) only
// changes retries to flow through the attempt machinery.
type Resilience struct {
	// AttemptTimeout abandons a remote attempt that has not completed
	// within this duration; the abandoned attempt's cost still counts and
	// the task is re-dispatched (consuming a retry attempt). Zero disables.
	AttemptTimeout sim.Duration

	// Hedging launches one duplicate attempt when the primary has been in
	// flight for the hedge delay; the first completion wins and the
	// loser's cost is folded into the outcome. The delay is the
	// HedgeQuantile of observed remote attempt latencies once
	// HedgeMinSamples (default 20) have been seen, and HedgeDelay before
	// that. HedgeQuantile 0 always uses the fixed HedgeDelay; with both
	// zero, hedging is off. MaxHedges bounds duplicates per task
	// (default 1 when hedging is enabled).
	HedgeDelay      sim.Duration
	HedgeQuantile   float64
	HedgeMinSamples int
	MaxHedges       int

	// Breaker, when non-nil, installs one circuit breaker per remote
	// placement. While a placement's breaker refuses an attempt, the task
	// is rerouted to Fallback (default PlaceLocal) instead.
	Breaker  *BreakerConfig
	Fallback model.Placement
}

// Validate reports whether the configuration is usable.
func (r *Resilience) Validate() error {
	switch {
	case r.AttemptTimeout < 0:
		return fmt.Errorf("sched: negative attempt timeout")
	case r.HedgeDelay < 0:
		return fmt.Errorf("sched: negative hedge delay")
	case r.HedgeQuantile < 0 || r.HedgeQuantile >= 1:
		return fmt.Errorf("sched: hedge quantile %g outside [0,1)", r.HedgeQuantile)
	case r.HedgeMinSamples < 0 || r.MaxHedges < 0:
		return fmt.Errorf("sched: negative hedge bound")
	}
	if r.Breaker != nil {
		if err := r.Breaker.Validate(); err != nil {
			return err
		}
	}
	switch r.Fallback {
	case model.PlaceUnknown, model.PlaceLocal, model.PlaceEdge, model.PlaceFunction, model.PlaceVM:
	default:
		return fmt.Errorf("sched: unknown fallback placement %v", r.Fallback)
	}
	return nil
}

func (r *Resilience) hedging() bool { return r.HedgeQuantile > 0 || r.HedgeDelay > 0 }

func (r *Resilience) maxHedges() int {
	if r.MaxHedges > 0 {
		return r.MaxHedges
	}
	return 1
}

func (r *Resilience) hedgeMinSamples() int {
	if r.HedgeMinSamples > 0 {
		return r.HedgeMinSamples
	}
	return 20
}

func (r *Resilience) fallback() model.Placement {
	if r.Fallback == model.PlaceUnknown {
		return model.PlaceLocal
	}
	return r.Fallback
}

// BreakerState is a circuit breaker's position.
type BreakerState int

// The classic three breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String returns the lower-case state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breaker-state(%d)", int(s))
}

// BreakerConfig parameterises a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold consecutive transient failures open the breaker.
	FailureThreshold int
	// OpenFor is the cooldown before an open breaker admits a half-open
	// probe.
	OpenFor sim.Duration
	// HalfOpenSuccesses successful probes close the breaker (default 1);
	// any probe failure reopens it.
	HalfOpenSuccesses int

	// OpenBackoff multiplies the cooldown after each consecutive reopen (a
	// HalfOpen probe failure): the k-th reopen waits OpenFor·OpenBackoff^k,
	// capped at OpenForMax when that is positive. A persistently dark
	// backend is probed less and less often. Values <= 1 keep the fixed
	// OpenFor cooldown (the default behaviour).
	OpenBackoff float64
	OpenForMax  sim.Duration
}

// Validate reports whether the configuration is usable.
func (c BreakerConfig) Validate() error {
	switch {
	case c.FailureThreshold <= 0:
		return fmt.Errorf("sched: breaker failure threshold must be positive")
	case c.OpenFor <= 0:
		return fmt.Errorf("sched: breaker open-for duration must be positive")
	case c.HalfOpenSuccesses < 0:
		return fmt.Errorf("sched: negative breaker half-open successes")
	case c.OpenBackoff < 0 || c.OpenBackoff != c.OpenBackoff:
		return fmt.Errorf("sched: breaker open backoff %g not a non-negative number", c.OpenBackoff)
	case c.OpenForMax < 0:
		return fmt.Errorf("sched: negative breaker open-for cap")
	case c.OpenForMax > 0 && c.OpenForMax < c.OpenFor:
		return fmt.Errorf("sched: breaker open-for cap below open-for")
	}
	return nil
}

func (c BreakerConfig) halfOpenTarget() int {
	if c.HalfOpenSuccesses > 0 {
		return c.HalfOpenSuccesses
	}
	return 1
}

// Breaker is a consecutive-failure circuit breaker in simulation time:
// Closed trips to Open after FailureThreshold consecutive transient
// failures; Open refuses traffic for OpenFor, then admits a single
// half-open probe; probe success (HalfOpenSuccesses times) closes it,
// probe failure reopens it.
type Breaker struct {
	cfg       BreakerConfig
	state     BreakerState
	failures  int  // consecutive failures while closed
	successes int  // probe successes while half-open
	probing   bool // a half-open probe is in flight
	reopens   int  // consecutive reopens (HalfOpen probe failures)
	openedAt  sim.Time
	opens     uint64

	// notify, when set, observes every state transition. Purely
	// observational: the breaker's decisions do not depend on it.
	notify func(from, to BreakerState)
}

// OnTransition registers an observer for state transitions.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) { b.notify = fn }

func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	if b.notify != nil && from != to {
		b.notify(from, to)
	}
}

// NewBreaker returns a breaker in the Closed state.
func NewBreaker(cfg BreakerConfig) (*Breaker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Breaker{cfg: cfg}, nil
}

// State returns the breaker's current position. Note that an elapsed
// cooldown only becomes visible as HalfOpen at the next Allow call.
func (b *Breaker) State() BreakerState { return b.state }

// Opens returns how many times the breaker tripped open.
func (b *Breaker) Opens() uint64 { return b.opens }

// Allow reports whether a dispatch may proceed at time now. An open
// breaker past its cooldown transitions to half-open and admits exactly
// one probe until that probe reports back.
func (b *Breaker) Allow(now sim.Time) bool {
	switch b.state {
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.successes = 0
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// OnSuccess records a successful attempt against the backend.
func (b *Breaker) OnSuccess() {
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.probing = false
		b.successes++
		if b.successes >= b.cfg.halfOpenTarget() {
			b.transition(BreakerClosed)
			b.failures = 0
			b.reopens = 0
		}
	}
	// A success while Open comes from an attempt dispatched before the
	// trip; it says nothing about the backend now. Ignore it.
}

// OnFailure records a transient failure against the backend at time now.
func (b *Breaker) OnFailure(now sim.Time) {
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip(now)
		}
	case BreakerHalfOpen:
		b.probing = false
		b.reopens++
		b.trip(now)
	}
}

// trip opens the breaker with a fresh timer: the cooldown is measured
// from this failure, never from the original trip.
func (b *Breaker) trip(now sim.Time) {
	b.transition(BreakerOpen)
	b.openedAt = now
	b.failures = 0
	b.successes = 0
	b.opens++
}

// cooldown returns how long the current Open period refuses traffic:
// OpenFor, multiplied by OpenBackoff per consecutive reopen and capped at
// OpenForMax when configured.
func (b *Breaker) cooldown() sim.Duration {
	d := b.cfg.OpenFor
	if b.cfg.OpenBackoff <= 1 {
		return d
	}
	for i := 0; i < b.reopens && i < 62; i++ {
		d = sim.Duration(float64(d) * b.cfg.OpenBackoff)
		if max := b.cfg.OpenForMax; max > 0 && d >= max {
			return max
		}
	}
	return d
}

// taskState tracks one task through the resilience layer's attempt
// machinery until it settles and every attempt has drained.
type taskState struct {
	task      *model.Task
	placement model.Placement // primary target; retries and hedges aim here

	inFlight int  // attempts whose outcome has not arrived yet
	pending  bool // a backoff re-dispatch timer is armed
	hedges   int  // hedge attempts launched
	hedgeEv  sim.EventRef

	settled bool          // winner holds the reported success
	winner  model.Outcome //
	failed  bool          // failure holds the terminal failure
	failure model.Outcome //
	done    bool          // finish() has run
}

// attempt is one in-flight dispatch of a task.
type attempt struct {
	st        *taskState
	placement model.Placement // actual target (fallback may differ)
	isHedge   bool
	abandoned bool // per-attempt timeout fired
	launched  sim.Time
	timeoutEv sim.EventRef
	traceID   uint64 // span handle when a tracer is attached
}

// resilientDispatch is Dispatch when the resilience layer is on.
func (s *Scheduler) resilientDispatch(task *model.Task, placement model.Placement) {
	st, ok := s.inflight[task.ID]
	if !ok {
		st = &taskState{task: task, placement: placement}
		s.inflight[task.ID] = st
	}
	s.launchAttempt(st, false)
}

// breakerFor returns the breaker guarding a remote placement, creating it
// on first use, or nil when breakers are off or the placement is local.
func (s *Scheduler) breakerFor(p model.Placement) *Breaker {
	if s.res.Breaker == nil || p == model.PlaceLocal {
		return nil
	}
	if b, ok := s.breakers[p]; ok {
		return b
	}
	b, err := NewBreaker(*s.res.Breaker)
	if err != nil {
		panic(err) // config validated in New
	}
	b.OnTransition(func(from, to BreakerState) {
		if s.tr != nil {
			s.tr.BreakerTransition(p, from.String(), to.String(), s.env.Eng.Now())
		}
	})
	s.breakers[p] = b
	return b
}

// launchAttempt starts one attempt of st's task: breaker check (with
// fallback rerouting), per-attempt timeout, hedge timer, dispatch.
func (s *Scheduler) launchAttempt(st *taskState, isHedge bool) {
	target := st.placement
	if s.fo != nil {
		// Failover composes with resilience per attempt: an attempt aimed
		// at a down region re-points at a surviving one (paying the
		// state-transfer egress) before the breaker sees it.
		target = s.fo.retarget(st.task, target)
	}
	if br := s.breakerFor(target); br != nil && !br.Allow(s.env.Eng.Now()) {
		target = s.res.fallback()
		s.stats.Fallbacks++
	}
	a := &attempt{st: st, placement: target, isHedge: isHedge, launched: s.env.Eng.Now()}
	if s.tr != nil {
		a.traceID = s.tr.AttemptStart(st.task, target, isHedge, a.launched)
	}
	st.inFlight++
	if isHedge {
		st.hedges++
		s.stats.Hedges++
	}
	if to := s.res.AttemptTimeout; to > 0 && target != model.PlaceLocal {
		a.timeoutEv = s.env.Eng.After(to, func() { s.onAttemptTimeout(a) })
	}
	s.maybeArmHedge(st)
	s.dispatchTo(st.task, target, func(o model.Outcome) { s.onAttemptDone(a, o) })
}

// maybeArmHedge arms the duplicate-attempt timer if hedging is on, the
// primary target is remote, and the budget allows another hedge.
func (s *Scheduler) maybeArmHedge(st *taskState) {
	if !s.res.hedging() || st.placement == model.PlaceLocal ||
		st.hedgeEv.Scheduled() || st.settled || st.failed ||
		st.hedges >= s.res.maxHedges() {
		return
	}
	delay, ok := s.hedgeDelay()
	if !ok {
		return
	}
	st.hedgeEv = s.env.Eng.After(delay, func() {
		st.hedgeEv = sim.EventRef{}
		if st.settled || st.failed || st.inFlight == 0 {
			return
		}
		s.launchAttempt(st, true)
	})
}

// hedgeDelay returns how long to wait before hedging: the configured
// quantile of observed remote attempt latencies once enough samples
// exist, the fixed HedgeDelay before that.
func (s *Scheduler) hedgeDelay() (sim.Duration, bool) {
	if s.res.HedgeQuantile > 0 && s.attemptLat.Count() >= uint64(s.res.hedgeMinSamples()) {
		return sim.Duration(s.attemptLat.Quantile(s.res.HedgeQuantile)), true
	}
	if s.res.HedgeDelay > 0 {
		return s.res.HedgeDelay, true
	}
	return 0, false
}

// onAttemptTimeout abandons a straggling attempt: its eventual cost still
// counts, the breaker records a failure, and the task re-dispatches
// through the usual retry path (or fails terminally out of attempts).
func (s *Scheduler) onAttemptTimeout(a *attempt) {
	st := a.st
	a.timeoutEv = sim.EventRef{}
	if st.settled || st.failed || a.abandoned {
		return
	}
	a.abandoned = true
	s.stats.Timeouts++
	now := s.env.Eng.Now()
	if br := s.breakerFor(a.placement); br != nil {
		br.OnFailure(now)
	}
	if s.fo != nil {
		s.fo.observe(a.placement, true, ErrAttemptTimeout, now)
	}
	abandoned := model.Outcome{
		Task: st.task, Placement: a.placement,
		Started: st.task.Submitted, Finished: now,
		Exec:   model.ExecReport{Start: a.launched, End: now, Err: ErrAttemptTimeout},
		Failed: true,
	}
	if s.tr != nil {
		s.tr.AttemptEnd(a.traceID, abandoned, trace.StatusTimeout, now)
	}
	s.handleAttemptFailure(st, abandoned)
	s.settleIfDrained(st)
}

// onAttemptDone receives the real outcome of every dispatched attempt.
func (s *Scheduler) onAttemptDone(a *attempt, o model.Outcome) {
	st := a.st
	st.inFlight--
	if a.timeoutEv.Scheduled() {
		s.env.Eng.Cancel(a.timeoutEv)
		a.timeoutEv = sim.EventRef{}
	}
	br := s.breakerFor(a.placement)
	switch {
	case a.abandoned:
		// Already counted as a timeout failure; fold whatever the zombie
		// attempt cost. No breaker feedback: the timeout already reported.
		s.sunkUSD[st.task.ID] += o.CostUSD
		s.sunkMJ[st.task.ID] += o.EnergyMilliJ
		if s.tr != nil {
			s.tr.AttemptCost(a.traceID, o.CostUSD)
		}
	case st.settled || st.failed:
		// The task was decided while this attempt was in flight (a losing
		// hedge, or a late attempt after a terminal failure). Its cost
		// still counts, and its result is genuine backend feedback.
		s.sunkUSD[st.task.ID] += o.CostUSD
		s.sunkMJ[st.task.ID] += o.EnergyMilliJ
		s.breakerFeedback(br, o)
		s.foFeedback(a.placement, o)
		if s.tr != nil {
			status := trace.StatusLose
			if o.Failed {
				status = trace.StatusFailed
			}
			s.tr.AttemptEnd(a.traceID, o, status, s.env.Eng.Now())
		}
	case !o.Failed:
		if br != nil {
			br.OnSuccess()
		}
		s.foFeedback(a.placement, o)
		if a.placement != model.PlaceLocal {
			s.attemptLat.Observe(float64(s.env.Eng.Now().Sub(a.launched)))
		}
		if a.isHedge {
			s.stats.HedgeWins++
		}
		if s.tr != nil {
			s.tr.AttemptEnd(a.traceID, o, trace.StatusWin, s.env.Eng.Now())
		}
		st.settled = true
		st.winner = o
	default:
		s.breakerFeedback(br, o)
		s.foFeedback(a.placement, o)
		if s.tr != nil {
			status := trace.StatusFailed
			if s.shouldRetryErr(st.task, o.Exec.Err) {
				status = trace.StatusRetry
			}
			s.tr.AttemptEnd(a.traceID, o, status, s.env.Eng.Now())
		}
		s.handleAttemptFailure(st, o)
	}
	s.settleIfDrained(st)
}

// breakerFeedback translates a genuine attempt completion into breaker
// signals: transient failures count against the backend; everything else
// (success, or a task-caused error like out-of-memory) proves the backend
// responded and counts as success — crucially, this cannot wedge a
// half-open probe.
func (s *Scheduler) breakerFeedback(br *Breaker, o model.Outcome) {
	if br == nil {
		return
	}
	if o.Failed && model.Transient(o.Exec.Err) {
		br.OnFailure(s.env.Eng.Now())
		return
	}
	br.OnSuccess()
}

// foFeedback forwards one genuine attempt completion to the failover
// health tracker, which applies its own transient/other classification.
func (s *Scheduler) foFeedback(p model.Placement, o model.Outcome) {
	if s.fo == nil {
		return
	}
	s.fo.observe(p, o.Failed, o.Exec.Err, s.env.Eng.Now())
}

// handleAttemptFailure retries a transient failure with backoff, or marks
// the task's terminal failure. Extra failures after the terminal one fold
// into the sunk totals.
func (s *Scheduler) handleAttemptFailure(st *taskState, o model.Outcome) {
	if s.shouldRetryErr(st.task, o.Exec.Err) {
		n := s.attempts[st.task.ID] + 1
		s.attempts[st.task.ID] = n
		s.sunkUSD[st.task.ID] += o.CostUSD
		s.sunkMJ[st.task.ID] += o.EnergyMilliJ
		s.stats.Retries++
		st.pending = true
		s.env.Eng.After(s.retryDelay(n), func() {
			st.pending = false
			if st.settled || st.failed {
				s.settleIfDrained(st)
				return
			}
			s.launchAttempt(st, false)
		})
		return
	}
	if st.failed {
		s.sunkUSD[st.task.ID] += o.CostUSD
		s.sunkMJ[st.task.ID] += o.EnergyMilliJ
		return
	}
	st.failed = true
	st.failure = o
}

// settleIfDrained reports the task's outcome once it is decided and no
// attempt or re-dispatch timer remains, so every attempt's cost lands in
// the reported totals exactly once.
func (s *Scheduler) settleIfDrained(st *taskState) {
	if st.done || st.inFlight > 0 || st.pending || (!st.settled && !st.failed) {
		return
	}
	st.done = true
	if st.hedgeEv.Scheduled() {
		s.env.Eng.Cancel(st.hedgeEv)
		st.hedgeEv = sim.EventRef{}
		if s.tr != nil {
			s.tr.HedgeCanceled(st.task.ID, s.env.Eng.Now())
		}
	}
	delete(s.inflight, st.task.ID)
	if st.settled {
		s.finish(st.winner)
		return
	}
	s.finish(st.failure)
}
