package sched

import (
	"errors"
	"math"
	"testing"

	"offload/internal/cloudvm"
	"offload/internal/edge"
	"offload/internal/fault"
	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// faultyEnv builds a serverless-only environment with deterministic
// timing and the given composite fault model installed on the platform.
func faultyEnv(t *testing.T, seed uint64, cfg fault.Config) *Env {
	t.Helper()
	env := flakyEnv(t, 0)
	inj, err := fault.New(rng.New(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.Functions.Platform().SetFaultInjector(inj)
	return env
}

func TestResilienceValidation(t *testing.T) {
	cases := []struct {
		name string
		res  Resilience
	}{
		{"negative attempt timeout", Resilience{AttemptTimeout: -1}},
		{"negative hedge delay", Resilience{HedgeDelay: -1}},
		{"hedge quantile 1", Resilience{HedgeQuantile: 1}},
		{"negative hedge quantile", Resilience{HedgeQuantile: -0.1}},
		{"negative hedge samples", Resilience{HedgeMinSamples: -1}},
		{"negative max hedges", Resilience{MaxHedges: -1}},
		{"breaker without threshold", Resilience{Breaker: &BreakerConfig{OpenFor: 10}}},
		{"breaker without cooldown", Resilience{Breaker: &BreakerConfig{FailureThreshold: 3}}},
		{"unknown fallback", Resilience{Fallback: model.Placement(99)}},
	}
	env := testEnv(t)
	for _, c := range cases {
		if _, err := New(env, CloudAll{}, Exact{}, WithResilience(c.res)); err == nil {
			t.Errorf("%s: New accepted %+v", c.name, c.res)
		}
	}
	if _, err := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: 10, HalfOpenSuccesses: -1}); err == nil {
		t.Error("NewBreaker accepted negative half-open successes")
	}
}

// TestTransientClassification pins the shared error taxonomy the retry
// layer and the breaker rest on: every substrate's transient error and the
// attempt timeout classify as transient; anything else does not.
func TestTransientClassification(t *testing.T) {
	for _, err := range []error{
		serverless.ErrTransient, edge.ErrTransient, cloudvm.ErrTransient, ErrAttemptTimeout,
	} {
		if !model.Transient(err) {
			t.Errorf("%v not classified transient", err)
		}
	}
	if model.Transient(nil) {
		t.Error("nil error classified transient")
	}
	if model.Transient(errors.New("out of memory")) {
		t.Error("task-caused error classified transient")
	}
}

// TestBreakerStateMachine walks the full closed → open → half-open →
// closed cycle, the single-probe rule, the consecutive-failure reset, and
// reopening on a failed probe.
func TestBreakerStateMachine(t *testing.T) {
	br, err := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 10, HalfOpenSuccesses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if br.State() != BreakerClosed {
		t.Fatalf("initial state %v", br.State())
	}
	br.OnFailure(1)
	br.OnFailure(2)
	if br.State() != BreakerClosed {
		t.Fatal("opened below the failure threshold")
	}
	if !br.Allow(2) {
		t.Fatal("closed breaker refused traffic")
	}
	br.OnFailure(3)
	if br.State() != BreakerOpen || br.Opens() != 1 {
		t.Fatalf("state %v opens %d after third failure", br.State(), br.Opens())
	}
	if br.Allow(5) {
		t.Fatal("open breaker admitted traffic during cooldown")
	}
	if !br.Allow(13.5) {
		t.Fatal("probe refused after cooldown")
	}
	if br.State() != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", br.State())
	}
	if br.Allow(14) {
		t.Fatal("second probe admitted while the first is in flight")
	}
	br.OnSuccess()
	if br.State() != BreakerHalfOpen {
		t.Fatal("closed before HalfOpenSuccesses probes")
	}
	if !br.Allow(15) {
		t.Fatal("second probe refused after the first succeeded")
	}
	br.OnSuccess()
	if br.State() != BreakerClosed {
		t.Fatalf("state %v after enough probe successes, want closed", br.State())
	}

	// Only *consecutive* failures trip: a success in between resets.
	br.OnFailure(20)
	br.OnFailure(21)
	br.OnSuccess()
	br.OnFailure(22)
	br.OnFailure(23)
	if br.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	br.OnFailure(24)
	if br.State() != BreakerOpen || br.Opens() != 2 {
		t.Fatalf("state %v opens %d", br.State(), br.Opens())
	}

	// A failed half-open probe reopens for a fresh cooldown.
	if !br.Allow(40) {
		t.Fatal("probe refused after second cooldown")
	}
	br.OnFailure(40)
	if br.State() != BreakerOpen || br.Opens() != 3 {
		t.Fatalf("failed probe left state %v opens %d", br.State(), br.Opens())
	}
	if br.Allow(45) {
		t.Fatal("reopened breaker admitted traffic during cooldown")
	}
}

// TestBreakerFallbackBeatsFailFast is the headline resilience claim: under
// a sustained 300 s outage, retry+breaker+fallback loses no tasks while
// fail-fast loses every task that arrives during the outage — far more
// than a 10× difference in task-failure rate.
func TestBreakerFallbackBeatsFailFast(t *testing.T) {
	outage := fault.Config{Outages: []fault.Window{{Start: 5, Duration: 300}}}
	const tasks = 61

	run := func(s *Scheduler, env *Env) {
		for i := 0; i < tasks; i++ {
			task := heavyTask(model.TaskID(i + 1))
			task.Cycles = 1e9
			env.Eng.At(sim.Time(i*10), func() { s.Submit(task) })
		}
		env.Eng.Run()
	}

	ffEnv := faultyEnv(t, 17, outage)
	ff, err := New(ffEnv, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	run(ff, ffEnv)

	resEnv := faultyEnv(t, 17, outage)
	res, err := New(resEnv, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 4, Backoff: 2, MaxBackoff: 16}),
		WithResilience(Resilience{
			Breaker:  &BreakerConfig{FailureThreshold: 3, OpenFor: 30},
			Fallback: model.PlaceLocal,
		}))
	if err != nil {
		t.Fatal(err)
	}
	run(res, resEnv)

	// ~30 of the 61 tasks arrive inside the outage window.
	if ff.Stats().Failed < 20 {
		t.Fatalf("fail-fast lost only %d tasks during a 300 s outage", ff.Stats().Failed)
	}
	if res.Stats().Failed != 0 {
		t.Fatalf("retry+breaker+fallback lost %d tasks", res.Stats().Failed)
	}
	// With zero resilient failures the ratio is unbounded; requiring at
	// least 10 fail-fast failures makes the ≥10× claim hold even if the
	// resilient side were charged one phantom failure.
	if ff.Stats().Failed < 10 {
		t.Fatalf("failure gap below 10×: fail-fast %d vs resilient 0", ff.Stats().Failed)
	}
	if res.Stats().Fallbacks == 0 {
		t.Fatal("open breaker never rerouted to the fallback")
	}
	br := res.breakers[model.PlaceFunction]
	if br == nil {
		t.Fatal("no breaker materialised for the serverless placement")
	}
	// The 300 s outage spans multiple 30 s cooldowns: failed half-open
	// probes must have reopened the breaker at least once.
	if br.Opens() < 2 {
		t.Fatalf("breaker opened %d times, want ≥ 2 (probe reopenings)", br.Opens())
	}
	// Recovery: once the outage clears, a probe succeeds, the breaker
	// closes and traffic returns to serverless.
	if br.State() != BreakerClosed {
		t.Fatalf("breaker %v after the outage cleared, want closed", br.State())
	}
	if res.Stats().ByPlacement[model.PlaceFunction] < 20 {
		t.Fatalf("only %d tasks ran on serverless after recovery",
			res.Stats().ByPlacement[model.PlaceFunction])
	}
	if res.Stats().ByPlacement[model.PlaceLocal] == 0 {
		t.Fatal("no task completed on the local fallback")
	}
}

// TestAttemptTimeoutKillsStragglers: a heavy-tailed slowdown on half the
// invocations is neutralised by the per-attempt timeout — the straggling
// attempt is abandoned and the re-dispatch (usually) draws a fast one.
func TestAttemptTimeoutKillsStragglers(t *testing.T) {
	env := faultyEnv(t, 23, fault.Config{
		StragglerProb: 0.5, StragglerFactor: 50, StragglerAlpha: 2,
	})
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 8, Backoff: 1}),
		WithResilience(Resilience{AttemptTimeout: 10}))
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	s.onDone = func(o model.Outcome) {
		if !o.Failed {
			completed++
		}
	}
	const tasks = 20
	for i := 0; i < tasks; i++ {
		task := heavyTask(model.TaskID(i + 1))
		task.Cycles = 1e9
		env.Eng.At(sim.Time(i*120), func() { s.Submit(task) })
	}
	env.Eng.Run()
	if completed != tasks {
		t.Fatalf("completed %d/%d", completed, tasks)
	}
	if s.Stats().Timeouts == 0 {
		t.Fatal("50%% stragglers at 50× produced no attempt timeouts")
	}
	if s.Stats().Retries == 0 {
		t.Fatal("abandoned attempts were not re-dispatched")
	}
	if s.Stats().Failed != 0 {
		t.Fatalf("Failed = %d", s.Stats().Failed)
	}
}

// TestAttemptTimeoutExhausts: when every attempt exceeds the timeout the
// task fails terminally with ErrAttemptTimeout, and the cost of every
// abandoned (but still billed) attempt is folded into the final outcome.
func TestAttemptTimeoutExhausts(t *testing.T) {
	env := flakyEnv(t, 0)
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 3, Backoff: 1}),
		WithResilience(Resilience{AttemptTimeout: 0.5})) // below any exec time
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	task := heavyTask(1)
	task.Cycles = 1e9
	s.Submit(task)
	env.Eng.Run()
	if !out.Failed {
		t.Fatal("task with an unmeetable attempt timeout succeeded")
	}
	if !errors.Is(out.Exec.Err, ErrAttemptTimeout) {
		t.Fatalf("Err = %v, want ErrAttemptTimeout", out.Exec.Err)
	}
	if !model.Transient(out.Exec.Err) {
		t.Fatal("attempt timeout not classified transient")
	}
	if out.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", out.Attempts)
	}
	if got := s.Stats().Timeouts; got != 3 {
		t.Fatalf("Timeouts = %d, want 3", got)
	}
	if got := s.Stats().Retries; got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	billed := env.Functions.Platform().Stats().BilledUSD
	if billed <= 0 {
		t.Fatal("abandoned attempts were not billed")
	}
	if math.Abs(out.CostUSD-billed) > 1e-12+1e-9*billed {
		t.Fatalf("outcome cost %g != platform billed %g: zombie attempts not folded once",
			out.CostUSD, billed)
	}
}

// TestHedgingBeatsStragglers: with hedging on, a straggling primary is
// overtaken by its duplicate, and the loser's bill still lands in the
// outcome exactly once (scheduler cost == platform billed).
func TestHedgingBeatsStragglers(t *testing.T) {
	env := faultyEnv(t, 31, fault.Config{
		StragglerProb: 0.5, StragglerFactor: 50, StragglerAlpha: 2,
	})
	s, err := New(env, CloudAll{}, Exact{},
		WithResilience(Resilience{HedgeDelay: 10, MaxHedges: 1}))
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 30
	completed := 0
	var worst sim.Duration
	s.onDone = func(o model.Outcome) {
		if !o.Failed {
			completed++
			if d := o.CompletionTime(); d > worst {
				worst = d
			}
		}
	}
	for i := 0; i < tasks; i++ {
		task := heavyTask(model.TaskID(i + 1))
		task.Cycles = 1e9
		env.Eng.At(sim.Time(i*150), func() { s.Submit(task) })
	}
	env.Eng.Run()
	if completed != tasks {
		t.Fatalf("completed %d/%d", completed, tasks)
	}
	if s.Stats().Hedges == 0 {
		t.Fatal("no hedges launched against 50% stragglers")
	}
	if s.Stats().HedgeWins == 0 {
		t.Fatal("no hedge ever beat its straggling primary")
	}
	// A winning hedge caps completion at roughly delay + one fast attempt;
	// without hedging a 50× straggler on ~1.5 s work runs >70 s.
	if worst >= 70 {
		t.Fatalf("worst completion %g s: hedging did not cut the straggler tail", float64(worst))
	}
	billed := env.Functions.Platform().Stats().BilledUSD
	if math.Abs(s.Stats().CostUSD-billed) > 1e-12+1e-9*billed {
		t.Fatalf("scheduler cost %g != platform billed %g: losing hedges not folded once",
			s.Stats().CostUSD, billed)
	}
}

// TestHedgeDelayQuantile: the hedge delay follows the fixed HedgeDelay
// until HedgeMinSamples remote latencies are observed, then switches to
// the configured quantile of the observed distribution.
func TestHedgeDelayQuantile(t *testing.T) {
	env := flakyEnv(t, 0)
	s, err := New(env, CloudAll{}, Exact{}, WithResilience(Resilience{
		HedgeQuantile: 0.9, HedgeDelay: 3, HedgeMinSamples: 5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := s.hedgeDelay(); !ok || d != 3 {
		t.Fatalf("hedgeDelay before samples = (%g, %v), want fixed 3", float64(d), ok)
	}
	for i := 0; i < 5; i++ {
		s.attemptLat.Observe(7)
	}
	d, ok := s.hedgeDelay()
	if !ok || d < 6 || d > 9 {
		t.Fatalf("hedgeDelay after samples = (%g, %v), want ≈ 7 (0.9-quantile)", float64(d), ok)
	}
}

// TestRetryDelayCapAndOverflow pins the backoff arithmetic: the exponent
// is capped so large attempt counts cannot overflow into negative delays,
// MaxBackoff clamps the result, and FullJitter without an rng stream is
// silently inert.
func TestRetryDelayCapAndOverflow(t *testing.T) {
	env := testEnv(t)
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 1 << 20, Backoff: 1}))
	if err != nil {
		t.Fatal(err)
	}
	// The old int-shift formula produced 0 or negative delays past n=63;
	// the capped formula must stay positive and monotone non-decreasing.
	prev := sim.Duration(0)
	for n := 1; n <= 200; n++ {
		d := s.retryDelay(n)
		if d <= 0 {
			t.Fatalf("retryDelay(%d) = %g: overflow", n, float64(d))
		}
		if d < prev {
			t.Fatalf("retryDelay(%d) = %g < retryDelay(%d) = %g", n, float64(d), n-1, float64(prev))
		}
		prev = d
	}
	if got := s.retryDelay(100); got != sim.Duration(math.Ldexp(1, 30)) {
		t.Fatalf("uncapped retryDelay(100) = %g, want 2^30", float64(got))
	}

	s.retry.MaxBackoff = 60
	if got := s.retryDelay(10); got != 60 {
		t.Fatalf("capped retryDelay(10) = %g, want MaxBackoff 60", float64(got))
	}
	if got := s.retryDelay(1); got != 1 {
		t.Fatalf("retryDelay(1) = %g below the cap, want 1", float64(got))
	}

	// FullJitter without WithRNG: deterministic, uses the capped value.
	s.retry.FullJitter = true
	if got := s.retryDelay(10); got != 60 {
		t.Fatalf("jitter without rng changed the delay to %g", float64(got))
	}
}

// TestRetryJitterDeterminism: full jitter draws uniformly below the capped
// backoff from the scheduler's own stream, so equal seeds give equal delay
// sequences.
func TestRetryJitterDeterminism(t *testing.T) {
	mk := func() *Scheduler {
		s, err := New(testEnv(t), CloudAll{}, Exact{},
			WithRetries(RetryPolicy{MaxAttempts: 100, Backoff: 1, MaxBackoff: 60, FullJitter: true}),
			WithRNG(rng.New(7)))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	sawSpread := false
	for n := 1; n <= 50; n++ {
		da, db := a.retryDelay(n), b.retryDelay(n)
		if da != db {
			t.Fatalf("retryDelay(%d) diverged across equal seeds: %g vs %g", n, float64(da), float64(db))
		}
		if da < 0 || float64(da) >= 60 {
			t.Fatalf("jittered retryDelay(%d) = %g outside [0, 60)", n, float64(da))
		}
		if n > 6 && da != 60 {
			sawSpread = true // jitter actually moved the capped value
		}
	}
	if !sawSpread {
		t.Fatal("full jitter never moved the delay off the cap")
	}
}

// TestBatcherWithRetries: batched serverless chains only advance after a
// task's *final* outcome, and sunk cost from failed attempts lands in the
// totals exactly once (scheduler cost == platform billed).
func TestBatcherWithRetries(t *testing.T) {
	env := flakyEnv(t, 0.3)
	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 8, Backoff: 0.5}),
		WithResilience(Resilience{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatcher(s, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	s.onDone = func(o model.Outcome) {
		if !o.Failed {
			completed++
		}
	}
	const tasks = 20
	for i := 0; i < tasks; i++ {
		task := heavyTask(model.TaskID(i + 1))
		task.Cycles = 1e9
		b.Submit(task)
	}
	env.Eng.Run()
	if completed != tasks {
		t.Fatalf("completed %d/%d batched tasks", completed, tasks)
	}
	if b.Flushes() != 4 {
		t.Fatalf("Flushes = %d, want 4 full batches", b.Flushes())
	}
	if s.Stats().Retries == 0 {
		t.Fatal("30%% failure rate produced no retries through the batcher")
	}
	billed := env.Functions.Platform().Stats().BilledUSD
	if math.Abs(s.Stats().CostUSD-billed) > 1e-12+1e-9*billed {
		t.Fatalf("scheduler cost %g != platform billed %g: sunk cost not counted once",
			s.Stats().CostUSD, billed)
	}
	// Every attempt (successes + retried failures) paid at least one
	// uncontended uplink's radio energy: sunk energy is retained too.
	task := heavyTask(0)
	upMJ := 1.2 * 8 * float64(task.InputBytes) / 50e6 * 1000
	attempts := float64(uint64(tasks) + s.Stats().Retries)
	if s.Stats().EnergyMilliJ < attempts*upMJ*0.99 {
		t.Fatalf("EnergyMilliJ = %g below %g: failed attempts' energy dropped",
			s.Stats().EnergyMilliJ, attempts*upMJ)
	}
}

// TestShifterWithRetries: tasks shifted into the off-peak window still
// retry transparently there, and sunk cost is counted exactly once.
func TestShifterWithRetries(t *testing.T) {
	env := testEnv(t)
	env.Edge, env.EdgePath, env.VM = nil, nil, nil
	cfg := env.Functions.Platform().Config()
	cfg.FailureRate = 0.3
	cfg.ColdStart = serverless.ColdStartModel{}
	cfg.Price.OffPeakFactor = 0.5
	cfg.Price.OffPeakStartHour = 1
	cfg.Price.OffPeakEndHour = 2
	env.Functions = NewFunctionPool(serverless.NewPlatform(env.Eng, rng.New(99), cfg))

	s, err := New(env, CloudAll{}, Exact{},
		WithRetries(RetryPolicy{MaxAttempts: 8, Backoff: 1}),
		WithResilience(Resilience{}))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewOffPeakShifter(s)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	var earliest sim.Time = math.MaxFloat64
	s.onDone = func(o model.Outcome) {
		if !o.Failed {
			completed++
			if o.Finished < earliest {
				earliest = o.Finished
			}
		}
	}
	const tasks = 10
	for i := 0; i < tasks; i++ {
		task := heavyTask(model.TaskID(i + 1))
		task.Cycles = 1e9
		task.Deadline = 0 // fully delay tolerant
		sh.Submit(task)
	}
	env.Eng.Run()
	if sh.Shifted() != tasks {
		t.Fatalf("Shifted = %d, want %d", sh.Shifted(), tasks)
	}
	if completed != tasks {
		t.Fatalf("completed %d/%d shifted tasks", completed, tasks)
	}
	if earliest < 3600 {
		t.Fatalf("task finished at %g, before the 01:00 off-peak window", float64(earliest))
	}
	if s.Stats().Retries == 0 {
		t.Fatal("30%% failure rate produced no retries through the shifter")
	}
	billed := env.Functions.Platform().Stats().BilledUSD
	if math.Abs(s.Stats().CostUSD-billed) > 1e-12+1e-9*billed {
		t.Fatalf("scheduler cost %g != platform billed %g: sunk cost not counted once",
			s.Stats().CostUSD, billed)
	}
}

// TestBreakerReopenFreshTimer is the regression test for the HalfOpen
// probe-failure path: the reopened breaker's cooldown is measured from
// the probe failure, never from the original trip — a stale timer would
// re-admit traffic immediately.
func TestBreakerReopenFreshTimer(t *testing.T) {
	br, err := NewBreaker(BreakerConfig{FailureThreshold: 2, OpenFor: 10, HalfOpenSuccesses: 1})
	if err != nil {
		t.Fatal(err)
	}
	br.OnFailure(0)
	br.OnFailure(0)
	if br.State() != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", br.State())
	}
	if !br.Allow(10) {
		t.Fatal("probe refused after the first cooldown")
	}
	br.OnFailure(10) // probe fails at t=10
	if br.State() != BreakerOpen || br.Opens() != 2 {
		t.Fatalf("state %v opens %d after probe failure, want open/2", br.State(), br.Opens())
	}
	// A stale timer (cooldown from the original trip at t=0) would admit
	// traffic right away; the fresh timer holds until t=20.
	if br.Allow(10.1) {
		t.Fatal("reopened breaker admitted traffic immediately after the failed probe")
	}
	if br.Allow(19.9) {
		t.Fatal("reopened breaker admitted traffic before the fresh cooldown elapsed")
	}
	if !br.Allow(20) {
		t.Fatal("reopened breaker refused the probe after a full fresh cooldown")
	}
}

// TestBreakerOpenBackoff pins the opt-in backed-off reopen schedule:
// consecutive probe failures wait OpenFor·OpenBackoff^k capped at
// OpenForMax, and one probe success resets the schedule.
func TestBreakerOpenBackoff(t *testing.T) {
	br, err := NewBreaker(BreakerConfig{
		FailureThreshold: 1, OpenFor: 10, HalfOpenSuccesses: 1,
		OpenBackoff: 2, OpenForMax: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	br.OnFailure(0) // trip: cooldown 10
	for _, step := range []struct {
		probeAt  sim.Time // when the cooldown has just elapsed
		tooEarly sim.Time // a moment before it has
	}{
		{10, 9.9},  // k=0: 10 s
		{30, 29.9}, // k=1: 20 s from the failed probe at 10
		{70, 69.9}, // k=2: 40 s from the failed probe at 30
		{110, 109}, // k=3: 80 s capped at 40, from the probe at 70
	} {
		if br.Allow(step.tooEarly) {
			t.Fatalf("probe admitted at t=%g, before the backed-off cooldown", float64(step.tooEarly))
		}
		if !br.Allow(step.probeAt) {
			t.Fatalf("probe refused at t=%g after the cooldown elapsed", float64(step.probeAt))
		}
		br.OnFailure(step.probeAt)
	}
	// A successful probe closes the breaker and resets the schedule: the
	// next trip waits the base cooldown again.
	if !br.Allow(150) {
		t.Fatal("probe refused at t=150")
	}
	br.OnSuccess()
	if br.State() != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", br.State())
	}
	br.OnFailure(200)
	if br.Allow(209.9) {
		t.Fatal("reset breaker kept the backed-off cooldown")
	}
	if !br.Allow(210) {
		t.Fatal("reset breaker refused traffic after the base cooldown")
	}
}

// TestBreakerBackoffValidation pins the new knobs' validation.
func TestBreakerBackoffValidation(t *testing.T) {
	base := BreakerConfig{FailureThreshold: 1, OpenFor: 10, HalfOpenSuccesses: 1}
	bad := []func(*BreakerConfig){
		func(c *BreakerConfig) { c.OpenBackoff = -1 },
		func(c *BreakerConfig) { c.OpenBackoff = math.NaN() },
		func(c *BreakerConfig) { c.OpenForMax = -1 },
		func(c *BreakerConfig) { c.OpenForMax = 5 }, // below OpenFor
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := NewBreaker(cfg); err == nil {
			t.Errorf("case %d: NewBreaker accepted %+v", i, cfg)
		}
	}
	if _, err := NewBreaker(BreakerConfig{
		FailureThreshold: 1, OpenFor: 10, HalfOpenSuccesses: 1,
		OpenBackoff: 1.5, OpenForMax: 40,
	}); err != nil {
		t.Errorf("NewBreaker rejected a valid backoff config: %v", err)
	}
}
