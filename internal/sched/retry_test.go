package sched

import (
	"errors"
	"testing"

	"offload/internal/model"
	"offload/internal/rng"
	"offload/internal/serverless"
	"offload/internal/sim"
)

// flakyEnv builds a serverless-only environment whose platform fails the
// given fraction of invocations.
func flakyEnv(t *testing.T, failureRate float64) *Env {
	t.Helper()
	env := testEnv(t)
	env.Edge, env.EdgePath, env.VM = nil, nil, nil
	cfg := env.Functions.Platform().Config()
	cfg.FailureRate = failureRate
	cfg.ColdStart = serverless.ColdStartModel{} // deterministic timing
	platform := serverless.NewPlatform(env.Eng, rng.New(99), cfg)
	env.Functions = NewFunctionPool(platform)
	return env
}

func TestTransientFailuresSurfaceWithoutRetries(t *testing.T) {
	env := flakyEnv(t, 0.9999) // effectively always fails
	s, err := New(env, CloudAll{}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	task := heavyTask(1)
	task.Cycles = 1e9
	s.Submit(task)
	env.Eng.Run()
	if !out.Failed {
		t.Fatal("near-certain failure did not fail")
	}
	if !errors.Is(out.Exec.Err, serverless.ErrTransient) {
		t.Fatalf("Err = %v, want ErrTransient", out.Exec.Err)
	}
	if out.CostUSD <= 0 {
		t.Fatal("crashed invocation was not billed")
	}
}

func TestRetriesRecoverTransientFailures(t *testing.T) {
	env := flakyEnv(t, 0.3)
	s, err := New(env, CloudAll{}, Exact{}, WithRetries(RetryPolicy{MaxAttempts: 8, Backoff: 1}))
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	maxAttempts := 0
	s.onDone = func(o model.Outcome) {
		if !o.Failed {
			completed++
		}
		if o.Attempts > maxAttempts {
			maxAttempts = o.Attempts
		}
	}
	for i := 0; i < 50; i++ {
		task := heavyTask(model.TaskID(i + 1))
		task.Cycles = 1e9
		env.Eng.At(sim.Time(i*30), func() { s.Submit(task) })
	}
	env.Eng.Run()
	if completed != 50 {
		t.Fatalf("completed %d/50 despite retries", completed)
	}
	if s.Stats().Retries == 0 {
		t.Fatal("30%% failure rate produced no retries")
	}
	if maxAttempts < 2 {
		t.Fatal("no task needed more than one attempt")
	}
	if s.Stats().Failed != 0 {
		t.Fatalf("Failed = %d", s.Stats().Failed)
	}
}

func TestRetriesExhaust(t *testing.T) {
	env := flakyEnv(t, 0.9999)
	s, err := New(env, CloudAll{}, Exact{}, WithRetries(RetryPolicy{MaxAttempts: 3, Backoff: 1}))
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	task := heavyTask(1)
	task.Cycles = 1e9
	s.Submit(task)
	env.Eng.Run()
	if !out.Failed {
		t.Fatal("always-failing task succeeded")
	}
	if out.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", out.Attempts)
	}
	if s.Stats().Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Stats().Retries)
	}
}

func TestRetryAccumulatesSunkCost(t *testing.T) {
	env := flakyEnv(t, 0.9999)
	s, err := New(env, CloudAll{}, Exact{}, WithRetries(RetryPolicy{MaxAttempts: 4, Backoff: 1}))
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	task := heavyTask(1)
	task.Cycles = 1e9
	s.Submit(task)
	env.Eng.Run()
	// Four billed attempts: the final outcome's cost must cover all of
	// them (each crash bills a random fraction, so just require more than
	// one attempt's share of the radio energy too).
	if out.Attempts != 4 {
		t.Fatalf("Attempts = %d", out.Attempts)
	}
	singleUplinkMJ := 1.2 * 8 * float64(task.InputBytes) / 50e6 * 1000
	if out.EnergyMilliJ < 2*singleUplinkMJ {
		t.Fatalf("EnergyMilliJ = %g does not include sunk attempts", out.EnergyMilliJ)
	}
}

func TestRetryBackoffDelaysRedispatch(t *testing.T) {
	env := flakyEnv(t, 0.9999)
	s, err := New(env, CloudAll{}, Exact{}, WithRetries(RetryPolicy{MaxAttempts: 3, Backoff: 100}))
	if err != nil {
		t.Fatal(err)
	}
	var finished sim.Time
	s.onDone = func(o model.Outcome) { finished = o.Finished }
	task := heavyTask(1)
	task.Cycles = 1e9
	s.Submit(task)
	env.Eng.Run()
	// Backoffs of 100 and 200 must be visible in the completion time.
	if finished < 300 {
		t.Fatalf("finished at %v, expected exponential backoff past 300", finished)
	}
}

func TestNonTransientErrorsAreNotRetried(t *testing.T) {
	env := testEnv(t)
	env.Edge, env.EdgePath, env.VM = nil, nil, nil
	s, err := New(env, CloudAll{}, Exact{}, WithRetries(RetryPolicy{MaxAttempts: 5, Backoff: 1}))
	if err != nil {
		t.Fatal(err)
	}
	var out model.Outcome
	s.onDone = func(o model.Outcome) { out = o }
	task := heavyTask(1)
	task.MemoryBytes = 64 * 1 << 30 // can never fit: permanent error
	s.Submit(task)
	env.Eng.Run()
	if !out.Failed {
		t.Fatal("oversized task succeeded")
	}
	if s.Stats().Retries != 0 {
		t.Fatalf("permanent failure was retried %d times", s.Stats().Retries)
	}
}

func TestFailureRateValidation(t *testing.T) {
	cfg := serverless.LambdaLike()
	cfg.FailureRate = 1.0
	if err := cfg.Validate(); err == nil {
		t.Fatal("failure rate 1.0 accepted")
	}
	cfg.FailureRate = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative failure rate accepted")
	}
}
